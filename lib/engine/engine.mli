(** Cost-based query engine over access support relations.

    The engine is the unified entry point for [Q^(i,j)] queries: it owns
    the registered access support relations of one object base, measures
    (or accepts) statistical {!Costmodel.Profile}s, enumerates every
    legal physical strategy for a query (Definitions 3.4-3.8 decide
    which extensions apply via {!Core.Asr.supports}), prices the
    strategies with the analytical cost model (equations 31-35) fed by
    live profiles, caches the winning plan per query shape, and executes
    plans either probe-at-a-time or batched.

    {2 Plan cache}

    Chosen plans are cached under [(path, i, j, direction)] and stamped
    with the engine's {e generation} — a counter bumped on every store
    mutation, on {!register} and on {!set_profile}.  A cached plan from
    an older generation is re-planned (and counted as an invalidation),
    so maintenance traffic transparently invalidates affected plans.

    {2 Batched execution}

    {!forward_batch} / {!backward_batch} evaluate many probes as one
    accounting operation: probes are sorted by clustering key, partition
    scans happen once per batch instead of once per probe, and
    clustering-boundary lookups go through
    {!Core.Asr.lookup_fwd_many} so sorted keys share B+ tree descents
    and leaf pages.  Per-probe answers equal those of
    {!Core.Exec.forward_supported} / {!Core.Exec.backward_supported}.

    {2 Domain safety}

    All mutable engine state — plan cache, memoised profiles, health
    oracle, registration list, generation — sits behind one internal
    mutex, so many OCaml 5 domains may plan and execute queries against
    the {e same frozen store} concurrently.  A plan computed outside the
    lock is published into the cache only if the generation is unchanged
    (the re-check makes concurrent registration/unregistration safe,
    never just slower).  Execution guards re-validate stitches and
    degrade to always-live navigation / extent-scan plans when a
    concurrent [unregister] or health change raced the lookup.

    Page accounting is the one piece of shared state the lock does not
    cover: concurrent callers must pass their own [?env] (same store,
    private {!Storage.Stats.t} sheaf) and merge summaries afterwards
    with {!Storage.Stats.merge}. *)

(** Physical plan IR. *)
module Plan : sig
  type dir = Fwd | Bwd

  val dir_to_string : dir -> string

  (** One partition visit while stitching a decomposed extension back
      together.  [enter] is the column at which the walk enters the
      partition: at a clustering boundary the visit is a key lookup, at
      an interior column every leaf page must be scanned (section
      5.6). *)
  type step =
    | Lookup of { part : int; enter : int }
    | Scan of { part : int; enter : int }

  type t =
    | Nav of { path : Gom.Path.t; i : int; j : int }
        (** Forward pointer-chasing through the object graph. *)
    | Extent_scan of { path : Gom.Path.t; i : int; j : int }
        (** Backward by exhaustive search over the extent of [t_i]. *)
    | Stitch of {
        index : Core.Asr.t;
        dir : dir;
        i : int;
        j : int;  (** Object positions within the {e index's} path. *)
        steps : step list;
      }  (** Prefix/suffix stitch across the index's decomposition. *)
    | Union of t list  (** Merge sub-plan answers, duplicate-free. *)
    | Distinct of t

  val step_to_string : step -> string
  val to_string : t -> string
end

type t

type candidate = { plan : Plan.t; est_cost : float }

type choice = {
  chosen : Plan.t;
  est_cost : float;
  candidates : candidate list;  (** All priced strategies, cheapest first. *)
}

type cache_info = { hits : int; misses : int; invalidations : int; entries : int }

val create : ?sizes:(Gom.Schema.type_name -> int) -> Core.Exec.env -> t
(** An engine over the environment's store; [sizes] (default [100]
    bytes per object) feeds measured profiles.  Subscribes to the store:
    every mutation bumps the generation and drops measured profiles. *)

val env : t -> Core.Exec.env
val indexes : t -> Core.Asr.t list

val register : t -> Core.Asr.t -> unit
(** Make an access support relation available to the planner
    (idempotent).  Bumps the generation: cached plans are re-planned.
    @raise Invalid_argument if the index was built over another store. *)

val unregister : t -> Core.Asr.t -> unit
(** Drop an index from the planner (idempotent).  Bumps the generation
    {e and} eagerly evicts every cached plan stitching through the index
    (counted as invalidations), so no execution path — not even an
    explicit {!run_forward} of a previously returned plan — can reach
    it. *)

val generation : t -> int

val cache_info : t -> cache_info

(* {2 Health} *)

val set_health : t -> (Core.Asr.t -> part:int -> bool) -> unit
(** Install a health oracle, typically the integrity subsystem's
    quarantine registry: the planner only prices a stitch whose every
    visited partition the oracle calls healthy, cached plans through
    now-unhealthy indexes are re-planned, and the execution guards
    refuse stale stitches.  When a usable index is priced out this way
    the degradation is recorded via {!Storage.Stats.note_fallback} on
    the environment's stats.  Bumps the generation. *)

val clear_health : t -> unit
(** Trust every registered index again.  Bumps the generation. *)

(* {2 Freshness watermark} *)

(** What the planner and the execution guards do with an index whose
    deferred-maintenance buffers hold pending deltas
    ({!Core.Asr.pending_deltas} > 0).  Either way answers stay exactly
    equal to immediate maintenance:

    - [Catch_up] (the default): drain the index's buffers on first use
      ({!Core.Asr.flush}, charged to the querying operation's stats and
      recorded via {!Storage.Stats.note_catchup_flush});
    - [Degrade]: refuse the stale index — the planner prices it out and
      a cached plan degrades to navigation / extent scan (recorded via
      {!Storage.Stats.note_freshness_degradation}), leaving the flush
      to the maintenance manager's own policy. *)
type freshness_mode = Catch_up | Degrade

val freshness : t -> freshness_mode

val set_freshness : t -> freshness_mode -> unit
(** Bumps the generation. *)

val invalidate_plans : t -> unit
(** Force re-planning of every cached plan (a generation bump) without
    touching registrations — called by the quarantine registry whenever
    an index's health changes. *)

(* {2 Profiles} *)

val measure_profile :
  ?sizes:(Gom.Schema.type_name -> int) -> Gom.Store.t -> Gom.Path.t -> Costmodel.Profile.t
(** Measure a path's exact statistics ([c_i], [d_i], [fan_i], [shar_i])
    from the object base — the live feed of the planner's cost model. *)

val measure_profile_view :
  ?sizes:(Gom.Schema.type_name -> int) ->
  Gom.Store_view.t ->
  Gom.Path.t ->
  Costmodel.Profile.t
(** {!measure_profile} over any read-only view.  Planning on behalf of a
    frozen environment measures the {e snapshot}, never racing the
    writer. *)

val set_profile : t -> Gom.Path.t -> Costmodel.Profile.t -> unit
(** Pin a profile for a path, overriding measurement (e.g. an assumed
    future workload, or a deterministic profile for tests).  Bumps the
    generation. *)

val profile : t -> Gom.Path.t -> Costmodel.Profile.t
(** The profile the planner uses for a path: pinned if set, else
    measured (memoised until the next store mutation). *)

(* {2 Planning} *)

val analytic_decomposition : Gom.Path.t -> Core.Decomposition.t -> Core.Decomposition.t
(** Map a physical decomposition's column boundaries to the analytical
    model's object positions (its [m = n] simplification drops set-OID
    columns). *)

val embedding_offset : index_path:Gom.Path.t -> query_path:Gom.Path.t -> int option
(** First object-position offset at which the query path embeds in the
    index path ([None] when it does not): positions [off..off+n] of the
    index spell exactly the query's anchor type and attribute chain —
    the same first-fit the planner uses when pricing a stitch.  Exposed
    for the shard router, whose grouped-routing decision must know
    whether {e every} index usable for a query anchors it at offset 0
    (only then does a probe's answer live wholly on its owner shard). *)

val candidates :
  ?env:Core.Exec.env -> t -> Gom.Path.t -> i:int -> j:int -> dir:Plan.dir -> candidate list
(** Every legal strategy for [Q^(i,j)] over the path, priced, cheapest
    first: graph navigation (equations 31-32) plus one stitch per
    registered index that embeds the path and supports the range
    (equations 33-34).  On a cost tie a supported plan beats navigation.

    [?env] (here and on every planning/execution entry below) overrides
    the engine's own environment for accounting: it must wrap the {e
    same store} ([Invalid_argument] otherwise) and is how concurrent
    domains keep private {!Storage.Stats.t} sheaves.  Default: the
    environment the engine was created over.
    @raise Invalid_argument unless [0 <= i < j <= n]. *)

val choose :
  ?env:Core.Exec.env -> t -> Gom.Path.t -> i:int -> j:int -> dir:Plan.dir -> choice
(** Cheapest strategy, through the plan cache. *)

(* {2 Execution} *)

val run_forward : ?env:Core.Exec.env -> t -> Plan.t -> Gom.Oid.t -> Gom.Value.t list
(** Execute a forward plan for one source object {e within the current
    accounting operation} (no [begin_op]) — for callers composing a
    larger operation.  @raise Invalid_argument on a backward plan, or on
    a stitch through an index that is no longer registered/healthy. *)

val run_backward : ?env:Core.Exec.env -> t -> Plan.t -> target:Gom.Value.t -> Gom.Oid.t list

val forward :
  ?env:Core.Exec.env -> t -> Gom.Path.t -> i:int -> j:int -> Gom.Oid.t -> Gom.Value.t list
(** Plan (cached) and execute as one accounting operation.  If a
    concurrent [unregister] or health change invalidates the chosen
    stitch mid-flight, execution degrades to graph navigation (recorded
    via {!Storage.Stats.note_fallback}) instead of failing. *)

val backward :
  ?env:Core.Exec.env ->
  t ->
  Gom.Path.t ->
  i:int ->
  j:int ->
  target:Gom.Value.t ->
  Gom.Oid.t list
(** Backward analogue of {!forward}; degrades to an extent scan. *)

val forward_batch :
  ?env:Core.Exec.env ->
  t ->
  Gom.Path.t ->
  i:int ->
  j:int ->
  Gom.Oid.t list ->
  (Gom.Oid.t * Gom.Value.t list) list
(** Evaluate many probes as {e one} accounting operation, sharing
    partition scans, B+ tree descents and page locality across the
    batch.  Probes are deduplicated and returned in sorted order — a
    deterministic function of the probe {e set}, which is what lets the
    parallel server split a batch across domains and merge chunk
    results back into the jobs-independent answer. *)

val backward_batch :
  ?env:Core.Exec.env ->
  t ->
  Gom.Path.t ->
  i:int ->
  j:int ->
  targets:Gom.Value.t list ->
  (Gom.Value.t * Gom.Oid.t list) list

(* {2 Explain} *)

type explanation = {
  x_path : Gom.Path.t;
  x_i : int;
  x_j : int;
  x_dir : Plan.dir;
  x_choice : choice;
  x_cached : bool;  (** Served from the plan cache. *)
  x_generation : int;
}

val explain : t -> Gom.Path.t -> i:int -> j:int -> dir:Plan.dir -> explanation

val explanation_to_string : explanation -> string
