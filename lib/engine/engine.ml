(* Cost-based query engine over access support relations.

   The engine owns the registered ASRs for one object base, measures (or
   accepts) statistical profiles, enumerates the legal physical
   strategies for a Q^(i,j) query (Definitions 3.4-3.8 decide which
   extensions apply), prices every strategy with the paper's analytical
   cost model (equations 31-35) fed by live profiles, caches the winning
   plan per query shape, and executes plans either probe-at-a-time or
   batched across many probes sharing B+ tree descents and leaf pages. *)

module QC = Costmodel.Query_cost

(* ------------------------------------------------------------------ *)
(* Physical plan IR                                                    *)
(* ------------------------------------------------------------------ *)

module Plan = struct
  type dir = Fwd | Bwd

  let dir_to_string = function Fwd -> "fw" | Bwd -> "bw"

  (* One partition visit while stitching a decomposed extension back
     together.  [enter] is the column at which the walk enters the
     partition: at a clustering boundary the visit is a key lookup, at
     an interior column every leaf page must be scanned (section 5.6). *)
  type step =
    | Lookup of { part : int; enter : int }
    | Scan of { part : int; enter : int }

  type t =
    | Nav of { path : Gom.Path.t; i : int; j : int }
        (** Forward pointer-chasing through the object graph. *)
    | Extent_scan of { path : Gom.Path.t; i : int; j : int }
        (** Backward by exhaustive search over the extent of [t_i]. *)
    | Stitch of {
        index : Core.Asr.t;
        dir : dir;
        i : int;
        j : int;  (** Object positions within the {e index's} path. *)
        steps : step list;
      }  (** Prefix/suffix stitch across the index's decomposition. *)
    | Union of t list  (** Merge sub-plan answers, duplicate-free. *)
    | Distinct of t

  let step_to_string = function
    | Lookup { part; enter } -> Printf.sprintf "lookup(p%d@c%d)" part enter
    | Scan { part; enter } -> Printf.sprintf "scan(p%d@c%d)" part enter

  let rec to_string = function
    | Nav { path; i; j } ->
      Printf.sprintf "nav fw(%d,%d) over %s" i j (Gom.Path.to_string path)
    | Extent_scan { path; i; j } ->
      Printf.sprintf "extent-scan bw(%d,%d) over %s" i j (Gom.Path.to_string path)
    | Stitch { index; dir; i; j; steps } ->
      Printf.sprintf "asr %s(%d,%d) %s/%s on %s [%s]" (dir_to_string dir) i j
        (Core.Extension.name (Core.Asr.kind index))
        (Core.Decomposition.to_string (Core.Asr.decomposition index))
        (Gom.Path.to_string (Core.Asr.path index))
        (String.concat " ; " (List.map step_to_string steps))
    | Union ps -> "union(" ^ String.concat " | " (List.map to_string ps) ^ ")"
    | Distinct p -> "distinct(" ^ to_string p ^ ")"
end

(* ------------------------------------------------------------------ *)
(* Engine state                                                        *)
(* ------------------------------------------------------------------ *)

type candidate = { plan : Plan.t; est_cost : float }

type choice = {
  chosen : Plan.t;
  est_cost : float;
  candidates : candidate list;  (** All priced strategies, cheapest first. *)
}

type cache_info = { hits : int; misses : int; invalidations : int; entries : int }

type key = { k_path : string; k_i : int; k_j : int; k_dir : Plan.dir }

type entry = { e_choice : choice; e_generation : int; e_warmth : int list }
(* [e_warmth] is the buffer-warmth fingerprint the plan was priced
   under: one decile bucket per segment (heap first, then registered
   indexes), [-1] for segments with no measured traffic, [] for
   unbuffered environments.  A cached plan is only reused while the
   fingerprint still matches — warming or cooling the pool re-plans, so
   nav/ASR choices can flip between cold and warm without waiting for a
   store mutation to bump the generation. *)

type t = {
  env : Core.Exec.env;
  lock : Mutex.t;
      (* Guards every mutable field below.  The engine is shared by the
         parallel server's worker domains: plan-cache lookups, counter
         updates, generation bumps and profile memoisation all happen
         under this lock; the expensive parts (candidate pricing,
         profile measurement, plan execution) run outside it. *)
  mutable indexes : Core.Asr.t list;
  mutable generation : int;
      (* Bumped on every store mutation and on index (un)registration;
         cached plans and measured profiles from older generations are
         stale. *)
  cache : (key, entry) Hashtbl.t;
  measured : (string, Costmodel.Profile.t) Hashtbl.t;
  pinned : (string, Costmodel.Profile.t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  sizes : Gom.Schema.type_name -> int;
  mutable health : (Core.Asr.t -> part:int -> bool) option;
      (* Consulted by the planner and the execution guards: [None] means
         every registered index is trusted; the integrity registry
         installs a callback so quarantined indexes/partitions are
         priced out and stale plans refuse to run. *)
  mutable freshness : freshness_mode;
      (* What planning and execution do with an index whose deferred
         maintenance buffers hold pending deltas (the freshness
         watermark).  Catch_up keeps deferred maintenance invisible to
         answers by flushing on first use; Degrade prices the stale
         index out and falls back to always-live plans — also exact,
         since navigation and extent scans never consult the trees. *)
}

and freshness_mode = Catch_up | Degrade

let with_lock t f = Mutex.protect t.lock f

exception Stale_plan
(* Internal: an execution guard met a plan stitching through an index
   that is no longer registered (or no longer healthy).  The high-level
   entry points catch it and degrade to the always-live navigational
   plan; the explicit [run_forward]/[run_backward] API surfaces it as
   Invalid_argument, as before. *)

let env t = t.env
let indexes t = with_lock t (fun () -> t.indexes)
let generation t = with_lock t (fun () -> t.generation)

(* Per-domain execution environments: workers pass their own [env]
   (a frozen snapshot view of the same lineage, private stats sheaf) so
   page accounting never races; [None] means the engine's own (live)
   environment. *)
let resolve_env t = function
  | None -> t.env
  | Some (e : Core.Exec.env) ->
    if not (Gom.Store_view.same_base e.Core.Exec.view t.env.Core.Exec.view) then
      invalid_arg "Engine: execution environment over a different store";
    e

let healthy_with health a ~part =
  match health with None -> true | Some f -> f a ~part

let invalidate_plans t = with_lock t (fun () -> t.generation <- t.generation + 1)

let set_health t f =
  with_lock t (fun () ->
      t.health <- Some f;
      t.generation <- t.generation + 1)

let clear_health t =
  with_lock t (fun () ->
      t.health <- None;
      t.generation <- t.generation + 1)

let freshness t = with_lock t (fun () -> t.freshness)

let set_freshness t mode =
  with_lock t (fun () ->
      t.freshness <- mode;
      t.generation <- t.generation + 1)

(* The freshness watermark: may [a] be stitched through right now?
   Always true for an index with no pending deltas (the common case is
   one integer read).  Otherwise Catch_up drains the buffers — charged
   to the caller's stats, so the first query over a stale index pays the
   catch-up — and Degrade refuses, which sends the planner or execution
   guard to navigation / extent scan. *)
let index_fresh ~env t a =
  Core.Asr.pending_deltas a = 0
  ||
  let stats = env.Core.Exec.stats in
  match with_lock t (fun () -> t.freshness) with
  | Catch_up ->
    ignore (Core.Asr.flush ~stats a);
    Storage.Stats.note_catchup_flush stats;
    true
  | Degrade ->
    Storage.Stats.note_freshness_degradation stats;
    false

(* May this environment walk the index's B+ trees right now?

   A snapshot environment carries version marks pinned at publication:
   the trees are usable iff they still sit at the pinned version, which
   means they reflect exactly the environment's epoch (publication
   flushes every buffer first, so pending deltas are strictly {e future}
   work relative to the snapshot).  A frozen environment without a mark
   never touches the trees.  A live environment falls back to the
   freshness watermark — including Catch_up's flush-on-first-use, which
   must never run on behalf of a frozen reader (it would pull future
   writes into a published epoch). *)
let tree_guard ~env t a =
  match Core.Exec.mark_for env (Core.Asr.id a) with
  | Some v -> if Core.Asr.acquire_trees a ~version:v then `Acquired else `Refuse
  | None ->
    if Gom.Store_view.is_frozen env.Core.Exec.view then `Refuse
    else if index_fresh ~env t a then `Plain
    else `Refuse

let with_index_trees ~env t a f =
  match tree_guard ~env t a with
  | `Plain -> f ()
  | `Refuse -> raise Stale_plan
  | `Acquired -> Fun.protect ~finally:(fun () -> Core.Asr.release_trees a) f

(* Planning-time mirror of [tree_guard] that never takes the reader
   slot: pricing only needs to know whether execution would succeed
   (execution re-guards with the real bracket). *)
let index_usable ~env t a =
  match Core.Exec.mark_for env (Core.Asr.id a) with
  | Some v -> Core.Asr.tree_version a = v
  | None ->
    (not (Gom.Store_view.is_frozen env.Core.Exec.view)) && index_fresh ~env t a

let create ?(sizes = fun _ -> 100) env =
  let t =
    {
      env;
      lock = Mutex.create ();
      indexes = [];
      generation = 0;
      cache = Hashtbl.create 64;
      measured = Hashtbl.create 8;
      pinned = Hashtbl.create 4;
      hits = 0;
      misses = 0;
      invalidations = 0;
      sizes;
      health = None;
      freshness = Catch_up;
    }
  in
  let (_ : Gom.Store.subscription) =
    Gom.Store.subscribe (Core.Exec.live_store_exn env) (fun _event ->
        with_lock t (fun () ->
            t.generation <- t.generation + 1;
            Hashtbl.reset t.measured))
  in
  t

let register t a =
  if not (Core.Asr.store a == Gom.Store_view.base t.env.Core.Exec.view) then
    invalid_arg "Engine.register: index built over a different store";
  with_lock t (fun () ->
      if not (List.memq a t.indexes) then begin
        t.indexes <- t.indexes @ [ a ];
        t.generation <- t.generation + 1
      end)

let rec plan_uses a (p : Plan.t) =
  match p with
  | Plan.Stitch { index; _ } -> index == a
  | Plan.Union ps -> List.exists (plan_uses a) ps
  | Plan.Distinct p -> plan_uses a p
  | Plan.Nav _ | Plan.Extent_scan _ -> false

let unregister t a =
  with_lock t (fun () ->
      if List.memq a t.indexes then begin
        t.indexes <- List.filter (fun x -> not (x == a)) t.indexes;
        t.generation <- t.generation + 1;
        (* Generation alone would re-plan lazily; evicting eagerly also
           frees the entries and guarantees no path — not even an explicit
           [run_forward] of a cached choice — can reach the dropped index. *)
        let victims =
          Hashtbl.fold
            (fun k e acc -> if plan_uses a e.e_choice.chosen then k :: acc else acc)
            t.cache []
        in
        List.iter (Hashtbl.remove t.cache) victims;
        t.invalidations <- t.invalidations + List.length victims
      end)

let step_part (s : Plan.step) =
  match s with Plan.Lookup { part; _ } | Plan.Scan { part; _ } -> part

let stitch_usable_with indexes health index steps =
  List.memq index indexes
  && List.for_all (fun s -> healthy_with health index ~part:(step_part s)) steps

(* Execution-time guard: re-reads the registration and health state
   under the lock (callers hold no lock). *)
let stitch_usable t index steps =
  let indexes, health = with_lock t (fun () -> (t.indexes, t.health)) in
  stitch_usable_with indexes health index steps

(* A plan is live when every index it stitches through is still
   registered and fully healthy over the partitions it visits. *)
let rec plan_live_with indexes health (p : Plan.t) =
  match p with
  | Plan.Nav _ | Plan.Extent_scan _ -> true
  | Plan.Stitch { index; steps; _ } -> stitch_usable_with indexes health index steps
  | Plan.Union ps -> List.for_all (plan_live_with indexes health) ps
  | Plan.Distinct p -> plan_live_with indexes health p

let cache_info t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        invalidations = t.invalidations;
        entries = Hashtbl.length t.cache;
      })

(* ------------------------------------------------------------------ *)
(* Profiles                                                            *)
(* ------------------------------------------------------------------ *)

let measure_profile_view ?(sizes = fun _ -> 100) view path =
  let n = Gom.Path.length path in
  let type_count i =
    let ty = Gom.Path.type_at path i in
    if Gom.Schema.is_atomic (Gom.Store_view.schema view) ty then begin
      (* Elementary terminal type: its "extent" is the set of distinct
         values actually referenced (their value is their identity). *)
      let step = Gom.Path.step path n in
      let values = Hashtbl.create 64 in
      List.iter
        (fun o ->
          match Gom.Store_view.get_attr view o step.Gom.Path.attr with
          | Gom.Value.Null -> ()
          | v -> (
            match step.Gom.Path.set_type with
            | None -> Hashtbl.replace values v ()
            | Some _ ->
              List.iter
                (fun e -> Hashtbl.replace values e ())
                (Gom.Store_view.elements view (Gom.Value.oid_exn v))))
        (Gom.Store_view.extent ~deep:true view step.Gom.Path.domain);
      max 1 (Hashtbl.length values)
    end
    else max 1 (Gom.Store_view.count ~deep:true view ty)
  in
  let level i =
    (* d_i, total references, distinct referenced targets of A(i+1). *)
    let step = Gom.Path.step path (i + 1) in
    let defined = ref 0 in
    let refs = ref 0 in
    let distinct = Hashtbl.create 64 in
    List.iter
      (fun o ->
        match Gom.Store_view.get_attr view o step.Gom.Path.attr with
        | Gom.Value.Null -> ()
        | v -> (
          incr defined;
          match step.Gom.Path.set_type with
          | None ->
            incr refs;
            Hashtbl.replace distinct v ()
          | Some _ ->
            List.iter
              (fun e ->
                incr refs;
                Hashtbl.replace distinct e ())
              (Gom.Store_view.elements view (Gom.Value.oid_exn v))))
      (Gom.Store_view.extent ~deep:true view step.Gom.Path.domain);
    (!defined, !refs, Hashtbl.length distinct)
  in
  let stats = List.init n level in
  let c = List.init (n + 1) (fun i -> float_of_int (type_count i)) in
  let d = List.map (fun (defined, _, _) -> float_of_int defined) stats in
  let fan =
    List.map
      (fun (defined, refs, _) ->
        if defined = 0 then 0. else float_of_int refs /. float_of_int defined)
      stats
  in
  let shar =
    List.map
      (fun (_, refs, distinct) ->
        if distinct = 0 then 0. else float_of_int refs /. float_of_int distinct)
      stats
  in
  let size_list =
    List.init (n + 1) (fun i -> float_of_int (max 1 (sizes (Gom.Path.type_at path i))))
  in
  Costmodel.Profile.make ~sizes:size_list ~shar ~c ~d ~fan ()

let measure_profile ?sizes store path =
  measure_profile_view ?sizes (Gom.Store_view.live store) path

let set_profile t path prof =
  with_lock t (fun () ->
      Hashtbl.replace t.pinned (Gom.Path.to_string path) prof;
      t.generation <- t.generation + 1)

let profile_in ~env t path =
  let key = Gom.Path.to_string path in
  let memoised =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.pinned key with
        | Some p -> Some p
        | None -> Hashtbl.find_opt t.measured key)
  in
  match memoised with
  | Some p -> p
  | None ->
    (* Measure outside the lock, over the {e caller's} view: a worker
       domain measures its own frozen snapshot (immutable, so the walk
       can never race the writer), the engine's own environment measures
       the live base.  Two domains missing simultaneously publish
       near-identical profiles; the first insert wins, and any store
       mutation resets the memo — a stale entry can only mis-price a
       plan, never mis-answer a query. *)
    let p = measure_profile_view ~sizes:t.sizes env.Core.Exec.view path in
    with_lock t (fun () ->
        match Hashtbl.find_opt t.pinned key with
        | Some pinned -> pinned
        | None -> (
          match Hashtbl.find_opt t.measured key with
          | Some first -> first
          | None ->
            Hashtbl.replace t.measured key p;
            p))

let profile t path = profile_in ~env:t.env t path

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)
(* ------------------------------------------------------------------ *)

(* Object-position offset at which the query path embeds in an index
   path: the index positions off..off+n spell exactly the query's
   anchor type and attribute chain. *)
let embedding_offset ~index_path ~query_path =
  let np = Gom.Path.length index_path in
  let len = Gom.Path.length query_path in
  let anchor = Gom.Path.type_at query_path 0 in
  let attrs = List.map (fun s -> s.Gom.Path.attr) query_path.Gom.Path.steps in
  let fits off =
    String.equal (Gom.Path.type_at index_path off) anchor
    && List.for_all2
         (fun k attr ->
           String.equal (Gom.Path.step index_path (off + k)).Gom.Path.attr attr)
         (List.init len (fun k -> k + 1))
         attrs
  in
  let rec go off =
    if off + len > np then None else if fits off then Some off else go (off + 1)
  in
  go 0

(* The analytical model works on object positions (its m = n
   simplification drops set-OID columns); map a physical decomposition's
   boundaries accordingly, discarding boundaries that sit on set
   columns. *)
let analytic_decomposition path dec =
  let n = Gom.Path.length path in
  let bounds =
    Core.Decomposition.boundaries dec
    |> List.filter_map (fun col -> Gom.Path.object_position_of_column path col)
    |> List.sort_uniq Int.compare
  in
  let bounds = if List.mem 0 bounds then bounds else 0 :: bounds in
  let bounds =
    if List.mem n bounds then bounds else List.sort_uniq Int.compare (n :: bounds)
  in
  Core.Decomposition.make ~m:n bounds

(* Static partition walks, mirroring Exec.forward_supported /
   backward_supported exactly. *)

let forward_steps index ~ci ~cj =
  let rec go pidx cur acc =
    let lo, hi = Core.Asr.partition_bounds index pidx in
    let s =
      if cur > lo then Plan.Scan { part = pidx; enter = cur }
      else Plan.Lookup { part = pidx; enter = cur }
    in
    let stop = min hi cj in
    if stop >= cj then List.rev (s :: acc) else go (pidx + 1) stop (s :: acc)
  in
  go (Core.Asr.partition_index_of_column index ci) ci []

(* Index of the partition whose clustering end matches [col] if any,
   else the one containing it (same rule as Exec). *)
let part_ending index col =
  let k = ref (-1) in
  for idx = 0 to Core.Asr.partition_count index - 1 do
    let _, hi = Core.Asr.partition_bounds index idx in
    if !k < 0 && hi = col then k := idx
  done;
  if !k >= 0 then !k else Core.Asr.partition_index_of_column index col

let backward_steps index ~ci ~cj =
  let rec go pidx cur acc =
    let lo, hi = Core.Asr.partition_bounds index pidx in
    let s =
      if cur < hi then Plan.Scan { part = pidx; enter = cur }
      else Plan.Lookup { part = pidx; enter = cur }
    in
    let stop = max lo ci in
    if stop <= ci then List.rev (s :: acc) else go (pidx - 1) stop (s :: acc)
  in
  go (part_ending index cj) cj []

let steps_for index dir ~i ~j =
  let path = Core.Asr.path index in
  let ci = Gom.Path.column_of_object_position path i in
  let cj = Gom.Path.column_of_object_position path j in
  match (dir : Plan.dir) with
  | Fwd -> forward_steps index ~ci ~cj
  | Bwd -> backward_steps index ~ci ~cj

let qkind = function Plan.Fwd -> QC.Fw | Plan.Bwd -> QC.Bw

(* Buffer warmth, summarised per segment as a decile bucket (-1 when
   the segment has no measured traffic).  The fingerprint orders the
   heap first, then the registered indexes. *)
let warmth_bucket = function
  | None -> -1
  | Some r -> int_of_float (Float.min 0.99 (Float.max 0. r) *. 10.)

let warmth_fingerprint ~env indexes =
  let st = env.Core.Exec.stats in
  if not (Storage.Stats.has_buffer st) then []
  else
    warmth_bucket (Storage.Stats.segment_hit_ratio st "heap")
    :: List.map
         (fun a -> warmth_bucket (Storage.Stats.segment_hit_ratio st (Core.Asr.seg a)))
         indexes

let check_range path ~i ~j =
  let n = Gom.Path.length path in
  if not (0 <= i && i < j && j <= n) then
    invalid_arg (Printf.sprintf "Engine: invalid query range (%d,%d) for n=%d" i j n)

let candidates ?env t path ~i ~j ~dir =
  let env = resolve_env t env in
  check_range path ~i ~j;
  (* One consistent view of the registrations and health for the whole
     enumeration; pricing happens outside the lock. *)
  let indexes, health = with_lock t (fun () -> (t.indexes, t.health)) in
  let prof_q = profile_in ~env t path in
  let nav_plan =
    match (dir : Plan.dir) with
    | Fwd -> Plan.Nav { path; i; j }
    | Bwd -> Plan.Extent_scan { path; i; j }
  in
  (* Buffer-aware pricing: equations 31-35 assume every access faults;
     scale each candidate by the measured hit ratio of the segment it
     would actually touch (navigation and extent scans read heap pages,
     a stitch reads its index's trees), so nav-vs-ASR choices flip
     correctly between cold and warm cache. *)
  let seg_ratio seg = Storage.Stats.segment_hit_ratio env.Core.Exec.stats seg in
  let nav =
    { plan = nav_plan;
      est_cost = QC.warmed (QC.qnas prof_q (qkind dir) i j) ~hit_ratio:(seg_ratio "heap") }
  in
  let whole ipath off = off = 0 && Gom.Path.length ipath = Gom.Path.length path in
  let degraded = ref false in
  let supported =
    List.filter_map
      (fun a ->
        let ipath = Core.Asr.path a in
        match embedding_offset ~index_path:ipath ~query_path:path with
        | Some off when Core.Asr.supports a ~i:(off + i) ~j:(off + j) ->
          let pi = off + i and pj = off + j in
          let steps = steps_for a dir ~i:pi ~j:pj in
          if not (stitch_usable_with indexes health a steps) then begin
            (* The index embeds the path and supports the range, but is
               quarantined over a partition this walk would visit: plan
               around it. *)
            degraded := true;
            None
          end
          else if not (index_usable ~env t a) then
            (* The trees are out of reach for this environment: version
               moved past a snapshot's pin, a frozen env without a mark,
               or pending deltas under Degrade.  Price the index out;
               the always-live plans below stay exact. *)
            None
          else begin
            let prof_i = if whole ipath off then prof_q else profile_in ~env t ipath in
            let dec = analytic_decomposition ipath (Core.Asr.decomposition a) in
            let est =
              QC.warmed
                (QC.qsup prof_i (Core.Asr.kind a) dec (qkind dir) pi pj)
                ~hit_ratio:(seg_ratio (Core.Asr.seg a))
            in
            Some
              { plan = Plan.Stitch { index = a; dir; i = pi; j = pj; steps }; est_cost = est }
          end
        | _ -> None)
      indexes
  in
  if !degraded then Storage.Stats.note_fallback env.Core.Exec.stats;
  (* Cheapest first; on a cost tie a supported plan beats navigation
     (matching equation 35's dispatch when the model cannot separate
     them). *)
  let rank (c : candidate) = match c.plan with Plan.Stitch _ -> 0 | _ -> 1 in
  List.sort
    (fun (a : candidate) (b : candidate) ->
      match Float.compare a.est_cost b.est_cost with
      | 0 -> Int.compare (rank a) (rank b)
      | c -> c)
    (nav :: supported)

let choose_aux ?env t path ~i ~j ~dir =
  check_range path ~i ~j;
  let key = { k_path = Gom.Path.to_string path; k_i = i; k_j = j; k_dir = dir } in
  let renv = resolve_env t env in
  let fp = warmth_fingerprint ~env:renv (with_lock t (fun () -> t.indexes)) in
  let hit =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.cache key with
        | Some e
          when e.e_generation = t.generation
               && e.e_warmth = fp
               && plan_live_with t.indexes t.health e.e_choice.chosen ->
          t.hits <- t.hits + 1;
          Some (e.e_choice, true)
        | stale ->
          if Option.is_some stale then begin
            Hashtbl.remove t.cache key;
            t.invalidations <- t.invalidations + 1
          end;
          t.misses <- t.misses + 1;
          None)
  in
  match hit with
  | Some r -> r
  | None ->
    (* Plan outside the lock, then re-check the generation before
       publishing: a plan priced against state that has since moved
       (concurrent register/unregister/quarantine/mutation) is returned
       to this caller but never cached, so no other domain can hit it. *)
    let gen0 = with_lock t (fun () -> t.generation) in
    let cands = candidates ?env t path ~i ~j ~dir in
    let best = List.hd cands in
    let choice = { chosen = best.plan; est_cost = best.est_cost; candidates = cands } in
    with_lock t (fun () ->
        if t.generation = gen0 then
          Hashtbl.replace t.cache key
            { e_choice = choice; e_generation = gen0; e_warmth = fp });
    (choice, false)

let choose ?env t path ~i ~j ~dir = fst (choose_aux ?env t path ~i ~j ~dir)

(* ------------------------------------------------------------------ *)
(* Execution: one probe                                                *)
(* ------------------------------------------------------------------ *)

let rec run_forward_exn ~env t plan oid =
  match (plan : Plan.t) with
  | Nav { path; i; j } -> Core.Exec.forward_scan env path ~i ~j oid
  | Stitch { index; i; j; steps; _ } ->
    if not (stitch_usable t index steps) then raise Stale_plan;
    with_index_trees ~env t index (fun () ->
        Core.Exec.forward_supported env index ~i ~j oid)
  | Extent_scan _ -> invalid_arg "Engine.run_forward: backward plan"
  | Union ps ->
    List.concat_map (fun p -> run_forward_exn ~env t p oid) ps
    |> List.sort_uniq Gom.Value.compare
  | Distinct p -> List.sort_uniq Gom.Value.compare (run_forward_exn ~env t p oid)

let run_forward ?env t plan oid =
  let env = resolve_env t env in
  try run_forward_exn ~env t plan oid
  with Stale_plan ->
    invalid_arg "Engine.run_forward: plan uses an unregistered or quarantined index"

let rec run_backward_exn ~env t plan ~target =
  match (plan : Plan.t) with
  | Extent_scan { path; i; j } -> Core.Exec.backward_scan env path ~i ~j ~target
  | Stitch { index; i; j; steps; _ } ->
    if not (stitch_usable t index steps) then raise Stale_plan;
    with_index_trees ~env t index (fun () ->
        Core.Exec.backward_supported env index ~i ~j ~target)
  | Nav _ -> invalid_arg "Engine.run_backward: forward plan"
  | Union ps ->
    List.concat_map (fun p -> run_backward_exn ~env t p ~target) ps
    |> List.sort_uniq Gom.Oid.compare
  | Distinct p -> List.sort_uniq Gom.Oid.compare (run_backward_exn ~env t p ~target)

let run_backward ?env t plan ~target =
  let env = resolve_env t env in
  try run_backward_exn ~env t plan ~target
  with Stale_plan ->
    invalid_arg "Engine.run_backward: plan uses an unregistered or quarantined index"

(* A chosen plan can go stale between planning and execution when
   another domain races an unregister or a quarantine.  Readers then
   degrade to the always-live navigational strategy (recorded as a
   fallback, plans invalidated) — never a wrong answer, never a
   crashed query. *)

let nav_fallback ~env t path ~i ~j oid =
  Storage.Stats.note_fallback env.Core.Exec.stats;
  invalidate_plans t;
  run_forward_exn ~env t (Plan.Nav { path; i; j }) oid

let scan_fallback ~env t path ~i ~j ~target =
  Storage.Stats.note_fallback env.Core.Exec.stats;
  invalidate_plans t;
  run_backward_exn ~env t (Plan.Extent_scan { path; i; j }) ~target

let forward ?env t path ~i ~j oid =
  let env = resolve_env t env in
  let c = choose ~env t path ~i ~j ~dir:Plan.Fwd in
  Storage.Stats.begin_op env.Core.Exec.stats;
  try run_forward_exn ~env t c.chosen oid
  with Stale_plan -> nav_fallback ~env t path ~i ~j oid

let backward ?env t path ~i ~j ~target =
  let env = resolve_env t env in
  let c = choose ~env t path ~i ~j ~dir:Plan.Bwd in
  Storage.Stats.begin_op env.Core.Exec.stats;
  try run_backward_exn ~env t c.chosen ~target
  with Stale_plan -> scan_fallback ~env t path ~i ~j ~target

(* ------------------------------------------------------------------ *)
(* Execution: batched probes                                           *)
(* ------------------------------------------------------------------ *)

let distinct_at rows col =
  rows
  |> List.filter_map (fun (row : Relation.Tuple.t) ->
         let v = row.(col) in
         if Gom.Value.is_null v then None else Some v)
  |> List.sort_uniq Gom.Value.compare

let assoc_rows fetched key =
  match List.find_opt (fun (k, _) -> Gom.Value.equal k key) fetched with
  | Some (_, rows) -> rows
  | None -> []

let is_empty = function [] -> true | _ :: _ -> false

(* Walk the partitions once for the whole batch ([frontiers] holds one
   frontier per probe): a partition entered at an interior column is
   scanned once and filtered per probe, a clustering-boundary entry
   turns into one sorted multi-key lookup sharing descents and leaf
   pages across probes.  The per-probe results are exactly those of
   Exec.forward_supported / backward_supported. *)

let batch_select ~stats index pidx ~interior ~col_in_part ~lookup_many frontiers =
  if interior then begin
    let rows = Core.Asr.scan_partition ~stats index pidx in
    fun frontier ->
      List.filter
        (fun (row : Relation.Tuple.t) ->
          List.exists (Gom.Value.equal row.(col_in_part)) frontier)
        rows
  end
  else begin
    let keys = Array.to_list frontiers |> List.concat in
    let fetched = lookup_many ~stats index pidx keys in
    fun frontier -> List.concat_map (assoc_rows fetched) frontier
  end

let advance frontiers select ~col_in_part =
  Array.map
    (fun f -> if is_empty f then [] else distinct_at (select f) col_in_part)
    frontiers

let batch_stitch_fwd ~env index ~i ~j frontiers =
  let stats = env.Core.Exec.stats in
  let path = Core.Asr.path index in
  let ci = Gom.Path.column_of_object_position path i in
  let cj = Gom.Path.column_of_object_position path j in
  let lookup_many ~stats index pidx keys =
    Core.Asr.lookup_fwd_many ~stats index pidx keys
  in
  let rec go pidx cur frontiers =
    (* Cancellation checkpoint between partition rounds: a whole round's
       descents and merges either happen or don't, so every frontier is
       still exact when Deadline.Expired propagates. *)
    Core.Exec.checkpoint env;
    if Array.for_all is_empty frontiers then frontiers
    else begin
      let lo, hi = Core.Asr.partition_bounds index pidx in
      let select =
        batch_select ~stats index pidx ~interior:(cur > lo) ~col_in_part:(cur - lo)
          ~lookup_many frontiers
      in
      let stop = min hi cj in
      let frontiers' = advance frontiers select ~col_in_part:(stop - lo) in
      if stop >= cj then frontiers' else go (pidx + 1) stop frontiers'
    end
  in
  go (Core.Asr.partition_index_of_column index ci) ci frontiers

let batch_stitch_bwd ~env index ~i ~j frontiers =
  let stats = env.Core.Exec.stats in
  let path = Core.Asr.path index in
  let ci = Gom.Path.column_of_object_position path i in
  let cj = Gom.Path.column_of_object_position path j in
  let lookup_many ~stats index pidx keys =
    Core.Asr.lookup_bwd_many ~stats index pidx keys
  in
  let rec go pidx cur frontiers =
    Core.Exec.checkpoint env;
    if Array.for_all is_empty frontiers then frontiers
    else begin
      let lo, hi = Core.Asr.partition_bounds index pidx in
      let select =
        batch_select ~stats index pidx ~interior:(cur < hi) ~col_in_part:(cur - lo)
          ~lookup_many frontiers
      in
      let stop = max lo ci in
      let frontiers' = advance frontiers select ~col_in_part:(stop - lo) in
      if stop <= ci then frontiers' else go (pidx - 1) stop frontiers'
    end
  in
  go (part_ending index cj) cj frontiers

let forward_batch ?env t path ~i ~j oids =
  let env = resolve_env t env in
  let c = choose ~env t path ~i ~j ~dir:Plan.Fwd in
  Storage.Stats.begin_op env.Core.Exec.stats;
  let probes = List.sort_uniq Gom.Oid.compare oids in
  match c.chosen with
  | Plan.Stitch { index; i = pi; j = pj; steps; _ } -> (
    try
      if not (stitch_usable t index steps) then raise Stale_plan;
      with_index_trees ~env t index (fun () ->
          let frontiers =
            Array.of_list (List.map (fun o -> [ Gom.Value.Ref o ]) probes)
          in
          let finals = batch_stitch_fwd ~env index ~i:pi ~j:pj frontiers in
          List.mapi (fun k o -> (o, finals.(k))) probes)
    with Stale_plan ->
      List.map (fun o -> (o, nav_fallback ~env t path ~i ~j o)) probes)
  | plan ->
    List.map
      (fun o ->
        ( o,
          try run_forward_exn ~env t plan o
          with Stale_plan -> nav_fallback ~env t path ~i ~j o ))
      probes

let backward_batch ?env t path ~i ~j ~targets =
  let env = resolve_env t env in
  let c = choose ~env t path ~i ~j ~dir:Plan.Bwd in
  Storage.Stats.begin_op env.Core.Exec.stats;
  let probes = List.sort_uniq Gom.Value.compare targets in
  match c.chosen with
  | Plan.Stitch { index; i = pi; j = pj; steps; _ } -> (
    try
      if not (stitch_usable t index steps) then raise Stale_plan;
      with_index_trees ~env t index (fun () ->
          let frontiers = Array.of_list (List.map (fun v -> [ v ]) probes) in
          let finals = batch_stitch_bwd ~env index ~i:pi ~j:pj frontiers in
          List.mapi
            (fun k v ->
              ( v,
                finals.(k) |> List.map Gom.Value.oid_exn
                |> List.sort_uniq Gom.Oid.compare ))
            probes)
    with Stale_plan ->
      List.map (fun v -> (v, scan_fallback ~env t path ~i ~j ~target:v)) probes)
  | plan ->
    List.map
      (fun v ->
        ( v,
          try run_backward_exn ~env t plan ~target:v
          with Stale_plan -> scan_fallback ~env t path ~i ~j ~target:v ))
      probes

(* ------------------------------------------------------------------ *)
(* Explain                                                             *)
(* ------------------------------------------------------------------ *)

type explanation = {
  x_path : Gom.Path.t;
  x_i : int;
  x_j : int;
  x_dir : Plan.dir;
  x_choice : choice;
  x_cached : bool;
  x_generation : int;
}

let explain t path ~i ~j ~dir =
  let choice, cached = choose_aux t path ~i ~j ~dir in
  {
    x_path = path;
    x_i = i;
    x_j = j;
    x_dir = dir;
    x_choice = choice;
    x_cached = cached;
    x_generation = t.generation;
  }

let explanation_to_string x =
  let b = Buffer.create 256 in
  Printf.bprintf b "query : %s(%d,%d) over %s\n" (Plan.dir_to_string x.x_dir) x.x_i
    x.x_j
    (Gom.Path.to_string x.x_path);
  Printf.bprintf b "plan  : %s\n" (Plan.to_string x.x_choice.chosen);
  Printf.bprintf b "cost  : %.1f estimated page accesses\n" x.x_choice.est_cost;
  Printf.bprintf b "cache : %s (generation %d)\n"
    (if x.x_cached then "hit" else "miss")
    x.x_generation;
  (match x.x_choice.candidates with
  | [] | [ _ ] -> ()
  | _ :: rest ->
    Buffer.add_string b "also considered:\n";
    List.iter
      (fun (c : candidate) ->
        Printf.bprintf b "  est %8.1f  %s\n" c.est_cost (Plan.to_string c.plan))
      rest);
  Buffer.contents b
