module T = Typecheck

type plan =
  | Nested_loop
  | Merged_backward of {
      choice : Engine.choice;
      path : Gom.Path.t;  (** The merged anchor-to-filter query path. *)
      target : Gom.Value.t;
      residual : T.tpred;  (** Anchor-only conjuncts checked afterwards. *)
    }

let plan_to_string = function
  | Nested_loop -> "nested-loop navigation"
  | Merged_backward { choice; residual; _ } ->
    let residual_s = match residual with T.TTrue -> "" | _ -> " + residual filter" in
    Printf.sprintf "merged backward: %s (est %.1f pages)%s"
      (Engine.Plan.to_string choice.Engine.chosen)
      choice.Engine.est_cost residual_s

type result = {
  rows : Gom.Value.t list list;
  plan : plan;
  pages : int;
}

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)
(* ------------------------------------------------------------------ *)

let rec conjuncts = function
  | T.TAnd (a, b) -> conjuncts a @ conjuncts b
  | T.TTrue -> []
  | p -> [ p ]

let rec conjoin = function
  | [] -> T.TTrue
  | [ p ] -> p
  | p :: rest -> T.TAnd (p, conjoin rest)

let rec pred_vars = function
  | T.TTrue -> []
  | T.TCmp (_, a, b) -> expr_vars a @ expr_vars b
  | T.TIn (e, p) -> p.T.base :: expr_vars e
  | T.TAnd (a, b) | T.TOr (a, b) -> pred_vars a @ pred_vars b
  | T.TNot p -> pred_vars p

and expr_vars = function T.TLit _ -> [] | T.TPath p -> [ p.T.base ]

(* The chain of bindings v0 in C, v1 in v0.P1, ..., vk in v(k-1).Pk —
   each variable rooted at its predecessor — merged with a filtered path
   into one anchor-rooted path expression.  Remaining conjuncts must
   mention only the anchor variable; they become a residual filter. *)
let merged_chain (q : T.t) =
  match q.T.bindings with
  | [] -> None
  | (v0, src0, _) :: rest -> (
    let anchor_ty =
      match src0 with
      | T.Extent ty -> Some ty
      | T.Named_set (_, elem) -> Some elem
      | T.Via _ -> None
    in
    match anchor_ty with
    | None -> None
    | Some anchor_ty -> (
      let rec chain prev attrs = function
        | [] -> Some attrs
        | (v, T.Via { base; path }, _) :: more when String.equal base prev ->
          chain v (attrs @ List.map (fun s -> s.Gom.Path.attr) path.Gom.Path.steps) more
        | _ -> None
      in
      match chain v0 [] rest with
      | None -> None
      | Some via_attrs -> (
        let last_var =
          match List.rev q.T.bindings with (v, _, _) :: _ -> v | [] -> v0
        in
        let indexable = function
          | T.TCmp (Ast.Eq, T.TPath p, T.TLit l) | T.TCmp (Ast.Eq, T.TLit l, T.TPath p)
            when String.equal p.T.base last_var && p.T.path <> None ->
            Some (p, T.lit_value l)
          | T.TIn (T.TLit l, p) when String.equal p.T.base last_var ->
            Some (p, T.lit_value l)
          | _ -> None
        in
        let cs = conjuncts q.T.where in
        let rec split acc = function
          | [] -> None
          | c :: rest -> (
            match indexable c with
            | Some hit -> Some (hit, List.rev_append acc rest)
            | None -> split (c :: acc) rest)
        in
        match split [] cs with
        | None -> None
        | Some ((p, target), residual_list) ->
          (* Residual conjuncts and the select list may only mention the
             anchor variable (the merged evaluation binds nothing else). *)
          let anchor_only =
            List.for_all (String.equal v0)
              (List.concat_map pred_vars residual_list
              @ List.concat_map
                  (function T.TLit _ -> [] | T.TPath tp -> [ tp.T.base ])
                  q.T.select)
          in
          if not anchor_only then None
          else
            let tail =
              match p.T.path with
              | Some path -> List.map (fun s -> s.Gom.Path.attr) path.Gom.Path.steps
              | None -> []
            in
            Some (anchor_ty, via_attrs @ tail, target, conjoin residual_list))))

(* The engine enumerates the physical strategies (navigation vs every
   registered index that embeds the merged path and supports the range)
   and picks the cheapest under live profiles — equations 31-35. *)
let resolve_env ~engine = function None -> Engine.env engine | Some e -> e

let plan ?env ~engine (q : T.t) =
  let env = resolve_env ~engine env in
  let schema = Gom.Store_view.schema env.Core.Exec.view in
  match merged_chain q with
  | None -> Nested_loop
  | Some (anchor_ty, attrs, target, residual) -> (
    match Gom.Path.make schema anchor_ty attrs with
    | exception Gom.Path.Path_error _ -> Nested_loop
    | query_path ->
      let n = Gom.Path.length query_path in
      let choice = Engine.choose ~env engine query_path ~i:0 ~j:n ~dir:Engine.Plan.Bwd in
      Merged_backward { choice; path = query_path; target; residual })

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(* Path-valued expressions are forward Q^(0,n) queries: the engine
   routes them through a covering access support relation when that is
   cheaper, falling back to object-graph navigation. *)
let values_of_expr ~engine ~env ~bindings = function
  | T.TLit l -> [ T.lit_value l ]
  | T.TPath { base; path; _ } -> (
    let v = List.assoc base bindings in
    match path with
    | None -> [ v ]
    | Some p -> (
      match v with
      | Gom.Value.Ref o ->
        let n = Gom.Path.length p in
        let c = Engine.choose ~env engine p ~i:0 ~j:n ~dir:Engine.Plan.Fwd in
        Engine.run_forward ~env engine c.Engine.chosen o
      | _ -> []))

let cmp_holds c a b =
  let r = Gom.Value.compare a b in
  match (c : Ast.cmp) with
  | Ast.Eq -> r = 0
  | Ast.Neq -> r <> 0
  | Ast.Lt -> r < 0
  | Ast.Le -> r <= 0
  | Ast.Gt -> r > 0
  | Ast.Ge -> r >= 0

let rec pred_holds ~engine ~env ~bindings = function
  | T.TTrue -> true
  | T.TCmp (c, a, b) ->
    let va = values_of_expr ~engine ~env ~bindings a in
    let vb = values_of_expr ~engine ~env ~bindings b in
    List.exists (fun x -> List.exists (fun y -> cmp_holds c x y) vb) va
  | T.TIn (e, p) ->
    let ve = values_of_expr ~engine ~env ~bindings e in
    let vp = values_of_expr ~engine ~env ~bindings (T.TPath p) in
    List.exists (fun x -> List.exists (Gom.Value.equal x) vp) ve
  | T.TAnd (a, b) ->
    pred_holds ~engine ~env ~bindings a && pred_holds ~engine ~env ~bindings b
  | T.TOr (a, b) ->
    pred_holds ~engine ~env ~bindings a || pred_holds ~engine ~env ~bindings b
  | T.TNot p -> not (pred_holds ~engine ~env ~bindings p)

let source_values ~engine ~env ~bindings = function
  | T.Extent ty ->
    Storage.Heap.scan_extent ~deep:true env.Core.Exec.heap env.Core.Exec.stats ty;
    Gom.Store_view.extent ~deep:true env.Core.Exec.view ty
    |> List.map (fun o -> Gom.Value.Ref o)
  | T.Named_set (oid, _) ->
    Storage.Heap.read_object env.Core.Exec.heap env.Core.Exec.stats oid;
    Gom.Store_view.elements env.Core.Exec.view oid
  | T.Via { base; path } -> (
    match List.assoc base bindings with
    | Gom.Value.Ref o ->
      let n = Gom.Path.length path in
      let c = Engine.choose ~env engine path ~i:0 ~j:n ~dir:Engine.Plan.Fwd in
      Engine.run_forward ~env engine c.Engine.chosen o
    | _ -> [])

let rec rows_product = function
  | [] -> [ [] ]
  | vs :: rest ->
    let tails = rows_product rest in
    List.concat_map (fun v -> List.map (fun tail -> v :: tail) tails) vs

let select_rows ~engine ~env ~bindings select =
  rows_product (List.map (values_of_expr ~engine ~env ~bindings) select)

let nested_loop ~engine ~env (q : T.t) =
  let out = ref [] in
  let rec loop bindings = function
    | [] ->
      if pred_holds ~engine ~env ~bindings q.T.where then
        out := select_rows ~engine ~env ~bindings q.T.select @ !out
    | (v, src, _) :: rest ->
      List.iter
        (fun value -> loop ((v, value) :: bindings) rest)
        (source_values ~engine ~env ~bindings src)
  in
  loop [] q.T.bindings;
  !out

let merged_backward ~engine ~env ~choice ~target ~residual (q : T.t) =
  let sources = Engine.run_backward ~env engine choice.Engine.chosen ~target in
  let v0, keep =
    match q.T.bindings with
    | (v0, T.Named_set (set_oid, _), _) :: _ ->
      let members = Gom.Store_view.elements env.Core.Exec.view set_oid in
      (v0, fun o -> List.exists (Gom.Value.equal (Gom.Value.Ref o)) members)
    | (v0, _, _) :: _ -> (v0, fun _ -> true)
    | [] -> assert false
  in
  List.concat_map
    (fun o ->
      let bindings = [ (v0, Gom.Value.Ref o) ] in
      if keep o && pred_holds ~engine ~env ~bindings residual then
        select_rows ~engine ~env ~bindings q.T.select
      else [])
    sources

let dedup_rows rows =
  List.sort_uniq (fun a b -> List.compare Gom.Value.compare a b) rows

let order_and_limit (q : T.t) rows =
  let rows =
    match q.T.order_by with
    | None -> rows
    | Some (col, dir) ->
      let cmp a b =
        let c = Gom.Value.compare (List.nth a col) (List.nth b col) in
        let c = if c <> 0 then c else List.compare Gom.Value.compare a b in
        match dir with Ast.Asc -> c | Ast.Desc -> -c
      in
      List.sort cmp rows
  in
  match q.T.limit with
  | None -> rows
  | Some n -> List.filteri (fun i _ -> i < n) rows

let run ?env ~engine (q : T.t) =
  let env = resolve_env ~engine env in
  let stats = env.Core.Exec.stats in
  let p = plan ~env ~engine q in
  Storage.Stats.begin_op stats;
  let rows =
    match p with
    | Nested_loop -> nested_loop ~engine ~env q
    | Merged_backward { choice; target; residual; _ } ->
      merged_backward ~engine ~env ~choice ~target ~residual q
  in
  {
    rows = order_and_limit q (dedup_rows rows);
    plan = p;
    pages = Storage.Stats.op_accesses stats;
  }

(* Scatter-gather merge for sharded execution: each shard evaluates the
   query over its full replica (fragment indexes give it its own slice
   of any backward stitch; navigation and residual filters are exact on
   every shard), so the per-shard row sets union to the unsharded
   answer.  Any row in the globally ordered first [limit] is within its
   own shard's first [limit], so re-applying ordering and limit to the
   deduplicated union reproduces the unsharded result exactly. *)
let merge_results (q : T.t) results =
  match results with
  | [] -> invalid_arg "Eval.merge_results: no shard results"
  | first :: _ ->
    let rows = dedup_rows (List.concat_map (fun r -> r.rows) results) in
    {
      rows = order_and_limit q rows;
      plan = first.plan;
      pages = List.fold_left (fun acc r -> acc + r.pages) 0 results;
    }

let query ?env ~engine text =
  let ast = Parser.parse text in
  let env = resolve_env ~engine env in
  let q = Typecheck.check_view env.Core.Exec.view ast in
  run ~env ~engine q
