exception Check_error of string

let error fmt = Format.kasprintf (fun s -> raise (Check_error s)) fmt

type rtype = Robj of Gom.Schema.type_name | Ratom of Gom.Schema.atomic

type tsource =
  | Extent of Gom.Schema.type_name
  | Named_set of Gom.Oid.t * Gom.Schema.type_name
  | Via of { base : string; path : Gom.Path.t }

type tpath = { base : string; path : Gom.Path.t option; rtype : rtype }

type texpr = TPath of tpath | TLit of Ast.lit

type tpred =
  | TTrue
  | TCmp of Ast.cmp * texpr * texpr
  | TIn of texpr * tpath
  | TAnd of tpred * tpred
  | TOr of tpred * tpred
  | TNot of tpred

type t = {
  bindings : (string * tsource * Gom.Schema.type_name) list;
  select : texpr list;
  where : tpred;
  order_by : (int * Ast.order) option;
  limit : int option;
}

let lit_value = function
  | Ast.Str s -> Gom.Value.Str s
  | Ast.Int i -> Gom.Value.Int i
  | Ast.Dec d -> Gom.Value.Dec d
  | Ast.Bool b -> Gom.Value.Bool b

let rtype_of_type schema ty =
  match Gom.Schema.atomic_of schema ty with
  | Some a -> Ratom a
  | None -> Robj ty

let check_path schema ~var ~var_ty attrs =
  match attrs with
  | [] -> { base = var; path = None; rtype = rtype_of_type schema var_ty }
  | _ -> (
    try
      let path = Gom.Path.make schema var_ty attrs in
      let result_ty = Gom.Path.type_at path (Gom.Path.length path) in
      { base = var; path = Some path; rtype = rtype_of_type schema result_ty }
    with Gom.Path.Path_error msg -> error "in path %s.%s: %s" var (String.concat "." attrs) msg)

let check_view view q =
  let schema = Gom.Store_view.schema view in
  (* Resolve bindings left to right; later sources may reference earlier
     variables. *)
  let bindings =
    List.fold_left
      (fun acc (v, src) ->
        if List.exists (fun (v', _, _) -> String.equal v v') acc then
          error "variable %s is bound twice" v;
        let tsource, elem_ty =
          match src with
          | Ast.Named name -> (
            match Gom.Store_view.find_name view name with
            | Some oid -> (
              let ty = Gom.Store_view.type_of view oid in
              match Gom.Schema.element_type schema ty with
              | Some elem -> (Named_set (oid, elem), elem)
              | None ->
                error "named root %s has type %s, which is not a collection" name ty)
            | None ->
              if Gom.Schema.is_tuple schema name then (Extent name, name)
              else error "unknown collection or type %s" name)
          | Ast.Via p -> (
            match List.find_opt (fun (v', _, _) -> String.equal p.Ast.var v') acc with
            | None -> error "variable %s is not bound (in %s)" p.Ast.var v
            | Some (_, _, base_ty) ->
              if p.Ast.attrs = [] then
                error "binding %s: a path source needs at least one attribute" v;
              let tp = check_path schema ~var:p.Ast.var ~var_ty:base_ty p.Ast.attrs in
              let path = Option.get tp.path in
              let elem =
                match tp.rtype with
                | Robj ty -> ty
                | Ratom _ -> Gom.Path.type_at path (Gom.Path.length path)
              in
              (Via { base = p.Ast.var; path }, elem))
        in
        (v, tsource, elem_ty) :: acc)
      [] q.Ast.from
    |> List.rev
  in
  let var_ty v =
    match List.find_opt (fun (v', _, _) -> String.equal v v') bindings with
    | Some (_, _, ty) -> ty
    | None -> error "variable %s is not bound" v
  in
  let check_expr = function
    | Ast.Lit l -> TLit l
    | Ast.Path p -> TPath (check_path schema ~var:p.Ast.var ~var_ty:(var_ty p.Ast.var) p.Ast.attrs)
  in
  let compatible a b =
    match (a, b) with
    | TLit la, TPath { rtype = Ratom at; _ } | TPath { rtype = Ratom at; _ }, TLit la -> (
      match (la, at) with
      | Ast.Str _, Gom.Schema.A_string
      | Ast.Int _, Gom.Schema.A_int
      | Ast.Dec _, Gom.Schema.A_dec
      | Ast.Bool _, Gom.Schema.A_bool ->
        true
      | (Ast.Str _ | Ast.Int _ | Ast.Dec _ | Ast.Bool _), _ -> false)
    | TLit _, TPath { rtype = Robj _; _ } | TPath { rtype = Robj _; _ }, TLit _ -> false
    | TLit _, TLit _ | TPath _, TPath _ -> true
  in
  let rec check_pred = function
    | Ast.True -> TTrue
    | Ast.Cmp (c, a, b) ->
      let ta = check_expr a and tb = check_expr b in
      if not (compatible ta tb) then
        error "incomparable operands in %s"
          (Format.asprintf "%a" Ast.pp_pred (Ast.Cmp (c, a, b)));
      TCmp (c, ta, tb)
    | Ast.In_pred (e, p) ->
      let te = check_expr e in
      let tp = check_path schema ~var:p.Ast.var ~var_ty:(var_ty p.Ast.var) p.Ast.attrs in
      if tp.path = None then error "'in' needs a path with at least one attribute";
      TIn (te, tp)
    | Ast.And (a, b) -> TAnd (check_pred a, check_pred b)
    | Ast.Or (a, b) -> TOr (check_pred a, check_pred b)
    | Ast.Not p -> TNot (check_pred p)
  in
  let select = List.map check_expr q.Ast.select in
  if select = [] then error "empty select list";
  (* ORDER BY resolves to a select column: either a 1-based integer
     reference or an expression syntactically equal to a column. *)
  let expr_equal (a : Ast.expr) (b : Ast.expr) =
    match (a, b) with
    | Ast.Lit la, Ast.Lit lb -> la = lb
    | Ast.Path pa, Ast.Path pb ->
      String.equal pa.Ast.var pb.Ast.var && List.equal String.equal pa.Ast.attrs pb.Ast.attrs
    | (Ast.Lit _ | Ast.Path _), _ -> false
  in
  let order_by =
    match q.Ast.order_by with
    | None -> None
    | Some (Ast.Lit (Ast.Int k), dir) ->
      if k < 1 || k > List.length q.Ast.select then
        error "order by column %d out of range 1..%d" k (List.length q.Ast.select);
      Some (k - 1, dir)
    | Some (e, dir) -> (
      let rec find i = function
        | [] -> error "order by expression %s is not a select column"
                  (Format.asprintf "%a" Ast.pp_expr e)
        | c :: _ when expr_equal c e -> i
        | _ :: rest -> find (i + 1) rest
      in
      ignore (check_expr e);
      Some (find 0 q.Ast.select, dir))
  in
  (match q.Ast.limit with
  | Some n when n < 0 -> error "limit must be non-negative"
  | _ -> ());
  { bindings; select; where = check_pred q.Ast.where; order_by; limit = q.Ast.limit }

let check store q = check_view (Gom.Store_view.live store) q
