(** Query evaluation through the cost-based engine.

    The planner recognises the paper's {e backward} query shape — a
    chain of range variables rooted in one collection, filtered by an
    equality (or membership) conjunct on a path from the last variable —
    merges the chain into a single path expression, and hands the
    resulting [Q^(0,n)] query to {!Engine.choose}: the engine enumerates
    graph navigation plus every registered access support relation that
    embeds the path and supports the range, prices them with the
    analytical cost model under live profiles (equations 31-35), and the
    cheapest physical plan wins.  Remaining conjuncts that mention only
    the anchor variable become a residual filter over the index results;
    everything else runs as a nested-loop navigation over the object
    graph.

    Repeated queries of the same shape hit the engine's plan cache;
    store mutations invalidate it transparently.  Page traffic is
    charged to the engine environment's accounting context
    ([env.stats]).

    Path-valued expressions have existential comparison semantics: a
    predicate [p = lit] holds if {e some} value reachable over [p]
    equals [lit] (paths through set-valued attributes denote value
    sets). *)

type plan =
  | Nested_loop
  | Merged_backward of {
      choice : Engine.choice;
          (** The engine's priced decision: a stitch through an ASR or
              an extent scan, with every considered alternative. *)
      path : Gom.Path.t;  (** The merged anchor-to-filter query path. *)
      target : Gom.Value.t;
      residual : Typecheck.tpred;
          (** Anchor-only conjuncts applied to the index results. *)
    }

val plan_to_string : plan -> string

type result = {
  rows : Gom.Value.t list list;  (** Sorted, duplicate-free. *)
  plan : plan;
  pages : int;  (** Page accesses charged while evaluating. *)
}

val plan : ?env:Core.Exec.env -> engine:Engine.t -> Typecheck.t -> plan
(** Choose a strategy (through the engine's plan cache); no page
    traffic.  [?env] (here and below) overrides the engine's own
    environment for accounting — it must wrap the same store, and is how
    concurrent domains evaluate through one shared engine with private
    {!Storage.Stats.t} sheaves. *)

val run : ?env:Core.Exec.env -> engine:Engine.t -> Typecheck.t -> result
(** Evaluate as one accounting operation on the environment's stats;
    [result.pages] reports the operation's page accesses. *)

val query : ?env:Core.Exec.env -> engine:Engine.t -> string -> result
(** Parse, check and run in one step.
    @raise Parser.Parse_error or Typecheck.Check_error accordingly. *)

val merge_results : Typecheck.t -> result list -> result
(** Merge per-shard results of the {e same} query into the unsharded
    answer: rows are unioned and deduplicated, ordering and limit are
    re-applied, pages are summed.  Sound because every shard evaluates
    over a full structural replica (only the index fragments differ),
    so the per-shard row sets union exactly and the global ordered
    first-[n] is contained in the per-shard ordered first-[n]s.
    @raise Invalid_argument on an empty result list. *)
