(** Schema-directed validation of parsed queries.

    Resolves range variables to their element types, checks every
    attribute chain against the schema (producing {!Gom.Path.t} values),
    and rejects unbound variables, unknown names and ill-typed
    comparisons. *)

exception Check_error of string

type rtype = Robj of Gom.Schema.type_name | Ratom of Gom.Schema.atomic

type tsource =
  | Extent of Gom.Schema.type_name
      (** Range over the (deep) extent of a type. *)
  | Named_set of Gom.Oid.t * Gom.Schema.type_name
      (** Range over a persistent root collection; the type is the
          element type. *)
  | Via of { base : string; path : Gom.Path.t }
      (** Range over the values reached from an earlier variable. *)

type tpath = {
  base : string;
  path : Gom.Path.t option;  (** [None]: the variable itself. *)
  rtype : rtype;
}

type texpr = TPath of tpath | TLit of Ast.lit

type tpred =
  | TTrue
  | TCmp of Ast.cmp * texpr * texpr
  | TIn of texpr * tpath
  | TAnd of tpred * tpred
  | TOr of tpred * tpred
  | TNot of tpred

type t = {
  bindings : (string * tsource * Gom.Schema.type_name) list;
      (** Variable, source, element type — in binding order. *)
  select : texpr list;
  where : tpred;
  order_by : (int * Ast.order) option;
      (** Resolved 0-based select column and direction. *)
  limit : int option;
}

val check_view : Gom.Store_view.t -> Ast.query -> t
(** Resolve and type a query against any read-only view — the live
    store or a frozen epoch snapshot (named roots resolve against the
    view's own name table).
    @raise Check_error on any name, scope or type violation. *)

val check : Gom.Store.t -> Ast.query -> t
(** [check_view] over the live store. *)

val lit_value : Ast.lit -> Gom.Value.t
