type flush_policy =
  | Immediate
  | Every_k_events of int
  | Bytes_threshold of int
  | On_query

let policy_to_string = function
  | Immediate -> "immediate"
  | Every_k_events k -> Printf.sprintf "every:%d" k
  | Bytes_threshold b -> Printf.sprintf "bytes:%d" b
  | On_query -> "onquery"

let policy_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  match s with
  | "immediate" -> Some Immediate
  | "onquery" | "on-query" | "on_query" -> Some On_query
  | _ ->
    let parse prefix mk =
      let pl = String.length prefix in
      if String.length s > pl && String.equal (String.sub s 0 pl) prefix then
        match int_of_string_opt (String.sub s pl (String.length s - pl)) with
        | Some n when n > 0 -> Some (mk n)
        | _ -> None
      else None
    in
    (match parse "every:" (fun k -> Every_k_events k) with
    | Some _ as r -> r
    | None -> parse "bytes:" (fun b -> Bytes_threshold b))

type t = {
  env : Exec.env;
  store : Gom.Store.t; (* = Exec.live_store_exn env: maintenance writes *)
  stats : Storage.Stats.t;
  mutable asrs : Asr.t list;
  suspended : (int, unit) Hashtbl.t;  (* keyed by Asr.id — identity set *)
  mutable policy : flush_policy;
  mutable events_since_flush : int;
}

let asrs t = List.rev t.asrs
let stats t = t.stats
let last_event_cost t = Storage.Stats.op_accesses t.stats

let value_oid v = Gom.Value.oid v

(* Path positions [i] (0-based, attribute [A(i+1)]) whose attribute
   matches a mutation of [attr] on an object of type [ty]. *)
let positions_matching schema path ~ty ~attr =
  let n = Gom.Path.length path in
  List.filter
    (fun i ->
      let step = Gom.Path.step path (i + 1) in
      String.equal step.Gom.Path.attr attr
      && Gom.Schema.is_subtype schema ~sub:ty ~sup:step.Gom.Path.domain)
    (List.init n Fun.id)

(* Positions [i] such that the mutated set instance can be the
   intermediate set [t'(i+1)] of the path. *)
let set_positions_matching schema path ~set_ty =
  let n = Gom.Path.length path in
  List.filter
    (fun i ->
      match (Gom.Path.step path (i + 1)).Gom.Path.set_type with
      | Some st -> Gom.Schema.is_subtype schema ~sub:set_ty ~sup:st
      | None -> false)
    (List.init n Fun.id)

let owners store (step : Gom.Path.step) set_oid =
  Gom.Store.extent ~deep:true store step.Gom.Path.domain
  |> List.filter (fun o ->
         Gom.Value.equal
           (Gom.Store.get_attr store o step.Gom.Path.attr)
           (Gom.Value.Ref set_oid))

(* ------------------------------------------------------------------ *)
(* I_l / I_r: maximal partial prefixes and suffixes                    *)
(* ------------------------------------------------------------------ *)

(* Maximal prefixes ending at [oid] sitting at object position [pos]:
   arrays covering columns 0 .. col(pos).  With [charge], the extent
   scans that implement backward traversal over uni-directional
   references are charged to [stats]. *)
let rec graph_prefixes t ~charge path ~pos ~oid =
  let ci = Gom.Path.column_of_object_position path pos in
  if pos = 0 then [ [| Gom.Value.Ref oid |] ]
  else begin
    let step = Gom.Path.step path pos in
    if charge then
      Storage.Heap.scan_extent ~deep:true t.env.Exec.heap t.stats step.Gom.Path.domain;
    let refs =
      Gom.Store.referencers t.store step.Gom.Path.domain step.Gom.Path.attr
        (Gom.Value.Ref oid)
    in
    match refs with
    | [] ->
      (* Maximal partial start: NULL padding up to this column. *)
      let arr = Array.make (ci + 1) Gom.Value.Null in
      arr.(ci) <- Gom.Value.Ref oid;
      [ arr ]
    | _ ->
      refs
      |> List.concat_map (fun (q, set_opt) ->
             let tail =
               match set_opt with
               | Some s -> [| Gom.Value.Ref s; Gom.Value.Ref oid |]
               | None -> [| Gom.Value.Ref oid |]
             in
             graph_prefixes t ~charge path ~pos:(pos - 1) ~oid:q
             |> List.map (fun pre -> Array.append pre tail))
  end

(* Maximal suffixes from [oid] at object position [pos]: arrays covering
   columns col(pos) .. m (NULL-padded after the path dies).  Forward
   traversal; object and set pages are charged. *)
let rec graph_suffixes t path ~pos ~oid =
  let m = Gom.Path.arity path - 1 in
  let ci = Gom.Path.column_of_object_position path pos in
  let n = Gom.Path.length path in
  let pad arr =
    let out = Array.make (m - ci + 1) Gom.Value.Null in
    Array.blit arr 0 out 0 (Array.length arr);
    out
  in
  Storage.Heap.read_object t.env.Exec.heap t.stats oid;
  if pos = n then [ [| Gom.Value.Ref oid |] ]
  else begin
    let step = Gom.Path.step path (pos + 1) in
    match Gom.Store.get_attr t.store oid step.Gom.Path.attr with
    | Gom.Value.Null -> [ pad [| Gom.Value.Ref oid |] ]
    | v -> (
      match step.Gom.Path.set_type with
      | None ->
        if pos + 1 = n && step.Gom.Path.range_atomic <> None then
          [ pad [| Gom.Value.Ref oid; v |] ]
        else
          graph_suffixes t path ~pos:(pos + 1) ~oid:(Gom.Value.oid_exn v)
          |> List.map (fun suf -> Array.append [| Gom.Value.Ref oid |] suf)
      | Some _ ->
        let set_oid = Gom.Value.oid_exn v in
        Storage.Heap.read_object t.env.Exec.heap t.stats set_oid;
        (match Gom.Store.elements t.store set_oid with
        | [] -> [ pad [| Gom.Value.Ref oid; v; Gom.Value.Null |] ]
        | elems ->
          elems
          |> List.concat_map (fun e ->
                 match value_oid e with
                 | Some eo when pos + 1 < n || (Gom.Path.step path n).Gom.Path.range_atomic = None ->
                   graph_suffixes t path ~pos:(pos + 1) ~oid:eo
                   |> List.map (fun suf ->
                          Array.append [| Gom.Value.Ref oid; v |] suf)
                 | Some _ | None ->
                   (* Set of elementary values at the last step. *)
                   [ pad [| Gom.Value.Ref oid; v; e |] ])))
  end

let has_edge (tup : Relation.Tuple.t) =
  match Relation.Tuple.defined_span tup with
  | Some (first, last) -> last > first
  | None -> false

let combine prefix suffix =
  Array.append prefix (Array.sub suffix 1 (Array.length suffix - 1))

(* Prefixes recovered from the retracted tuples: valid for full and
   left-complete extensions, where every inbound path of [o_i] is
   recorded.  [ci] is the column of position [i]. *)
let prefixes_from_affected ~ci affected =
  affected
  |> List.map (fun (tup : Relation.Tuple.t) -> Array.sub tup 0 (ci + 1))
  |> List.sort_uniq Relation.Tuple.compare

let referenced_now store path ~pos ~oid =
  if pos = 0 then true
  else
    let step = Gom.Path.step path pos in
    Gom.Store.referencers store step.Gom.Path.domain step.Gom.Path.attr
      (Gom.Value.Ref oid)
    <> []

(* Core routine: attribute [A(i+1)] of [obj] changed; [targets] are the
   position-(i+1) objects gaining or losing an inbound edge. *)
let handle_change t index ~i ~obj ~targets =
  let path = Asr.path index in
  let kind = Asr.kind index in
  let ci = Gom.Path.column_of_object_position path i in
  let ci1 = Gom.Path.column_of_object_position path (i + 1) in
  (* 1. Retract tuples through obj and truncated tuples of targets. *)
  let affected =
    Asr.find_by_column ~stats:t.stats index ~col:ci (Gom.Value.Ref obj)
  in
  List.iter (fun tup -> ignore (Asr.remove_tuple ~stats:t.stats index tup)) affected;
  (match kind with
  | Extension.Full | Extension.Right_complete ->
    List.iter
      (fun x ->
        Asr.find_by_column ~stats:t.stats index ~col:ci1 (Gom.Value.Ref x)
        |> List.iter (fun (tup : Relation.Tuple.t) ->
               if Gom.Value.is_null tup.(ci) then
                 ignore (Asr.remove_tuple ~stats:t.stats index tup)))
      targets
  | Extension.Canonical | Extension.Left_complete -> ());
  (* 2. Recompute the paths through obj. *)
  let prefixes =
    match kind with
    | Extension.Full ->
      let ps = prefixes_from_affected ~ci affected in
      if ps = [] then begin
        (* No recorded inbound path: mark the prefix NULL.  A horizontal
           fragment only records its {e owned} tuples, so an empty [ps]
           there must be confirmed against the store — the object may
           have inbound paths whose tuples live on other shards, and
           fabricating the NULL marker here would invent a tuple outside
           the global extension. *)
        if i > 0 && Asr.owner index <> None && referenced_now t.store path ~pos:i ~oid:obj
        then []
        else begin
          let arr = Array.make (ci + 1) Gom.Value.Null in
          arr.(ci) <- Gom.Value.Ref obj;
          [ arr ]
        end
      end
      else ps
    | Extension.Left_complete ->
      (* Position-0 objects are origin-complete by themselves; deeper
         positions are reachable from t0 iff the (left-complete) ASR
         held tuples through them. *)
      if i = 0 then [ [| Gom.Value.Ref obj |] ]
      else prefixes_from_affected ~ci affected
    | Extension.Canonical | Extension.Right_complete ->
      graph_prefixes t ~charge:true path ~pos:i ~oid:obj
  in
  if prefixes <> [] then begin
    let suffixes = graph_suffixes t path ~pos:i ~oid:obj in
    List.iter
      (fun pre ->
        List.iter
          (fun suf ->
            let tup = combine pre suf in
            if has_edge tup && Extension.member kind path tup then
              ignore (Asr.insert_tuple ~stats:t.stats index tup))
          suffixes)
      prefixes
  end;
  (* 3. Orphaned targets regain their truncated tuples. *)
  (match kind with
  | Extension.Full | Extension.Right_complete ->
    List.iter
      (fun x ->
        if
          Gom.Store.mem t.store x
          && not (referenced_now t.store path ~pos:(i + 1) ~oid:x)
        then begin
          let cx = ci1 in
          let pre = Array.make (cx + 1) Gom.Value.Null in
          pre.(cx) <- Gom.Value.Ref x;
          let sufs = graph_suffixes t path ~pos:(i + 1) ~oid:x in
          List.iter
            (fun suf ->
              let tup = combine pre suf in
              if has_edge tup && Extension.member kind path tup then
                ignore (Asr.insert_tuple ~stats:t.stats index tup))
            sufs
        end)
      targets
  | Extension.Canonical | Extension.Left_complete -> ())

let targets_of_value t (step : Gom.Path.step) v =
  match v with
  | Gom.Value.Null -> []
  | v -> (
    match step.Gom.Path.set_type with
    | None -> ( match value_oid v with Some o -> [ o ] | None -> [])
    | Some _ -> (
      match value_oid v with
      | Some set_oid when Gom.Store.mem t.store set_oid ->
        Gom.Store.elements t.store set_oid |> List.filter_map value_oid
      | Some _ | None -> []))

let handle_event t index ev =
  let store = t.store in
  let schema = Gom.Store.schema store in
  let path = Asr.path index in
  match ev with
  | Gom.Store.Created _ | Gom.Store.Deleted _ -> ()
  | Gom.Store.Attr_set { obj; attr; old_value; new_value } ->
    if Gom.Store.mem store obj then
      let ty = Gom.Store.type_of store obj in
      positions_matching schema path ~ty ~attr
      |> List.iter (fun i ->
             let step = Gom.Path.step path (i + 1) in
             let targets =
               targets_of_value t step old_value @ targets_of_value t step new_value
               |> List.sort_uniq Gom.Oid.compare
             in
             handle_change t index ~i ~obj ~targets)
  | Gom.Store.Set_inserted { set; elem } | Gom.Store.Set_removed { set; elem } ->
    if Gom.Store.mem store set then
      let set_ty = Gom.Store.type_of store set in
      set_positions_matching schema path ~set_ty
      |> List.iter (fun i ->
             let step = Gom.Path.step path (i + 1) in
             let os = owners store step set in
             let targets = match value_oid elem with Some o -> [ o ] | None -> [] in
             (* An orphan set is not represented in any extension. *)
             List.iter (fun o -> handle_change t index ~i ~obj:o ~targets) os)

(* ------------------------------------------------------------------ *)
(* Flush policies                                                      *)
(* ------------------------------------------------------------------ *)

let policy t = t.policy

let flush_asr t index = Asr.flush ~stats:t.stats index

let flush_all t =
  t.events_since_flush <- 0;
  List.fold_left (fun acc a -> acc + flush_asr t a) 0 t.asrs

let pending t = List.fold_left (fun acc a -> acc + Asr.pending_deltas a) 0 t.asrs

let pending_bytes t =
  List.fold_left (fun acc a -> acc + Asr.pending_bytes a) 0 t.asrs

let set_policy t p =
  t.policy <- p;
  t.events_since_flush <- 0;
  let defer = match p with Immediate -> false | _ -> true in
  List.iter (fun a -> Asr.set_deferred a defer) t.asrs;
  if not defer then ignore (flush_all t)

(* Threshold check after each store event; runs inside the event's
   accounting operation, so a flushing event pays for its flush. *)
let maybe_flush t =
  match t.policy with
  | Immediate | On_query -> ()
  | Every_k_events k ->
    t.events_since_flush <- t.events_since_flush + 1;
    if t.events_since_flush >= max 1 k then ignore (flush_all t)
  | Bytes_threshold b -> if pending_bytes t >= max 1 b then ignore (flush_all t)

let create env =
  let store = Exec.live_store_exn env in
  let t =
    {
      env;
      store;
      stats = env.Exec.stats;
      asrs = [];
      suspended = Hashtbl.create 16;
      policy = Immediate;
      events_since_flush = 0;
    }
  in
  let (_ : Gom.Store.subscription) =
    Gom.Store.subscribe store (fun ev ->
      Storage.Stats.begin_op t.stats;
      List.iter
        (fun index ->
          if not (Hashtbl.mem t.suspended (Asr.id index)) then
            handle_event t index ev)
        (List.rev t.asrs);
      maybe_flush t)
  in
  t

let register t index =
  if not (Asr.store index == t.store) then
    invalid_arg "Maintenance.register: ASR built over a different store";
  t.asrs <- index :: t.asrs;
  Asr.set_deferred index (match t.policy with Immediate -> false | _ -> true)

let suspend t index = Hashtbl.replace t.suspended (Asr.id index) ()

let resume t index = Hashtbl.remove t.suspended (Asr.id index)

let is_suspended t index = Hashtbl.mem t.suspended (Asr.id index)

let apply_event t index ev = handle_event t index ev
