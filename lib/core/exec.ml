type env = {
  view : Gom.Store_view.t;
  heap : Storage.Heap.t;
  stats : Storage.Stats.t;
  deadline : Deadline.t;
  marks : (int * int) list;
      (* (Asr.id, tree version) pinned at snapshot publication *)
}

let make_view ?stats ?buffer_pages ?deadline ?(marks = []) view heap =
  let stats =
    match (stats, buffer_pages) with
    | Some s, _ -> s
    | None, Some n when n > 0 -> Storage.Stats.create ~buffer_capacity:n ()
    | None, _ -> Storage.Stats.create ()
  in
  let deadline = match deadline with Some d -> d | None -> Deadline.none () in
  { view; heap; stats; deadline; marks }

let make ?stats ?buffer_pages ?deadline store heap =
  make_view ?stats ?buffer_pages ?deadline (Gom.Store_view.live store) heap

let live_store_exn env =
  match Gom.Store_view.live_store env.view with
  | Some s -> s
  | None -> invalid_arg "Exec: environment reads a frozen snapshot, not a live store"

let mark_for env id = List.assoc_opt id env.marks

let checkpoint env = Deadline.check env.deadline

let read_obj env oid =
  checkpoint env;
  Storage.Heap.read_object env.heap env.stats oid

let check_range path ~i ~j =
  let n = Gom.Path.length path in
  if not (0 <= i && i < j && j <= n) then
    invalid_arg (Printf.sprintf "Exec: invalid query range (%d,%d) for n=%d" i j n)

let sort_values vs = List.sort_uniq Gom.Value.compare vs

let sort_oids os = List.sort_uniq Gom.Oid.compare os

(* Values reachable at position [j] from object [oid] at position [p].
   Reads the pages of every object it dereferences an attribute of,
   i.e. positions p .. j-1 plus intermediate set instances. *)
let rec reach env path ~p ~j oid =
  if p >= j then [ Gom.Value.Ref oid ]
  else begin
    read_obj env oid;
    let step = Gom.Path.step path (p + 1) in
    match Gom.Store_view.get_attr env.view oid step.Gom.Path.attr with
    | Gom.Value.Null -> []
    | v -> (
      match step.Gom.Path.set_type with
      | None ->
        if p + 1 = j then [ v ]
        else reach env path ~p:(p + 1) ~j (Gom.Value.oid_exn v)
      | Some _ ->
        let set_oid = Gom.Value.oid_exn v in
        read_obj env set_oid;
        Gom.Store_view.elements env.view set_oid
        |> List.concat_map (fun e ->
               if p + 1 = j then [ e ]
               else reach env path ~p:(p + 1) ~j (Gom.Value.oid_exn e)))
  end

let forward_scan env path ~i ~j oid =
  check_range path ~i ~j;
  sort_values (reach env path ~p:i ~j oid)

let backward_scan env path ~i ~j ~target =
  check_range path ~i ~j;
  (* Memoised reachability test so that shared sub-objects are traversed
     (and their pages charged) once. *)
  let memo : (int * Gom.Oid.t, bool) Hashtbl.t = Hashtbl.create 1024 in
  let rec reaches p oid =
    match Hashtbl.find_opt memo (p, oid) with
    | Some r -> r
    | None ->
      let r =
        begin
          read_obj env oid;
          let step = Gom.Path.step path (p + 1) in
          match Gom.Store_view.get_attr env.view oid step.Gom.Path.attr with
          | Gom.Value.Null -> false
          | v -> (
            match step.Gom.Path.set_type with
            | None ->
              if p + 1 = j then Gom.Value.equal v target
              else reaches (p + 1) (Gom.Value.oid_exn v)
            | Some _ ->
              let set_oid = Gom.Value.oid_exn v in
              read_obj env set_oid;
              let elems = Gom.Store_view.elements env.view set_oid in
              if p + 1 = j then List.exists (Gom.Value.equal target) elems
              else
                List.exists (fun e -> reaches (p + 1) (Gom.Value.oid_exn e)) elems)
        end
      in
      Hashtbl.replace memo (p, oid) r;
      r
  in
  let sources = Gom.Store_view.extent ~deep:true env.view (Gom.Path.type_at path i) in
  sort_oids (List.filter (fun o -> reaches i o) sources)

(* ------------------------------------------------------------------ *)
(* Index-supported evaluation                                          *)
(* ------------------------------------------------------------------ *)

let distinct_at rows col_in_part =
  rows
  |> List.filter_map (fun (row : Relation.Tuple.t) ->
         let v = row.(col_in_part) in
         if Gom.Value.is_null v then None else Some v)
  |> sort_values

let forward_supported env index ~i ~j oid =
  let stats = env.stats in
  let path = Asr.path index in
  check_range path ~i ~j;
  let ci = Gom.Path.column_of_object_position path i in
  let cj = Gom.Path.column_of_object_position path j in
  let rec go pidx cur frontier =
    checkpoint env;
    if frontier = [] then []
    else
      let lo, hi = Asr.partition_bounds index pidx in
      let rows =
        if cur > lo then
          (* Entered the partition away from its clustering column:
             every page must be inspected. *)
          Asr.scan_partition ~stats index pidx
          |> List.filter (fun (row : Relation.Tuple.t) ->
                 List.exists (Gom.Value.equal row.(cur - lo)) frontier)
        else List.concat_map (fun key -> Asr.lookup_fwd ~stats index pidx key) frontier
      in
      let stop = min hi cj in
      let frontier' = distinct_at rows (stop - lo) in
      if stop >= cj then frontier' else go (pidx + 1) stop frontier'
  in
  let pidx = Asr.partition_index_of_column index ci in
  go pidx ci [ Gom.Value.Ref oid ]

let backward_supported env index ~i ~j ~target =
  let stats = env.stats in
  let path = Asr.path index in
  check_range path ~i ~j;
  let ci = Gom.Path.column_of_object_position path i in
  let cj = Gom.Path.column_of_object_position path j in
  (* Index of the partition whose clustering end matches [col] if any,
     else the one containing it. *)
  let part_ending col =
    let k = ref (-1) in
    for idx = 0 to Asr.partition_count index - 1 do
      let _, hi = Asr.partition_bounds index idx in
      if !k < 0 && hi = col then k := idx
    done;
    if !k >= 0 then !k else Asr.partition_index_of_column index col
  in
  let rec go pidx cur frontier =
    checkpoint env;
    if frontier = [] then []
    else
      let lo, hi = Asr.partition_bounds index pidx in
      let rows =
        if cur < hi then
          Asr.scan_partition ~stats index pidx
          |> List.filter (fun (row : Relation.Tuple.t) ->
                 List.exists (Gom.Value.equal row.(cur - lo)) frontier)
        else List.concat_map (fun key -> Asr.lookup_bwd ~stats index pidx key) frontier
      in
      let stop = max lo ci in
      let frontier' = distinct_at rows (stop - lo) in
      if stop <= ci then frontier' else go (pidx - 1) stop frontier'
  in
  let pidx = part_ending cj in
  go pidx cj [ target ] |> List.map Gom.Value.oid_exn |> sort_oids

let forward ?index env path ~i ~j oid =
  match index with
  | Some a when Asr.supports a ~i ~j && Gom.Path.equal (Asr.path a) path ->
    forward_supported env a ~i ~j oid
  | Some _ | None -> forward_scan env path ~i ~j oid

let backward ?index env path ~i ~j ~target =
  match index with
  | Some a when Asr.supports a ~i ~j && Gom.Path.equal (Asr.path a) path ->
    backward_supported env a ~i ~j ~target
  | Some _ | None -> backward_scan env path ~i ~j ~target
