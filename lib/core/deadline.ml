(* Cooperative cancellation budgets.

   A deadline is consulted at explicit checkpoints (page reads,
   partition rounds of the batch executors) via [check]; an expired
   budget raises [Expired] there and nowhere else, so cancellation can
   only ever observe the evaluator between two whole steps — never
   mid-mutation, never with a partial answer in hand.  The clock is
   injected, which keeps the expiry-at-every-checkpoint test sweep and
   the admission controller's simulated time fully deterministic. *)

exception Expired

type limit =
  | Never  (* also the probe mode: count checkpoints, never fire *)
  | At_time of { clock : unit -> float; expires_at : float }
  | At_checkpoint of int

type t = { mutable checkpoints : int; limit : limit }

let none () = { checkpoints = 0; limit = Never }
let probe = none

let until ~clock expires_at =
  { checkpoints = 0; limit = At_time { clock; expires_at } }

let after ~clock budget_s = until ~clock (clock () +. budget_s)

let at_checkpoint n =
  if n < 1 then invalid_arg "Deadline.at_checkpoint: n must be >= 1";
  { checkpoints = 0; limit = At_checkpoint n }

let checkpoints t = t.checkpoints

let expired t =
  match t.limit with
  | Never -> false
  | At_time { clock; expires_at } -> clock () >= expires_at
  | At_checkpoint n -> t.checkpoints >= n

let remaining_s t =
  match t.limit with
  | Never | At_checkpoint _ -> infinity
  | At_time { clock; expires_at } -> expires_at -. clock ()

let expires_at t =
  match t.limit with
  | Never | At_checkpoint _ -> None
  | At_time { expires_at; _ } -> Some expires_at

let check t =
  t.checkpoints <- t.checkpoints + 1;
  match t.limit with
  | Never -> ()
  | At_time { clock; expires_at } -> if clock () >= expires_at then raise Expired
  | At_checkpoint n -> if t.checkpoints >= n then raise Expired
