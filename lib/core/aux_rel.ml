let count path = Gom.Path.length path

let width path j =
  let step = Gom.Path.step path (j + 1) in
  match step.Gom.Path.set_type with Some _ -> 3 | None -> 2

let column_span path j =
  let lo = Gom.Path.column_of_object_position path j in
  let hi = Gom.Path.column_of_object_position path (j + 1) in
  (lo, hi)

let build_one_view view path j =
  let n = count path in
  if j < 0 || j >= n then invalid_arg "Aux_rel.build_one: index out of range";
  let step = Gom.Path.step path (j + 1) in
  let domain = step.Gom.Path.domain in
  let w = width path j in
  let rows = ref [] in
  let emit r = rows := r :: !rows in
  List.iter
    (fun o ->
      match Gom.Store_view.get_attr view o step.Gom.Path.attr with
      | Gom.Value.Null -> ()
      | v -> (
        match step.Gom.Path.set_type with
        | None -> emit [| Gom.Value.Ref o; v |]
        | Some _ ->
          let set_oid = Gom.Value.oid_exn v in
          (match Gom.Store_view.elements view set_oid with
          | [] -> emit [| Gom.Value.Ref o; v; Gom.Value.Null |]
          | elems -> List.iter (fun e -> emit [| Gom.Value.Ref o; v; e |]) elems)))
    (Gom.Store_view.extent ~deep:true view domain);
  Relation.of_list ~width:w !rows

let build_view view path = List.init (count path) (build_one_view view path)
let build_one store path j = build_one_view (Gom.Store_view.live store) path j
let build store path = build_view (Gom.Store_view.live store) path
