(** Executable query evaluation, with and without access support.

    The two abstract query forms of the paper (section 5.1) over a path
    [t0.A1.....An] and object positions [0 <= i < j <= n]:

    - {e forward} [Q^(i,j)(fw)]: from a given object [o] of type [ti],
      retrieve the objects/values reachable at position [j] via
      [o.A(i+1).....Aj];
    - {e backward} [Q^(i,j)(bw)]: retrieve the objects [o] of type [ti]
      whose path set at position [j] contains a given target.

    Without access support, evaluation navigates the object graph
    (forward) or exhaustively scans the anchor extent (backward), since
    references are uni-directional.  With access support, evaluation
    walks the B+ trees of the partitions, key-looking-up at clustering
    boundaries and scanning partitions entered in the middle — exactly
    the access patterns the paper's cost formulas (33)-(34) charge.

    All page traffic is reported to the environment's {!Storage.Stats.t}
    — the environment {e is} the accounting context; callers that want a
    fresh measurement call {!Storage.Stats.begin_op} on [env.stats]
    before evaluating. *)

type env = {
  view : Gom.Store_view.t;
      (** The read-only view every evaluation consumes: the live store
          for ordinary environments, a frozen epoch snapshot in the
          parallel server's executors. *)
  heap : Storage.Heap.t;
  stats : Storage.Stats.t;  (** Every evaluation charges its pages here. *)
  deadline : Deadline.t;
      (** Cooperative budget; {!checkpoint} sites raise
          {!Deadline.Expired} once it is exhausted. *)
  marks : (int * int) list;
      (** Index pins of a frozen environment: ({!Asr.id}, tree version)
          pairs recorded at snapshot publication.  The engine only walks
          an ASR's B+ trees on behalf of this environment if the ASR's
          current {!Asr.tree_version} still equals the pinned one —
          otherwise it degrades to navigation (exact, just slower).
          Empty for live environments. *)
}

val make :
  ?stats:Storage.Stats.t ->
  ?buffer_pages:int ->
  ?deadline:Deadline.t ->
  Gom.Store.t ->
  Storage.Heap.t ->
  env
(** [make store heap] builds an environment over the live store (a
    [Live] view, no marks) with a fresh cold {!Storage.Stats.t}; pass
    [?stats] to share or buffer one, or [?buffer_pages:n] (with [n > 0])
    to create the fresh stats with an [n]-page buffer pool attached
    (ignored when [?stats] is given).  [?deadline] defaults to
    {!Deadline.none} — no budget, zero-cost checkpoints. *)

val make_view :
  ?stats:Storage.Stats.t ->
  ?buffer_pages:int ->
  ?deadline:Deadline.t ->
  ?marks:(int * int) list ->
  Gom.Store_view.t ->
  Storage.Heap.t ->
  env
(** Generalisation of {!make} to any view; snapshot environments pass
    the frozen view plus the index marks pinned at publication. *)

val live_store_exn : env -> Gom.Store.t
(** The mutable store behind a [Live] environment — write paths
    (maintenance, transactions) recover mutation rights through this.
    @raise Invalid_argument on frozen environments. *)

val mark_for : env -> int -> int option
(** [mark_for env id] is the tree version pinned for ASR [id] at
    publication, if this is a snapshot environment that pinned it. *)

val checkpoint : env -> unit
(** Record one cancellation checkpoint against [env.deadline] (raising
    {!Deadline.Expired} when exhausted).  Called on every object read
    and every partition round; evaluators that add new bulk loops
    should call it once per round. *)

val forward_scan :
  env -> Gom.Path.t -> i:int -> j:int -> Gom.Oid.t -> Gom.Value.t list
(** Navigational evaluation of [Q^(i,j)(fw)] from one source object.
    Results are distinct, sorted; pages of objects at positions
    [i .. j-1] (and of traversed set instances) are read. *)

val backward_scan :
  env -> Gom.Path.t -> i:int -> j:int -> target:Gom.Value.t -> Gom.Oid.t list
(** Exhaustive evaluation of [Q^(i,j)(bw)]: scans the [ti] extent and
    tests reachability of [target] at position [j]. *)

val forward_supported :
  env -> Asr.t -> i:int -> j:int -> Gom.Oid.t -> Gom.Value.t list
(** Index evaluation of [Q^(i,j)(fw)].  The caller must ensure
    {!Asr.supports}; results on supported ranges agree with
    {!forward_scan} (property-tested). *)

val backward_supported :
  env -> Asr.t -> i:int -> j:int -> target:Gom.Value.t -> Gom.Oid.t list

val forward :
  ?index:Asr.t ->
  env ->
  Gom.Path.t ->
  i:int ->
  j:int ->
  Gom.Oid.t ->
  Gom.Value.t list
(** Dispatch per equation 35: use the index when it applies to [(i,j)],
    fall back to navigation otherwise. *)

val backward :
  ?index:Asr.t ->
  env ->
  Gom.Path.t ->
  i:int ->
  j:int ->
  target:Gom.Value.t ->
  Gom.Oid.t list
