type kind = Canonical | Full | Left_complete | Right_complete

let all = [ Canonical; Full; Left_complete; Right_complete ]

let name = function
  | Canonical -> "can"
  | Full -> "full"
  | Left_complete -> "left"
  | Right_complete -> "right"

let of_name = function
  | "can" | "canonical" -> Some Canonical
  | "full" -> Some Full
  | "left" | "left-complete" -> Some Left_complete
  | "right" | "right-complete" -> Some Right_complete
  | _ -> None

let join_kind = function
  | Canonical -> Relation.Natural
  | Full -> Relation.Full_outer
  | Left_complete -> Relation.Left_outer
  | Right_complete -> Relation.Right_outer

let compute_view view path kind =
  Relation.join_chain (join_kind kind) (Aux_rel.build_view view path)

let compute store path kind = compute_view (Gom.Store_view.live store) path kind

let supports kind ~n ~i ~j =
  0 <= i && i < j && j <= n
  &&
  match kind with
  | Canonical -> i = 0 && j = n
  | Full -> true
  | Left_complete -> i = 0
  | Right_complete -> j = n

let origin_complete _path (tup : Relation.Tuple.t) = not (Gom.Value.is_null tup.(0))

let terminal_complete path (tup : Relation.Tuple.t) =
  let n = Gom.Path.length path in
  let last_obj_col = Gom.Path.column_of_object_position path n in
  if not (Gom.Value.is_null tup.(last_obj_col)) then true
  else
    (* Empty-set marker at the final step: the set-OID column is defined
       while the element column is NULL. *)
    let step = Gom.Path.step path n in
    match step.Gom.Path.set_type with
    | Some _ -> not (Gom.Value.is_null tup.(last_obj_col - 1))
    | None -> false

let member kind path tup =
  match kind with
  | Full -> true
  | Canonical -> origin_complete path tup && terminal_complete path tup
  | Left_complete -> origin_complete path tup
  | Right_complete -> terminal_complete path tup
