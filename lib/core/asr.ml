type trees = {
  fwd : Storage.Bptree.t;
  bwd : Storage.Bptree.t;
  skey : string option; (* shared-segment key, when pooled *)
}

type part = { lo : int; hi : int; trees : trees }

(* One write-behind buffer per partition: net signed refcount delta per
   projected tuple, keyed by the tuple's serialisation.  A delta whose
   net reaches zero annihilates — the insert/delete pair never touches a
   page.  One buffer serves both redundant trees of the partition (they
   hold the same projection multiset). *)
type buffer = (string, Relation.Tuple.t * int) Hashtbl.t

(* Epoch gate over the mutable B+ trees.  Snapshot readers on other
   domains pin [version] at publication and run tree probes inside an
   [acquire_trees]/[release_trees] bracket; the (mutex-serialised)
   writer seals the gate, spins until in-flight readers drain, mutates
   the trees, bumps [version] and reopens.  A reader that loses the race
   — gate closed, or version moved past its pin — refuses the trees and
   the engine degrades to navigation, which stays exact. *)
type gate = {
  closed : bool Atomic.t;
  readers : int Atomic.t;
  version : int Atomic.t;
}

type t = {
  id : int;  (* process-unique identity, usable as a hash key *)
  store : Gom.Store.t;
  path : Gom.Path.t;
  kind : Extension.kind;
  dec : Decomposition.t;
  config : Storage.Config.t;
  pager : Storage.Pager.t;
  owner : (Relation.Tuple.t -> bool) option;
      (* placement predicate: when set, this relation materialises only
         the extension tuples the predicate owns (horizontal sharding) *)
  mutable extension : Relation.t;
  parts : part array;
  mutable deferred : bool;
  pending : buffer array;  (* same length as [parts] *)
  mutable pending_total : int;  (* net deltas across all buffers *)
  gate : gate;
}

let next_id = ref 0

type pool = {
  pool_store : Gom.Store.t;
  pool_config : Storage.Config.t;
  pool_pager : Storage.Pager.t;
  mutable segments : (string * trees) list;
}

let id t = t.id
let seg t = "asr" ^ string_of_int t.id

(* Tag page traffic from this relation's trees with its segment name so
   the buffer pool can report per-segment hit ratios (planner warmth). *)
let in_seg ?stats t f =
  match stats with
  | Some st -> Storage.Stats.in_segment st (seg t) f
  | None -> f ()

let store t = t.store
let owner t = t.owner
let restrict t rel = match t.owner with Some f -> Relation.filter rel f | None -> rel
let path t = t.path
let kind t = t.kind
let decomposition t = t.dec
let config t = t.config
let arity t = Gom.Path.arity t.path
let extension_relation t = t.extension
let cardinal t = Relation.cardinal t.extension
let partition_count t = Array.length t.parts

let partition_bounds t i =
  let p = t.parts.(i) in
  (p.lo, p.hi)

let partition_index_of_column t col =
  let found = ref (-1) in
  Array.iteri (fun i p -> if !found < 0 && p.lo = col then found := i) t.parts;
  if !found < 0 then
    Array.iteri
      (fun i p -> if !found < 0 && p.lo <= col && col <= p.hi then found := i)
      t.parts;
  if !found < 0 then invalid_arg "Asr.partition_index_of_column: out of range";
  !found

let cols (lo, hi) = List.init (hi - lo + 1) (fun k -> lo + k)

let project_tuple tup (lo, hi) = Relation.Tuple.project tup (cols (lo, hi))

(* ------------------------------------------------------------------ *)
(* Section 5.4: sharing of access support relation partitions          *)
(* ------------------------------------------------------------------ *)

let make_pool ?(config = Storage.Config.default) ?(pager = Storage.Pager.create ()) store
    =
  { pool_store = store; pool_config = config; pool_pager = pager; segments = [] }

(* The content of a partition over columns [lo..hi] is determined by the
   path steps whose auxiliary relations contribute the adjacent column
   pairs of the span (plus, for left-/right-complete extensions, by the
   fact that the span is a complete prefix/suffix).  Two partitions with
   equal keys hold equal relations, so their B+ trees can be shared
   (paper, section 5.4). *)
let segment_key path kind ~lo ~hi =
  let m = Gom.Path.arity path - 1 in
  let eligible =
    match (kind : Extension.kind) with
    | Extension.Full -> true
    | Extension.Left_complete -> lo = 0
    | Extension.Right_complete -> hi = m
    | Extension.Canonical -> false
  in
  if not eligible then None
  else begin
    let n = Gom.Path.length path in
    (* Owning step and role of the adjacent column pair (c, c+1). *)
    let pair_desc c =
      let rec find i =
        if i > n then invalid_arg "Asr.segment_key: column out of range"
        else
          let c_lo = Gom.Path.column_of_object_position path (i - 1) in
          let c_hi = Gom.Path.column_of_object_position path i in
          if c >= c_lo && c + 1 <= c_hi then
            let s = Gom.Path.step path i in
            let role =
              match s.Gom.Path.set_type with
              | None -> "ref"
              | Some _ -> if c = c_lo then "own" else "elem"
            in
            Printf.sprintf "%s.%s[%s>%s/%s]" s.Gom.Path.domain s.Gom.Path.attr role
              (Option.value ~default:"-" s.Gom.Path.set_type)
              s.Gom.Path.range
          else find (i + 1)
      in
      find 1
    in
    let pairs = List.init (hi - lo) (fun k -> pair_desc (lo + k)) in
    Some (Extension.name kind ^ "|" ^ String.concat ";" pairs)
  end

(* ------------------------------------------------------------------ *)

let insert_projection trees tup (lo, hi) =
  let proj = project_tuple tup (lo, hi) in
  Storage.Bptree.insert trees.fwd proj;
  Storage.Bptree.insert trees.bwd proj

let fresh_trees ~config ~pager ~width ~skey =
  let tuple_bytes = width * config.Storage.Config.oid_size in
  {
    fwd = Storage.Bptree.create ~config ~pager ~tuple_bytes ~key_of:(fun tup -> tup.(0));
    bwd =
      Storage.Bptree.create ~config ~pager ~tuple_bytes ~key_of:(fun tup ->
          tup.(width - 1));
    skey;
  }

let create ?(config = Storage.Config.default) ?(pager = Storage.Pager.create ()) ?pool
    ?owner store path kind dec =
  let m = Gom.Path.arity path - 1 in
  (match List.rev (Decomposition.boundaries dec) with
  | last :: _ when last = m -> ()
  | _ -> invalid_arg "Asr.create: decomposition does not match path arity");
  (match pool with
  | Some p when not (p.pool_store == store) ->
    invalid_arg "Asr.create: pool belongs to a different store"
  | _ -> ());
  let config, pager =
    match pool with Some p -> (p.pool_config, p.pool_pager) | None -> (config, pager)
  in
  let extension = Extension.compute store path kind in
  let extension =
    match owner with Some f -> Relation.filter extension f | None -> extension
  in
  let tuples = Relation.to_list extension in
  let mk_part (lo, hi) =
    let width = hi - lo + 1 in
    let skey =
      match pool with None -> None | Some _ -> segment_key path kind ~lo ~hi
    in
    let reused =
      match (pool, skey) with
      | Some p, Some k -> List.assoc_opt k p.segments
      | _ -> None
    in
    match reused with
    | Some trees ->
      (* Contribute this extension's projections on top of the sharing
         relation's: reference counts keep co-maintenance exact. *)
      List.iter (fun tup -> insert_projection trees tup (lo, hi)) tuples;
      { lo; hi; trees }
    | None ->
      let trees = fresh_trees ~config ~pager ~width ~skey in
      let projs = List.map (fun tup -> project_tuple tup (lo, hi)) tuples in
      Storage.Bptree.bulk_load trees.fwd projs;
      Storage.Bptree.bulk_load trees.bwd projs;
      (match (pool, skey) with
      | Some p, Some k -> p.segments <- (k, trees) :: p.segments
      | _ -> ());
      { lo; hi; trees }
  in
  let parts = Array.of_list (List.map mk_part (Decomposition.partitions dec)) in
  let id = !next_id in
  incr next_id;
  {
    id;
    store;
    path;
    kind;
    dec;
    config;
    pager;
    owner;
    extension;
    parts;
    deferred = false;
    pending = Array.init (Array.length parts) (fun _ -> Hashtbl.create 64);
    pending_total = 0;
    gate =
      { closed = Atomic.make false; readers = Atomic.make 0; version = Atomic.make 0 };
  }

(* ------------------------------------------------------------------ *)
(* Tree epoch gate                                                     *)
(* ------------------------------------------------------------------ *)

let tree_version t = Atomic.get t.gate.version

let acquire_trees t ~version =
  if Atomic.get t.gate.closed then false
  else begin
    Atomic.incr t.gate.readers;
    (* Re-check after announcing ourselves: the writer seals first and
       then waits for readers, so either it sees our increment and
       spins, or we see [closed]/a moved version here and back out. *)
    if Atomic.get t.gate.closed || Atomic.get t.gate.version <> version then begin
      Atomic.decr t.gate.readers;
      false
    end
    else true
  end

let release_trees t = Atomic.decr t.gate.readers

let with_sealed t f =
  Atomic.set t.gate.closed true;
  while Atomic.get t.gate.readers > 0 do
    Domain.cpu_relax ()
  done;
  Fun.protect
    ~finally:(fun () ->
      Atomic.incr t.gate.version;
      Atomic.set t.gate.closed false)
    f

(* ------------------------------------------------------------------ *)
(* Deferred maintenance: write-behind delta buffers                    *)
(* ------------------------------------------------------------------ *)

let deferred t = t.deferred
let set_deferred t flag = t.deferred <- flag
let pending_deltas t = t.pending_total

let pending_bytes t =
  let total = ref 0 in
  Array.iteri
    (fun i buf ->
      let bytes = Storage.Bptree.tuple_bytes t.parts.(i).trees.fwd in
      total := !total + (Hashtbl.length buf * bytes))
    t.pending;
  !total

let buffer_delta ?stats t pi proj d =
  let buf = t.pending.(pi) in
  let k = Relation.Tuple.to_string proj in
  (match stats with Some st -> Storage.Stats.note_delta_buffered st | None -> ());
  match Hashtbl.find_opt buf k with
  | None ->
    Hashtbl.replace buf k (proj, d);
    t.pending_total <- t.pending_total + 1
  | Some (_, d0) ->
    let net = d0 + d in
    if net = 0 then begin
      Hashtbl.remove buf k;
      t.pending_total <- t.pending_total - 1;
      match stats with Some st -> Storage.Stats.note_delta_annihilated st | None -> ()
    end
    else begin
      Hashtbl.replace buf k (proj, net);
      match stats with Some st -> Storage.Stats.note_delta_merged st | None -> ()
    end

let flush_unlocked ?stats t =
  let flushed = ref 0 in
  Array.iteri
    (fun pi buf ->
      if Hashtbl.length buf > 0 then begin
        let deltas = Hashtbl.fold (fun _ pd acc -> pd :: acc) buf [] in
        Hashtbl.reset buf;
        flushed := !flushed + List.length deltas;
        let p = t.parts.(pi) in
        in_seg ?stats t (fun () ->
            Storage.Bptree.apply_many ?stats p.trees.fwd deltas;
            Storage.Bptree.apply_many ?stats p.trees.bwd deltas)
      end)
    t.pending;
  t.pending_total <- 0;
  (match stats with
  | Some st when !flushed > 0 -> Storage.Stats.note_deltas_flushed st !flushed
  | _ -> ());
  !flushed

(* Empty buffers leave the gate untouched: the tree version survives, so
   snapshot pins on untouched relations keep their fast path. *)
let flush ?stats t =
  if t.pending_total = 0 then 0 else with_sealed t (fun () -> flush_unlocked ?stats t)

let remove_projections t tuples =
  Array.iter
    (fun p ->
      List.iter
        (fun tup ->
          let proj = project_tuple tup (p.lo, p.hi) in
          Storage.Bptree.remove p.trees.fwd proj;
          Storage.Bptree.remove p.trees.bwd proj)
        tuples)
    t.parts

let refresh t =
  (* Retract this relation's contributions (leaving co-sharers intact),
     then re-add from a fresh computation.  Pending deltas must reach
     the trees first, or the retraction below would decrement tuples the
     buffers still owe (robbing a co-sharer in a pooled segment). *)
  with_sealed t (fun () ->
      ignore (flush_unlocked t);
      remove_projections t (Relation.to_list t.extension);
      t.extension <- restrict t (Extension.compute t.store t.path t.kind);
      let tuples = Relation.to_list t.extension in
      Array.iter
        (fun p ->
          List.iter (fun tup -> insert_projection p.trees tup (p.lo, p.hi)) tuples)
        t.parts)

let partition_relation t i =
  let p = t.parts.(i) in
  Relation.of_list ~width:(p.hi - p.lo + 1) (Storage.Bptree.scan p.trees.fwd)

let lookup_fwd ?stats t i key =
  in_seg ?stats t (fun () -> Storage.Bptree.lookup ?stats t.parts.(i).trees.fwd key)

let lookup_bwd ?stats t i key =
  in_seg ?stats t (fun () -> Storage.Bptree.lookup ?stats t.parts.(i).trees.bwd key)

let lookup_fwd_many ?stats t i keys =
  in_seg ?stats t (fun () ->
      Storage.Bptree.lookup_many ?stats t.parts.(i).trees.fwd keys)

let lookup_bwd_many ?stats t i keys =
  in_seg ?stats t (fun () ->
      Storage.Bptree.lookup_many ?stats t.parts.(i).trees.bwd keys)

let scan_partition ?stats t i =
  in_seg ?stats t (fun () -> Storage.Bptree.scan ?stats t.parts.(i).trees.fwd)

let insert_tuple ?stats t tup =
  if Array.length tup <> arity t then invalid_arg "Asr.insert_tuple: width mismatch";
  if (match t.owner with Some f -> not (f tup) | None -> false) then
    (* Not this relation's tuple under the placement predicate: the
       owning shard materialises it; accepting it here would double it. *)
    false
  else if Relation.mem t.extension tup then false
  else begin
    t.extension <- Relation.add t.extension tup;
    if t.deferred then
      Array.iteri
        (fun pi p -> buffer_delta ?stats t pi (project_tuple tup (p.lo, p.hi)) 1)
        t.parts
    else
      with_sealed t (fun () ->
          in_seg ?stats t (fun () ->
              Array.iter
                (fun p ->
                  let proj = project_tuple tup (p.lo, p.hi) in
                  Storage.Bptree.insert ?stats p.trees.fwd proj;
                  Storage.Bptree.insert ?stats p.trees.bwd proj)
                t.parts));
    true
  end

let remove_tuple ?stats t tup =
  if Relation.mem t.extension tup then begin
    t.extension <- Relation.remove t.extension tup;
    if t.deferred then
      Array.iteri
        (fun pi p -> buffer_delta ?stats t pi (project_tuple tup (p.lo, p.hi)) (-1))
        t.parts
    else
      with_sealed t (fun () ->
          in_seg ?stats t (fun () ->
              Array.iter
                (fun p ->
                  let proj = project_tuple tup (p.lo, p.hi) in
                  Storage.Bptree.remove ?stats p.trees.fwd proj;
                  Storage.Bptree.remove ?stats p.trees.bwd proj)
                t.parts));
    true
  end
  else false

let distinct_values tuples col =
  List.fold_left
    (fun acc (tup : Relation.Tuple.t) ->
      let v = tup.(col) in
      if Gom.Value.is_null v || List.exists (Gom.Value.equal v) acc then acc
      else v :: acc)
    [] tuples

let find_by_column ?stats t ~col v =
  let matches =
    Relation.to_list
      (Relation.filter t.extension (fun tup -> Gom.Value.equal tup.(col) v))
  in
  (match stats with
  | None -> ()
  | Some st when t.deferred ->
    (* Deferred mode answers maintenance probes from the write-behind
       extension — no tree descent happens, so none is charged; this is
       the read half of the deferred pipeline's page savings. *)
    ignore st
  | Some st ->
    Storage.Stats.in_segment st (seg t) (fun () ->
        let pi = partition_index_of_column t col in
        let p = t.parts.(pi) in
        if col = p.lo then ignore (Storage.Bptree.lookup ~stats:st p.trees.fwd v)
        else if col = p.hi then ignore (Storage.Bptree.lookup ~stats:st p.trees.bwd v)
        else ignore (Storage.Bptree.scan ~stats:st p.trees.fwd);
        if matches <> [] then begin
          for k = pi - 1 downto 0 do
            let q = t.parts.(k) in
            List.iter
              (fun key -> ignore (Storage.Bptree.lookup ~stats:st q.trees.bwd key))
              (distinct_values matches q.hi)
          done;
          for k = pi + 1 to Array.length t.parts - 1 do
            let q = t.parts.(k) in
            List.iter
              (fun key -> ignore (Storage.Bptree.lookup ~stats:st q.trees.fwd key))
              (distinct_values matches q.lo)
          done
        end));
  matches

let supports t ~i ~j =
  Extension.supports t.kind ~n:(Gom.Path.length t.path) ~i ~j

(* ------------------------------------------------------------------ *)
(* Integrity hooks                                                     *)
(* ------------------------------------------------------------------ *)

let partition_shared t i = t.parts.(i).trees.skey <> None

let partition_refcount t i proj = Storage.Bptree.refcount t.parts.(i).trees.fwd proj

type damage =
  | Drop of Relation.Tuple.t
  | Phantom of Relation.Tuple.t

let damage_partition t i ds =
  let p = t.parts.(i) in
  let width = p.hi - p.lo + 1 in
  with_sealed t (fun () ->
      List.iter
        (fun d ->
          let proj = match d with Drop proj | Phantom proj -> proj in
          if Array.length proj <> width then
            invalid_arg "Asr.damage_partition: projection width mismatch";
          match d with
          | Drop proj ->
            Storage.Bptree.remove p.trees.fwd proj;
            Storage.Bptree.remove p.trees.bwd proj
          | Phantom proj ->
            Storage.Bptree.insert p.trees.fwd proj;
            Storage.Bptree.insert p.trees.bwd proj)
        ds)

let patch_partition_unlocked ?stats t i =
  (* Reconcile against trees that reflect every buffered delta, or the
     pending work would read as divergence and later double-apply. *)
  ignore (flush_unlocked ?stats t);
  let p = t.parts.(i) in
  let span = (p.lo, p.hi) in
  let shared = p.trees.skey <> None in
  (* Target multiset: this relation's projections with multiplicities
     (the reference counts the trees should carry for them). *)
  let want : (string, int * Relation.Tuple.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun tup ->
      let proj = project_tuple tup span in
      let k = Relation.Tuple.to_string proj in
      let n = match Hashtbl.find_opt want k with Some (n, _) -> n | None -> 0 in
      Hashtbl.replace want k (n + 1, proj))
    (Relation.to_list t.extension);
  (* Distinct tuples physically present right now. *)
  let present = Hashtbl.create 64 in
  List.iter
    (fun proj -> Hashtbl.replace present (Relation.Tuple.to_string proj) proj)
    (Storage.Bptree.scan p.trees.fwd);
  let fixes = ref 0 in
  let adjust proj delta =
    if delta <> 0 then begin
      incr fixes;
      in_seg ?stats t (fun () ->
          if delta > 0 then
            for _ = 1 to delta do
              Storage.Bptree.insert ?stats p.trees.fwd proj;
              Storage.Bptree.insert ?stats p.trees.bwd proj
            done
          else
            for _ = 1 to -delta do
              Storage.Bptree.remove ?stats p.trees.fwd proj;
              Storage.Bptree.remove ?stats p.trees.bwd proj
            done)
    end
  in
  Hashtbl.iter
    (fun k (n, proj) ->
      Hashtbl.remove present k;
      let have = Storage.Bptree.refcount p.trees.fwd proj in
      if shared then begin
        (* Co-sharers contribute unknown multiplicity on top of ours:
           restore missing presence, never retract. *)
        if have < n then adjust proj (n - have)
      end
      else adjust proj (n - have))
    want;
  (* Whatever remains is wanted by nobody we can vouch for: phantoms in
     an exclusive tree; in a shared tree it may be a co-sharer's, so it
     is left alone. *)
  Hashtbl.iter
    (fun _k proj ->
      if not shared then begin
        let have = Storage.Bptree.refcount p.trees.fwd proj in
        if have > 0 then adjust proj (-have)
      end)
    present;
  !fixes

let patch_partition ?stats t i =
  with_sealed t (fun () -> patch_partition_unlocked ?stats t i)

type part_geometry = {
  lo : int;
  hi : int;
  tuples : int;
  tuple_bytes : int;
  leaf_pages : int;
  inner_pages : int;
  height : int;
  shared : bool;
}

let geometry t =
  Array.to_list t.parts
  |> List.map (fun (p : part) ->
         {
           lo = p.lo;
           hi = p.hi;
           tuples = Storage.Bptree.cardinal p.trees.fwd;
           tuple_bytes = Storage.Bptree.tuple_bytes p.trees.fwd;
           leaf_pages = Storage.Bptree.leaf_pages p.trees.fwd;
           inner_pages = Storage.Bptree.inner_pages p.trees.fwd;
           height = Storage.Bptree.height p.trees.fwd;
           shared = p.trees.skey <> None;
         })

let total_pages t =
  List.fold_left (fun acc g -> acc + g.leaf_pages + g.inner_pages) 0 (geometry t)

let shared_partition_count t =
  Array.fold_left (fun acc p -> if p.trees.skey <> None then acc + 1 else acc) 0 t.parts

let pool_segment_count pool = List.length pool.segments

let pool_total_pages asrs =
  (* Count each physical tree once even when several relations share it. *)
  let seen : Storage.Bptree.t list ref = ref [] in
  let add tree acc =
    if List.exists (fun t -> t == tree) !seen then acc
    else begin
      seen := tree :: !seen;
      acc + Storage.Bptree.leaf_pages tree + Storage.Bptree.inner_pages tree
    end
  in
  List.fold_left
    (fun acc t ->
      Array.fold_left (fun acc p -> add p.trees.fwd (add p.trees.bwd acc)) acc t.parts)
    0 asrs
