(** Incremental maintenance of access support relations under object
    base updates (paper, section 6).

    A manager subscribes to a {!Gom.Store.t} and keeps every registered
    {!Asr.t} consistent with the object graph.  An update of attribute
    [A(i+1)] of an object [o_i] (attribute assignment, set insertion or
    removal, and — via the store's nullify-then-drop protocol — object
    deletion) is processed per affected path position:

    + the extension tuples passing through [o_i] at position [i], and
      the prefix-truncated tuples headed by the affected targets at
      position [i+1], are retracted;
    + the maximal partial paths through [o_i] are recomputed as the
      cross product of maximal prefixes [I_l] and maximal suffixes
      [I_r], filtered by {!Extension.member};
    + targets that lost their last inbound reference regain their
      prefix-truncated tuples (full/right-complete extensions only).

    Following the paper's analysis of which extensions require searches
    in the {e data} (section 6.1): prefixes are recovered from the
    access support relation itself for full and left-complete
    extensions, but require a charged backward search through the
    object extents for canonical and right-complete extensions; suffix
    computation is a charged forward traversal for every extension.
    All page traffic accumulates in the manager's {!Storage.Stats.t}. *)

type t

(** {2 Flush policies}

    The manager keeps every registered ASR's {e logical} extension
    exact on every event; what a policy controls is when the physical
    partition trees catch up:

    - [Immediate] — classic write-through: every event's tree writes
      happen inline (the pre-deferred behaviour, and the default);
    - [Every_k_events k] — deltas buffer; the manager flushes after
      every [k]-th store event;
    - [Bytes_threshold b] — flush when the buffered volume (in stored
      tuple bytes) reaches [b];
    - [On_query] — never flush spontaneously; the query engine's
      freshness watermark (or an explicit {!flush_all}) catches up. *)

type flush_policy =
  | Immediate
  | Every_k_events of int
  | Bytes_threshold of int
  | On_query

val policy_to_string : flush_policy -> string
(** ["immediate"], ["every:K"], ["bytes:N"], ["onquery"]. *)

val policy_of_string : string -> flush_policy option
(** Inverse of {!policy_to_string} (counts must be positive). *)

val create : Exec.env -> t
(** Subscribes to the environment's store.  Policy starts [Immediate]. *)

val register : t -> Asr.t -> unit
(** Add an access support relation to maintain; it inherits the
    manager's current flush policy.  The ASR must be built over the
    same store. *)

val policy : t -> flush_policy

val set_policy : t -> flush_policy -> unit
(** Switch policies.  Moving to [Immediate] flushes everything pending
    first, so no deltas are stranded in buffers no event will drain. *)

val flush_all : t -> int
(** Drain every registered ASR's buffers into its partition trees
    ({!Asr.flush}); returns the number of net deltas applied. *)

val flush_asr : t -> Asr.t -> int
(** Drain one ASR's buffers. *)

val pending : t -> int
(** Net buffered deltas over all registered ASRs. *)

val pending_bytes : t -> int

val asrs : t -> Asr.t list

val stats : t -> Storage.Stats.t
(** The environment's accounting context ([env.stats]): maintenance
    page traffic accumulates there, each store event as one operation
    ({!Storage.Stats.begin_op}). *)

val last_event_cost : t -> int
(** Pages read plus written while processing the most recent event. *)

(** {2 Repair interleaving}

    During a background rebuild the repairer takes over one ASR's
    maintenance: live store events must not race the slice-wise
    reconstruction, so the manager is told to {e skip} that ASR while
    the repairer buffers the events itself and replays them — through
    {!apply_event} — once the rebuild pass is done. *)

val suspend : t -> Asr.t -> unit
(** Stop processing store events against this ASR (idempotent).  Other
    registered ASRs are unaffected. *)

val resume : t -> Asr.t -> unit
(** Resume normal event processing for the ASR. *)

val is_suspended : t -> Asr.t -> bool

val apply_event : t -> Asr.t -> Gom.Store.event -> unit
(** Process one store event against one ASR, exactly as the manager's
    own subscription would.  Used to replay events buffered while the
    ASR was suspended; the caller is responsible for operation
    boundaries ({!Storage.Stats.begin_op}). *)
