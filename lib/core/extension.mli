(** The four extensions of an access support relation
    (paper, Definitions 3.4-3.7).

    - {e canonical}: natural-join chain — only complete paths from [t0]
      to [tn];
    - {e full}: full-outer chain — every maximal (partial) path;
    - {e left-complete}: left-outer chain — every maximal path
      originating in [t0];
    - {e right-complete}: right-outer chain — every maximal path whose
      last attribute [An] is instantiated. *)

type kind = Canonical | Full | Left_complete | Right_complete

val all : kind list

val name : kind -> string
(** ["can"], ["full"], ["left"], ["right"] — the paper's subscripts. *)

val of_name : string -> kind option

val join_kind : kind -> Relation.join_kind

val compute_view : Gom.Store_view.t -> Gom.Path.t -> kind -> Relation.t
(** Materialise the extension from the object base behind the view,
    composing the auxiliary relations with the corresponding join
    chain.  Over a frozen view this is ground truth {e for that epoch}
    (the scrubber audits published snapshots this way). *)

val compute : Gom.Store.t -> Gom.Path.t -> kind -> Relation.t
(** {!compute_view} over the live store. *)

val supports : kind -> n:int -> i:int -> j:int -> bool
(** Applicability of the extension to a query over sub-path
    [(i, j)] of a length-[n] path (paper, section 5.3 / equation 35):
    canonical only for [(0, n)], left-complete for [i = 0],
    right-complete for [j = n], full always. *)

val origin_complete : Gom.Path.t -> Relation.Tuple.t -> bool
(** True iff the tuple's path originates in [t0] (column [S0] is
    defined). *)

val terminal_complete : Gom.Path.t -> Relation.Tuple.t -> bool
(** True iff the last auxiliary relation [E_{n-1}] contributed to the
    tuple: either [Sn]'s column is defined, or — when [An] is set-valued
    — the final set-OID column is defined with the empty-set NULL
    marker. *)

val member : kind -> Gom.Path.t -> Relation.Tuple.t -> bool
(** Whether a {e maximal partial-path} tuple belongs to the extension:
    canonical requires origin and terminal completeness, left-complete
    origin, right-complete terminal, full neither.  (Used by incremental
    maintenance; agreement with {!compute} is property-tested.) *)
