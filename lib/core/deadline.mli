(** Cooperative cancellation budgets for query evaluation.

    A deadline travels inside {!Exec.env} and is consulted at explicit
    checkpoints — object/page reads and the partition rounds of the
    batch executors — via {!check}.  An expired budget raises
    {!Expired} at a checkpoint and nowhere else: cancellation only ever
    observes the evaluator between two whole steps, never mid-mutation,
    so an admitted (non-expired) query is byte-identical to an
    undeadlined one.  Clocks are injected to keep tests and the
    admission controller's simulated time deterministic. *)

type t

exception Expired

val none : unit -> t
(** A budget that never expires (fresh counter per call — counters are
    per-query, not shared). *)

val probe : unit -> t
(** Alias of {!none}, named for its use: run a query once just to count
    its checkpoints via {!checkpoints}, enabling the
    expiry-at-every-checkpoint sweep. *)

val after : clock:(unit -> float) -> float -> t
(** [after ~clock budget_s] expires [budget_s] seconds from [clock ()]
    now. *)

val until : clock:(unit -> float) -> float -> t
(** [until ~clock at] expires once [clock () >= at]. *)

val at_checkpoint : int -> t
(** [at_checkpoint n] expires exactly on the [n]-th {!check} ([n] >= 1)
    regardless of wall time — the deterministic sweep primitive. *)

val check : t -> unit
(** Record one checkpoint; raise {!Expired} if the budget is exhausted. *)

val checkpoints : t -> int
(** Checkpoints recorded so far. *)

val expired : t -> bool
(** Whether the budget is exhausted (does not count a checkpoint). *)

val remaining_s : t -> float
(** Seconds of budget left; [infinity] for untimed deadlines. *)

val expires_at : t -> float option
(** Absolute expiry on the injected clock, when time-based. *)
