(** Auxiliary relations [E_0 ... E_{n-1}] (paper, Definition 3.3).

    For each attribute [Aj] of a path expression the auxiliary relation
    [E_{j-1}] records the instantiated references: binary
    [(id(o_{j-1}), id(o_j))] tuples for single-valued attributes,
    ternary [(id(o_{j-1}), id(o'_j), id(o_j))] tuples for set-valued
    ones — one tuple per set element, or a single
    [(id(o_{j-1}), id(o'_j), NULL)] marker for an empty set.  Objects
    whose [Aj] is NULL contribute nothing. *)

val count : Gom.Path.t -> int
(** The number [n] of auxiliary relations. *)

val width : Gom.Path.t -> int -> int
(** [width p j] is 2 or 3 — the arity of [E_j] ([0 <= j < n]). *)

val column_span : Gom.Path.t -> int -> int * int
(** [column_span p j] are the first and last column indices of [E_j]
    inside the access support relation [E] (consecutive auxiliary
    relations share one column). *)

val build_one_view : Gom.Store_view.t -> Gom.Path.t -> int -> Relation.t
(** [build_one_view view p j] materialises [E_j] from the object base
    behind [view] (deep extents: subtype instances participate).  Over a
    frozen view this reads the published epoch, not the live base. *)

val build_view : Gom.Store_view.t -> Gom.Path.t -> Relation.t list
(** All of [E_0; ...; E_{n-1}]. *)

val build_one : Gom.Store.t -> Gom.Path.t -> int -> Relation.t
(** {!build_one_view} over the live store. *)

val build : Gom.Store.t -> Gom.Path.t -> Relation.t list
(** {!build_view} over the live store. *)
