(** Per-shard durability: each shard of a {!Group} is its own
    {!Durability.Db} (write-ahead log + atomic snapshots + recovery in
    a private directory), with one cross-shard manifest tying the
    shards together.

    {2 Directory layout}

    {v
    <dir>/SHARDS              shard count, placement, registered ASRs
    <dir>/shard-0/            shard 0's MANIFEST / snapshot / wal
    <dir>/shard-1/            ...
    v}

    Every shard logs the {e full} event stream (the fan-out replays
    each primary event onto every replica store, and each replica's Db
    logs what its store emits), so each shard directory recovers
    independently to a prefix of the same history.  The fragment
    relations are {e not} registered in the per-shard manifests — a
    per-shard recovery would rebuild them unfiltered; instead the
    cross-shard manifest holds the specs and {!open_} re-creates the
    owner-filtered fragments over the recovered stores.

    {2 Agreement gate}

    Shards crash independently, so recovered shards may sit at
    different prefixes.  {!open_} compares a content CRC
    ({!Gom.Crc32} over {!Gom.Serial.store_to_string}) across the
    recovered stores and {e refuses to serve} — {!Shard_error} — on any
    disagreement.  With [~reconcile:true] it instead adopts shard 0's
    recovered state (shard 0 is the write endpoint, whose log carries
    the transaction commit barriers): each disagreeing shard directory
    is rebuilt as a fresh generation-1 Db over a copy of shard 0's
    store, after which the gate holds by construction. *)

exception Shard_error of string

val shards_file : string -> string
(** [dir]'s cross-shard manifest path. *)

val shard_dir : string -> int -> string
(** [shard_dir dir k] — shard [k]'s private Db directory. *)

type t

val create :
  ?policy:Durability.Wal.sync_policy ->
  ?faults:(int -> Durability.Fault.t option) ->
  ?jobs:int ->
  ?placement:Placement.t ->
  dir:string ->
  Gom.Store.t ->
  t
(** Initialise a durable shard group at [dir] (created if missing) from
    an in-memory store: shard 0 wraps the store, replicas are cloned,
    and one {!Durability.Db} is created per shard.  [placement]
    defaults to hash placement over 1 shard; [faults] injects a
    per-shard fault environment (the crash-sweep harness arms exactly
    one shard).
    @raise Shard_error if [dir] already holds a cross-shard manifest. *)

val open_ :
  ?policy:Durability.Wal.sync_policy ->
  ?faults:(int -> Durability.Fault.t option) ->
  ?jobs:int ->
  ?reconcile:bool ->
  dir:string ->
  unit ->
  t
(** Recover every shard, enforce the agreement gate (see above), and
    re-create the registered fragment relations from the cross-shard
    manifest.  [~reconcile] (default [false]) turns refusal into
    adoption of shard 0's state.
    @raise Shard_error when the gate fails without [~reconcile], or on
    a malformed cross-shard manifest. *)

val group : t -> Group.t
(** The assembled group — routing, quarantine, stats and flush control
    all go through it. *)

val register :
  t -> path:string -> kind:Core.Extension.kind -> ?dec:string -> unit -> unit
(** Register an access support relation over a path expression (parsed
    against the schema, like {!Durability.Db.register_asr}), fragment
    it across the shards, and persist the registration in the
    cross-shard manifest so {!open_} re-creates it.
    @raise Shard_error on a malformed path/decomposition or duplicate
    registration. *)

val specs : t -> Durability.Db.spec list

val dbs : t -> Durability.Db.t array

val reports : t -> Durability.Db.report option array
(** Per-shard recovery reports ([None] for freshly created shards). *)

val generations : t -> int array

val content_crc : t -> int32 array
(** Current per-shard content CRCs (equal on a healthy group). *)

val flush_maintenance : t -> int
(** Drain every shard's deferred buffers, each framed in its own shard's
    write-ahead log as one flush group; returns total net deltas. *)

val checkpoint : t -> unit
(** Checkpoint every shard (new snapshot generation, fresh log). *)

val close : t -> unit
(** Close the group (fan-out, pool) and every shard Db.  Idempotent. *)
