type strategy =
  | Hash
  | Range of int

type t = { n : int; strategy : strategy }

let make ?(strategy = Hash) shards =
  if shards < 1 then invalid_arg "Placement.make: shards must be >= 1";
  (match strategy with
  | Range stride when stride < 1 ->
    invalid_arg "Placement.make: range stride must be >= 1"
  | Range _ | Hash -> ());
  { n = shards; strategy }

let shards t = t.n
let strategy t = t.strategy

let to_string t =
  match t.strategy with
  | Hash -> "hash"
  | Range stride -> Printf.sprintf "range:%d" stride

let of_string ~shards s =
  if shards < 1 then None
  else if String.equal s "hash" then Some { n = shards; strategy = Hash }
  else
    match String.index_opt s ':' with
    | Some i when String.equal (String.sub s 0 i) "range" -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some stride when stride >= 1 -> Some { n = shards; strategy = Range stride }
      | Some _ | None -> None)
    | Some _ | None -> None

(* Knuth's multiplicative hash: identifiers are often consecutive, and
   plain [mod n] would then correlate placement with creation order
   (every range query hitting one shard).  The constant is 2^32 times
   the golden ratio's fractional part; OCaml's 63-bit ints hold the
   product without overflow for any realistic identifier. *)
let mix id = (id * 2654435761) land max_int

let shard_of_id t id =
  match t.strategy with
  | Hash -> mix id mod t.n
  | Range stride -> id / stride mod t.n

let shard_of_oid t o = shard_of_id t (Gom.Oid.to_int o)

(* FNV-1a over the serialised value: elementary values have no
   identifier, and the placement must survive process restarts, so the
   hash is computed here rather than borrowed from [Hashtbl.hash].
   The offset basis is the 64-bit FNV one truncated to OCaml's native
   int range; wrap-around multiplication is the usual FNV behaviour. *)
let fnv s =
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let shard_of_value t v =
  match v with
  | Gom.Value.Null -> 0
  | Gom.Value.Ref o -> shard_of_oid t o
  | v -> fnv (Gom.Value.to_string v) mod t.n

let shard_of_tuple t (tup : Relation.Tuple.t) =
  let rec leftmost i =
    if i >= Array.length tup then 0
    else if Gom.Value.is_null tup.(i) then leftmost (i + 1)
    else shard_of_value t tup.(i)
  in
  leftmost 0

let owner_pred t k tup = shard_of_tuple t tup = k

let split t rel =
  let width = Relation.width rel in
  let buckets = Array.make t.n [] in
  List.iter
    (fun tup ->
      let k = shard_of_tuple t tup in
      buckets.(k) <- tup :: buckets.(k))
    (Relation.to_list rel);
  Array.map (fun tups -> Relation.of_list ~width (List.rev tups)) buckets
