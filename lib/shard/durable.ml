[@@@alert "-legacy"]
(* Store.copy builds replica stores and reconcile rebuilds — writer-side
   whole-base clones, the use the alert keeps copy around for. *)

exception Shard_error of string

let shard_error fmt = Format.kasprintf (fun s -> raise (Shard_error s)) fmt

(* ---------------- layout ---------------- *)

let shards_file dir = Filename.concat dir "SHARDS"
let shard_dir dir k = Filename.concat dir (Printf.sprintf "shard-%d" k)

let shards_header = "asr-shards v1"

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

(* Atomic control-file replacement, same discipline as the per-shard
   manifests (temp + fsync + rename). *)
let atomic_write path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc contents;
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc));
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let write_shards_manifest dir ~placement specs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (shards_header ^ "\n");
  Buffer.add_string buf (Printf.sprintf "shards %d\n" (Placement.shards placement));
  Buffer.add_string buf
    (Printf.sprintf "placement %s\n" (Placement.to_string placement));
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "asr %s\n" (Durability.Db.spec_to_string s)))
    specs;
  atomic_write (shards_file dir) (Buffer.contents buf)

let read_shards_manifest dir =
  let path = shards_file dir in
  let text =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error m -> shard_error "cannot read shards manifest: %s" m
  in
  let lines =
    String.split_on_char '\n' text |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  match lines with
  | h :: rest when h = shards_header ->
    let shards = ref None and placement = ref None and specs = ref [] in
    List.iter
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "shards"; n ] -> shards := int_of_string_opt n
        | [ "placement"; p ] -> placement := Some p
        | "asr" :: spec_parts -> (
          match Durability.Db.spec_of_string (String.concat " " spec_parts) with
          | Some s -> specs := s :: !specs
          | None -> shard_error "shards manifest: malformed spec %S" line)
        | _ -> shard_error "shards manifest: malformed line %S" line)
      rest;
    let n =
      match !shards with
      | Some n when n >= 1 -> n
      | Some _ | None -> shard_error "shards manifest: missing shard count"
    in
    let placement =
      match !placement with
      | Some p -> (
        match Placement.of_string ~shards:n p with
        | Some pl -> pl
        | None -> shard_error "shards manifest: bad placement %S" p)
      | None -> shard_error "shards manifest: missing placement"
    in
    (placement, List.rev !specs)
  | h :: _ -> shard_error "shards manifest: unknown header %S" h
  | [] -> shard_error "shards manifest: empty"

(* ---------------- the handle ---------------- *)

type t = {
  t_dir : string;
  placement : Placement.t;
  mutable dbs : Durability.Db.t array;
  mutable grp : Group.t;
  mutable specs : Durability.Db.spec list;
  reports : Durability.Db.report option array;
  mutable closed : bool;
}

let group t = t.grp
let dbs t = t.dbs
let specs t = t.specs
let reports t = t.reports
let generations t = Array.map Durability.Db.generation t.dbs

let store_crc store = Gom.Crc32.string (Gom.Serial.store_to_string store)

let content_crc t = Array.map (fun db -> store_crc (Durability.Db.store db)) t.dbs

(* Fragment relations are created straight over the shard stores and
   registered with each shard Db's own maintenance manager — so the
   Db's flush framing covers them — but never with [Db.register_asr]:
   the per-shard manifest must stay empty of them, or an independent
   shard recovery would rebuild the fragment unfiltered. *)
let register_fragments grp spec =
  let path, kind, dec =
    try Durability.Db.spec_components (Group.primary grp) spec
    with Durability.Db.Recovery_error m -> shard_error "%s" m
  in
  Group.register grp ~path ~kind ~dec

let assemble ?jobs ~dir ~placement dbs =
  let stores = Array.map Durability.Db.store dbs in
  let envs = Array.map Durability.Db.env dbs in
  let managers = Array.map Durability.Db.maintenance dbs in
  let grp = Group.create_on ?jobs ~placement ~stores ~managers ~envs () in
  ignore dir;
  grp

let create ?policy ?(faults = fun _ -> None) ?jobs
    ?(placement = Placement.make 1) ~dir store =
  if Sys.file_exists (shards_file dir) then
    shard_error "%s already holds a shard group" dir;
  mkdir_p dir;
  let n = Placement.shards placement in
  let stores =
    Array.init n (fun k -> if k = 0 then store else Gom.Store.copy store)
  in
  let dbs =
    Array.init n (fun k ->
        Durability.Db.create ?fault:(faults k) ?policy ~dir:(shard_dir dir k)
          stores.(k))
  in
  let grp = assemble ?jobs ~dir ~placement dbs in
  write_shards_manifest dir ~placement [];
  {
    t_dir = dir;
    placement;
    dbs;
    grp;
    specs = [];
    reports = Array.make n None;
    closed = false;
  }

let open_ ?policy ?(faults = fun _ -> None) ?jobs ?(reconcile = false) ~dir () =
  let placement, specs = read_shards_manifest dir in
  let n = Placement.shards placement in
  let dbs =
    Array.init n (fun k ->
        Durability.Db.open_ ?fault:(faults k) ?policy ~dir:(shard_dir dir k) ())
  in
  let crcs = Array.map (fun db -> store_crc (Durability.Db.store db)) dbs in
  let diverged =
    List.filter
      (fun k -> not (Int32.equal crcs.(k) crcs.(0)))
      (List.init n Fun.id)
  in
  let dbs =
    if diverged = [] then dbs
    else if not reconcile then begin
      Array.iter Durability.Db.close dbs;
      shard_error
        "shard generations disagree (shards %s diverge from shard 0); refusing \
         to serve — reopen with reconciliation"
        (String.concat "," (List.map string_of_int diverged))
    end
    else begin
      (* Adopt shard 0's recovered state: rebuild each disagreeing
         shard directory as a fresh Db over a copy of it.  Shard 0 is
         the write endpoint — its log holds the commit barriers — so
         its recovered prefix is the transaction-consistent state the
         group serves. *)
      Array.mapi
        (fun k db ->
          if List.mem k diverged then begin
            Durability.Db.close db;
            rm_rf (shard_dir dir k);
            let clone = Gom.Store.copy (Durability.Db.store dbs.(0)) in
            Durability.Db.create ?fault:(faults k) ?policy
              ~dir:(shard_dir dir k) clone
          end
          else db)
        dbs
    end
  in
  let grp = assemble ?jobs ~dir ~placement dbs in
  List.iter (fun spec -> register_fragments grp spec) specs;
  {
    t_dir = dir;
    placement;
    dbs;
    grp;
    specs;
    reports = Array.map Durability.Db.last_recovery dbs;
    closed = false;
  }

let register t ~path ~kind ?dec () =
  let spec = { Durability.Db.s_kind = kind; s_dec = dec; s_path = path } in
  let dup =
    List.exists
      (fun s -> String.equal (Durability.Db.spec_to_string s)
          (Durability.Db.spec_to_string spec))
      t.specs
  in
  if dup then shard_error "duplicate registration: %s" (Durability.Db.spec_to_string spec);
  register_fragments t.grp spec;
  t.specs <- t.specs @ [ spec ];
  write_shards_manifest t.t_dir ~placement:t.placement t.specs

let flush_maintenance t =
  Array.fold_left (fun acc db -> acc + Durability.Db.flush_maintenance db) 0 t.dbs

let checkpoint t = Array.iter Durability.Db.checkpoint t.dbs

let close t =
  if not t.closed then begin
    t.closed <- true;
    Group.close t.grp;
    Array.iter Durability.Db.close t.dbs
  end
