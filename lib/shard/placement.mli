(** Deterministic placement of extension tuples across shards.

    The decomposition theory (Def. 3.8, Thm. 3.9) splits an access
    support relation {e vertically} without losing answers; this module
    splits it {e horizontally}: every extension tuple is owned by
    exactly one of [N] shards, decided by the tuple's {e clustering
    value} — the leftmost non-NULL column (the column forward lookups
    anchor on).  The fragments partition the extension, so per-shard
    answers union to the unsharded answer, and a probe anchored at
    column 0 is answered {e wholly} by the probe's owner shard (every
    tuple whose column 0 equals the probe has that probe as its
    leftmost non-NULL column).

    Both strategies are pure functions of the value — no placement
    tables, no state, stable across process restarts — so recovery
    recomputes the same fragments the writer produced. *)

type strategy =
  | Hash  (** Multiplicative hash of the identifier (default). *)
  | Range of int
      (** [Range stride]: identifier range [k*stride .. (k+1)*stride-1]
          maps to shard [k mod n] — path-range placement preserving
          creation locality within a stride. *)

type t

val make : ?strategy:strategy -> int -> t
(** [make n] places across [n] shards.
    @raise Invalid_argument unless [n >= 1] (and, for [Range], the
    stride is [>= 1]). *)

val shards : t -> int
val strategy : t -> strategy

val to_string : t -> string
(** Manifest form: ["hash"] or ["range:<stride>"] (shard count is
    recorded separately). *)

val of_string : shards:int -> string -> t option
(** Parse the manifest form back; [None] on malformed input. *)

val shard_of_id : t -> int -> int
(** Placement of a raw identifier — [Hash] mixes it multiplicatively,
    [Range stride] maps range [k*stride .. (k+1)*stride-1] to shard
    [k mod shards]. *)

val shard_of_oid : t -> Gom.Oid.t -> int

val shard_of_value : t -> Gom.Value.t -> int
(** References place by their identifier; elementary values by a
    process-independent FNV-1a hash of their serialised form; [Null]
    places on shard 0 (callers never route on NULL — the leftmost
    non-NULL rule sees to that). *)

val shard_of_tuple : t -> Relation.Tuple.t -> int
(** Owner of a tuple: {!shard_of_value} of its leftmost non-NULL
    column; an all-NULL tuple (which no extension contains) owns to
    shard 0. *)

val owner_pred : t -> int -> Relation.Tuple.t -> bool
(** [owner_pred t k] is the predicate handed to [Core.Asr.create
    ~owner]: true iff shard [k] owns the tuple. *)

val split : t -> Relation.t -> Relation.t array
(** Partition a relation into its [shards] fragments — fragment [k]
    holds exactly the tuples [owner_pred t k] accepts.  The fragments
    are pairwise disjoint and union back to the input (the horizontal
    side of Thm. 3.9, checked by the decomposition property tests). *)
