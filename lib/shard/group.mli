(** A shard group: one object base served by [N] shards, with a
    scatter-gather router whose answers are byte-identical to the
    unsharded engine at every shard count and job count.

    {2 Architecture}

    Shard 0 wraps the caller's store — the single write endpoint.  Every
    other shard holds a full structural replica, kept converged by a
    fan-out subscription that replays each primary event (via its
    {!Durability.Wal.record_of_event} image) onto the replica stores, so
    each shard's maintenance manager, engine generation and write-ahead
    log observe the same mutation stream.

    What is {e not} replicated is the index work: each shard's access
    support relations are horizontal fragments ([Core.Asr.create
    ~owner]) holding only the tuples {!Placement} assigns to that shard,
    so tree sizes, maintenance traffic and lookup work split ~1/N per
    shard while navigation fallbacks (over the full replica) stay exact.

    {2 Routing}

    A forward batch anchored at the query path's origin ([i = 0]) is
    {e grouped}: probes are partitioned by owner shard and each shard
    answers its own probes exactly — sound because a tuple whose column
    0 equals the probe has the probe as its leftmost non-NULL column,
    hence lives on the probe's owner shard, and because grouping is only
    chosen when every registered index embeds the query path at offset 0
    ({!Engine.embedding_offset}).  Everything else — backward queries,
    deeper anchors, paths some index embeds at a positive offset — is
    {e scattered}: every shard evaluates every probe and the per-probe
    answers are unioned.

    {2 Determinism}

    Shard tasks run on a {!Parallel.Pool}, whose [run_all] returns
    results in input (shard) order regardless of scheduling; merges sort
    with the same comparators the engine's batch entry points use
    ([Gom.Oid.compare] / [Gom.Value.compare] under [List.sort_uniq]).
    Answers are therefore a function of the probe set alone — identical
    at 1, 2, 4 or 8 shards, and at any [jobs]. *)

type t

val create :
  ?jobs:int ->
  ?policy:Core.Maintenance.flush_policy ->
  ?size_of:(Gom.Schema.type_name -> int) ->
  placement:Placement.t ->
  Gom.Store.t ->
  t
(** An in-memory group over the given store (which becomes shard 0's
    store and stays the write endpoint).  [jobs] sizes the domain pool
    (default: the shard count); [policy] is applied to every shard's
    maintenance manager; [size_of] feeds the per-shard heap layouts
    (default 100 bytes per object, the test suite's convention). *)

val create_on :
  ?jobs:int ->
  placement:Placement.t ->
  stores:Gom.Store.t array ->
  managers:Core.Maintenance.t array ->
  envs:Core.Exec.env array ->
  unit ->
  t
(** Assemble a group over pre-built per-shard plumbing — the durable
    layer's entry point, whose per-shard [Durability.Db] handles already
    own the stores, environments and maintenance managers.  [stores.(0)]
    is the write endpoint; all three arrays must have the placement's
    length, and [managers.(k)]/[envs.(k)] must be attached to
    [stores.(k)].
    @raise Invalid_argument on length or store mismatches. *)

val shards : t -> int
val jobs : t -> int
val placement : t -> Placement.t

val primary : t -> Gom.Store.t
(** Shard 0's store — the write endpoint all mutations go through. *)

val store : t -> int -> Gom.Store.t
val env : t -> int -> Core.Exec.env
val engine : t -> int -> Engine.t
val manager : t -> int -> Core.Maintenance.t

val quarantine_registry : t -> int -> Integrity.Quarantine.t
(** Shard [k]'s quarantine registry, already attached as its engine's
    health oracle — quarantining a shard's partition degrades planning
    {e on that shard only}. *)

val asrs : t -> int -> Core.Asr.t list
(** Shard [k]'s fragment relations, in registration order. *)

val register :
  t -> path:Gom.Path.t -> kind:Core.Extension.kind -> dec:Core.Decomposition.t -> unit
(** Materialise one access support relation as [N] owner-filtered
    fragments — one per shard, each registered with its shard's
    maintenance manager and engine. *)

val specs : t -> (Gom.Path.t * Core.Extension.kind * Core.Decomposition.t) list

(** {2 Scatter-gather queries} *)

val forward :
  t -> Gom.Path.t -> i:int -> j:int -> Gom.Oid.t -> Gom.Value.t list

val backward :
  t -> Gom.Path.t -> i:int -> j:int -> target:Gom.Value.t -> Gom.Oid.t list

val forward_batch :
  t -> Gom.Path.t -> i:int -> j:int -> Gom.Oid.t list -> (Gom.Oid.t * Gom.Value.t list) list
(** Batched scatter-gather: probes are deduplicated and sorted, routed
    grouped or scattered, evaluated through each shard's
    {!Engine.forward_batch} (shared descents per shard), and merged
    deterministically.  Answers equal the unsharded engine's, byte for
    byte. *)

val backward_batch :
  t ->
  Gom.Path.t ->
  i:int ->
  j:int ->
  targets:Gom.Value.t list ->
  (Gom.Value.t * Gom.Oid.t list) list

(** {2 Maintenance and accounting} *)

val set_policy : t -> Core.Maintenance.flush_policy -> unit
(** Switch every shard's maintenance manager's flush policy. *)

val flush_all : t -> int
(** Drain every shard's deferred-maintenance buffers; returns the total
    net deltas applied. *)

val pending : t -> int
(** Buffered deltas summed over shards. *)

val shard_summaries : t -> Storage.Stats.summary array
(** Per-shard accounting sheaves (each shard's environment counts its
    own pages privately). *)

val stats_summary : t -> Storage.Stats.summary
(** The group accountant: every shard sheaf merged
    ({!Storage.Stats.merge}) with the router's own grouped/scatter
    counters. *)

val total_pages : t -> int array
(** Per-shard page counts over all fragment relations (one clustering
    copy each) — the bench's per-shard balance report. *)

val close : t -> unit
(** Detach the fan-out subscription and shut the domain pool down.
    Idempotent; the stores and relations survive (shard 0's store is
    the caller's). *)
