[@@@alert "-legacy"]
(* Store.copy is exactly what replica construction wants: a whole-base
   writer-side clone each shard then mutates through the fan-out. *)

type t = {
  placement : Placement.t;
  n : int;
  stores : Gom.Store.t array;
  envs : Core.Exec.env array;
  engines : Engine.t array;
  managers : Core.Maintenance.t array;
  quarantines : Integrity.Quarantine.t array;
  pool : Parallel.Pool.t;
  jobs : int;
  router_stats : Storage.Stats.t;
  mutable specs : (Gom.Path.t * Core.Extension.kind * Core.Decomposition.t) list;
  asrs : Core.Asr.t list array;  (* mutated in place, per shard *)
  fanout : Gom.Store.subscription option;
  mutable closed : bool;
}

(* Replicas converge by replaying each primary event's log image
   through the regular store mutators, so replica listeners — each
   shard's maintenance manager, engine generation bump, write-ahead log
   — observe the same stream the primary emitted.  [record_of_event]
   must run inside the listener (a [Created] record needs the object
   still live to look its type up); delete nullifications arrive as
   their own preceding events, so the replica's [delete] finds the
   references already gone and emits no duplicates. *)
let install_fanout stores =
  let n = Array.length stores in
  if n <= 1 then None
  else
    let primary = stores.(0) in
    Some
      (Gom.Store.subscribe primary (fun ev ->
           let record = Durability.Wal.record_of_event primary ev in
           for k = 1 to n - 1 do
             ignore (Durability.Wal.replay stores.(k) [ record ] : int)
           done))

let assemble ?jobs ~placement ~stores ~managers ~envs () =
  let n = Placement.shards placement in
  if Array.length stores <> n || Array.length managers <> n || Array.length envs <> n
  then invalid_arg "Group: placement/shard array length mismatch";
  Array.iteri
    (fun k env ->
      if not (Core.Exec.live_store_exn env == stores.(k)) then
        invalid_arg "Group: env is not over its shard's store")
    envs;
  let engines = Array.map (fun env -> Engine.create env) envs in
  let quarantines =
    Array.mapi
      (fun k engine ->
        let q = Integrity.Quarantine.create () in
        Integrity.Quarantine.attach q engine;
        ignore k;
        q)
      engines
  in
  let fanout = install_fanout stores in
  let jobs = match jobs with Some j -> max 1 j | None -> n in
  {
    placement;
    n;
    stores;
    envs;
    engines;
    managers;
    quarantines;
    pool = Parallel.Pool.create ~jobs;
    jobs;
    router_stats = Storage.Stats.create ();
    specs = [];
    asrs = Array.make n [];
    fanout;
    closed = false;
  }

let create_on ?jobs ~placement ~stores ~managers ~envs () =
  assemble ?jobs ~placement ~stores ~managers ~envs ()

let create ?jobs ?policy ?(size_of = fun _ -> 100) ~placement store =
  let n = Placement.shards placement in
  let stores = Array.init n (fun k -> if k = 0 then store else Gom.Store.copy store) in
  let envs =
    Array.map
      (fun s ->
        let heap = Storage.Heap.create ~size_of s in
        Core.Exec.make s heap)
      stores
  in
  let managers = Array.map Core.Maintenance.create envs in
  let t = assemble ?jobs ~placement ~stores ~managers ~envs () in
  (match policy with
  | Some p -> Array.iter (fun m -> Core.Maintenance.set_policy m p) managers
  | None -> ());
  t

let shards t = t.n
let jobs t = t.jobs
let placement t = t.placement
let primary t = t.stores.(0)
let store t k = t.stores.(k)
let env t k = t.envs.(k)
let engine t k = t.engines.(k)
let manager t k = t.managers.(k)
let quarantine_registry t k = t.quarantines.(k)
let asrs t k = List.rev t.asrs.(k)
let specs t = t.specs

let register t ~path ~kind ~dec =
  for k = 0 to t.n - 1 do
    let owner = Placement.owner_pred t.placement k in
    let frag = Core.Asr.create ~owner t.stores.(k) path kind dec in
    Core.Maintenance.register t.managers.(k) frag;
    Engine.register t.engines.(k) frag;
    t.asrs.(k) <- frag :: t.asrs.(k)
  done;
  t.specs <- t.specs @ [ (path, kind, dec) ]

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

(* Grouped routing sends each probe to its owner shard alone, so that
   shard's answer must be the whole answer.  Sound exactly when the
   probe anchors every usable index at column 0: matching tuples then
   carry the probe as leftmost non-NULL column and live on the owner
   shard, while navigation / extent-scan fallbacks run over the shard's
   full replica and are exact anyway.  One index embedding the query
   path at a positive offset breaks the argument (its matching tuples
   may be owned by their own earlier columns), so such paths scatter. *)
let grouped_ok t path ~i =
  i = 0
  && List.for_all
       (fun (index_path, _, _) ->
         match Engine.embedding_offset ~index_path ~query_path:path with
         | None | Some 0 -> true
         | Some _ -> false)
       t.specs

let note_grouped t = Storage.Stats.note_shard_grouped t.router_stats
let note_scatter t = Storage.Stats.note_shard_scatter t.router_stats

let scatter_tasks t f = List.init t.n (fun k () -> f k)

let forward t path ~i ~j oid =
  if t.n = 1 then begin
    note_grouped t;
    Engine.forward ~env:t.envs.(0) t.engines.(0) path ~i ~j oid
  end
  else if grouped_ok t path ~i then begin
    note_grouped t;
    let k = Placement.shard_of_oid t.placement oid in
    Engine.forward ~env:t.envs.(k) t.engines.(k) path ~i ~j oid
  end
  else begin
    note_scatter t;
    Parallel.Pool.run_all t.pool
      (scatter_tasks t (fun k ->
           Engine.forward ~env:t.envs.(k) t.engines.(k) path ~i ~j oid))
    |> List.concat
    |> List.sort_uniq Gom.Value.compare
  end

let backward t path ~i ~j ~target =
  if t.n = 1 then begin
    note_grouped t;
    Engine.backward ~env:t.envs.(0) t.engines.(0) path ~i ~j ~target
  end
  else begin
    note_scatter t;
    Parallel.Pool.run_all t.pool
      (scatter_tasks t (fun k ->
           Engine.backward ~env:t.envs.(k) t.engines.(k) path ~i ~j ~target))
    |> List.concat
    |> List.sort_uniq Gom.Oid.compare
  end

(* Pointwise union of per-shard batch answers.  Every shard deduplicates
   and sorts the same probe list, so the chunks are keyed identically
   and merge positionally; the per-probe union re-sorts with the same
   comparator the engine's batch entry points use, which is what keeps
   the merged answer byte-identical to the unsharded one. *)
let merge_batches compare_answers chunks =
  match chunks with
  | [] -> []
  | first :: rest ->
    List.fold_left
      (fun acc chunk ->
        List.map2 (fun (p, a) (_, a') -> (p, List.rev_append a' a)) acc chunk)
      first rest
    |> List.map (fun (p, a) -> (p, List.sort_uniq compare_answers a))

let forward_batch t path ~i ~j oids =
  let probes = List.sort_uniq Gom.Oid.compare oids in
  if probes = [] then []
  else if t.n = 1 then begin
    note_grouped t;
    Engine.forward_batch ~env:t.envs.(0) t.engines.(0) path ~i ~j probes
  end
  else if grouped_ok t path ~i then begin
    note_grouped t;
    let buckets = Array.make t.n [] in
    (* Reverse first so each bucket comes out in ascending probe order
       (the engine re-sorts anyway; this keeps descents sequential). *)
    List.iter
      (fun o ->
        let k = Placement.shard_of_oid t.placement o in
        buckets.(k) <- o :: buckets.(k))
      (List.rev probes);
    let tasks =
      List.filter_map
        (fun k ->
          if buckets.(k) = [] then None
          else
            Some
              (fun () ->
                Engine.forward_batch ~env:t.envs.(k) t.engines.(k) path ~i ~j
                  buckets.(k)))
        (List.init t.n Fun.id)
    in
    Parallel.Pool.run_all t.pool tasks
    |> List.concat
    |> List.sort (fun (a, _) (b, _) -> Gom.Oid.compare a b)
  end
  else begin
    note_scatter t;
    Parallel.Pool.run_all t.pool
      (scatter_tasks t (fun k ->
           Engine.forward_batch ~env:t.envs.(k) t.engines.(k) path ~i ~j probes))
    |> merge_batches Gom.Value.compare
  end

let backward_batch t path ~i ~j ~targets =
  let targets = List.sort_uniq Gom.Value.compare targets in
  if targets = [] then []
  else if t.n = 1 then begin
    note_grouped t;
    Engine.backward_batch ~env:t.envs.(0) t.engines.(0) path ~i ~j ~targets
  end
  else begin
    note_scatter t;
    Parallel.Pool.run_all t.pool
      (scatter_tasks t (fun k ->
           Engine.backward_batch ~env:t.envs.(k) t.engines.(k) path ~i ~j ~targets))
    |> merge_batches Gom.Oid.compare
  end

(* ------------------------------------------------------------------ *)
(* Maintenance and accounting                                          *)
(* ------------------------------------------------------------------ *)

let set_policy t policy =
  Array.iter (fun m -> Core.Maintenance.set_policy m policy) t.managers

let flush_all t =
  Array.fold_left (fun acc m -> acc + Core.Maintenance.flush_all m) 0 t.managers

let pending t =
  Array.fold_left (fun acc m -> acc + Core.Maintenance.pending m) 0 t.managers

let shard_summaries t =
  Array.map (fun env -> Storage.Stats.snapshot env.Core.Exec.stats) t.envs

let stats_summary t =
  Array.fold_left
    (fun acc s -> Storage.Stats.merge acc s)
    (Storage.Stats.snapshot t.router_stats)
    (shard_summaries t)

let total_pages t =
  Array.map
    (fun asrs -> List.fold_left (fun acc a -> acc + Core.Asr.total_pages a) 0 asrs)
    t.asrs

let close t =
  if not t.closed then begin
    t.closed <- true;
    (match t.fanout with
    | Some sub -> Gom.Store.unsubscribe t.stores.(0) sub
    | None -> ());
    Parallel.Pool.shutdown t.pool
  end
