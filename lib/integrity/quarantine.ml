(* Quarantine registry: the record of which access support relations
   (or single partitions) are currently distrusted, and the bridge that
   makes the engine's planner respect it.

   The registry is the single writer of the engine's health oracle:
   [attach] installs a callback closing over this registry, and every
   quarantine state change bumps each attached engine's plan-cache
   generation so no cached plan survives a health transition. *)

type entry = { q_asr : Core.Asr.t; q_part : int option; q_reason : string }

type t = {
  mutable entries : entry list;
  mutable engines : Engine.t list;
}

let create () = { entries = []; engines = [] }

let is_quarantined t index ~part =
  List.exists
    (fun e -> e.q_asr == index && (e.q_part = None || e.q_part = Some part))
    t.entries

let healthy t index ~part = not (is_quarantined t index ~part)

let asr_quarantined t index = List.exists (fun e -> e.q_asr == index) t.entries

let entries t =
  List.rev_map (fun e -> (e.q_asr, e.q_part, e.q_reason)) t.entries

let bump t = List.iter Engine.invalidate_plans t.engines

let attach t engine =
  if not (List.memq engine t.engines) then begin
    t.engines <- engine :: t.engines;
    Engine.set_health engine (fun index ~part -> healthy t index ~part)
  end

let quarantine ?(reason = "manual") ?part t index =
  let covered =
    List.exists
      (fun e -> e.q_asr == index && (e.q_part = None || e.q_part = part))
      t.entries
  in
  if not covered then begin
    (* A whole-relation quarantine subsumes its partition entries. *)
    let entries =
      if part = None then
        List.filter (fun e -> not (e.q_asr == index)) t.entries
      else t.entries
    in
    t.entries <- { q_asr = index; q_part = part; q_reason = reason } :: entries;
    bump t
  end

let lift ?part t index =
  let keep e =
    if not (e.q_asr == index) then true
    else match part with None -> false | Some p -> e.q_part <> Some p
  in
  let entries = List.filter keep t.entries in
  if List.length entries <> List.length t.entries then begin
    t.entries <- entries;
    bump t
  end

let apply_report t index (report : Scrub.report) =
  let parts =
    List.sort_uniq Int.compare
      (List.map Scrub.divergence_part report.Scrub.r_divergences)
  in
  List.iter
    (fun p ->
      quarantine ~reason:(Printf.sprintf "scrub: divergence in partition %d" p)
        ~part:p t index)
    parts;
  parts
