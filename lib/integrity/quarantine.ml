(* Quarantine registry: the record of which access support relations
   (or single partitions) are currently distrusted, and the bridge that
   makes the engine's planner respect it.

   The registry is the single writer of the engine's health oracle:
   [attach] installs a callback closing over this registry, and every
   quarantine state change bumps each attached engine's plan-cache
   generation so no cached plan survives a health transition. *)

type entry = { q_asr : Core.Asr.t; q_part : int option; q_reason : string }

(* The lock covers [entries] and [engines]: the health oracle installed
   into engines is read from query domains while scrub/repair mutate the
   registry, so both sides go through it.  Engine generation bumps happen
   OUTSIDE the lock — the engine has its own mutex and its health oracle
   calls back into this registry, so nesting the two would deadlock. *)
type t = {
  lock : Mutex.t;
  mutable entries : entry list;
  mutable engines : Engine.t list;
}

let create () = { lock = Mutex.create (); entries = []; engines = [] }

let is_quarantined t index ~part =
  Mutex.protect t.lock (fun () ->
      List.exists
        (fun e -> e.q_asr == index && (e.q_part = None || e.q_part = Some part))
        t.entries)

let healthy t index ~part = not (is_quarantined t index ~part)

let asr_quarantined t index =
  Mutex.protect t.lock (fun () -> List.exists (fun e -> e.q_asr == index) t.entries)

let entries t =
  Mutex.protect t.lock (fun () ->
      List.rev_map (fun e -> (e.q_asr, e.q_part, e.q_reason)) t.entries)

let bump engines = List.iter Engine.invalidate_plans engines

let attach t engine =
  let fresh =
    Mutex.protect t.lock (fun () ->
        if List.memq engine t.engines then false
        else begin
          t.engines <- engine :: t.engines;
          true
        end)
  in
  if fresh then Engine.set_health engine (fun index ~part -> healthy t index ~part)

let quarantine ?(reason = "manual") ?part t index =
  let engines =
    Mutex.protect t.lock (fun () ->
        let covered =
          List.exists
            (fun e -> e.q_asr == index && (e.q_part = None || e.q_part = part))
            t.entries
        in
        if covered then []
        else begin
          (* A whole-relation quarantine subsumes its partition entries. *)
          let entries =
            if part = None then
              List.filter (fun e -> not (e.q_asr == index)) t.entries
            else t.entries
          in
          t.entries <- { q_asr = index; q_part = part; q_reason = reason } :: entries;
          t.engines
        end)
  in
  bump engines

let lift ?part t index =
  let engines =
    Mutex.protect t.lock (fun () ->
        let keep e =
          if not (e.q_asr == index) then true
          else match part with None -> false | Some p -> e.q_part <> Some p
        in
        let entries = List.filter keep t.entries in
        if List.length entries = List.length t.entries then []
        else begin
          t.entries <- entries;
          t.engines
        end)
  in
  bump engines

let apply_report t index (report : Scrub.report) =
  let parts =
    List.sort_uniq Int.compare
      (List.map Scrub.divergence_part report.Scrub.r_divergences)
  in
  List.iter
    (fun p ->
      quarantine ~reason:(Printf.sprintf "scrub: divergence in partition %d" p)
        ~part:p t index)
    parts;
  parts
