(** Quarantine registry: which access support relations — or single
    partitions of them — are currently distrusted.

    The registry drives the engine's degraded-mode planning: {!attach}
    installs it as the engine's health oracle, after which the planner
    prices only stitches whose every visited partition is healthy, and
    every quarantine state change invalidates the engine's cached plans
    (a generation bump).  Queries over a quarantined index transparently
    fall back to navigation, an extent scan, or an alternate registered
    index — degradation, never wrong answers. *)

type t

val create : unit -> t

val attach : t -> Engine.t -> unit
(** Make the engine consult this registry (idempotent).  Installs the
    health callback via {!Engine.set_health}; subsequent
    {!quarantine}/{!lift} calls bump the engine's plan generation. *)

val quarantine : ?reason:string -> ?part:int -> t -> Core.Asr.t -> unit
(** Distrust the whole relation, or just partition [?part].  Idempotent;
    a whole-relation entry subsumes partition entries. *)

val lift : ?part:int -> t -> Core.Asr.t -> unit
(** Trust again: without [?part] every entry for the relation is
    removed; with it only that partition's entry. *)

val is_quarantined : t -> Core.Asr.t -> part:int -> bool

val asr_quarantined : t -> Core.Asr.t -> bool
(** Whether any entry — whole-relation or single-partition — exists. *)

val healthy : t -> Core.Asr.t -> part:int -> bool
(** The predicate handed to {!Engine.set_health}. *)

val entries : t -> (Core.Asr.t * int option * string) list
(** Current entries, oldest first, with their reasons. *)

val apply_report : t -> Core.Asr.t -> Scrub.report -> int list
(** Quarantine every partition a scrub report found diverged; returns
    the (sorted, distinct) partitions quarantined — [[]] means the
    report was clean and nothing changed. *)
