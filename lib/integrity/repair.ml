(* Background incremental repair of a quarantined access support
   relation.

   A repair job takes over the relation's maintenance: the manager is
   told to skip it ([Maintenance.suspend]) while the job buffers the
   store events arriving mid-rebuild through its own subscription.  The
   rebuild itself converges the logical extension onto a freshly
   computed target in bounded slices ([step]), then reconciles each
   partition's trees with the extension ([Asr.patch_partition], fixing
   physical-only damage), replays the buffered events through
   [Maintenance.apply_event], and re-verifies with an exhaustive scrub.
   Only a clean verification lifts the quarantine — so a crash at any
   point of the cycle leaves the relation quarantined and queries
   degraded, never a half-rebuilt partition answering queries. *)

type op =
  | Retract of Relation.Tuple.t
  | Restore of Relation.Tuple.t

type outcome =
  | Repaired of { rounds : int; slices : int; fixes : int; replayed : int }
  | Failed of { rounds : int; remaining : int }

type job = {
  index : Core.Asr.t;
  registry : Quarantine.t;
  maint : Core.Maintenance.t;
  slice : int;
  max_rounds : int;
  fault : Durability.Fault.t option;
  stats : Storage.Stats.t option;
  sub : Gom.Store.subscription;
  buffer : Gom.Store.event Queue.t;
  mutable pending : op list;
  mutable rounds : int;
  mutable slices : int;
  mutable fixes : int;
  mutable replayed : int;
  mutable closed : bool;
}

let outcome_to_string = function
  | Repaired { rounds; slices; fixes; replayed } ->
    Printf.sprintf "repaired (%d round(s), %d slice(s), %d fix(es), %d replayed)"
      rounds slices fixes replayed
  | Failed { rounds; remaining } ->
    Printf.sprintf "failed after %d round(s): %d divergence(s) remain" rounds remaining

(* Diff the relation's logical extension against a fresh ground-truth
   computation; retractions first so multiplicity fixes cannot clash. *)
let diff index =
  let target =
    Core.Asr.restrict index
      (Core.Extension.compute (Core.Asr.store index) (Core.Asr.path index)
         (Core.Asr.kind index))
  in
  let current = Core.Asr.extension_relation index in
  let stale =
    List.filter_map
      (fun tup -> if Relation.mem target tup then None else Some (Retract tup))
      (Relation.to_list current)
  in
  let missing =
    List.filter_map
      (fun tup -> if Relation.mem current tup then None else Some (Restore tup))
      (Relation.to_list target)
  in
  stale @ missing

let start ?(slice = 32) ?(max_rounds = 4) ?fault ?stats ~registry ~maintenance index =
  if slice < 1 then invalid_arg "Repair.start: slice must be >= 1";
  Core.Maintenance.suspend maintenance index;
  let buffer = Queue.create () in
  let sub =
    Gom.Store.subscribe (Core.Asr.store index) (fun ev -> Queue.add ev buffer)
  in
  {
    index;
    registry;
    maint = maintenance;
    slice;
    max_rounds;
    fault;
    stats;
    sub;
    buffer;
    pending = diff index;
    rounds = 1;
    slices = 0;
    fixes = 0;
    replayed = 0;
    closed = false;
  }

let close job =
  if not job.closed then begin
    job.closed <- true;
    Gom.Store.unsubscribe (Core.Asr.store job.index) job.sub;
    Core.Maintenance.resume job.maint job.index
  end

let abort job = close job

let apply_op job op =
  match op with
  | Retract tup -> ignore (Core.Asr.remove_tuple ?stats:job.stats job.index tup : bool)
  | Restore tup -> ignore (Core.Asr.insert_tuple ?stats:job.stats job.index tup : bool)

let replay job =
  while not (Queue.is_empty job.buffer) do
    let ev = Queue.pop job.buffer in
    (match job.stats with Some st -> Storage.Stats.begin_op st | None -> ());
    Core.Maintenance.apply_event job.maint job.index ev;
    job.replayed <- job.replayed + 1
  done

let finish_round job =
  (* Logical extension converged: reconcile every partition's trees
     with it (repairing damage injected below the logical level), then
     catch up on the events buffered while we were rebuilding. *)
  let parts = Core.Asr.partition_count job.index in
  for p = 0 to parts - 1 do
    job.fixes <- job.fixes + Core.Asr.patch_partition ?stats:job.stats job.index p
  done;
  replay job;
  let report = Scrub.run ?fault:job.fault ?stats:job.stats job.index in
  if Scrub.clean report then begin
    Quarantine.lift job.registry job.index;
    close job;
    `Done
      (Repaired
         {
           rounds = job.rounds;
           slices = job.slices;
           fixes = job.fixes;
           replayed = job.replayed;
         })
  end
  else if job.rounds >= job.max_rounds then begin
    (* Leave the quarantine in place: a relation we cannot verify must
       not serve queries. *)
    close job;
    `Done
      (Failed
         { rounds = job.rounds; remaining = List.length report.Scrub.r_divergences })
  end
  else begin
    job.rounds <- job.rounds + 1;
    job.pending <- diff job.index;
    `More
  end

let step job =
  if job.closed then invalid_arg "Repair.step: job already finished";
  (match job.fault with
  | Some f ->
    (* One logical read per slice: crash/transient sweeps can target any
       point of the rebuild. *)
    Durability.Fault.with_retry ?stats:job.stats f (fun () ->
        Durability.Fault.observe_read f)
  | None -> ());
  job.slices <- job.slices + 1;
  let rec apply n =
    if n = 0 then ()
    else
      match job.pending with
      | [] -> ()
      | op :: rest ->
        job.pending <- rest;
        apply_op job op;
        apply (n - 1)
  in
  apply job.slice;
  if job.pending = [] then finish_round job else `More

let run ?slice ?max_rounds ?fault ?stats ~registry ~maintenance index =
  let job = start ?slice ?max_rounds ?fault ?stats ~registry ~maintenance index in
  let rec go () = match step job with `More -> go () | `Done outcome -> outcome in
  try go ()
  with e ->
    (* A crash mid-repair: the job is dead, the quarantine stays. *)
    close job;
    raise e
