(** Background incremental repair of a quarantined access support
    relation.

    A repair job suspends the relation's normal maintenance, converges
    its logical extension onto a freshly computed ground truth in
    bounded slices, reconciles every partition's B+ trees with the
    extension, replays the store events buffered while rebuilding, and
    re-verifies with an exhaustive scrub.  The quarantine is lifted
    {e only} after a clean verification: interrupt or crash the cycle
    anywhere and the relation stays quarantined (queries keep degrading
    to healthy strategies), never half-repaired and serving. *)

type outcome =
  | Repaired of { rounds : int; slices : int; fixes : int; replayed : int }
      (** [fixes] counts distinct projections reconciled in partition
          trees; [replayed] the buffered live events applied. *)
  | Failed of { rounds : int; remaining : int }
      (** Verification still found divergences after [rounds] rounds;
          the quarantine is left in place. *)

val outcome_to_string : outcome -> string

type job
(** An in-flight repair.  Between {!step} calls the object base may be
    mutated freely: the suspended maintenance manager skips this
    relation and the job buffers the events for replay. *)

val start :
  ?slice:int ->
  ?max_rounds:int ->
  ?fault:Durability.Fault.t ->
  ?stats:Storage.Stats.t ->
  registry:Quarantine.t ->
  maintenance:Core.Maintenance.t ->
  Core.Asr.t ->
  job
(** Begin a repair: suspends maintenance for the relation, subscribes a
    buffering listener, and computes the initial rebuild work list.
    [slice] bounds extension operations per {!step} (default 32);
    [max_rounds] bounds re-verification rounds (default 4).
    @raise Invalid_argument if [slice < 1]. *)

val step : job -> [ `More | `Done of outcome ]
(** Apply one bounded slice of rebuild work.  The slice that exhausts
    the work list also patches the partition trees, replays buffered
    events, and verifies; each slice counts one logical read against
    the job's fault plan (so crash sweeps can target any point).
    After [`Done] the job is closed (maintenance resumed, listener
    unsubscribed); further calls raise.
    @raise Durability.Fault.Crash per the fault plan — the job is then
    dead and the relation remains quarantined. *)

val abort : job -> unit
(** Abandon the repair: maintenance resumes, buffered events are
    dropped, the quarantine stays. *)

val run :
  ?slice:int ->
  ?max_rounds:int ->
  ?fault:Durability.Fault.t ->
  ?stats:Storage.Stats.t ->
  registry:Quarantine.t ->
  maintenance:Core.Maintenance.t ->
  Core.Asr.t ->
  outcome
(** {!start} then {!step} to completion in one call (the CLI's
    [repair]). *)
