(* Audit the physical partitions of an access support relation against
   the object graph.

   Ground truth is a fresh [Extension.compute] over the live store —
   the relation every partition ought to be a projection of (paper,
   Defs. 3.4-3.7).  Each partition's B+ tree contents are compared
   against the expected projection multiset; reference counts make the
   comparison exact for exclusively owned trees.  Divergences are
   classified as missing references, phantom references, or — when a
   missing and a phantom projection differ only where exactly one of
   them is NULL — a wrong NULL marker (the shape of a maintenance
   update that recorded the wrong maximal partial path). *)

type divergence =
  | Missing of { part : int; proj : Relation.Tuple.t; count : int }
  | Phantom of { part : int; proj : Relation.Tuple.t; count : int }
  | Null_marker of {
      part : int;
      expected : Relation.Tuple.t;
      actual : Relation.Tuple.t;
      count : int;
    }

type report = {
  r_path : string;
  r_kind : string;
  r_cardinality : int;
  r_partitions : int;
  r_shared_partitions : int;
  r_sample : int option;
  r_divergences : divergence list;
}

let clean r = r.r_divergences = []

let divergence_part = function
  | Missing { part; _ } | Phantom { part; _ } | Null_marker { part; _ } -> part

let divergence_to_string = function
  | Missing { part; proj; count } ->
    Printf.sprintf "missing   p%d x%d %s" part count (Relation.Tuple.to_string proj)
  | Phantom { part; proj; count } ->
    Printf.sprintf "phantom   p%d x%d %s" part count (Relation.Tuple.to_string proj)
  | Null_marker { part; expected; actual; count } ->
    Printf.sprintf "null-mark p%d x%d %s (stored %s)" part count
      (Relation.Tuple.to_string expected)
      (Relation.Tuple.to_string actual)

(* Deterministic OID sample: a tuple is audited iff the Knuth hash of
   its leading defined reference lands in residue 0 mod [k].  The same
   extension always yields the same sample, so repeated doctor runs are
   comparable. *)
let in_sample k (tup : Relation.Tuple.t) =
  let rec leading_oid i =
    if i >= Array.length tup then None
    else
      match Gom.Value.oid tup.(i) with Some o -> Some o | None -> leading_oid (i + 1)
  in
  match leading_oid 0 with
  | None -> true
  | Some o -> Gom.Oid.to_int o * 2654435761 land max_int mod k = 0

(* One side of a NULL-marker divergence: equal width, every column
   either equal or NULL on exactly one side, at least one of the
   latter. *)
let null_mismatch (a : Relation.Tuple.t) (b : Relation.Tuple.t) =
  Array.length a = Array.length b
  &&
  let swapped = ref false in
  let ok = ref true in
  Array.iteri
    (fun c va ->
      let vb = b.(c) in
      if Gom.Value.equal va vb then ()
      else if Gom.Value.is_null va <> Gom.Value.is_null vb then swapped := true
      else ok := false)
    a;
  !ok && !swapped

(* Fold the missing/phantom lists of one partition, pairing NULL-marker
   counterparts greedily. *)
let classify ~part missing phantom =
  let phantom = ref phantom in
  let paired = ref [] in
  let missing =
    List.filter_map
      (fun (proj, want) ->
        match List.find_opt (fun (p, _) -> null_mismatch proj p) !phantom with
        | Some ((p, have) as entry) ->
          phantom := List.filter (fun e -> not (e == entry)) !phantom;
          let n = min want have in
          paired :=
            Null_marker { part; expected = proj; actual = p; count = n } :: !paired;
          if want > n then Some (proj, want - n) else None
        | None -> Some (proj, want))
      missing
  in
  List.map (fun (proj, count) -> Missing { part; proj; count }) missing
  @ List.map (fun (proj, count) -> Phantom { part; proj; count }) !phantom
  @ List.rev !paired

let audit_partition ?stats index truth ~part ~sample =
  (match stats with Some st -> Storage.Stats.note_scrub st | None -> ());
  let lo, hi = Core.Asr.partition_bounds index part in
  let cols = List.init (hi - lo + 1) (fun k -> lo + k) in
  let shared = Core.Asr.partition_shared index part in
  (* Expected multiset of projections, keyed by printed form. *)
  let want : (string, int * Relation.Tuple.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun tup ->
      if sample = None || Option.fold ~none:true ~some:(fun k -> in_sample k tup) sample
      then begin
        let proj = Relation.Tuple.project tup cols in
        let key = Relation.Tuple.to_string proj in
        let n = match Hashtbl.find_opt want key with Some (n, _) -> n | None -> 0 in
        Hashtbl.replace want key (n + 1, proj)
      end)
    truth;
  let present = Hashtbl.create 64 in
  List.iter
    (fun proj -> Hashtbl.replace present (Relation.Tuple.to_string proj) proj)
    (Core.Asr.scan_partition ?stats index part);
  let missing = ref [] in
  let phantom = ref [] in
  Hashtbl.iter
    (fun key (n, proj) ->
      Hashtbl.remove present key;
      let have = Core.Asr.partition_refcount index part proj in
      match sample with
      | Some _ ->
        (* Sampled audits check presence only: multiplicities cannot be
           compared against a partial expected multiset. *)
        if have = 0 then missing := (proj, n) :: !missing
      | None -> if have < n then missing := (proj, n - have) :: !missing)
    want;
  (* Surviving [present] entries are wanted by nobody — but only an
     exhaustive audit of an exclusively owned tree can call them
     phantoms (a sample misses expecteds; a co-sharer owns extras). *)
  if sample = None && not shared then
    Hashtbl.iter
      (fun _ proj ->
        let have = Core.Asr.partition_refcount index part proj in
        if have > 0 then phantom := (proj, have) :: !phantom)
      present;
  let order = List.sort (fun (a, _) (b, _) -> Relation.Tuple.compare a b) in
  classify ~part (order !missing) (order !phantom)

let run ?deadline ?fault ?sample ?stats index =
  (match sample with
  | Some k when k < 1 -> invalid_arg "Scrub.run: sample must be >= 1"
  | _ -> ());
  (* Partition audits are the scrub's whole steps: a budget expires
     between audits (never inside one), so a cancelled scrub has simply
     audited a prefix of the partitions. *)
  let checkpoint () =
    match deadline with Some d -> Core.Deadline.check d | None -> ()
  in
  (* Pending deferred-maintenance deltas are scheduled work, not
     divergence: flush them (a catch-up, counted as such) before
     auditing, so the comparison sees only genuine corruption. *)
  if Core.Asr.pending_deltas index > 0 then begin
    ignore (Core.Asr.flush ?stats index);
    match stats with
    | Some st -> Storage.Stats.note_catchup_flush st
    | None -> ()
  end;
  let truth =
    Relation.to_list
      (Core.Asr.restrict index
         (Core.Extension.compute (Core.Asr.store index) (Core.Asr.path index)
            (Core.Asr.kind index)))
  in
  let parts = Core.Asr.partition_count index in
  let audit part =
    checkpoint ();
    match fault with
    | None -> audit_partition ?stats index truth ~part ~sample
    | Some f ->
      (* Each partition audit counts as one logical read against the
         fault plan; transient failures are retried with deterministic
         backoff. *)
      Durability.Fault.with_retry ?stats f (fun () ->
          Durability.Fault.observe_read f;
          audit_partition ?stats index truth ~part ~sample)
  in
  let divergences = List.concat_map audit (List.init parts Fun.id) in
  {
    r_path = Gom.Path.to_string (Core.Asr.path index);
    r_kind = Core.Extension.name (Core.Asr.kind index);
    r_cardinality = List.length truth;
    r_partitions = parts;
    r_shared_partitions = Core.Asr.shared_partition_count index;
    r_sample = sample;
    r_divergences = divergences;
  }

let report_to_string r =
  let b = Buffer.create 256 in
  Printf.bprintf b "scrub %s over %s: %d partition(s), %d tuple(s)%s — %s\n" r.r_kind
    r.r_path r.r_partitions r.r_cardinality
    (match r.r_sample with
    | None -> ""
    | Some k -> Printf.sprintf " (1/%d sample)" k)
    (if clean r then "clean" else Printf.sprintf "%d divergence(s)" (List.length r.r_divergences));
  List.iter (fun d -> Printf.bprintf b "  %s\n" (divergence_to_string d)) r.r_divergences;
  Buffer.contents b

let divergence_to_json d =
  let field cls part count rest =
    Printf.sprintf "{\"class\": %S, \"part\": %d, \"count\": %d%s}" cls part count rest
  in
  match d with
  | Missing { part; proj; count } ->
    field "missing" part count
      (Printf.sprintf ", \"tuple\": %S" (Relation.Tuple.to_string proj))
  | Phantom { part; proj; count } ->
    field "phantom" part count
      (Printf.sprintf ", \"tuple\": %S" (Relation.Tuple.to_string proj))
  | Null_marker { part; expected; actual; count } ->
    field "null_marker" part count
      (Printf.sprintf ", \"expected\": %S, \"actual\": %S"
         (Relation.Tuple.to_string expected)
         (Relation.Tuple.to_string actual))

let report_to_json r =
  Printf.sprintf
    "{\"path\": %S, \"kind\": %S, \"cardinality\": %d, \"partitions\": %d, \
     \"shared_partitions\": %d, \"sample\": %s, \"clean\": %b, \"divergences\": [%s]}"
    r.r_path r.r_kind r.r_cardinality r.r_partitions r.r_shared_partitions
    (match r.r_sample with None -> "null" | Some k -> string_of_int k)
    (clean r)
    (String.concat ", " (List.map divergence_to_json r.r_divergences))
