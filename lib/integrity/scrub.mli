(** Integrity scrubber: audit an access support relation's physical
    partitions against the object graph.

    A scrub recomputes the relation's extension from the live store
    (Defs. 3.4-3.7's ground truth) and compares every partition's B+
    tree contents — reference counts included — against the expected
    projections, either exhaustively or over a deterministic OID
    sample.  The result is a typed divergence report the quarantine
    registry and the repairer consume, and that [asr_cli doctor] prints
    and serialises. *)

type divergence =
  | Missing of { part : int; proj : Relation.Tuple.t; count : int }
      (** [count] references to the projection are absent from the
          partition's trees. *)
  | Phantom of { part : int; proj : Relation.Tuple.t; count : int }
      (** [count] spurious references are present that no extension
          tuple projects onto.  Only reported by exhaustive audits of
          exclusively owned partitions (a sample misses expected tuples;
          a shared tree's extras may belong to a co-sharer). *)
  | Null_marker of {
      part : int;
      expected : Relation.Tuple.t;
      actual : Relation.Tuple.t;
      count : int;
    }
      (** A missing and a phantom projection that differ only in columns
          where exactly one of them is NULL: the stored tuple records
          the wrong maximal partial path. *)

type report = {
  r_path : string;  (** The relation's path expression. *)
  r_kind : string;  (** Extension kind name. *)
  r_cardinality : int;  (** Ground-truth extension tuples. *)
  r_partitions : int;
  r_shared_partitions : int;
  r_sample : int option;  (** [Some k]: 1-in-[k] deterministic sample. *)
  r_divergences : divergence list;
}

val clean : report -> bool

val run :
  ?deadline:Core.Deadline.t ->
  ?fault:Durability.Fault.t ->
  ?sample:int ->
  ?stats:Storage.Stats.t ->
  Core.Asr.t ->
  report
(** Audit every partition.  [?sample:k] restricts the audit to the
    deterministic 1-in-[k] OID sample (presence checks only).  Each
    partition audited is counted via {!Storage.Stats.note_scrub} and as
    one logical read against [?fault] — transient read faults are
    absorbed by bounded retry with deterministic backoff.  [?deadline]
    is checked between partition audits, so a background scrub yields
    under load instead of monopolising a domain.
    @raise Invalid_argument if [sample < 1].
    @raise Core.Deadline.Expired between partition audits.
    @raise Durability.Fault.Crash per the fault plan. *)

val divergence_part : divergence -> int
val divergence_to_string : divergence -> string
val report_to_string : report -> string

val report_to_json : report -> string
(** One-line machine-readable report (the CI fault-matrix artifact). *)
