(* Work-stealing-free domain pool: one shared FIFO of tasks, one mutex,
   one "queue became non-empty" condition.  Batches (run_all calls) own
   a private completion record so several domains can push batches into
   the same pool concurrently without observing each other's progress.

   The memory-model story: every task result is written by the executing
   domain before it decrements the batch counter under the pool mutex,
   and the submitting domain only reads results after it observed the
   counter at zero under the same mutex — the mutex ordering makes all
   result writes visible. *)

type task = unit -> unit

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : task Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  executors : int;
}

let rec worker_loop t =
  let task =
    Mutex.protect t.lock (fun () ->
        let rec await () =
          if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
          else if t.closed then None
          else begin
            Condition.wait t.nonempty t.lock;
            await ()
          end
        in
        await ())
  in
  match task with
  | None -> ()
  | Some f ->
    (* Tasks are exception-proof wrappers (see [run_all]); the catch-all
       is a backstop so a rogue task can never kill a worker and leave a
       batch waiting forever. *)
    (try f () with _ -> ());
    worker_loop t

let create ~jobs =
  let executors = max 1 jobs in
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
      executors;
    }
  in
  t.workers <- List.init (executors - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.executors

(* Per-batch completion record; shares the pool mutex so the waiter and
   the last finishing task cannot miss each other's signal. *)
type batch = { mutable remaining : int; finished : Condition.t }

let run_all_results t thunks =
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let b = { remaining = n; finished = Condition.create () } in
    let task i () =
      let r = try Ok (thunks.(i) ()) with e -> Error e in
      results.(i) <- Some r;
      Mutex.protect t.lock (fun () ->
          b.remaining <- b.remaining - 1;
          if b.remaining = 0 then Condition.broadcast b.finished)
    in
    Mutex.protect t.lock (fun () ->
        for i = 0 to n - 1 do
          Queue.add (task i) t.queue
        done;
        Condition.broadcast t.nonempty);
    (* The caller is an executor too: drain tasks (this batch's or a
       concurrent one's — either helps global progress) until the queue
       is empty, then sleep until this batch's own counter hits zero. *)
    let rec help () =
      let task =
        Mutex.protect t.lock (fun () ->
            if Queue.is_empty t.queue then None else Some (Queue.pop t.queue))
      in
      match task with
      | Some f ->
        (try f () with _ -> ());
        help ()
      | None -> ()
    in
    help ();
    Mutex.protect t.lock (fun () ->
        while b.remaining > 0 do
          Condition.wait b.finished t.lock
        done);
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> assert false (* remaining = 0 implies every slot was written *))
         results)
  end

let run_all t thunks =
  let out = run_all_results t thunks in
  List.iter (function Error e -> raise e | Ok _ -> ()) out;
  List.map (function Ok v -> v | Error _ -> assert false) out

let shutdown t =
  let workers =
    Mutex.protect t.lock (fun () ->
        t.closed <- true;
        Condition.broadcast t.nonempty;
        let ws = t.workers in
        t.workers <- [];
        ws)
  in
  List.iter Domain.join workers
