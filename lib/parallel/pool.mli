(** Fixed-size domain pool with a shared work queue.

    OCaml 5 domains are heavyweight (each maps to an OS thread and a
    runtime participant), so the serving layer spawns a small fixed set
    once and feeds it batches, instead of spawning per query.  The pool
    is a plain [Mutex]/[Condition] work queue: no dependency beyond the
    standard library.

    Concurrency contract: many domains may call {!run_all} on the same
    pool simultaneously — each call gets a private completion record, so
    interleaved batches never cross-contaminate.  The calling domain
    participates in draining the queue while its batch is outstanding,
    which is what makes [size = 1] (no spawned workers at all) execute
    everything inline on the caller. *)

type t

val create : jobs:int -> t
(** A pool of [max 1 jobs] concurrent executors: [jobs - 1] spawned
    worker domains plus the domain calling {!run_all}.  [jobs = 1]
    spawns nothing. *)

val size : t -> int
(** Number of concurrent executors (including the caller). *)

val run_all : t -> (unit -> 'a) list -> 'a list
(** Execute every thunk (possibly concurrently, across the pool's
    executors) and return their results {e in input order} — the
    scheduling is nondeterministic, the result list never is.  If any
    thunk raised, the first such exception (again in input order) is
    re-raised after {e all} thunks finished, so no work is left running
    behind the caller's back. *)

val run_all_results : t -> (unit -> 'a) list -> ('a, exn) result list
(** Like {!run_all} but exception-safe per task: a raising thunk yields
    [Error exn] in its own slot while every other thunk still runs and
    returns [Ok] — nothing is re-raised, no worker dies, the pool stays
    fully usable.  This is the serving layer's contract: one poisoned
    chunk fails typed, the batch survives. *)

val shutdown : t -> unit
(** Drain and join the worker domains; idempotent.  Tasks already queued
    are completed first.  Calling {!run_all} afterwards executes inline
    on the caller. *)
