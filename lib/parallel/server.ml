type publish_info = {
  publishes : int;  (* epochs published since creation (incl. the first) *)
  last_latency_s : float;
  total_latency_s : float;
  last_copied : int;
  last_shared : int;
}

type t = {
  base : Gom.Store.t;
  source : Snapshot.source;
      (* the publication side: shared engine, shared ASRs, event tap and
         the previous epoch's frozen image — advancing it applies only
         the event suffix (CoW), never a deep copy *)
  pool : Pool.t;
  jobs : int;
  writer : Mutex.t;  (* serialises update/refresh and snapshot publication *)
  current : Snapshot.t Atomic.t;
  pub : publish_info Atomic.t;
      (* single-writer telemetry (updated under [writer]); atomic so
         [publish_info] reads never tear *)
  accountant : Storage.Stats.t;  (* cumulative, merged from worker sheaves *)
  acc_lock : Mutex.t;
  buffer_pages : int;  (* per-worker buffer pool size; 0 = unbuffered *)
}

let create ?(jobs = 1) ?(buffer_pages = 0) ?(sizes = fun _ -> 100) ?maintenance ~specs
    base =
  let jobs = max 1 jobs in
  let source = Snapshot.source ~sizes ?maintenance ~specs base in
  let t0 = Unix.gettimeofday () in
  let snap = Snapshot.advance source in
  let dt = Unix.gettimeofday () -. t0 in
  {
    base;
    source;
    pool = Pool.create ~jobs;
    jobs;
    writer = Mutex.create ();
    current = Atomic.make snap;
    pub =
      Atomic.make
        {
          publishes = 1;
          last_latency_s = dt;
          total_latency_s = dt;
          last_copied = Snapshot.copied snap;
          last_shared = Snapshot.shared snap;
        };
    accountant =
      (* Mirror the workers' pool size so the merged accountant's JSON
         reports the serving configuration's capacity. *)
      (if buffer_pages > 0 then Storage.Stats.create ~buffer_capacity:buffer_pages ()
       else Storage.Stats.create ());
    acc_lock = Mutex.create ();
    buffer_pages = max 0 buffer_pages;
  }

let jobs t = t.jobs
let pin t = Atomic.get t.current
let epoch t = Snapshot.epoch (pin t)
let publish_info t = Atomic.get t.pub

let publish t =
  (* Called under the writer mutex.  [Snapshot.advance] drains pending
     deferred deltas first, so "published epoch" stays synonymous with
     "no pending deltas anywhere"; the image itself is advanced by the
     event suffix — cost proportional to what the writer touched, not to
     the store. *)
  let t0 = Unix.gettimeofday () in
  let snap = Snapshot.advance t.source in
  Atomic.set t.current snap;
  let dt = Unix.gettimeofday () -. t0 in
  let p = Atomic.get t.pub in
  Atomic.set t.pub
    {
      publishes = p.publishes + 1;
      last_latency_s = dt;
      total_latency_s = p.total_latency_s +. dt;
      last_copied = Snapshot.copied snap;
      last_shared = Snapshot.shared snap;
    }

let update ?publish:(want_publish = true) t f =
  Mutex.protect t.writer (fun () ->
      let r = f t.base in
      if
        want_publish
        && Gom.Store.epoch t.base <> Snapshot.epoch (Atomic.get t.current)
      then publish t;
      r)

let refresh t = Mutex.protect t.writer (fun () -> publish t)

let lag t =
  Mutex.protect t.writer (fun () ->
      Gom.Store.epoch t.base - Snapshot.epoch (Atomic.get t.current))

(* Split [xs] into at most [k] contiguous chunks of near-equal length.
   Contiguity is what keeps the merge deterministic: over a sorted probe
   list, concatenating sorted chunk answers in chunk order rebuilds the
   one globally sorted answer, whatever [k] was. *)
let chunk k xs =
  let n = List.length xs in
  if n = 0 then []
  else begin
    let k = max 1 (min k n) in
    let size = (n + k - 1) / k in
    let rec split acc xs =
      match xs with
      | [] -> List.rev acc
      | _ ->
        let rec take i tl acc' =
          if i = 0 then (List.rev acc', tl)
          else match tl with [] -> (List.rev acc', []) | x :: tl -> take (i - 1) tl (x :: acc')
        in
        let c, rest = take size xs [] in
        split (c :: acc) rest
    in
    split [] xs
  end

let absorb t summaries =
  let merged = List.fold_left Storage.Stats.merge Storage.Stats.zero summaries in
  Mutex.protect t.acc_lock (fun () -> Storage.Stats.absorb t.accountant merged)

let fan ?snapshot t probes run =
  let snap = match snapshot with Some s -> s | None -> pin t in
  let parts =
    Pool.run_all t.pool
      (List.map
         (fun c () ->
           let env = Snapshot.env ~buffer_pages:t.buffer_pages snap in
           let res = run snap env c in
           (res, Storage.Stats.snapshot env.Core.Exec.stats))
         (chunk t.jobs probes))
  in
  absorb t (List.map snd parts);
  List.concat_map fst parts

let forward_batch ?snapshot t path ~i ~j oids =
  let probes = List.sort_uniq Gom.Oid.compare oids in
  fan ?snapshot t probes (fun snap env c ->
      Engine.forward_batch ~env (Snapshot.engine snap) path ~i ~j c)

let backward_batch ?snapshot t path ~i ~j ~targets =
  let probes = List.sort_uniq Gom.Value.compare targets in
  fan ?snapshot t probes (fun snap env c ->
      Engine.backward_batch ~env (Snapshot.engine snap) path ~i ~j ~targets:c)

type query =
  | Forward of { q_path : Gom.Path.t; q_i : int; q_j : int; q_sources : Gom.Oid.t list }
  | Backward of { q_path : Gom.Path.t; q_i : int; q_j : int; q_targets : Gom.Value.t list }

type answer =
  | Forward_answer of (Gom.Oid.t * Gom.Value.t list) list
  | Backward_answer of (Gom.Value.t * Gom.Oid.t list) list

let serve ?snapshot t queries =
  let qs = Array.of_list queries in
  let run_one snap env = function
    | Forward { q_path; q_i; q_j; q_sources } ->
      Forward_answer
        (Engine.forward_batch ~env (Snapshot.engine snap) q_path ~i:q_i ~j:q_j q_sources)
    | Backward { q_path; q_i; q_j; q_targets } ->
      Backward_answer
        (Engine.backward_batch ~env (Snapshot.engine snap) q_path ~i:q_i ~j:q_j
           ~targets:q_targets)
  in
  let indexed =
    fan ?snapshot t
      (List.init (Array.length qs) Fun.id)
      (fun snap env c -> List.map (fun k -> (k, run_one snap env qs.(k))) c)
  in
  let out = Array.make (Array.length qs) None in
  List.iter (fun (k, a) -> out.(k) <- Some a) indexed;
  Array.to_list
    (Array.map (function Some a -> a | None -> assert false (* fan covers every index *)) out)

type served = Answered of answer | Timed_out | Failed of string

(* Deadline- and exception-safe serving.  Each query gets its own
   environment (so a budget belongs to exactly one query) and its own
   typed outcome: an expired budget surfaces as [Timed_out] (counted on
   the query's sheaf, hence in the merged accountant), any other raise
   as [Failed] — and via [Pool.run_all_results] even a whole lost chunk
   degrades to per-query [Failed]s instead of poisoning the batch or a
   worker domain.  Admitted answers remain byte-identical to [serve]'s:
   cancellation checkpoints only ever fire between whole evaluation
   steps, and chunking/merging is unchanged. *)
let serve_deadlined ?snapshot t entries =
  let qs = Array.of_list entries in
  let snap = match snapshot with Some s -> s | None -> pin t in
  let run_one k =
    let query, deadline = qs.(k) in
    let env = Snapshot.env ~buffer_pages:t.buffer_pages ~deadline snap in
    let outcome =
      try
        Answered
          (match query with
          | Forward { q_path; q_i; q_j; q_sources } ->
            Forward_answer
              (Engine.forward_batch ~env (Snapshot.engine snap) q_path ~i:q_i ~j:q_j
                 q_sources)
          | Backward { q_path; q_i; q_j; q_targets } ->
            Backward_answer
              (Engine.backward_batch ~env (Snapshot.engine snap) q_path ~i:q_i ~j:q_j
                 ~targets:q_targets))
      with
      | Core.Deadline.Expired ->
        Storage.Stats.note_timed_out env.Core.Exec.stats;
        Timed_out
      | e -> Failed (Printexc.to_string e)
    in
    (outcome, Storage.Stats.snapshot env.Core.Exec.stats)
  in
  let chunks = chunk t.jobs (List.init (Array.length qs) Fun.id) in
  let parts =
    Pool.run_all_results t.pool
      (List.map (fun c () -> List.map (fun k -> (k, run_one k)) c) chunks)
  in
  let out = Array.make (Array.length qs) (Failed "chunk lost") in
  let sheaves = ref [] in
  List.iter2
    (fun c part ->
      match part with
      | Ok items ->
        List.iter
          (fun (k, (o, sheaf)) ->
            out.(k) <- o;
            sheaves := sheaf :: !sheaves)
          items
      | Error e ->
        (* run_one catches everything, so this arm is unreachable today;
           it still closes the contract for any future task wrapper. *)
        List.iter (fun k -> out.(k) <- Failed (Printexc.to_string e)) c)
    chunks parts;
  absorb t !sheaves;
  Array.to_list out

let stats t = Mutex.protect t.acc_lock (fun () -> Storage.Stats.snapshot t.accountant)
let shutdown t = Pool.shutdown t.pool
