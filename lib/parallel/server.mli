(** Parallel snapshot-isolated query serving.

    The server wraps one live object base behind epoch-based snapshot
    publication:

    - {e writers} go through {!update}, serialised by a single writer
      mutex; when a commit actually mutated the base, a fresh
      {!Snapshot.t} is published with one atomic store — advanced
      copy-on-write from the previous epoch's image (only touched
      instances are cloned, and the access support relations are shared
      by reference with their tree versions pinned), so publication
      costs what the writer touched, never a deep copy of the base;
    - {e readers} never block: {!pin} is an [Atomic.get], and every
      query entry point runs against a pinned immutable snapshot, so a
      reader races no one — not even a concurrent republication, which
      merely swaps the pointer for {e later} pins.

    Query batches fan out over a fixed {!Pool.t} of domains.  Probe
    batches are globally sorted, split into contiguous chunks, and the
    chunk answers concatenated in chunk order — because the engine's
    batch answers are sorted functions of the probe {e set}, the merged
    output is byte-identical for every job count (property-tested).
    Each task accounts pages into a private {!Storage.Stats.t} sheaf;
    sheaves are merged with {!Storage.Stats.merge} and folded into the
    server's cumulative accountant, so {!stats} equals what a
    sequential run would have counted. *)

type t

val create :
  ?jobs:int ->
  ?buffer_pages:int ->
  ?sizes:(Gom.Schema.type_name -> int) ->
  ?maintenance:Core.Maintenance.t ->
  specs:Snapshot.spec list ->
  Gom.Store.t ->
  t
(** Serve [base] with [max 1 jobs] executor domains (default 1) and the
    given access-support specs, opening a {!Snapshot.source} and
    publishing the initial snapshot immediately (the one O(n) image;
    every later publication is CoW).  The base must not be mutated
    behind the server's back afterwards — route every write through
    {!update}.  The spec'd relations are registered with [?maintenance]
    (the live base's manager — its flush policy then governs them) or
    with a private immediate-mode manager; either way every pending
    delta is flushed before a snapshot is published, so published
    epochs are always delta-free.

    [?buffer_pages:n] (default 0 = unbuffered) gives each worker task's
    private environment an [n]-page buffer pool; the merged accountant
    then reports cumulative hit/miss/eviction tallies across tasks. *)

val jobs : t -> int

val epoch : t -> int
(** Epoch of the currently published snapshot. *)

val pin : t -> Snapshot.t
(** The current snapshot; wait-free.  A pinned snapshot stays valid (and
    frozen) forever — republication never mutates it. *)

val update : ?publish:bool -> t -> (Gom.Store.t -> 'a) -> 'a
(** Run a writer against the live base under the writer lock; if the
    base's epoch moved (the writer emitted at least one event), capture
    and publish a fresh snapshot before returning.  Readers pinned to
    the old snapshot keep their consistent view.  With [~publish:false]
    the write commits but publication is deferred (readers keep the
    previous epoch) until a later publishing {!update} or {!refresh} —
    brownout mode uses this to shed the capture cost under overload,
    trading bounded staleness. *)

val refresh : t -> unit
(** Force republication even without intervening writes (e.g. after
    changing specs out of band, or to catch up after deferred
    [~publish:false] updates). *)

val lag : t -> int
(** How many epochs the published snapshot trails the live base
    (0 = fresh; positive only while publication is deferred). *)

type publish_info = {
  publishes : int;  (** Epochs published since creation (incl. the first). *)
  last_latency_s : float;  (** Wall-clock cost of the last publication. *)
  total_latency_s : float;
  last_copied : int;
      (** Instances deep-copied by the last publication (its dirty set). *)
  last_shared : int;
      (** Instances the last publication carried over by reference. *)
}

val publish_info : t -> publish_info
(** Publication telemetry; wait-free.  [last_copied] versus
    [last_shared] is the direct measure of the CoW win: a small write
    against a large base copies a handful of instances and shares the
    rest. *)

(** {2 Query entry points}

    All of them pin the current snapshot unless handed an explicit
    [?snapshot] (the way a reader spans several calls under one
    consistent view). *)

val forward_batch :
  ?snapshot:Snapshot.t ->
  t ->
  Gom.Path.t ->
  i:int ->
  j:int ->
  Gom.Oid.t list ->
  (Gom.Oid.t * Gom.Value.t list) list
(** Fan a probe set across the pool; answers sorted by probe,
    deduplicated, independent of the job count. *)

val backward_batch :
  ?snapshot:Snapshot.t ->
  t ->
  Gom.Path.t ->
  i:int ->
  j:int ->
  targets:Gom.Value.t list ->
  (Gom.Value.t * Gom.Oid.t list) list

type query =
  | Forward of { q_path : Gom.Path.t; q_i : int; q_j : int; q_sources : Gom.Oid.t list }
  | Backward of { q_path : Gom.Path.t; q_i : int; q_j : int; q_targets : Gom.Value.t list }

type answer =
  | Forward_answer of (Gom.Oid.t * Gom.Value.t list) list
  | Backward_answer of (Gom.Value.t * Gom.Oid.t list) list

val serve : ?snapshot:Snapshot.t -> t -> query list -> answer list
(** Route a mixed workload through the pool: queries are dealt to
    executors in contiguous chunks, each executed left-to-right under a
    private sheaf, and the answers returned {e in request order} —
    again independent of the job count. *)

type served = Answered of answer | Timed_out | Failed of string
    (** Typed per-query outcome of {!serve_deadlined}: a full answer, a
        cooperative cancellation (the query's deadline expired at a
        checkpoint — never a partial answer), or a query-local failure
        (the raising query fails alone; the batch, the pool and every
        other query survive). *)

val serve_deadlined :
  ?snapshot:Snapshot.t -> t -> (query * Core.Deadline.t) list -> served list
(** Like {!serve}, but each query carries its own cancellation budget
    and returns a typed outcome instead of raising.  An [Answered]
    outcome is byte-identical to what {!serve} would have produced for
    the same query on the same snapshot (property-tested); [Timed_out]
    is counted in the merged accounting as [timed_out]. *)

val stats : t -> Storage.Stats.summary
(** Cumulative merged accounting over everything the server executed. *)

val shutdown : t -> unit
(** Join the worker domains; the server remains usable inline. *)
