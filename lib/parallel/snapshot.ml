type spec = {
  sp_path : Gom.Path.t;
  sp_kind : Core.Extension.kind;
  sp_decomposition : Core.Decomposition.t;
}

type t = {
  epoch : int;
  store : Gom.Store.t;
  heap : Storage.Heap.t;
  engine : Engine.t;
  indexes : Core.Asr.t list;
}

let capture ?(sizes = fun _ -> 100) ~specs base =
  let store = Gom.Store.copy base in
  let heap = Storage.Heap.create ~size_of:sizes store in
  let engine = Engine.create ~sizes (Core.Exec.make store heap) in
  let indexes =
    List.map
      (fun sp ->
        let index = Core.Asr.create store sp.sp_path sp.sp_kind sp.sp_decomposition in
        Engine.register engine index;
        index)
      specs
  in
  { epoch = Gom.Store.epoch store; store; heap; engine; indexes }

let epoch t = t.epoch
let store t = t.store
let engine t = t.engine
let indexes t = t.indexes
let env ?deadline t = Core.Exec.make ?deadline t.store t.heap
