type spec = {
  sp_path : Gom.Path.t;
  sp_kind : Core.Extension.kind;
  sp_decomposition : Core.Decomposition.t;
}

type source = {
  src_base : Gom.Store.t;
  src_heap : Storage.Heap.t;
  src_engine : Engine.t;
  src_indexes : Core.Asr.t list;
  src_maintenance : Core.Maintenance.t;
  mutable src_frozen : Gom.Frozen.t;
  src_events : Gom.Store.event list ref;  (* reversed suffix since src_frozen *)
}

type t = {
  epoch : int;
  view : Gom.Store_view.t;
  heap : Storage.Heap.t;
  engine : Engine.t;
  indexes : Core.Asr.t list;
  marks : (int * int) list;
  copied : int;
  shared : int;
}

let source ?(sizes = fun _ -> 100) ?maintenance ~specs base =
  let heap = Storage.Heap.create ~size_of:sizes base in
  let engine = Engine.create ~sizes (Core.Exec.make base heap) in
  let maintenance =
    match maintenance with
    | Some m -> m
    | None -> Core.Maintenance.create (Engine.env engine)
  in
  let indexes =
    List.map
      (fun sp ->
        let index = Core.Asr.create base sp.sp_path sp.sp_kind sp.sp_decomposition in
        Engine.register engine index;
        Core.Maintenance.register maintenance index;
        index)
      specs
  in
  (* Capture the initial image before opening the event tap: every event
     the tap sees is strictly younger than [src_frozen]. *)
  let frozen = Gom.Frozen.of_store base in
  let events = ref [] in
  let (_ : Gom.Store.subscription) =
    Gom.Store.subscribe base (fun ev -> events := ev :: !events)
  in
  {
    src_base = base;
    src_heap = heap;
    src_engine = engine;
    src_indexes = indexes;
    src_maintenance = maintenance;
    src_frozen = frozen;
    src_events = events;
  }

let source_engine src = src.src_engine
let source_indexes src = src.src_indexes
let source_maintenance src = src.src_maintenance

(* Publication: O(events since the previous epoch), not O(store).  The
   caller must exclude concurrent writers (the server's writer mutex).
   The registered ASRs are shared by reference: their deferred buffers
   are drained so the trees reflect exactly this epoch, and each tree
   version is pinned as the snapshot's mark — a later tree mutation
   makes the engine degrade that snapshot's probes to navigation over
   the frozen view instead of reading future trees. *)
let advance src =
  ignore (Core.Maintenance.flush_all src.src_maintenance);
  List.iter (fun a -> ignore (Core.Asr.flush a)) src.src_indexes;
  let events = List.rev !(src.src_events) in
  src.src_events := [];
  let frozen = Gom.Frozen.advance src.src_frozen events in
  src.src_frozen <- frozen;
  let marks =
    List.map (fun a -> (Core.Asr.id a, Core.Asr.tree_version a)) src.src_indexes
  in
  {
    epoch = Gom.Frozen.epoch frozen;
    view = Gom.Store_view.frozen frozen;
    heap = Storage.Heap.snapshot src.src_heap;
    engine = src.src_engine;
    indexes = src.src_indexes;
    marks;
    copied = Gom.Frozen.copied frozen;
    shared = Gom.Frozen.shared frozen;
  }

let capture ?sizes ~specs base = advance (source ?sizes ~specs base)

let epoch t = t.epoch
let store t = t.view
let engine t = t.engine
let indexes t = t.indexes
let copied t = t.copied
let shared t = t.shared
let env ?buffer_pages ?deadline t =
  Core.Exec.make_view ?buffer_pages ?deadline ~marks:t.marks t.view t.heap
