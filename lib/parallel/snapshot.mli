(** Copy-on-write epoch snapshots of an object base, ready to serve
    queries from many domains at once.

    A {!t} is a frozen {!Gom.Store_view.t} — a persistent image built on
    immutable maps with structural sharing ({!Gom.Frozen}) — plus a
    frozen heap layout and the {e shared} engine and access support
    relations of its {!source}.  Publishing an epoch costs
    O(events since the previous epoch): only instances the writer
    touched are cloned, everything else is carried over by reference,
    and no ASR is ever rebuilt — the snapshot pins each ASR's tree
    version instead, and the engine refuses trees whose version has
    moved past the pin (degrading that probe to navigation over the
    frozen view, which answers identically).

    Nothing ever mutates a published snapshot, which is the entire
    concurrency argument.  The one per-domain ingredient is the
    accounting environment — call {!env} once per domain (or per task)
    and merge the {!Storage.Stats} sheaves afterwards. *)

type spec = {
  sp_path : Gom.Path.t;
  sp_kind : Core.Extension.kind;
  sp_decomposition : Core.Decomposition.t;
}
(** What it takes to materialise one access support relation over the
    live base: the path expression, the extension and the decomposition
    (paper, sections 3-4). *)

type t

type source
(** The publication side of one live base: the shared engine, the
    spec-built ASRs (registered for maintenance), the event tap, and the
    previous epoch's frozen image that the next {!advance} extends. *)

val source :
  ?sizes:(Gom.Schema.type_name -> int) ->
  ?maintenance:Core.Maintenance.t ->
  specs:spec list ->
  Gom.Store.t ->
  source
(** Open a snapshot source over the base: lay out a heap ([sizes]
    defaulting to 100 bytes per object, matching {!Engine.create}),
    materialise every spec'd index once, register it with a fresh shared
    engine and with the maintenance manager ([?maintenance], or a
    private [Immediate]-policy one), take the initial O(n) image, and
    start buffering store events.  All later writes to the base must be
    serialised against {!advance} by the caller (the server's writer
    mutex). *)

val advance : source -> t
(** Publish the base as it stands: drain the ASRs' deferred buffers so
    the shared trees reflect exactly this epoch, apply the buffered
    event suffix to the previous frozen image (cloning only touched
    instances), freeze the heap layout, and pin each ASR's tree version.
    O(events since the previous publication). *)

val source_engine : source -> Engine.t
val source_indexes : source -> Core.Asr.t list
val source_maintenance : source -> Core.Maintenance.t

val capture :
  ?sizes:(Gom.Schema.type_name -> int) -> specs:spec list -> Gom.Store.t -> t
(** One-shot [advance (source ~specs base)] — a standalone frozen
    snapshot for callers without a publication loop (tests, ad-hoc
    tools).  Unlike the old deep-copy capture this shares the base's
    ASR trees; later base mutations simply degrade the snapshot's
    index probes to navigation (answers are unchanged). *)

val epoch : t -> int
(** The base's {!Gom.Store.epoch} at publication time. *)

val store : t -> Gom.Store_view.t
(** The frozen read-only view of the epoch. *)

val engine : t -> Engine.t
(** The shared, lock-guarded engine (one per {!source}, not per
    epoch — plans are cached across the whole lineage). *)

val indexes : t -> Core.Asr.t list
(** The shared access support relations (by reference — never copies). *)

val copied : t -> int
(** Instances deep-copied to publish this epoch (the dirty set). *)

val shared : t -> int
(** Instances carried over from the previous epoch by reference. *)

val env : ?buffer_pages:int -> ?deadline:Core.Deadline.t -> t -> Core.Exec.env
(** A fresh accounting environment over the snapshot (frozen view and
    heap, pinned index marks, private cold {!Storage.Stats.t}) — one per
    domain, so page counting never races.  [?buffer_pages:n] attaches a
    private [n]-page buffer pool to the environment's stats (each domain
    warms its own pool — pools are not shared across domains).
    [?deadline] arms the environment's cooperative cancellation budget
    (defaults to none). *)
