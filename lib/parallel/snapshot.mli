(** Immutable epoch snapshots of an object base, ready to serve queries
    from many domains at once.

    A snapshot is a deep {!Gom.Store.copy} of the base taken at one
    {!Gom.Store.epoch}, together with freshly materialised access
    support relations (rebuilt from their specs against the copy), a
    type-clustered heap layout, and one shared {!Engine.t} whose
    internal lock makes its plan cache safe to hit from every worker —
    plans chosen for the epoch are reused across the whole pool.

    Nothing ever mutates a published snapshot, which is the entire
    concurrency argument: frozen hash tables and B+ trees are safe to
    read from any number of domains.  The one per-domain ingredient is
    the accounting environment — call {!env} once per domain (or per
    task) and merge the {!Storage.Stats} sheaves afterwards. *)

type spec = {
  sp_path : Gom.Path.t;
  sp_kind : Core.Extension.kind;
  sp_decomposition : Core.Decomposition.t;
}
(** What it takes to rebuild one access support relation on a fresh
    copy: the path expression, the extension and the decomposition
    (paper, sections 3-4). *)

type t

val capture :
  ?sizes:(Gom.Schema.type_name -> int) -> specs:spec list -> Gom.Store.t -> t
(** Freeze the base as it stands: copy it, lay out a heap ([sizes]
    defaulting to 100 bytes per object, matching {!Engine.create}),
    rebuild every spec'd index over the copy and register it with a
    fresh engine.  The caller must guarantee the base is not mutated
    {e during} the capture — the server takes it under the writer
    lock. *)

val epoch : t -> int
(** The {!Gom.Store.epoch} of the base at capture time. *)

val store : t -> Gom.Store.t
(** The frozen copy.  Mutating it voids the snapshot's guarantees. *)

val engine : t -> Engine.t
(** The shared, lock-guarded engine over the copy. *)

val indexes : t -> Core.Asr.t list

val env : ?deadline:Core.Deadline.t -> t -> Core.Exec.env
(** A fresh accounting environment over the snapshot (same store and
    heap, private cold {!Storage.Stats.t}) — one per domain, so page
    counting never races.  [?deadline] arms the environment's
    cooperative cancellation budget (defaults to none). *)
