(** Analytical query costs in secondary page accesses
    (paper, sections 5.6-5.8, equations 31-35). *)

type query_kind = Fw | Bw

val qnas_fw : Profile.t -> int -> int -> float
(** Equation 31: forward query from one object, no access support.
    0 when [i = j]. *)

val qnas_bw : Profile.t -> int -> int -> float
(** Equation 32: backward query by exhaustive search. *)

val qnas : Profile.t -> query_kind -> int -> int -> float

val qsup :
  Profile.t -> Core.Extension.kind -> Core.Decomposition.t -> query_kind -> int -> int -> float
(** Equations 33-34: supported query over a decomposition.  This is the
    raw partition-access formula; it does not check logical
    applicability (section 6 reuses it to locate tuples inside an
    extension that would not support the query logically). *)

val q :
  Profile.t -> Core.Extension.kind -> Core.Decomposition.t -> query_kind -> int -> int -> float
(** Equation 35: dispatch — supported evaluation when the extension
    applies to [(i,j)], the unsupported cost otherwise. *)

val q_no_support : Profile.t -> query_kind -> int -> int -> float
(** Alias of {!qnas}, for mix comparisons. *)

val warmed : float -> hit_ratio:float option -> float
(** Buffer-aware adjustment of an analytical cost: equations 31-35
    price page accesses as physical faults, so against a buffer pool
    whose measured hit ratio for the relevant segment is [r] the
    expected physical cost is scaled by [1 - 0.95 r] (floored at 5% of
    the cold cost — warm pages still cost logical work).  [None] (no
    pool, or no traffic observed yet) leaves the cold cost unchanged. *)
