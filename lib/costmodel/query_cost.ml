type query_kind = Fw | Bw

let check p i j name =
  let n = Profile.n p in
  if not (0 <= i && i <= j && j <= n) then
    invalid_arg (Printf.sprintf "Query_cost.%s: invalid range (%d,%d), n=%d" name i j n)

let qnas_fw p i j =
  check p i j "qnas_fw";
  if i = j then 0.
  else begin
    let acc = ref 1. in
    for l = i + 1 to j - 1 do
      acc :=
        !acc
        +. Derived.yao
             ~k:(Float.ceil (Derived.ref_by_k p i l 1.))
             ~m:(Storage_cost.op p l) ~n:(Profile.c p l)
    done;
    !acc
  end

let qnas_bw p i j =
  check p i j "qnas_bw";
  if i = j then 0.
  else begin
    let acc = ref (Storage_cost.op p i) in
    for l = i + 1 to j - 1 do
      acc :=
        !acc
        +. Derived.yao
             ~k:(Float.ceil (Derived.ref_by_k p i l (Profile.d p i)))
             ~m:(Storage_cost.op p l) ~n:(Profile.c p l)
    done;
    !acc
  end

let qnas p kind i j = match kind with Fw -> qnas_fw p i j | Bw -> qnas_bw p i j

let bfan p = Profile.bplus_fan (Profile.system p)

(* Equation 33. *)
let qsup_fw p x dec i j =
  let parts = Core.Decomposition.partitions dec in
  List.fold_left
    (fun acc (a, b) ->
      if a = i && i < b then
        (* Clustered entry: one root-to-leaf descent, then the leaf
           pages of the single key. *)
        acc +. Storage_cost.ht p x a b +. Storage_cost.nlp p x a b
      else if a < i && i < b then
        (* Entered in the middle: inspect the whole partition. *)
        acc +. Storage_cost.ap p x a b
      else if i < a && a < j then begin
        let keys = Float.ceil (Derived.ref_by_k p i a 1.) in
        let pg = Storage_cost.pg p x a b in
        acc +. 1.
        +. Derived.yao ~k:keys ~m:(pg -. 1.) ~n:((pg -. 1.) *. bfan p)
        +. Derived.yao
             ~k:(keys *. Storage_cost.nlp p x a b)
             ~m:(Storage_cost.ap p x a b) ~n:(Cardinality.count p x a b)
      end
      else acc)
    0. parts

(* Equation 34. *)
let qsup_bw p x dec i j =
  let parts = Core.Decomposition.partitions dec in
  List.fold_left
    (fun acc (a, b) ->
      if b = j && a < j then
        acc +. Storage_cost.ht p x a b +. Storage_cost.rnlp p x a b
      else if a < j && j < b then acc +. Storage_cost.ap p x a b
      else if i < b && b < j then begin
        let keys = Float.ceil (Derived.reaches_k p b j 1.) in
        let pg = Storage_cost.pg p x a b in
        acc +. 1.
        +. Derived.yao ~k:keys ~m:(pg -. 1.) ~n:((pg -. 1.) *. bfan p)
        +. Derived.yao
             ~k:(keys *. Storage_cost.rnlp p x a b)
             ~m:(Storage_cost.ap p x a b) ~n:(Cardinality.count p x a b)
      end
      else acc)
    0. parts

let qsup p x dec kind i j =
  check p i j "qsup";
  if i = j then 0.
  else match kind with Fw -> qsup_fw p x dec i j | Bw -> qsup_bw p x dec i j

let q p x dec kind i j =
  check p i j "q";
  if i = j then 0.
  else if Core.Extension.supports x ~n:(Profile.n p) ~i ~j then qsup p x dec kind i j
  else qnas p kind i j

let q_no_support = qnas

(* Equations 31-35 price every page access as a physical fault — true
   for a cold buffer.  Against a warm pool a fraction [r] of accesses
   hit resident pages; scale the analytical cost by the measured miss
   share, floored so a fully-warm segment still costs something (the
   logical work does not vanish). *)
let warmed cost ~hit_ratio =
  match hit_ratio with
  | None -> cost
  | Some r ->
    let r = Float.max 0. (Float.min 1. r) in
    cost *. (1. -. (0.95 *. r))
