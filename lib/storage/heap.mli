(** Type-clustered object pages with traversal-aware reclustering.

    "We generally assume that objects are clustered dependent on their
    type" (paper, section 5.5): objects of type [ti] are packed
    [opp_i = PageSize / size_i] to a page.  This module assigns a page to
    every object of a {!Gom.Store.t} as it is created and charges page
    reads/writes to a {!Stats.t} when objects are accessed, giving the
    executable counterpart of the model's [op_i] and Yao-style scan
    costs.

    Creation-order type clustering is only the {e initial} layout: the
    heap can also carry an {!Affinity.t} tracer that mines executed
    traversals into a co-access graph, and {!recluster} repacks hot
    traversal neighbourhoods onto shared pages — after which a page may
    hold objects of several types.  Page occupancy (not the original
    bump-allocator areas) is therefore the ground truth for extent
    membership. *)

type t

type placement = { first : int; span : int; ty : Gom.Schema.type_name }
(** Where an object lives: pages [first .. first+span-1]. *)

val create :
  ?config:Config.t ->
  ?pager:Pager.t ->
  size_of:(Gom.Schema.type_name -> int) ->
  Gom.Store.t ->
  t
(** [create ~size_of store] lays out all existing objects and subscribes
    to the store so future objects get pages too.  [size_of] gives the
    average object size per type (the paper's [size_i]); objects larger
    than a page span several consecutive pages. *)

val snapshot : t -> t
(** O(1) frozen fork: shares the persistent placement/occupancy maps of
    the live heap at this instant and is not subscribed to any store, so
    later mutations of the live heap never reach it.  The fork never
    carries the affinity tracer — worker domains must not race on its
    tables.  Published epoch snapshots pair a {!Gom.Frozen} store image
    with a heap snapshot. *)

val config : t -> Config.t

val set_tracer : t -> Affinity.t option -> unit
(** Attach (or detach) an affinity tracer: while attached, every
    {!read_object} records the access so traversal neighbourhoods can be
    mined with {!Affinity.clusters}. *)

val tracer : t -> Affinity.t option

val placement : t -> Gom.Oid.t -> placement
(** @raise Not_found for unknown objects. *)

val page_of : t -> Gom.Oid.t -> int
(** First page of the object.  @raise Not_found for unknown objects. *)

val span_of : t -> Gom.Oid.t -> int
(** Consecutive pages the object occupies (1 unless larger than a
    page).  @raise Not_found for unknown objects. *)

val read_object : t -> Stats.t -> Gom.Oid.t -> unit
(** Charge the page reads needed to fetch the object (all [span] pages),
    tagged to the ["heap"] segment, and inform the tracer if any. *)

val write_object : t -> Stats.t -> Gom.Oid.t -> unit
(** Charge the page writes for storing the object back. *)

val pages_of_type : ?deep:bool -> t -> Gom.Schema.type_name -> int
(** Number of distinct pages the extent occupies (the paper's [op_i]).
    With [~deep:true] the union over the subtype closure — distinct:
    a shared post-recluster page counts once.  At least 1 when asking
    about a defined type, mirroring ceil semantics. *)

val objects_per_page : t -> Gom.Schema.type_name -> int
(** The paper's [opp_i]. *)

val type_pages : t -> Gom.Schema.type_name -> int list
(** The distinct pages currently holding live objects of exactly this
    type, ascending. *)

val scan_extent : ?deep:bool -> t -> Stats.t -> Gom.Schema.type_name -> unit
(** Charge reads for every page of the extent (exhaustive search).  The
    extent's pages are staged via {!Stats.prefetch} first, so with a
    buffer pool attached a scan both pays its own physical I/O exactly
    once and leaves the extent resident. *)

(** {1 Traversal-aware reclustering}

    [recluster] takes a plan — a list of object clusters, hottest first,
    as produced by {!Affinity.clusters} — and repacks each cluster onto
    freshly allocated pages (first-fit: consecutive clusters share a
    page when they fit).  Only placements move; object identity, values
    and ASRs are untouched, so every query answer is preserved by
    construction.  Multi-page (large) objects are never moved.

    The work can run in bounded slices from the background-maintenance
    loop: [recluster_start] precomputes the move list, and each
    [recluster_step] applies at most [slice] moves. *)

type recluster_outcome = {
  rc_considered : int;  (** objects named by the plan *)
  rc_moved : int;  (** placements actually rewritten *)
  rc_target_pages : int;  (** fresh pages the moved objects now share *)
}

type recluster_job

val recluster_start :
  ?slice:int -> t -> plan:Gom.Oid.t list list -> recluster_job
(** Plan the moves and mark the heap as reclustering.  [slice] (default
    64) is the per-step move budget.  @raise Invalid_argument if a job
    is already active on this heap. *)

val recluster_step : recluster_job -> [ `More | `Done of recluster_outcome ]
(** Apply one slice.  Objects deleted since planning are skipped. *)

val recluster_abort : recluster_job -> unit
(** Drop the remaining moves.  Already-applied moves stay (they are
    answer-preserving). *)

val recluster :
  ?slice:int -> t -> plan:Gom.Oid.t list list -> recluster_outcome
(** [recluster_start] driven to completion. *)

val recluster_progress : t -> (int * int) option
(** [Some (moved, planned)] once a recluster has started (running or
    finished); [None] if none ever ran. *)

val recluster_active : t -> bool
