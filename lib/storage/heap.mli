(** Type-clustered object pages.

    "We generally assume that objects are clustered dependent on their
    type" (paper, section 5.5): objects of type [ti] are packed
    [opp_i = PageSize / size_i] to a page.  This module assigns a page to
    every object of a {!Gom.Store.t} as it is created and charges page
    reads/writes to a {!Stats.t} when objects are accessed, giving the
    executable counterpart of the model's [op_i] and Yao-style scan
    costs. *)

type t

val create :
  ?config:Config.t ->
  ?pager:Pager.t ->
  size_of:(Gom.Schema.type_name -> int) ->
  Gom.Store.t ->
  t
(** [create ~size_of store] lays out all existing objects and subscribes
    to the store so future objects get pages too.  [size_of] gives the
    average object size per type (the paper's [size_i]); objects larger
    than a page span several consecutive pages. *)

val snapshot : t -> t
(** O(1) frozen fork: shares the persistent placement/area maps of the
    live heap at this instant and is not subscribed to any store, so
    later mutations of the live heap never reach it.  Published epoch
    snapshots pair a {!Gom.Frozen} store image with a heap snapshot. *)

val config : t -> Config.t

val page_of : t -> Gom.Oid.t -> int
(** First page of the object.  @raise Not_found for unknown objects. *)

val read_object : t -> Stats.t -> Gom.Oid.t -> unit
(** Charge the page reads needed to fetch the object. *)

val write_object : t -> Stats.t -> Gom.Oid.t -> unit
(** Charge the page writes for storing the object back. *)

val pages_of_type : ?deep:bool -> t -> Gom.Schema.type_name -> int
(** Number of pages the extent occupies (the paper's [op_i]).  At least
    1 when asking about a defined type, mirroring ceil semantics. *)

val objects_per_page : t -> Gom.Schema.type_name -> int
(** The paper's [opp_i]. *)

val scan_extent : ?deep:bool -> t -> Stats.t -> Gom.Schema.type_name -> unit
(** Charge reads for every page of the extent (exhaustive search). *)
