module Omap = Map.Make (Gom.Oid)

(* Edges are normalised (min, max) pairs of distinct oids. *)
module Pair = struct
  type t = Gom.Oid.t * Gom.Oid.t

  let compare (a1, b1) (a2, b2) =
    match Gom.Oid.compare a1 a2 with 0 -> Gom.Oid.compare b1 b2 | c -> c

  let hash = Hashtbl.hash
  let equal a b = compare a b = 0
end

module Ptbl = Hashtbl.Make (Pair)

type t = {
  window : int;
  max_edges : int;
  mutable recent : Gom.Oid.t list;  (* most recent first, length <= window *)
  edges : int ref Ptbl.t;
  mutable touches : int;
}

let create ?(window = 2) ?(max_edges = 65536) () =
  {
    window = max 1 window;
    max_edges = max 16 max_edges;
    recent = [];
    edges = Ptbl.create 1024;
    touches = 0;
  }

let norm a b = if Gom.Oid.compare a b <= 0 then (a, b) else (b, a)

let decay t =
  let dead = ref [] in
  Ptbl.iter
    (fun k w ->
      w := !w / 2;
      if !w = 0 then dead := k :: !dead)
    t.edges;
  List.iter (Ptbl.remove t.edges) !dead

let bump t a b =
  if Gom.Oid.compare a b <> 0 then begin
    let k = norm a b in
    (match Ptbl.find_opt t.edges k with
    | Some w -> incr w
    | None ->
      if Ptbl.length t.edges >= t.max_edges then decay t;
      Ptbl.replace t.edges k (ref 1))
  end

let touch t oid =
  t.touches <- t.touches + 1;
  List.iter (fun prev -> bump t prev oid) t.recent;
  let rec take k = function
    | [] -> []
    | x :: tl -> if k = 0 then [] else x :: take (k - 1) tl
  in
  t.recent <- oid :: take (t.window - 1) t.recent

let break_run t = t.recent <- []
let touches t = t.touches
let edge_count t = Ptbl.length t.edges

(* Union-find over oids with byte-size tracking, merged hottest-edge
   first under the page-capacity constraint. *)
let clusters t ~size_of ~page_size =
  let parent : Gom.Oid.t Omap.t ref = ref Omap.empty in
  let bytes : int Omap.t ref = ref Omap.empty in
  let heat : int Omap.t ref = ref Omap.empty in
  let rec find o =
    match Omap.find_opt o !parent with
    | None ->
      parent := Omap.add o o !parent;
      bytes := Omap.add o (max 1 (size_of o)) !bytes;
      o
    | Some p when Gom.Oid.compare p o = 0 -> o
    | Some p ->
      let r = find p in
      parent := Omap.add o r !parent;
      r
  in
  let edges =
    Ptbl.fold (fun k w acc -> (k, !w) :: acc) t.edges []
    |> List.sort (fun ((k1 : Pair.t), w1) (k2, w2) ->
           match Int.compare w2 w1 with 0 -> Pair.compare k1 k2 | c -> c)
  in
  List.iter
    (fun ((a, b), w) ->
      let ra = find a and rb = find b in
      if Gom.Oid.compare ra rb <> 0 then begin
        let sa = Omap.find ra !bytes and sb = Omap.find rb !bytes in
        if sa + sb <= page_size then begin
          parent := Omap.add rb ra !parent;
          bytes := Omap.add ra (sa + sb) !bytes;
          let h o = Option.value ~default:0 (Omap.find_opt o !heat) in
          heat := Omap.add ra (h ra + h rb + w) !heat
        end
      end)
    edges;
  (* Group members under their roots, order members deterministically and
     clusters by accumulated heat. *)
  let groups = ref Omap.empty in
  Omap.iter
    (fun o _ ->
      let r = find o in
      let cur = Option.value ~default:[] (Omap.find_opt r !groups) in
      groups := Omap.add r (o :: cur) !groups)
    !parent;
  Omap.fold
    (fun r members acc ->
      match members with
      | [] | [ _ ] -> acc
      | _ ->
        let h = Option.value ~default:0 (Omap.find_opt r !heat) in
        (h, List.sort Gom.Oid.compare members) :: acc)
    !groups []
  |> List.sort (fun (h1, m1) (h2, m2) ->
         match Int.compare h2 h1 with
         | 0 -> Gom.Oid.compare (List.hd m1) (List.hd m2)
         | c -> c)
  |> List.map snd
