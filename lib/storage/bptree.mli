(** Page-structured B+ trees over access-support-relation tuples.

    Following Valduriez's join-index storage (paper, section 5.2), each
    access support relation partition is kept in two redundant B+ trees,
    one clustered on the first attribute and one on the last.  This
    module implements one such tree: keys are {!Gom.Value.t} (an OID or,
    for the final column of a path ending in an elementary type, an
    atomic value); payloads are whole partition tuples.

    The tree is genuinely page-structured: inner nodes hold up to
    {!Config.bplus_fan} children (each child reference costs a page
    pointer plus a separator), leaves hold as many tuples as fit in a
    page given the tuple width.  All traversals report the pages they
    touch to a {!Stats.t}, which is how query and update costs are
    measured.

    Duplicate tuples are reference-counted: a decomposition partition is
    the {e projection} of the extension, so the same projected tuple can
    be contributed by several extension tuples (Definition 3.8). *)

type t

type tuple = Gom.Value.t array

val create :
  config:Config.t ->
  pager:Pager.t ->
  tuple_bytes:int ->
  key_of:(tuple -> Gom.Value.t) ->
  t
(** [create ~config ~pager ~tuple_bytes ~key_of] builds an empty tree.
    [tuple_bytes] is the stored size of one tuple (the paper's
    [ats = OIDsize * width]); [key_of] extracts the clustering key
    (first or last column). *)

val bulk_load : t -> tuple list -> unit
(** Replace the contents with the given tuples (each with reference
    count 1 per occurrence in the list; duplicates accumulate counts).
    Leaves are packed full, as after an index build. *)

val insert : ?stats:Stats.t -> t -> tuple -> unit
(** Add one reference to [tuple], descending from the root.  Page
    accounting: inner pages on the descent are read, the leaf is read
    and written, splits write the new pages and the affected parents. *)

val remove : ?stats:Stats.t -> t -> tuple -> unit
(** Drop one reference to [tuple]; the entry disappears when its count
    reaches zero.  Unknown tuples are ignored.  Leaves may become
    under-full (lazy deletion); empty leaves are unlinked. *)

val lookup : ?stats:Stats.t -> t -> Gom.Value.t -> tuple list
(** All tuples whose key equals the argument (each listed once,
    whatever its reference count), in tuple order.  Accounting: the
    descent reads the inner pages, then every leaf page holding a
    matching entry. *)

val lookup_many :
  ?stats:Stats.t -> t -> Gom.Value.t list -> (Gom.Value.t * tuple list) list
(** Batched {!lookup}: serves the (deduplicated) keys in ascending
    order, re-using the leaf the previous key's run ended on whenever
    the next key falls inside its key range, so adjacent keys share
    descents and leaf pages.  Returns one [(key, tuples)] pair per
    distinct key, in key order ([tuples] may be empty). *)

val apply_many : ?stats:Stats.t -> t -> (tuple * int) list -> unit
(** Batched {!insert}/{!remove}: apply many signed reference-count
    deltas in one shared-descent pass — the write-side sibling of
    {!lookup_many}.  Deltas are sorted by (clustering key, tuple) and
    coalesced (zero nets are discarded), then applied left to right
    riding the leaf chain, so consecutive deltas landing on the same
    leaf charge its page once per operation.  A positive delta on an
    absent tuple creates the entry with that count; a negative delta on
    an absent tuple is ignored (matching {!remove} of an unknown tuple);
    an entry whose count reaches zero disappears.  Emptied leaves are
    unlinked and over-full leaves are split in bulk at the end of the
    pass, rebuilding the inner levels bulk-load style. *)

val mem : t -> tuple -> bool

val refcount : t -> tuple -> int

val scan : ?stats:Stats.t -> t -> tuple list
(** All tuples in key order, reading every leaf page (the "inspect all
    pages of the partition" case of the paper's cost formulas — inner
    pages are not needed for a full scan). *)

val iter : ?stats:Stats.t -> t -> (tuple -> unit) -> unit

val cardinal : t -> int
(** Number of distinct tuples (the paper's [#E]). *)

val height : t -> int
(** Levels above the leaves, at least 1 (a root-only tree has height 1);
    the paper's [ht]. *)

val leaf_pages : t -> int
(** Number of leaf pages; the paper's [ap]. *)

val inner_pages : t -> int
(** Number of non-leaf pages; the paper's [pg]. *)

val tuple_bytes : t -> int

val check_invariants : t -> (unit, string) result
(** Structural check used by the test suite: ordering within and across
    leaves, capacity bounds, separator consistency, leaf chaining. *)
