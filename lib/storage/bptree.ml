type tuple = Gom.Value.t array

let cmp_tuple (a : tuple) (b : tuple) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la || i >= lb then Int.compare la lb
    else
      let c = Gom.Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

type entry = { tup : tuple; mutable count : int }

type node = { page : int; mutable body : body }

and body =
  | Leaf of leaf
  | Inner of inner

and leaf = {
  mutable entries : entry list; (* sorted by (key, tuple) *)
  mutable next : node option;
  mutable prev : node option;
}

and inner = { mutable children : (tuple * node) list }
(* (separator, child): all entries of the child are >= separator (in
   (key, tuple) order); the first separator is a lower bound only. *)

type t = {
  key_of : tuple -> Gom.Value.t;
  leaf_cap : int;
  inner_cap : int;
  pager : Pager.t;
  tuple_bytes : int;
  mutable root : node;
  mutable first_leaf : node;
  mutable cardinal : int;
}

(* Entries are ordered by clustering key first, then by the whole tuple,
   so duplicates of a key sit next to each other. *)
let cmp_entry t a b =
  let c = Gom.Value.compare (t.key_of a) (t.key_of b) in
  if c <> 0 then c else cmp_tuple a b

let new_leaf t =
  { page = Pager.alloc t.pager; body = Leaf { entries = []; next = None; prev = None } }

let create ~config ~pager ~tuple_bytes ~key_of =
  if tuple_bytes <= 0 then invalid_arg "Bptree.create: tuple_bytes must be positive";
  let leaf_cap = max 1 (config.Config.page_size / tuple_bytes) in
  let inner_cap = max 2 (Config.bplus_fan config) in
  let t =
    {
      key_of;
      leaf_cap;
      inner_cap;
      pager;
      tuple_bytes;
      root = { page = Pager.alloc pager; body = Leaf { entries = []; next = None; prev = None } };
      first_leaf = { page = 0; body = Leaf { entries = []; next = None; prev = None } };
      cardinal = 0;
    }
  in
  t.first_leaf <- t.root;
  t

let tuple_bytes t = t.tuple_bytes
let cardinal t = t.cardinal

let read stats page = match stats with Some s -> Stats.read s page | None -> ()
let write stats page = match stats with Some s -> Stats.write s page | None -> ()

(* Range and extent scans ride the leaf chain left-to-right, so the
   upcoming leaves are known: stage the next few so a buffer pool pays
   their physical I/O here, ahead of the demand reads.  The current
   leaf is pinned across the staging so the prefetch can never evict
   the very page the scan is standing on. *)
let prefetch_depth = 4

let prefetch_chain ?(will_follow = fun _ -> true) stats node =
  match stats with
  | None -> ()
  | Some s ->
    (* [will_follow n] says whether the caller's walk provably reads
       [n]'s successor: staging a leaf the walk then abandons is
       physical I/O paid for nothing, and would break the buffered <=
       unbuffered physical-read bound the oracle suite checks.  Full
       scans follow every link (the default); keyed runs stop where the
       run does. *)
    let rec ahead n node acc =
      if n = 0 then List.rev acc
      else
        match node.body with
        | Inner _ -> List.rev acc
        | Leaf l -> (
          match l.next with
          | Some nx when will_follow node ->
            (* Keep walking the chain but never stage an empty leaf:
               [iter] skips them without a read. *)
            let acc =
              match nx.body with
              | Leaf { entries = []; _ } -> acc
              | Leaf _ | Inner _ -> nx.page :: acc
            in
            ahead (n - 1) nx acc
          | Some _ | None -> List.rev acc)
    in
    let upcoming = ahead prefetch_depth node [] in
    if upcoming <> [] then begin
      Stats.pin_page s node.page;
      Fun.protect
        ~finally:(fun () -> Stats.unpin_page s node.page)
        (fun () -> Stats.prefetch s upcoming)
    end

(* ------------------------------------------------------------------ *)
(* Bulk loading                                                        *)
(* ------------------------------------------------------------------ *)

let rec chunk n = function
  | [] -> []
  | l ->
    let rec take k acc rest =
      match rest with
      | _ when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let c, rest = take n [] l in
    c :: chunk n rest

let bulk_load t tuples =
  let sorted = List.sort (cmp_entry t) tuples in
  (* Aggregate equal tuples into reference counts. *)
  let entries =
    List.fold_left
      (fun acc tup ->
        match acc with
        | e :: _ when cmp_tuple e.tup tup = 0 ->
          e.count <- e.count + 1;
          acc
        | _ -> { tup; count = 1 } :: acc)
      [] sorted
    |> List.rev
  in
  t.cardinal <- List.length entries;
  match entries with
  | [] ->
    let leaf = new_leaf t in
    t.root <- leaf;
    t.first_leaf <- leaf
  | _ ->
    let leaves =
      chunk t.leaf_cap entries
      |> List.map (fun es ->
             { page = Pager.alloc t.pager; body = Leaf { entries = es; next = None; prev = None } })
    in
    (* Chain the leaves. *)
    let rec link = function
      | a :: (b :: _ as rest) ->
        (match (a.body, b.body) with
        | Leaf la, Leaf lb ->
          la.next <- Some b;
          lb.prev <- Some a
        | _ -> assert false);
        link rest
      | [ _ ] | [] -> ()
    in
    link leaves;
    let min_of node =
      match node.body with
      | Leaf l -> (List.hd l.entries).tup
      | Inner i -> fst (List.hd i.children)
    in
    let rec build level =
      match level with
      | [ single ] -> single
      | _ ->
        chunk t.inner_cap level
        |> List.map (fun cs ->
               {
                 page = Pager.alloc t.pager;
                 body = Inner { children = List.map (fun c -> (min_of c, c)) cs };
               })
        |> build
    in
    t.first_leaf <- List.hd leaves;
    t.root <- build leaves

(* ------------------------------------------------------------------ *)
(* Descent                                                             *)
(* ------------------------------------------------------------------ *)

(* Pick the last child whose separator satisfies [before] (i.e. is
   strictly on the left of the target); default to the first child. *)
let route ~before children =
  match children with
  | [] -> invalid_arg "Bptree.route: inner node without children"
  | (_, first) :: rest ->
    List.fold_left (fun acc (sep, child) -> if before sep then child else acc) first rest

(* ------------------------------------------------------------------ *)
(* Insert                                                              *)
(* ------------------------------------------------------------------ *)

let rec insert_entries t tup = function
  | [] -> ([ { tup; count = 1 } ], true)
  | e :: rest as all ->
    let c = cmp_entry t tup e.tup in
    if c = 0 then begin
      e.count <- e.count + 1;
      (all, false)
    end
    else if c < 0 then ({ tup; count = 1 } :: all, true)
    else
      let rest', fresh = insert_entries t tup rest in
      (e :: rest', fresh)

let split_list l =
  let len = List.length l in
  let k = (len + 1) / 2 in
  let rec go i acc = function
    | rest when i = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (i - 1) (x :: acc) rest
  in
  go k [] l

let insert ?stats t tup =
  (* Returns [Some (separator, new_right_sibling)] when the visited node
     split. *)
  let rec go node =
    read stats node.page;
    match node.body with
    | Leaf l ->
      let entries, fresh = insert_entries t tup l.entries in
      l.entries <- entries;
      if fresh then t.cardinal <- t.cardinal + 1;
      write stats node.page;
      if List.length l.entries <= t.leaf_cap then None
      else begin
        let left, right = split_list l.entries in
        let rnode =
          { page = Pager.alloc t.pager; body = Leaf { entries = right; next = l.next; prev = Some node } }
        in
        (match l.next with
        | Some nx -> ( match nx.body with Leaf ln -> ln.prev <- Some rnode | Inner _ -> ())
        | None -> ());
        l.entries <- left;
        l.next <- Some rnode;
        write stats rnode.page;
        Some ((List.hd right).tup, rnode)
      end
    | Inner i ->
      let child = route ~before:(fun sep -> cmp_entry t sep tup <= 0) i.children in
      (match go child with
      | None -> None
      | Some (sep, rnode) ->
        (* Insert the new sibling right after [child]. *)
        let rec add = function
          | [] -> assert false
          | (s, c) :: rest when c == child -> (s, c) :: (sep, rnode) :: rest
          | x :: rest -> x :: add rest
        in
        i.children <- add i.children;
        write stats node.page;
        if List.length i.children <= t.inner_cap then None
        else begin
          let left, right = split_list i.children in
          let rnode' = { page = Pager.alloc t.pager; body = Inner { children = right } } in
          i.children <- left;
          write stats rnode'.page;
          Some (fst (List.hd right), rnode')
        end)
  in
  match go t.root with
  | None -> ()
  | Some (sep, rnode) ->
    let old_min =
      match t.root.body with
      | Leaf l -> ( match l.entries with e :: _ -> e.tup | [] -> sep)
      | Inner i -> fst (List.hd i.children)
    in
    let new_root =
      { page = Pager.alloc t.pager; body = Inner { children = [ (old_min, t.root); (sep, rnode) ] } }
    in
    write stats new_root.page;
    t.root <- new_root

(* ------------------------------------------------------------------ *)
(* Remove                                                              *)
(* ------------------------------------------------------------------ *)

let unlink_leaf t node l =
  (match l.prev with
  | Some p -> ( match p.body with Leaf lp -> lp.next <- l.next | Inner _ -> ())
  | None -> ( match l.next with Some nx -> t.first_leaf <- nx | None -> ()));
  match l.next with
  | Some nx -> ( match nx.body with Leaf ln -> ln.prev <- l.prev | Inner _ -> ())
  | None ->
    ();
    ignore node

let remove ?stats t tup =
  (* Returns true when the visited child became empty and was disposed. *)
  let rec go ~is_root node =
    read stats node.page;
    match node.body with
    | Leaf l ->
      let found = ref false in
      let entries =
        List.filter_map
          (fun e ->
            if (not !found) && cmp_entry t tup e.tup = 0 then begin
              found := true;
              e.count <- e.count - 1;
              if e.count <= 0 then begin
                t.cardinal <- t.cardinal - 1;
                None
              end
              else Some e
            end
            else Some e)
          l.entries
      in
      if !found then begin
        l.entries <- entries;
        write stats node.page
      end;
      if entries = [] && not is_root then begin
        unlink_leaf t node l;
        true
      end
      else false
    | Inner i ->
      let child = route ~before:(fun sep -> cmp_entry t sep tup <= 0) i.children in
      let gone = go ~is_root:false child in
      if gone then begin
        i.children <- List.filter (fun (_, c) -> not (c == child)) i.children;
        write stats node.page
      end;
      if i.children = [] && not is_root then true
      else begin
        (* Collapse a root with a single child. *)
        if is_root then begin
          let rec collapse () =
            match t.root.body with
            | Inner { children = [ (_, only) ] } ->
              t.root <- only;
              collapse ()
            | Inner { children = [] } ->
              let leaf = new_leaf t in
              t.root <- leaf;
              t.first_leaf <- leaf
            | Inner _ | Leaf _ -> ()
          in
          collapse ()
        end;
        false
      end
  in
  ignore (go ~is_root:true t.root)

(* ------------------------------------------------------------------ *)
(* Lookup / scans                                                      *)
(* ------------------------------------------------------------------ *)

let rec descend_for_key ?stats t key node =
  read stats node.page;
  match node.body with
  | Leaf _ -> node
  | Inner i ->
    let child =
      route ~before:(fun sep -> Gom.Value.compare (t.key_of sep) key < 0) i.children
    in
    descend_for_key ?stats t key child

let lookup ?stats t key =
  let leaf = descend_for_key ?stats t key t.root in
  let acc = ref [] in
  let rec walk node ~charged =
    match node.body with
    | Inner _ -> ()
    | Leaf l ->
      if not charged then read stats node.page;
      List.iter
        (fun e ->
          if Gom.Value.compare (t.key_of e.tup) key = 0 then acc := e.tup :: !acc)
        l.entries;
      (* The run may extend into the next leaf as long as this leaf
         holds no entry beyond the key (duplicate runs can start exactly
         at a leaf boundary, so an empty prefix is not a stop). *)
      let continue_right =
        match List.rev l.entries with
        | [] -> true
        | last :: _ -> Gom.Value.compare (t.key_of last.tup) key <= 0
      in
      if continue_right then
        match l.next with Some nx -> walk nx ~charged:false | None -> ()
  in
  (* The descent already read the first leaf page. *)
  walk leaf ~charged:true;
  List.rev !acc

(* Serve many point lookups at once, in ascending key order, sharing
   tree descents between adjacent keys: when the next key falls strictly
   inside the key range of the leaf the previous lookup ended on, the
   walk continues from that leaf instead of re-descending from the root.
   Combined with per-operation distinct-page accounting this is the
   batched executor's page-locality win: probes whose runs share leaves
   charge those leaves once. *)
let lookup_many ?stats t keys =
  let keys = List.sort_uniq Gom.Value.compare keys in
  let cursor = ref None in
  List.map
    (fun key ->
      let resume =
        match !cursor with
        | Some node -> (
          match node.body with
          | Leaf { entries = first :: _ as es; _ } -> (
            match List.rev es with
            | last :: _
              when Gom.Value.compare (t.key_of first.tup) key < 0
                   && Gom.Value.compare (t.key_of last.tup) key >= 0 ->
              (* The run for [key], if any, starts in this leaf. *)
              Some node
            | _ -> None)
          | Leaf _ | Inner _ -> None)
        | None -> None
      in
      let leaf =
        match resume with
        | Some node -> node
        | None -> descend_for_key ?stats t key t.root
      in
      let acc = ref [] in
      let rec walk node =
        match node.body with
        | Inner _ -> ()
        | Leaf l ->
          read stats node.page;
          prefetch_chain stats node
            ~will_follow:(fun n ->
              match n.body with
              | Inner _ -> false
              | Leaf l -> (
                match List.rev l.entries with
                | [] -> true
                | last :: _ -> Gom.Value.compare (t.key_of last.tup) key <= 0));
          cursor := Some node;
          List.iter
            (fun e ->
              if Gom.Value.compare (t.key_of e.tup) key = 0 then acc := e.tup :: !acc)
            l.entries;
          let continue_right =
            match List.rev l.entries with
            | [] -> true
            | last :: _ -> Gom.Value.compare (t.key_of last.tup) key <= 0
          in
          if continue_right then
            match l.next with Some nx -> walk nx | None -> ()
      in
      walk leaf;
      (key, List.rev !acc))
    keys

let find_entry t tup =
  let key = t.key_of tup in
  let rec walk node =
    match node.body with
    | Inner _ -> None
    | Leaf l -> (
      match List.find_opt (fun e -> cmp_tuple e.tup tup = 0) l.entries with
      | Some e -> Some e
      | None ->
        let past =
          List.exists (fun e -> cmp_entry t e.tup tup > 0) l.entries
        in
        if past then None
        else ( match l.next with Some nx -> walk nx | None -> None))
  in
  walk (descend_for_key t key t.root)

let mem t tup = find_entry t tup <> None

let refcount t tup = match find_entry t tup with Some e -> e.count | None -> 0

let iter ?stats t f =
  let rec walk node =
    match node.body with
    | Inner _ -> ()
    | Leaf l ->
      if l.entries <> [] then begin
        read stats node.page;
        prefetch_chain stats node;
        List.iter (fun e -> f e.tup) l.entries
      end;
      ( match l.next with Some nx -> walk nx | None -> ())
  in
  walk t.first_leaf

let scan ?stats t =
  let acc = ref [] in
  iter ?stats t (fun tup -> acc := tup :: !acc);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Bulk apply                                                          *)
(* ------------------------------------------------------------------ *)

(* The write-side sibling of [lookup_many]: apply many signed refcount
   deltas in one pass.  Deltas are sorted by (clustering key, tuple) and
   coalesced, then a single descent finds the first target leaf and the
   pass rides the leaf chain rightwards — consecutive deltas landing on
   the same leaf charge its page once per operation, exactly like sorted
   probes sharing leaves in [lookup_many].  Structural damage (emptied
   or over-full leaves) is repaired once at the end: over-full leaves
   split in bulk into fresh pages, emptied leaves are dropped from the
   chain, and the inner levels are rebuilt bulk-load style. *)
let apply_many ?stats t deltas =
  let deltas = List.filter (fun (_, d) -> d <> 0) deltas in
  let deltas = List.sort (fun (a, _) (b, _) -> cmp_entry t a b) deltas in
  (* Coalesce deltas on the same tuple; zero nets vanish here. *)
  let deltas =
    List.fold_left
      (fun acc (tup, d) ->
        match acc with
        | (pt, pd) :: rest when cmp_entry t pt tup = 0 -> (tup, pd + d) :: rest
        | _ -> (tup, d) :: acc)
      [] deltas
    |> List.rev
    |> List.filter (fun (_, d) -> d <> 0)
  in
  match deltas with
  | [] -> ()
  | (first, _) :: _ ->
    let structural = ref false in
    (* One root descent for the batch; afterwards the cursor only moves
       right along the chain.  Whether the next delta still belongs to
       the current leaf is decided against the next leaf's minimum — the
       parent separator's knowledge, so peeking costs no page access;
       only leaves actually applied to are charged. *)
    let cursor = ref (descend_for_key ?stats t (t.key_of first) t.root) in
    let rec seek node tup =
      match node.body with
      | Inner _ -> node
      | Leaf l -> (
        match l.next with
        | None -> node
        | Some nx -> (
          match nx.body with
          | Leaf { entries = e :: _; _ } when cmp_entry t e.tup tup <= 0 -> seek nx tup
          | Leaf _ | Inner _ -> node))
    in
    let apply_one (tup, d) =
      cursor := seek !cursor tup;
      let node = !cursor in
      match node.body with
      | Inner _ -> assert false
      | Leaf l ->
        read stats node.page;
        let changed = ref false in
        let rec go = function
          | [] ->
            if d > 0 then begin
              t.cardinal <- t.cardinal + 1;
              changed := true;
              [ { tup; count = d } ]
            end
            else []
          | e :: rest ->
            let c = cmp_entry t tup e.tup in
            if c = 0 then begin
              e.count <- e.count + d;
              changed := true;
              if e.count <= 0 then begin
                t.cardinal <- t.cardinal - 1;
                rest
              end
              else e :: rest
            end
            else if c < 0 then
              if d > 0 then begin
                t.cardinal <- t.cardinal + 1;
                changed := true;
                { tup; count = d } :: e :: rest
              end
              else e :: rest
            else e :: go rest
        in
        l.entries <- go l.entries;
        if !changed then begin
          write stats node.page;
          if l.entries = [] || List.length l.entries > t.leaf_cap then structural := true
        end
    in
    List.iter apply_one deltas;
    if !structural then begin
      (* Walk the (old) chain once: drop emptied leaves, split over-full
         ones in bulk — the first chunk keeps its page, the remainder go
         to fresh pages. *)
      let rec collect node acc =
        match node.body with
        | Inner _ -> List.rev acc
        | Leaf l ->
          let nxt = l.next in
          let acc =
            if l.entries = [] then acc
            else if List.length l.entries <= t.leaf_cap then node :: acc
            else begin
              match chunk t.leaf_cap l.entries with
              | [] -> acc
              | first_chunk :: rest ->
                l.entries <- first_chunk;
                write stats node.page;
                List.fold_left
                  (fun acc es ->
                    let n =
                      {
                        page = Pager.alloc t.pager;
                        body = Leaf { entries = es; next = None; prev = None };
                      }
                    in
                    write stats n.page;
                    n :: acc)
                  (node :: acc) rest
            end
          in
          (match nxt with Some nx -> collect nx acc | None -> List.rev acc)
      in
      let leaves = collect t.first_leaf [] in
      match leaves with
      | [] ->
        let leaf = new_leaf t in
        write stats leaf.page;
        t.root <- leaf;
        t.first_leaf <- leaf
      | head :: _ ->
        (match head.body with
        | Leaf l -> l.prev <- None
        | Inner _ -> assert false);
        t.first_leaf <- head;
        let rec link = function
          | a :: (b :: _ as rest) ->
            (match (a.body, b.body) with
            | Leaf la, Leaf lb ->
              la.next <- Some b;
              lb.prev <- Some a
            | _ -> assert false);
            link rest
          | [ last ] -> ( match last.body with Leaf l -> l.next <- None | Inner _ -> ())
          | [] -> ()
        in
        link leaves;
        let min_of node =
          match node.body with
          | Leaf l -> (List.hd l.entries).tup
          | Inner i -> fst (List.hd i.children)
        in
        let rec build level =
          match level with
          | [ single ] -> single
          | _ ->
            chunk t.inner_cap level
            |> List.map (fun cs ->
                   let n =
                     {
                       page = Pager.alloc t.pager;
                       body = Inner { children = List.map (fun c -> (min_of c, c)) cs };
                     }
                   in
                   write stats n.page;
                   n)
            |> build
        in
        t.root <- build leaves
    end

(* ------------------------------------------------------------------ *)
(* Geometry                                                            *)
(* ------------------------------------------------------------------ *)

let height t =
  let rec go acc node =
    match node.body with Leaf _ -> acc | Inner i -> go (acc + 1) (snd (List.hd i.children))
  in
  max 1 (go 0 t.root)

let leaf_pages t =
  let n = ref 0 in
  let rec walk node =
    match node.body with
    | Inner _ -> ()
    | Leaf l ->
      if l.entries <> [] then incr n;
      ( match l.next with Some nx -> walk nx | None -> ())
  in
  walk t.first_leaf;
  max 1 !n

let inner_pages t =
  let rec go node =
    match node.body with
    | Leaf _ -> 0
    | Inner i -> 1 + List.fold_left (fun acc (_, c) -> acc + go c) 0 i.children
  in
  max 1 (go t.root)

(* ------------------------------------------------------------------ *)
(* Invariant checking (test support)                                   *)
(* ------------------------------------------------------------------ *)

let check_invariants t =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec collect_leaves node =
    match node.body with
    | Leaf _ -> [ node ]
    | Inner i -> List.concat_map (fun (_, c) -> collect_leaves c) i.children
  in
  (* [lo] / [hi] bound every entry of the subtree: lo <= e < hi.  The
     first child of each inner node inherits its parent's lower bound
     (its own separator is informative only). *)
  let rec check_node ~lo ~hi node =
    match node.body with
    | Leaf l ->
      if List.length l.entries > t.leaf_cap then
        fail "leaf %d over capacity (%d > %d)" node.page (List.length l.entries)
          t.leaf_cap
      else
        let in_bounds e =
          (match lo with Some b -> cmp_entry t e.tup b >= 0 | None -> true)
          && (match hi with Some b -> cmp_entry t e.tup b < 0 | None -> true)
        in
        if not (List.for_all in_bounds l.entries) then
          fail "leaf %d violates separator bounds" node.page
        else
          let rec sorted = function
            | a :: (b :: _ as rest) ->
              if cmp_entry t a.tup b.tup >= 0 then
                fail "leaf %d entries out of order" node.page
              else sorted rest
            | [ _ ] | [] -> Ok ()
          in
          sorted l.entries
    | Inner i ->
      if i.children = [] then fail "inner %d has no children" node.page
      else if List.length i.children > t.inner_cap then
        fail "inner %d over capacity" node.page
      else
        let rec go ~first ~lo children =
          match children with
          | [] -> Ok ()
          | (sep, child) :: rest ->
            let child_lo = if first then lo else Some sep in
            let child_hi =
              match rest with (next_sep, _) :: _ -> Some next_sep | [] -> hi
            in
            (match check_node ~lo:child_lo ~hi:child_hi child with
            | Error _ as e -> e
            | Ok () -> go ~first:false ~lo rest)
        in
        go ~first:true ~lo i.children
  in
  match check_node ~lo:None ~hi:None t.root with
  | Error _ as e -> e
  | Ok () ->
    (* Leaves reachable from the root must equal the chain. *)
    let tree_leaves = collect_leaves t.root in
    let rec chain node acc =
      match node.body with
      | Inner _ -> List.rev acc
      | Leaf l -> ( match l.next with Some nx -> chain nx (node :: acc) | None -> List.rev (node :: acc))
    in
    let chain_leaves = chain t.first_leaf [] in
    if List.length tree_leaves <> List.length chain_leaves then
      fail "leaf chain length %d differs from tree leaves %d" (List.length chain_leaves)
        (List.length tree_leaves)
    else if not (List.for_all2 (fun a b -> a == b) tree_leaves chain_leaves) then
      fail "leaf chain order differs from tree order"
    else
      let all = List.concat_map (fun n -> match n.body with Leaf l -> l.entries | Inner _ -> []) tree_leaves in
      let rec sorted = function
        | a :: (b :: _ as rest) ->
          if cmp_entry t a.tup b.tup >= 0 then fail "entries out of global order"
          else sorted rest
        | [ _ ] | [] -> Ok ()
      in
      (match sorted all with
      | Error _ as e -> e
      | Ok () ->
        if List.length all <> t.cardinal then
          fail "cardinal %d does not match entry count %d" t.cardinal (List.length all)
        else if List.exists (fun e -> e.count <= 0) all then fail "non-positive refcount"
        else Ok ())
