(** Secondary-storage page-access accounting.

    The paper's entire cost model is expressed in numbers of page
    accesses on secondary storage ("we will neglect the CPU cost and
    merely compare the number of page accesses", section 5.6).  A
    [Stats.t] counts, per operation, the number of {e distinct} pages
    read and written — the same accounting Yao's formula assumes (a page
    holding several needed objects is fetched once).

    Accounting is split into two ledgers:

    - {e logical} accesses ({!logical_reads} / {!logical_writes}): every
      distinct-per-operation page request, counted identically whether
      or not a buffer pool is attached.  Logical traffic is a pure
      function of the evaluation, so buffered and unbuffered runs of
      the same queries agree on it exactly (property-tested);
    - {e physical} accesses ({!op_reads} / {!total_reads} and the write
      twins): the requests the pool could not absorb — what actually
      hits secondary storage.  Without a pool, physical = logical (the
      paper's model: every operation starts cold).

    With [~buffer_capacity:n > 0] a {!Buffer.t} pool of [n] frames sits
    between the access layers and the pager: resident reads become
    {e hits} (no physical charge), absent ones {e misses} (one physical
    read, admission, possibly an eviction), and {!prefetch} stages pages
    speculatively.  Frames are namespaced by the active {e segment}
    (see {!in_segment}) because heap and tree pagers produce colliding
    page identifiers; segments also carry the per-segment hit ratios
    the planner's buffer-aware pricing consumes. *)

type t

val create : ?buffer_capacity:int -> ?buffer_policy:Buffer.policy -> unit -> t
(** [create ()] counts cold, per-operation distinct accesses (physical =
    logical).  With [~buffer_capacity:n > 0], a pool of [n] frames
    (default policy LRU; [?buffer_policy] selects {!Buffer.Clock})
    absorbs repeated reads across operations. *)

val begin_op : t -> unit
(** Start a new operation: resets the per-operation distinct-page sets
    and counters.  Cumulative totals, segment tallies and buffer
    contents are preserved. *)

val read : t -> int -> unit
(** Record a read of the given page: one logical read per operation per
    distinct page, and one physical read unless the pool holds the
    page.  Within-operation repeats are free (distinct-page
    accounting). *)

val write : t -> int -> unit
(** Record a write of the given page; counted once per operation
    (independently of reads of the same page).  Writes are
    write-through — always physical — and the written page enters the
    pool so later reads of it hit. *)

val prefetch : t -> int list -> unit
(** Stage pages into the pool speculatively (B+-tree leaf chains ahead
    of a range scan, extent pages ahead of a scan).  Pages not already
    resident are charged as physical reads {e now} (and counted in
    {!prefetched}); the first later demand read of such a page is a
    {e prefetch hit} — free of further I/O, but counted as miss-like
    for warmth, so an operation prefetching its own scan does not
    inflate its hit ratio.  At most pool-capacity pages are staged
    (beyond that, speculation would evict its own unread frames — pure
    wasted I/O).  No-op without a pool. *)

val pin_page : t -> int -> unit
(** Pin a page frame in the pool (no-op without a pool): pinned frames
    are never eviction victims.  Chain walks pin the leaf under the
    cursor while prefetching ahead.  Pins nest; see {!Buffer.pin}. *)

val unpin_page : t -> int -> unit

val in_segment : t -> string -> (unit -> 'a) -> 'a
(** [in_segment t seg f] runs [f] with [seg] as the active segment
    (dynamically scoped, nestable, exception-safe).  The segment
    namespaces pool frames — heap pages and each ASR's tree pages come
    from independent pagers whose identifiers collide — and accumulates
    the per-segment hit/miss tallies behind {!segment_hit_ratio}.
    {!Heap} tags its accesses ["heap"]; {!Core.Asr} tags each
    relation's tree traffic with {!Core.Asr.seg}. *)

val op_reads : t -> int
(** Distinct pages {e physically} read from storage since the last
    {!begin_op} (buffer hits excluded). *)

val op_writes : t -> int

val op_accesses : t -> int
(** [op_reads + op_writes]. *)

val total_reads : t -> int
(** Cumulative physical reads over all operations. *)

val total_writes : t -> int

val total_accesses : t -> int

val op_logical_reads : t -> int
(** Distinct pages requested since the last {!begin_op}, hits
    included. *)

val op_logical_writes : t -> int

val logical_reads : t -> int
(** Cumulative logical reads — identical across buffer capacities,
    including 0, for the same evaluation. *)

val logical_writes : t -> int

val buffer_hits : t -> int
(** Reads served from the buffer pool (0 without a buffer). *)

val buffer_misses : t -> int
val buffer_evictions : t -> int

val prefetched : t -> int
(** Pages staged speculatively by {!prefetch} (each one physical). *)

val prefetch_hits : t -> int
(** Demand reads served by a previously prefetched frame. *)

val buffer_capacity : t -> int
val has_buffer : t -> bool

val hit_ratio : t -> float option
(** Overall [hits / (hits + misses + prefetch_hits)]; [None] without a
    pool or before any buffered access. *)

val segment_hit_ratio : t -> string -> float option
(** Measured hit ratio of one segment's traffic ([None] without a pool
    or when the segment has no accesses yet).  This is the signal the
    planner's buffer-aware pricing scales page costs by. *)

val segment_accesses : t -> string -> int
(** Buffered accesses recorded for the segment (hits + misses +
    prefetch hits) — the sample size behind {!segment_hit_ratio}. *)

(** {2 Integrity counters}

    Cumulative robustness counters, recorded alongside page traffic so
    benchmark trajectories show how often the degraded paths fire:
    partition scrub audits performed, planner degradations forced by a
    quarantined access support relation, and transient-fault retries. *)

val note_scrub : t -> unit
(** Record one partition audit by the integrity scrubber. *)

val note_fallback : t -> unit
(** Record one degraded planning decision: a quarantined index was
    excluded and the planner fell back to navigation, an extent scan or
    an alternate index. *)

val note_retry : t -> unit
(** Record one bounded retry of a transiently failing read. *)

val scrubs : t -> int
val fallbacks : t -> int
val retries : t -> int

(** {2 Deferred-maintenance counters}

    Trajectory counters for the write-behind maintenance pipeline: how
    many typed deltas entered the buffers, how often buffering coalesced
    or outright annihilated work before it ever touched a page, how many
    net deltas were eventually applied by bulk flushes, and how often
    the planner's freshness watermark fired. *)

val note_delta_buffered : t -> unit
(** Record one typed delta (+tuple/−tuple for one partition) entering a
    write-behind buffer. *)

val note_delta_merged : t -> unit
(** Record one delta that coalesced with a pending delta on the same
    projected tuple (refcount deltas summed; net still non-zero). *)

val note_delta_annihilated : t -> unit
(** Record one annihilation: a pending delta's net refcount reached
    zero, so the pair vanished without touching a page. *)

val note_deltas_flushed : t -> int -> unit
(** Record [n] net deltas applied to partition trees by a flush. *)

val note_catchup_flush : t -> unit
(** Record one catch-up flush forced by the planner's freshness
    watermark (or an integrity audit) before using a stale index. *)

val note_freshness_degradation : t -> unit
(** Record one planning decision that refused a stale index and
    degraded to navigation / extent scan instead of flushing. *)

val deltas_buffered : t -> int
val deltas_merged : t -> int
val deltas_annihilated : t -> int
val deltas_flushed : t -> int
val catchup_flushes : t -> int
val freshness_degradations : t -> int

(** {2 Overload counters}

    Resilience-layer counters: every query turned away or cut short by
    admission control is visible here, so overload behaviour can be
    audited next to page traffic ({e offered = answered + shed +
    timed_out} is checked by the serving benchmark gate). *)

val note_shed : t -> unit
(** Record one query rejected by admission control (bounded-queue
    overflow under any shed policy, or a per-client rate limit). *)

val note_timed_out : t -> unit
(** Record one query whose deadline expired — either while queued or at
    a cooperative cancellation checkpoint mid-evaluation. *)

val note_breaker_open : t -> unit
(** Record one call short-circuited by an open circuit breaker. *)

val note_stale_epoch_served : t -> unit
(** Record one query answered from the previous published epoch while
    brownout mode defers snapshot publication (bounded staleness). *)

val shed : t -> int
val timed_out : t -> int
val breaker_open : t -> int
val stale_epoch_served : t -> int

(** {2 Replication counters}

    Frame accounting for the WAL-shipping channel.  Every encoded frame
    put on the wire counts as shipped (a duplicated delivery counts
    twice — two copies travelled); each delivered copy is then either
    applied by the replica, dropped in flight or at teardown, or
    rejected and retried (stale/duplicate sequence, CRC damage, gap).
    At quiescence {e shipped = applied + dropped + retried} balances
    exactly; the CI failover gate checks it. *)

val note_frame_shipped : t -> unit
(** Record one encoded frame handed to the channel (per copy). *)

val note_frame_applied : t -> unit
(** Record one delivered frame the replica verified and applied. *)

val note_frame_dropped : t -> unit
(** Record one frame copy lost in flight or discarded at teardown. *)

val note_frame_retried : t -> unit
(** Record one delivered frame the replica rejected, obliging the
    primary to rewind and resend. *)

val frames_shipped : t -> int
val frames_applied : t -> int
val frames_dropped : t -> int
val frames_retried : t -> int

(** {2 Shard-routing counters}

    One count per batch the scatter-gather router dispatches: {e
    grouped} batches partition their probes by owner shard (each probe
    answered exactly once), {e scattered} ones fan every probe to every
    shard and union the answers.  [grouped + scatter] equals the number
    of routed batches — the shard regression tests check the balance. *)

val note_shard_grouped : t -> unit
(** Record one batch routed with probes grouped by owner shard. *)

val note_shard_scatter : t -> unit
(** Record one batch scattered to every shard. *)

val shard_grouped : t -> int
val shard_scatter : t -> int

val reset : t -> unit
(** Clears everything, including totals, segment tallies and the buffer
    pool. *)

type summary = {
  s_op_reads : int;
  s_op_writes : int;
  s_total_reads : int;  (** Physical reads. *)
  s_total_writes : int;
  s_logical_reads : int;
  s_logical_writes : int;
  s_buffer_hits : int;
  s_buffer_misses : int;
  s_buffer_evictions : int;
  s_prefetched : int;
  s_prefetch_hits : int;
  s_buffer_capacity : int;
  s_scrubs : int;
  s_fallbacks : int;
  s_retries : int;
  s_deltas_buffered : int;
  s_deltas_merged : int;
  s_deltas_annihilated : int;
  s_deltas_flushed : int;
  s_catchup_flushes : int;
  s_freshness_degradations : int;
  s_shed : int;
  s_timed_out : int;
  s_breaker_open : int;
  s_stale_epoch_served : int;
  s_frames_shipped : int;
  s_frames_applied : int;
  s_frames_dropped : int;
  s_frames_retried : int;
  s_shard_grouped : int;
  s_shard_scatter : int;
}
(** A point-in-time copy of every counter, decoupled from the live
    [t] (which keeps mutating). *)

val snapshot : t -> summary

val merge : summary -> summary -> summary
(** Field-wise sum of two summaries ([s_buffer_capacity] takes the
    maximum).  Associative and commutative with {!zero} as unit, so
    per-domain accounting sheaves merge into one snapshot in any order
    — the parallel server's workers each count pages privately and the
    merged summary equals what one sequential accountant would have
    counted.  Distinct-page suppression stays {e per sheaf}: two
    domains touching the same page within their own operations each
    count it once.  Likewise each sheaf's buffer pool is private, so
    hits/misses/evictions sum without double counting. *)

val zero : summary
(** The all-zero summary, {!merge}'s unit. *)

val absorb : t -> summary -> unit
(** Fold a (worker sheaf) summary into this accountant's {e cumulative}
    counters: totals (physical and logical), buffer hit/miss/eviction/
    prefetch tallies and integrity counters are added; the
    per-operation counters and the buffer pool are untouched. *)

val summary_hit_ratio : summary -> float
(** [hits / (hits + misses + prefetch_hits)], 0 when unbuffered. *)

val summary_to_json : ?extra:(string * string) list -> summary -> string
(** One-line JSON object over the summary's counters.  [extra] fields
    are appended verbatim — each value must already be a JSON fragment
    (e.g. [("mode", {|"batched"|})]).  Used by the benchmark harness
    and the CLI so every [BENCH_*.json] has the same shape. *)
