(* Page-access accounting with an optional buffer pool.

   Accounting is split in two ledgers:

   - {e logical} reads/writes: every distinct-per-operation page request,
     counted identically whether or not a pool is attached (capacity 0
     and capacity N agree by construction — the buffered/unbuffered
     oracle in the test suite leans on this);
   - {e physical} reads/writes ([op_reads] / [total_reads] and the write
     twins): the requests the pool could not absorb — what actually hits
     secondary storage.  Without a pool, physical = logical (the paper's
     cold model).

   Frames are keyed by (segment, page): heap pages and every ASR's tree
   pages come from independent pagers whose identifiers collide, so the
   active segment (dynamically scoped via [in_segment]) namespaces the
   pool and carries per-segment hit/miss tallies for buffer-aware plan
   pricing. *)

type seg_counts = { mutable sh : int; mutable sm : int }

type t = {
  mutable op_reads : int;
  mutable op_writes : int;
  mutable total_reads : int;
  mutable total_writes : int;
  mutable op_logical_reads : int;
  mutable op_logical_writes : int;
  mutable logical_reads : int;
  mutable logical_writes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable prefetched : int;
  mutable prefetch_hits : int;
  mutable scrubs : int;
  mutable fallbacks : int;
  mutable retries : int;
  mutable deltas_buffered : int;
  mutable deltas_merged : int;
  mutable deltas_annihilated : int;
  mutable deltas_flushed : int;
  mutable catchup_flushes : int;
  mutable freshness_degradations : int;
  mutable shed : int;
  mutable timed_out : int;
  mutable breaker_open : int;
  mutable stale_epoch_served : int;
  mutable frames_shipped : int;
  mutable frames_applied : int;
  mutable frames_dropped : int;
  mutable frames_retried : int;
  mutable shard_grouped : int;
  mutable shard_scatter : int;
  touched_r : (int, unit) Hashtbl.t;
  touched_w : (int, unit) Hashtbl.t;
  pool : Buffer.t option;
  mutable seg : string;  (* active segment; "" outside any [in_segment] *)
  segs : (string, seg_counts) Hashtbl.t;
}

let create ?(buffer_capacity = 0) ?buffer_policy () =
  {
    op_reads = 0;
    op_writes = 0;
    total_reads = 0;
    total_writes = 0;
    op_logical_reads = 0;
    op_logical_writes = 0;
    logical_reads = 0;
    logical_writes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    prefetched = 0;
    prefetch_hits = 0;
    scrubs = 0;
    fallbacks = 0;
    retries = 0;
    deltas_buffered = 0;
    deltas_merged = 0;
    deltas_annihilated = 0;
    deltas_flushed = 0;
    catchup_flushes = 0;
    freshness_degradations = 0;
    shed = 0;
    timed_out = 0;
    breaker_open = 0;
    stale_epoch_served = 0;
    frames_shipped = 0;
    frames_applied = 0;
    frames_dropped = 0;
    frames_retried = 0;
    shard_grouped = 0;
    shard_scatter = 0;
    touched_r = Hashtbl.create 256;
    touched_w = Hashtbl.create 64;
    pool =
      (if buffer_capacity > 0 then
         Some (Buffer.create ?policy:buffer_policy ~capacity:buffer_capacity ())
       else None);
    seg = "";
    segs = Hashtbl.create 8;
  }

let begin_op t =
  t.op_reads <- 0;
  t.op_writes <- 0;
  t.op_logical_reads <- 0;
  t.op_logical_writes <- 0;
  Hashtbl.reset t.touched_r;
  Hashtbl.reset t.touched_w

let in_segment t seg f =
  let prev = t.seg in
  t.seg <- seg;
  Fun.protect ~finally:(fun () -> t.seg <- prev) f

let seg_counts t seg =
  match Hashtbl.find_opt t.segs seg with
  | Some c -> c
  | None ->
    let c = { sh = 0; sm = 0 } in
    Hashtbl.add t.segs seg c;
    c

let read t page =
  if not (Hashtbl.mem t.touched_r page) then begin
    Hashtbl.add t.touched_r page ();
    t.op_logical_reads <- t.op_logical_reads + 1;
    t.logical_reads <- t.logical_reads + 1;
    match t.pool with
    | None ->
      t.op_reads <- t.op_reads + 1;
      t.total_reads <- t.total_reads + 1
    | Some b -> (
      let c = seg_counts t t.seg in
      match Buffer.reference b (t.seg, page) with
      | Buffer.Hit ->
        t.hits <- t.hits + 1;
        c.sh <- c.sh + 1
      | Buffer.Prefetch_hit ->
        (* The I/O was already paid by the prefetch; warmth-wise this is
           a miss the prefetcher hid, not evidence of a hot page. *)
        t.prefetch_hits <- t.prefetch_hits + 1;
        c.sm <- c.sm + 1
      | Buffer.Miss { evicted } ->
        t.misses <- t.misses + 1;
        t.op_reads <- t.op_reads + 1;
        t.total_reads <- t.total_reads + 1;
        if evicted then t.evictions <- t.evictions + 1;
        c.sm <- c.sm + 1)
  end

let write t page =
  if not (Hashtbl.mem t.touched_w page) then begin
    Hashtbl.add t.touched_w page ();
    t.op_logical_writes <- t.op_logical_writes + 1;
    t.logical_writes <- t.logical_writes + 1;
    (* Write-through: every distinct write reaches storage, pool or not;
       the written page enters the pool so later reads of it hit. *)
    t.op_writes <- t.op_writes + 1;
    t.total_writes <- t.total_writes + 1;
    match t.pool with
    | None -> ()
    | Some b -> (
      match Buffer.reference b (t.seg, page) with
      | Buffer.Miss { evicted = true } -> t.evictions <- t.evictions + 1
      | Buffer.Miss { evicted = false } | Buffer.Hit | Buffer.Prefetch_hit -> ())
  end

let prefetch t pages =
  match t.pool with
  | None -> () (* prefetching into no pool is meaningless *)
  | Some b ->
    (* Two guards keep buffered physical I/O <= the unbuffered run's on
       every workload (property-tested) — speculation must never cost
       more than it saves:
       - skip pages this operation already touched: their upcoming
         demand reads are suppressed by distinct-page accounting (the
         touched set is raw-id keyed, preserving unbuffered op counts),
         so a staged frame could never be referenced;
       - bound the staging by the pool size: more pages than frames
         exist would evict prefetched-but-unread frames (a 1-frame pool
         would thrash). *)
    let pages = List.filter (fun p -> not (Hashtbl.mem t.touched_r p)) pages in
    let rec take n = function
      | p :: tl when n > 0 -> p :: take (n - 1) tl
      | _ -> []
    in
    let pages = take (Buffer.capacity b) pages in
    List.iter
      (fun page ->
        match Buffer.prefetch b (t.seg, page) with
        | `Resident -> ()
        | `Admitted evicted ->
          (* Speculative fetch: physical I/O paid now, charged to the
             operation that issued the prefetch. *)
          t.prefetched <- t.prefetched + 1;
          t.op_reads <- t.op_reads + 1;
          t.total_reads <- t.total_reads + 1;
          if evicted then t.evictions <- t.evictions + 1)
      pages

let pin_page t page =
  match t.pool with Some b -> Buffer.pin b (t.seg, page) | None -> ()

let unpin_page t page =
  match t.pool with Some b -> Buffer.unpin b (t.seg, page) | None -> ()

let op_reads t = t.op_reads
let op_writes t = t.op_writes
let op_accesses t = t.op_reads + t.op_writes
let total_reads t = t.total_reads
let total_writes t = t.total_writes
let total_accesses t = t.total_reads + t.total_writes
let op_logical_reads t = t.op_logical_reads
let op_logical_writes t = t.op_logical_writes
let logical_reads t = t.logical_reads
let logical_writes t = t.logical_writes
let buffer_hits t = t.hits
let buffer_misses t = t.misses
let buffer_evictions t = t.evictions
let prefetched t = t.prefetched
let prefetch_hits t = t.prefetch_hits
let buffer_capacity t = match t.pool with Some b -> Buffer.capacity b | None -> 0
let has_buffer t = t.pool <> None

let hit_ratio t =
  let denom = t.hits + t.misses + t.prefetch_hits in
  if t.pool = None || denom = 0 then None
  else Some (float_of_int t.hits /. float_of_int denom)

let segment_hit_ratio t seg =
  if t.pool = None then None
  else
    match Hashtbl.find_opt t.segs seg with
    | Some c when c.sh + c.sm > 0 ->
      Some (float_of_int c.sh /. float_of_int (c.sh + c.sm))
    | Some _ | None -> None

let segment_accesses t seg =
  match Hashtbl.find_opt t.segs seg with Some c -> c.sh + c.sm | None -> 0

let note_scrub t = t.scrubs <- t.scrubs + 1
let note_fallback t = t.fallbacks <- t.fallbacks + 1
let note_retry t = t.retries <- t.retries + 1
let scrubs t = t.scrubs
let fallbacks t = t.fallbacks
let retries t = t.retries

let note_delta_buffered t = t.deltas_buffered <- t.deltas_buffered + 1
let note_delta_merged t = t.deltas_merged <- t.deltas_merged + 1
let note_delta_annihilated t = t.deltas_annihilated <- t.deltas_annihilated + 1
let note_deltas_flushed t n = t.deltas_flushed <- t.deltas_flushed + n
let note_catchup_flush t = t.catchup_flushes <- t.catchup_flushes + 1
let note_freshness_degradation t =
  t.freshness_degradations <- t.freshness_degradations + 1

let note_shed t = t.shed <- t.shed + 1
let note_timed_out t = t.timed_out <- t.timed_out + 1
let note_breaker_open t = t.breaker_open <- t.breaker_open + 1
let note_stale_epoch_served t = t.stale_epoch_served <- t.stale_epoch_served + 1
let note_frame_shipped t = t.frames_shipped <- t.frames_shipped + 1
let note_frame_applied t = t.frames_applied <- t.frames_applied + 1
let note_frame_dropped t = t.frames_dropped <- t.frames_dropped + 1
let note_frame_retried t = t.frames_retried <- t.frames_retried + 1
let frames_shipped t = t.frames_shipped
let frames_applied t = t.frames_applied
let frames_dropped t = t.frames_dropped
let frames_retried t = t.frames_retried

let note_shard_grouped t = t.shard_grouped <- t.shard_grouped + 1
let note_shard_scatter t = t.shard_scatter <- t.shard_scatter + 1
let shard_grouped t = t.shard_grouped
let shard_scatter t = t.shard_scatter

let shed t = t.shed
let timed_out t = t.timed_out
let breaker_open t = t.breaker_open
let stale_epoch_served t = t.stale_epoch_served

let deltas_buffered t = t.deltas_buffered
let deltas_merged t = t.deltas_merged
let deltas_annihilated t = t.deltas_annihilated
let deltas_flushed t = t.deltas_flushed
let catchup_flushes t = t.catchup_flushes
let freshness_degradations t = t.freshness_degradations

type summary = {
  s_op_reads : int;
  s_op_writes : int;
  s_total_reads : int;
  s_total_writes : int;
  s_logical_reads : int;
  s_logical_writes : int;
  s_buffer_hits : int;
  s_buffer_misses : int;
  s_buffer_evictions : int;
  s_prefetched : int;
  s_prefetch_hits : int;
  s_buffer_capacity : int;
  s_scrubs : int;
  s_fallbacks : int;
  s_retries : int;
  s_deltas_buffered : int;
  s_deltas_merged : int;
  s_deltas_annihilated : int;
  s_deltas_flushed : int;
  s_catchup_flushes : int;
  s_freshness_degradations : int;
  s_shed : int;
  s_timed_out : int;
  s_breaker_open : int;
  s_stale_epoch_served : int;
  s_frames_shipped : int;
  s_frames_applied : int;
  s_frames_dropped : int;
  s_frames_retried : int;
  s_shard_grouped : int;
  s_shard_scatter : int;
}

let snapshot t =
  {
    s_op_reads = t.op_reads;
    s_op_writes = t.op_writes;
    s_total_reads = t.total_reads;
    s_total_writes = t.total_writes;
    s_logical_reads = t.logical_reads;
    s_logical_writes = t.logical_writes;
    s_buffer_hits = t.hits;
    s_buffer_misses = t.misses;
    s_buffer_evictions = t.evictions;
    s_prefetched = t.prefetched;
    s_prefetch_hits = t.prefetch_hits;
    s_buffer_capacity = buffer_capacity t;
    s_scrubs = t.scrubs;
    s_fallbacks = t.fallbacks;
    s_retries = t.retries;
    s_deltas_buffered = t.deltas_buffered;
    s_deltas_merged = t.deltas_merged;
    s_deltas_annihilated = t.deltas_annihilated;
    s_deltas_flushed = t.deltas_flushed;
    s_catchup_flushes = t.catchup_flushes;
    s_freshness_degradations = t.freshness_degradations;
    s_shed = t.shed;
    s_timed_out = t.timed_out;
    s_breaker_open = t.breaker_open;
    s_stale_epoch_served = t.stale_epoch_served;
    s_frames_shipped = t.frames_shipped;
    s_frames_applied = t.frames_applied;
    s_frames_dropped = t.frames_dropped;
    s_frames_retried = t.frames_retried;
    s_shard_grouped = t.shard_grouped;
    s_shard_scatter = t.shard_scatter;
  }

let zero =
  {
    s_op_reads = 0;
    s_op_writes = 0;
    s_total_reads = 0;
    s_total_writes = 0;
    s_logical_reads = 0;
    s_logical_writes = 0;
    s_buffer_hits = 0;
    s_buffer_misses = 0;
    s_buffer_evictions = 0;
    s_prefetched = 0;
    s_prefetch_hits = 0;
    s_buffer_capacity = 0;
    s_scrubs = 0;
    s_fallbacks = 0;
    s_retries = 0;
    s_deltas_buffered = 0;
    s_deltas_merged = 0;
    s_deltas_annihilated = 0;
    s_deltas_flushed = 0;
    s_catchup_flushes = 0;
    s_freshness_degradations = 0;
    s_shed = 0;
    s_timed_out = 0;
    s_breaker_open = 0;
    s_stale_epoch_served = 0;
    s_frames_shipped = 0;
    s_frames_applied = 0;
    s_frames_dropped = 0;
    s_frames_retried = 0;
    s_shard_grouped = 0;
    s_shard_scatter = 0;
  }

let merge a b =
  {
    s_op_reads = a.s_op_reads + b.s_op_reads;
    s_op_writes = a.s_op_writes + b.s_op_writes;
    s_total_reads = a.s_total_reads + b.s_total_reads;
    s_total_writes = a.s_total_writes + b.s_total_writes;
    s_logical_reads = a.s_logical_reads + b.s_logical_reads;
    s_logical_writes = a.s_logical_writes + b.s_logical_writes;
    s_buffer_hits = a.s_buffer_hits + b.s_buffer_hits;
    s_buffer_misses = a.s_buffer_misses + b.s_buffer_misses;
    s_buffer_evictions = a.s_buffer_evictions + b.s_buffer_evictions;
    s_prefetched = a.s_prefetched + b.s_prefetched;
    s_prefetch_hits = a.s_prefetch_hits + b.s_prefetch_hits;
    s_buffer_capacity = max a.s_buffer_capacity b.s_buffer_capacity;
    s_scrubs = a.s_scrubs + b.s_scrubs;
    s_fallbacks = a.s_fallbacks + b.s_fallbacks;
    s_retries = a.s_retries + b.s_retries;
    s_deltas_buffered = a.s_deltas_buffered + b.s_deltas_buffered;
    s_deltas_merged = a.s_deltas_merged + b.s_deltas_merged;
    s_deltas_annihilated = a.s_deltas_annihilated + b.s_deltas_annihilated;
    s_deltas_flushed = a.s_deltas_flushed + b.s_deltas_flushed;
    s_catchup_flushes = a.s_catchup_flushes + b.s_catchup_flushes;
    s_freshness_degradations = a.s_freshness_degradations + b.s_freshness_degradations;
    s_shed = a.s_shed + b.s_shed;
    s_timed_out = a.s_timed_out + b.s_timed_out;
    s_breaker_open = a.s_breaker_open + b.s_breaker_open;
    s_stale_epoch_served = a.s_stale_epoch_served + b.s_stale_epoch_served;
    s_frames_shipped = a.s_frames_shipped + b.s_frames_shipped;
    s_frames_applied = a.s_frames_applied + b.s_frames_applied;
    s_frames_dropped = a.s_frames_dropped + b.s_frames_dropped;
    s_frames_retried = a.s_frames_retried + b.s_frames_retried;
    s_shard_grouped = a.s_shard_grouped + b.s_shard_grouped;
    s_shard_scatter = a.s_shard_scatter + b.s_shard_scatter;
  }

let absorb t s =
  t.total_reads <- t.total_reads + s.s_total_reads;
  t.total_writes <- t.total_writes + s.s_total_writes;
  t.logical_reads <- t.logical_reads + s.s_logical_reads;
  t.logical_writes <- t.logical_writes + s.s_logical_writes;
  t.hits <- t.hits + s.s_buffer_hits;
  t.misses <- t.misses + s.s_buffer_misses;
  t.evictions <- t.evictions + s.s_buffer_evictions;
  t.prefetched <- t.prefetched + s.s_prefetched;
  t.prefetch_hits <- t.prefetch_hits + s.s_prefetch_hits;
  t.scrubs <- t.scrubs + s.s_scrubs;
  t.fallbacks <- t.fallbacks + s.s_fallbacks;
  t.retries <- t.retries + s.s_retries;
  t.deltas_buffered <- t.deltas_buffered + s.s_deltas_buffered;
  t.deltas_merged <- t.deltas_merged + s.s_deltas_merged;
  t.deltas_annihilated <- t.deltas_annihilated + s.s_deltas_annihilated;
  t.deltas_flushed <- t.deltas_flushed + s.s_deltas_flushed;
  t.catchup_flushes <- t.catchup_flushes + s.s_catchup_flushes;
  t.freshness_degradations <- t.freshness_degradations + s.s_freshness_degradations;
  t.shed <- t.shed + s.s_shed;
  t.timed_out <- t.timed_out + s.s_timed_out;
  t.breaker_open <- t.breaker_open + s.s_breaker_open;
  t.stale_epoch_served <- t.stale_epoch_served + s.s_stale_epoch_served;
  t.frames_shipped <- t.frames_shipped + s.s_frames_shipped;
  t.frames_applied <- t.frames_applied + s.s_frames_applied;
  t.frames_dropped <- t.frames_dropped + s.s_frames_dropped;
  t.frames_retried <- t.frames_retried + s.s_frames_retried;
  t.shard_grouped <- t.shard_grouped + s.s_shard_grouped;
  t.shard_scatter <- t.shard_scatter + s.s_shard_scatter

let summary_hit_ratio s =
  let denom = s.s_buffer_hits + s.s_buffer_misses + s.s_prefetch_hits in
  if denom = 0 then 0. else float_of_int s.s_buffer_hits /. float_of_int denom

let summary_to_json ?(extra = []) s =
  let fields =
    [
      ("op_reads", string_of_int s.s_op_reads);
      ("op_writes", string_of_int s.s_op_writes);
      ("total_reads", string_of_int s.s_total_reads);
      ("total_writes", string_of_int s.s_total_writes);
      ("total_accesses", string_of_int (s.s_total_reads + s.s_total_writes));
      ("logical_reads", string_of_int s.s_logical_reads);
      ("logical_writes", string_of_int s.s_logical_writes);
      ("buffer_hits", string_of_int s.s_buffer_hits);
      ("buffer_misses", string_of_int s.s_buffer_misses);
      ("buffer_evictions", string_of_int s.s_buffer_evictions);
      ("prefetched", string_of_int s.s_prefetched);
      ("prefetch_hits", string_of_int s.s_prefetch_hits);
      ("buffer_hit_ratio", Printf.sprintf "%.4f" (summary_hit_ratio s));
      ("buffer_capacity", string_of_int s.s_buffer_capacity);
      ("scrubs", string_of_int s.s_scrubs);
      ("fallbacks", string_of_int s.s_fallbacks);
      ("retries", string_of_int s.s_retries);
      ("deltas_buffered", string_of_int s.s_deltas_buffered);
      ("deltas_merged", string_of_int s.s_deltas_merged);
      ("deltas_annihilated", string_of_int s.s_deltas_annihilated);
      ("deltas_flushed", string_of_int s.s_deltas_flushed);
      ("catchup_flushes", string_of_int s.s_catchup_flushes);
      ("freshness_degradations", string_of_int s.s_freshness_degradations);
      ("shed", string_of_int s.s_shed);
      ("timed_out", string_of_int s.s_timed_out);
      ("breaker_open", string_of_int s.s_breaker_open);
      ("stale_epoch_served", string_of_int s.s_stale_epoch_served);
      ("frames_shipped", string_of_int s.s_frames_shipped);
      ("frames_applied", string_of_int s.s_frames_applied);
      ("frames_dropped", string_of_int s.s_frames_dropped);
      ("frames_retried", string_of_int s.s_frames_retried);
      ("shard_grouped", string_of_int s.s_shard_grouped);
      ("shard_scatter", string_of_int s.s_shard_scatter);
    ]
    @ extra
  in
  let buf = Stdlib.Buffer.create 256 in
  Stdlib.Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Stdlib.Buffer.add_string buf ", ";
      Stdlib.Buffer.add_string buf (Printf.sprintf "%S: %s" k v))
    fields;
  Stdlib.Buffer.add_string buf "}";
  Stdlib.Buffer.contents buf

let reset t =
  begin_op t;
  t.total_reads <- 0;
  t.total_writes <- 0;
  t.logical_reads <- 0;
  t.logical_writes <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.prefetched <- 0;
  t.prefetch_hits <- 0;
  t.scrubs <- 0;
  t.fallbacks <- 0;
  t.retries <- 0;
  t.deltas_buffered <- 0;
  t.deltas_merged <- 0;
  t.deltas_annihilated <- 0;
  t.deltas_flushed <- 0;
  t.catchup_flushes <- 0;
  t.freshness_degradations <- 0;
  t.shed <- 0;
  t.timed_out <- 0;
  t.breaker_open <- 0;
  t.stale_epoch_served <- 0;
  t.frames_shipped <- 0;
  t.frames_applied <- 0;
  t.frames_dropped <- 0;
  t.frames_retried <- 0;
  t.shard_grouped <- 0;
  t.shard_scatter <- 0;
  Hashtbl.reset t.segs;
  match t.pool with Some b -> Buffer.reset b | None -> ()
