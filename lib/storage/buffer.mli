(** Pinned-page buffer pool.

    A bounded cache of page frames sitting between the access layers
    ({!Heap}, {!Bptree}) and the simulated pager, giving the accounting
    in {!Stats} a logical/physical split: every page request is a
    logical access, but only the ones the pool cannot serve become
    physical accesses.  Pages carry no bytes in this simulator, so a
    frame is pure bookkeeping — identity, recency and pin state are all
    the cost model needs.

    Frames are keyed by [(segment, page)] pairs: heap pages and each
    access support relation's tree pages come from {e independent}
    pagers whose identifiers collide, so the owning segment (see
    {!Stats.in_segment}) namespaces them and a hot heap page can never
    masquerade as a hot tree page.

    The pool is a mechanism only — it keeps no hit/miss counters.
    {!Stats} owns the accounting and interprets the outcomes. *)

type policy = Lru | Clock
(** Eviction policy: exact least-recently-used (scan for the minimum
    stamp; capacities are small) or the classic clock / second-chance
    approximation. *)

type key = string * int
(** [(segment, page)]. *)

type t

val create : ?policy:policy -> capacity:int -> unit -> t
(** A pool of at most [capacity] frames (plus transient overflow when
    every frame is pinned).  Default policy is [Lru].
    @raise Invalid_argument when [capacity <= 0]. *)

val capacity : t -> int
val policy : t -> policy

val resident : t -> int
(** Number of frames currently cached. *)

val mem : t -> key -> bool

type outcome =
  | Hit  (** Resident and previously referenced: no I/O. *)
  | Prefetch_hit
      (** Resident, but only because a prefetch staged it and no demand
          reference has touched it yet: the I/O was paid by the
          prefetch.  Subsequent references are plain [Hit]s. *)
  | Miss of { evicted : bool }
      (** Not resident: the page is fetched (one physical access) and
          admitted, evicting a victim frame when the pool was full. *)

val reference : t -> key -> outcome
(** A demand reference (read or write-through): classifies the access,
    refreshes recency, admits on miss. *)

val prefetch : t -> key -> [ `Resident | `Admitted of bool ]
(** Stage a page without a demand reference: [`Resident] when already
    cached (no-op), [`Admitted evicted] when fetched speculatively —
    one physical access now, so the next demand reference is a
    {!Prefetch_hit}. *)

val pin : t -> key -> unit
(** Pin the frame (admitting it first if absent, without eviction
    accounting): pinned frames are never chosen as eviction victims.
    Pins nest; when every frame is pinned, admissions transiently
    overflow [capacity] rather than fail. *)

val unpin : t -> key -> unit
(** Drop one pin.  Unpinning a frame that is not resident or not pinned
    is a no-op. *)

val reset : t -> unit
(** Drop every frame and pin. *)
