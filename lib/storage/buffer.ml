type policy = Lru | Clock

type key = string * int

type frame = {
  mutable stamp : int;  (* LRU recency *)
  mutable refbit : bool;  (* Clock second chance *)
  mutable pins : int;
  mutable prefetched : bool;  (* staged by prefetch, no demand reference yet *)
}

type t = {
  capacity : int;
  pol : policy;
  frames : (key, frame) Hashtbl.t;
  ring : key Queue.t;  (* Clock hand order; may hold stale keys *)
  mutable clock : int;
}

let create ?(policy = Lru) ~capacity () =
  if capacity <= 0 then invalid_arg "Buffer.create: capacity must be positive";
  {
    capacity;
    pol = policy;
    frames = Hashtbl.create (2 * capacity);
    ring = Queue.create ();
    clock = 0;
  }

let capacity t = t.capacity
let policy t = t.pol
let resident t = Hashtbl.length t.frames
let mem t k = Hashtbl.mem t.frames k

let touch t f =
  t.clock <- t.clock + 1;
  f.stamp <- t.clock;
  f.refbit <- true

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k f ->
      if f.pins = 0 then
        match !victim with
        | Some (_, s) when s <= f.stamp -> ()
        | _ -> victim := Some (k, f.stamp))
    t.frames;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.frames k;
    true
  | None -> false (* everything pinned: overflow transiently *)

let evict_clock t =
  (* Sweep the ring: stale entries (already evicted) are dropped, pinned
     frames skipped, referenced frames get their second chance.  Bounded
     by twice the live entries — after one full sweep every refbit is
     clear, so the next unpinned frame goes. *)
  let budget = ref (2 * (Queue.length t.ring + 1)) in
  let victim = ref None in
  while !victim = None && !budget > 0 && not (Queue.is_empty t.ring) do
    decr budget;
    let k = Queue.pop t.ring in
    match Hashtbl.find_opt t.frames k with
    | None -> () (* stale: frame already gone *)
    | Some f ->
      if f.pins > 0 then Queue.push k t.ring
      else if f.refbit then begin
        f.refbit <- false;
        Queue.push k t.ring
      end
      else begin
        Hashtbl.remove t.frames k;
        victim := Some k
      end
  done;
  !victim <> None

let evict t = match t.pol with Lru -> evict_lru t | Clock -> evict_clock t

let admit t k ~prefetched =
  let evicted = Hashtbl.length t.frames >= t.capacity && evict t in
  let f = { stamp = 0; refbit = false; pins = 0; prefetched } in
  touch t f;
  Hashtbl.replace t.frames k f;
  if t.pol = Clock then Queue.push k t.ring;
  evicted

type outcome = Hit | Prefetch_hit | Miss of { evicted : bool }

let reference t k =
  match Hashtbl.find_opt t.frames k with
  | Some f ->
    touch t f;
    if f.prefetched then begin
      f.prefetched <- false;
      Prefetch_hit
    end
    else Hit
  | None -> Miss { evicted = admit t k ~prefetched:false }

let prefetch t k =
  match Hashtbl.find_opt t.frames k with
  | Some f ->
    touch t f;
    `Resident
  | None -> `Admitted (admit t k ~prefetched:true)

let pin t k =
  let f =
    match Hashtbl.find_opt t.frames k with
    | Some f -> f
    | None ->
      (* Admit without eviction: a pin wants the frame present NOW and
         must not victimise the page a caller is standing on. *)
      let f = { stamp = 0; refbit = false; pins = 0; prefetched = false } in
      touch t f;
      Hashtbl.replace t.frames k f;
      if t.pol = Clock then Queue.push k t.ring;
      f
  in
  f.pins <- f.pins + 1

let unpin t k =
  match Hashtbl.find_opt t.frames k with
  | Some f when f.pins > 0 -> f.pins <- f.pins - 1
  | Some _ | None -> ()

let reset t =
  Hashtbl.reset t.frames;
  Queue.clear t.ring;
  t.clock <- 0
