type placement = { first : int; span : int }

type area = {
  mutable pages : int list; (* reverse order of allocation *)
  mutable used_slots : int; (* slots used on the last page *)
}

type t = {
  config : Config.t;
  pager : Pager.t;
  size_of : Gom.Schema.type_name -> int;
  store : Gom.Store.t;
  placements : (Gom.Oid.t, placement) Hashtbl.t;
  areas : (Gom.Schema.type_name, area) Hashtbl.t;
}

let objects_per_page t ty = max 1 (t.config.Config.page_size / max 1 (t.size_of ty))

let area t ty =
  match Hashtbl.find_opt t.areas ty with
  | Some a -> a
  | None ->
    let a = { pages = []; used_slots = 0 } in
    Hashtbl.add t.areas ty a;
    a

let place t oid =
  let ty = Gom.Store.type_of t.store oid in
  let size = max 1 (t.size_of ty) in
  let a = area t ty in
  if size > t.config.Config.page_size then begin
    (* Large object: spans dedicated consecutive pages. *)
    let span = (size + t.config.Config.page_size - 1) / t.config.Config.page_size in
    let first = Pager.alloc t.pager in
    for _ = 2 to span do
      ignore (Pager.alloc t.pager)
    done;
    a.pages <- first :: a.pages;
    a.used_slots <- objects_per_page t ty (* force a fresh page next time *);
    Hashtbl.replace t.placements oid { first; span }
  end
  else begin
    let opp = objects_per_page t ty in
    let page =
      match a.pages with
      | p :: _ when a.used_slots < opp ->
        a.used_slots <- a.used_slots + 1;
        p
      | _ ->
        let p = Pager.alloc t.pager in
        a.pages <- p :: a.pages;
        a.used_slots <- 1;
        p
    in
    Hashtbl.replace t.placements oid { first = page; span = 1 }
  end

let create ?(config = Config.default) ?(pager = Pager.create ()) ~size_of store =
  let t =
    {
      config;
      pager;
      size_of;
      store;
      placements = Hashtbl.create 1024;
      areas = Hashtbl.create 32;
    }
  in
  Gom.Store.fold_objects store ~init:() ~f:(fun () inst ->
      place t (Gom.Instance.oid inst));
  let (_ : Gom.Store.subscription) =
    Gom.Store.subscribe store (function
    | Gom.Store.Created oid -> place t oid
    | Gom.Store.Deleted { obj = oid; _ } -> Hashtbl.remove t.placements oid
    | Gom.Store.Attr_set _ | Gom.Store.Set_inserted _ | Gom.Store.Set_removed _ -> ())
  in
  t

let config t = t.config

let placement t oid =
  match Hashtbl.find_opt t.placements oid with
  | Some p -> p
  | None -> raise Not_found

let page_of t oid = (placement t oid).first

let read_object t stats oid =
  let p = placement t oid in
  for i = 0 to p.span - 1 do
    Stats.read stats (p.first + i)
  done

let write_object t stats oid =
  let p = placement t oid in
  for i = 0 to p.span - 1 do
    Stats.write stats (p.first + i)
  done

let type_pages t ty =
  match Hashtbl.find_opt t.areas ty with Some a -> a.pages | None -> []

let pages_of_type ?(deep = false) t ty =
  let tys =
    if deep then Gom.Schema.subtypes_closure (Gom.Store.schema t.store) ty else [ ty ]
  in
  max 1 (List.fold_left (fun acc ty -> acc + List.length (type_pages t ty)) 0 tys)

let scan_extent ?(deep = false) t stats ty =
  let tys =
    if deep then Gom.Schema.subtypes_closure (Gom.Store.schema t.store) ty else [ ty ]
  in
  List.iter (fun ty -> List.iter (Stats.read stats) (type_pages t ty)) tys
