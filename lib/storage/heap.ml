module Omap = Map.Make (Gom.Oid)
module Smap = Map.Make (String)
module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

type placement = { first : int; span : int; ty : Gom.Schema.type_name }
type area = { pages : int list; (* reverse order of allocation *) used_slots : int }

(* Placements, areas and page occupancy live in persistent maps behind
   mutable roots: the live heap mutates the roots in place, and
   [snapshot] forks an immutable O(1) copy sharing the balanced trees —
   the heap counterpart of [Gom.Frozen] epoch snapshots.

   Occupancy ([occ]) maps each type to the pages currently holding at
   least one of its live objects, with a live-object count per page.
   Before any reclustering it coincides with the creation-order areas;
   after [recluster] moves objects, it is the ground truth — pages may
   then hold objects of several types, and extent scans follow [occ],
   not the bump-allocator areas. *)
type t = {
  config : Config.t;
  pager : Pager.t;
  size_of : Gom.Schema.type_name -> int;
  schema : Gom.Schema.t;
  mutable placements : placement Omap.t;
  mutable areas : area Smap.t;
  mutable occ : int Imap.t Smap.t;
  mutable tracer : Affinity.t option;
      (* live heaps may carry an affinity tracer; snapshots never do
         (worker domains must not race on its tables) *)
  mutable rc_moved : int;  (* recluster progress: object moves applied *)
  mutable rc_planned : int;  (* ... out of this many planned *)
  mutable rc_active : bool;
}

let objects_per_page t ty = max 1 (t.config.Config.page_size / max 1 (t.size_of ty))

let area t ty =
  match Smap.find_opt ty t.areas with
  | Some a -> a
  | None -> { pages = []; used_slots = 0 }

let occ_of t ty = match Smap.find_opt ty t.occ with Some m -> m | None -> Imap.empty

let occ_add t ty page =
  let m = occ_of t ty in
  let n = match Imap.find_opt page m with Some n -> n | None -> 0 in
  t.occ <- Smap.add ty (Imap.add page (n + 1) m) t.occ

let occ_remove t ty page =
  let m = occ_of t ty in
  match Imap.find_opt page m with
  | None -> ()
  | Some n ->
    let m = if n <= 1 then Imap.remove page m else Imap.add page (n - 1) m in
    t.occ <- Smap.add ty m t.occ

let place t ty oid =
  let size = max 1 (t.size_of ty) in
  let a = area t ty in
  if size > t.config.Config.page_size then begin
    (* Large object: spans dedicated consecutive pages. *)
    let span = (size + t.config.Config.page_size - 1) / t.config.Config.page_size in
    let first = Pager.alloc t.pager in
    for _ = 2 to span do
      ignore (Pager.alloc t.pager)
    done;
    let a =
      { pages = first :: a.pages;
        used_slots = objects_per_page t ty (* force a fresh page next time *) }
    in
    t.areas <- Smap.add ty a t.areas;
    t.placements <- Omap.add oid { first; span; ty } t.placements;
    for i = 0 to span - 1 do
      occ_add t ty (first + i)
    done
  end
  else begin
    let opp = objects_per_page t ty in
    let page =
      match a.pages with
      | p :: _ when a.used_slots < opp ->
        t.areas <- Smap.add ty { a with used_slots = a.used_slots + 1 } t.areas;
        p
      | _ ->
        let p = Pager.alloc t.pager in
        t.areas <- Smap.add ty { pages = p :: a.pages; used_slots = 1 } t.areas;
        p
    in
    t.placements <- Omap.add oid { first = page; span = 1; ty } t.placements;
    occ_add t ty page
  end

let remove t oid =
  match Omap.find_opt oid t.placements with
  | None -> ()
  | Some p ->
    for i = 0 to p.span - 1 do
      occ_remove t p.ty (p.first + i)
    done;
    t.placements <- Omap.remove oid t.placements

let create ?(config = Config.default) ?(pager = Pager.create ()) ~size_of store =
  let t =
    {
      config;
      pager;
      size_of;
      schema = Gom.Store.schema store;
      placements = Omap.empty;
      areas = Smap.empty;
      occ = Smap.empty;
      tracer = None;
      rc_moved = 0;
      rc_planned = 0;
      rc_active = false;
    }
  in
  Gom.Store.fold_objects store ~init:() ~f:(fun () inst ->
      place t (Gom.Instance.ty inst) (Gom.Instance.oid inst));
  let (_ : Gom.Store.subscription) =
    Gom.Store.subscribe store (function
      | Gom.Store.Created oid -> place t (Gom.Store.type_of store oid) oid
      | Gom.Store.Deleted { obj = oid; _ } -> remove t oid
      | Gom.Store.Attr_set _ | Gom.Store.Set_inserted _ | Gom.Store.Set_removed _ -> ())
  in
  t

let snapshot t = { t with placements = t.placements; tracer = None }

let config t = t.config

let set_tracer t tr = t.tracer <- tr
let tracer t = t.tracer

let placement t oid =
  match Omap.find_opt oid t.placements with
  | Some p -> p
  | None -> raise Not_found

let page_of t oid = (placement t oid).first
let span_of t oid = (placement t oid).span

let seg = "heap"

let read_object t stats oid =
  (match t.tracer with Some tr -> Affinity.touch tr oid | None -> ());
  let p = placement t oid in
  Stats.in_segment stats seg (fun () ->
      for i = 0 to p.span - 1 do
        Stats.read stats (p.first + i)
      done)

let write_object t stats oid =
  let p = placement t oid in
  Stats.in_segment stats seg (fun () ->
      for i = 0 to p.span - 1 do
        Stats.write stats (p.first + i)
      done)

let type_pages t ty = List.map fst (Imap.bindings (occ_of t ty))

let extent_pages ?(deep = false) t ty =
  let tys = if deep then Gom.Schema.subtypes_closure t.schema ty else [ ty ] in
  (* Union, not concatenation: after reclustering a page can host
     objects of several types in the closure and must count once. *)
  List.fold_left
    (fun acc ty -> Imap.fold (fun page _ acc -> Iset.add page acc) (occ_of t ty) acc)
    Iset.empty tys
  |> Iset.elements

let pages_of_type ?deep t ty = max 1 (List.length (extent_pages ?deep t ty))

let scan_extent ?deep t stats ty =
  let pages = extent_pages ?deep t ty in
  Stats.in_segment stats seg (fun () ->
      (* Sequential extent pass: stage the whole extent, then read it —
         with a pool attached the pages are fetched once here and left
         resident for whoever traverses them next. *)
      Stats.prefetch stats pages;
      List.iter (Stats.read stats) pages)

(* ------------------------------------------------------------------ *)
(* Traversal-aware reclustering                                        *)
(* ------------------------------------------------------------------ *)

type recluster_outcome = {
  rc_considered : int;  (* objects named by the plan *)
  rc_moved : int;  (* placements actually rewritten *)
  rc_target_pages : int;  (* fresh pages the moved objects share *)
}

type recluster_job = {
  rj_heap : t;
  rj_slice : int;
  mutable rj_moves : (Gom.Oid.t * int) list;  (* (object, target page) *)
  mutable rj_moved : int;
  mutable rj_targets : Iset.t;
  rj_considered : int;
}

(* Pack the plan's clusters onto fresh pages by first-fit in cluster
   order: a cluster that fits the current fill page shares it (hot
   neighbourhoods can co-reside), otherwise a fresh page is opened.
   Deleted objects and multi-page objects are skipped — span placement
   is exactly the math reclustering must preserve, so large objects
   keep their dedicated consecutive pages. *)
let plan_moves t plan =
  let moves = ref [] in
  let considered = ref 0 in
  let current = ref None (* (page, used bytes) *) in
  let page_size = t.config.Config.page_size in
  List.iter
    (fun cluster ->
      let members =
        List.filter_map
          (fun oid ->
            match Omap.find_opt oid t.placements with
            | Some p when p.span = 1 -> Some (oid, max 1 (t.size_of p.ty))
            | Some _ | None -> None)
          cluster
      in
      considered := !considered + List.length cluster;
      let total = List.fold_left (fun acc (_, s) -> acc + s) 0 members in
      if List.length members > 1 then begin
        (match !current with
        | Some (_, used) when used + total <= page_size -> ()
        | _ -> current := Some (Pager.alloc t.pager, 0));
        List.iter
          (fun (oid, size) ->
            let page, used =
              match !current with
              | Some (p, u) when u + size <= page_size -> (p, u)
              | _ ->
                let p = Pager.alloc t.pager in
                current := Some (p, 0);
                (p, 0)
            in
            current := Some (page, used + size);
            moves := (oid, page) :: !moves)
          members
      end)
    plan;
  (List.rev !moves, !considered)

let recluster_start ?(slice = 64) t ~plan =
  if t.rc_active then invalid_arg "Heap.recluster_start: a job is already running";
  let moves, considered = plan_moves t plan in
  t.rc_active <- true;
  t.rc_moved <- 0;
  t.rc_planned <- List.length moves;
  {
    rj_heap = t;
    rj_slice = max 1 slice;
    rj_moves = moves;
    rj_moved = 0;
    rj_targets = Iset.empty;
    rj_considered = considered;
  }

let apply_move t (oid, page) =
  match Omap.find_opt oid t.placements with
  | Some p when p.span = 1 && p.first <> page ->
    occ_remove t p.ty p.first;
    occ_add t p.ty page;
    t.placements <- Omap.add oid { p with first = page } t.placements;
    true
  | Some _ | None -> false (* deleted since planning, or already there *)

let recluster_step job =
  let t = job.rj_heap in
  let rec go n =
    if n = 0 then `More
    else
      match job.rj_moves with
      | [] ->
        t.rc_active <- false;
        `Done
          {
            rc_considered = job.rj_considered;
            rc_moved = job.rj_moved;
            rc_target_pages = Iset.cardinal job.rj_targets;
          }
      | m :: rest ->
        job.rj_moves <- rest;
        if apply_move t m then begin
          job.rj_moved <- job.rj_moved + 1;
          t.rc_moved <- t.rc_moved + 1;
          job.rj_targets <- Iset.add (snd m) job.rj_targets
        end;
        go (n - 1)
  in
  if job.rj_moves = [] then go 1 (* drain the Done transition *) else go job.rj_slice

let recluster_abort job =
  (* Applied moves stay applied (they are answer-preserving); the rest
     of the plan is dropped. *)
  job.rj_moves <- [];
  job.rj_heap.rc_active <- false

let recluster ?slice t ~plan =
  let job = recluster_start ?slice t ~plan in
  let rec drive () =
    match recluster_step job with `More -> drive () | `Done o -> o
  in
  drive ()

let recluster_progress t =
  if t.rc_active || t.rc_planned > 0 then Some (t.rc_moved, t.rc_planned) else None

let recluster_active t = t.rc_active
