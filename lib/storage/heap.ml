module Omap = Map.Make (Gom.Oid)
module Smap = Map.Make (String)

type placement = { first : int; span : int }
type area = { pages : int list; (* reverse order of allocation *) used_slots : int }

(* Placements and areas live in persistent maps behind mutable roots:
   the live heap mutates the roots in place, and [snapshot] forks an
   immutable O(1) copy sharing the balanced trees — the heap counterpart
   of [Gom.Frozen] epoch snapshots. *)
type t = {
  config : Config.t;
  pager : Pager.t;
  size_of : Gom.Schema.type_name -> int;
  schema : Gom.Schema.t;
  mutable placements : placement Omap.t;
  mutable areas : area Smap.t;
}

let objects_per_page t ty = max 1 (t.config.Config.page_size / max 1 (t.size_of ty))

let area t ty =
  match Smap.find_opt ty t.areas with
  | Some a -> a
  | None -> { pages = []; used_slots = 0 }

let place t ty oid =
  let size = max 1 (t.size_of ty) in
  let a = area t ty in
  if size > t.config.Config.page_size then begin
    (* Large object: spans dedicated consecutive pages. *)
    let span = (size + t.config.Config.page_size - 1) / t.config.Config.page_size in
    let first = Pager.alloc t.pager in
    for _ = 2 to span do
      ignore (Pager.alloc t.pager)
    done;
    let a =
      { pages = first :: a.pages;
        used_slots = objects_per_page t ty (* force a fresh page next time *) }
    in
    t.areas <- Smap.add ty a t.areas;
    t.placements <- Omap.add oid { first; span } t.placements
  end
  else begin
    let opp = objects_per_page t ty in
    let page =
      match a.pages with
      | p :: _ when a.used_slots < opp ->
        t.areas <- Smap.add ty { a with used_slots = a.used_slots + 1 } t.areas;
        p
      | _ ->
        let p = Pager.alloc t.pager in
        t.areas <- Smap.add ty { pages = p :: a.pages; used_slots = 1 } t.areas;
        p
    in
    t.placements <- Omap.add oid { first = page; span = 1 } t.placements
  end

let create ?(config = Config.default) ?(pager = Pager.create ()) ~size_of store =
  let t =
    {
      config;
      pager;
      size_of;
      schema = Gom.Store.schema store;
      placements = Omap.empty;
      areas = Smap.empty;
    }
  in
  Gom.Store.fold_objects store ~init:() ~f:(fun () inst ->
      place t (Gom.Instance.ty inst) (Gom.Instance.oid inst));
  let (_ : Gom.Store.subscription) =
    Gom.Store.subscribe store (function
      | Gom.Store.Created oid -> place t (Gom.Store.type_of store oid) oid
      | Gom.Store.Deleted { obj = oid; _ } -> t.placements <- Omap.remove oid t.placements
      | Gom.Store.Attr_set _ | Gom.Store.Set_inserted _ | Gom.Store.Set_removed _ -> ())
  in
  t

let snapshot t = { t with placements = t.placements }

let config t = t.config

let placement t oid =
  match Omap.find_opt oid t.placements with
  | Some p -> p
  | None -> raise Not_found

let page_of t oid = (placement t oid).first

let read_object t stats oid =
  let p = placement t oid in
  for i = 0 to p.span - 1 do
    Stats.read stats (p.first + i)
  done

let write_object t stats oid =
  let p = placement t oid in
  for i = 0 to p.span - 1 do
    Stats.write stats (p.first + i)
  done

let type_pages t ty =
  match Smap.find_opt ty t.areas with Some a -> a.pages | None -> []

let pages_of_type ?(deep = false) t ty =
  let tys = if deep then Gom.Schema.subtypes_closure t.schema ty else [ ty ] in
  max 1 (List.fold_left (fun acc ty -> acc + List.length (type_pages t ty)) 0 tys)

let scan_extent ?(deep = false) t stats ty =
  let tys = if deep then Gom.Schema.subtypes_closure t.schema ty else [ ty ] in
  List.iter (fun ty -> List.iter (Stats.read stats) (type_pages t ty)) tys
