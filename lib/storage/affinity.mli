(** Traversal-affinity mining for dynamic clustering.

    The executed-plan traces already pass through {!Heap.read_object};
    an [Affinity.t] attached as the heap's tracer turns that stream of
    object touches into a co-access graph: objects dereferenced close
    together (within a sliding window of the trace) accumulate edge
    weight.  {!clusters} then greedily condenses the hottest edges into
    page-sized neighbourhoods — the plan {!Heap.recluster} repacks —
    following the dynamic, workload-observed clustering strategies of
    the OODB clustering literature rather than static type order. *)

type t

val create : ?window:int -> ?max_edges:int -> unit -> t
(** A fresh empty graph.  [window] (default 2) is how many recent
    touches each new touch pairs with; [max_edges] (default 65536)
    bounds the edge table — on overflow the graph {!decay}s, aging cold
    edges out before they can crowd hot ones. *)

val touch : t -> Gom.Oid.t -> unit
(** Record one object access: bumps the edge weight between this object
    and each of the previous [window] distinct touches. *)

val break_run : t -> unit
(** Forget the recent-touch window (e.g. between unrelated workload
    phases) without discarding edge weights. *)

val touches : t -> int
(** Total accesses recorded. *)

val edge_count : t -> int

val decay : t -> unit
(** Halve every edge weight, dropping edges that reach zero — the aging
    step that keeps the graph tracking the {e current} workload. *)

val clusters :
  t -> size_of:(Gom.Oid.t -> int) -> page_size:int -> Gom.Oid.t list list
(** Greedy affinity clustering: edges are taken hottest-first and their
    endpoint clusters merged whenever the combined object sizes still
    fit one page ([size_of] gives each object's bytes).  Returns the
    resulting multi-object clusters, hottest first — singletons are
    omitted (they have nothing to co-locate).  Deterministic for a
    given graph. *)
