(* Profile measurement moved into the engine (the planner's live feed);
   kept here as the workload-facing name. *)
let profile_of_base ?sizes store path = Engine.measure_profile ?sizes store path

module Monitor = struct
  type t = {
    store : Gom.Store.t;
    path : Gom.Path.t;
    queries : (Costmodel.Query_cost.query_kind * int * int, int) Hashtbl.t;
    updates : (int, int) Hashtbl.t; (* position -> count *)
    mutable query_total : int;
    mutable update_total : int;
  }

  let bump tbl key =
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

  let positions_of schema path ~ty ~attr =
    let n = Gom.Path.length path in
    List.filter
      (fun i ->
        let step = Gom.Path.step path (i + 1) in
        String.equal step.Gom.Path.attr attr
        && Gom.Schema.is_subtype schema ~sub:ty ~sup:step.Gom.Path.domain)
      (List.init n Fun.id)

  let set_positions_of schema path ~set_ty =
    let n = Gom.Path.length path in
    List.filter
      (fun i ->
        match (Gom.Path.step path (i + 1)).Gom.Path.set_type with
        | Some st -> Gom.Schema.is_subtype schema ~sub:set_ty ~sup:st
        | None -> false)
      (List.init n Fun.id)

  let create store path =
    let t =
      {
        store;
        path;
        queries = Hashtbl.create 16;
        updates = Hashtbl.create 16;
        query_total = 0;
        update_total = 0;
      }
    in
    let schema = Gom.Store.schema store in
    let (_ : Gom.Store.subscription) =
      Gom.Store.subscribe store (fun ev ->
        let hit positions =
          match positions with
          | [] -> ()
          | pos :: _ ->
            bump t.updates pos;
            t.update_total <- t.update_total + 1
        in
        match ev with
        | Gom.Store.Attr_set { obj; attr; _ } when Gom.Store.mem store obj ->
          hit (positions_of schema path ~ty:(Gom.Store.type_of store obj) ~attr)
        | Gom.Store.Set_inserted { set; _ } | Gom.Store.Set_removed { set; _ }
          when Gom.Store.mem store set ->
          hit (set_positions_of schema path ~set_ty:(Gom.Store.type_of store set))
        | Gom.Store.Created _ | Gom.Store.Deleted _ | Gom.Store.Attr_set _
        | Gom.Store.Set_inserted _ | Gom.Store.Set_removed _ ->
          ())
    in
    t

  let record_query t kind ~i ~j =
    let n = Gom.Path.length t.path in
    if not (0 <= i && i < j && j <= n) then
      invalid_arg "Monitor.record_query: invalid range";
    let k = match kind with `Fw -> Costmodel.Query_cost.Fw | `Bw -> Costmodel.Query_cost.Bw in
    bump t.queries (k, i, j);
    t.query_total <- t.query_total + 1

  let queries_seen t = t.query_total
  let updates_seen t = t.update_total

  let observed_p_up t =
    let total = t.query_total + t.update_total in
    if total = 0 then 0. else float_of_int t.update_total /. float_of_int total

  let observed_mix t =
    if t.query_total = 0 || t.update_total = 0 then None
    else begin
      let qtotal = float_of_int t.query_total in
      let utotal = float_of_int t.update_total in
      let queries =
        Hashtbl.fold
          (fun (k, i, j) count acc ->
            ( float_of_int count /. qtotal,
              { Costmodel.Opmix.qi = i; Costmodel.Opmix.qj = j; Costmodel.Opmix.qkind = k }
            )
            :: acc)
          t.queries []
      in
      let updates =
        Hashtbl.fold
          (fun pos count acc ->
            (float_of_int count /. utotal, { Costmodel.Opmix.upos = pos }) :: acc)
          t.updates []
      in
      Some (Costmodel.Opmix.make ~queries ~updates)
    end

  let recommend ?sizes ?max_storage_pages t =
    match observed_mix t with
    | None ->
      invalid_arg "Monitor.recommend: record at least one query and one update first"
    | Some mix ->
      let profile = profile_of_base ?sizes t.store t.path in
      Costmodel.Advisor.rank ?max_storage_pages profile mix ~p_up:(observed_p_up t)
end
