module P = Costmodel.Profile
module D = Core.Decomposition
module X = Core.Extension
module QC = Costmodel.Query_cost
module UC = Costmodel.Update_cost
module SC = Costmodel.Storage_cost
module Mix = Costmodel.Opmix

type t = {
  id : string;
  title : string;
  section : string;
  run : unit -> Table.t list;
}

let kinds = X.all
let kname = X.name
let bi m = D.binary ~m
let nodec m = D.trivial ~m

(* ------------------------------------------------------------------ *)
(* The paper's application characteristics                             *)
(* ------------------------------------------------------------------ *)

(* Section 4.4.1 (= 6.3.1, 6.4.2). *)
let profile_storage =
  P.make
    ~c:[ 1000.; 5000.; 10000.; 50000.; 100000. ]
    ~d:[ 900.; 4000.; 8000.; 20000. ]
    ~fan:[ 2.; 2.; 3.; 4. ]
    ~sizes:[ 500.; 400.; 300.; 300.; 100. ]
    ()

(* Section 5.9.1 (= 5.9.2).  The TR lists d2 = 8000 with c2 = 1000,
   which is impossible (d <= c); the intended value is 800. *)
let profile_query =
  P.make
    ~c:[ 100.; 500.; 1000.; 5000.; 10000. ]
    ~d:[ 90.; 400.; 800.; 2000. ]
    ~fan:[ 2.; 2.; 3.; 4. ]
    ~sizes:[ 500.; 400.; 300.; 300.; 100. ]
    ()

(* Sections 4.4.2 and 5.9.3.  Figure 5's convergence claim (extensions
   coincide as d -> c) holds under Figure 3's literal sharing default,
   so fig5 selects it explicitly. *)
let profile_uniform ?sharing d =
  P.make ?sharing
    ~c:[ 10000.; 10000.; 10000.; 10000.; 10000. ]
    ~d:[ d; d; d; d ]
    ~fan:[ 2.; 2.; 2.; 2. ]
    ~sizes:[ 120.; 120.; 120.; 120.; 120. ]
    ()

(* Section 5.9.4. *)
let profile_canleft fan =
  P.make
    ~c:[ 400000.; 400000.; 400000.; 400000.; 400000. ]
    ~d:[ 10.; 100.; 1000.; 100000. ]
    ~fan:[ fan; fan; fan; fan ]
    ~sizes:[ 120.; 120.; 120.; 120.; 120. ]
    ()

(* Section 6.3.2. *)
let profile_update2 = P.with_fan profile_storage [ 2.; 1.; 1.; 4. ]

(* Section 6.4.4. *)
let profile_leftfull =
  P.make
    ~c:[ 1000.; 1000.; 5000.; 10000.; 100000.; 100000. ]
    ~d:[ 100.; 1000.; 3000.; 8000.; 100000. ]
    ~fan:[ 2.; 2.; 3.; 4.; 10. ]
    ~sizes:[ 600.; 500.; 400.; 300.; 300.; 100. ]
    ()

(* Section 6.4.5. *)
let profile_rightfull =
  P.make
    ~c:[ 100000.; 100000.; 50000.; 10000.; 1000.; 1000. ]
    ~d:[ 100000.; 10000.; 30000.; 10000.; 100. ]
    ~fan:[ 1.; 10.; 20.; 4.; 1. ]
    ~sizes:[ 600.; 500.; 400.; 300.; 200.; 700. ]
    ()

(* ------------------------------------------------------------------ *)
(* Figure experiments                                                  *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  let n = P.n profile_storage in
  let rows =
    List.map
      (fun k ->
        ( kname k,
          [ SC.total_pages profile_storage k (bi n);
            SC.total_pages profile_storage k (nodec n) ] ))
      kinds
  in
  [ Table.make ~id:"fig4" ~title:"Access relation sizes (pages)" ~x_label:"extension"
      ~columns:[ "binary dec"; "no dec" ]
      ~notes:
        [ "expected shape: can ~ left << right ~ full; binary roughly halves storage" ]
      rows ]

let fig5 () =
  let sweep = [ 2500.; 4000.; 5500.; 7000.; 8500.; 10000. ] in
  let rows =
    List.map
      (fun d ->
        let p = profile_uniform ~sharing:P.Paper_default d in
        let n = P.n p in
        ( Printf.sprintf "%.0f" d,
          List.map (fun k -> SC.total_pages p k (nodec n)) kinds ))
      sweep
  in
  [ Table.make ~id:"fig5" ~title:"Sizes under varying d_i (no decomposition)"
      ~x_label:"d_i" ~columns:(List.map kname kinds)
      ~notes:
        [ "expected shape: all grow with d; extensions converge as d -> c";
          "uses Figure 3's literal sharing default (see DESIGN.md)" ]
      rows ]

let fig6 () =
  let p = profile_query in
  let n = P.n p in
  let rows =
    List.map
      (fun k ->
        ( kname k,
          [ QC.q p k (bi n) QC.Bw 0 n; QC.q p k (nodec n) QC.Bw 0 n ] ))
      kinds
    @ [ ("no support", List.init 2 (fun _ -> QC.qnas p QC.Bw 0 n)) ]
  in
  [ Table.make ~id:"fig6" ~title:"Backward query Q(0,4)(bw) cost (page accesses)"
      ~x_label:"design" ~columns:[ "binary dec"; "no dec" ]
      ~notes:
        [ "expected: supported << no support; no-dec slightly cheaper than binary";
          "d2 = 800 (TR's 8000 is a typo: d <= c)" ]
      rows ]

let fig7 () =
  let sweep = [ 100.; 200.; 300.; 400.; 500.; 600.; 700.; 800. ] in
  let rows =
    List.map
      (fun s ->
        let p = P.with_sizes profile_query [ s; s; s; s; s ] in
        let n = P.n p in
        ( Printf.sprintf "%.0f" s,
          List.map (fun k -> QC.q p k (bi n) QC.Bw 0 n) kinds
          @ [ QC.qnas p QC.Bw 0 n ] ))
      sweep
  in
  [ Table.make ~id:"fig7" ~title:"Q(0,4)(bw) under varying object size (binary dec)"
      ~x_label:"size" ~columns:(List.map kname kinds @ [ "no support" ])
      ~notes:[ "expected: supported flat; no support grows with object size" ]
      rows ]

let fig8 () =
  let sweep = [ 10.; 100.; 500.; 1000.; 2500.; 5000.; 7500.; 10000. ] in
  let rows =
    List.map
      (fun d ->
        let p = profile_uniform d in
        let n = P.n p in
        ( Printf.sprintf "%.0f" d,
          [ QC.q p X.Full (bi n) QC.Bw 0 3;
            QC.q p X.Full (nodec n) QC.Bw 0 3;
            QC.q p X.Left_complete (bi n) QC.Bw 0 3;
            QC.q p X.Left_complete (nodec n) QC.Bw 0 3;
            QC.qnas p QC.Bw 0 3 ] ))
      sweep
  in
  [ Table.make ~id:"fig8" ~title:"Q(0,3)(bw): only full/left apply" ~x_label:"d_i"
      ~columns:[ "full bi"; "full no"; "left bi"; "left no"; "no support" ]
      ~notes:
        [ "expected: non-decomposed full/left exceed 'no support' at large d (partition scans)";
          "canonical and right-complete cannot evaluate (0,3): they cost 'no support'" ]
      rows ]

let fig9 () =
  let sweep = [ 10.; 20.; 30.; 40.; 50.; 60.; 70.; 80.; 90.; 100. ] in
  let rows =
    List.map
      (fun f ->
        let p = profile_canleft f in
        let n = P.n p in
        ( Printf.sprintf "%.0f" f,
          List.map (fun k -> QC.q p k (bi n) QC.Bw 0 n) kinds
          @ [ QC.qnas p QC.Bw 0 n ] ))
      sweep
  in
  [ Table.make ~id:"fig9"
      ~title:"Q(0,4)(bw) under varying fan-out (application favouring can/left)"
      ~x_label:"fan" ~columns:(List.map kname kinds @ [ "no support" ])
      ~notes:[ "expected: can/left much cheaper than full/right on this profile" ]
      rows ]

let update_table ~id ~title ?(notes = []) p pos =
  let n = P.n p in
  let rows =
    List.map
      (fun k ->
        (kname k, [ UC.total p k (bi n) pos; UC.total p k (nodec n) pos ]))
      kinds
  in
  [ Table.make ~id ~title ~x_label:"extension" ~columns:[ "binary dec"; "no dec" ]
      ~notes rows ]

let fig11 () =
  update_table ~id:"fig11" ~title:"Update cost of ins_3"
    ~notes:
      [ "expected: left << right under binary dec; canonical pays data searches" ]
    profile_storage 3

let fig12 () =
  update_table ~id:"fig12" ~title:"Update cost of ins_3 (second profile, fan 2,1,1,4)"
    ~notes:[ "expected: left-complete and full almost comparable" ]
    profile_update2 3

let fig13 () =
  let sweep = [ 100.; 200.; 300.; 400.; 500.; 600.; 700.; 800. ] in
  let rows =
    List.map
      (fun s ->
        let p = P.with_sizes profile_storage [ s; s; s; s; s ] in
        let n = P.n p in
        ( Printf.sprintf "%.0f" s,
          List.map (fun k -> UC.total p k (bi n) 1) kinds ))
      sweep
  in
  [ Table.make ~id:"fig13" ~title:"Update cost of ins_1 under varying object size"
      ~x_label:"size" ~columns:(List.map kname kinds)
      ~notes:
        [ "expected: can/right grow with object size (backward data search); left nearly flat" ]
      rows ]

let mix_642 =
  Mix.make
    ~queries:[ Mix.query 0 4 0.5; Mix.query 0 3 0.25; Mix.query ~kind:"fw" 1 2 0.25 ]
    ~updates:[ Mix.ins 2 0.5; Mix.ins 3 0.5 ]

let pup_sweep = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ]

let mix_table ~id ~title ?(notes = []) ?(sweep = pup_sweep) p mix designs =
  let rows =
    List.map
      (fun p_up ->
        ( Printf.sprintf "%.3f" p_up,
          List.map (fun (_, d) -> Mix.normalized_cost p d mix ~p_up) designs ))
      sweep
  in
  [ Table.make ~id ~title ~x_label:"P_up" ~columns:(List.map fst designs) ~notes rows ]

let fig14 () =
  let n = P.n profile_storage in
  let designs =
    List.map (fun k -> (kname k, Mix.Design (k, bi n))) kinds
    @ [ ("no support", Mix.No_support) ]
  in
  let be =
    Mix.break_even profile_storage
      (Mix.Design (X.Full, bi n))
      Mix.No_support mix_642
  in
  mix_table ~id:"fig14" ~title:"Operation mix, binary decomposition (normalized)"
    ~notes:
      [ "expected: left beats full for P_up < ~0.3";
        (match be with
        | Some p -> Printf.sprintf "measured break-even full vs no support: P_up = %.3f" p
        | None -> "full never loses to no support on this sweep") ]
    profile_storage mix_642 designs

let fig15 () =
  let dec = D.make ~m:4 [ 0; 3; 4 ] in
  let designs =
    List.map (fun k -> (kname k, Mix.Design (k, dec))) kinds
    @ [ ("no support", Mix.No_support) ]
  in
  mix_table ~id:"fig15" ~title:"Operation mix, decomposition (0,3,4) (normalized)"
    profile_storage mix_642 designs

let fig16 () =
  let mix =
    Mix.make
      ~queries:
        [ Mix.query 0 5 (1. /. 3.); Mix.query 0 4 (1. /. 3.);
          Mix.query ~kind:"fw" 0 5 (1. /. 3.) ]
      ~updates:[ Mix.ins 3 (1. /. 3.); Mix.ins 0 (1. /. 3.); Mix.ins 4 (1. /. 3.) ]
  in
  let d_bi = bi 5 and d_035 = D.make ~m:5 [ 0; 3; 4; 5 ] in
  let designs =
    [ ("left bi", Mix.Design (X.Left_complete, d_bi));
      ("left (0,3,4,5)", Mix.Design (X.Left_complete, d_035));
      ("full bi", Mix.Design (X.Full, d_bi));
      ("full (0,3,4,5)", Mix.Design (X.Full, d_035)) ]
  in
  mix_table ~id:"fig16" ~title:"Mix: left-complete vs full (n=5, normalized)"
    ~notes:[ "expected: left-complete cheaper at low P_up; coarser dec helps queries" ]
    profile_leftfull mix designs

let fig17 () =
  let mix =
    Mix.make
      ~queries:[ Mix.query 0 5 0.5; Mix.query 1 5 0.25; Mix.query 2 5 0.25 ]
      ~updates:[ Mix.ins 3 1.0 ]
  in
  let d_bi = bi 5 and d_035 = D.make ~m:5 [ 0; 3; 5 ] in
  let designs =
    [ ("right bi", Mix.Design (X.Right_complete, d_bi));
      ("right (0,3,5)", Mix.Design (X.Right_complete, d_035));
      ("full bi", Mix.Design (X.Full, d_bi));
      ("full (0,3,5)", Mix.Design (X.Full, d_035)) ]
  in
  let be =
    Mix.break_even profile_rightfull
      (Mix.Design (X.Right_complete, d_035))
      (Mix.Design (X.Full, d_035))
      mix
  in
  let notes =
    [ "expected: (0,3,5) beats binary; right beats full only for tiny P_up";
      (match be with
      | Some p -> Printf.sprintf "measured break-even right vs full under (0,3,5): P_up = %.3f" p
      | None -> "right (0,3,5) never loses to full (0,3,5) on this sweep") ]
  in
  let coarse = mix_table ~id:"fig17" ~title:"Mix: right-complete vs full (n=5, normalized)"
      ~notes profile_rightfull mix designs
  in
  let fine =
    mix_table ~id:"fig17b" ~title:"Mix: right vs full, small P_up (normalized)"
      ~sweep:[ 0.001; 0.002; 0.005; 0.01; 0.02; 0.05 ]
      profile_rightfull mix designs
  in
  coarse @ fine

(* ------------------------------------------------------------------ *)
(* Model validation: analytical vs simulated                           *)
(* ------------------------------------------------------------------ *)

(* A linear (single-valued) chain so that the analytical simplification
   m = n holds exactly and no set pages blur the comparison. *)
let val_profile =
  P.make
    ~c:[ 2000.; 2000.; 2000.; 2000. ]
    ~d:[ 1800.; 1800.; 1800. ]
    ~fan:[ 1.; 1.; 1. ]
    ~sizes:[ 200.; 200.; 200.; 100. ]
    ()

let val_setup () =
  let spec =
    Generator.of_profile ~seed:11
      ~set_valued:[ false; false; false ]
      val_profile
  in
  let store, path = Generator.build spec in
  let heap = Storage.Heap.create ~size_of:(Generator.size_of spec) store in
  (store, path, (Core.Exec.make store heap))

let measure env f =
  Storage.Stats.begin_op env.Core.Exec.stats;
  f ();
  float_of_int (Storage.Stats.op_accesses env.Core.Exec.stats)

let val1 () =
  let store, path, env = val_setup () in
  let n = Gom.Path.length path in
  let target =
    match Gom.Store.extent store "T3" with o :: _ -> Gom.Value.Ref o | [] -> assert false
  in
  let source = match Gom.Store.extent store "T0" with o :: _ -> o | [] -> assert false in
  let designs =
    [ ("can, no dec", X.Canonical, nodec n);
      ("full, bi", X.Full, bi n);
      ("left, bi", X.Left_complete, bi n);
      ("right, no dec", X.Right_complete, nodec n) ]
  in
  let rows =
    ( "no support bw(0,3)",
      [ measure env (fun () -> ignore (Core.Exec.backward_scan env path ~i:0 ~j:n ~target));
        QC.qnas val_profile QC.Bw 0 n ] )
    :: ( "no support fw(0,3)",
         [ measure env (fun () ->
               ignore (Core.Exec.forward_scan env path ~i:0 ~j:n source));
           QC.qnas val_profile QC.Fw 0 n ] )
    :: List.map
         (fun (label, k, dec) ->
           let a = Core.Asr.create store path k dec in
           ( Printf.sprintf "%s bw(0,3)" label,
             [ measure env (fun () ->
                   ignore (Core.Exec.backward_supported env a ~i:0 ~j:n ~target));
               QC.qsup val_profile k dec QC.Bw 0 n ] ))
         designs
  in
  [ Table.make ~id:"val1" ~title:"Analytical vs simulated query cost (linear chain)"
      ~x_label:"query / design" ~columns:[ "simulated"; "predicted" ]
      ~notes:
        [ "expected: same order of magnitude and same ranking; the model uses";
          "expected-value approximations (Yao), the simulation counts real pages" ]
      rows ]

let val2 () =
  let store, path, _env = val_setup () in
  let n = Gom.Path.length path in
  let rows =
    List.concat_map
      (fun k ->
        List.map
          (fun (dlabel, dec) ->
            let a = Core.Asr.create store path k dec in
            let measured =
              float_of_int
                (List.fold_left
                   (fun acc (g : Core.Asr.part_geometry) -> acc + g.Core.Asr.leaf_pages)
                   0 (Core.Asr.geometry a))
            in
            let predicted = SC.total_pages val_profile k dec in
            (Printf.sprintf "%s %s" (kname k) dlabel, [ measured; predicted ]))
          [ ("no dec", nodec n); ("bi", bi n) ])
      kinds
  in
  [ Table.make ~id:"val2" ~title:"Analytical vs simulated ASR size (leaf pages)"
      ~x_label:"design" ~columns:[ "simulated"; "predicted" ]
      ~notes:[ "expected: close agreement (bulk-loaded leaves are packed full)" ]
      rows ]

(* Empirical counterparts of Figures 6 and 11: the same comparisons
   measured from the executable engine (real B+ trees, object heap,
   incremental maintenance) over a generated base with set-valued
   attributes. *)

let sim_spec () =
  Generator.spec ~seed:23
    ~counts:[ 400; 800; 1600; 3200 ]
    ~defined:[ 370; 730; 1450 ]
    ~fan:[ 2; 2; 2 ]
    ~sizes:[ 500; 500; 500; 200 ]
    ()

let sim_designs m =
  List.concat_map
    (fun k -> [ (kname k ^ " bi", k, bi m); (kname k ^ " no", k, nodec m) ])
    kinds

let val3 () =
  let spec = sim_spec () in
  let probe_store, probe_path = Generator.build spec in
  let m = Gom.Path.arity probe_path - 1 in
  ignore probe_store;
  let rows =
    List.map
      (fun (label, k, dec) ->
        (* A fresh, identical base per design isolates the accounting. *)
        let store, path = Generator.build spec in
        let heap = Storage.Heap.create ~size_of:(Generator.size_of spec) store in
        let mgr = Core.Maintenance.create (Core.Exec.make store heap) in
        Core.Maintenance.register mgr (Core.Asr.create store path k dec);
        (* ins_2: rotate memberships of T2 objects' A3 sets. *)
        let srcs = Array.of_list (Gom.Store.extent store "T2") in
        let tgts = Array.of_list (Gom.Store.extent store "T3") in
        let ops = ref 0 in
        let total = ref 0 in
        for x = 0 to 9 do
          let src = srcs.(x * 7 mod Array.length srcs) in
          match Gom.Store.get_attr store src "A3" with
          | Gom.Value.Ref set ->
            let tgt = tgts.(x * 13 mod Array.length tgts) in
            if not (List.mem (Gom.Value.Ref tgt) (Gom.Store.elements store set)) then begin
              Gom.Store.insert_elem store set (Gom.Value.Ref tgt);
              total := !total + Core.Maintenance.last_event_cost mgr;
              incr ops
            end
          | _ -> ()
        done;
        let avg = if !ops = 0 then 0. else float_of_int !total /. float_of_int !ops in
        (label, [ avg ]))
      (sim_designs m)
  in
  [ Table.make ~id:"val3" ~title:"Simulated maintenance cost of ins_2 (page accesses)"
      ~x_label:"design" ~columns:[ "avg pages/insert" ]
      ~notes:
        [ "empirical counterpart of fig11: left/full cheap, can/right pay backward data searches" ]
      rows ]

let val4 () =
  let spec = sim_spec () in
  let store, path = Generator.build spec in
  let heap = Storage.Heap.create ~size_of:(Generator.size_of spec) store in
  let env = Core.Exec.make store heap in
  let stats = env.Core.Exec.stats in
  let m = Gom.Path.arity path - 1 in
  let n = Gom.Path.length path in
  let targets =
    Gom.Store.extent store "T3"
    |> List.filteri (fun i _ -> i mod 200 = 0)
    |> List.map (fun o -> Gom.Value.Ref o)
  in
  let measure f =
    let total = ref 0 in
    List.iter
      (fun target ->
        Storage.Stats.begin_op stats;
        f target;
        total := !total + Storage.Stats.op_accesses stats)
      targets;
    float_of_int !total /. float_of_int (max 1 (List.length targets))
  in
  let rows =
    List.map
      (fun (label, k, dec) ->
        let a = Core.Asr.create store path k dec in
        ( label,
          [ measure (fun target ->
                ignore (Core.Exec.backward_supported env a ~i:0 ~j:n ~target)) ] ))
      (sim_designs m)
    @ [ ( "no support",
          [ measure (fun target ->
                ignore (Core.Exec.backward_scan env path ~i:0 ~j:n ~target)) ] ) ]
  in
  [ Table.make ~id:"val4" ~title:"Simulated backward query Q(0,3)(bw) (page accesses)"
      ~x_label:"design" ~columns:[ "avg pages/query" ]
      ~notes:[ "empirical counterpart of fig6: every supported design beats the scan" ]
      rows ]

(* val5: the engine's batched executor.  K backward probes against the
   same access support relation, naively (one accounting operation per
   probe, through {!Engine.backward}) vs as one batch
   ({!Engine.backward_batch}): the batch sorts the probes, shares
   B+-tree descents and leaf pages, and scans interior partitions once
   instead of once per probe. *)
let val5 () =
  let spec = sim_spec () in
  let store, path = Generator.build spec in
  let heap = Storage.Heap.create ~size_of:(Generator.size_of spec) store in
  let env = Core.Exec.make store heap in
  let stats = env.Core.Exec.stats in
  let m = Gom.Path.arity path - 1 in
  let n = Gom.Path.length path in
  let engine = Engine.create env in
  Engine.register engine (Core.Asr.create store path X.Full (bi m));
  let last_extent = Gom.Store.extent store (Printf.sprintf "T%d" n) in
  let probes k =
    let stride = max 1 (List.length last_extent / k) in
    last_extent
    |> List.filteri (fun i _ -> i mod stride = 0)
    |> List.filteri (fun i _ -> i < k)
    |> List.map (fun o -> Gom.Value.Ref o)
  in
  let rows =
    List.map
      (fun k ->
        let ts = probes k in
        let naive =
          List.fold_left
            (fun acc target ->
              ignore (Engine.backward engine path ~i:0 ~j:n ~target);
              acc + Storage.Stats.op_accesses stats)
            0 ts
        in
        ignore (Engine.backward_batch engine path ~i:0 ~j:n ~targets:ts);
        let batched = Storage.Stats.op_accesses stats in
        (string_of_int (List.length ts), [ float_of_int naive; float_of_int batched ]))
      [ 4; 16; 64 ]
  in
  [ Table.make ~id:"val5" ~title:"Batched vs per-probe backward Q(0,3)(bw) (total pages)"
      ~x_label:"batch size" ~columns:[ "per-probe"; "batched" ]
      ~notes:
        [ "one accounting operation per batch: shared descents and single \
           partition scans make total pages grow sub-linearly in the batch size" ]
      rows ]

(* Ablations over the executable engine: the design choices DESIGN.md
   calls out, measured. *)

(* abl1: how much storage does section 5.4's partition sharing save as
   overlapping paths accumulate?  K anchor types all feed the same
   Product tail. *)
let abl1 () =
  let build_store k =
    let s = Schemas.Company.schema () in
    let s =
      List.fold_left
        (fun s i ->
          Gom.Schema.define_tuple s
            (Printf.sprintf "Anchor%d" i)
            [ ("Tag", "STRING"); ("Feeds", "ProdSET") ])
        s
        (List.init k (fun i -> i))
    in
    let store = Gom.Store.create s in
    (* A shared product catalogue. *)
    let part name =
      let b = Gom.Store.new_object store "BasePart" in
      Gom.Store.set_attr store b "Name" (Gom.Value.Str name);
      b
    in
    let parts = List.init 40 (fun i -> part (Printf.sprintf "p%d" i)) in
    let products =
      List.init 30 (fun i ->
          let pr = Gom.Store.new_object store "Product" in
          Gom.Store.set_attr store pr "Name" (Gom.Value.Str (Printf.sprintf "prod%d" i));
          let comp = Gom.Store.new_object store "BasePartSET" in
          List.iteri
            (fun j p -> if (i + j) mod 5 = 0 then Gom.Store.insert_elem store comp (Gom.Value.Ref p))
            parts;
          Gom.Store.set_attr store pr "Composition" (Gom.Value.Ref comp);
          pr)
    in
    let anchors =
      List.init k (fun i ->
          let a = Gom.Store.new_object store (Printf.sprintf "Anchor%d" i) in
          Gom.Store.set_attr store a "Tag" (Gom.Value.Str (Printf.sprintf "a%d" i));
          let ps = Gom.Store.new_object store "ProdSET" in
          List.iteri
            (fun j p -> if (i + j) mod 3 = 0 then Gom.Store.insert_elem store ps (Gom.Value.Ref p))
            products;
          Gom.Store.set_attr store a "Feeds" (Gom.Value.Ref ps);
          a)
    in
    ignore anchors;
    store
  in
  let rows =
    List.map
      (fun k ->
        let store = build_store k in
        let schema = Gom.Store.schema store in
        let paths =
          List.init k (fun i ->
              Gom.Path.make schema
                (Printf.sprintf "Anchor%d" i)
                [ "Feeds"; "Composition"; "Name" ])
        in
        let dec = D.make ~m:5 [ 0; 2; 5 ] in
        let unshared =
          Core.Asr.pool_total_pages
            (List.map (fun p -> Core.Asr.create store p X.Full dec) paths)
        in
        let pool = Core.Asr.make_pool store in
        let shared =
          Core.Asr.pool_total_pages
            (List.map (fun p -> Core.Asr.create ~pool store p X.Full dec) paths)
        in
        ( string_of_int k,
          [ float_of_int unshared; float_of_int shared;
            (if unshared = 0 then 1. else float_of_int shared /. float_of_int unshared) ] ))
      [ 1; 2; 4; 8 ]
  in
  [ Table.make ~id:"abl1" ~title:"Sharing pool: pages for K overlapping paths"
      ~x_label:"K paths" ~columns:[ "unshared"; "pooled"; "ratio" ]
      ~notes:[ "the Product tail is materialised once however many anchors feed it" ]
      rows ]

(* abl2: the subsumed baselines vs a decomposed full ASR over sub-path
   queries (measured page accesses). *)
let abl2 () =
  let spec =
    Generator.spec ~seed:41
      ~counts:[ 300; 600; 1200; 2400 ]
      ~defined:[ 280; 560; 1150 ]
      ~fan:[ 1; 1; 1 ]
      ~set_valued:[ false; false; false ]
      ~sizes:[ 300; 300; 300; 150 ] ()
  in
  let store, path = Generator.build spec in
  let heap = Storage.Heap.create ~size_of:(Generator.size_of spec) store in
  let env = (Core.Exec.make store heap) in
  let n = Gom.Path.length path in
  let orion = Core.Baselines.orion_nested_index store path in
  let gemstone = Core.Baselines.gemstone_path_index store path in
  let full = Core.Asr.create store path X.Full (bi (Gom.Path.arity path - 1)) in
  let stats = env.Core.Exec.stats in
  let targets j =
    Gom.Store.extent store (Printf.sprintf "T%d" j)
    |> List.filteri (fun i _ -> i mod 300 = 0)
    |> List.map (fun o -> Gom.Value.Ref o)
  in
  let measure index (i, j) =
    let ts = targets j in
    let total = ref 0 in
    List.iter
      (fun target ->
        Storage.Stats.begin_op stats;
        ignore (Core.Exec.backward ?index env path ~i ~j ~target);
        total := !total + Storage.Stats.op_accesses stats)
      ts;
    float_of_int !total /. float_of_int (max 1 (List.length ts))
  in
  let rows =
    List.map
      (fun (label, range) ->
        ( label,
          [ measure (Some orion) range; measure (Some gemstone) range;
            measure (Some full) range; measure None range ] ))
      [ (Printf.sprintf "bw(0,%d)" n, (0, n));
        (Printf.sprintf "bw(0,%d)" (n - 1), (0, n - 1));
        (Printf.sprintf "bw(1,%d)" n, (1, n)) ]
  in
  [ Table.make ~id:"abl2" ~title:"Baselines vs decomposed full ASR (avg pages/query)"
      ~x_label:"query" ~columns:[ "orion"; "gemstone"; "full bi"; "no index" ]
      ~notes:
        [ "orion (canonical, no dec) only covers (0,n); gemstone (left, binary) \
           only anchors at t0; the full ASR covers every range" ]
      rows ]

(* abl3: decomposition granularity, measured — query vs maintenance
   trade-off for the full extension. *)
let abl3 () =
  let spec = sim_spec () in
  let probe_store, probe_path = Generator.build spec in
  ignore probe_store;
  let m = Gom.Path.arity probe_path - 1 in
  let n = Gom.Path.length probe_path in
  let decs =
    [ ("no dec", nodec m); ("(0,2,m)", D.make ~m [ 0; 2; m ]);
      ("(0,4,m)", D.make ~m [ 0; 4; m ]); ("binary", bi m) ]
  in
  let rows =
    List.map
      (fun (label, dec) ->
        let store, path = Generator.build spec in
        let heap = Storage.Heap.create ~size_of:(Generator.size_of spec) store in
        let env = (Core.Exec.make store heap) in
        let mgr = Core.Maintenance.create env in
        let a = Core.Asr.create store path X.Full dec in
        Core.Maintenance.register mgr a;
        let stats = env.Core.Exec.stats in
        (* Query cost. *)
        let targets =
          Gom.Store.extent store (Printf.sprintf "T%d" n)
          |> List.filteri (fun i _ -> i mod 400 = 0)
          |> List.map (fun o -> Gom.Value.Ref o)
        in
        let qtotal = ref 0 in
        List.iter
          (fun target ->
            Storage.Stats.begin_op stats;
            ignore (Core.Exec.backward_supported env a ~i:0 ~j:n ~target);
            qtotal := !qtotal + Storage.Stats.op_accesses stats)
          targets;
        let qavg = float_of_int !qtotal /. float_of_int (max 1 (List.length targets)) in
        (* Update cost. *)
        let srcs = Array.of_list (Gom.Store.extent store "T2") in
        let tgts = Array.of_list (Gom.Store.extent store "T3") in
        let utotal = ref 0 and ops = ref 0 in
        for x = 0 to 7 do
          let src = srcs.(x * 11 mod Array.length srcs) in
          match Gom.Store.get_attr store src "A3" with
          | Gom.Value.Ref set ->
            let tgt = tgts.(x * 17 mod Array.length tgts) in
            if not (List.mem (Gom.Value.Ref tgt) (Gom.Store.elements store set)) then begin
              Gom.Store.insert_elem store set (Gom.Value.Ref tgt);
              utotal := !utotal + Core.Maintenance.last_event_cost mgr;
              incr ops
            end
          | _ -> ()
        done;
        let uavg = if !ops = 0 then 0. else float_of_int !utotal /. float_of_int !ops in
        (label, [ qavg; uavg; float_of_int (Core.Asr.total_pages a) ]))
      decs
  in
  [ Table.make ~id:"abl3"
      ~title:"Decomposition granularity (full extension), measured"
      ~x_label:"decomposition" ~columns:[ "query pages"; "update pages"; "storage pages" ]
      ~notes:
        [ "coarse decompositions favour queries, fine ones cost more tree updates \
           but less storage - the trade-off behind figures 14-17" ]
      rows ]

(* abl4: warm buffers.  The paper's model charges every operation cold
   (Yao's formula, per-operation distinct pages).  With an LRU pool,
   repeated navigational scans eventually run warm — how big must the
   pool be before "no support" stops hurting, and does the index still
   win? *)
let abl4 () =
  let spec = sim_spec () in
  let run_with capacity =
    let store, path = Generator.build spec in
    let heap = Storage.Heap.create ~size_of:(Generator.size_of spec) store in
    let stats = Storage.Stats.create ~buffer_capacity:capacity () in
    let env = Core.Exec.make ~stats store heap in
    let n = Gom.Path.length path in
    let m = Gom.Path.arity path - 1 in
    let a = Core.Asr.create store path X.Full (bi m) in
    let targets =
      Gom.Store.extent store (Printf.sprintf "T%d" n)
      |> List.filteri (fun i _ -> i mod 640 = 0)
      |> List.map (fun o -> Gom.Value.Ref o)
    in
    (* Each target queried four times: warm repetitions dominate. *)
    let script = List.concat_map (fun t -> [ t; t; t; t ]) targets in
    let measure f =
      let total = ref 0 in
      List.iter
        (fun target ->
          Storage.Stats.begin_op stats;
          f target;
          total := !total + Storage.Stats.op_accesses stats)
        script;
      float_of_int !total /. float_of_int (max 1 (List.length script))
    in
    let scan =
      measure (fun target ->
          ignore (Core.Exec.backward_scan env path ~i:0 ~j:n ~target))
    in
    let sup =
      measure (fun target ->
          ignore (Core.Exec.backward_supported env a ~i:0 ~j:n ~target))
    in
    (scan, sup)
  in
  let rows =
    List.map
      (fun cap ->
        let scan, sup = run_with cap in
        (string_of_int cap, [ scan; sup ]))
      [ 0; 64; 256; 1024; 4096 ]
  in
  [ Table.make ~id:"abl4" ~title:"Warm LRU buffer: repeated Q(0,3)(bw), avg pages/query"
      ~x_label:"buffer pages" ~columns:[ "no support"; "full bi" ]
      ~notes:
        [ "capacity 0 is the paper's cold model; a pool large enough to hold the \
           traversed extents makes repeated scans cheap, but the index wins cold \
           and stays ahead until the whole working set is resident" ]
      rows ]

(* ------------------------------------------------------------------ *)

let all =
  [
    { id = "fig4"; title = "Access relation sizes"; section = "4.4.1"; run = fig4 };
    { id = "fig5"; title = "Sizes vs d_i"; section = "4.4.2"; run = fig5 };
    { id = "fig6"; title = "Backward query costs"; section = "5.9.1"; run = fig6 };
    { id = "fig7"; title = "Query cost vs object size"; section = "5.9.2"; run = fig7 };
    { id = "fig8"; title = "Which queries are supported"; section = "5.9.3"; run = fig8 };
    { id = "fig9"; title = "Favouring can/left"; section = "5.9.4"; run = fig9 };
    { id = "fig11"; title = "Update costs ins_3"; section = "6.3.1"; run = fig11 };
    { id = "fig12"; title = "Update costs ins_3 (2nd profile)"; section = "6.3.2"; run = fig12 };
    { id = "fig13"; title = "Update costs vs object size"; section = "6.3.3"; run = fig13 };
    { id = "fig14"; title = "Operation mix, binary dec"; section = "6.4.2"; run = fig14 };
    { id = "fig15"; title = "Operation mix, dec (0,3,4)"; section = "6.4.3"; run = fig15 };
    { id = "fig16"; title = "Left vs full"; section = "6.4.4"; run = fig16 };
    { id = "fig17"; title = "Right vs full"; section = "6.4.5"; run = fig17 };
    { id = "val1"; title = "Model vs simulation: queries"; section = "extension"; run = val1 };
    { id = "val2"; title = "Model vs simulation: sizes"; section = "extension"; run = val2 };
    { id = "val3"; title = "Simulated update costs (fig11 counterpart)"; section = "extension"; run = val3 };
    { id = "val4"; title = "Simulated query costs (fig6 counterpart)"; section = "extension"; run = val4 };
    { id = "val5"; title = "Batched vs per-probe execution"; section = "extension"; run = val5 };
    { id = "abl1"; title = "Ablation: partition sharing (5.4)"; section = "ablation"; run = abl1 };
    { id = "abl2"; title = "Ablation: subsumed baselines"; section = "ablation"; run = abl2 };
    { id = "abl3"; title = "Ablation: decomposition granularity"; section = "ablation"; run = abl3 };
    { id = "abl4"; title = "Ablation: warm buffer pool"; section = "ablation"; run = abl4 };
  ]

let find id = List.find_opt (fun e -> String.equal e.id id) all

let run_and_render ppf e =
  List.iter (Table.render ppf) (e.run ())
