exception Replication_error of string

let error fmt = Format.kasprintf (fun s -> raise (Replication_error s)) fmt

let read_all path =
  if not (Sys.file_exists path) then ""
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))

type t = {
  db : Durability.Db.t;
  frame_bytes : int;
  digest_every : int;
  mutable next_seq : int;
  mutable sent : (int * Frame.t) list;  (* unacked, newest first *)
  mutable resend_from : int option;
  mutable shipped_gen : int;  (* 0 = nothing shipped yet *)
  mutable shipped_off : int;
  (* Incremental committed-prefix tracking of our own log: feed only the
     file's new bytes, never rescan history. *)
  mutable scanner : Durability.Wal.Scanner.t;
  mutable scan_gen : int;
  mutable read_off : int;
  mutable committed : int;
  mutable data_since_digest : int;
}

let create ?(frame_bytes = 4096) ?(digest_every = 8) db =
  if frame_bytes < 1 then invalid_arg "Primary.create: frame_bytes < 1";
  {
    db;
    frame_bytes;
    digest_every;
    next_seq = 0;
    sent = [];
    resend_from = None;
    shipped_gen = 0;
    shipped_off = 0;
    scanner = Durability.Wal.Scanner.create ();
    scan_gen = 0;
    read_off = 0;
    committed = 0;
    data_since_digest = 0;
  }

let db t = t.db
let next_seq t = t.next_seq
let committed_bytes t = t.committed
let unacked t = List.length t.sent
let resending t = Option.is_some t.resend_from
let lag t = max 0 (t.committed - t.shipped_off)

(* Refresh the committed watermark from our own log file and return the
   file's full contents (the shipping loop slices frames out of it). *)
let refresh t =
  let gen = Durability.Db.generation t.db in
  if gen <> t.scan_gen then begin
    t.scanner <- Durability.Wal.Scanner.create ();
    t.scan_gen <- gen;
    t.read_off <- 0
  end;
  let text = read_all (Durability.Db.wal_file (Durability.Db.dir t.db) gen) in
  let len = String.length text in
  if len > t.read_off then begin
    (try
       Durability.Wal.Scanner.feed t.scanner
         (String.sub text t.read_off (len - t.read_off))
     with Durability.Wal.Scanner.Bad_record { recno; off } ->
       error "primary log %d corrupt at record %d (byte %d)" gen recno off);
    ignore (Durability.Wal.Scanner.take_groups t.scanner);
    t.read_off <- len
  end;
  t.committed <- Durability.Wal.Scanner.committed_bytes t.scanner;
  text

(* Assign a sequence number, remember the frame for rewind, ship it.
   If the channel refuses (partition), the frame is already buffered:
   arm the resend pointer so a later ship retries it. *)
let send_frame t ch payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let f = { Frame.seq; payload } in
  t.sent <- (seq, f) :: t.sent;
  try Channel.send ch f
  with e ->
    t.resend_from <-
      Some (match t.resend_from with Some r -> min r seq | None -> seq);
    raise e

let resend t ch =
  match t.resend_from with
  | None -> 0
  | Some from ->
    let pending =
      List.filter (fun (s, _) -> s >= from) t.sent
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let n = ref 0 in
    List.iter
      (fun (s, f) ->
        (* If this send raises, resume exactly here next time. *)
        t.resend_from <- Some s;
        Channel.send ch f;
        incr n)
      pending;
    t.resend_from <- None;
    !n

let ship_digest t ch =
  (* A digest asserts "my store equals the committed prefix ending at
     [off]" — only true outside an open transaction, i.e. when the
     scanner has no pending records past the committed point. *)
  if Durability.Wal.Scanner.pending_records t.scanner = 0 && t.shipped_gen > 0
  then begin
    let specs = Durability.Db.asr_specs t.db in
    let asrs = Durability.Db.asrs t.db in
    let asr_crcs =
      List.map2
        (fun spec a -> (Durability.Db.spec_to_string spec, Digest.of_asr a))
        specs asrs
    in
    send_frame t ch
      (Frame.Digest_frame
         {
           gen = t.shipped_gen;
           off = t.committed;
           store_crc = Digest.store (Durability.Db.store t.db);
           asr_crcs;
         });
    t.data_since_digest <- 0;
    true
  end
  else false

let ship t ch =
  let n = ref 0 in
  n := resend t ch;
  let gen = Durability.Db.generation t.db in
  let text = refresh t in
  if gen <> t.shipped_gen then begin
    (* Generation rotated under the replica (or nothing shipped yet):
       re-seed it with the checkpoint image; the log restarts at 0. *)
    let snapshot =
      read_all (Durability.Db.snapshot_file (Durability.Db.dir t.db) gen)
    in
    if snapshot = "" then error "generation %d snapshot missing" gen;
    let specs =
      List.map Durability.Db.spec_to_string (Durability.Db.asr_specs t.db)
    in
    send_frame t ch (Frame.Reset { gen; snapshot; specs });
    incr n;
    t.shipped_gen <- gen;
    t.shipped_off <- 0;
    t.data_since_digest <- 0
  end;
  if t.shipped_off > t.committed then
    error "replica claims offset %d past our committed prefix %d" t.shipped_off
      t.committed;
  while t.shipped_off < t.committed do
    let len = min t.frame_bytes (t.committed - t.shipped_off) in
    let bytes = String.sub text t.shipped_off len in
    let off = t.shipped_off in
    (* Advance first: the frame owns these bytes now — if the send is
       refused, the armed resend pointer retries the buffered frame. *)
    t.shipped_off <- t.shipped_off + len;
    t.data_since_digest <- t.data_since_digest + 1;
    send_frame t ch (Frame.Wal_slice { gen; off; bytes });
    incr n
  done;
  (* Digests assert the state at the committed offset, so they may only
     ride behind a fully shipped prefix — never between its slices. *)
  if
    t.digest_every > 0
    && t.data_since_digest >= t.digest_every
    && t.shipped_off = t.committed
  then if ship_digest t ch then incr n;
  !n

let attach t ~gen ~off =
  (* The replica's durable byte offset is the authority on what it
     holds; any frames buffered for a previous connection describe
     stale slices and must not resend over the fresh stream. *)
  t.sent <- [];
  t.resend_from <- None;
  if gen > 0 && gen = Durability.Db.generation t.db then begin
    t.shipped_gen <- gen;
    t.shipped_off <- off
  end

let ack t ~seq = t.sent <- List.filter (fun (s, _) -> s > seq) t.sent

let rewind t ~seq =
  if List.exists (fun (s, _) -> s >= seq) t.sent then
    t.resend_from <-
      Some (match t.resend_from with Some r -> min r seq | None -> seq)
