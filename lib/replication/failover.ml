let read_all path =
  if not (Sys.file_exists path) then ""
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))

type divergence =
  | Log_prefix_mismatch of { byte : int }
  | Log_beyond_primary of { bytes : int; primary_bytes : int }
  | Generation_skew of { replica_gen : int; primary_gen : int }
  | Snapshot_mismatch of { gen : int }
  | Store_digest_mismatch of { off : int; expected : string; actual : string }
  | Asr_digest_mismatch of {
      spec : string;
      off : int;
      expected : string;
      actual : string;
    }
  | Asr_rebuild_failed of { spec : string }
  | Scrub_divergences of { spec : string; count : int; first : string }
  | Primary_unreadable of { what : string }

let divergence_to_string = function
  | Log_prefix_mismatch { byte } ->
    Printf.sprintf "log prefix mismatch at byte %d: replica log is not a prefix of the primary's"
      byte
  | Log_beyond_primary { bytes; primary_bytes } ->
    Printf.sprintf
      "replica log holds %d committed bytes but the primary only has %d" bytes
      primary_bytes
  | Generation_skew { replica_gen; primary_gen } ->
    Printf.sprintf
      "generation skew: replica holds %d, primary checkpoint is %d (history unverifiable)"
      replica_gen primary_gen
  | Snapshot_mismatch { gen } ->
    Printf.sprintf "generation %d snapshot differs from the primary's" gen
  | Store_digest_mismatch { off; expected; actual } ->
    Printf.sprintf
      "store digest %s at committed byte %d, primary prefix digests to %s"
      actual off expected
  | Asr_digest_mismatch { spec; off; expected; actual } ->
    Printf.sprintf
      "asr %s digest %s at committed byte %d, primary prefix digests to %s"
      spec actual off expected
  | Asr_rebuild_failed { spec } ->
    Printf.sprintf "asr %s rebuilt from the recovered base failed verification"
      spec
  | Scrub_divergences { spec; count; first } ->
    Printf.sprintf "asr %s: %d scrub divergence(s), first: %s" spec count first
  | Primary_unreadable { what } ->
    Printf.sprintf "primary files unreadable for verification: %s" what

type report = {
  f_dir : string;
  f_generation : int;
  f_recovery : Durability.Db.report;
  f_committed_bytes : int;
  f_store_digest : string;
  f_asr_digests : (string * string) list;
  f_checked_against : string option;
  f_divergences : divergence list;
}

let promoted r = r.f_divergences = []

let report_to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "promotion of %s (generation %d): %s\n" r.f_dir
       r.f_generation
       (if promoted r then "clean" else "DIVERGED"));
  Buffer.add_string b
    (Printf.sprintf
       "  replayed %d records, truncated %d bytes, committed prefix %d bytes\n"
       r.f_recovery.Durability.Db.records_replayed
       r.f_recovery.Durability.Db.bytes_truncated r.f_committed_bytes);
  Buffer.add_string b (Printf.sprintf "  store digest %s\n" r.f_store_digest);
  List.iter
    (fun (spec, d) -> Buffer.add_string b (Printf.sprintf "  asr %s digest %s\n" spec d))
    r.f_asr_digests;
  (match r.f_checked_against with
  | Some p -> Buffer.add_string b (Printf.sprintf "  verified against %s\n" p)
  | None -> Buffer.add_string b "  no primary to verify against\n");
  List.iter
    (fun d -> Buffer.add_string b ("  divergence: " ^ divergence_to_string d ^ "\n"))
    r.f_divergences;
  Buffer.contents b

let report_to_json r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"dir\": %S, \"generation\": %d, \"promoted\": %b, \
        \"records_replayed\": %d, \"bytes_truncated\": %d, \
        \"committed_bytes\": %d, \"store_digest\": %S, \"asr_digests\": {"
       r.f_dir r.f_generation (promoted r)
       r.f_recovery.Durability.Db.records_replayed
       r.f_recovery.Durability.Db.bytes_truncated r.f_committed_bytes
       r.f_store_digest);
  List.iteri
    (fun i (spec, d) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "%S: %S" spec d))
    r.f_asr_digests;
  Buffer.add_string b "}, \"checked_against\": ";
  (match r.f_checked_against with
  | Some p -> Buffer.add_string b (Printf.sprintf "%S" p)
  | None -> Buffer.add_string b "null");
  Buffer.add_string b ", \"divergences\": [";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "%S" (divergence_to_string d)))
    r.f_divergences;
  Buffer.add_string b "]}";
  Buffer.contents b

(* Rebuild the state the primary's own files describe at [prefix_len]
   committed bytes: its snapshot plus the replay of that log prefix.
   The replica's byte-for-byte prefix equality has already been
   checked, so any digest difference below indicts the replica's
   {e materialisation} of the history (snapshot rot, replay or
   maintenance defect), not the history itself. *)
let reconstruct_prefix ~snapshot ~log ~prefix_len =
  let store = Gom.Serial.store_of_string snapshot in
  let scanner = Durability.Wal.Scanner.create () in
  Durability.Wal.Scanner.feed scanner (String.sub log 0 prefix_len);
  List.iter
    (fun g ->
      ignore
        (Durability.Wal.replay store g.Durability.Wal.Scanner.g_records))
    (Durability.Wal.Scanner.take_groups scanner);
  store

let check_against_primary ~dir ~pdir db divs =
  let gen = Durability.Db.generation db in
  let pgen, _ = Durability.Db.read_manifest pdir in
  if pgen <> gen then
    divs := Generation_skew { replica_gen = gen; primary_gen = pgen } :: !divs
  else begin
    let psnap = read_all (Durability.Db.snapshot_file pdir gen) in
    let rsnap = read_all (Durability.Db.snapshot_file dir gen) in
    if psnap <> rsnap then divs := Snapshot_mismatch { gen } :: !divs;
    let plog = read_all (Durability.Db.wal_file pdir gen) in
    let rlog = read_all (Durability.Db.wal_file dir gen) in
    let rlen = String.length rlog and plen = String.length plog in
    if rlen > plen then
      divs := Log_beyond_primary { bytes = rlen; primary_bytes = plen } :: !divs
    else begin
      let diff = ref None in
      (try
         for i = 0 to rlen - 1 do
           if rlog.[i] <> plog.[i] then begin
             diff := Some i;
             raise Exit
           end
         done
       with Exit -> ());
      match !diff with
      | Some byte -> divs := Log_prefix_mismatch { byte } :: !divs
      | None ->
        if psnap = rsnap && psnap <> "" then begin
          match
            reconstruct_prefix ~snapshot:psnap ~log:plog ~prefix_len:rlen
          with
          | exception Gom.Serial.Corrupt m ->
            divs := Primary_unreadable { what = "snapshot: " ^ m } :: !divs
          | exception Durability.Wal.Scanner.Bad_record { recno; off } ->
            divs :=
              Primary_unreadable
                {
                  what =
                    Printf.sprintf "log record %d (byte %d) fails its frame check"
                      recno off;
                }
              :: !divs
          | exception Durability.Wal.Replay_error m ->
            divs := Primary_unreadable { what = "log replay: " ^ m } :: !divs
          | pstore ->
            let expected = Digest.store pstore in
            let actual = Digest.store (Durability.Db.store db) in
            if not (Int32.equal expected actual) then
              divs :=
                Store_digest_mismatch
                  {
                    off = rlen;
                    expected = Digest.to_hex expected;
                    actual = Digest.to_hex actual;
                  }
                :: !divs;
            List.iter2
              (fun spec a ->
                let path, kind, _ = Durability.Db.spec_components pstore spec in
                let expected =
                  Digest.extension (Core.Extension.compute pstore path kind)
                in
                let actual = Digest.of_asr a in
                if not (Int32.equal expected actual) then
                  divs :=
                    Asr_digest_mismatch
                      {
                        spec = Durability.Db.spec_to_string spec;
                        off = rlen;
                        expected = Digest.to_hex expected;
                        actual = Digest.to_hex actual;
                      }
                    :: !divs)
              (Durability.Db.asr_specs db)
              (Durability.Db.asrs db)
        end
    end
  end

let promote ?primary_dir ~dir () =
  if not (Sys.file_exists (Replica.marker_file dir)) then
    raise
      (Replica.Replica_error
         (dir ^ ": no REPLICA marker — refusing to promote a non-replica"));
  (* Step 1 is literally crash recovery: chop the torn tail to the
     committed prefix, replay it, rebuild every registered ASR and
     verify each against a from-scratch extension computation. *)
  let db = Durability.Db.open_ ~dir () in
  let recovery =
    match Durability.Db.last_recovery db with
    | Some r -> r
    | None -> assert false
  in
  let divs = ref [] in
  List.iter
    (fun (spec, ok) ->
      if not ok then divs := Asr_rebuild_failed { spec } :: !divs)
    recovery.Durability.Db.asr_checks;
  (* Step 2: scrubber audit of every partition tree, refcounts
     included — rebuild verification plus physical-layout audit. *)
  List.iter2
    (fun spec a ->
      let r = Integrity.Scrub.run a in
      if not (Integrity.Scrub.clean r) then
        divs :=
          Scrub_divergences
            {
              spec = Durability.Db.spec_to_string spec;
              count = List.length r.Integrity.Scrub.r_divergences;
              first =
                Integrity.Scrub.divergence_to_string
                  (List.hd r.Integrity.Scrub.r_divergences);
            }
          :: !divs)
    (Durability.Db.asr_specs db)
    (Durability.Db.asrs db);
  (* Step 3: digest comparison against the dead primary's files. *)
  (match primary_dir with
  | Some pdir -> check_against_primary ~dir ~pdir db divs
  | None -> ());
  let committed_bytes =
    String.length
      (read_all (Durability.Db.wal_file dir (Durability.Db.generation db)))
  in
  let report =
    {
      f_dir = dir;
      f_generation = Durability.Db.generation db;
      f_recovery = recovery;
      f_committed_bytes = committed_bytes;
      f_store_digest = Digest.to_hex (Digest.store (Durability.Db.store db));
      f_asr_digests =
        List.map2
          (fun spec a ->
            (Durability.Db.spec_to_string spec, Digest.to_hex (Digest.of_asr a)))
          (Durability.Db.asr_specs db)
          (Durability.Db.asrs db);
      f_checked_against = primary_dir;
      f_divergences = List.rev !divs;
    }
  in
  if promoted report then begin
    (* The commit point of failover: once the marker is gone, the
       directory is an ordinary durable base and the handle may write. *)
    Sys.remove (Replica.marker_file dir);
    Ok (db, report)
  end
  else begin
    Durability.Db.close db;
    Error report
  end
