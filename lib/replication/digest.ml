let store s = Gom.Crc32.string (Gom.Serial.store_to_string s)

let extension rel =
  (* Tuples come back in Tuple.compare order, so the digest is a
     canonical function of the set, independent of construction order
     or physical layout. *)
  List.fold_left
    (fun crc tu ->
      Gom.Crc32.string ~init:crc (Relation.Tuple.to_string tu ^ "\n"))
    (Gom.Crc32.string "")
    (Relation.to_list rel)

let of_asr a = extension (Core.Asr.extension_relation a)
let to_hex = Gom.Crc32.to_hex
