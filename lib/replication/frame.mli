(** The replication wire format: one self-verifying frame per message.

    {2 Format}

    A frame is a header line plus a raw body:
    {v frame <seq> <body-length> <crc32-hex>\n<body> v}

    The CRC covers the body, so in-flight corruption anywhere in the
    payload is detected before any field is trusted — the same framing
    discipline as the write-ahead log's records, one level up.  The body
    begins with a kind line:

    {v
    wal <gen> <off>\n<bytes>        a slice of generation <gen>'s log,
                                    starting at file offset <off>
    reset <gen> <n>\n<spec>*\n<snapshot>
                                    begin generation <gen>: n manifest
                                    spec lines, then the snapshot image
    digest <gen> <off> <crc> <n>\n(<crc> <spec>\n)*
                                    the primary's store digest and per-
                                    ASR extension digests, valid exactly
                                    at committed offset <off>
    v}

    Slices carry {e file offsets}, not record numbers: a replica's apply
    progress is a byte position in the primary's own log coordinates,
    which makes resume, gap detection and divergence messages exact. *)

type payload =
  | Wal_slice of { gen : int; off : int; bytes : string }
  | Reset of { gen : int; snapshot : string; specs : string list }
  | Digest_frame of {
      gen : int;
      off : int;
      store_crc : int32;
      asr_crcs : (string * int32) list;
          (** keyed by the manifest spec line ({!Durability.Db.spec_to_string}) *)
    }

type t = { seq : int; payload : payload }

type error = { at : int; reason : string }
(** A decode failure, located at the byte offset (within the encoded
    frame) where trust ended. *)

val error_to_string : error -> string
val encode : t -> string

val decode : string -> (t, error) result
(** Parse and verify one encoded frame.  Never raises: damaged input —
    including {!Durability.Fault.channel_fault.Corrupt_frame} flips —
    comes back as a located [Error]. *)

val describe : t -> string
(** One-line human description, for logs and error messages. *)
