(** The hot standby: tails shipped WAL slices into its own on-disk copy
    of the primary's layout, replays committed groups into a live
    store, maintains the registered ASRs through the deferred-delta
    machinery, and publishes copy-on-write epochs for snapshot-isolated
    reads — all while staying promotable at any byte.

    {2 Apply invariant}

    A slice's bytes are (1) CRC-verified at the frame level, (2)
    appended and synced to the replica's own [wal-<gen>.log] — so a
    replica killed mid-apply recovers from its files exactly like a
    crashed durable base — and only then (3) fed to an incremental
    {!Durability.Wal.Scanner} whose {e committed groups} replay into
    the store.  The store therefore always equals the replay of a
    committed prefix of the primary's history: the same invariant
    crash recovery guarantees, maintained continuously.

    The replica's directory is the durable base layout plus a [REPLICA]
    marker file; promotion (see {!Failover}) removes the marker, after
    which the directory is an ordinary primary. *)

exception Replica_error of string
(** Misuse or unrecoverable local damage (distinct from a {!reject},
    which the protocol reports to the primary and survives). *)

type t

val marker_file : string -> string
(** [marker_file dir] — the [REPLICA] file whose presence tags [dir]
    as a replica; promotion removes it. *)

val create :
  ?fault:Durability.Fault.t ->
  ?stats:Storage.Stats.t ->
  ?policy:Core.Maintenance.flush_policy ->
  ?publish_every:int ->
  dir:string ->
  unit ->
  t
(** Open (or resume) a replica rooted at [dir].  A fresh directory
    waits for a [Reset] frame; a directory holding a manifest and the
    [REPLICA] marker resumes: torn log tail chopped to the last intact
    record, committed prefix replayed, ASRs rebuilt from the manifest.
    [?policy] is the maintenance flush policy (default
    [Every_k_events 32]); [?publish_every] (default 1) is the epoch
    publication cadence in applied frames; [?fault] injects faults
    into the replica's own log writes (crash sweeps); [?stats]
    receives [frames_applied]/[frames_retried].
    @raise Replica_error if [dir] holds a durable base that is not a
    replica, or resume finds unrecoverable damage. *)

(** Why a frame was refused.  Every constructor is byte- or
    sequence-located; {!reject_to_string} renders the message the CLI
    prints. *)
type reject =
  | Bad_frame of { at : int; reason : string }
      (** frame decode/CRC failure (transport damage) *)
  | Stale of { expected : int; got : int }
      (** duplicate of an already-applied frame *)
  | Gap of { expected : int; got : int }
      (** a frame went missing; primary must rewind to [expected] *)
  | Wrong_gen of { expected : int; got : int }
      (** slice for a generation we do not hold (missed checkpoint) *)
  | Misaligned of { expected : int; got : int }
      (** slice offset does not continue our log *)
  | Diverged of { off : int; what : string }
      (** digest mismatch or unreplayable committed group: the replica
          refuses all further frames until re-seeded *)

type outcome =
  | Applied of { groups : int; records : int }
      (** accepted; [groups] committed groups ([records] mutations)
          entered the store *)
  | Rejected of reject

val reject_to_string : reject -> string

val offer : t -> string -> outcome
(** Feed one encoded frame off the channel.  [Applied] advances the
    expected sequence; [Rejected] does not (counted [frames_retried]).
    @raise Durability.Fault.Crash per the replica-side fault plan
    (crash sweeps): the in-memory replica is then dead, and a new
    {!create} over the same directory resumes from its files. *)

val env :
  ?deadline:Core.Deadline.t ->
  ?max_lag_bytes:int ->
  t ->
  (Core.Exec.env, [ `Unseeded | `Lagging of int ]) result
(** A query environment over the latest published epoch — the
    bounded-staleness read path.  [Error (`Lagging n)] when the known
    replication lag exceeds [max_lag_bytes]; [?deadline] arms the
    environment's cooperative cancellation like any serving env. *)

val lag_bytes : t -> int
(** Primary committed bytes known of (high-water mark from digests and
    {!note_watermark}) minus bytes applied here. *)

val note_watermark : t -> int -> unit
(** Teach the replica the primary's committed size (the session relays
    it each round; digest frames carry it too). *)

val seeded : t -> bool
val dir : t -> string
val generation : t -> int
val expected_seq : t -> int

val expect : t -> seq:int -> unit
(** [expect t ~seq] adopts the primary's sequence counter (the session
    calls this once at attach): sequence numbers are per-connection,
    while byte offsets — which are durable — keep guarding slice
    placement. *)

val wal_bytes : t -> int
val applied_bytes : t -> int
val applied_records : t -> int

val epochs : t -> int
(** Copy-on-write epochs published so far. *)

val diverged : t -> string option
(** Set once a digest check or replay fails; sticky until re-seeded. *)

val store : t -> Gom.Store.t
(** The live replayed store (tests compare it to the primary's).
    @raise Replica_error before the first [Reset]. *)

val asrs : t -> Core.Asr.t list
(** The maintained ASRs, in manifest order ([[]] before seeding). *)

val snapshot : t -> Parallel.Snapshot.t option
(** The latest published epoch. *)

val flush_maintenance : t -> int
(** Drain the deferred-delta buffers now (tests; publication and
    mirrored primary flush barriers do it organically). *)

val close : t -> unit
(** Close the log file handle.  Idempotent. *)
