(** The fault-injectable shipping channel: an in-process, in-order
    transport whose misbehaviour is scripted by
    {!Durability.Fault.channel_plan}s, so every retry and reconciliation
    path is deterministically reproducible.

    Each {!send} counts one frame against the environment's channel
    plans and acts on the verdict: deliver, drop (counted shipped {e
    and} dropped), duplicate (two copies, both counted shipped),
    reorder (hold the frame back one slot — an adjacent swap), or
    corrupt (flip trailing bytes of the encoded frame, which the
    receiver's CRC rejects).  A [Partition] plan makes {!send} raise
    {!Durability.Fault.Retryable} before anything ships — the class the
    session's circuit breaker absorbs. *)

type t

val create : ?fault:Durability.Fault.t -> ?stats:Storage.Stats.t -> unit -> t
(** [?fault] defaults to a fault-free environment; [?stats] receives
    the [frames_shipped]/[frames_dropped] accounting. *)

val send : t -> Frame.t -> unit
(** Encode and ship one frame.
    @raise Durability.Fault.Retryable while a partition plan is live. *)

val recv : t -> string option
(** Next delivered encoded frame, in (possibly faulted) wire order. *)

val in_flight : t -> int
(** Frames delivered-but-not-yet-received (the held-back frame, if
    any, included). *)

val sends : t -> int
(** Successful [send] calls so far (after fault classification, i.e.
    excluding partition-refused attempts). *)

val discard : t -> int
(** Teardown: drop everything in flight, counting each copy as
    [frames_dropped], and return how many were lost.  Models killing
    the link with frames still buffered in it. *)

val chaos : seed:int -> upto:int -> Durability.Fault.channel_plan list
(** A seeded random plan hitting roughly one in six of the first
    [upto] frames with a random fault class — the CLI's [--chaos] and
    the QCheck property both draw from this generator so failures
    replay from the printed seed. *)
