(** The replication pump: one primary, one channel, one replica, and a
    circuit breaker with seeded jittered backoff guarding the shipping
    side against partitions.

    Each {!step} ships newly committed bytes (and any rewound resends)
    through the breaker, then drains every delivered frame into the
    replica: applied frames are acknowledged back to the primary's
    resend buffer, and rejects that mean loss or damage (gaps,
    misalignment, CRC failures) rewind it.  Partition faults surface as
    {!Durability.Fault.Retryable} out of the channel, trip the breaker
    after its threshold, and reconnect via its half-open probe — no
    replication-specific retry code exists. *)

exception Stalled of string
(** {!drain} exceeded its step budget without quiescing. *)

type t

val create :
  ?config:Resilience.Breaker.config ->
  ?seed:int ->
  ?clock:(unit -> float) ->
  ?stats:Storage.Stats.t ->
  ?stop_after_sends:int ->
  primary:Primary.t ->
  channel:Channel.t ->
  replica:Replica.t ->
  unit ->
  t
(** [?clock] defaults to a deterministic tick-per-call clock so tests
    replay exactly; [?seed] fixes the breaker's jitter stream.
    [?stop_after_sends:k] kills the primary after the channel's [k]'th
    send — frames already in flight may still deliver, nothing new
    ships — which is how the failover smoke stages a mid-churn death
    at a chosen frame. *)

val step : t -> int
(** One pump round; returns frames applied by the replica. *)

val drain : ?max_steps:int -> t -> int
(** Pump until quiescent — nothing in flight, nothing to resend, and
    the primary fully shipped (or dead) — or until the replica flags
    divergence.  Returns steps taken.
    @raise Stalled past [max_steps] (default 10000). *)

val kill : t -> int
(** Kill the primary now {e and} the link with it: no further
    shipping, and every in-flight frame is dropped (counted).  Returns
    the frames lost. *)

val quiescent : t -> bool
val breaker : t -> Resilience.Breaker.t
val steps : t -> int
