exception Replica_error of string

let error fmt = Format.kasprintf (fun s -> raise (Replica_error s)) fmt
let marker_file dir = Filename.concat dir "REPLICA"
let marker_header = "asr-replica v1"

let read_all path =
  if not (Sys.file_exists path) then ""
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))

(* Small control files are replaced atomically, same discipline as the
   durable base's manifest. *)
let atomic_write path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc contents;
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc));
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

type state = {
  rs_store : Gom.Store.t;
  rs_mgr : Core.Maintenance.t;
  rs_source : Parallel.Snapshot.source;
  rs_specs : Durability.Db.spec list;
  mutable rs_snap : Parallel.Snapshot.t;
}

type t = {
  r_dir : string;
  fault : Durability.Fault.t;
  stats : Storage.Stats.t option;
  policy : Core.Maintenance.flush_policy;
  publish_every : int;
  mutable gen : int;  (* 0 = never seeded *)
  mutable expected_seq : int;
  mutable wal_bytes : int;  (* bytes accepted into our log copy *)
  mutable applied_off : int;  (* committed bytes replayed into the store *)
  mutable applied_records : int;
  mutable scanner : Durability.Wal.Scanner.t;
  mutable wal_out : Durability.Fault.file option;
  mutable state : state option;
  mutable watermark : int;  (* primary's committed bytes, as last heard *)
  mutable r_diverged : string option;
  mutable epochs : int;
  mutable applies_since_publish : int;
  mutable closed : bool;
}

type reject =
  | Bad_frame of { at : int; reason : string }
  | Stale of { expected : int; got : int }
  | Gap of { expected : int; got : int }
  | Wrong_gen of { expected : int; got : int }
  | Misaligned of { expected : int; got : int }
  | Diverged of { off : int; what : string }

type outcome = Applied of { groups : int; records : int } | Rejected of reject

let reject_to_string = function
  | Bad_frame { at; reason } ->
    Printf.sprintf "damaged frame (at byte %d: %s)" at reason
  | Stale { expected; got } ->
    Printf.sprintf "stale frame %d (expecting %d)" got expected
  | Gap { expected; got } ->
    Printf.sprintf "sequence gap: got %d, expecting %d" got expected
  | Wrong_gen { expected; got } ->
    Printf.sprintf "wrong generation %d (replica holds %d)" got expected
  | Misaligned { expected; got } ->
    Printf.sprintf "misaligned slice at byte %d (log stands at %d)" got expected
  | Diverged { off; what } ->
    Printf.sprintf "diverged at byte %d: %s" off what

let write_marker t =
  atomic_write (marker_file t.r_dir)
    (Printf.sprintf "%s\ngen %d\n" marker_header t.gen)

let build_state t store specs =
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
  let mgr = Core.Maintenance.create (Core.Exec.make store heap) in
  Core.Maintenance.set_policy mgr t.policy;
  let snap_specs =
    List.map
      (fun spec ->
        let path, kind, dec = Durability.Db.spec_components store spec in
        {
          Parallel.Snapshot.sp_path = path;
          sp_kind = kind;
          sp_decomposition = dec;
        })
      specs
  in
  let source =
    Parallel.Snapshot.source ~maintenance:mgr ~specs:snap_specs store
  in
  let snap = Parallel.Snapshot.advance source in
  t.epochs <- t.epochs + 1;
  { rs_store = store; rs_mgr = mgr; rs_source = source; rs_specs = specs;
    rs_snap = snap }

let open_wal t =
  (match t.wal_out with
  | Some f -> ( try Durability.Fault.close f with Sys_error _ -> ())
  | None -> ());
  t.wal_out <-
    Some
      (Durability.Fault.open_append t.fault
         (Durability.Db.wal_file t.r_dir t.gen))

(* Resume from our own files: load the generation snapshot, chop the
   local log back to its last intact record — a torn tail from a
   mid-frame kill is damage, but intact records of a still-open span
   are kept, because the next shipped slice completes them — and
   replay the committed prefix.  ASRs rebuild from the manifest specs,
   exactly like crash recovery of a durable base. *)
let resume t =
  let gen, specs = Durability.Db.read_manifest t.r_dir in
  let snap_path = Durability.Db.snapshot_file t.r_dir gen in
  if not (Sys.file_exists snap_path) then
    error "replica %s: generation %d snapshot missing" t.r_dir gen;
  let store =
    try Gom.Serial.store_of_string (read_all snap_path)
    with Gom.Serial.Corrupt m -> error "replica snapshot %d: %s" gen m
  in
  let wal_path = Durability.Db.wal_file t.r_dir gen in
  let scanned = Durability.Wal.scan wal_path in
  if scanned.Durability.Wal.total_bytes > scanned.Durability.Wal.valid_bytes
  then Unix.truncate wal_path scanned.Durability.Wal.valid_bytes;
  let text = read_all wal_path in
  let scanner = Durability.Wal.Scanner.create () in
  (try Durability.Wal.Scanner.feed scanner text
   with Durability.Wal.Scanner.Bad_record { recno; off } ->
     error "replica log %d corrupt at record %d (byte %d)" gen recno off);
  let groups = Durability.Wal.Scanner.take_groups scanner in
  let records = ref 0 in
  List.iter
    (fun g ->
      match Durability.Wal.replay store g.Durability.Wal.Scanner.g_records with
      | n -> records := !records + n
      | exception Durability.Wal.Replay_error m ->
        error "replica log %d: %s" gen m)
    groups;
  t.gen <- gen;
  t.scanner <- scanner;
  t.wal_bytes <- String.length text;
  t.applied_off <- Durability.Wal.Scanner.committed_bytes scanner;
  t.applied_records <- !records;
  t.state <- Some (build_state t store specs);
  open_wal t

let create ?fault ?stats ?(policy = Core.Maintenance.Every_k_events 32)
    ?(publish_every = 1) ~dir () =
  if publish_every < 1 then invalid_arg "Replica.create: publish_every < 1";
  let fault = match fault with Some f -> f | None -> Durability.Fault.real () in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let t =
    {
      r_dir = dir;
      fault;
      stats;
      policy;
      publish_every;
      gen = 0;
      expected_seq = 0;
      wal_bytes = 0;
      applied_off = 0;
      applied_records = 0;
      scanner = Durability.Wal.Scanner.create ();
      wal_out = None;
      state = None;
      watermark = 0;
      r_diverged = None;
      epochs = 0;
      applies_since_publish = 0;
      closed = false;
    }
  in
  let has_marker = Sys.file_exists (marker_file dir) in
  let has_manifest = Sys.file_exists (Durability.Db.manifest_file dir) in
  if has_manifest && not has_marker then
    error "%s holds a durable base, not a replica (no REPLICA marker)" dir;
  if has_manifest then resume t else write_marker t;
  t

(* ---------------- the apply path ---------------- *)

exception Bail of reject

let note f t = match t.stats with Some s -> f s | None -> ()

let diverge t ~off what =
  t.r_diverged <- Some (Printf.sprintf "byte %d: %s" off what);
  raise (Bail (Diverged { off; what }))

let publish t st =
  st.rs_snap <- Parallel.Snapshot.advance st.rs_source;
  t.epochs <- t.epochs + 1;
  t.applies_since_publish <- 0

let apply_reset t ~gen ~snapshot ~specs =
  if gen < t.gen then raise (Bail (Wrong_gen { expected = t.gen; got = gen }));
  let store =
    try Gom.Serial.store_of_string snapshot
    with Gom.Serial.Corrupt m ->
      raise (Bail (Bad_frame { at = 0; reason = "reset snapshot: " ^ m }))
  in
  let specs =
    List.map
      (fun line ->
        match Durability.Db.spec_of_string line with
        | Some s -> s
        | None ->
          raise
            (Bail (Bad_frame { at = 0; reason = "reset spec: " ^ line })))
      specs
  in
  let old_gen = t.gen in
  (* Materialise the new generation on disk before adopting it: the raw
     snapshot bytes (byte-identical to the primary's file), the
     manifest, an empty log. *)
  atomic_write (Durability.Db.snapshot_file t.r_dir gen) snapshot;
  (try Sys.remove (Durability.Db.wal_file t.r_dir gen) with Sys_error _ -> ());
  Durability.Db.write_manifest t.r_dir gen specs;
  t.gen <- gen;
  write_marker t;
  if old_gen > 0 && old_gen <> gen then begin
    (try Sys.remove (Durability.Db.snapshot_file t.r_dir old_gen)
     with Sys_error _ -> ());
    (try Sys.remove (Durability.Db.wal_file t.r_dir old_gen)
     with Sys_error _ -> ())
  end;
  t.scanner <- Durability.Wal.Scanner.create ();
  t.wal_bytes <- 0;
  t.applied_off <- 0;
  t.applied_records <- 0;
  t.applies_since_publish <- 0;
  t.state <- Some (build_state t store specs);
  open_wal t

let apply_slice t st ~gen ~off ~bytes =
  if gen <> t.gen then
    raise (Bail (Wrong_gen { expected = t.gen; got = gen }));
  if off <> t.wal_bytes then
    raise (Bail (Misaligned { expected = t.wal_bytes; got = off }));
  let file =
    match t.wal_out with
    | Some f -> f
    | None -> error "replica %s: no open log" t.r_dir
  in
  (* The verified bytes are durable before they are applied — a replica
     killed mid-apply recovers from its own files like any durable
     base.  [Fault.write] is where a crash-sweep plan fires. *)
  Durability.Fault.write file bytes;
  Durability.Fault.sync file;
  t.wal_bytes <- t.wal_bytes + String.length bytes;
  (try Durability.Wal.Scanner.feed t.scanner bytes
   with Durability.Wal.Scanner.Bad_record { recno; off } ->
     (* The frame's CRC held, so the damage is inside committed bytes
        the primary itself shipped: that is divergence, not transport
        noise. *)
     diverge t ~off (Printf.sprintf "record %d fails its frame check" recno));
  let groups = Durability.Wal.Scanner.take_groups t.scanner in
  let records = ref 0 in
  List.iter
    (fun g ->
      (match Durability.Wal.replay st.rs_store g.Durability.Wal.Scanner.g_records with
      | n -> records := !records + n
      | exception Durability.Wal.Replay_error m ->
        diverge t ~off:g.Durability.Wal.Scanner.g_end
          ("committed group does not replay: " ^ m));
      (* Mirror the primary's maintenance flush barriers, so the
         deferred-delta cadence tracks the primary's rather than
         drifting on its own. *)
      if
        List.exists
          (function Durability.Wal.Flush _ -> true | _ -> false)
          g.Durability.Wal.Scanner.g_records
      then ignore (Core.Maintenance.flush_all st.rs_mgr))
    groups;
  t.applied_off <- Durability.Wal.Scanner.committed_bytes t.scanner;
  t.applied_records <- t.applied_records + !records;
  if groups <> [] then begin
    t.applies_since_publish <- t.applies_since_publish + 1;
    if t.applies_since_publish >= t.publish_every then publish t st
  end;
  (List.length groups, !records)

let apply_digest t st ~gen ~off ~store_crc ~asr_crcs =
  if gen <> t.gen then
    raise (Bail (Wrong_gen { expected = t.gen; got = gen }));
  t.watermark <- max t.watermark off;
  if off > t.applied_off then
    raise (Bail (Misaligned { expected = t.applied_off; got = off }));
  if off = t.applied_off then begin
    let mine = Digest.store st.rs_store in
    if not (Int32.equal mine store_crc) then
      diverge t ~off
        (Printf.sprintf "store digest %s, primary says %s" (Digest.to_hex mine)
           (Digest.to_hex store_crc));
    let indexes = Parallel.Snapshot.source_indexes st.rs_source in
    let mine_by_spec =
      List.map2
        (fun spec a -> (Durability.Db.spec_to_string spec, a))
        st.rs_specs indexes
    in
    List.iter
      (fun (spec, theirs) ->
        match List.assoc_opt spec mine_by_spec with
        | None -> diverge t ~off (Printf.sprintf "no such asr: %s" spec)
        | Some a ->
          let mine = Digest.of_asr a in
          if not (Int32.equal mine theirs) then
            diverge t ~off
              (Printf.sprintf "asr %s digest %s, primary says %s" spec
                 (Digest.to_hex mine) (Digest.to_hex theirs)))
      asr_crcs
  end
  (* [off < applied_off]: a digest resent after a rewind refers to a
     boundary we already moved past; there is nothing to check it
     against, and the in-sequence copy was checked when it applied. *)

let offer t encoded =
  if t.closed then error "replica %s: closed" t.r_dir;
  let result =
    try
      (match t.r_diverged with
      | Some what -> raise (Bail (Diverged { off = t.applied_off; what }))
      | None -> ());
      match Frame.decode encoded with
      | Error { at; reason } -> raise (Bail (Bad_frame { at; reason }))
      | Ok { seq; payload } ->
        if seq < t.expected_seq then
          raise (Bail (Stale { expected = t.expected_seq; got = seq }));
        if seq > t.expected_seq then
          raise (Bail (Gap { expected = t.expected_seq; got = seq }));
        let groups, records =
          match payload with
          | Frame.Reset { gen; snapshot; specs } ->
            apply_reset t ~gen ~snapshot ~specs;
            (0, 0)
          | Frame.Wal_slice { gen; off; bytes } -> (
            match t.state with
            | None -> raise (Bail (Wrong_gen { expected = 0; got = gen }))
            | Some st -> apply_slice t st ~gen ~off ~bytes)
          | Frame.Digest_frame { gen; off; store_crc; asr_crcs } -> (
            match t.state with
            | None -> raise (Bail (Wrong_gen { expected = 0; got = gen }))
            | Some st ->
              apply_digest t st ~gen ~off ~store_crc ~asr_crcs;
              (0, 0))
        in
        t.expected_seq <- t.expected_seq + 1;
        Applied { groups; records }
    with Bail r -> Rejected r
  in
  (match result with
  | Applied _ -> note Storage.Stats.note_frame_applied t
  | Rejected _ -> note Storage.Stats.note_frame_retried t);
  result

(* ---------------- observation ---------------- *)

let dir t = t.r_dir
let generation t = t.gen
let expected_seq t = t.expected_seq

(* Sequence numbers are per-connection, not durable: a resumed replica
   (or a long-lived primary meeting a fresh replica) adopts the
   primary's counter at attach and relies on byte offsets — which ARE
   durable — to guard against misdirected slices. *)
let expect t ~seq = t.expected_seq <- seq
let wal_bytes t = t.wal_bytes
let applied_bytes t = t.applied_off
let applied_records t = t.applied_records
let diverged t = t.r_diverged
let epochs t = t.epochs
let note_watermark t bytes = t.watermark <- max t.watermark bytes
let lag_bytes t = max 0 (t.watermark - t.applied_off)
let seeded t = Option.is_some t.state

let store t =
  match t.state with
  | Some st -> st.rs_store
  | None -> error "replica %s: not seeded yet" t.r_dir

let asrs t =
  match t.state with
  | Some st -> Parallel.Snapshot.source_indexes st.rs_source
  | None -> []

let snapshot t = Option.map (fun st -> st.rs_snap) t.state

let flush_maintenance t =
  match t.state with
  | Some st -> Core.Maintenance.flush_all st.rs_mgr
  | None -> 0

let env ?deadline ?max_lag_bytes t =
  match t.state with
  | None -> Error `Unseeded
  | Some st -> (
    let lag = lag_bytes t in
    match max_lag_bytes with
    | Some m when lag > m -> Error (`Lagging lag)
    | _ -> Ok (Parallel.Snapshot.env ?deadline st.rs_snap))

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.wal_out with
    | Some f ->
      t.wal_out <- None;
      Durability.Fault.close f
    | None -> ()
  end
