type payload =
  | Wal_slice of { gen : int; off : int; bytes : string }
  | Reset of { gen : int; snapshot : string; specs : string list }
  | Digest_frame of {
      gen : int;
      off : int;
      store_crc : int32;
      asr_crcs : (string * int32) list;
    }

type t = { seq : int; payload : payload }
type error = { at : int; reason : string }

let error_to_string e =
  Printf.sprintf "frame error at byte %d: %s" e.at e.reason

(* ---------------- encoding ---------------- *)

let body_of_payload = function
  | Wal_slice { gen; off; bytes } ->
    Printf.sprintf "wal %d %d\n%s" gen off bytes
  | Reset { gen; snapshot; specs } ->
    let b = Buffer.create (String.length snapshot + 64) in
    Buffer.add_string b (Printf.sprintf "reset %d %d\n" gen (List.length specs));
    List.iter (fun s -> Buffer.add_string b (s ^ "\n")) specs;
    Buffer.add_string b snapshot;
    Buffer.contents b
  | Digest_frame { gen; off; store_crc; asr_crcs } ->
    let b = Buffer.create 128 in
    Buffer.add_string b
      (Printf.sprintf "digest %d %d %s %d\n" gen off
         (Gom.Crc32.to_hex store_crc)
         (List.length asr_crcs));
    List.iter
      (fun (spec, crc) ->
        Buffer.add_string b (Printf.sprintf "%s %s\n" (Gom.Crc32.to_hex crc) spec))
      asr_crcs;
    Buffer.contents b

let encode { seq; payload } =
  let body = body_of_payload payload in
  Printf.sprintf "frame %d %d %s\n%s" seq (String.length body)
    (Gom.Crc32.to_hex (Gom.Crc32.string body))
    body

(* ---------------- decoding ---------------- *)

let err at fmt = Format.kasprintf (fun reason -> Error { at; reason }) fmt

(* Split off the first line of [s] starting at [from]. *)
let first_line s from =
  match String.index_from_opt s from '\n' with
  | None -> None
  | Some nl -> Some (String.sub s from (nl - from), nl + 1)

let parse_body ~at seq body =
  match first_line body 0 with
  | None -> err at "frame body: missing kind line"
  | Some (kind_line, rest_off) -> (
    let rest () = String.sub body rest_off (String.length body - rest_off) in
    match String.split_on_char ' ' kind_line with
    | [ "wal"; gen_s; off_s ] -> (
      match (int_of_string_opt gen_s, int_of_string_opt off_s) with
      | Some gen, Some off when gen > 0 && off >= 0 ->
        Ok { seq; payload = Wal_slice { gen; off; bytes = rest () } }
      | _ -> err at "wal frame: malformed generation/offset")
    | [ "reset"; gen_s; n_s ] -> (
      match (int_of_string_opt gen_s, int_of_string_opt n_s) with
      | Some gen, Some n when gen > 0 && n >= 0 ->
        let rec specs acc k off =
          if k = 0 then Ok (List.rev acc, off)
          else
            match first_line body off with
            | None -> err (at + off) "reset frame: truncated spec list"
            | Some (line, off') -> specs (line :: acc) (k - 1) off'
        in
        (match specs [] n rest_off with
        | Error e -> Error e
        | Ok (specs, snap_off) ->
          let snapshot =
            String.sub body snap_off (String.length body - snap_off)
          in
          Ok { seq; payload = Reset { gen; snapshot; specs } })
      | _ -> err at "reset frame: malformed generation/count")
    | [ "digest"; gen_s; off_s; crc_s; n_s ] -> (
      match
        ( int_of_string_opt gen_s,
          int_of_string_opt off_s,
          Gom.Crc32.of_hex crc_s,
          int_of_string_opt n_s )
      with
      | Some gen, Some off, Some store_crc, Some n when gen > 0 && n >= 0 ->
        let rec crcs acc k off =
          if k = 0 then Ok (List.rev acc)
          else
            match first_line body off with
            | None -> err (at + off) "digest frame: truncated digest list"
            | Some (line, off') -> (
              match String.index_opt line ' ' with
              | None -> err (at + off) "digest frame: malformed digest line"
              | Some sp -> (
                let crc_hex = String.sub line 0 sp in
                let spec =
                  String.sub line (sp + 1) (String.length line - sp - 1)
                in
                match Gom.Crc32.of_hex crc_hex with
                | Some crc -> crcs ((spec, crc) :: acc) (k - 1) off'
                | None -> err (at + off) "digest frame: bad CRC %S" crc_hex))
        in
        (match crcs [] n rest_off with
        | Error e -> Error e
        | Ok asr_crcs ->
          Ok { seq; payload = Digest_frame { gen; off; store_crc; asr_crcs } })
      | _ -> err at "digest frame: malformed header fields")
    | kind :: _ -> err at "unknown frame kind %S" kind
    | [] -> err at "frame body: empty kind line")

let decode s =
  match first_line s 0 with
  | None -> err 0 "missing frame header terminator"
  | Some (header, body_start) -> (
    match String.split_on_char ' ' header with
    | [ "frame"; seq_s; len_s; crc_s ] -> (
      match
        (int_of_string_opt seq_s, int_of_string_opt len_s, Gom.Crc32.of_hex crc_s)
      with
      | Some seq, Some len, Some crc when seq >= 0 && len >= 0 ->
        let have = String.length s - body_start in
        if have <> len then
          err body_start "frame body: %d bytes, header declares %d" have len
        else
          let body = String.sub s body_start len in
          if not (Int32.equal (Gom.Crc32.string body) crc) then
            err body_start "frame CRC mismatch over %d-byte body" len
          else parse_body ~at:body_start seq body
      | _ -> err 0 "malformed frame header %S" header)
    | _ -> err 0 "malformed frame header %S" header)

let describe { seq; payload } =
  match payload with
  | Wal_slice { gen; off; bytes } ->
    Printf.sprintf "seq %d: wal gen %d [%d, %d)" seq gen off
      (off + String.length bytes)
  | Reset { gen; specs; snapshot } ->
    Printf.sprintf "seq %d: reset to gen %d (%d specs, %d-byte snapshot)" seq
      gen (List.length specs)
      (String.length snapshot)
  | Digest_frame { gen; off; asr_crcs; _ } ->
    Printf.sprintf "seq %d: digest gen %d @ %d (%d asrs)" seq gen off
      (List.length asr_crcs)
