type t = {
  fault : Durability.Fault.t;
  stats : Storage.Stats.t option;
  q : string Queue.t;
  mutable held : string option;  (* reorder hold-back *)
  mutable sends : int;
}

let create ?fault ?stats () =
  let fault = match fault with Some f -> f | None -> Durability.Fault.real () in
  { fault; stats; q = Queue.create (); held = None; sends = 0 }

let note f t = match t.stats with Some s -> f s | None -> ()

(* Enqueue one delivery; a held-back frame rides out right after it,
   which is exactly the adjacent swap [Reorder_frames] models. *)
let enqueue t s =
  Queue.add s t.q;
  match t.held with
  | Some h ->
    t.held <- None;
    Queue.add h t.q
  | None -> ()

let send t frame =
  let encoded = Frame.encode frame in
  (* A partition raises [Retryable] out of [channel_action] before the
     frame enters the wire: nothing shipped, nothing counted — the
     sender's breaker/retry machinery owns the failure. *)
  let action = Durability.Fault.channel_action t.fault in
  t.sends <- t.sends + 1;
  match action with
  | Durability.Fault.Deliver ->
    note Storage.Stats.note_frame_shipped t;
    enqueue t encoded
  | Durability.Fault.Drop ->
    note Storage.Stats.note_frame_shipped t;
    note Storage.Stats.note_frame_dropped t
  | Durability.Fault.Duplicate ->
    (* Two copies travelled: both count as shipped, and the receiver
       will apply one and reject the other. *)
    note Storage.Stats.note_frame_shipped t;
    note Storage.Stats.note_frame_shipped t;
    enqueue t encoded;
    enqueue t encoded
  | Durability.Fault.Reorder ->
    note Storage.Stats.note_frame_shipped t;
    (match t.held with
    | Some h ->
      t.held <- None;
      Queue.add h t.q
    | None -> ());
    t.held <- Some encoded
  | Durability.Fault.Corrupt k ->
    note Storage.Stats.note_frame_shipped t;
    enqueue t (Durability.Fault.corrupt_tail encoded k)

let recv t =
  if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
  else
    match t.held with
    | Some h ->
      (* Nothing ever followed the held frame; the network delivers it
         late rather than never. *)
      t.held <- None;
      Some h
    | None -> None

let in_flight t = Queue.length t.q + match t.held with Some _ -> 1 | None -> 0
let sends t = t.sends

let discard t =
  let n = in_flight t in
  for _ = 1 to n do
    note Storage.Stats.note_frame_dropped t
  done;
  Queue.clear t.q;
  t.held <- None;
  n

let chaos ~seed ~upto =
  let rng = Random.State.make [| seed; 0x5ebc1ca |] in
  List.filter_map
    (fun i ->
      if Random.State.int rng 6 <> 0 then None
      else
        let channel_fault =
          match Random.State.int rng 5 with
          | 0 -> Durability.Fault.Drop_frame
          | 1 -> Durability.Fault.Dup_frame
          | 2 -> Durability.Fault.Reorder_frames
          | 3 -> Durability.Fault.Corrupt_frame (1 + Random.State.int rng 8)
          | _ -> Durability.Fault.Partition (1 + Random.State.int rng 3)
        in
        Some { Durability.Fault.fail_at_frame = i; channel_fault })
    (List.init upto (fun i -> i + 1))
