(** Failover promotion: turn a replica directory into a primary, or
    refuse with a typed, located divergence report.

    Promotion is crash recovery plus an audit.  The replica's files are
    opened exactly like a crashed durable base ({!Durability.Db.open_}:
    torn tail truncated to the committed prefix, committed groups
    replayed, every registered ASR rebuilt and verified against
    {!Core.Extension.compute}), then every partition tree is scrubbed,
    and — when the dead primary's files are still readable — the
    replica's log is checked byte-for-byte as a prefix of the
    primary's, and the primary's own snapshot+prefix replay is digested
    and compared against the promoted store and ASRs.  Any mismatch is
    a {!divergence}: typed, byte-located, and fatal to promotion. *)

type divergence =
  | Log_prefix_mismatch of { byte : int }
      (** replica log differs from the primary's at [byte] *)
  | Log_beyond_primary of { bytes : int; primary_bytes : int }
      (** replica log is longer than the primary's — impossible under
          correct shipping *)
  | Generation_skew of { replica_gen : int; primary_gen : int }
      (** checkpoint generations differ; histories not comparable *)
  | Snapshot_mismatch of { gen : int }
      (** the shared generation's snapshot images differ *)
  | Store_digest_mismatch of { off : int; expected : string; actual : string }
      (** promoted store digest differs from the primary's
          snapshot+prefix replay at committed byte [off] *)
  | Asr_digest_mismatch of {
      spec : string;
      off : int;
      expected : string;
      actual : string;
    }  (** as above, for one registered ASR *)
  | Asr_rebuild_failed of { spec : string }
      (** recovery's own rebuild verification failed *)
  | Scrub_divergences of { spec : string; count : int; first : string }
      (** the integrity scrubber found [count] physical divergences *)
  | Primary_unreadable of { what : string }
      (** the primary's files exist but fail their own checks, so the
          comparison cannot be trusted *)

val divergence_to_string : divergence -> string

type report = {
  f_dir : string;
  f_generation : int;
  f_recovery : Durability.Db.report;  (** the crash-recovery report *)
  f_committed_bytes : int;  (** log bytes surviving truncation *)
  f_store_digest : string;  (** hex CRC of the promoted store *)
  f_asr_digests : (string * string) list;  (** spec → hex CRC *)
  f_checked_against : string option;  (** primary dir, if compared *)
  f_divergences : divergence list;  (** empty iff promotion succeeded *)
}

val promoted : report -> bool
val report_to_string : report -> string
val report_to_json : report -> string

val promote :
  ?primary_dir:string ->
  dir:string ->
  unit ->
  (Durability.Db.t * report, report) result
(** Promote the replica at [dir].  [Ok (db, report)] removes the
    [REPLICA] marker and hands back a live, writable durable base;
    [Error report] leaves the directory untouched (marker intact,
    handle closed) so the operator can re-seed or inspect.
    [?primary_dir] points at the dead primary's directory for the
    digest comparison; without it only recovery verification and
    scrubbing gate the promotion.
    @raise Replica.Replica_error if [dir] has no [REPLICA] marker. *)
