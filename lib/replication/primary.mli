(** The shipping side: wraps a live {!Durability.Db.t} and streams its
    write-ahead log to a replica as sealed, CRC-framed slices.

    The primary tracks its own log's committed prefix incrementally
    (a {!Durability.Wal.Scanner} fed only the file's new bytes) and
    ships exactly the bytes in [\[shipped, committed)] — never an open
    transaction's tail, so every shipped byte is replayable.  A
    checkpoint rotation (or a fresh replica) is handled by a [Reset]
    frame carrying the generation's snapshot image and manifest specs.
    Unacknowledged frames stay buffered: when the replica reports a gap
    or rejects a damaged frame, {!rewind} re-arms them for resend, and
    {!ack} releases everything at or below the acknowledged sequence.

    Periodic [Digest] frames (every [digest_every] data frames, at
    committed boundaries only) let the replica check its store and
    every ASR against the primary's scrubber-style digests {e during}
    catch-up, not just at promotion. *)

exception Replication_error of string

type t

val create : ?frame_bytes:int -> ?digest_every:int -> Durability.Db.t -> t
(** Wrap an open durable base.  [frame_bytes] (default 4096) caps each
    slice; [digest_every] (default 8, [0] = never) sets the digest
    cadence in data frames. *)

val db : t -> Durability.Db.t

val ship : t -> Channel.t -> int
(** One shipping round: resend anything re-armed by {!rewind}, emit a
    [Reset] if the generation moved, then slice and send every newly
    committed byte (with periodic digests).  Returns frames sent.
    Call outside open store transactions.
    @raise Durability.Fault.Retryable when the channel partitions —
    already-assigned frames stay buffered and resend later.
    @raise Replication_error if our own log fails its frame checks or
    the replica claims an offset past our committed prefix. *)

val ship_digest : t -> Channel.t -> bool
(** Send a digest frame for the current committed boundary now,
    regardless of cadence.  Returns [false] (and sends nothing) inside
    an open transaction or before anything has shipped, because the
    digest would not describe a committed state. *)

val attach : t -> gen:int -> off:int -> unit
(** Resume shipping to a replica that already holds generation [gen]
    up to byte [off] — skips the [Reset] when the generation still
    matches.  A stale [gen] is ignored (the next {!ship} resets). *)

val ack : t -> seq:int -> unit
(** The replica applied everything up to and including [seq]: release
    the resend buffer up to there. *)

val rewind : t -> seq:int -> unit
(** The replica rejected a frame and expects [seq] next: re-arm every
    buffered frame from [seq] on for resend. *)

val next_seq : t -> int
val committed_bytes : t -> int
(** Committed prefix of our own log, as of the last {!ship}. *)

val lag : t -> int
(** Committed bytes not yet shipped (0 when in sync). *)

val unacked : t -> int
(** Frames shipped but not yet acknowledged. *)

val resending : t -> bool
(** A rewind (or partition-refused send) is pending resend. *)
