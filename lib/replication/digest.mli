(** Scrubber-style state digests, the currency of divergence detection.

    A digest is a CRC-32 over a canonical serialisation: the store's
    {!Gom.Serial} image, or an access support relation's extension
    tuples in {!Relation.Tuple.compare} order.  Two nodes holding the
    same committed prefix produce bit-identical digests regardless of
    how they arrived at the state (live maintenance, replay, rebuild),
    which is exactly the property failover verification needs. *)

val store : Gom.Store.t -> int32
(** Digest of the full store image (objects, sets, name bindings). *)

val extension : Relation.t -> int32
(** Digest of a relation's tuples in canonical order. *)

val of_asr : Core.Asr.t -> int32
(** [extension] of the ASR's logical extension (pending deferred
    deltas included, so flush cadence never perturbs the digest). *)

val to_hex : int32 -> string
