exception Stalled of string

type t = {
  primary : Primary.t;
  channel : Channel.t;
  replica : Replica.t;
  breaker : Resilience.Breaker.t;
  stats : Storage.Stats.t option;
  stop_after_sends : int option;
  mutable killed : bool;
  mutable attached : bool;
  mutable steps : int;
}

let create ?config ?seed ?clock ?stats ?stop_after_sends ~primary ~channel
    ~replica () =
  let clock =
    match clock with
    | Some c -> c
    | None ->
      (* Deterministic session time: one tick per observation.  Real
         deployments inject a wall clock; tests get replayable breaker
         backoff schedules for free. *)
      let now = ref 0.0 in
      fun () ->
        now := !now +. 1.0;
        !now
  in
  let breaker = Resilience.Breaker.create ?config ?seed ~clock () in
  {
    primary;
    channel;
    replica;
    breaker;
    stats;
    stop_after_sends;
    killed = false;
    attached = false;
    steps = 0;
  }

let breaker t = t.breaker
let steps t = t.steps

let primary_dead t =
  t.killed
  ||
  match t.stop_after_sends with
  | Some k -> Channel.sends t.channel >= k
  | None -> false

let attach_once t =
  if not t.attached then begin
    (* Catch-up negotiation: a resumed replica already holds a byte
       prefix of some generation; if the primary still lives in that
       generation it continues from there instead of re-seeding. *)
    (* With a generation in hand this resumes shipping at the replica's
       byte offset; at gen 0 it still clears any stale resend buffer a
       previous connection left on the primary. *)
    Primary.attach t.primary
      ~gen:(Replica.generation t.replica)
      ~off:(Replica.wal_bytes t.replica);
    Replica.expect t.replica ~seq:(Primary.next_seq t.primary);
    t.attached <- true
  end

(* One pump round: ship (breaker-guarded), then drain every delivered
   frame into the replica, acking applied frames and rewinding on the
   rejects that mean frames were lost or damaged.  Duplicates and
   post-divergence refusals trigger no rewind — resending cannot help
   either. *)
let step t =
  t.steps <- t.steps + 1;
  attach_once t;
  if not (primary_dead t) then
    (match
       Resilience.Breaker.call ?stats:t.stats t.breaker (fun () ->
           Primary.ship t.primary t.channel)
     with
    | Ok _ | Error `Open -> ()
    | Error (`Failed _) -> ());
  let applied = ref 0 in
  let rec pump () =
    match Channel.recv t.channel with
    | None -> ()
    | Some encoded ->
      (match Replica.offer t.replica encoded with
      | Replica.Applied _ ->
        incr applied;
        Primary.ack t.primary ~seq:(Replica.expected_seq t.replica - 1)
      | Replica.Rejected (Replica.Stale _) | Replica.Rejected (Replica.Diverged _)
        ->
        ()
      | Replica.Rejected _ ->
        Primary.rewind t.primary ~seq:(Replica.expected_seq t.replica));
      pump ()
  in
  pump ();
  Replica.note_watermark t.replica (Primary.committed_bytes t.primary);
  (* Retransmission timeout, collapsed to one idle round: a frame lost
     at the very tail produces no later frame to expose the gap, so an
     idle step with unacknowledged frames re-arms them from the
     replica's expected sequence. *)
  if
    !applied = 0
    && Channel.in_flight t.channel = 0
    && Primary.unacked t.primary > 0
    && (not (primary_dead t))
    && Option.is_none (Replica.diverged t.replica)
  then Primary.rewind t.primary ~seq:(Replica.expected_seq t.replica);
  !applied

let quiescent t =
  Channel.in_flight t.channel = 0
  && (primary_dead t
     || ((not (Primary.resending t.primary))
        && Primary.lag t.primary = 0
        && Primary.unacked t.primary = 0))

let drain ?(max_steps = 10_000) t =
  let rec go n =
    if n > max_steps then
      raise
        (Stalled
           (Printf.sprintf "no quiescence after %d steps (lag %d, in flight %d)"
              max_steps (Primary.lag t.primary)
              (Channel.in_flight t.channel)));
    let applied = step t in
    if Option.is_some (Replica.diverged t.replica) then n
    else if applied = 0 && quiescent t then n
    else go (n + 1)
  in
  go 1

let kill t =
  t.killed <- true;
  Channel.discard t.channel
