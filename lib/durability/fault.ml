exception Crash

type plan = {
  crash_at_write : int;
  survive_bytes : int;
  corrupt_bytes : int;
}

type t = { mutable writes : int; plan : plan option }

let real () = { writes = 0; plan = None }
let faulty plan = { writes = 0; plan = Some plan }
let writes t = t.writes

type sim = {
  path : string;
  mutable durable : string;    (* what an fsynced disk holds *)
  pending : Buffer.t;          (* handed to the OS, not yet synced *)
}

type chan = { oc : out_channel; fd : Unix.file_descr }

type file =
  | Real_file of t * chan
  | Sim_file of t * sim

let overwrite path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_all path =
  if not (Sys.file_exists path) then ""
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let open_append t path =
  match t.plan with
  | None ->
    let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
    Real_file (t, { oc; fd = Unix.descr_of_out_channel oc })
  | Some _ ->
    let durable = read_all path in
    if not (Sys.file_exists path) then overwrite path durable;
    Sim_file (t, { path; durable; pending = Buffer.create 256 })

(* Bitwise-not the last [k] bytes, the shape of a torn sector. *)
let corrupt_tail s k =
  if k <= 0 || s = "" then s
  else begin
    let b = Bytes.of_string s in
    let n = Bytes.length b in
    for i = max 0 (n - k) to n - 1 do
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF))
    done;
    Bytes.to_string b
  end

let write file payload =
  match file with
  | Real_file (t, c) ->
    t.writes <- t.writes + 1;
    output_string c.oc payload;
    flush c.oc
  | Sim_file (t, s) ->
    t.writes <- t.writes + 1;
    (match t.plan with
    | Some p when t.writes = p.crash_at_write ->
      Buffer.add_string s.pending payload;
      let tail = Buffer.contents s.pending in
      let keep = min (max 0 p.survive_bytes) (String.length tail) in
      let survived = corrupt_tail (String.sub tail 0 keep) p.corrupt_bytes in
      overwrite s.path (s.durable ^ survived);
      raise Crash
    | _ -> Buffer.add_string s.pending payload)

let sync = function
  | Real_file (_, c) ->
    flush c.oc;
    Unix.fsync c.fd
  | Sim_file (_, s) ->
    s.durable <- s.durable ^ Buffer.contents s.pending;
    Buffer.clear s.pending;
    overwrite s.path s.durable

let close = function
  | Real_file (_, c) ->
    flush c.oc;
    (try Unix.fsync c.fd with Unix.Unix_error _ -> ());
    close_out c.oc
  | Sim_file (_, s) ->
    (* An orderly shutdown: the OS flushes its buffers. *)
    overwrite s.path (s.durable ^ Buffer.contents s.pending);
    s.durable <- s.durable ^ Buffer.contents s.pending;
    Buffer.clear s.pending
