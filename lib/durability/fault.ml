exception Crash
exception Retryable of string

type plan = {
  crash_at_write : int;
  survive_bytes : int;
  corrupt_bytes : int;
}

type read_fault =
  | Flip_tail of int
  | Drop_tail of int
  | Transient of int
  | Crash_read

type read_plan = { fail_at_read : int; fault : read_fault }

type channel_fault =
  | Drop_frame
  | Dup_frame
  | Reorder_frames
  | Corrupt_frame of int
  | Partition of int

type channel_plan = { fail_at_frame : int; channel_fault : channel_fault }

type t = {
  mutable writes : int;
  plan : plan option;
  mutable reads : int;
  read_plan : read_plan option;
  mutable transient_left : int;
  mutable retries : int;
  mutable backoff_ticks : int;
  channel_plans : channel_plan list;
  mutable frames : int;
  mutable partition_left : int;
}

let make ?(channel_plans = []) ~plan ~read_plan () =
  {
    writes = 0;
    plan;
    reads = 0;
    read_plan;
    transient_left = 0;
    retries = 0;
    backoff_ticks = 0;
    channel_plans;
    frames = 0;
    partition_left = 0;
  }

let real () = make ~plan:None ~read_plan:None ()
let faulty plan = make ~plan:(Some plan) ~read_plan:None ()

let faulty_reads ?writes read_plan =
  make ~plan:writes ~read_plan:(Some read_plan) ()

let faulty_channel ?writes plans =
  make ~channel_plans:plans ~plan:writes ~read_plan:None ()

let writes t = t.writes
let reads t = t.reads
let retries t = t.retries
let backoff_ticks t = t.backoff_ticks
let frames t = t.frames

type sim = {
  path : string;
  mutable durable : string;    (* what an fsynced disk holds *)
  pending : Buffer.t;          (* handed to the OS, not yet synced *)
}

type chan = { oc : out_channel; fd : Unix.file_descr }

type file =
  | Real_file of t * chan
  | Sim_file of t * sim

let overwrite path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_all path =
  if not (Sys.file_exists path) then ""
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let open_append t path =
  match t.plan with
  | None ->
    let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
    Real_file (t, { oc; fd = Unix.descr_of_out_channel oc })
  | Some _ ->
    let durable = read_all path in
    if not (Sys.file_exists path) then overwrite path durable;
    Sim_file (t, { path; durable; pending = Buffer.create 256 })

(* Bitwise-not the last [k] bytes, the shape of a torn sector. *)
let corrupt_tail s k =
  if k <= 0 || s = "" then s
  else begin
    let b = Bytes.of_string s in
    let n = Bytes.length b in
    for i = max 0 (n - k) to n - 1 do
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF))
    done;
    Bytes.to_string b
  end

let write file payload =
  match file with
  | Real_file (t, c) ->
    t.writes <- t.writes + 1;
    output_string c.oc payload;
    flush c.oc
  | Sim_file (t, s) ->
    t.writes <- t.writes + 1;
    (match t.plan with
    | Some p when t.writes = p.crash_at_write ->
      Buffer.add_string s.pending payload;
      let tail = Buffer.contents s.pending in
      let keep = min (max 0 p.survive_bytes) (String.length tail) in
      let survived = corrupt_tail (String.sub tail 0 keep) p.corrupt_bytes in
      overwrite s.path (s.durable ^ survived);
      raise Crash
    | _ -> Buffer.add_string s.pending payload)

let sync = function
  | Real_file (_, c) ->
    flush c.oc;
    Unix.fsync c.fd
  | Sim_file (_, s) ->
    s.durable <- s.durable ^ Buffer.contents s.pending;
    Buffer.clear s.pending;
    overwrite s.path s.durable

let close = function
  | Real_file (_, c) ->
    flush c.oc;
    (try Unix.fsync c.fd with Unix.Unix_error _ -> ());
    close_out c.oc
  | Sim_file (_, s) ->
    (* An orderly shutdown: the OS flushes its buffers. *)
    overwrite s.path (s.durable ^ Buffer.contents s.pending);
    s.durable <- s.durable ^ Buffer.contents s.pending;
    Buffer.clear s.pending

(* ------------------------------------------------------------------ *)
(* Read-side injection                                                 *)
(* ------------------------------------------------------------------ *)

(* Count one logical read against the plan; returns the transformation
   to apply to any data this read produced.  Transient faults arm a
   failure budget at the fault point and keep raising [Retryable] until
   it is spent, so a bounded-retry loop eventually succeeds. *)
let tick t =
  t.reads <- t.reads + 1;
  match t.read_plan with
  | None -> Fun.id
  | Some { fail_at_read; fault } ->
    let firing = t.reads = fail_at_read in
    (match fault with
    | Transient n when firing -> t.transient_left <- max t.transient_left n
    | _ -> ());
    if t.transient_left > 0 then begin
      t.transient_left <- t.transient_left - 1;
      raise
        (Retryable
           (Printf.sprintf "transient read failure (%d more)" t.transient_left))
    end;
    if not firing then Fun.id
    else
      match fault with
      | Crash_read -> raise Crash
      | Flip_tail k -> fun s -> corrupt_tail s k
      | Drop_tail k ->
        fun s -> if String.length s <= k then "" else String.sub s 0 (String.length s - k)
      | Transient _ -> Fun.id

let observe_read t =
  let (_ : string -> string) = tick t in
  ()

let read_through t path =
  let transform = tick t in
  transform (read_all path)

(* ------------------------------------------------------------------ *)
(* Channel (frame-level) injection                                     *)
(* ------------------------------------------------------------------ *)

type channel_action =
  | Deliver
  | Drop
  | Duplicate
  | Reorder
  | Corrupt of int

(* Count one frame send against the channel plans; returns what the
   transport should do with the frame.  [Partition n] arms a failure
   budget, like [Transient]: this send and the next [n - 1] raise
   [Retryable] — the same class [with_retry] and the circuit breaker
   absorb — and the link heals once the budget is spent. *)
let channel_action t =
  t.frames <- t.frames + 1;
  let firing =
    List.find_opt (fun p -> p.fail_at_frame = t.frames) t.channel_plans
  in
  (match firing with
  | Some { channel_fault = Partition n; _ } ->
    t.partition_left <- max t.partition_left n
  | _ -> ());
  if t.partition_left > 0 then begin
    t.partition_left <- t.partition_left - 1;
    raise
      (Retryable
         (Printf.sprintf "network partition (%d more)" t.partition_left))
  end;
  match firing with
  | None -> Deliver
  | Some { channel_fault; _ } -> (
    match channel_fault with
    | Drop_frame -> Drop
    | Dup_frame -> Duplicate
    | Reorder_frames -> Reorder
    | Corrupt_frame k -> Corrupt k
    | Partition _ -> Deliver)

let with_retry ?(attempts = 3) ?stats t f =
  let rec go k =
    try f ()
    with Retryable _ when k < attempts ->
      t.retries <- t.retries + 1;
      (match stats with Some st -> Storage.Stats.note_retry st | None -> ());
      (* Deterministic exponential backoff, recorded rather than slept:
         tests stay instant and the schedule is reproducible. *)
      t.backoff_ticks <- t.backoff_ticks + (1 lsl (k - 1));
      go (k + 1)
  in
  go 1
