(** Deterministic fault injection for the durability layer.

    All write-ahead-log file traffic goes through an injectable
    file-operations environment.  The {!real} environment performs
    ordinary buffered writes ([sync] = fsync).  A {!faulty} environment
    simulates a kill-at-a-chosen-instant instead: it tracks which bytes
    an fsynced disk would hold ({e durable}) separately from bytes
    merely handed to the OS ({e pending}), and on the [crash_at_write]'th
    append it materialises a post-crash file image — the durable prefix
    plus a configurable amount of the pending tail, optionally with
    trailing bytes corrupted — and raises {!Crash}.

    Because the crash point is a deterministic function of the plan,
    tests can prove a property {e at every crash point} by sweeping
    [crash_at_write] over the whole workload. *)

exception Crash
(** The simulated power failure.  After it is raised the in-memory
    store must be considered gone; recovery starts from the files. *)

type plan = {
  crash_at_write : int;
      (** 1-based index of the append (counted across the environment's
          whole lifetime, spanning log rotations) that never returns. *)
  survive_bytes : int;
      (** How many bytes of the unsynced tail — everything appended
          since the last [sync], including the fatal append itself —
          still reach the disk.  [0] models a strict write-back cache;
          [max_int] models a crash just after the write completed. *)
  corrupt_bytes : int;
      (** Flip (bitwise-not) this many trailing bytes of the surviving
          data, modelling a torn sector. *)
}

type t
(** A file-operations environment. *)

val real : unit -> t
(** Passthrough: ordinary file I/O, no faults. *)

val faulty : plan -> t

val writes : t -> int
(** Appends performed through this environment so far (both modes);
    used to size crash-point sweeps. *)

type file

val open_append : t -> string -> file
(** Open for appending, creating the file if missing.  Existing
    contents count as durable. *)

val write : file -> string -> unit
(** Append bytes (reaching the OS, not necessarily the disk).
    @raise Crash at the planned instant. *)

val sync : file -> unit
(** Barrier: everything written so far is durable afterwards. *)

val close : file -> unit
(** Flush and close (an orderly shutdown, not a crash). *)
