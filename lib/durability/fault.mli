(** Deterministic fault injection for the durability layer.

    All write-ahead-log file traffic goes through an injectable
    file-operations environment.  The {!real} environment performs
    ordinary buffered writes ([sync] = fsync).  A {!faulty} environment
    simulates a kill-at-a-chosen-instant instead: it tracks which bytes
    an fsynced disk would hold ({e durable}) separately from bytes
    merely handed to the OS ({e pending}), and on the [crash_at_write]'th
    append it materialises a post-crash file image — the durable prefix
    plus a configurable amount of the pending tail, optionally with
    trailing bytes corrupted — and raises {!Crash}.

    Because the crash point is a deterministic function of the plan,
    tests can prove a property {e at every crash point} by sweeping
    [crash_at_write] over the whole workload. *)

exception Crash
(** The simulated power failure.  After it is raised the in-memory
    store must be considered gone; recovery starts from the files. *)

exception Retryable of string
(** A transient read failure (the storage analogue of a checksum
    mismatch that succeeds on re-read).  Raised by the read path when a
    {!read_fault.Transient} plan fires; {!with_retry} absorbs it with
    bounded retries and deterministic backoff. *)

type plan = {
  crash_at_write : int;
      (** 1-based index of the append (counted across the environment's
          whole lifetime, spanning log rotations) that never returns. *)
  survive_bytes : int;
      (** How many bytes of the unsynced tail — everything appended
          since the last [sync], including the fatal append itself —
          still reach the disk.  [0] models a strict write-back cache;
          [max_int] models a crash just after the write completed. *)
  corrupt_bytes : int;
      (** Flip (bitwise-not) this many trailing bytes of the surviving
          data, modelling a torn sector. *)
}

type read_fault =
  | Flip_tail of int
      (** Bitwise-not the last [k] bytes of the data returned by the
          fault-point read — a torn or bit-rotted sector. *)
  | Drop_tail of int
      (** Truncate the last [k] bytes — a short read / truncated file. *)
  | Transient of int
      (** Fail this read and the next [k - 1] with {!Retryable}; a
          bounded-retry loop of at least [k + 1] attempts succeeds. *)
  | Crash_read
      (** Raise {!Crash} at the fault point, for sweeping crash points
          across read-heavy cycles (scrub, repair verification). *)

type read_plan = {
  fail_at_read : int;
      (** 1-based index of the read (counted across the environment's
          whole lifetime) at which the fault fires. *)
  fault : read_fault;
}

(** Frame-level faults for a replication channel.  A channel is a third
    traffic class next to writes and reads: each send of an encoded
    frame counts one unit against [channel_plans], and the transport
    acts on the returned {!channel_action}. *)
type channel_fault =
  | Drop_frame  (** The frame vanishes in flight; the sender must resend. *)
  | Dup_frame  (** The frame is delivered twice; the receiver must dedup. *)
  | Reorder_frames
      (** The frame is held back and delivered after its successor. *)
  | Corrupt_frame of int
      (** Bitwise-not the last [k] bytes of the encoded frame; the
          receiver's CRC check must reject it. *)
  | Partition of int
      (** Fail this send and the next [k - 1] with {!Retryable} — the
          same class {!with_retry} and [Resilience.Breaker] absorb —
          then the link heals. *)

type channel_plan = {
  fail_at_frame : int;
      (** 1-based index of the frame send (counted across the
          environment's whole lifetime) at which the fault fires. *)
  channel_fault : channel_fault;
}

type t
(** A file-operations environment. *)

val real : unit -> t
(** Passthrough: ordinary file I/O, no faults. *)

val faulty : plan -> t

val faulty_reads : ?writes:plan -> read_plan -> t
(** An environment injecting the given read-side fault, optionally with
    a write-side crash plan as well. *)

val faulty_channel : ?writes:plan -> channel_plan list -> t
(** An environment injecting the given frame-level channel faults,
    optionally with a write-side crash plan as well (for killing a
    replica mid-apply while its feed is also misbehaving). *)

val writes : t -> int
(** Appends performed through this environment so far (both modes);
    used to size crash-point sweeps. *)

val reads : t -> int
(** Logical reads observed through this environment so far; used to
    size read-side fault sweeps (count a crash-free reference run,
    then sweep [fail_at_read] over [1 .. reads]). *)

val retries : t -> int
(** Retries absorbed by {!with_retry} so far. *)

val backoff_ticks : t -> int
(** Total deterministic backoff accumulated by {!with_retry}: the
    [k]'th retry adds [2^(k-1)] ticks.  Recorded, never slept, so
    sweeps stay instant and reproducible. *)

val frames : t -> int
(** Frame sends observed through this environment so far; used to size
    channel fault sweeps the same way {!writes} sizes crash sweeps. *)

(** {2 Channel injection} *)

(** What the transport should do with one sent frame. *)
type channel_action =
  | Deliver
  | Drop
  | Duplicate
  | Reorder
  | Corrupt of int

val channel_action : t -> channel_action
(** Count one frame send against the environment's channel plans.
    @raise Retryable while a {!channel_fault.Partition} budget is
    unspent, so bounded-retry loops and circuit breakers classify link
    outages exactly like transient storage faults. *)

val corrupt_tail : string -> int -> string
(** Bitwise-not the last [k] bytes — the torn-sector transformation all
    the corruption faults apply, exposed for transports that damage
    in-flight bytes the same way. *)

type file

val open_append : t -> string -> file
(** Open for appending, creating the file if missing.  Existing
    contents count as durable. *)

val write : file -> string -> unit
(** Append bytes (reaching the OS, not necessarily the disk).
    @raise Crash at the planned instant. *)

val sync : file -> unit
(** Barrier: everything written so far is durable afterwards. *)

val close : file -> unit
(** Flush and close (an orderly shutdown, not a crash). *)

(** {2 Read-side injection}

    Snapshot loads and integrity-scrub passes are read paths: the
    hazards are corrupted or truncated data coming {e back}, and
    transient failures that succeed on retry.  Each call below counts
    one logical read against the environment's [read_plan]. *)

val observe_read : t -> unit
(** Count one logical read that does not materialise bytes through this
    module (e.g. a scrub batch served from the page layer).  Raises
    {!Retryable} or {!Crash} when the plan says so; [Flip_tail] /
    [Drop_tail] plans are inert here (there is no data to damage). *)

val read_through : t -> string -> string
(** Read a whole file, damaged per the plan: the fault-point read
    returns flipped or truncated bytes, raises {!Retryable}, or raises
    {!Crash}.  A missing file reads as [""], as with recovery's own
    reader. *)

val with_retry :
  ?attempts:int -> ?stats:Storage.Stats.t -> t -> (unit -> 'a) -> 'a
(** [with_retry t f] runs [f], absorbing up to [attempts - 1]
    {!Retryable} failures (default 3 attempts total).  Each retry is
    counted on [t] (and on [stats] when given) and adds exponential
    deterministic backoff to {!backoff_ticks}.  The final attempt's
    {!Retryable} propagates. *)
