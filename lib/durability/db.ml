exception Db_error of string
exception Recovery_error of string

let db_error fmt = Format.kasprintf (fun s -> raise (Db_error s)) fmt
let recovery_error fmt = Format.kasprintf (fun s -> raise (Recovery_error s)) fmt

(* ---------------- layout ---------------- *)

let manifest_file dir = Filename.concat dir "MANIFEST"
let snapshot_file dir gen = Filename.concat dir (Printf.sprintf "snapshot-%d.base" gen)
let wal_file dir gen = Filename.concat dir (Printf.sprintf "wal-%d.log" gen)

let manifest_header = "asr-manifest v1"

type spec = {
  s_kind : Core.Extension.kind;
  s_dec : string option; (* boundary list; None = binary *)
  s_path : string;
}

let spec_to_string s =
  Printf.sprintf "%s %s %s"
    (Core.Extension.name s.s_kind)
    (Option.value ~default:"-" s.s_dec)
    s.s_path

let spec_of_string line =
  match String.split_on_char ' ' line with
  | kind :: dec :: path_parts when path_parts <> [] -> (
    match Core.Extension.of_name kind with
    | Some k ->
      Some
        {
          s_kind = k;
          s_dec = (if dec = "-" then None else Some dec);
          s_path = String.concat " " path_parts;
        }
    | None -> None)
  | _ -> None

(* Replace a small control file atomically: temp + fsync + rename. *)
let atomic_write path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc contents;
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc));
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let write_manifest dir gen specs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (manifest_header ^ "\n");
  Buffer.add_string buf (Printf.sprintf "gen %d\n" gen);
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "asr %s\n" (spec_to_string s)))
    specs;
  atomic_write (manifest_file dir) (Buffer.contents buf)

let read_manifest dir =
  let path = manifest_file dir in
  let text =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error m -> recovery_error "cannot read manifest: %s" m
  in
  let lines =
    String.split_on_char '\n' text |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  match lines with
  | h :: rest when h = manifest_header ->
    let gen = ref None and specs = ref [] in
    List.iter
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "gen"; g ] -> gen := int_of_string_opt g
        | "asr" :: kind :: dec :: path_parts when path_parts <> [] ->
          let kind =
            match Core.Extension.of_name kind with
            | Some k -> k
            | None -> recovery_error "manifest: unknown extension %S" kind
          in
          let dec = if dec = "-" then None else Some dec in
          specs :=
            { s_kind = kind; s_dec = dec; s_path = String.concat " " path_parts }
            :: !specs
        | _ -> recovery_error "manifest: malformed line %S" line)
      rest;
    (match !gen with
    | Some g when g > 0 -> (g, List.rev !specs)
    | _ -> recovery_error "manifest: missing generation")
  | h :: _ -> recovery_error "manifest: unknown header %S" h
  | [] -> recovery_error "manifest: empty"

(* ---------------- the handle ---------------- *)

type report = {
  generation : int;
  records_scanned : int;
  records_replayed : int;
  records_dropped : int;
  bytes_truncated : int;
  commits_replayed : int;
  flushes_replayed : int;
  asr_checks : (string * bool) list;
}

let verified r = List.for_all snd r.asr_checks

type t = {
  t_dir : string;
  fault : Fault.t;
  policy : Wal.sync_policy;
  t_store : Gom.Store.t;
  heap : Storage.Heap.t;
  mgr : Core.Maintenance.t;
  mutable specs : spec list;
  mutable handles : Core.Asr.t list;
  mutable wal : Wal.t;
  mutable gen : int;
  mutable sub : Gom.Store.subscription option;
  mutable closed : bool;
  recovery : report option;
}

let store t = t.t_store
let env t = (Core.Exec.make t.t_store t.heap)
let maintenance t = t.mgr
let generation t = t.gen
let dir t = t.t_dir
let asrs t = List.rev t.handles
let asr_specs t = t.specs
let last_recovery t = t.recovery
let wal_appended t = Wal.appended t.wal

let ensure_open t = if t.closed then db_error "durable base handle is closed"

(* Every mutation of the attached store is logged before control
   returns to the mutator; transaction boundaries come from Txn's
   lifecycle hooks, with commit/abort acting as flush barriers under
   [Sync_on_commit]. *)
let attach t =
  t.sub <-
    Some
      (Gom.Store.subscribe t.t_store (fun ev ->
           Wal.append t.wal (Wal.record_of_event t.t_store ev)));
  Gom.Txn.set_hooks t.t_store
    {
      Gom.Txn.on_start = (fun () -> Wal.append t.wal Wal.Begin);
      Gom.Txn.on_commit = (fun () -> Wal.append t.wal Wal.Commit);
      Gom.Txn.on_rollback = (fun () -> Wal.append t.wal Wal.Abort);
    }

let make ~dir ~fault ~policy ~store ~gen ~specs ~handles ~wal ~recovery =
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
  let mgr = Core.Maintenance.create (Core.Exec.make store heap) in
  List.iter (Core.Maintenance.register mgr) handles;
  let t =
    {
      t_dir = dir;
      fault;
      policy;
      t_store = store;
      heap;
      mgr;
      specs;
      handles;
      wal;
      gen;
      sub = None;
      closed = false;
      recovery;
    }
  in
  attach t;
  t

let default_fault = Fault.real

let create ?fault ?(policy = Wal.Sync_on_commit) ~dir store =
  let fault = match fault with Some f -> f | None -> default_fault () in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  if Sys.file_exists (manifest_file dir) then
    db_error "%s already holds a durable base" dir;
  let gen = 1 in
  Gom.Serial.save store (snapshot_file dir gen);
  let wal = Wal.open_append ~fault ~policy (wal_file dir gen) in
  write_manifest dir gen [];
  make ~dir ~fault ~policy ~store ~gen ~specs:[] ~handles:[] ~wal ~recovery:None

let spec_components store spec =
  let path =
    try Gom.Path.parse (Gom.Store.schema store) spec.s_path
    with Gom.Path.Path_error m -> recovery_error "asr %s: %s" spec.s_path m
  in
  let m = Gom.Path.arity path - 1 in
  let dec =
    match spec.s_dec with
    | None -> Core.Decomposition.binary ~m
    | Some s -> (
      try Core.Decomposition.of_string ~m s
      with Invalid_argument msg -> recovery_error "asr %s: %s" spec.s_path msg)
  in
  (path, spec.s_kind, dec)

let build_spec_asr store spec =
  let path, kind, dec = spec_components store spec in
  (path, Core.Asr.create store path kind dec)

let open_ ?fault ?(policy = Wal.Sync_on_commit) ~dir () =
  let fault = match fault with Some f -> f | None -> default_fault () in
  let gen, specs = read_manifest dir in
  let store =
    let file = snapshot_file dir gen in
    if not (Sys.file_exists file) then
      recovery_error "snapshot %d: missing file %s" gen file;
    (* The load goes through the fault environment: bit flips and
       truncation surface as byte-located [Serial.Corrupt], transient
       failures are absorbed by bounded retry with deterministic
       backoff, and a persistent transient becomes a recovery error. *)
    try
      Fault.with_retry fault (fun () ->
          Gom.Serial.load_via ~reader:(Fault.read_through fault) file)
    with
    | Gom.Serial.Corrupt m -> recovery_error "snapshot %d: %s" gen m
    | Fault.Retryable m ->
      recovery_error "snapshot %d: transient read failure persisted: %s" gen m
  in
  let scanned = Wal.scan (wal_file dir gen) in
  (* Chop the log back to its committed prefix: both the torn tail and
     intact records of transactions that never committed, so future
     appends continue from a transaction-consistent point. *)
  if scanned.Wal.total_bytes > scanned.Wal.committed_bytes then
    Unix.truncate (wal_file dir gen) scanned.Wal.committed_bytes;
  let committed =
    List.filteri (fun i _ -> i < scanned.Wal.committed) scanned.Wal.records
  in
  let applied =
    try Wal.replay store committed
    with Wal.Replay_error m -> recovery_error "log %d: %s" gen m
  in
  let commits =
    List.fold_left
      (fun n r -> match r with Wal.Commit -> n + 1 | _ -> n)
      0 committed
  in
  let flushes =
    List.fold_left
      (fun n r -> match r with Wal.Flush _ -> n + 1 | _ -> n)
      0 committed
  in
  let checked =
    List.map
      (fun spec ->
        let path, a = build_spec_asr store spec in
        let ok =
          Relation.equal
            (Core.Asr.extension_relation a)
            (Core.Extension.compute store path spec.s_kind)
        in
        ((spec_to_string spec, ok), a))
      specs
  in
  let report =
    {
      generation = gen;
      records_scanned = List.length scanned.Wal.records;
      records_replayed = applied;
      records_dropped = List.length scanned.Wal.records - scanned.Wal.committed;
      bytes_truncated = scanned.Wal.total_bytes - scanned.Wal.committed_bytes;
      commits_replayed = commits;
      flushes_replayed = flushes;
      asr_checks = List.map fst checked;
    }
  in
  let wal = Wal.open_append ~fault ~policy (wal_file dir gen) in
  make ~dir ~fault ~policy ~store ~gen ~specs
    ~handles:(List.rev_map snd checked)
    ~wal ~recovery:(Some report)

let register_asr t ~path ~kind ?dec () =
  ensure_open t;
  let spec = { s_kind = kind; s_dec = dec; s_path = path } in
  if List.exists (fun s -> spec_to_string s = spec_to_string spec) t.specs then
    db_error "asr already registered: %s" (spec_to_string spec);
  let _, a =
    try build_spec_asr t.t_store spec
    with Recovery_error m -> db_error "%s" m
  in
  Core.Maintenance.register t.mgr a;
  t.handles <- a :: t.handles;
  t.specs <- t.specs @ [ spec ];
  write_manifest t.t_dir t.gen t.specs;
  a

let bind_name t name oid =
  ensure_open t;
  Gom.Store.bind_name t.t_store name oid;
  Wal.append t.wal (Wal.Bind (name, oid))

let flush t =
  ensure_open t;
  Wal.sync t.wal

let flush_policy t = Core.Maintenance.policy t.mgr

let set_flush_policy t p =
  ensure_open t;
  (* Switching to Immediate drains the buffers inside the manager; that
     drain deserves its own WAL frame too, so count first. *)
  let pending = Core.Maintenance.pending t.mgr in
  if pending > 0 && p = Core.Maintenance.Immediate then begin
    Wal.append t.wal Wal.Begin;
    Core.Maintenance.set_policy t.mgr p;
    Wal.append t.wal (Wal.Flush pending);
    Wal.append t.wal Wal.Commit
  end
  else Core.Maintenance.set_policy t.mgr p

let flush_maintenance t =
  ensure_open t;
  let pending = Core.Maintenance.pending t.mgr in
  if pending = 0 then 0
  else begin
    (* One WAL group frames the whole flush: recovery either replays the
       closed group (a counted no-op — the trees are rebuilt from the
       manifest anyway) or truncates the open one, never half of it. *)
    Wal.append t.wal Wal.Begin;
    let n = Core.Maintenance.flush_all t.mgr in
    Wal.append t.wal (Wal.Flush n);
    Wal.append t.wal Wal.Commit;
    n
  end

let checkpoint t =
  ensure_open t;
  Wal.sync t.wal;
  let gen' = t.gen + 1 in
  (* A stale file from an interrupted earlier attempt must not pollute
     the fresh log. *)
  (try Sys.remove (wal_file t.t_dir gen') with Sys_error _ -> ());
  Gom.Serial.save t.t_store (snapshot_file t.t_dir gen');
  let wal' = Wal.open_append ~fault:t.fault ~policy:t.policy (wal_file t.t_dir gen') in
  (* The manifest switch is the checkpoint's commit point. *)
  write_manifest t.t_dir gen' t.specs;
  let old = t.gen in
  Wal.close t.wal;
  t.wal <- wal';
  t.gen <- gen';
  (try Sys.remove (snapshot_file t.t_dir old) with Sys_error _ -> ());
  (try Sys.remove (wal_file t.t_dir old) with Sys_error _ -> ())

let close t =
  if not t.closed then begin
    t.closed <- true;
    Gom.Txn.clear_hooks t.t_store;
    (match t.sub with
    | Some sub -> Gom.Store.unsubscribe t.t_store sub
    | None -> ());
    t.sub <- None;
    Wal.sync t.wal;
    Wal.close t.wal
  end
