(** The write-ahead log: every {!Gom.Store.event} of a durable object
    base is serialised as one CRC-framed record, appended through the
    fault-injectable file layer ({!Fault}).

    {2 Format}

    One record per line:
    {v <crc32-hex> <payload-length> <payload>\n v}

    where the CRC covers the payload.  Payloads reuse {!Gom.Serial}'s
    value syntax and are newline-free:
    {v
    begin                      transaction started
    commit                     transaction committed (flush barrier)
    abort                      transaction rolled back (after its
                               compensation records)
    new 7 ROBOT                object i7 of type ROBOT created
    set 7 Name str:"Z3"        attribute assigned
    ins 5 ref:3                element inserted into set/list i5
    rem 5 ref:3                element removed
    del 7 ROBOT                object deleted (its reference
                               nullifications precede it as [set]/[rem]
                               records)
    name "OurRobots" 5         persistent root bound
    flush 12                   deferred-maintenance flush barrier
                               (12 net deltas applied)
    v}

    A record is {e committed} when it lies outside any
    [begin]..[commit]/[abort] span, or inside a closed one.  Recovery
    replays exactly the committed prefix: a transaction whose [commit]
    never reached the disk is dropped wholesale, and a rolled-back
    transaction nets out because its compensation records and [abort]
    marker replay too. *)

type sync_policy =
  | Sync_always  (** fsync after every record — maximum durability *)
  | Sync_on_commit
      (** fsync at [commit]/[abort] markers and explicit barriers; an
          autocommit mutation outside any transaction may be lost in a
          crash, but never partially applied *)
  | Sync_never  (** leave it to the OS (checkpoints still sync) *)

type record =
  | Begin
  | Commit
  | Abort
  | Create of Gom.Oid.t * Gom.Schema.type_name
  | Set of Gom.Oid.t * Gom.Schema.attr_name * Gom.Value.t
  | Insert of Gom.Oid.t * Gom.Value.t
  | Remove of Gom.Oid.t * Gom.Value.t
  | Delete of Gom.Oid.t * Gom.Schema.type_name
  | Bind of string * Gom.Oid.t
  | Flush of int
      (** Deferred-maintenance flush barrier carrying the number of net
          deltas applied; written inside its own [begin]..[commit] group
          ({v flush <n> v}) so crash recovery replays or drops the whole
          flush atomically.  Replay is a store-level no-op: access
          support relations are rebuilt from the manifest on open, so
          the barrier only marks (and counts) where batched tree catch-up
          happened in the event stream. *)

val record_of_event : Gom.Store.t -> Gom.Store.event -> record
(** The loggable image of a store event ([Created] looks the object's
    type up, so it must run while the object is live — i.e. from a
    subscribed listener). *)

type t

val open_append : ?fault:Fault.t -> policy:sync_policy -> string -> t
(** Open (creating if missing) for appending. *)

val append : t -> record -> unit
(** Frame and append one record, honouring the sync policy.
    @raise Fault.Crash under an armed fault plan. *)

val sync : t -> unit
(** Explicit flush barrier. *)

val close : t -> unit
val appended : t -> int

(** {2 Recovery-side reading} *)

type scanned = {
  records : record list;  (** every intact record, in order *)
  committed : int;  (** length (in records) of the committed prefix *)
  committed_bytes : int;  (** file offset just past that prefix *)
  valid_bytes : int;  (** offset past the last intact record *)
  total_bytes : int;  (** physical size, [> valid_bytes] iff torn *)
}

val scan : string -> scanned
(** Read and validate a log.  Scanning stops at the first torn or
    corrupt record — everything after it is untrusted tail.  A missing
    file reads as empty. *)

(** {2 Incremental scanning}

    [scan] wants the whole file; a replica tailing a shipped log gets
    bytes piecemeal and must not re-read history on every frame.  A
    {!Scanner.t} is the streaming form of the same committed-prefix
    rule: feed it arbitrary byte slices in order and it emits whole
    committed groups — each an autocommitted record or a closed
    [begin]..[commit]/[abort] span — tagged with the absolute file
    offset just past the group, so apply progress is expressible in
    the primary's own byte coordinates. *)
module Scanner : sig
  exception Bad_record of { recno : int; off : int }
  (** An intact-looking line failed its frame check.  Unlike [scan],
      which tolerantly truncates (a torn {e tail} is expected after a
      crash), a scanner consumes verified frames from a transport: mid
      -stream damage means the feed itself is corrupt, and [off] — the
      absolute offset of the bad line — locates it for the error
      message.  Bytes after the last newline are simply buffered until
      the rest arrives, so a partial final record never raises. *)

  type group = {
    g_records : record list;  (** the group, markers included *)
    g_end : int;  (** absolute offset just past the group *)
  }

  type t

  val create : unit -> t

  val feed : t -> string -> unit
  (** Append the next byte slice and parse as far as possible.
      @raise Bad_record on mid-stream frame damage. *)

  val take_groups : t -> group list
  (** Committed groups completed since the last call, in log order. *)

  val committed_bytes : t -> int
  (** Absolute offset just past the last committed group. *)

  val committed_records : t -> int
  (** Records (markers included) in the committed prefix. *)

  val fed_bytes : t -> int
  (** Total bytes fed so far. *)

  val pending_records : t -> int
  (** Intact records past the committed point (an open span). *)
end

exception Replay_error of string

val replay : Gom.Store.t -> record list -> int
(** Apply records (markers are no-ops) to a store with {e no listeners
    attached}; returns the number of mutations applied.  The caller
    passes the committed prefix, i.e.
    [List.filteri (fun i _ -> i < s.committed) s.records].
    @raise Replay_error if a record does not apply (log/snapshot
    mismatch). *)
