(** The write-ahead log: every {!Gom.Store.event} of a durable object
    base is serialised as one CRC-framed record, appended through the
    fault-injectable file layer ({!Fault}).

    {2 Format}

    One record per line:
    {v <crc32-hex> <payload-length> <payload>\n v}

    where the CRC covers the payload.  Payloads reuse {!Gom.Serial}'s
    value syntax and are newline-free:
    {v
    begin                      transaction started
    commit                     transaction committed (flush barrier)
    abort                      transaction rolled back (after its
                               compensation records)
    new 7 ROBOT                object i7 of type ROBOT created
    set 7 Name str:"Z3"        attribute assigned
    ins 5 ref:3                element inserted into set/list i5
    rem 5 ref:3                element removed
    del 7 ROBOT                object deleted (its reference
                               nullifications precede it as [set]/[rem]
                               records)
    name "OurRobots" 5         persistent root bound
    flush 12                   deferred-maintenance flush barrier
                               (12 net deltas applied)
    v}

    A record is {e committed} when it lies outside any
    [begin]..[commit]/[abort] span, or inside a closed one.  Recovery
    replays exactly the committed prefix: a transaction whose [commit]
    never reached the disk is dropped wholesale, and a rolled-back
    transaction nets out because its compensation records and [abort]
    marker replay too. *)

type sync_policy =
  | Sync_always  (** fsync after every record — maximum durability *)
  | Sync_on_commit
      (** fsync at [commit]/[abort] markers and explicit barriers; an
          autocommit mutation outside any transaction may be lost in a
          crash, but never partially applied *)
  | Sync_never  (** leave it to the OS (checkpoints still sync) *)

type record =
  | Begin
  | Commit
  | Abort
  | Create of Gom.Oid.t * Gom.Schema.type_name
  | Set of Gom.Oid.t * Gom.Schema.attr_name * Gom.Value.t
  | Insert of Gom.Oid.t * Gom.Value.t
  | Remove of Gom.Oid.t * Gom.Value.t
  | Delete of Gom.Oid.t * Gom.Schema.type_name
  | Bind of string * Gom.Oid.t
  | Flush of int
      (** Deferred-maintenance flush barrier carrying the number of net
          deltas applied; written inside its own [begin]..[commit] group
          ({v flush <n> v}) so crash recovery replays or drops the whole
          flush atomically.  Replay is a store-level no-op: access
          support relations are rebuilt from the manifest on open, so
          the barrier only marks (and counts) where batched tree catch-up
          happened in the event stream. *)

val record_of_event : Gom.Store.t -> Gom.Store.event -> record
(** The loggable image of a store event ([Created] looks the object's
    type up, so it must run while the object is live — i.e. from a
    subscribed listener). *)

type t

val open_append : ?fault:Fault.t -> policy:sync_policy -> string -> t
(** Open (creating if missing) for appending. *)

val append : t -> record -> unit
(** Frame and append one record, honouring the sync policy.
    @raise Fault.Crash under an armed fault plan. *)

val sync : t -> unit
(** Explicit flush barrier. *)

val close : t -> unit
val appended : t -> int

(** {2 Recovery-side reading} *)

type scanned = {
  records : record list;  (** every intact record, in order *)
  committed : int;  (** length (in records) of the committed prefix *)
  committed_bytes : int;  (** file offset just past that prefix *)
  valid_bytes : int;  (** offset past the last intact record *)
  total_bytes : int;  (** physical size, [> valid_bytes] iff torn *)
}

val scan : string -> scanned
(** Read and validate a log.  Scanning stops at the first torn or
    corrupt record — everything after it is untrusted tail.  A missing
    file reads as empty. *)

exception Replay_error of string

val replay : Gom.Store.t -> record list -> int
(** Apply records (markers are no-ops) to a store with {e no listeners
    attached}; returns the number of mutations applied.  The caller
    passes the committed prefix, i.e.
    [List.filteri (fun i _ -> i < s.committed) s.records].
    @raise Replay_error if a record does not apply (log/snapshot
    mismatch). *)
