type sync_policy = Sync_always | Sync_on_commit | Sync_never

type record =
  | Begin
  | Commit
  | Abort
  | Create of Gom.Oid.t * Gom.Schema.type_name
  | Set of Gom.Oid.t * Gom.Schema.attr_name * Gom.Value.t
  | Insert of Gom.Oid.t * Gom.Value.t
  | Remove of Gom.Oid.t * Gom.Value.t
  | Delete of Gom.Oid.t * Gom.Schema.type_name
  | Bind of string * Gom.Oid.t
  | Flush of int

let record_of_event store : Gom.Store.event -> record = function
  | Gom.Store.Created oid -> Create (oid, Gom.Store.type_of store oid)
  | Gom.Store.Attr_set { obj; attr; new_value; _ } -> Set (obj, attr, new_value)
  | Gom.Store.Set_inserted { set; elem } -> Insert (set, elem)
  | Gom.Store.Set_removed { set; elem } -> Remove (set, elem)
  | Gom.Store.Deleted { obj; ty } -> Delete (obj, ty)

(* ---------------- payload syntax ---------------- *)

let payload_of_record = function
  | Begin -> "begin"
  | Commit -> "commit"
  | Abort -> "abort"
  | Create (o, ty) -> Printf.sprintf "new %d %s" (Gom.Oid.to_int o) ty
  | Set (o, a, v) ->
    Printf.sprintf "set %d %s %s" (Gom.Oid.to_int o) a (Gom.Serial.value_to_string v)
  | Insert (o, v) ->
    Printf.sprintf "ins %d %s" (Gom.Oid.to_int o) (Gom.Serial.value_to_string v)
  | Remove (o, v) ->
    Printf.sprintf "rem %d %s" (Gom.Oid.to_int o) (Gom.Serial.value_to_string v)
  | Delete (o, ty) -> Printf.sprintf "del %d %s" (Gom.Oid.to_int o) ty
  | Bind (name, o) -> Printf.sprintf "name %S %d" name (Gom.Oid.to_int o)
  | Flush n -> Printf.sprintf "flush %d" n

(* Tokenise the first [count] space-separated fields, keeping the
   remainder verbatim (string payloads may contain spaces). *)
let fields ~count s =
  let len = String.length s in
  let rec go start acc remaining =
    if remaining = 0 then
      if start <= len then Some (List.rev (String.sub s start (len - start) :: acc))
      else None
    else
      match String.index_from_opt s start ' ' with
      | Some i -> go (i + 1) (String.sub s start (i - start) :: acc) (remaining - 1)
      | None -> None
  in
  go 0 [] count

let record_of_payload ~recno s =
  let oid s = Option.map Gom.Oid.of_int (int_of_string_opt s) in
  let value s = try Some (Gom.Serial.value_of_string ~line:recno s) with Gom.Serial.Corrupt _ -> None in
  match s with
  | "begin" -> Some Begin
  | "commit" -> Some Commit
  | "abort" -> Some Abort
  | _ -> (
    match fields ~count:1 s with
    | Some [ "new"; rest ] | Some [ "del"; rest ] -> (
      match String.split_on_char ' ' rest with
      | [ o; ty ] -> (
        match oid o with
        | Some o when ty <> "" ->
          Some (if String.length s >= 3 && s.[0] = 'n' then Create (o, ty) else Delete (o, ty))
        | _ -> None)
      | _ -> None)
    | Some [ "set"; rest ] -> (
      match fields ~count:2 rest with
      | Some [ o; a; v ] -> (
        match (oid o, value v) with
        | Some o, Some v when a <> "" -> Some (Set (o, a, v))
        | _ -> None)
      | _ -> None)
    | Some [ "ins"; rest ] | Some [ "rem"; rest ] -> (
      match fields ~count:1 rest with
      | Some [ o; v ] -> (
        match (oid o, value v) with
        | Some o, Some v ->
          Some (if s.[0] = 'i' then Insert (o, v) else Remove (o, v))
        | _ -> None)
      | _ -> None)
    | Some [ "name"; _ ] -> (
      try Scanf.sscanf s "name %S %d%!" (fun n o -> Some (Bind (n, Gom.Oid.of_int o)))
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
    | Some [ "flush"; rest ] -> (
      match int_of_string_opt rest with
      | Some n when n >= 0 -> Some (Flush n)
      | _ -> None)
    | _ -> None)

(* ---------------- appending ---------------- *)

type t = {
  file : Fault.file;
  policy : sync_policy;
  mutable appended : int;
}

let open_append ?fault ~policy path =
  let fault = match fault with Some f -> f | None -> Fault.real () in
  { file = Fault.open_append fault path; policy; appended = 0 }

let sync t = Fault.sync t.file

let append t record =
  let payload = payload_of_record record in
  let line =
    Printf.sprintf "%s %d %s\n"
      (Gom.Crc32.to_hex (Gom.Crc32.string payload))
      (String.length payload) payload
  in
  Fault.write t.file line;
  t.appended <- t.appended + 1;
  match (t.policy, record) with
  | Sync_always, _ -> sync t
  | Sync_on_commit, (Commit | Abort) -> sync t
  | (Sync_on_commit | Sync_never), _ -> ()

let close t = Fault.close t.file
let appended t = t.appended

(* ---------------- recovery-side reading ---------------- *)

type scanned = {
  records : record list;
  committed : int;
  committed_bytes : int;
  valid_bytes : int;
  total_bytes : int;
}

let parse_frame ~recno line =
  match fields ~count:2 line with
  | Some [ crc_hex; len_s; payload ] -> (
    match (Gom.Crc32.of_hex crc_hex, int_of_string_opt len_s) with
    | Some crc, Some len
      when len = String.length payload
           && Int32.equal crc (Gom.Crc32.string payload) ->
      record_of_payload ~recno payload
    | _ -> None)
  | _ -> None

let scan path =
  let text =
    if not (Sys.file_exists path) then ""
    else
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
  in
  let n = String.length text in
  let rec go recs count off committed committed_bytes in_txn =
    let finish valid_bytes =
      {
        records = List.rev recs;
        committed;
        committed_bytes;
        valid_bytes;
        total_bytes = n;
      }
    in
    if off >= n then finish off
    else
      match String.index_from_opt text off '\n' with
      | None -> finish off (* torn final record: no terminator *)
      | Some nl -> (
        let line = String.sub text off (nl - off) in
        match parse_frame ~recno:(count + 1) line with
        | None -> finish off (* damaged record: untrusted from here on *)
        | Some record ->
          let end_off = nl + 1 in
          let in_txn', committed', cbytes' =
            match record with
            | Begin -> (true, committed, committed_bytes)
            | Commit | Abort -> (false, count + 1, end_off)
            | _ when in_txn -> (true, committed, committed_bytes)
            | _ -> (false, count + 1, end_off)
          in
          go (record :: recs) (count + 1) end_off committed' cbytes' in_txn')
  in
  go [] 0 0 0 0 false

(* ---------------- incremental scanning ---------------- *)

module Scanner = struct
  exception Bad_record of { recno : int; off : int }

  type group = { g_records : record list; g_end : int }

  type t = {
    mutable buf : string;  (* intact-but-unterminated tail bytes *)
    mutable base : int;  (* absolute offset of [buf]'s first byte *)
    mutable recno : int;
    mutable in_txn : bool;
    mutable open_group : record list;  (* reversed, since last boundary *)
    mutable committed : int;
    mutable committed_records : int;
    mutable ready : group list;  (* reversed *)
  }

  let create () =
    {
      buf = "";
      base = 0;
      recno = 0;
      in_txn = false;
      open_group = [];
      committed = 0;
      committed_records = 0;
      ready = [];
    }

  let seal t =
    t.in_txn <- false;
    t.committed <- t.base;
    t.committed_records <- t.recno;
    t.ready <- { g_records = List.rev t.open_group; g_end = t.base } :: t.ready;
    t.open_group <- []

  (* Same commit-boundary logic as [scan]: a record outside any
     begin..commit/abort span commits by itself; a span commits (or
     nets out) wholesale at its closing marker. *)
  let rec drain t =
    match String.index_opt t.buf '\n' with
    | None -> ()
    | Some nl ->
      let line = String.sub t.buf 0 nl in
      (match parse_frame ~recno:(t.recno + 1) line with
      | None -> raise (Bad_record { recno = t.recno + 1; off = t.base })
      | Some record ->
        t.buf <- String.sub t.buf (nl + 1) (String.length t.buf - nl - 1);
        t.base <- t.base + nl + 1;
        t.recno <- t.recno + 1;
        t.open_group <- record :: t.open_group;
        (match record with
        | Begin -> t.in_txn <- true
        | Commit | Abort -> seal t
        | _ when t.in_txn -> ()
        | _ -> seal t));
      drain t

  let feed t s =
    t.buf <- t.buf ^ s;
    drain t

  let take_groups t =
    let gs = List.rev t.ready in
    t.ready <- [];
    gs

  let committed_bytes t = t.committed
  let committed_records t = t.committed_records
  let fed_bytes t = t.base + String.length t.buf
  let pending_records t = List.length t.open_group
end

exception Replay_error of string

let replay store records =
  let applied = ref 0 in
  List.iteri
    (fun i record ->
      let apply f =
        (try f ()
         with Gom.Store.Type_error m ->
           raise (Replay_error (Printf.sprintf "record %d: %s" (i + 1) m)));
        incr applied
      in
      match record with
      | Begin | Commit | Abort -> ()
      | Flush _ ->
        (* Maintenance flush barrier: the store carries no trace of it —
           recovery rebuilds every access support relation from scratch,
           so a replayed flush group is a (counted) no-op and a dropped
           one loses nothing. *)
        ()
      | Create (o, ty) -> apply (fun () -> Gom.Store.restore_object store o ty)
      | Set (o, a, v) -> apply (fun () -> Gom.Store.set_attr store o a v)
      | Insert (o, v) -> apply (fun () -> Gom.Store.insert_elem store o v)
      | Remove (o, v) -> apply (fun () -> Gom.Store.remove_elem store o v)
      | Delete (o, _) -> apply (fun () -> Gom.Store.delete store o)
      | Bind (name, o) -> apply (fun () -> Gom.Store.bind_name store name o))
    records;
  !applied
