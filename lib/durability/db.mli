(** A durable object base: an in-memory {!Gom.Store.t} whose every
    mutation is written ahead to a log, snapshotted periodically, and
    recoverable after a crash to a prefix-consistent state — with all
    registered access support relations rebuilt and verified.

    {2 Directory layout}

    {v
    <dir>/MANIFEST            current generation + registered ASRs
    <dir>/snapshot-<g>.base   atomic Serial.save of generation g
    <dir>/wal-<g>.log         CRC-framed log of events since snapshot g
    v}

    The manifest is replaced atomically (temp file + fsync + rename), so
    a checkpoint either completes — the manifest names the new
    generation — or leaves the previous generation fully intact; a
    half-written new snapshot is simply orphaned.

    {2 Recovery invariant}

    [open_] loads the manifest's snapshot, replays the write-ahead log's
    {e committed} prefix (see {!Wal.scan}), physically truncates the log
    back to that prefix (dropping both torn trailing bytes and intact
    records of unfinished transactions), rebuilds every registered ASR
    from the recovered base, and verifies each against a from-scratch
    {!Core.Extension.compute}.  The result equals the state at some
    transaction-consistent point of the pre-crash history. *)

exception Db_error of string
(** Misuse (double initialisation, closed handle, bad registration). *)

exception Recovery_error of string
(** Damage recovery cannot interpret: unreadable manifest or snapshot,
    or a log record that does not apply to the snapshot. *)

(** {2 Layout and registrations}

    The on-disk vocabulary is exposed so other subsystems speaking the
    same format — a replica materialising shipped segments into a
    directory this module can later recover, failover verification
    reading a dead primary's files — need not reinvent it. *)

val manifest_file : string -> string
(** [manifest_file dir] — the control file naming the live generation. *)

val snapshot_file : string -> int -> string
(** [snapshot_file dir gen] — generation [gen]'s atomic base image. *)

val wal_file : string -> int -> string
(** [wal_file dir gen] — generation [gen]'s write-ahead log. *)

type spec = {
  s_kind : Core.Extension.kind;
  s_dec : string option;  (** decomposition boundary list; [None] = binary *)
  s_path : string;  (** path expression, parsed against the schema *)
}
(** A persisted ASR registration, exactly one manifest line. *)

val spec_to_string : spec -> string
(** The manifest/wire form: [<kind> <dec|-> <path>]. *)

val spec_of_string : string -> spec option
(** Parse the wire form back; [None] on malformed input. *)

val spec_components :
  Gom.Store.t -> spec -> Gom.Path.t * Core.Extension.kind * Core.Decomposition.t
(** Resolve a spec against a store's schema into the pieces
    {!Core.Asr.create} (or [Parallel.Snapshot.source]'s spec list)
    wants.  @raise Recovery_error on a malformed path/decomposition. *)

val read_manifest : string -> int * spec list
(** Read [dir]'s manifest: live generation and registered ASR specs.
    @raise Recovery_error on a missing or malformed manifest. *)

val write_manifest : string -> int -> spec list -> unit
(** Atomically (temp + fsync + rename) replace [dir]'s manifest. *)

type t

val create :
  ?fault:Fault.t -> ?policy:Wal.sync_policy -> dir:string -> Gom.Store.t -> t
(** Initialise a durable base at [dir] (created if missing) from an
    in-memory store, as generation 1, and attach: from here on every
    store event is logged, and transactions on the store emit
    begin/commit/abort markers with commit as the flush barrier.
    Default policy is {!Wal.Sync_on_commit}.
    @raise Db_error if [dir] already holds a manifest. *)

val open_ :
  ?fault:Fault.t -> ?policy:Wal.sync_policy -> dir:string -> unit -> t
(** Recover an existing durable base (see the recovery invariant above)
    and attach to the recovered store. *)

type report = {
  generation : int;
  records_scanned : int;  (** intact records found in the log *)
  records_replayed : int;  (** of which committed and applied *)
  records_dropped : int;  (** intact but uncommitted, truncated away *)
  bytes_truncated : int;  (** physical bytes chopped off the log *)
  commits_replayed : int;  (** commit markers in the replayed prefix *)
  flushes_replayed : int;
      (** maintenance flush barriers ({!Wal.record.Flush}) in the
          replayed prefix — each one a flush group that survived whole;
          a mid-flush crash truncates its open group instead *)
  asr_checks : (string * bool) list;
      (** registered ASR spec, and whether the rebuilt relation equals a
          from-scratch computation over the recovered base *)
}

val last_recovery : t -> report option
(** The report of the {!open_} that produced this handle ([None] for a
    freshly {!create}d base). *)

val verified : report -> bool
(** All {!report.asr_checks} passed. *)

val store : t -> Gom.Store.t
val env : t -> Core.Exec.env
val generation : t -> int
val dir : t -> string

val asrs : t -> Core.Asr.t list
(** The registered, maintained access support relations. *)

val asr_specs : t -> spec list
(** Their persisted registrations, in registration order (parallel to
    {!asrs}). *)

val maintenance : t -> Core.Maintenance.t
(** The handle's maintenance manager — the integrity subsystem's repair
    jobs suspend/resume individual relations on it, and its
    {!Core.Maintenance.stats} accumulates page traffic and the
    scrub/fallback/retry counters. *)

val register_asr :
  t ->
  path:string ->
  kind:Core.Extension.kind ->
  ?dec:string ->
  unit ->
  Core.Asr.t
(** Materialise an ASR over a path expression (parsed against the
    store's schema), register it for incremental maintenance, and
    persist the registration in the manifest so recovery rebuilds it.
    [?dec] is a decomposition boundary list à la
    {!Core.Decomposition.of_string} (default: binary).
    @raise Db_error on a malformed path/decomposition or duplicate
    registration. *)

val bind_name : t -> string -> Gom.Oid.t -> unit
(** {!Gom.Store.bind_name}, write-ahead logged (name binding is not a
    store event, so going through the store directly would not
    survive recovery). *)

val flush : t -> unit
(** Explicit log barrier. *)

val flush_policy : t -> Core.Maintenance.flush_policy

val set_flush_policy : t -> Core.Maintenance.flush_policy -> unit
(** Switch the maintenance manager's flush policy
    ({!Core.Maintenance.set_policy}).  Switching to [Immediate] drains
    every pending delta first; that drain is framed in the log as one
    flush group, like {!flush_maintenance}. *)

val flush_maintenance : t -> int
(** Drain every registered ASR's deferred-maintenance buffers into
    their partition trees, framed in the write-ahead log as one
    [begin] / [flush n] / [commit] group so crash recovery replays or
    drops the flush atomically (replay is a store-level no-op — the
    trees are rebuilt from the manifest).  Returns the number of net
    deltas applied; 0 pending appends nothing.  Must not be called
    inside an open store transaction (the group framing would nest). *)

val checkpoint : t -> unit
(** Write a new atomic snapshot as generation [g+1], rotate to a fresh
    log, switch the manifest, and delete the old generation's files.
    Bounds recovery time by the work since the last checkpoint. *)

val wal_appended : t -> int
(** Records appended through this handle (for status display). *)

val close : t -> unit
(** Flush, close the log, detach listeners and hooks.  Idempotent. *)
