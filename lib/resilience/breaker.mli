(** Circuit breaker over repair/refresh work and transient read faults.

    Closed → (k consecutive failures) → Open → (jittered exponential
    backoff elapses) → Half-open: exactly one probe call is admitted;
    success closes the circuit and resets the backoff, failure re-opens
    it with the backoff doubled (capped at [max_backoff_s]).  While
    open, {!call} short-circuits with [Error `Open] — the caller falls
    back to its degraded path (for the serving stack: keep answering
    from the quarantine-degraded, possibly stale, always-live plans)
    instead of hammering a struggling dependency.

    The failure class defaults to {!Durability.Fault.Retryable} — the
    transient read faults the durability layer injects and retries.
    Exceptions outside the class propagate to the caller untouched and
    leave the breaker state alone. *)

type t

type config = {
  trip_after : int;  (** consecutive failures that open the circuit *)
  base_backoff_s : float;
  max_backoff_s : float;
  jitter : float;  (** +/- fraction of the backoff, in [0, 1] *)
}

val default_config : config
(** 3 failures, 0.1 s base, 30 s cap, 20% jitter. *)

type state = Closed | Open | Half_open

val create :
  ?config:config ->
  ?failure:(exn -> bool) ->
  ?seed:int ->
  clock:(unit -> float) ->
  unit ->
  t
(** The clock is injected (tests use simulated time); [seed] fixes the
    jitter stream so trip schedules replay deterministically. *)

val call :
  ?stats:Storage.Stats.t -> t -> (unit -> 'a) -> ('a, [ `Open | `Failed of exn ]) result
(** Run [f] through the breaker.  [Error `Open]: the circuit is open,
    [f] was not attempted (counted as [breaker_open] on [stats]).
    [Error (`Failed e)]: [f] raised a breaker-class exception, recorded
    against the trip counter.  Other exceptions propagate. *)

val state : t -> state

val trips : t -> int
(** Total times the circuit opened. *)
