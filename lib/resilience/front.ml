(* Admission-controlled front for Parallel.Server.

   Every query enters through [submit], which applies (in order) the
   per-client token-bucket rate limit and the bounded-queue admission
   policy, and returns a ticket immediately — overload never blocks the
   submitter, it sheds.  A dispatcher (a spawned domain, or the caller
   via [pump] in deterministic tests) drains the queue in batches
   through [Server.serve_deadlined], so each admitted query runs under
   its own cooperative cancellation budget and resolves to exactly one
   typed outcome.  The accounting identity

     offered = answered + shed + timed_out + failed

   holds by construction: every submitted ticket is resolved exactly
   once, on exactly one of those arms.

   Brownout: when the queue crosses the high watermark, writes routed
   through [update] stop publishing snapshots (publication is CoW —
   proportional to the writer's dirty set, not the base — but it still
   drains deferred index deltas and clones touched instances, so
   deferring it under overload is load relief; readers just keep the
   previous epoch, with the staleness surfaced as
   [stale_epoch_served]).  Once the queue drains below the low
   watermark, the front catches the snapshot up through the circuit
   breaker — a refresh that keeps failing transiently trips the breaker
   open and the front keeps serving the stale-but-exact epoch instead
   of hammering the capture path. *)

module Server = Parallel.Server

type policy = Reject_newest | Reject_oldest | Deadline_aware

let policy_to_string = function
  | Reject_newest -> "reject-newest"
  | Reject_oldest -> "reject-oldest"
  | Deadline_aware -> "deadline-aware"

let policy_of_string = function
  | "reject-newest" | "newest" -> Some Reject_newest
  | "reject-oldest" | "oldest" -> Some Reject_oldest
  | "deadline-aware" | "deadline" -> Some Deadline_aware
  | _ -> None

type shed_reason = Queue_full | Rate_limited

type outcome =
  | Answer of Server.answer
  | Shed of shed_reason
  | Timeout
  | Failed of string

type config = {
  max_queue : int;
  high_watermark : int;  (* queue depth that enters brownout *)
  low_watermark : int;  (* queue depth that leaves it *)
  shed_policy : policy;
  deadline_s : float option;  (* default per-query budget *)
  rate_limit : (float * float) option;  (* per-client (rate/s, burst) *)
  batch : int;  (* queries served per dispatch round *)
}

let default_config =
  {
    max_queue = 64;
    high_watermark = 48;
    low_watermark = 16;
    shed_policy = Deadline_aware;
    deadline_s = None;
    rate_limit = None;
    batch = 8;
  }

type ticket = {
  mutable t_outcome : outcome option;
  t_submitted_at : float;
  mutable t_resolved_at : float;
}

type entry = {
  e_ticket : ticket;
  e_query : Server.query;
  e_expires_at : float option;
  e_seq : int;
}

type counters = {
  offered : int;
  answered : int;
  shed : int;
  timed_out : int;
  failed : int;
}

type t = {
  server : Server.t;
  config : config;
  clock : unit -> float;
  breaker : Breaker.t;
  lock : Mutex.t;
  work : Condition.t;  (* queue became non-empty, or closing *)
  settled : Condition.t;  (* some ticket resolved *)
  mutable queue : entry list;  (* FIFO, head oldest *)
  mutable qlen : int;
  mutable seq : int;
  buckets : (string, Token_bucket.t) Hashtbl.t;
  stats : Storage.Stats.t;  (* front-side resilience counters *)
  mutable c_offered : int;
  mutable c_answered : int;
  mutable c_shed : int;
  mutable c_timed_out : int;
  mutable c_failed : int;
  mutable brownout : bool;
  mutable closed : bool;
  mutable dispatcher : unit Domain.t option;
}

(* Must hold t.lock. *)
let resolve t ticket outcome =
  assert (ticket.t_outcome = None);
  ticket.t_outcome <- Some outcome;
  ticket.t_resolved_at <- t.clock ();
  (match outcome with
  | Answer _ -> t.c_answered <- t.c_answered + 1
  | Shed _ -> t.c_shed <- t.c_shed + 1
  | Timeout -> t.c_timed_out <- t.c_timed_out + 1
  | Failed _ -> t.c_failed <- t.c_failed + 1);
  Condition.broadcast t.settled

let shed_locked t ticket reason =
  Storage.Stats.note_shed t.stats;
  resolve t ticket (Shed reason)

let submit ?(client = "anon") ?deadline_s t query =
  let now = t.clock () in
  Mutex.protect t.lock (fun () ->
      if t.closed then invalid_arg "Front.submit: front is shut down";
      t.c_offered <- t.c_offered + 1;
      let ticket = { t_outcome = None; t_submitted_at = now; t_resolved_at = now } in
      let admitted_by_rate =
        match t.config.rate_limit with
        | None -> true
        | Some (rate, burst) ->
          let bucket =
            match Hashtbl.find_opt t.buckets client with
            | Some b -> b
            | None ->
              let b = Token_bucket.create ~rate ~burst ~now in
              Hashtbl.add t.buckets client b;
              b
          in
          Token_bucket.take bucket ~now
      in
      if not admitted_by_rate then shed_locked t ticket Rate_limited
      else begin
        let expires_at =
          match (deadline_s, t.config.deadline_s) with
          | Some d, _ | None, Some d -> Some (now +. d)
          | None, None -> None
        in
        let entry =
          { e_ticket = ticket; e_query = query; e_expires_at = expires_at; e_seq = t.seq }
        in
        t.seq <- t.seq + 1;
        if t.qlen < t.config.max_queue then begin
          t.queue <- t.queue @ [ entry ];
          t.qlen <- t.qlen + 1;
          if t.qlen >= t.config.high_watermark then t.brownout <- true;
          Condition.signal t.work
        end
        else begin
          (* Bounded queue is full: shed according to policy.  The queue
             length is invariant across all three arms. *)
          match t.config.shed_policy with
          | Reject_newest -> shed_locked t ticket Queue_full
          | Reject_oldest -> (
            match t.queue with
            | victim :: rest ->
              t.queue <- rest @ [ entry ];
              shed_locked t victim.e_ticket Queue_full;
              Condition.signal t.work
            | [] -> (* max_queue = 0 *) shed_locked t ticket Queue_full)
          | Deadline_aware ->
            (* Evict the entry — the incoming one included — with the
               least remaining budget: it is the least likely to make
               its deadline, so shedding it preserves the most goodput.
               Ties evict the newest (largest sequence number). *)
            let remaining e =
              match e.e_expires_at with None -> infinity | Some x -> x -. now
            in
            let worse a b =
              let ra = remaining a and rb = remaining b in
              if ra < rb then a
              else if rb < ra then b
              else if a.e_seq > b.e_seq then a
              else b
            in
            let victim = List.fold_left worse entry t.queue in
            if victim == entry then shed_locked t ticket Queue_full
            else begin
              t.queue <- List.filter (fun e -> not (e == victim)) t.queue @ [ entry ];
              shed_locked t victim.e_ticket Queue_full;
              Condition.signal t.work
            end
        end
      end;
      ticket)

(* Catch the published snapshot up with the live base, through the
   circuit breaker: an open circuit (or a transient capture failure,
   which feeds the trip counter) leaves the stale epoch serving. *)
let maybe_catch_up t =
  let want =
    Mutex.protect t.lock (fun () -> (not t.brownout) && not t.closed)
  in
  if want && Server.lag t.server > 0 then
    match Breaker.call ~stats:t.stats t.breaker (fun () -> Server.refresh t.server) with
    | Ok () | Error `Open | Error (`Failed _) -> ()

let pump t =
  let batch =
    Mutex.protect t.lock (fun () ->
        let rec take k xs acc =
          if k = 0 then (List.rev acc, xs)
          else match xs with [] -> (List.rev acc, []) | x :: tl -> take (k - 1) tl (x :: acc)
        in
        let head, rest = take t.config.batch t.queue [] in
        t.queue <- rest;
        t.qlen <- t.qlen - List.length head;
        if t.brownout && t.qlen <= t.config.low_watermark then t.brownout <- false;
        head)
  in
  match batch with
  | [] ->
    maybe_catch_up t;
    0
  | batch ->
    let now = t.clock () in
    let live, dead =
      List.partition
        (fun e -> match e.e_expires_at with None -> true | Some x -> x > now)
        batch
    in
    Mutex.protect t.lock (fun () ->
        List.iter
          (fun e ->
            (* Expired while queued: never reached the pool, so the
               timeout is counted on the front's sheaf (mid-query
               expiries are counted by serve_deadlined on the worker
               sheaf — each timeout is counted exactly once). *)
            Storage.Stats.note_timed_out t.stats;
            resolve t e.e_ticket Timeout)
          dead);
    if live <> [] then begin
      if Server.lag t.server > 0 then
        Mutex.protect t.lock (fun () ->
            List.iter (fun _ -> Storage.Stats.note_stale_epoch_served t.stats) live);
      let entries =
        List.map
          (fun e ->
            let deadline =
              match e.e_expires_at with
              | None -> Core.Deadline.none ()
              | Some x -> Core.Deadline.until ~clock:t.clock x
            in
            (e.e_query, deadline))
          live
      in
      let served = Server.serve_deadlined t.server entries in
      Mutex.protect t.lock (fun () ->
          List.iter2
            (fun e s ->
              let o =
                match (s : Server.served) with
                | Server.Answered a -> Answer a
                | Server.Timed_out -> Timeout
                | Server.Failed m -> Failed m
              in
              resolve t e.e_ticket o)
            live served)
    end;
    maybe_catch_up t;
    List.length batch

let rec dispatcher_loop t =
  let run =
    Mutex.protect t.lock (fun () ->
        let rec await () =
          if t.qlen > 0 then true
          else if t.closed then false
          else begin
            Condition.wait t.work t.lock;
            await ()
          end
        in
        await ())
  in
  if run then begin
    (* A pump can only raise on a harness bug; the backstop keeps the
       dispatcher domain alive so no ticket waits forever. *)
    (try ignore (pump t) with _ -> ());
    dispatcher_loop t
  end

let create ?(config = default_config) ?clock ?breaker ?(spawn = false) server =
  if config.max_queue < 1 then invalid_arg "Front.create: max_queue must be >= 1";
  if config.batch < 1 then invalid_arg "Front.create: batch must be >= 1";
  if
    not
      (0 <= config.low_watermark
      && config.low_watermark <= config.high_watermark
      && config.high_watermark <= config.max_queue)
  then invalid_arg "Front.create: need 0 <= low <= high <= max_queue";
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  let breaker =
    match breaker with
    | Some b -> b
    (* refresh failures are capture-path faults; treat any raise as a
       breaker-class failure so the dispatcher can never die on one *)
    | None -> Breaker.create ~failure:(fun _ -> true) ~clock ()
  in
  let t =
    {
      server;
      config;
      clock;
      breaker;
      lock = Mutex.create ();
      work = Condition.create ();
      settled = Condition.create ();
      queue = [];
      qlen = 0;
      seq = 0;
      buckets = Hashtbl.create 16;
      stats = Storage.Stats.create ();
      c_offered = 0;
      c_answered = 0;
      c_shed = 0;
      c_timed_out = 0;
      c_failed = 0;
      brownout = false;
      closed = false;
      dispatcher = None;
    }
  in
  if spawn then t.dispatcher <- Some (Domain.spawn (fun () -> dispatcher_loop t));
  t

let await t ticket =
  Mutex.protect t.lock (fun () ->
      while ticket.t_outcome = None do
        Condition.wait t.settled t.lock
      done;
      Option.get ticket.t_outcome)

let outcome ticket = ticket.t_outcome

let latency_s ticket =
  match ticket.t_outcome with
  | None -> None
  | Some _ -> Some (ticket.t_resolved_at -. ticket.t_submitted_at)

let update t f =
  let defer = Mutex.protect t.lock (fun () -> t.brownout) in
  Server.update ~publish:(not defer) t.server f

let counters t =
  Mutex.protect t.lock (fun () ->
      {
        offered = t.c_offered;
        answered = t.c_answered;
        shed = t.c_shed;
        timed_out = t.c_timed_out;
        failed = t.c_failed;
      })

let stats t =
  Storage.Stats.merge (Server.stats t.server)
    (Mutex.protect t.lock (fun () -> Storage.Stats.snapshot t.stats))

let queue_length t = Mutex.protect t.lock (fun () -> t.qlen)
let in_brownout t = Mutex.protect t.lock (fun () -> t.brownout)
let breaker t = t.breaker

let shutdown t =
  let dispatcher =
    Mutex.protect t.lock (fun () ->
        if t.closed then None
        else begin
          t.closed <- true;
          Condition.broadcast t.work;
          let d = t.dispatcher in
          t.dispatcher <- None;
          d
        end)
  in
  match dispatcher with
  | Some d -> Domain.join d (* drains the queue before exiting *)
  | None ->
    (* Manual mode: drain inline so every ticket resolves. *)
    let rec drain () = if pump t > 0 then drain () in
    drain ()
