(* Classic token bucket with injected time: [tokens] refills at [rate]
   per second up to [burst], each admitted request spends one token.
   Time is an explicit argument, never sampled here, so admission
   decisions replay deterministically under a simulated clock. *)

type t = {
  rate : float;
  burst : float;
  mutable tokens : float;
  mutable last : float;
}

let create ~rate ~burst ~now =
  if rate <= 0. then invalid_arg "Token_bucket.create: rate must be positive";
  if burst < 1. then invalid_arg "Token_bucket.create: burst must be >= 1";
  { rate; burst; tokens = burst; last = now }

let refill t ~now =
  if now > t.last then begin
    t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.last) *. t.rate));
    t.last <- now
  end

let take ?(cost = 1.) t ~now =
  refill t ~now;
  if t.tokens >= cost then begin
    t.tokens <- t.tokens -. cost;
    true
  end
  else false

let level t ~now =
  refill t ~now;
  t.tokens
