(** Per-client token-bucket rate limiter with injected time.

    A bucket holds up to [burst] tokens and refills at [rate] tokens per
    second; each admitted request spends one.  The current time is
    always passed in, never sampled, so the limiter is a pure function
    of its call history — tests drive it with a simulated clock. *)

type t

val create : rate:float -> burst:float -> now:float -> t
(** [create ~rate ~burst ~now] starts full.  [rate] must be positive,
    [burst] at least 1. *)

val take : ?cost:float -> t -> now:float -> bool
(** Refill up to [now], then try to spend [cost] (default 1) tokens:
    [true] admits, [false] sheds without spending anything. *)

val level : t -> now:float -> float
(** Tokens available at [now] (after refill); for observability. *)
