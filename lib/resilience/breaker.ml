(* Circuit breaker: Closed / Open / Half-open with trip-after-k
   consecutive failures and jittered exponential backoff.

   The protected call runs outside the breaker's lock; only state
   transitions are serialised.  While open, calls short-circuit to
   [Error `Open] (recorded as [breaker_open] when handed a stats sheaf)
   until the backoff elapses; the first call after that is the
   half-open probe — exactly one in-flight probe is admitted, and its
   outcome either closes the circuit or re-opens it with a doubled
   backoff.  Jitter is drawn from a seeded [Random.State], so a given
   (seed, clock, outcome) history replays the same trip schedule. *)

type config = {
  trip_after : int;  (* consecutive failures that open the circuit *)
  base_backoff_s : float;
  max_backoff_s : float;
  jitter : float;  (* +/- fraction of the backoff, in [0, 1] *)
}

let default_config =
  { trip_after = 3; base_backoff_s = 0.1; max_backoff_s = 30.; jitter = 0.2 }

type state = Closed | Open | Half_open

type t = {
  config : config;
  clock : unit -> float;
  failure : exn -> bool;
  rng : Random.State.t;
  lock : Mutex.t;
  mutable failures : int;  (* consecutive, while closed *)
  mutable consecutive_trips : int;  (* backoff exponent *)
  mutable open_until : float option;  (* Some = circuit open *)
  mutable probing : bool;  (* the single half-open probe is in flight *)
  mutable trips_total : int;
}

(* Transient faults injected by the durability layer are the default
   failure class; anything else is a logic error and propagates. *)
let default_failure = function Durability.Fault.Retryable _ -> true | _ -> false

let create ?(config = default_config) ?(failure = default_failure) ?(seed = 0x5eed)
    ~clock () =
  if config.trip_after < 1 then invalid_arg "Breaker.create: trip_after must be >= 1";
  if config.base_backoff_s <= 0. then
    invalid_arg "Breaker.create: base_backoff_s must be positive";
  if not (config.jitter >= 0. && config.jitter <= 1.) then
    invalid_arg "Breaker.create: jitter must be in [0, 1]";
  {
    config;
    clock;
    failure;
    rng = Random.State.make [| seed |];
    lock = Mutex.create ();
    failures = 0;
    consecutive_trips = 0;
    open_until = None;
    probing = false;
    trips_total = 0;
  }

let state t =
  Mutex.protect t.lock (fun () ->
      match t.open_until with
      | None -> Closed
      | Some u -> if t.clock () >= u && not t.probing then Half_open else Open)

let trips t = Mutex.protect t.lock (fun () -> t.trips_total)

let trip t =
  t.consecutive_trips <- t.consecutive_trips + 1;
  t.trips_total <- t.trips_total + 1;
  t.failures <- 0;
  let backoff =
    Float.min t.config.max_backoff_s
      (t.config.base_backoff_s *. Float.pow 2. (float_of_int (t.consecutive_trips - 1)))
  in
  let jittered =
    backoff *. (1. +. (t.config.jitter *. ((2. *. Random.State.float t.rng 1.) -. 1.)))
  in
  t.open_until <- Some (t.clock () +. jittered)

let call ?stats t f =
  let admitted =
    Mutex.protect t.lock (fun () ->
        match t.open_until with
        | None -> true
        | Some u when t.clock () >= u && not t.probing ->
          (* Backoff elapsed: admit this call as the half-open probe. *)
          t.probing <- true;
          true
        | Some _ -> false)
  in
  if not admitted then begin
    (match stats with Some s -> Storage.Stats.note_breaker_open s | None -> ());
    Error `Open
  end
  else begin
    match f () with
    | v ->
      Mutex.protect t.lock (fun () ->
          t.failures <- 0;
          t.consecutive_trips <- 0;
          t.open_until <- None;
          t.probing <- false);
      Ok v
    | exception e when t.failure e ->
      Mutex.protect t.lock (fun () ->
          if t.probing || Option.is_some t.open_until then begin
            (* Failed half-open probe: re-open with doubled backoff. *)
            t.probing <- false;
            trip t
          end
          else begin
            t.failures <- t.failures + 1;
            if t.failures >= t.config.trip_after then trip t
          end);
      Error (`Failed e)
    | exception e ->
      (* Not a breaker-class failure: release the probe slot and let the
         caller see the raw exception. *)
      Mutex.protect t.lock (fun () -> t.probing <- false);
      raise e
  end
