(** Admission-controlled, deadline-aware front for {!Parallel.Server}.

    Queries enter through {!submit} — never blocking, never unbounded:
    a per-client token bucket and a bounded queue with a configurable
    shed policy decide admission immediately, and a dispatcher drains
    the queue through {!Parallel.Server.serve_deadlined} so each
    admitted query runs under its own cooperative cancellation budget.
    Every submitted query resolves to exactly one typed {!outcome}, so

    {e offered = answered + shed + timed_out + failed}

    holds exactly (checked by the serving benchmark's CI gate).

    Above the high watermark the front enters {e brownout}: writes via
    {!update} commit but defer snapshot publication (the expensive deep
    copy), and queries are answered from the previous epoch — exact,
    just stale, surfaced as [stale_epoch_served].  Below the low
    watermark the snapshot is caught up through a circuit {!Breaker},
    so a transiently failing capture path is probed with jittered
    exponential backoff instead of being hammered. *)

module Server = Parallel.Server

type t

type policy = Reject_newest | Reject_oldest | Deadline_aware

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

type shed_reason = Queue_full | Rate_limited

type outcome =
  | Answer of Server.answer  (** byte-identical to an unthrottled serve *)
  | Shed of shed_reason  (** rejected at admission; never started *)
  | Timeout  (** budget expired, queued or at a cancellation checkpoint *)
  | Failed of string  (** query-local failure; batch and pool survive *)

type config = {
  max_queue : int;
  high_watermark : int;  (** queue depth that enters brownout *)
  low_watermark : int;  (** queue depth that leaves it *)
  shed_policy : policy;
  deadline_s : float option;  (** default per-query budget *)
  rate_limit : (float * float) option;  (** per-client (rate/s, burst) *)
  batch : int;  (** queries served per dispatch round *)
}

val default_config : config
(** queue 64, watermarks 48/16, deadline-aware shedding, no default
    deadline, no rate limit, batches of 8. *)

type ticket
(** Handle for one submitted query. *)

type counters = {
  offered : int;
  answered : int;
  shed : int;
  timed_out : int;
  failed : int;
}

val create :
  ?config:config ->
  ?clock:(unit -> float) ->
  ?breaker:Breaker.t ->
  ?spawn:bool ->
  Server.t ->
  t
(** Front [server] with admission control.  [~spawn:true] runs the
    dispatcher on its own domain (production mode: {!await} blocks until
    it resolves the ticket); the default is manual mode, where the test
    or caller drives {!pump} — with a simulated [?clock], every
    admission and expiry decision is deterministic.  The front does not
    own the server: shut both down, front first. *)

val submit : ?client:string -> ?deadline_s:float -> t -> Server.query -> ticket
(** Non-blocking admission.  [?client] keys the rate limiter (default
    ["anon"]); [?deadline_s] overrides the config's default budget.
    Shed decisions resolve the ticket before returning. *)

val await : t -> ticket -> outcome
(** Block until the ticket resolves.  In manual mode, only returns once
    {!pump} (or {!shutdown}) has processed the entry. *)

val outcome : ticket -> outcome option
(** Non-blocking view of a ticket. *)

val latency_s : ticket -> float option
(** Submit-to-resolution latency, once resolved. *)

val pump : t -> int
(** Run one dispatch round inline: pop up to [batch] entries, time out
    the already-expired ones, serve the rest with their budgets, then
    catch the snapshot up if brownout has ended.  Returns the number of
    entries processed (0 = queue empty). *)

val update : t -> (Gom.Store.t -> 'a) -> 'a
(** Route a write through the server; during brownout, publication is
    deferred (bounded staleness) until the queue drains. *)

val counters : t -> counters
(** The accounting identity's terms; offered = answered + shed +
    timed_out + failed once all tickets are resolved. *)

val stats : t -> Storage.Stats.summary
(** Server accounting merged with the front's resilience counters
    ([shed], [timed_out], [breaker_open], [stale_epoch_served]). *)

val queue_length : t -> int
val in_brownout : t -> bool
val breaker : t -> Breaker.t

val shutdown : t -> unit
(** Drain every queued entry (resolving all tickets), then join the
    dispatcher domain if one was spawned.  Idempotent; {!submit}
    afterwards raises [Invalid_argument]. *)
