type event =
  | Created of Oid.t
  | Attr_set of {
      obj : Oid.t;
      attr : Schema.attr_name;
      old_value : Value.t;
      new_value : Value.t;
    }
  | Set_inserted of { set : Oid.t; elem : Value.t }
  | Set_removed of { set : Oid.t; elem : Value.t }
  | Deleted of { obj : Oid.t; ty : Schema.type_name }

exception Type_error of string

let error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

type t = {
  schema : Schema.t;
  gen : Oid.gen;
  objects : (Oid.t, Instance.t) Hashtbl.t;
  extents : (Schema.type_name, Oid.t list ref) Hashtbl.t; (* reverse creation order *)
  names : (string, Oid.t) Hashtbl.t;
  mutable listeners : (int * (event -> unit)) list; (* reverse subscription order *)
  mutable next_subscription : int;
  mutable epoch : int; (* bumped once per emitted mutation event *)
}

let create schema =
  (match Schema.well_formed schema with
  | Ok () -> ()
  | Error msg -> error "ill-formed schema: %s" msg);
  {
    schema;
    gen = Oid.make_gen ();
    objects = Hashtbl.create 1024;
    extents = Hashtbl.create 64;
    names = Hashtbl.create 16;
    listeners = [];
    next_subscription = 0;
    epoch = 0;
  }

let schema t = t.schema

let epoch t = t.epoch

let emit t ev =
  t.epoch <- t.epoch + 1;
  List.iter (fun (_, f) -> f ev) (List.rev t.listeners)

(* Deep structural clone: every instance body is copied, the immutable
   schema is shared, listeners are not carried over (a copy starts with
   no observers).  The copy is a fully functional store of its own —
   the parallel layer publishes copies as frozen epoch snapshots and
   simply never mutates them, making concurrent multi-domain reads
   safe (hashtable reads do not resize). *)
let copy t =
  let objects = Hashtbl.create (max 16 (Hashtbl.length t.objects)) in
  Hashtbl.iter
    (fun oid inst -> Hashtbl.replace objects oid (Instance.copy inst))
    t.objects;
  let extents = Hashtbl.create (max 16 (Hashtbl.length t.extents)) in
  Hashtbl.iter (fun ty r -> Hashtbl.replace extents ty (ref !r)) t.extents;
  (* Fork the generator at its current position instead of rescanning
     every object: identifiers already drawn stay taken on both sides,
     and the O(n) [ensure_above] sweep disappears. *)
  let gen = Oid.fork t.gen in
  {
    schema = t.schema;
    gen;
    objects;
    extents;
    names = Hashtbl.copy t.names;
    listeners = [];
    next_subscription = 0;
    epoch = t.epoch;
  }

type subscription = int

let subscribe t f =
  let id = t.next_subscription in
  t.next_subscription <- id + 1;
  t.listeners <- (id, f) :: t.listeners;
  id

let unsubscribe t id = t.listeners <- List.filter (fun (i, _) -> i <> id) t.listeners

let get t oid = Hashtbl.find_opt t.objects oid

let get_exn t oid =
  match get t oid with
  | Some inst -> inst
  | None -> error "unknown object %s" (Format.asprintf "%a" Oid.pp oid)

let mem t oid = Hashtbl.mem t.objects oid

let type_of t oid = Instance.ty (get_exn t oid)

let extent_ref t ty =
  match Hashtbl.find_opt t.extents ty with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add t.extents ty r;
    r

let new_object t ty =
  (match Schema.find t.schema ty with
  | None -> error "cannot instantiate unknown type %s" ty
  | Some (Schema.Atomic _) -> error "cannot instantiate elementary type %s" ty
  | Some (Schema.Tuple _ | Schema.Set _ | Schema.List _) -> ());
  let oid = Oid.fresh t.gen in
  let body =
    match Schema.find_exn t.schema ty with
    | Schema.Tuple _ ->
      let tbl = Hashtbl.create 8 in
      List.iter (fun (a, _) -> Hashtbl.replace tbl a Value.Null) (Schema.attrs t.schema ty);
      Instance.Tuple_body tbl
    | Schema.Set _ -> Instance.Set_body (Hashtbl.create 8)
    | Schema.List _ -> Instance.List_body (ref [])
    | Schema.Atomic _ -> assert false
  in
  Hashtbl.replace t.objects oid (Instance.make oid ty body);
  let r = extent_ref t ty in
  r := oid :: !r;
  emit t (Created oid);
  oid

(* A value conforms to declared type [decl] iff it is Null, an atomic
   value of that elementary type, or a reference to an instance whose
   type is a subtype of [decl] (strong typing with substitutability). *)
let conforms t ~decl (v : Value.t) =
  match v with
  | Value.Null -> true
  | Value.Ref o -> (
    match get t o with
    | None -> false
    | Some inst -> Schema.is_subtype t.schema ~sub:(Instance.ty inst) ~sup:decl)
  | Value.Int _ -> Schema.atomic_of t.schema decl = Some Schema.A_int
  | Value.Str _ -> Schema.atomic_of t.schema decl = Some Schema.A_string
  | Value.Dec _ -> Schema.atomic_of t.schema decl = Some Schema.A_dec
  | Value.Bool _ -> Schema.atomic_of t.schema decl = Some Schema.A_bool
  | Value.Char _ -> Schema.atomic_of t.schema decl = Some Schema.A_char

let check_conforms t ~what ~decl v =
  if not (conforms t ~decl v) then
    error "%s: value %s does not conform to type %s" what (Value.to_string v) decl

let get_attr t oid attr =
  let inst = get_exn t oid in
  match Instance.attr inst attr with
  | Some v -> v
  | None -> error "object %s of type %s has no attribute %s"
              (Format.asprintf "%a" Oid.pp oid) (Instance.ty inst) attr

let tuple_table inst =
  match (inst : Instance.t).body with
  | Instance.Tuple_body tbl -> tbl
  | Instance.Set_body _ | Instance.List_body _ ->
    error "object %s is not tuple-structured" (Format.asprintf "%a" Oid.pp (Instance.oid inst))

let set_attr t oid attr v =
  let inst = get_exn t oid in
  let decl =
    match Schema.attr_type t.schema (Instance.ty inst) attr with
    | Some ty -> ty
    | None ->
      error "type %s has no attribute %s" (Instance.ty inst) attr
  in
  check_conforms t ~what:(Printf.sprintf "set_attr %s" attr) ~decl v;
  let tbl = tuple_table inst in
  let old_value = Option.value ~default:Value.Null (Hashtbl.find_opt tbl attr) in
  if not (Value.equal old_value v) then begin
    Hashtbl.replace tbl attr v;
    emit t (Attr_set { obj = oid; attr; old_value; new_value = v })
  end

let elem_decl t oid =
  match Schema.element_type t.schema (type_of t oid) with
  | Some e -> e
  | None -> error "object %s is not a collection instance" (Format.asprintf "%a" Oid.pp oid)

let insert_elem t oid v =
  let decl = elem_decl t oid in
  check_conforms t ~what:"insert_elem" ~decl v;
  if Value.is_null v then error "cannot insert NULL into a set";
  let inst = get_exn t oid in
  match inst.body with
  | Instance.Set_body tbl ->
    if not (Hashtbl.mem tbl v) then begin
      Hashtbl.replace tbl v ();
      emit t (Set_inserted { set = oid; elem = v })
    end
  | Instance.List_body l ->
    l := !l @ [ v ];
    emit t (Set_inserted { set = oid; elem = v })
  | Instance.Tuple_body _ -> error "insert_elem: not a collection"

let remove_elem t oid v =
  let inst = get_exn t oid in
  match inst.body with
  | Instance.Set_body tbl ->
    if Hashtbl.mem tbl v then begin
      Hashtbl.remove tbl v;
      emit t (Set_removed { set = oid; elem = v })
    end
  | Instance.List_body l ->
    if List.exists (Value.equal v) !l then begin
      l := List.filter (fun x -> not (Value.equal x v)) !l;
      emit t (Set_removed { set = oid; elem = v })
    end
  | Instance.Tuple_body _ -> error "remove_elem: not a collection"

let elements t oid = Instance.elements (get_exn t oid)

let extent ?(deep = false) t ty =
  let exact ty =
    match Hashtbl.find_opt t.extents ty with Some r -> List.rev !r | None -> []
  in
  if not deep then exact ty
  else
    Schema.subtypes_closure t.schema ty
    |> List.concat_map exact
    |> List.sort Oid.compare

let count ?deep t ty = List.length (extent ?deep t ty)

(* Raw extent list in reverse creation order, as stored.  The returned
   list is the current value of the extent ref: list cells are immutable
   and never mutated in place (creation conses a new head, deletion
   rebuilds the spine), so a caller holding this list keeps a consistent
   point-in-time extent even while the store keeps mutating — the basis
   of structural sharing in frozen snapshots. *)
let extent_rev t ty =
  match Hashtbl.find_opt t.extents ty with Some r -> !r | None -> []

let extent_types t =
  Hashtbl.fold (fun ty r acc -> if !r = [] then acc else ty :: acc) t.extents []
  |> List.sort String.compare

let fold_objects t ~init ~f =
  let all = Hashtbl.fold (fun _ inst acc -> inst :: acc) t.objects [] in
  let all = List.sort (fun a b -> Oid.compare (Instance.oid a) (Instance.oid b)) all in
  List.fold_left f init all

let bind_name t name oid =
  ignore (get_exn t oid);
  Hashtbl.replace t.names name oid

let find_name t name = Hashtbl.find_opt t.names name

let names t =
  Hashtbl.fold (fun n o acc -> (n, o) :: acc) t.names []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Recreate a deleted object under its original identifier: the bare
   instantiation step of {!new_object}, minus the fresh-oid draw. *)
let restore_object t oid ty =
  if mem t oid then
    error "restore_object: %s is live" (Format.asprintf "%a" Oid.pp oid);
  let body =
    match Schema.find t.schema ty with
    | None -> error "restore_object: unknown type %s" ty
    | Some (Schema.Atomic _) -> error "restore_object: elementary type %s" ty
    | Some (Schema.Tuple _) ->
      let tbl = Hashtbl.create 8 in
      List.iter (fun (a, _) -> Hashtbl.replace tbl a Value.Null) (Schema.attrs t.schema ty);
      Instance.Tuple_body tbl
    | Some (Schema.Set _) -> Instance.Set_body (Hashtbl.create 8)
    | Some (Schema.List _) -> Instance.List_body (ref [])
  in
  Hashtbl.replace t.objects oid (Instance.make oid ty body);
  Oid.ensure_above t.gen oid;
  let r = extent_ref t ty in
  r := oid :: !r;
  emit t (Created oid)

let referencers t ty attr v =
  let decl_is_set =
    match Schema.attr_type t.schema ty attr with
    | Some rty -> Schema.is_set t.schema rty || Schema.element_type t.schema rty <> None
    | None -> error "type %s has no attribute %s" ty attr
  in
  extent ~deep:true t ty
  |> List.filter_map (fun o ->
         match get_attr t o attr with
         | Value.Null -> None
         | Value.Ref s when decl_is_set ->
           if List.exists (Value.equal v) (elements t s) then Some (o, Some s) else None
         | direct -> if Value.equal direct v then Some (o, None) else None)

let delete t oid =
  let inst = get_exn t oid in
  let target = Value.Ref oid in
  (* Nullify every inbound reference first, each through the regular
     mutators so that listeners observe consistent intermediate states. *)
  let holders =
    fold_objects t ~init:[] ~f:(fun acc i ->
        if Oid.equal (Instance.oid i) oid then acc
        else
          match i.Instance.body with
          | Instance.Tuple_body tbl ->
            Hashtbl.fold
              (fun a v acc -> if Value.equal v target then `Attr (Instance.oid i, a) :: acc else acc)
              tbl acc
          | Instance.Set_body tbl ->
            if Hashtbl.mem tbl target then `Elem (Instance.oid i) :: acc else acc
          | Instance.List_body l ->
            if List.exists (Value.equal target) !l then `Elem (Instance.oid i) :: acc
            else acc)
  in
  List.iter
    (function
      | `Attr (o, a) -> set_attr t o a Value.Null
      | `Elem s -> remove_elem t s target)
    holders;
  (* Clear the object's own outgoing state so listeners can retract
     paths that start at it. *)
  (match inst.Instance.body with
  | Instance.Tuple_body tbl ->
    let attrs = Hashtbl.fold (fun a v acc -> (a, v) :: acc) tbl [] in
    List.iter
      (fun (a, v) -> if not (Value.is_null v) then set_attr t oid a Value.Null)
      (List.sort (fun (a, _) (b, _) -> String.compare a b) attrs)
  | Instance.Set_body _ | Instance.List_body _ ->
    List.iter (fun v -> remove_elem t oid v) (elements t oid));
  Hashtbl.remove t.objects oid;
  let r = extent_ref t (Instance.ty inst) in
  r := List.filter (fun o -> not (Oid.equal o oid)) !r;
  Hashtbl.iter
    (fun n o -> if Oid.equal o oid then Hashtbl.remove t.names n)
    (Hashtbl.copy t.names);
  emit t (Deleted { obj = oid; ty = Instance.ty inst })
