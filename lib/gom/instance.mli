(** Object instances.

    An instance is the triple (identifier, value, type) of the paper
    (section 2.2).  Tuple-structured instances carry a mutable attribute
    table (attributes start out [Null]); set and list instances carry a
    mutable collection that starts out empty.  Instances are created and
    mutated through {!Store}, which enforces strong typing. *)

type body =
  | Tuple_body of (Schema.attr_name, Value.t) Hashtbl.t
  | Set_body of (Value.t, unit) Hashtbl.t
  | List_body of Value.t list ref

type t = private { oid : Oid.t; ty : Schema.type_name; body : body }

val make : Oid.t -> Schema.type_name -> body -> t
(** Used by {!Store}; not intended for direct use. *)

val copy : t -> t
(** Deep copy of the mutable body; identifier and type are shared.
    Copy-on-write snapshots clone exactly the instances the current
    epoch touched and share every other one by reference. *)

val oid : t -> Oid.t
val ty : t -> Schema.type_name

val attr : t -> Schema.attr_name -> Value.t option
(** [None] if the instance is not tuple-structured or the attribute was
    never initialised (callers treat that as [Null]). *)

val elements : t -> Value.t list
(** Elements of a set (sorted by {!Value.compare} for determinism) or
    list instance (in list order); [] for tuple instances. *)

val pp : Format.formatter -> t -> unit
