(** The object base: a strongly typed, mutable store of GOM instances.

    The store owns object creation (fresh identifiers), attribute
    mutation and collection mutation, and enforces GOM's typing rules
    (paper, section 2): an attribute constrained to type [t] may hold
    [Null] or a value conforming to [t], where conformance of an object
    reference means the referenced instance's type is a subtype of [t].

    Every successful mutation is broadcast to subscribed listeners;
    access support relation maintenance (module [Asr.Maintenance]) is
    driven by these events. *)

type t

type event =
  | Created of Oid.t
  | Attr_set of {
      obj : Oid.t;
      attr : Schema.attr_name;
      old_value : Value.t;
      new_value : Value.t;
    }
  | Set_inserted of { set : Oid.t; elem : Value.t }
  | Set_removed of { set : Oid.t; elem : Value.t }
  | Deleted of { obj : Oid.t; ty : Schema.type_name }
      (** Emitted after all inbound references were nullified (each
          nullification having produced its own event); carries the
          late object's type so listeners (e.g. transaction undo logs)
          can act on it. *)

exception Type_error of string
(** Raised on any violation of strong typing or on operations against
    unknown objects/attributes. *)

val create : Schema.t -> t
(** @raise Type_error if the schema is not {!Schema.well_formed}. *)

val schema : t -> Schema.t

val epoch : t -> int
(** Mutation counter: bumped once per emitted event, starting at 0 for
    a fresh store.  A {!copy} carries its source's epoch, so snapshot
    publication can label frozen copies with the store state they
    reflect. *)

val copy : t -> t
  [@@alert
    legacy
      "Store.copy deep-clones the whole base; read paths should consume \
       Store_view (Frozen snapshots share untouched objects across epochs). \
       Kept for writer-side cloning (tests, tools)."]
(** Deep structural clone sharing the (immutable) schema: objects keep
    their identifiers, extents, persistent names and the {!epoch} are
    preserved, and no listeners are carried over.  The clone is an
    independent store — mutating either side never affects the other.

    Deprecated as a snapshot mechanism: the parallel serving layer now
    publishes {!Frozen} copy-on-write snapshots behind {!Store_view}
    instead of deep copies.  [copy] remains for whole-base duplication
    (durability snapshot writing, tests). *)

val new_object : t -> Schema.type_name -> Oid.t
(** Instantiate a type: tuple instances get all attributes set to
    [Null], set and list instances start empty (paper: "instantiation").
    @raise Type_error for atomic or unknown types. *)

val get : t -> Oid.t -> Instance.t option
val get_exn : t -> Oid.t -> Instance.t
val type_of : t -> Oid.t -> Schema.type_name
val mem : t -> Oid.t -> bool

val get_attr : t -> Oid.t -> Schema.attr_name -> Value.t
(** @raise Type_error if the object or attribute does not exist. *)

val set_attr : t -> Oid.t -> Schema.attr_name -> Value.t -> unit
(** Type-checked assignment; a no-op (no event) if the new value equals
    the old one. *)

val insert_elem : t -> Oid.t -> Value.t -> unit
(** Insert into a set instance ([insert o into s] in the paper's
    pseudo-SQL); a no-op if already present. *)

val remove_elem : t -> Oid.t -> Value.t -> unit
(** Remove from a set instance; a no-op if absent. *)

val elements : t -> Oid.t -> Value.t list
(** Elements of a set/list instance, deterministic order. *)

val delete : t -> Oid.t -> unit
(** Delete an object: all references to it anywhere in the base are
    first nullified/removed (emitting the corresponding events), then
    the object disappears and [Deleted] is emitted. *)

val extent : ?deep:bool -> t -> Schema.type_name -> Oid.t list
(** Objects of exactly this type in creation order; with [~deep:true]
    (default [false]) instances of subtypes are included. *)

val count : ?deep:bool -> t -> Schema.type_name -> int

val extent_rev : t -> Schema.type_name -> Oid.t list
(** Raw extent in {e reverse} creation order, exactly as stored.  The
    returned list is immutable and structurally shared with the store's
    own extent (mutation replaces the spine rather than updating cells
    in place), so it stays a consistent point-in-time extent even as the
    store continues to mutate.  {!Frozen} snapshots capture extents this
    way. *)

val extent_types : t -> Schema.type_name list
(** Type names with a non-empty extent, sorted. *)

val fold_objects : t -> init:'a -> f:('a -> Instance.t -> 'a) -> 'a
(** Folds over every instance in the base in creation order. *)

val bind_name : t -> string -> Oid.t -> unit
(** Bind a persistent root name (the paper's [var OurRobots: ...]). *)

val find_name : t -> string -> Oid.t option

val names : t -> (string * Oid.t) list

type subscription
(** Handle on a registered listener, for {!unsubscribe}. *)

val subscribe : t -> (event -> unit) -> subscription
(** Register a mutation listener and return its handle.  Listeners run
    synchronously, after the store state has changed, in subscription
    order.  Callers that never detach discard the handle:
    [let (_ : subscription) = subscribe t f in ...]. *)

val unsubscribe : t -> subscription -> unit
(** Detach; idempotent. *)

val restore_object : t -> Oid.t -> Schema.type_name -> unit
(** Re-create a previously deleted object under its {e original}
    identifier, with all attributes NULL / collections empty (the
    inverse of the bare deletion step; transaction rollback restores
    attribute values through the regular mutators afterwards).  Emits
    [Created].
    @raise Type_error if the identifier is live or the type cannot be
    instantiated. *)

val referencers :
  t -> Schema.type_name -> Schema.attr_name -> Value.t -> (Oid.t * Oid.t option) list
(** [referencers t ty attr v] finds the objects of type [ty] (deep
    extent) whose attribute [attr] leads to [v]: directly
    ([(o, None)]) for single-valued attributes, or through a set
    ([(o, Some set_oid)]) for set-valued ones.  Implemented by an extent
    scan — references are uni-directional in GOM, so backward traversal
    has no physical support (that is the paper's motivation). *)
