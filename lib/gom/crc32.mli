(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), for integrity
    framing of persisted data: the {!Serial} store footer and the
    durability layer's write-ahead-log records. *)

val string : ?init:int32 -> string -> int32
(** Checksum of a whole string (or continue from a previous value with
    [?init], which must be the {e returned} checksum, not the internal
    register). *)

val sub : ?init:int32 -> string -> pos:int -> len:int -> int32
(** Checksum of a substring.  @raise Invalid_argument on bad bounds. *)

val to_hex : int32 -> string
(** Fixed-width lowercase hex image, 8 characters. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] if not 8 hex characters. *)
