type t = {
  store : Store.t;
  sub : Store.subscription;
  mutable log : Store.event list; (* newest first *)
  mutable state : [ `Active | `Committed | `Rolled_back ];
}

exception Txn_error of string

let error fmt = Format.kasprintf (fun s -> raise (Txn_error s)) fmt

(* The two module-level registries below are the only global mutable
   state in the GOM layer; [registry_lock] keeps them coherent when
   several domains run transactions over *different* stores (a single
   store is still single-writer by contract). *)
let registry_lock = Mutex.create ()

(* One active transaction per store, by physical identity. *)
let active_stores : Store.t list ref = ref []

let active store =
  Mutex.protect registry_lock (fun () ->
      List.exists (fun s -> s == store) !active_stores)

(* Check-and-mark atomically, so two domains racing [start] on the same
   store cannot both slip past the one-transaction-per-store gate. *)
let try_mark_active store =
  Mutex.protect registry_lock (fun () ->
      if List.exists (fun s -> s == store) !active_stores then false
      else begin
        active_stores := store :: !active_stores;
        true
      end)

let unmark_active store =
  Mutex.protect registry_lock (fun () ->
      active_stores := List.filter (fun s -> not (s == store)) !active_stores)

type hooks = {
  on_start : unit -> unit;
  on_commit : unit -> unit;
  on_rollback : unit -> unit;
}

(* Lifecycle observers, keyed by physical store identity (the
   durability layer turns these into write-ahead-log markers). *)
let hook_table : (Store.t * hooks) list ref = ref []

let set_hooks store h =
  Mutex.protect registry_lock (fun () ->
      hook_table :=
        (store, h) :: List.filter (fun (s, _) -> not (s == store)) !hook_table)

let clear_hooks store =
  Mutex.protect registry_lock (fun () ->
      hook_table := List.filter (fun (s, _) -> not (s == store)) !hook_table)

let hooks_of store =
  Mutex.protect registry_lock (fun () ->
      List.find_map (fun (s, h) -> if s == store then Some h else None) !hook_table)

let run_hook store f =
  match hooks_of store with None -> () | Some h -> f h

(* Release every per-store registration this transaction holds.  All the
   exception-safety paths below funnel through here, so no failure mode
   can leave the store marked active with a dangling event logger. *)
let release t state =
  Store.unsubscribe t.store t.sub;
  unmark_active t.store;
  t.state <- state

let ensure_active t =
  match t.state with
  | `Active -> ()
  | `Committed | `Rolled_back -> error "transaction already finished"

let start store =
  if not (try_mark_active store) then begin
    error "a transaction is already active on this store"
  end;
  let t =
    try
      let rec t =
        lazy
          {
            store;
            sub = Store.subscribe store (fun ev ->
                      let t = Lazy.force t in
                      t.log <- ev :: t.log);
            log = [];
            state = `Active;
          }
      in
      Lazy.force t
    with e ->
      unmark_active store;
      raise e
  in
  (* If the start hook refuses (e.g. the write-ahead log is gone), the
     store must not stay marked active. *)
  (try run_hook store (fun h -> h.on_start ())
   with e ->
     release t `Rolled_back;
     raise e);
  t

let events_logged t = List.length t.log

let commit t =
  ensure_active t;
  release t `Committed;
  t.log <- [];
  run_hook t.store (fun h -> h.on_commit ())

let undo store = function
  | Store.Created oid ->
    (* Creation is undone last for this object (its attribute writes
       were already reverted), so it is bare again. *)
    if Store.mem store oid then Store.delete store oid
  | Store.Attr_set { obj; attr; old_value; _ } ->
    if Store.mem store obj then Store.set_attr store obj attr old_value
  | Store.Set_inserted { set; elem } ->
    if Store.mem store set then Store.remove_elem store set elem
  | Store.Set_removed { set; elem } ->
    if Store.mem store set then Store.insert_elem store set elem
  | Store.Deleted { obj; ty } -> Store.restore_object store obj ty

let rollback t =
  ensure_active t;
  (* Detach this transaction's own event logger first, so the inverse
     mutations below are not themselves recorded; other listeners
     (maintenance, write-ahead log) do observe them.  [Fun.protect]
     guarantees the store is released even if a listener raises
     mid-undo. *)
  Store.unsubscribe t.store t.sub;
  Fun.protect
    ~finally:(fun () -> release t `Rolled_back)
    (fun () -> List.iter (undo t.store) t.log);
  t.log <- [];
  run_hook t.store (fun h -> h.on_rollback ())

let abandon t =
  match t.state with
  | `Committed | `Rolled_back -> ()
  | `Active ->
    release t `Rolled_back;
    t.log <- []

let with_txn store f =
  let t = start store in
  match f () with
  | v ->
    commit t;
    Ok v
  | exception e ->
    rollback t;
    Error e
