(** Persistence: a line-oriented text format for schemas and object
    bases.

    The format is versioned and self-contained (the schema travels with
    the data); objects keep their identifiers across a save/load
    round-trip, so persisted names, references — and access support
    relations rebuilt over the loaded base — line up with the
    original.  Collection elements are written in order, preserving
    list semantics.

    {v
    asr-object-base v1
    T tuple ROBOT - Name:STRING Arm:ARM
    T set ROBOT_SET ROBOT
    O 0 MANUFACTURER
    A 0 Name str:"RobClone"
    E 5 ref:3
    N OurRobots 5
    X 7c9f01a2 153
    v}

    The trailing [X <crc32> <length>] integrity footer covers every
    preceding byte, so a truncated, spliced or bit-damaged file raises
    {!Corrupt} instead of silently yielding a partial object base. *)

exception Corrupt of string
(** Raised by the readers on malformed input.  Every message carries the
    line and/or byte offset of the damage. *)

val value_to_string : Value.t -> string
(** One value in the format's tagged syntax ([null], [ref:3],
    [str:"x"], ...); newline-free.  Shared with the durability layer's
    write-ahead log. *)

val value_of_string : line:int -> string -> Value.t
(** Inverse of {!value_to_string}; [~line] (a line or record number) is
    quoted in {!Corrupt} messages. *)

val schema_to_string : Schema.t -> string
(** Only the type definitions (built-ins omitted). *)

val schema_of_string : string -> Schema.t

val store_to_string : Store.t -> string
(** Schema plus every object, attribute value, collection element and
    persistent name. *)

val store_of_string : string -> Store.t

val save : Store.t -> string -> unit
(** Write {!store_to_string} to a file {e atomically}: the bytes go to
    a sibling temp file which is fsynced and then renamed over the
    destination, so a crash mid-save leaves either the old file or the
    complete new one - never a torn mixture. *)

val load : string -> Store.t
(** Read a file written by {!save}.  @raise Corrupt on damage,
    truncation, or an unreadable file (no bare [Sys_error] escapes). *)

val load_via : reader:(string -> string) -> string -> Store.t
(** {!load} with the file reading delegated to [reader] — the
    durability layer routes snapshot loads through its fault-injection
    environment this way.  A [Sys_error] from the reader becomes
    {!Corrupt}; other exceptions (e.g. a transient-fault signal meant
    for a retry loop) propagate untouched, and damage in the returned
    bytes raises {!Corrupt} with byte-located messages as usual. *)
