type t = Live of Store.t | Frozen of Frozen.t

let live s = Live s
let frozen f = Frozen f
let is_frozen = function Live _ -> false | Frozen _ -> true
let live_store = function Live s -> Some s | Frozen _ -> None
let base = function Live s -> s | Frozen f -> Frozen.base f
let same_base a b = base a == base b
let schema = function Live s -> Store.schema s | Frozen f -> Frozen.schema f
let epoch = function Live s -> Store.epoch s | Frozen f -> Frozen.epoch f
let get t oid = match t with Live s -> Store.get s oid | Frozen f -> Frozen.get f oid

let get_exn t oid =
  match t with Live s -> Store.get_exn s oid | Frozen f -> Frozen.get_exn f oid

let mem t oid = match t with Live s -> Store.mem s oid | Frozen f -> Frozen.mem f oid

let type_of t oid =
  match t with Live s -> Store.type_of s oid | Frozen f -> Frozen.type_of f oid

let get_attr t oid attr =
  match t with
  | Live s -> Store.get_attr s oid attr
  | Frozen f -> Frozen.get_attr f oid attr

let elements t oid =
  match t with Live s -> Store.elements s oid | Frozen f -> Frozen.elements f oid

let extent ?deep t ty =
  match t with Live s -> Store.extent ?deep s ty | Frozen f -> Frozen.extent ?deep f ty

let count ?deep t ty =
  match t with Live s -> Store.count ?deep s ty | Frozen f -> Frozen.count ?deep f ty

let fold_objects t ~init ~f =
  match t with
  | Live s -> Store.fold_objects s ~init ~f
  | Frozen f_ -> Frozen.fold_objects f_ ~init ~f

let find_name t name =
  match t with Live s -> Store.find_name s name | Frozen f -> Frozen.find_name f name

let names = function Live s -> Store.names s | Frozen f -> Frozen.names f

let referencers t ty attr v =
  match t with
  | Live s -> Store.referencers s ty attr v
  | Frozen f -> Frozen.referencers f ty attr v
