module Omap = Map.Make (Oid)
module Smap = Map.Make (String)
module Oset = Set.Make (Oid)

let error fmt = Format.kasprintf (fun s -> raise (Store.Type_error s)) fmt

type t = {
  schema : Schema.t;
  epoch : int;
  objects : Instance.t Omap.t; (* bodies are private to this lineage *)
  extents : Oid.t list Smap.t; (* reverse creation order, like Store *)
  names : Oid.t Smap.t;
  base : Store.t; (* lineage witness; never read after construction *)
  population : int; (* Omap.cardinal objects, tracked incrementally:
                       cardinal itself walks the whole map and would put
                       an O(n) term back into [advance] *)
  copied : int; (* instances deep-copied when this epoch was built *)
  shared : int; (* instances carried over by reference *)
}

let schema t = t.schema
let epoch t = t.epoch
let base t = t.base
let copied t = t.copied
let shared t = t.shared

let names_of_store base =
  List.fold_left (fun acc (n, o) -> Smap.add n o acc) Smap.empty (Store.names base)

(* Initial capture: every mutable instance body is cloned once (the base
   keeps mutating bodies in place), extents and names are captured as
   immutable values.  Subsequent epochs share everything untouched. *)
let of_store base =
  let objects =
    Store.fold_objects base ~init:Omap.empty ~f:(fun acc inst ->
        Omap.add (Instance.oid inst) (Instance.copy inst) acc)
  in
  let extents =
    List.fold_left
      (fun acc ty -> Smap.add ty (Store.extent_rev base ty) acc)
      Smap.empty (Store.extent_types base)
  in
  let population = Omap.cardinal objects in
  {
    schema = Store.schema base;
    epoch = Store.epoch base;
    objects;
    extents;
    names = names_of_store base;
    base;
    population;
    copied = population;
    shared = 0;
  }

(* One epoch forward: [events] must be exactly the base's event suffix
   since [prev] was built, and the caller must hold off concurrent
   writers (the parallel server publishes under its writer mutex).
   Cost is O(|dirty set| log n) — independent of store size. *)
let advance prev events =
  let base = prev.base in
  if Store.schema base != prev.schema then
    error "Frozen.advance: snapshot does not descend from this base";
  (* Objects whose mutable body may differ from the previous epoch. *)
  let dirty =
    List.fold_left
      (fun acc (ev : Store.event) ->
        match ev with
        | Store.Created oid | Store.Deleted { obj = oid; _ } -> Oset.add oid acc
        | Store.Attr_set { obj; _ } -> Oset.add obj acc
        | Store.Set_inserted { set; _ } | Store.Set_removed { set; _ } ->
          Oset.add set acc)
      Oset.empty events
  in
  let copied = ref 0 in
  let population = ref prev.population in
  let objects =
    Oset.fold
      (fun oid acc ->
        match Store.get base oid with
        | Some inst ->
          incr copied;
          if not (Omap.mem oid acc) then incr population;
          Omap.add oid (Instance.copy inst) acc
        | None ->
          if Omap.mem oid acc then decr population;
          Omap.remove oid acc)
      dirty prev.objects
  in
  (* Extents only move on creation/deletion; [Deleted] carries the type
     and a created-then-deleted object re-announces its type through the
     later [Deleted] event, so [get] never misses a type we need. *)
  let touched_types =
    List.fold_left
      (fun acc (ev : Store.event) ->
        match ev with
        | Store.Created oid -> (
          match Store.get base oid with
          | Some inst -> Smap.add (Instance.ty inst) () acc
          | None -> acc)
        | Store.Deleted { ty; _ } -> Smap.add ty () acc
        | Store.Attr_set _ | Store.Set_inserted _ | Store.Set_removed _ -> acc)
      Smap.empty events
  in
  let extents =
    Smap.fold
      (fun ty () acc ->
        match Store.extent_rev base ty with
        | [] -> Smap.remove ty acc
        | l -> Smap.add ty l acc)
      touched_types prev.extents
  in
  {
    schema = prev.schema;
    epoch = Store.epoch base;
    objects;
    extents;
    (* Name bindings emit no events; they are few, so rebuild. *)
    names = names_of_store base;
    base;
    population = !population;
    copied = !copied;
    shared = !population - !copied;
  }

(* ---------------- read surface (mirrors Store) ---------------- *)

let get t oid = Omap.find_opt oid t.objects

let get_exn t oid =
  match get t oid with
  | Some inst -> inst
  | None -> error "unknown object %s" (Format.asprintf "%a" Oid.pp oid)

let mem t oid = Omap.mem oid t.objects
let type_of t oid = Instance.ty (get_exn t oid)

let get_attr t oid attr =
  let inst = get_exn t oid in
  match Instance.attr inst attr with
  | Some v -> v
  | None ->
    error "object %s of type %s has no attribute %s"
      (Format.asprintf "%a" Oid.pp oid)
      (Instance.ty inst) attr

let elements t oid = Instance.elements (get_exn t oid)

let extent ?(deep = false) t ty =
  let exact ty =
    match Smap.find_opt ty t.extents with Some l -> List.rev l | None -> []
  in
  if not deep then exact ty
  else
    Schema.subtypes_closure t.schema ty
    |> List.concat_map exact
    |> List.sort Oid.compare

let count ?deep t ty = List.length (extent ?deep t ty)

let fold_objects t ~init ~f =
  (* Omap iterates in ascending identifier order = creation order. *)
  Omap.fold (fun _ inst acc -> f acc inst) t.objects init

let find_name t name = Smap.find_opt name t.names
let names t = Smap.bindings t.names

let referencers t ty attr v =
  let decl_is_set =
    match Schema.attr_type t.schema ty attr with
    | Some rty -> Schema.is_set t.schema rty || Schema.element_type t.schema rty <> None
    | None -> error "type %s has no attribute %s" ty attr
  in
  extent ~deep:true t ty
  |> List.filter_map (fun o ->
         match get_attr t o attr with
         | Value.Null -> None
         | Value.Ref s when decl_is_set ->
           if List.exists (Value.equal v) (elements t s) then Some (o, Some s)
           else None
         | direct -> if Value.equal direct v then Some (o, None) else None)
