(** The unified read-only view of an object base.

    Everything that {e reads} the base — executor environments, engine
    planning and execution, the query language evaluator, the scrubber —
    programs against this interface, so the same code serves both the
    live mutable {!Store} and immutable {!Frozen} epoch snapshots.
    Separating the logical access surface from the physical
    representation is what lets snapshot publication be O(dirty set)
    structural sharing instead of a deep copy.

    A view never exposes mutation: holders of a [Store_view.t] cannot
    change the base through it. *)

type t =
  | Live of Store.t  (** reads see the base as it mutates *)
  | Frozen of Frozen.t  (** immutable epoch snapshot; domain-safe *)

val live : Store.t -> t
val frozen : Frozen.t -> t
val is_frozen : t -> bool

val live_store : t -> Store.t option
(** The underlying mutable store, only for [Live] views.  Write paths
    (maintenance, transactions) use this to recover mutation rights;
    frozen views deliberately return [None]. *)

val base : t -> Store.t
(** The live store this view descends from: the store itself for [Live],
    {!Frozen.base} for snapshots.  Identity on [base] defines lineage —
    a snapshot and its source compare equal. *)

val same_base : t -> t -> bool
(** Physical equality of {!base}: both views belong to one lineage. *)

(** {1 Read surface}

    Same contracts as the like-named {!Store} operations, including
    raising {!Store.Type_error} on unknown objects/attributes. *)

val schema : t -> Schema.t
val epoch : t -> int
val get : t -> Oid.t -> Instance.t option
val get_exn : t -> Oid.t -> Instance.t
val mem : t -> Oid.t -> bool
val type_of : t -> Oid.t -> Schema.type_name
val get_attr : t -> Oid.t -> Schema.attr_name -> Value.t
val elements : t -> Oid.t -> Value.t list
val extent : ?deep:bool -> t -> Schema.type_name -> Oid.t list
val count : ?deep:bool -> t -> Schema.type_name -> int
val fold_objects : t -> init:'a -> f:('a -> Instance.t -> 'a) -> 'a
val find_name : t -> string -> Oid.t option
val names : t -> (string * Oid.t) list

val referencers :
  t -> Schema.type_name -> Schema.attr_name -> Value.t -> (Oid.t * Oid.t option) list
