exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let header = "asr-object-base v1"

(* ---------------- values ---------------- *)

let value_to_string = function
  | Value.Null -> "null"
  | Value.Ref o -> Printf.sprintf "ref:%d" (Oid.to_int o)
  | Value.Int i -> Printf.sprintf "int:%d" i
  | Value.Dec f -> Printf.sprintf "dec:%h" f
  | Value.Str s -> Printf.sprintf "str:%S" s
  | Value.Bool b -> Printf.sprintf "bool:%b" b
  | Value.Char c -> Printf.sprintf "char:%d" (Char.code c)

let value_of_string ~line s =
  if s = "null" then Value.Null
  else
    match String.index_opt s ':' with
    | None -> corrupt "line %d: malformed value %S" line s
    | Some i -> (
      let tag = String.sub s 0 i in
      let payload = String.sub s (i + 1) (String.length s - i - 1) in
      let int_payload what =
        match int_of_string_opt payload with
        | Some v -> v
        | None -> corrupt "line %d: bad %s payload %S" line what payload
      in
      match tag with
      | "ref" -> Value.Ref (Oid.of_int (int_payload "ref"))
      | "int" -> Value.Int (int_payload "int")
      | "dec" -> (
        match float_of_string_opt payload with
        | Some f -> Value.Dec f
        | None -> corrupt "line %d: bad dec payload %S" line payload)
      | "bool" -> (
        match bool_of_string_opt payload with
        | Some b -> Value.Bool b
        | None -> corrupt "line %d: bad bool payload %S" line payload)
      | "char" -> Value.Char (Char.chr (int_payload "char" land 255))
      | "str" -> (
        try Scanf.sscanf payload "%S%!" Fun.id
            |> fun s -> Value.Str s
        with Scanf.Scan_failure _ | Failure _ | End_of_file ->
          corrupt "line %d: bad string payload" line)
      | other -> corrupt "line %d: unknown value tag %S" line other)

(* ---------------- schema ---------------- *)

let builtin name =
  match name with
  | "STRING" | "INT" | "INTEGER" | "DECIMAL" | "BOOL" | "CHAR" -> true
  | _ -> false

let schema_lines schema =
  let user = List.filter (fun n -> not (builtin n)) (Schema.type_names schema) in
  let fwd = List.map (fun n -> Printf.sprintf "F %s" n) user in
  let defs =
    List.map
      (fun name ->
        match Schema.find schema name with
        | Some (Schema.Tuple { supertypes; own_attrs }) ->
          Printf.sprintf "T tuple %s %s %s" name
            (match supertypes with [] -> "-" | l -> String.concat "," l)
            (String.concat " "
               (List.map (fun (a, ty) -> Printf.sprintf "%s:%s" a ty) own_attrs))
        | Some (Schema.Set elem) -> Printf.sprintf "T set %s %s" name elem
        | Some (Schema.List elem) -> Printf.sprintf "T list %s %s" name elem
        | Some (Schema.Atomic _) | None -> assert false)
      user
  in
  fwd @ defs

let schema_to_string schema = String.concat "\n" (schema_lines schema) ^ "\n"

let split_ws s = String.split_on_char ' ' s |> List.filter (fun x -> x <> "")

let apply_schema_line ~line schema s =
  match split_ws s with
  | [ "F"; name ] -> Schema.define_forward schema name
  | "T" :: "tuple" :: name :: sups :: attrs ->
    let supertypes =
      if sups = "-" then [] else String.split_on_char ',' sups
    in
    let own_attrs =
      List.map
        (fun spec ->
          match String.index_opt spec ':' with
          | Some i ->
            (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))
          | None -> corrupt "line %d: malformed attribute %S" line spec)
        attrs
    in
    Schema.define_tuple schema name ~supertypes own_attrs
  | [ "T"; "set"; name; elem ] -> Schema.define_set schema name elem
  | [ "T"; "list"; name; elem ] -> Schema.define_list schema name elem
  | _ -> corrupt "line %d: malformed schema line %S" line s

let schema_of_string text =
  let lines = String.split_on_char '\n' text in
  let _, schema =
    List.fold_left
      (fun (line, schema) s ->
        let s = String.trim s in
        if s = "" then (line + 1, schema)
        else
          ( line + 1,
            try apply_schema_line ~line schema s
            with Schema.Schema_error m -> corrupt "line %d: %s" line m ))
      (1, Schema.empty) lines
  in
  schema

(* ---------------- store ---------------- *)

(* Every serialised store ends with an integrity footer [X <crc> <len>]
   covering all preceding bytes, so that a truncated or bit-damaged file
   is detected instead of silently loading a partial object base. *)

let store_to_string store =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  out "%s" header;
  List.iter (out "%s") (schema_lines (Store.schema store));
  (* Objects first (in creation order), then state, so every reference
     target exists when values are restored. *)
  Store.fold_objects store ~init:() ~f:(fun () inst ->
      out "O %d %s" (Oid.to_int (Instance.oid inst)) (Instance.ty inst));
  Store.fold_objects store ~init:() ~f:(fun () inst ->
      let oid = Oid.to_int (Instance.oid inst) in
      match (inst : Instance.t).body with
      | Instance.Tuple_body tbl ->
        Hashtbl.fold (fun a v acc -> (a, v) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.iter (fun (a, v) ->
               if not (Value.is_null v) then out "A %d %s %s" oid a (value_to_string v))
      | Instance.Set_body _ | Instance.List_body _ ->
        List.iter
          (fun v -> out "E %d %s" oid (value_to_string v))
          (Instance.elements inst));
  List.iter
    (fun (name, oid) -> out "N %S %d" name (Oid.to_int oid))
    (Store.names store);
  let body = Buffer.contents buf in
  Printf.sprintf "%sX %s %d\n" body (Crc32.to_hex (Crc32.string body)) (String.length body)

(* Lines annotated with their 1-based line number and the byte offset of
   their first character, so Corrupt messages can point into the file. *)
let lines_with_offsets text =
  let n = String.length text in
  let rec go acc line off =
    if off >= n then List.rev acc
    else
      let stop =
        match String.index_from_opt text off '\n' with Some i -> i | None -> n
      in
      let acc = (line, off, String.trim (String.sub text off (stop - off))) :: acc in
      go acc (line + 1) (stop + 1)
  in
  go [] 1 0

let check_footer text =
  (* The writer always terminates the footer line, so an unterminated
     file lost at least its final byte. *)
  if text <> "" && text.[String.length text - 1] <> '\n' then
    corrupt "byte %d: missing final newline - file truncated?" (String.length text);
  let all =
    lines_with_offsets text |> List.filter (fun (_, _, s) -> s <> "")
  in
  match List.rev all with
  | [] -> corrupt "byte 0: empty input"
  | (fline, foff, footer) :: _ -> (
    match split_ws footer with
    | [ "X"; crc_hex; len_s ] -> (
      match (Crc32.of_hex crc_hex, int_of_string_opt len_s) with
      | Some crc, Some len when len >= 0 && len <= String.length text ->
        if foff <> len then
          corrupt
            "line %d (byte %d): integrity footer covers %d bytes but starts at byte %d - \
             file truncated or spliced"
            fline foff len foff
        else if not (Int32.equal (Crc32.sub text ~pos:0 ~len) crc) then
          corrupt "line %d (byte %d): checksum mismatch - file damaged" fline foff
      | _ -> corrupt "line %d (byte %d): malformed integrity footer %S" fline foff footer)
    | _ ->
      corrupt
        "line %d (byte %d): missing integrity footer %S - file truncated?"
        fline foff footer)

let store_of_string text =
  check_footer text;
  let lines =
    lines_with_offsets text
    |> List.filter (fun (_, _, s) -> s <> "" && s.[0] <> 'X')
    |> List.map (fun (line, off, s) -> ((line, off), s))
  in
  (match lines with
  | (_, h) :: _ when h = header -> ()
  | ((line, off), h) :: _ -> corrupt "line %d (byte %d): unknown header %S" line off h
  | [] -> corrupt "byte 0: no content before integrity footer");
  let lines = List.tl lines in
  let tagged tag = List.filter (fun (_, s) -> String.length s > 1 && s.[0] = tag) lines in
  (* Decorate errors raised while processing one line with its byte
     offset (the nested message already carries the line number). *)
  let located (_, off) f =
    try f () with Corrupt m -> corrupt "%s (byte %d)" m off
  in
  let schema =
    List.fold_left
      (fun schema ((line, _) as loc, s) ->
        located loc (fun () ->
            try apply_schema_line ~line schema s
            with Schema.Schema_error m -> corrupt "line %d: %s" line m))
      Schema.empty
      (tagged 'F' @ tagged 'T')
  in
  let store =
    try Store.create schema
    with Store.Type_error m -> corrupt "byte 0: invalid schema: %s" m
  in
  let parse_oid ~line s =
    match int_of_string_opt s with
    | Some i -> Oid.of_int i
    | None -> corrupt "line %d: bad object id %S" line s
  in
  let wrap ~line f = try f () with Store.Type_error m -> corrupt "line %d: %s" line m in
  List.iter
    (fun ((line, _) as loc, s) ->
      located loc (fun () ->
          match split_ws s with
          | [ "O"; oid; ty ] ->
            wrap ~line (fun () -> Store.restore_object store (parse_oid ~line oid) ty)
          | _ -> corrupt "line %d: malformed object line %S" line s))
    (tagged 'O');
  (* A/E lines carry a verbatim value tail (string payloads may contain
     runs of spaces), so only the leading fields are tokenised. *)
  let fields ~line ~count s =
    let len = String.length s in
    let rec go start acc remaining =
      if remaining = 0 then
        if start <= len then List.rev (String.sub s start (len - start) :: acc)
        else corrupt "line %d: truncated line %S" line s
      else
        match String.index_from_opt s start ' ' with
        | Some i -> go (i + 1) (String.sub s start (i - start) :: acc) (remaining - 1)
        | None -> corrupt "line %d: truncated line %S" line s
    in
    go 0 [] count
  in
  List.iter
    (fun ((line, _) as loc, s) ->
      located loc (fun () ->
          match fields ~line ~count:3 s with
          | [ "A"; oid; attr; value ] ->
            let v = value_of_string ~line value in
            wrap ~line (fun () -> Store.set_attr store (parse_oid ~line oid) attr v)
          | _ -> corrupt "line %d: malformed attribute line %S" line s))
    (tagged 'A');
  List.iter
    (fun ((line, _) as loc, s) ->
      located loc (fun () ->
          match fields ~line ~count:2 s with
          | [ "E"; oid; value ] ->
            let v = value_of_string ~line value in
            wrap ~line (fun () -> Store.insert_elem store (parse_oid ~line oid) v)
          | _ -> corrupt "line %d: malformed element line %S" line s))
    (tagged 'E');
  List.iter
    (fun ((line, _) as loc, s) ->
      (* N %S <oid> *)
      located loc (fun () ->
          try
            Scanf.sscanf s "N %S %d" (fun name oid ->
                wrap ~line (fun () -> Store.bind_name store name (Oid.of_int oid)))
          with Scanf.Scan_failure _ | Failure _ | End_of_file ->
            corrupt "line %d: malformed name line %S" line s))
    (tagged 'N');
  store

(* Atomic save: write a sibling temp file, fsync it, then rename over
   the destination, so a crash mid-save can never leave a half-written
   (or empty) base behind - either the old file or the new one is seen. *)
let save store filename =
  let dir = Filename.dirname filename in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename filename) ".tmp" in
  match
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (store_to_string store);
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc));
    Sys.rename tmp filename
  with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let load_via ~reader filename =
  let text = try reader filename with Sys_error m -> corrupt "cannot read %s: %s" filename m in
  store_of_string text

let read_file filename =
  let ic =
    try open_in_bin filename
    with Sys_error m -> corrupt "cannot open %s: %s" filename m
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try really_input_string ic (in_channel_length ic)
      with Sys_error m | Failure m -> corrupt "cannot read %s: %s" filename m
         | End_of_file -> corrupt "cannot read %s: unexpected end of file" filename)

let load filename = load_via ~reader:read_file filename
