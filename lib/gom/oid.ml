type t = int

let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let to_int t = t
let of_int i = i
let pp ppf t = Format.fprintf ppf "i%d" t

type gen = { mutable next : int }

let make_gen () = { next = 0 }

let fresh g =
  let id = g.next in
  g.next <- id + 1;
  id

let ensure_above g t = if t >= g.next then g.next <- t + 1
let fork g = { next = g.next }
