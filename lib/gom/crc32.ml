(* Table-driven CRC-32, reflected form, polynomial 0xEDB88320. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let sub ?(init = 0l) s ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Crc32.sub";
  let table = Lazy.force table in
  let c = ref (Int32.logxor init 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl) in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let string ?init s = sub ?init s ~pos:0 ~len:(String.length s)

let to_hex c = Printf.sprintf "%08lx" (Int32.logand c 0xFFFFFFFFl)

let of_hex s =
  let is_hex = function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false in
  if String.length s <> 8 || not (String.for_all is_hex s) then None
  else try Some (Int32.of_string ("0x" ^ s)) with Failure _ -> None
