type body =
  | Tuple_body of (Schema.attr_name, Value.t) Hashtbl.t
  | Set_body of (Value.t, unit) Hashtbl.t
  | List_body of Value.t list ref

type t = { oid : Oid.t; ty : Schema.type_name; body : body }

let make oid ty body = { oid; ty; body }

let copy t =
  let body =
    match t.body with
    | Tuple_body tbl -> Tuple_body (Hashtbl.copy tbl)
    | Set_body tbl -> Set_body (Hashtbl.copy tbl)
    | List_body l -> List_body (ref !l)
  in
  { t with body }

let oid t = t.oid
let ty t = t.ty

let attr t a =
  match t.body with
  | Tuple_body tbl -> Hashtbl.find_opt tbl a
  | Set_body _ | List_body _ -> None

let elements t =
  match t.body with
  | Tuple_body _ -> []
  | Set_body tbl ->
    Hashtbl.fold (fun v () acc -> v :: acc) tbl [] |> List.sort Value.compare
  | List_body l -> !l

let pp ppf t =
  match t.body with
  | Tuple_body tbl ->
    let fields =
      Hashtbl.fold (fun a v acc -> (a, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    Format.fprintf ppf "%a:%s[%s]" Oid.pp t.oid t.ty
      (String.concat ", "
         (List.map (fun (a, v) -> a ^ ": " ^ Value.to_string v) fields))
  | Set_body _ ->
    Format.fprintf ppf "%a:%s{%s}" Oid.pp t.oid t.ty
      (String.concat ", " (List.map Value.to_string (elements t)))
  | List_body _ ->
    Format.fprintf ppf "%a:%s<%s>" Oid.pp t.oid t.ty
      (String.concat ", " (List.map Value.to_string (elements t)))
