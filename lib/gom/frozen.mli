(** Persistent (immutable) epoch snapshots of a {!Store}.

    A frozen snapshot is a point-in-time image of an object base built
    on balanced immutable maps with structural sharing: publishing a new
    epoch from the previous one costs O(dirty set), not O(store).  The
    instances the epoch did not touch are {e physically} the same OCaml
    values as in the previous epoch (shared by reference); only objects
    named by the event suffix get their mutable bodies cloned.  Extents
    are captured as immutable lists that share their spine with the live
    store, and name bindings are rebuilt (they are few).

    Snapshots are immutable after construction: many domains may read
    one concurrently with no synchronisation, which is what the parallel
    serving layer relies on.  Readers normally consume snapshots through
    {!Store_view} rather than this module directly. *)

type t

val of_store : Store.t -> t
(** Initial capture: O(n) — clones every instance body once.  Later
    epochs of the same lineage should be built with {!advance}. *)

val advance : t -> Store.event list -> t
(** [advance prev events] is the snapshot of [prev]'s base store {e as
    it stands now}, given that [events] is exactly the suffix of events
    the base emitted since [prev] was built.  The caller must exclude
    concurrent writers for the duration of the call (the parallel
    server's writer mutex does).  Cost: O(|events| log n).

    @raise Store.Type_error if [prev] does not descend from the base. *)

val schema : t -> Schema.t

val epoch : t -> int
(** The base store's {!Store.epoch} at capture time. *)

val base : t -> Store.t
(** The live store this snapshot descends from.  A lineage witness for
    identity checks — reading it would defeat isolation. *)

val copied : t -> int
(** Instances deep-copied when this epoch was built (the dirty set). *)

val shared : t -> int
(** Instances carried over from the previous epoch by reference. *)

(** {1 Read surface}

    Same contracts as the like-named {!Store} operations, including
    raising {!Store.Type_error} on unknown objects/attributes. *)

val get : t -> Oid.t -> Instance.t option
val get_exn : t -> Oid.t -> Instance.t
val mem : t -> Oid.t -> bool
val type_of : t -> Oid.t -> Schema.type_name
val get_attr : t -> Oid.t -> Schema.attr_name -> Value.t
val elements : t -> Oid.t -> Value.t list
val extent : ?deep:bool -> t -> Schema.type_name -> Oid.t list
val count : ?deep:bool -> t -> Schema.type_name -> int
val fold_objects : t -> init:'a -> f:('a -> Instance.t -> 'a) -> 'a
val find_name : t -> string -> Oid.t option
val names : t -> (string * Oid.t) list

val referencers :
  t -> Schema.type_name -> Schema.attr_name -> Value.t -> (Oid.t * Oid.t option) list
