(** Lightweight transactions over an object base.

    A transaction records every mutation event between {!start} and
    {!commit}/{!rollback}.  Rollback replays the {e inverse} mutations
    in reverse order through the regular store mutators, so every
    listener — in particular access-support-relation maintenance —
    observes a consistent history and ends up exactly where it started.
    Deleted objects are resurrected under their original identifiers
    (the store's nullify-before-delete protocol guarantees the
    surrounding events restore their state).

    One transaction may be active per store at a time; nesting is not
    supported. *)

type t

exception Txn_error of string

val start : Store.t -> t
(** @raise Txn_error if a transaction is already active on this
    store. *)

val active : Store.t -> bool

val events_logged : t -> int

val commit : t -> unit
(** Keep all changes; the log is discarded.
    @raise Txn_error if the transaction already finished. *)

val rollback : t -> unit
(** Undo all changes made since {!start}.  The inverse mutations run
    through the regular store mutators, so remaining listeners (index
    maintenance, the write-ahead log) observe them as ordinary events —
    a durability layer logs them as {e compensation records}.  Even if a
    listener raises mid-undo, the store is released (exception-safe).
    @raise Txn_error if the transaction already finished. *)

val abandon : t -> unit
(** Drop the transaction {e without} undoing: release the store and
    discard the log, leaving the object base as the mutations left it.
    Used by crash simulation and process teardown, where the in-memory
    state is about to be discarded wholesale.  Idempotent; runs no
    hook. *)

type hooks = {
  on_start : unit -> unit;    (** after the transaction became active *)
  on_commit : unit -> unit;   (** after a successful commit *)
  on_rollback : unit -> unit; (** after the undo completed *)
}
(** Lifecycle observers for one store.  The durability layer maps these
    to write-ahead-log begin/commit/abort markers, with commit acting as
    the log's flush barrier.  If [on_start] raises, {!start} releases
    the store again and re-raises (the transaction never existed). *)

val set_hooks : Store.t -> hooks -> unit
(** Install (or replace) the lifecycle hooks of a store. *)

val clear_hooks : Store.t -> unit
(** Remove them; idempotent. *)

val with_txn : Store.t -> (unit -> 'a) -> ('a, exn) result
(** Run the function inside a transaction: commit on success, rollback
    (and return the exception) on failure. *)
