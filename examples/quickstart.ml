(* Quickstart: the paper's robot example (section 2.2) end to end.

   Builds the Figure 1 object base, materialises an access support
   relation over ROBOT.Arm.MountedTool.ManufacturedBy.Location, and
   answers Query 1 - "find the robots which use a tool manufactured in
   Utopia" - three ways: by navigating the object graph, through the
   ASR, and through the GOM-SQL front end.  Page accesses are printed
   for each, then an update shows the ASR being maintained.

   Run with: dune exec examples/quickstart.exe *)

let section title = Format.printf "@.== %s ==@." title

let () =
  section "1. Build the object base (Figure 1)";
  let b = Workload.Schemas.Robot.base () in
  let store = b.Workload.Schemas.Robot.store in
  Format.printf "schema:@.%a" Gom.Schema.pp (Gom.Store.schema store);
  Format.printf "robots: %d, tools: %d, manufacturers: %d@."
    (Gom.Store.count store "ROBOT") (Gom.Store.count store "TOOL")
    (Gom.Store.count store "MANUFACTURER");

  (* A heap lays the objects out on simulated pages; all costs below are
     page accesses against it. *)
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
  let env = Core.Exec.make store heap in
  let stats = env.Core.Exec.stats in

  section "2. The path expression";
  let path = Workload.Schemas.Robot.location_path store in
  Format.printf "path: %a  (n = %d, linear = %b)@." Gom.Path.pp path
    (Gom.Path.length path) (Gom.Path.linear path);

  section "3. Query 1 by navigation (no access support)";
  Storage.Stats.begin_op stats;
  let robots =
    Core.Exec.backward_scan env path ~i:0 ~j:4 ~target:(Gom.Value.Str "Utopia")
  in
  Format.printf "robots from Utopia: %s  (%d page accesses)@."
    (String.concat ", "
       (List.map
          (fun o -> Gom.Value.to_string (Gom.Store.get_attr store o "Name"))
          robots))
    (Storage.Stats.op_accesses stats);

  section "4. Materialise an access support relation";
  let index =
    Core.Asr.create store path Core.Extension.Canonical
      (Core.Decomposition.trivial ~m:4)
  in
  Format.printf "canonical extension, no decomposition: %d tuples@."
    (Core.Asr.cardinal index);
  Format.printf "%a@." Relation.pp (Core.Asr.extension_relation index);

  Storage.Stats.begin_op stats;
  let robots' =
    Core.Exec.backward_supported env index ~i:0 ~j:4
      ~target:(Gom.Value.Str "Utopia")
  in
  Format.printf "same query through the ASR: %d robots (%d page accesses)@."
    (List.length robots')
    (Storage.Stats.op_accesses stats);
  assert (robots = robots');

  section "5. The engine prices the strategies and picks the plan";
  let engine = Engine.create env in
  Engine.register engine index;
  let result =
    Gql.Eval.query ~engine
      {|select r.Name from r in OurRobots
        where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"|}
  in
  Format.printf "plan: %s@." (Gql.Eval.plan_to_string result.Gql.Eval.plan);
  List.iter
    (fun row ->
      Format.printf "  %s@." (String.concat ", " (List.map Gom.Value.to_string row)))
    result.Gql.Eval.rows;

  section "6. Updates are propagated into the ASR";
  let mgr = Core.Maintenance.create env in
  Core.Maintenance.register mgr index;
  (* RobClone relocates: every complete path now ends in "Marsopolis". *)
  Gom.Store.set_attr store b.Workload.Schemas.Robot.rob_clone "Location"
    (Gom.Value.Str "Marsopolis");
  Format.printf "after relocating RobClone (%d maintenance page accesses):@."
    (Core.Maintenance.last_event_cost mgr);
  (* The update also bumped the engine's generation counter, so any
     cached plan for this path is invalidated and repriced. *)
  let result =
    Gql.Eval.query ~engine
      {|select r.Name from r in OurRobots
        where r.Arm.MountedTool.ManufacturedBy.Location = "Marsopolis"|}
  in
  List.iter
    (fun row ->
      Format.printf "  %s@." (String.concat ", " (List.map Gom.Value.to_string row)))
    result.Gql.Eval.rows;
  let ci = Engine.cache_info engine in
  Format.printf "plan cache: %d hit(s), %d miss(es), %d invalidation(s)@."
    ci.Engine.hits ci.Engine.misses ci.Engine.invalidations;
  Format.printf "@.done.@."
