(* The company example (paper, section 2.3): paths through set-valued
   attributes, the four extensions side by side, decompositions, and the
   paper's Queries 2 and 3.

   Run with: dune exec examples/company.exe *)

module C = Workload.Schemas.Company

let section title = Format.printf "@.== %s ==@." title

let show_extension store path kind =
  let rel = Core.Extension.compute store path kind in
  Format.printf "@.E_%s (%d tuples):@.%a" (Core.Extension.name kind)
    (Relation.cardinal rel) Relation.pp rel

let () =
  section "1. The Figure 2 object base";
  let b = C.base () in
  let store = b.C.store in
  Format.printf "%a" Gom.Schema.pp (Gom.Store.schema store);
  let path = C.name_path store in
  Format.printf "path: %a  (n = %d, set occurrences = %d, arity = %d)@." Gom.Path.pp
    path (Gom.Path.length path) (Gom.Path.set_occurrences path) (Gom.Path.arity path);

  section "2. Auxiliary relations (Definition 3.3)";
  List.iteri
    (fun j rel ->
      let lo, hi = Core.Aux_rel.column_span path j in
      Format.printf "@.E%d (columns S%d..S%d):@.%a" j lo hi Relation.pp rel)
    (Core.Aux_rel.build store path);

  section "3. The four extensions (Definitions 3.4-3.7)";
  List.iter (show_extension store path) Core.Extension.all;
  Format.printf
    "@.note how 'full' holds the Truck->MB Trak truncation AND the@.\
     unreachable Sausage->Pepper path, 'left' only the former, 'right'@.\
     only the latter, and 'can' neither.@.";

  section "4. Decomposition and losslessness (Theorem 3.9)";
  let full = Core.Extension.compute store path Core.Extension.Full in
  List.iter
    (fun dec ->
      let parts = Core.Decomposition.split full dec in
      let rejoined = Relation.reconstruct parts in
      Format.printf "decomposition %s: %d partitions, lossless = %b@."
        (Core.Decomposition.to_string dec)
        (List.length parts)
        (Relation.equal full rejoined))
    [ Core.Decomposition.trivial ~m:5;
      Core.Decomposition.binary ~m:5;
      Core.Decomposition.make ~m:5 [ 0; 2; 5 ] ];

  section "5. Queries 2 and 3 through the GOM-SQL front end";
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
  let env = (Core.Exec.make store heap) in
  let index =
    Core.Asr.create store path Core.Extension.Full (Core.Decomposition.binary ~m:5)
  in
  let engine = Engine.create env in
  Engine.register engine index;
  let run text =
    let r = Gql.Eval.query ~engine text in
    Format.printf "@.%s@.  plan: %s, %d pages@." (String.trim text)
      (Gql.Eval.plan_to_string r.Gql.Eval.plan)
      r.Gql.Eval.pages;
    List.iter
      (fun row ->
        Format.printf "  -> %s@." (String.concat ", " (List.map Gom.Value.to_string row)))
      r.Gql.Eval.rows
  in
  run
    {|select d.Name from d in Mercedes, b in d.Manufactures.Composition
      where b.Name = "Door"|};
  run {|select d.Manufactures.Composition.Name from d in Mercedes where d.Name = "Auto"|};

  section "6. Maintenance through a set-valued attribute";
  let mgr = Core.Maintenance.create env in
  Core.Maintenance.register mgr index;
  (* MB Trak finally gets a bill of materials. *)
  let parts = Gom.Store.new_object store "BasePartSET" in
  Gom.Store.insert_elem store parts (Gom.Value.Ref b.C.pepper);
  Gom.Store.set_attr store b.C.mb_trak "Composition" (Gom.Value.Ref parts);
  Format.printf "insert Pepper into MB Trak's composition...@.";
  run
    {|select d.Name from d in Mercedes, b in d.Manufactures.Composition
      where b.Name = "Pepper"|};
  Format.printf "@.done.@."
