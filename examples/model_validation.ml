(* Validating the analytical cost model against the executable engine.

   The paper evaluates access support relations purely analytically (a
   Lisp implementation of the formulas).  Because this reproduction also
   contains a page-accurate execution engine, we can do what the paper
   could not: generate an object base with a profile's exact statistics,
   run real queries against real B+ trees and a real object heap, and
   compare counted page accesses with the model's predictions.

   Run with: dune exec examples/model_validation.exe *)

module P = Costmodel.Profile
module QC = Costmodel.Query_cost
module SC = Costmodel.Storage_cost
module X = Core.Extension
module D = Core.Decomposition

let section title = Format.printf "@.== %s ==@." title

let profile =
  P.make
    ~c:[ 1500.; 1500.; 1500.; 1500. ]
    ~d:[ 1400.; 1300.; 1200. ]
    ~fan:[ 1.; 1.; 1. ]
    ~sizes:[ 250.; 250.; 250.; 120. ]
    ()

let () =
  section "1. Generate a base matching the profile";
  Format.printf "%a@." P.pp profile;
  let spec = Workload.Generator.of_profile ~seed:2026 ~set_valued:[ false; false; false ] profile in
  let store, path = Workload.Generator.build spec in
  let heap = Storage.Heap.create ~size_of:(Workload.Generator.size_of spec) store in
  let env = Core.Exec.make store heap in
  let n = Gom.Path.length path in
  Format.printf "generated %d objects over path %a@."
    (List.length
       (List.concat_map
          (fun i -> Gom.Store.extent store (Printf.sprintf "T%d" i))
          [ 0; 1; 2; 3 ]))
    Gom.Path.pp path;

  section "2. Storage: measured vs predicted pages per design";
  Format.printf "%-22s %10s %10s@." "design" "measured" "predicted";
  List.iter
    (fun (label, kind, dec) ->
      let a = Core.Asr.create store path kind dec in
      let measured =
        List.fold_left
          (fun acc (g : Core.Asr.part_geometry) -> acc + g.Core.Asr.leaf_pages)
          0 (Core.Asr.geometry a)
      in
      Format.printf "%-22s %10d %10.0f@." label measured
        (SC.total_pages profile kind dec))
    [ ("can (0,3)", X.Canonical, D.trivial ~m:n);
      ("can binary", X.Canonical, D.binary ~m:n);
      ("full binary", X.Full, D.binary ~m:n);
      ("left (0,2,3)", X.Left_complete, D.make ~m:n [ 0; 2; 3 ]);
      ("right binary", X.Right_complete, D.binary ~m:n) ];

  section "3. Queries: measured vs predicted page accesses";
  let stats = env.Core.Exec.stats in
  let measure f =
    Storage.Stats.begin_op stats;
    f ();
    Storage.Stats.op_accesses stats
  in
  let some_target j =
    match Gom.Store.extent store (Printf.sprintf "T%d" j) with
    | o :: _ -> Gom.Value.Ref o
    | [] -> assert false
  in
  let some_source = List.hd (Gom.Store.extent store "T0") in
  Format.printf "%-34s %10s %10s@." "query" "measured" "predicted";
  (* Unsupported. *)
  let m =
    measure (fun () ->
        ignore (Core.Exec.backward_scan env path ~i:0 ~j:n ~target:(some_target n)))
  in
  Format.printf "%-34s %10d %10.0f@." "bw(0,3), no support" m (QC.qnas profile QC.Bw 0 n);
  let m =
    measure (fun () ->
        ignore (Core.Exec.forward_scan env path ~i:0 ~j:n some_source))
  in
  Format.printf "%-34s %10d %10.0f@." "fw(0,3), no support" m (QC.qnas profile QC.Fw 0 n);
  (* Supported, several designs. *)
  List.iter
    (fun (label, kind, dec) ->
      let a = Core.Asr.create store path kind dec in
      let m =
        measure (fun () ->
            ignore
              (Core.Exec.backward_supported env a ~i:0 ~j:n ~target:(some_target n)))
      in
      Format.printf "%-34s %10d %10.0f@."
        (Printf.sprintf "bw(0,3), %s" label)
        m
        (QC.qsup profile kind dec QC.Bw 0 n))
    [ ("can (0,3)", X.Canonical, D.trivial ~m:n);
      ("full binary", X.Full, D.binary ~m:n);
      ("left (0,2,3)", X.Left_complete, D.make ~m:n [ 0; 2; 3 ]) ];

  section "4. Sub-path queries and fallback";
  let a = Core.Asr.create store path X.Right_complete (D.binary ~m:n) in
  let m =
    measure (fun () ->
        ignore (Core.Exec.backward ~index:a env path ~i:1 ~j:n ~target:(some_target n)))
  in
  Format.printf "bw(1,3) via right-complete: %d pages (model: %.0f)@." m
    (QC.q profile X.Right_complete (D.binary ~m:n) QC.Bw 1 n);
  let m =
    measure (fun () ->
        ignore (Core.Exec.backward ~index:a env path ~i:0 ~j:2 ~target:(some_target 2)))
  in
  Format.printf "bw(0,2) falls back to navigation: %d pages (model: %.0f)@." m
    (QC.q profile X.Right_complete (D.binary ~m:n) QC.Bw 0 2);

  Format.printf
    "@.The rankings agree; absolute numbers differ only where Yao's@.\
     expected-value approximation rounds differently from a concrete base.@.";
  Format.printf "@.done.@."
