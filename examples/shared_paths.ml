(* Sharing access support relations between overlapping path
   expressions (paper, section 5.4), and the usage-monitoring loop the
   conclusion proposes.

   Two path expressions with a common tail -
   Division.Manufactures.Composition.Name and
   Factory.Makes.Composition.Name - are indexed against one sharing
   pool: the Product->BasePart->Name partition is materialised once and
   serves both.  A monitor then watches the running workload and re-runs
   the design advisor against the measured profile.

   Run with: dune exec examples/shared_paths.exe *)

module A = Core.Asr
module D = Core.Decomposition
module X = Core.Extension
module V = Gom.Value

let section title = Format.printf "@.== %s ==@." title

let () =
  section "1. A schema with two paths sharing a tail";
  let s = Workload.Schemas.Company.schema () in
  let s = Gom.Schema.define_tuple s "Factory" [ ("City", "STRING"); ("Makes", "ProdSET") ] in
  let store = Gom.Store.create s in
  (* Populate: two divisions and two factories over a shared product
     catalogue. *)
  let part name price =
    let b = Gom.Store.new_object store "BasePart" in
    Gom.Store.set_attr store b "Name" (V.Str name);
    Gom.Store.set_attr store b "Price" (V.Dec price);
    b
  in
  let collection ty elems =
    let c = Gom.Store.new_object store ty in
    List.iter (fun x -> Gom.Store.insert_elem store c (V.Ref x)) elems;
    c
  in
  let product name parts =
    let p = Gom.Store.new_object store "Product" in
    Gom.Store.set_attr store p "Name" (V.Str name);
    Gom.Store.set_attr store p "Composition" (V.Ref (collection "BasePartSET" parts));
    p
  in
  let door = part "Door" 1205.5 and wheel = part "Wheel" 99.9 and seat = part "Seat" 49.0 in
  let car = product "Car" [ door; wheel; seat ] in
  let bike = product "Bike" [ wheel; seat ] in
  let division name prods =
    let d = Gom.Store.new_object store "Division" in
    Gom.Store.set_attr store d "Name" (V.Str name);
    Gom.Store.set_attr store d "Manufactures" (V.Ref (collection "ProdSET" prods));
    d
  in
  let factory city prods =
    let f = Gom.Store.new_object store "Factory" in
    Gom.Store.set_attr store f "City" (V.Str city);
    Gom.Store.set_attr store f "Makes" (V.Ref (collection "ProdSET" prods));
    f
  in
  let _auto = division "Auto" [ car ] and _two = division "TwoWheelers" [ bike ] in
  let _ulm = factory "Ulm" [ car; bike ] and _jena = factory "Jena" [ bike ] in
  let div_path = Gom.Path.make s "Division" [ "Manufactures"; "Composition"; "Name" ] in
  let fac_path = Gom.Path.make s "Factory" [ "Makes"; "Composition"; "Name" ] in
  Format.printf "path 1: %a@.path 2: %a@." Gom.Path.pp div_path Gom.Path.pp fac_path;

  section "2. Materialise both against one pool";
  let pool = A.make_pool store in
  let dec = D.make ~m:5 [ 0; 2; 5 ] in
  let a1 = A.create ~pool store div_path X.Full dec in
  let a2 = A.create ~pool store fac_path X.Full dec in
  Format.printf "segments in the pool: %d (the Product tail is stored once)@."
    (A.pool_segment_count pool);
  Format.printf "pooled pages: %d vs unshared: %d@."
    (A.pool_total_pages [ a1; a2 ])
    (A.pool_total_pages
       [ A.create store div_path X.Full dec; A.create store fac_path X.Full dec ]);
  List.iteri
    (fun i g ->
      Format.printf "  a1 partition %d (cols %d-%d): %d tuples%s@." i g.A.lo g.A.hi
        g.A.tuples
        (if g.A.shared then " [shared]" else ""))
    (A.geometry a1);

  section "3. Both answer their queries from the shared tail";
  let heap = Storage.Heap.create ~size_of:(fun _ -> 120) store in
  let env = (Core.Exec.make store heap) in
  let mgr = Core.Maintenance.create env in
  Core.Maintenance.register mgr a1;
  Core.Maintenance.register mgr a2;
  let ask a path label =
    let who = Core.Exec.backward_supported env a ~i:0 ~j:3 ~target:(V.Str "Wheel") in
    Format.printf "%s using Wheel: %s@." label
      (String.concat ", "
         (List.map
            (fun o ->
              let attr = if label = "divisions" then "Name" else "City" in
              V.to_string (Gom.Store.get_attr store o attr))
            who));
    ignore path
  in
  ask a1 div_path "divisions";
  ask a2 fac_path "factories";

  section "4. One mutation in the tail maintains both";
  Format.printf "Car drops its Seat...@.";
  let car_parts = V.oid_exn (Gom.Store.get_attr store car "Composition") in
  Gom.Store.remove_elem store car_parts (V.Ref seat);
  ask a1 div_path "divisions";
  ask a2 fac_path "factories";

  section "5. Monitor the workload and re-advise";
  let monitor = Workload.Profiler.Monitor.create store div_path in
  for _ = 1 to 30 do
    Workload.Profiler.Monitor.record_query monitor `Bw ~i:0 ~j:3
  done;
  for _ = 1 to 6 do
    Gom.Store.insert_elem store car_parts (V.Ref seat);
    Gom.Store.remove_elem store car_parts (V.Ref seat)
  done;
  Format.printf "observed: %d queries, %d updates (P_up = %.2f)@."
    (Workload.Profiler.Monitor.queries_seen monitor)
    (Workload.Profiler.Monitor.updates_seen monitor)
    (Workload.Profiler.Monitor.observed_p_up monitor);
  let ranked = Workload.Profiler.Monitor.recommend monitor in
  Costmodel.Advisor.pp_ranked Format.std_formatter
    (List.filteri (fun i _ -> i < 5) ranked);
  Format.printf "@.done.@."
