(* Command-line interface to the access-support-relation reproduction:

     asr_cli list                          enumerate experiments
     asr_cli experiment fig6 [--csv]       regenerate one figure (or "all")
     asr_cli advise --profile storage ...  rank physical designs for a mix
     asr_cli query --base company "select ..." [--index full[:0,3,5]]
*)

let exit_usage msg =
  prerr_endline msg;
  exit 2

(* Runtime/data failures (corrupt images, failed recovery, divergent
   indexes) exit 1; usage errors exit 2; unexpected exceptions exit 125
   via the top-level net.  Success is always 0. *)
let exit_data msg =
  prerr_endline msg;
  exit 1

(* ---------------- experiment commands ---------------- *)

let list_cmd () =
  Format.printf "%-8s %-10s %s@." "id" "section" "title";
  Format.printf "%s@." (String.make 56 '-');
  List.iter
    (fun (e : Workload.Experiments.t) ->
      Format.printf "%-8s %-10s %s@." e.Workload.Experiments.id
        e.Workload.Experiments.section e.Workload.Experiments.title)
    Workload.Experiments.all;
  0

let experiment_cmd id csv =
  let run_one (e : Workload.Experiments.t) =
    if csv then
      List.iter
        (fun t -> print_string (Workload.Table.to_csv t))
        (e.Workload.Experiments.run ())
    else Workload.Experiments.run_and_render Format.std_formatter e
  in
  match id with
  | "all" ->
    List.iter run_one Workload.Experiments.all;
    0
  | id -> (
    match Workload.Experiments.find id with
    | Some e ->
      run_one e;
      0
    | None ->
      exit_usage
        (Printf.sprintf "unknown experiment %S; try `asr_cli list'" id))

(* ---------------- advisor command ---------------- *)

let profiles =
  [ ("storage", Workload.Experiments.profile_storage);
    ("query", Workload.Experiments.profile_query) ]

let parse_query_spec s =
  (* "i,j,bw,0.5" or "i,j,fw,0.5" *)
  match String.split_on_char ',' s with
  | [ i; j; kind; w ] -> (
    try Costmodel.Opmix.query ~kind (int_of_string i) (int_of_string j) (float_of_string w)
    with _ -> exit_usage (Printf.sprintf "bad query spec %S (want i,j,fw|bw,w)" s))
  | _ -> exit_usage (Printf.sprintf "bad query spec %S (want i,j,fw|bw,w)" s)

let parse_ins_spec s =
  match String.split_on_char ',' s with
  | [ pos; w ] -> (
    try Costmodel.Opmix.ins (int_of_string pos) (float_of_string w)
    with _ -> exit_usage (Printf.sprintf "bad update spec %S (want pos,w)" s))
  | _ -> exit_usage (Printf.sprintf "bad update spec %S (want pos,w)" s)

let advise_cmd profile p_up queries updates top =
  let prof =
    match List.assoc_opt profile profiles with
    | Some p -> p
    | None ->
      exit_usage
        (Printf.sprintf "unknown profile %S (available: %s)" profile
           (String.concat ", " (List.map fst profiles)))
  in
  let n = Costmodel.Profile.n prof in
  let queries =
    match queries with [] -> [ Costmodel.Opmix.query 0 n 1.0 ] | qs -> List.map parse_query_spec qs
  in
  let updates =
    match updates with [] -> [ Costmodel.Opmix.ins (n - 1) 1.0 ] | us -> List.map parse_ins_spec us
  in
  let mix =
    try Costmodel.Opmix.make ~queries ~updates
    with Invalid_argument m -> exit_usage m
  in
  let ranked = Costmodel.Advisor.rank prof mix ~p_up in
  let shown = List.filteri (fun i _ -> i < top) ranked in
  Format.printf "profile %s, P_up = %.3f, %d designs considered@.@." profile p_up
    (List.length ranked);
  Costmodel.Advisor.pp_ranked Format.std_formatter shown;
  Format.printf "@.";
  0

(* ---------------- query command ---------------- *)

let bases = [ "robots"; "company" ]

let make_env ?(buffer_pages = 0) base =
  match base with
  | "robots" ->
    let b = Workload.Schemas.Robot.base () in
    let store = b.Workload.Schemas.Robot.store in
    let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
    (store, (Core.Exec.make ~buffer_pages store heap),
     Some (Workload.Schemas.Robot.location_path store))
  | "company" ->
    let b = Workload.Schemas.Company.base () in
    let store = b.Workload.Schemas.Company.store in
    let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
    (store, (Core.Exec.make ~buffer_pages store heap),
     Some (Workload.Schemas.Company.name_path store))
  | other ->
    exit_usage
      (Printf.sprintf "unknown base %S (available: %s)" other (String.concat ", " bases))

let parse_index_spec path spec =
  (* "full" or "full:0,3,5" over the demo base's canonical path. *)
  let kind_s, dec_s =
    match String.index_opt spec ':' with
    | Some i ->
      (String.sub spec 0 i, Some (String.sub spec (i + 1) (String.length spec - i - 1)))
    | None -> (spec, None)
  in
  let kind =
    match Core.Extension.of_name kind_s with
    | Some k -> k
    | None -> exit_usage (Printf.sprintf "unknown extension %S" kind_s)
  in
  let m = Gom.Path.arity path - 1 in
  let dec =
    match dec_s with
    | None -> Core.Decomposition.binary ~m
    | Some s -> (
      try Core.Decomposition.of_string ~m s
      with Invalid_argument msg -> exit_usage msg)
  in
  (kind, dec)

let parse_index store path spec =
  let kind, dec = parse_index_spec path spec in
  Core.Asr.create store path kind dec

let parse_flush_policy s =
  match Core.Maintenance.policy_of_string s with
  | Some p -> p
  | None ->
    exit_usage
      (Printf.sprintf
         "bad flush policy %S (want immediate, every:K, bytes:N or onquery)" s)

(* Wire a maintenance manager over the engine's registered indexes when
   a deferred flush policy was requested; [None] keeps the pre-deferred
   behaviour (no manager, relations frozen as built). *)
let wire_maintenance engine = function
  | None -> None
  | Some s ->
    let p = parse_flush_policy s in
    let m = Core.Maintenance.create (Engine.env engine) in
    List.iter (Core.Maintenance.register m) (Engine.indexes engine);
    Core.Maintenance.set_policy m p;
    Some m

let dump_cmd base file =
  let store, _, _ = make_env base in
  Gom.Serial.save store file;
  Format.printf "wrote %s (%d objects)@." file
    (Gom.Store.fold_objects store ~init:0 ~f:(fun acc _ -> acc + 1));
  0

(* Shared setup for query/explain: store + resolved index path. *)
let make_base ?(buffer_pages = 0) base file path_spec =
  let store, env, index_path =
    match file with
    | None -> make_env ~buffer_pages base
    | Some f -> (
      match Gom.Serial.load f with
      | exception Gom.Serial.Corrupt m -> exit_data ("corrupt base file: " ^ m)
      | exception Sys_error m -> exit_usage m
      | store ->
        let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
        (store, Core.Exec.make ~buffer_pages store heap, None))
  in
  let index_path =
    match path_spec with
    | Some s -> (
      try Some (Gom.Path.parse (Gom.Store.schema store) s)
      with Gom.Path.Path_error m -> exit_usage m)
    | None -> index_path
  in
  (store, env, index_path)

let make_engine ?buffer_pages base file path_spec index_spec =
  let store, env, index_path = make_base ?buffer_pages base file path_spec in
  let indexes =
    match (index_spec, index_path) with
    | None, _ -> []
    | Some spec, Some p -> [ parse_index store p spec ]
    | Some _, None -> exit_usage "--index over a file base requires --path"
  in
  let engine = Engine.create env in
  List.iter (Engine.register engine) indexes;
  (store, engine)

let print_cache_line engine =
  let info = Engine.cache_info engine in
  Format.printf "plan cache: %d hit(s), %d miss(es), %d invalidation(s)@."
    info.Engine.hits info.Engine.misses info.Engine.invalidations

let stats_json engine =
  let env = Engine.env engine in
  let info = Engine.cache_info engine in
  Storage.Stats.summary_to_json
    ~extra:
      [
        ("plan_cache_hits", string_of_int info.Engine.hits);
        ("plan_cache_misses", string_of_int info.Engine.misses);
        ("plan_cache_invalidations", string_of_int info.Engine.invalidations);
      ]
    (Storage.Stats.snapshot env.Core.Exec.stats)

let print_query_results batch results =
  List.iter
    (fun (r : Gql.Eval.result) ->
      if batch then
        Format.printf "%4d pages  %4d row(s)  %s@." r.Gql.Eval.pages
          (List.length r.Gql.Eval.rows)
          (Gql.Eval.plan_to_string r.Gql.Eval.plan)
      else begin
        Format.printf "plan:  %s@." (Gql.Eval.plan_to_string r.Gql.Eval.plan);
        Format.printf "pages: %d@." r.Gql.Eval.pages;
        Format.printf "rows  (%d):@." (List.length r.Gql.Eval.rows);
        List.iter
          (fun row ->
            Format.printf "  %s@."
              (String.concat ", " (List.map Gom.Value.to_string row)))
          r.Gql.Eval.rows
      end)
    results

let compile_queries store texts =
  (* Parse/type errors are usage errors: surface them before any worker
     domain starts, so a typo exits 2 cleanly instead of mid-fan-out. *)
  List.map
    (fun text ->
      match Gql.Parser.parse text with
      | exception Gql.Parser.Parse_error m -> exit_usage ("parse error: " ^ m)
      | ast -> (
        match Gql.Typecheck.check store ast with
        | exception Gql.Typecheck.Check_error m -> exit_usage ("type error: " ^ m)
        | q -> q))
    texts

(* Sharded execution: the base is split into a shard group (shard 0
   wraps the loaded store, the others are replicas carrying fragment
   indexes), every query is evaluated on every shard's engine and the
   per-shard row sets merge back into the unsharded answer. *)
let query_sharded base file path_spec index_spec flush_policy batch jobs shards texts =
  let store, _env, index_path = make_base base file path_spec in
  let grp =
    Shard.Group.create ~jobs:(max jobs shards)
      ~placement:(Shard.Placement.make shards) store
  in
  Fun.protect
    ~finally:(fun () -> Shard.Group.close grp)
    (fun () ->
      (match (index_spec, index_path) with
      | None, _ -> ()
      | Some spec, Some p ->
        let kind, dec = parse_index_spec p spec in
        Shard.Group.register grp ~path:p ~kind ~dec
      | Some _, None -> exit_usage "--index over a file base requires --path");
      (match flush_policy with
      | Some s -> Shard.Group.set_policy grp (parse_flush_policy s)
      | None -> ());
      let compiled = compile_queries store texts in
      let results =
        List.map
          (fun q ->
            Gql.Eval.merge_results q
              (List.init shards (fun k ->
                   Gql.Eval.run ~engine:(Shard.Group.engine grp k) q)))
          compiled
      in
      print_query_results batch results;
      Format.printf "shards: %d (jobs %d), %d pending delta(s)@." shards
        (Shard.Group.jobs grp) (Shard.Group.pending grp);
      if batch then begin
        let total = Shard.Group.stats_summary grp in
        Array.iteri
          (fun k (s : Storage.Stats.summary) ->
            Format.printf "  shard %d: %d page(s) read, %d fallback(s), %d pages held@."
              k s.Storage.Stats.s_total_reads s.Storage.Stats.s_fallbacks
              (Shard.Group.total_pages grp).(k))
          (Shard.Group.shard_summaries grp);
        print_endline (Storage.Stats.summary_to_json total)
      end;
      0)

let query_cmd base file path_spec index_spec flush_policy batch jobs shards buffer_pages
    texts =
  if shards > 1 then
    query_sharded base file path_spec index_spec flush_policy batch jobs shards texts
  else begin
  let buffer_pages = max 0 buffer_pages in
  let store, engine = make_engine ~buffer_pages base file path_spec index_spec in
  let maintenance = wire_maintenance engine flush_policy in
  let jobs = max 1 jobs in
  let compiled = compile_queries store texts in
  let results =
    if jobs = 1 then List.map (fun q -> Gql.Eval.run ~engine q) compiled
    else begin
      (* One shared engine (lock-guarded plan cache: repeated shapes hit
         across domains), one private accounting sheaf per query; the
         sheaves are folded back into the engine's accountant so the
         --batch summary equals a sequential run's. *)
      let pool = Parallel.Pool.create ~jobs in
      let env0 = Engine.env engine in
      let out =
        Parallel.Pool.run_all pool
          (List.map
             (fun q () ->
               let env =
                 Core.Exec.make_view ~buffer_pages env0.Core.Exec.view
                   env0.Core.Exec.heap
               in
               let r = Gql.Eval.run ~env ~engine q in
               (r, Storage.Stats.snapshot env.Core.Exec.stats))
             compiled)
      in
      Parallel.Pool.shutdown pool;
      Storage.Stats.absorb env0.Core.Exec.stats
        (List.fold_left
           (fun acc (_, s) -> Storage.Stats.merge acc s)
           Storage.Stats.zero out);
      List.map fst out
    end
  in
  print_query_results batch results;
  (match maintenance with
  | Some m ->
    Format.printf "maintenance: %s policy, %d pending delta(s)@."
      (Core.Maintenance.policy_to_string (Core.Maintenance.policy m))
      (Core.Maintenance.pending m)
  | None -> ());
  if batch then begin
    print_cache_line engine;
    print_endline (stats_json engine)
  end;
  0
  end

(* ---------------- serve command ---------------- *)

(* Workload file: one probe batch per line, `fw I J K` or `bw I J K` —
   evaluate Q^(I,J) in the given direction over the first K objects of
   the relevant extent (K capped at the extent size; blank lines and
   #-comments skipped).  The whole file is served as one mixed batch
   fanned across the server's domain pool. *)
let parse_workload store env path file =
  let ic = try open_in file with Sys_error m -> exit_usage m in
  let lines = ref [] in
  (try
     let lineno = ref 0 in
     while true do
       let line = input_line ic in
       incr lineno;
       let line =
         match String.index_opt line '#' with
         | Some i -> String.sub line 0 i
         | None -> line
       in
       match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
       | [] -> ()
       | [ dir; i; j; k ] -> (
         match (dir, int_of_string_opt i, int_of_string_opt j, int_of_string_opt k) with
         | ("fw" | "bw"), Some i, Some j, Some k when 0 <= i && i < j && k >= 0 ->
           lines := (dir, i, j, k) :: !lines
         | _ ->
           exit_usage
             (Printf.sprintf "%s:%d: bad workload line (want `fw|bw I J K')" file !lineno)
         )
       | _ ->
         exit_usage
           (Printf.sprintf "%s:%d: bad workload line (want `fw|bw I J K')" file !lineno)
     done
   with End_of_file -> close_in ic);
  let n = Gom.Path.length path in
  List.rev_map
    (fun (dir, i, j, k) ->
      if j > n then
        exit_usage (Printf.sprintf "workload range (%d,%d) exceeds path length %d" i j n);
      let take k xs = List.filteri (fun idx _ -> idx < k) xs in
      match dir with
      | "fw" ->
        let sources = take k (Gom.Store.extent ~deep:true store (Gom.Path.type_at path i)) in
        Parallel.Server.Forward { q_path = path; q_i = i; q_j = j; q_sources = sources }
      | _ ->
        (* Position j of a path is usually an atomic value type with no
           extent of its own; fall back to the distinct values actually
           reachable over the path, so `bw` lines probe real targets. *)
        let targets =
          match Gom.Store.extent ~deep:true store (Gom.Path.type_at path j) with
          | _ :: _ as objs -> take k (List.map (fun o -> Gom.Value.Ref o) objs)
          | [] ->
            Gom.Store.extent ~deep:true store (Gom.Path.type_at path i)
            |> List.concat_map (fun o -> Core.Exec.forward_scan env path ~i ~j o)
            |> List.sort_uniq Gom.Value.compare
            |> take k
        in
        Parallel.Server.Backward { q_path = path; q_i = i; q_j = j; q_targets = targets })
    !lines

let serve_cmd base file path_spec index_spec flush_policy jobs buffer_pages workload
    repeat max_queue deadline_ms shed_policy =
  let jobs = max 1 jobs in
  let buffer_pages = max 0 buffer_pages in
  let store, env, index_path =
    match file with
    | None -> make_env base
    | Some f -> (
      match Gom.Serial.load f with
      | exception Gom.Serial.Corrupt m -> exit_data ("corrupt base file: " ^ m)
      | exception Sys_error m -> exit_usage m
      | store ->
        let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
        (store, Core.Exec.make store heap, None))
  in
  let path =
    match path_spec with
    | Some s -> (
      try Gom.Path.parse (Gom.Store.schema store) s
      with Gom.Path.Path_error m -> exit_usage m)
    | None -> (
      match index_path with
      | Some p -> p
      | None -> exit_usage "--path is required for a file base")
  in
  let live_indexes =
    match index_spec with
    | None -> []
    | Some spec -> [ parse_index store path spec ]
  in
  let specs =
    List.map
      (fun a ->
        {
          Parallel.Snapshot.sp_path = Core.Asr.path a;
          sp_kind = Core.Asr.kind a;
          sp_decomposition = Core.Asr.decomposition a;
        })
      live_indexes
  in
  (* Under a deferred policy the live base's relations buffer their tree
     writes; the server flushes them before every snapshot publication,
     so served epochs stay delta-free. *)
  let maintenance =
    match flush_policy with
    | None -> None
    | Some s ->
      let p = parse_flush_policy s in
      let m = Core.Maintenance.create env in
      List.iter (Core.Maintenance.register m) live_indexes;
      Core.Maintenance.set_policy m p;
      Some m
  in
  let queries = parse_workload store env path workload in
  if queries = [] then exit_usage (Printf.sprintf "workload %s is empty" workload);
  let describe q =
    match q with
    | Parallel.Server.Forward { q_i; q_j; q_sources; _ } ->
      ("fw", q_i, q_j, List.length q_sources)
    | Parallel.Server.Backward { q_i; q_j; q_targets; _ } ->
      ("bw", q_i, q_j, List.length q_targets)
  in
  let answer_rows = function
    | Parallel.Server.Forward_answer ans ->
      List.fold_left (fun acc (_, vs) -> acc + List.length vs) 0 ans
    | Parallel.Server.Backward_answer ans ->
      List.fold_left (fun acc (_, os) -> acc + List.length os) 0 ans
  in
  let server = Parallel.Server.create ~jobs ~buffer_pages ?maintenance ~specs store in
  (* The server owns a pool of domains: whatever the serve path raises
     (a failed query, a corrupt workload assertion), the pool must be
     joined on the way out, never leaked. *)
  Fun.protect
    ~finally:(fun () -> Parallel.Server.shutdown server)
    (fun () ->
      match (max_queue, deadline_ms, shed_policy) with
      | None, None, None ->
        (* Unthrottled path: the whole workload as one mixed batch. *)
        let t0 = Unix.gettimeofday () in
        let answers = ref [] in
        for _ = 1 to max 1 repeat do
          answers := Parallel.Server.serve server queries
        done;
        let dt = Unix.gettimeofday () -. t0 in
        let served = List.length queries * max 1 repeat in
        List.iteri
          (fun k (q, a) ->
            let dir, i, j, probes = describe q in
            Format.printf "%3d  %s Q^(%d,%d)  %4d probe(s)  %5d result row(s)@." k dir
              i j probes (answer_rows a))
          (List.combine queries !answers);
        let summary = Parallel.Server.stats server in
        Format.printf
          "served %d quer(ies) over epoch %d with %d job(s) in %.3fs (%.1f q/s)@."
          served (Parallel.Server.epoch server) jobs dt
          (float_of_int served /. Float.max dt 1e-9);
        let p = Parallel.Server.publish_info server in
        Format.printf
          "published %d epoch(s); last publish %.3fms (%d object(s) copied, %d \
           shared)@."
          p.Parallel.Server.publishes
          (p.Parallel.Server.last_latency_s *. 1000.)
          p.Parallel.Server.last_copied p.Parallel.Server.last_shared;
        if buffer_pages > 0 then
          Format.printf
            "buffer: %d page(s)/worker; hit ratio %.1f%%; %d miss(es), %d \
             eviction(s), %d prefetched@."
            buffer_pages
            (100. *. Storage.Stats.summary_hit_ratio summary)
            summary.Storage.Stats.s_buffer_misses
            summary.Storage.Stats.s_buffer_evictions
            summary.Storage.Stats.s_prefetched;
        print_endline
          (Storage.Stats.summary_to_json
             ~extra:
               [
                 ("jobs", string_of_int jobs);
                 ("queries", string_of_int served);
                 ("elapsed_s", Printf.sprintf "%.6f" dt);
                 ("publishes", string_of_int p.Parallel.Server.publishes);
                 ( "last_publish_ms",
                   Printf.sprintf "%.6f" (p.Parallel.Server.last_latency_s *. 1000.) );
                 ("last_copied", string_of_int p.Parallel.Server.last_copied);
                 ("last_shared", string_of_int p.Parallel.Server.last_shared);
               ]
             summary);
        0
      | _ ->
        (* Overload-resilient path: admission-controlled front with a
           spawned dispatcher; every query resolves to a typed outcome. *)
        let policy =
          match shed_policy with
          | None -> Resilience.Front.Deadline_aware
          | Some s -> (
            match Resilience.Front.policy_of_string s with
            | Some p -> p
            | None ->
              exit_usage
                (Printf.sprintf
                   "unknown shed policy %s (want newest, oldest or deadline)" s))
        in
        let config =
          let d = Resilience.Front.default_config in
          let max_queue = max 1 (Option.value ~default:d.Resilience.Front.max_queue max_queue) in
          {
            d with
            Resilience.Front.max_queue;
            high_watermark = max 1 (max_queue * 3 / 4);
            low_watermark = max_queue / 4;
            shed_policy = policy;
            deadline_s = Option.map (fun ms -> ms /. 1000.) deadline_ms;
          }
        in
        let front = Resilience.Front.create ~config ~spawn:true server in
        Fun.protect
          ~finally:(fun () -> Resilience.Front.shutdown front)
          (fun () ->
            let t0 = Unix.gettimeofday () in
            let tickets =
              List.concat
                (List.init (max 1 repeat) (fun _ ->
                     List.map (fun q -> (q, Resilience.Front.submit front q)) queries))
            in
            let outcomes =
              List.map (fun (q, t) -> (q, Resilience.Front.await front t)) tickets
            in
            let dt = Unix.gettimeofday () -. t0 in
            List.iteri
              (fun k (q, o) ->
                let dir, i, j, probes = describe q in
                let verdict =
                  match o with
                  | Resilience.Front.Answer a ->
                    Printf.sprintf "%5d result row(s)" (answer_rows a)
                  | Resilience.Front.Shed Resilience.Front.Queue_full ->
                    "shed (queue full)"
                  | Resilience.Front.Shed Resilience.Front.Rate_limited ->
                    "shed (rate limited)"
                  | Resilience.Front.Timeout -> "timed out"
                  | Resilience.Front.Failed m -> "failed: " ^ m
                in
                Format.printf "%3d  %s Q^(%d,%d)  %4d probe(s)  %s@." k dir i j probes
                  verdict)
              outcomes;
            let c = Resilience.Front.counters front in
            let summary = Resilience.Front.stats front in
            Format.printf
              "offered %d: answered %d, shed %d, timed-out %d, failed %d — %d job(s), \
               %.3fs (%.1f admitted q/s)@."
              c.Resilience.Front.offered c.answered c.shed c.timed_out c.failed jobs dt
              (float_of_int c.answered /. Float.max dt 1e-9);
            let p = Parallel.Server.publish_info server in
            Format.printf
              "published %d epoch(s); last publish %.3fms (%d object(s) copied, %d \
               shared)@."
              p.Parallel.Server.publishes
              (p.Parallel.Server.last_latency_s *. 1000.)
              p.Parallel.Server.last_copied p.Parallel.Server.last_shared;
            print_endline
              (Storage.Stats.summary_to_json
                 ~extra:
                   [
                     ("jobs", string_of_int jobs);
                     ("offered", string_of_int c.Resilience.Front.offered);
                     ("answered", string_of_int c.answered);
                     ("elapsed_s", Printf.sprintf "%.6f" dt);
                   ]
                 summary);
            if c.failed > 0 then 1 else 0))

(* ---------------- explain command ---------------- *)

let explain_cmd base file path_spec index_spec text =
  let _store, engine = make_engine base file path_spec index_spec in
  match Gql.Eval.query ~engine text with
  | exception Gql.Parser.Parse_error m -> exit_usage ("parse error: " ^ m)
  | exception Gql.Typecheck.Check_error m -> exit_usage ("type error: " ^ m)
  | r ->
    (match r.Gql.Eval.plan with
    | Gql.Eval.Nested_loop ->
      Format.printf
        "plan      : nested-loop navigation (the query does not merge into a \
         single path expression)@."
    | Gql.Eval.Merged_backward { choice; path; residual; _ } ->
      Format.printf "query path: %s@." (Gom.Path.to_string path);
      Format.printf "plan      : %s@." (Engine.Plan.to_string choice.Engine.chosen);
      (match residual with
      | Gql.Typecheck.TTrue -> ()
      | _ -> Format.printf "            + residual filter on the anchor variable@.");
      Format.printf "estimated : %.1f page accesses@." choice.Engine.est_cost;
      (match choice.Engine.candidates with
      | [] | [ _ ] -> ()
      | _ :: rest ->
        Format.printf "also considered:@.";
        List.iter
          (fun (c : Engine.candidate) ->
            Format.printf "  est %8.1f  %s@." c.Engine.est_cost
              (Engine.Plan.to_string c.Engine.plan))
          rest));
    Format.printf "measured  : %d page accesses, %d row(s)@." r.Gql.Eval.pages
      (List.length r.Gql.Eval.rows);
    print_cache_line engine;
    0

(* ---------------- auto design ---------------- *)

let auto_cmd base file path_spec p_up queries updates =
  let store, _env, index_path =
    match file with
    | None -> make_env base
    | Some f -> (
      match Gom.Serial.load f with
      | exception Gom.Serial.Corrupt m -> exit_data ("corrupt base file: " ^ m)
      | exception Sys_error m -> exit_usage m
      | store ->
        let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
        (store, (Core.Exec.make store heap), None))
  in
  let path =
    match path_spec with
    | Some s -> (
      try Gom.Path.parse (Gom.Store.schema store) s
      with Gom.Path.Path_error m -> exit_usage m)
    | None -> (
      match index_path with
      | Some p -> p
      | None -> exit_usage "--path is required for a file base")
  in
  let n = Gom.Path.length path in
  let queries =
    match queries with
    | [] -> [ Costmodel.Opmix.query 0 n 1.0 ]
    | qs -> List.map parse_query_spec qs
  in
  let updates =
    match updates with
    | [] -> [ Costmodel.Opmix.ins (n - 1) 1.0 ]
    | us -> List.map parse_ins_spec us
  in
  let mix =
    try Costmodel.Opmix.make ~queries ~updates with Invalid_argument m -> exit_usage m
  in
  let best, built = Workload.Autodesign.auto store path mix ~p_up in
  Format.printf "measured profile over %a:@.%a@.@." Gom.Path.pp path Costmodel.Profile.pp
    (Workload.Profiler.profile_of_base store path);
  Format.printf "winning design: %s (%.2f pages/op, %.4f vs no support)@."
    (Costmodel.Opmix.design_name best.Costmodel.Advisor.design)
    best.Costmodel.Advisor.expected_cost best.Costmodel.Advisor.normalized;
  (match built with
  | Some a ->
    Format.printf "materialised: %d tuples over %d partitions, %d pages@."
      (Core.Asr.cardinal a) (Core.Asr.partition_count a) (Core.Asr.total_pages a)
  | None -> Format.printf "no index materialised (no support wins)@.");
  0

(* ---------------- repl ---------------- *)

let repl_cmd base file path_spec index_spec =
  let store, env, index_path =
    match file with
    | None -> make_env base
    | Some f -> (
      match Gom.Serial.load f with
      | exception Gom.Serial.Corrupt m -> exit_data ("corrupt base file: " ^ m)
      | exception Sys_error m -> exit_usage m
      | store ->
        let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
        (store, (Core.Exec.make store heap), None))
  in
  let index_path =
    match path_spec with
    | Some s -> (
      try Some (Gom.Path.parse (Gom.Store.schema store) s)
      with Gom.Path.Path_error m -> exit_usage m)
    | None -> index_path
  in
  let indexes =
    match (index_spec, index_path) with
    | None, _ -> []
    | Some spec, Some p -> [ parse_index store p spec ]
    | Some _, None -> exit_usage "--index requires --path on a file base"
  in
  let engine = Engine.create env in
  List.iter (Engine.register engine) indexes;
  Format.printf
    "GOM-SQL repl - one query per line; \\schema shows the schema, \\names the \
     roots, \\q quits.@.";
  (try
     while true do
       Format.printf "gom> %!";
       match input_line stdin with
       | exception End_of_file -> raise Exit
       | "\\q" | "\\quit" | "exit" -> raise Exit
       | "\\schema" -> Format.printf "%a%!" Gom.Schema.pp (Gom.Store.schema store)
       | "\\names" ->
         List.iter
           (fun (n, o) ->
             Format.printf "%s -> %s@." n (Gom.Value.to_string (Gom.Value.Ref o)))
           (Gom.Store.names store)
       | "" -> ()
       | line -> (
         match Gql.Eval.query ~engine line with
         | exception Gql.Parser.Parse_error m -> Format.printf "parse error: %s@." m
         | exception Gql.Typecheck.Check_error m -> Format.printf "type error: %s@." m
         | r ->
           Format.printf "-- %s (%d pages)@." (Gql.Eval.plan_to_string r.Gql.Eval.plan)
             r.Gql.Eval.pages;
           List.iter
             (fun row ->
               Format.printf "%s@."
                 (String.concat ", " (List.map Gom.Value.to_string row)))
             r.Gql.Eval.rows)
     done
   with Exit -> ());
  0

(* ---------------- durable base commands ---------------- *)

let print_recovery (r : Durability.Db.report) =
  Format.printf "recovered generation %d@." r.Durability.Db.generation;
  Format.printf "  log records: %d intact, %d replayed, %d uncommitted dropped@."
    r.Durability.Db.records_scanned r.Durability.Db.records_replayed
    r.Durability.Db.records_dropped;
  if r.Durability.Db.bytes_truncated > 0 then
    Format.printf "  torn/uncommitted tail truncated: %d bytes@."
      r.Durability.Db.bytes_truncated;
  Format.printf "  committed transactions replayed: %d@." r.Durability.Db.commits_replayed;
  if r.Durability.Db.flushes_replayed > 0 then
    Format.printf "  maintenance flush groups replayed: %d@."
      r.Durability.Db.flushes_replayed;
  List.iter
    (fun (spec, ok) ->
      Format.printf "  asr %-40s %s@." spec
        (if ok then "verified against from-scratch build" else "MISMATCH"))
    r.Durability.Db.asr_checks

let db_status db =
  let store = Durability.Db.store db in
  Format.printf "dir:        %s@." (Durability.Db.dir db);
  Format.printf "generation: %d@." (Durability.Db.generation db);
  Format.printf "objects:    %d@."
    (Gom.Store.fold_objects store ~init:0 ~f:(fun acc _ -> acc + 1));
  Format.printf "asrs:       %d@." (List.length (Durability.Db.asrs db));
  let mgr = Durability.Db.maintenance db in
  Format.printf "flush:      %s policy, %d pending delta(s)@."
    (Core.Maintenance.policy_to_string (Core.Maintenance.policy mgr))
    (Core.Maintenance.pending mgr);
  List.iter
    (fun a ->
      Format.printf "  %-40s %d pending delta(s)@."
        (Gom.Path.to_string (Core.Asr.path a))
        (Core.Asr.pending_deltas a))
    (Durability.Db.asrs db);
  let env = Durability.Db.env db in
  let st = env.Core.Exec.stats in
  (if Storage.Stats.has_buffer st then
     Format.printf "buffer:     %d page(s); hit ratio %s; %d miss(es), %d eviction(s)@."
       (Storage.Stats.buffer_capacity st)
       (match Storage.Stats.hit_ratio st with
       | Some r -> Printf.sprintf "%.1f%%" (100. *. r)
       | None -> "n/a (no traffic yet)")
       (Storage.Stats.buffer_misses st)
       (Storage.Stats.buffer_evictions st)
   else Format.printf "buffer:     none (unbuffered page accounting)@.");
  (match Storage.Heap.recluster_progress env.Core.Exec.heap with
  | Some (moved, planned) ->
    Format.printf "recluster:  %d/%d move(s) applied%s@." moved planned
      (if Storage.Heap.recluster_active env.Core.Exec.heap then " (running)"
       else " (complete)")
  | None -> Format.printf "recluster:  never run (creation-order layout)@.");
  (* What epoch publication costs against this base: the one-time O(n)
     image, then a CoW republication (no intervening writes here, so it
     copies nothing and shares every instance). *)
  let t0 = Unix.gettimeofday () in
  let image = Gom.Frozen.of_store store in
  let t1 = Unix.gettimeofday () in
  let next = Gom.Frozen.advance image [] in
  let t2 = Unix.gettimeofday () in
  Format.printf
    "snapshot:   initial image %.1fms; CoW republish %.3fms (%d object(s) copied, %d \
     shared)@."
    ((t1 -. t0) *. 1000.)
    ((t2 -. t1) *. 1000.)
    (Gom.Frozen.copied next) (Gom.Frozen.shared next)

let with_db dir f =
  match Durability.Db.open_ ~dir () with
  | exception Durability.Db.Recovery_error m -> exit_data ("recovery failed: " ^ m)
  | exception Durability.Db.Db_error m -> exit_data m
  | exception Gom.Serial.Corrupt m -> exit_data ("corrupt image: " ^ m)
  | db ->
    Fun.protect ~finally:(fun () -> Durability.Db.close db) (fun () -> f db)

(* Sharded durable base: roll the per-shard Dbs up into one report —
   generation, object count, pending deltas, fragment pages and the
   content CRC the agreement gate compares. *)
let db_shard_status dir =
  match Shard.Durable.open_ ~dir () with
  | exception Shard.Durable.Shard_error m -> exit_data m
  | exception Durability.Db.Recovery_error m -> exit_data ("recovery failed: " ^ m)
  | exception Gom.Serial.Corrupt m -> exit_data ("corrupt image: " ^ m)
  | d ->
    Fun.protect
      ~finally:(fun () -> Shard.Durable.close d)
      (fun () ->
        let grp = Shard.Durable.group d in
        let n = Shard.Group.shards grp in
        Format.printf "dir:        %s@." dir;
        Format.printf "shards:     %d (%s placement)@." n
          (Shard.Placement.to_string (Shard.Group.placement grp));
        Format.printf "asrs:       %d spec(s), fragmented %d-way@."
          (List.length (Shard.Durable.specs d)) n;
        let gens = Shard.Durable.generations d in
        let crcs = Shard.Durable.content_crc d in
        let pages = Shard.Group.total_pages grp in
        Array.iteri
          (fun k db ->
            let store = Durability.Db.store db in
            Format.printf
              "  shard %d: generation %d, %d object(s), %d pending delta(s), %d \
               fragment page(s), crc %08lx@."
              k gens.(k)
              (Gom.Store.fold_objects store ~init:0 ~f:(fun acc _ -> acc + 1))
              (Core.Maintenance.pending (Shard.Group.manager grp k))
              pages.(k) crcs.(k))
          (Shard.Durable.dbs d);
        let agree = Array.for_all (fun c -> Int32.equal c crcs.(0)) crcs in
        Format.printf "agreement:  %s@."
          (if agree then "content CRCs agree across all shards"
           else "DIVERGED (reopen with reconciliation)");
        if agree then 0 else 1)

let db_shard_init dir base shards =
  let store, _, index_path = make_env base in
  match
    Shard.Durable.create ~placement:(Shard.Placement.make shards) ~dir store
  with
  | exception Shard.Durable.Shard_error m -> exit_data m
  | d ->
    Fun.protect
      ~finally:(fun () -> Shard.Durable.close d)
      (fun () ->
        (* Fragment the demo base's canonical path out of the box, so a
           fresh sharded base demonstrates per-shard index balance
           without a separate registration step. *)
        (match index_path with
        | Some p ->
          Shard.Durable.register d ~path:(Gom.Path.to_string p)
            ~kind:Core.Extension.Full ()
        | None -> ());
        Format.printf
          "initialised sharded durable base (%d shard(s)) from demo base %S@."
          shards base;
        0)

let db_open_cmd dir base shards =
  if Sys.file_exists (Shard.Durable.shards_file dir) then db_shard_status dir
  else if
    (not (Sys.file_exists (Filename.concat dir "MANIFEST"))) && shards > 1
  then db_shard_init dir base shards
  else if Sys.file_exists (Filename.concat dir "MANIFEST") then
    with_db dir (fun db ->
        (match Durability.Db.last_recovery db with
        | Some r -> print_recovery r
        | None -> ());
        db_status db;
        0)
  else begin
    let store, _, _ = make_env base in
    match Durability.Db.create ~dir store with
    | exception Durability.Db.Db_error m -> exit_data m
    | db ->
      Fun.protect
        ~finally:(fun () -> Durability.Db.close db)
        (fun () ->
          Format.printf "initialised durable base from demo base %S@." base;
          db_status db;
          0)
  end

(* One mutation per argument, applied inside a single transaction:
     new TYPE | set OID ATTR VALUE | ins OID VALUE | rem OID VALUE
     | del OID | name NAME OID
   VALUE uses the persistence syntax: null, int:7, str:"x", ref:3, ... *)
let db_append_cmd dir ops =
  with_db dir (fun db ->
      let store = Durability.Db.store db in
      let parse_oid s =
        match int_of_string_opt s with
        | Some i -> Gom.Oid.of_int i
        | None -> exit_usage (Printf.sprintf "bad object id %S" s)
      in
      let parse_value s =
        try Gom.Serial.value_of_string ~line:0 s
        with Gom.Serial.Corrupt m -> exit_usage (Printf.sprintf "bad value %S: %s" s m)
      in
      (* Syntax (op shape, oids, values) is checked before the
         transaction starts: a typo must exit cleanly, not leave an
         uncommitted begin..tail in the write-ahead log. *)
      let compile op =
        match String.split_on_char ' ' op |> List.filter (fun s -> s <> "") with
        | [ "new"; ty ] ->
          fun () ->
            let oid = Gom.Store.new_object store ty in
            Format.printf "new %s -> %d@." ty (Gom.Oid.to_int oid)
        | "set" :: oid :: attr :: rest when rest <> [] ->
          let oid = parse_oid oid and v = parse_value (String.concat " " rest) in
          fun () -> Gom.Store.set_attr store oid attr v
        | "ins" :: oid :: rest when rest <> [] ->
          let oid = parse_oid oid and v = parse_value (String.concat " " rest) in
          fun () -> Gom.Store.insert_elem store oid v
        | "rem" :: oid :: rest when rest <> [] ->
          let oid = parse_oid oid and v = parse_value (String.concat " " rest) in
          fun () -> Gom.Store.remove_elem store oid v
        | [ "del"; oid ] ->
          let oid = parse_oid oid in
          fun () -> Gom.Store.delete store oid
        | [ "name"; name; oid ] ->
          let oid = parse_oid oid in
          fun () -> Durability.Db.bind_name db name oid
        | _ -> exit_usage (Printf.sprintf "bad operation %S" op)
      in
      let compiled = List.map compile ops in
      (match Gom.Txn.with_txn store (fun () -> List.iter (fun f -> f ()) compiled) with
      | Ok () -> Format.printf "committed %d operation(s)@." (List.length ops)
      | Error (Gom.Store.Type_error m) -> exit_data ("type error (rolled back): " ^ m)
      | Error e -> exit_data ("operation failed (rolled back): " ^ Printexc.to_string e));
      0)

let db_flush_cmd dir policy_s =
  with_db dir (fun db ->
      (match policy_s with
      | Some s -> Durability.Db.set_flush_policy db (parse_flush_policy s)
      | None -> ());
      let n = Durability.Db.flush_maintenance db in
      Format.printf "flushed %d net delta(s) (%s policy)@." n
        (Core.Maintenance.policy_to_string (Durability.Db.flush_policy db));
      0)

let db_status_cmd dir =
  if Sys.file_exists (Shard.Durable.shards_file dir) then db_shard_status dir
  else with_db dir (fun db ->
      db_status db;
      0)

let db_checkpoint_cmd dir =
  with_db dir (fun db ->
      Durability.Db.checkpoint db;
      Format.printf "checkpointed as generation %d@." (Durability.Db.generation db);
      0)

let db_recover_cmd dir =
  with_db dir (fun db ->
      (match Durability.Db.last_recovery db with
      | Some r ->
        print_recovery r;
        if not (Durability.Db.verified r) then
          exit_data "RECOVERY VERIFICATION FAILED"
      | None -> ());
      db_status db;
      0)

let db_index_cmd dir kind_s path dec =
  with_db dir (fun db ->
      let kind =
        match Core.Extension.of_name kind_s with
        | Some k -> k
        | None -> exit_usage (Printf.sprintf "unknown extension %S" kind_s)
      in
      match Durability.Db.register_asr db ~path ~kind ?dec () with
      | exception Durability.Db.Db_error m -> exit_usage m
      | a ->
        Format.printf "materialised %d tuples over %d partitions@."
          (Core.Asr.cardinal a) (Core.Asr.partition_count a);
        0)

(* ---------------- integrity commands ---------------- *)

let scrub_artifact db reports =
  let stats = Core.Maintenance.stats (Durability.Db.maintenance db) in
  Printf.sprintf
    "{\"dir\": %S, \"generation\": %d, \"clean\": %b, \"reports\": [%s], \"stats\": %s}"
    (Durability.Db.dir db)
    (Durability.Db.generation db)
    (List.for_all Integrity.Scrub.clean reports)
    (String.concat ", " (List.map Integrity.Scrub.report_to_json reports))
    (Storage.Stats.summary_to_json (Storage.Stats.snapshot stats))

let write_file file contents =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc contents;
      output_char oc '\n')

let db_doctor_cmd dir sample json =
  (match sample with
  | Some k when k < 1 -> exit_usage "--sample must be >= 1"
  | _ -> ());
  with_db dir (fun db ->
      let stats = Core.Maintenance.stats (Durability.Db.maintenance db) in
      let reports =
        List.map
          (fun a -> Integrity.Scrub.run ?sample ~stats a)
          (Durability.Db.asrs db)
      in
      if reports = [] then Format.printf "no access support relations registered@.";
      List.iter (fun r -> print_string (Integrity.Scrub.report_to_string r)) reports;
      (match json with
      | Some file ->
        write_file file (scrub_artifact db reports);
        Format.printf "wrote %s@." file
      | None -> ());
      if List.for_all Integrity.Scrub.clean reports then 0
      else exit_data "SCRUB FOUND DIVERGENCE - try `asr_cli db repair'")

let db_repair_cmd dir slice rounds json =
  with_db dir (fun db ->
      let maintenance = Durability.Db.maintenance db in
      let stats = Core.Maintenance.stats maintenance in
      let registry = Integrity.Quarantine.create () in
      let failed = ref [] in
      List.iter
        (fun a ->
          let name = Gom.Path.to_string (Core.Asr.path a) in
          let report = Integrity.Scrub.run ~stats a in
          if Integrity.Scrub.clean report then
            Format.printf "%-40s clean, nothing to repair@." name
          else begin
            let parts = Integrity.Quarantine.apply_report registry a report in
            Format.printf "%-40s quarantined partition(s) %s@." name
              (String.concat "," (List.map string_of_int parts));
            let outcome =
              Integrity.Repair.run ~slice ~max_rounds:rounds ~registry ~maintenance
                ~stats a
            in
            Format.printf "%-40s %s@." name
              (Integrity.Repair.outcome_to_string outcome);
            match outcome with
            | Integrity.Repair.Repaired _ -> ()
            | Integrity.Repair.Failed _ -> failed := name :: !failed
          end)
        (Durability.Db.asrs db);
      (match json with
      | Some file ->
        let reports =
          List.map (fun a -> Integrity.Scrub.run ~stats a) (Durability.Db.asrs db)
        in
        write_file file (scrub_artifact db reports);
        Format.printf "wrote %s@." file
      | None -> ());
      if !failed = [] then 0
      else
        exit_data
          (Printf.sprintf "REPAIR FAILED for: %s (still quarantined)"
             (String.concat ", " (List.rev !failed))))

(* ---------------- replication commands ---------------- *)

let db_replica_cmd dir follow frame_bytes digest_every chaos kill_after =
  if frame_bytes < 1 then exit_usage "--frame-bytes must be >= 1";
  if not (Sys.file_exists (Filename.concat follow "MANIFEST")) then
    exit_usage (Printf.sprintf "%s holds no durable base to follow" follow);
  with_db follow (fun pdb ->
      let stats = Storage.Stats.create () in
      let fault =
        match chaos with
        | Some seed ->
          Format.printf "chaos seed %d (reproduce with --chaos %d)@." seed seed;
          Some
            (Durability.Fault.faulty_channel
               (Replication.Channel.chaos ~seed ~upto:100_000))
        | None -> None
      in
      let channel = Replication.Channel.create ?fault ~stats () in
      let primary = Replication.Primary.create ~frame_bytes ~digest_every pdb in
      let replica =
        match Replication.Replica.create ~stats ~dir () with
        | exception Replication.Replica.Replica_error m -> exit_data m
        | r -> r
      in
      Fun.protect
        ~finally:(fun () -> Replication.Replica.close replica)
        (fun () ->
          let session =
            Replication.Session.create ~stats ?stop_after_sends:kill_after
              ~primary ~channel ~replica ()
          in
          (match Replication.Session.drain session with
          | exception Replication.Session.Stalled m -> exit_data m
          | exception Replication.Primary.Replication_error m -> exit_data m
          | steps -> Format.printf "quiescent after %d pump round(s)@." steps);
          let s = Storage.Stats.snapshot stats in
          Format.printf
            "frames: %d shipped, %d applied, %d dropped, %d retried@."
            s.Storage.Stats.s_frames_shipped s.Storage.Stats.s_frames_applied
            s.Storage.Stats.s_frames_dropped s.Storage.Stats.s_frames_retried;
          Format.printf
            "replica: generation %d, %d/%d bytes applied (lag %d), %d \
             record(s), %d epoch(s) published@."
            (Replication.Replica.generation replica)
            (Replication.Replica.applied_bytes replica)
            (Replication.Primary.committed_bytes primary)
            (Replication.Replica.lag_bytes replica)
            (Replication.Replica.applied_records replica)
            (Replication.Replica.epochs replica);
          (match kill_after with
          | Some k ->
            Format.printf
              "primary killed after frame %d; promote with: asr_cli db promote \
               %s --primary %s@."
              k dir follow
          | None -> ());
          match Replication.Replica.diverged replica with
          | Some what -> exit_data ("REPLICA DIVERGED - " ^ what)
          | None -> 0))

let db_promote_cmd dir primary json =
  let finish report code =
    print_string (Replication.Failover.report_to_string report);
    (match json with
    | Some file ->
      write_file file (Replication.Failover.report_to_json report);
      Format.printf "wrote %s@." file
    | None -> ());
    code
  in
  match Replication.Failover.promote ?primary_dir:primary ~dir () with
  | exception Replication.Replica.Replica_error m -> exit_usage m
  | exception Durability.Db.Recovery_error m -> exit_data ("recovery failed: " ^ m)
  | exception Gom.Serial.Corrupt m -> exit_data ("corrupt image: " ^ m)
  | Ok (db, report) ->
    Fun.protect
      ~finally:(fun () -> Durability.Db.close db)
      (fun () -> finish report 0)
  | Error report ->
    ignore (finish report 1);
    exit_data "PROMOTION REFUSED - divergence against the primary's history"

(* ---------------- cmdliner wiring ---------------- *)

open Cmdliner

let list_t = Term.(const list_cmd $ const ())

let experiment_t =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id, or $(b,all).")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.") in
  Term.(const experiment_cmd $ id $ csv)

let advise_t =
  let profile =
    Arg.(value & opt string "storage" & info [ "profile" ] ~docv:"NAME"
           ~doc:"Application profile: $(b,storage) or $(b,query).")
  in
  let p_up =
    Arg.(value & opt float 0.2 & info [ "pup" ] ~docv:"P" ~doc:"Update probability.")
  in
  let queries =
    Arg.(value & opt_all string [] & info [ "query" ] ~docv:"I,J,KIND,W"
           ~doc:"Weighted query, e.g. $(b,0,4,bw,0.5); repeatable.")
  in
  let updates =
    Arg.(value & opt_all string [] & info [ "ins" ] ~docv:"POS,W"
           ~doc:"Weighted insert update, e.g. $(b,3,1.0); repeatable.")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Designs to display.")
  in
  Term.(const advise_cmd $ profile $ p_up $ queries $ updates $ top)

let flush_policy_arg =
  Arg.(value & opt (some string) None & info [ "flush-policy" ] ~docv:"POLICY"
         ~doc:"Deferred index maintenance: buffer tree writes as deltas and \
               apply them in batched one-pass flushes.  $(docv) is \
               $(b,immediate), $(b,every:K) (flush each K store events), \
               $(b,bytes:N) (flush at N buffered bytes) or $(b,onquery) \
               (only the engine's freshness watermark catches up).  Answers \
               are exact under every policy.")

let query_t =
  let base =
    Arg.(value & opt string "company" & info [ "base" ] ~docv:"NAME"
           ~doc:"Demo base: $(b,robots) or $(b,company).")
  in
  let file =
    Arg.(value & opt (some string) None & info [ "file" ] ~docv:"FILE"
           ~doc:"Load the object base from a file written by $(b,dump) instead.")
  in
  let path =
    Arg.(value & opt (some string) None & info [ "path" ] ~docv:"T0.A1...."
           ~doc:"Path expression to index (defaults to the demo base's path).")
  in
  let index =
    Arg.(value & opt (some string) None & info [ "index" ] ~docv:"EXT[:DEC]"
           ~doc:"Create an access support relation over the path, e.g. \
                 $(b,full:0,3,5) or $(b,can).")
  in
  let batch =
    Arg.(value & flag & info [ "batch" ]
           ~doc:"Run all queries through one shared engine, print one line per \
                 query plus the plan-cache and page-access summary as JSON \
                 (repeated query shapes hit the plan cache).")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N"
           ~doc:"Evaluate the queries on $(docv) domains through the shared \
                 engine (one private accounting sheaf per query, merged into \
                 the $(b,--batch) summary).  Results print in input order \
                 regardless of $(docv).")
  in
  let shards =
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
           ~doc:"Split the base into $(docv) shards (hash placement on the \
                 clustering column; any $(b,--index) materialises as one \
                 owner-filtered fragment per shard) and answer each query by \
                 scatter-gather: every shard evaluates it over its replica \
                 and the merged rows equal the unsharded answer exactly.")
  in
  let texts =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"QUERY"
           ~doc:"GOM-SQL text; repeatable.")
  in
  let buffer_pages =
    Arg.(value & opt int 0 & info [ "buffer-pages" ] ~docv:"N"
           ~doc:"Attach an $(docv)-page buffer pool between the executor \
                 and the pager: repeated page reads within the pool's \
                 capacity become cache hits (no physical I/O), and the \
                 report splits logical from physical page counts.  \
                 0 (the default) keeps the unbuffered accounting.")
  in
  Term.(
    const query_cmd $ base $ file $ path $ index $ flush_policy_arg $ batch $ jobs
    $ shards $ buffer_pages $ texts)

let serve_t =
  let base =
    Arg.(value & opt string "company" & info [ "base" ] ~docv:"NAME"
           ~doc:"Demo base: $(b,robots) or $(b,company).")
  in
  let file =
    Arg.(value & opt (some string) None & info [ "file" ] ~docv:"FILE"
           ~doc:"Load the object base from a file written by $(b,dump) instead.")
  in
  let path =
    Arg.(value & opt (some string) None & info [ "path" ] ~docv:"T0.A1...."
           ~doc:"Path expression the workload ranges over (defaults to the \
                 demo base's path).")
  in
  let index =
    Arg.(value & opt (some string) None & info [ "index" ] ~docv:"EXT[:DEC]"
           ~doc:"Rebuild this access support relation on every published \
                 snapshot, e.g. $(b,full:0,3,5) or $(b,can).")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N"
           ~doc:"Executor domains in the server's pool.")
  in
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"K"
           ~doc:"Serve the whole workload $(docv) times (throughput timing).")
  in
  let workload =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
           ~doc:"Workload file: one probe batch per line, $(b,fw I J K) or \
                 $(b,bw I J K) — evaluate Q^(I,J) over the first K extent \
                 members.  $(b,#) comments and blank lines are skipped.")
  in
  let max_queue =
    Arg.(value & opt (some int) None & info [ "max-queue" ] ~docv:"N"
           ~doc:"Admission-controlled serving: bound the dispatch queue at \
                 $(docv) entries; overflow is shed per $(b,--shed-policy). \
                 Setting any of the three overload flags enables the \
                 resilience front.")
  in
  let deadline_ms =
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Per-query cancellation budget: a query that exceeds $(docv) \
                 milliseconds (queued or running) resolves to a typed \
                 timeout, never a partial answer.")
  in
  let shed_policy =
    Arg.(value & opt (some string) None & info [ "shed-policy" ] ~docv:"POLICY"
           ~doc:"Overflow policy: $(b,newest), $(b,oldest) or $(b,deadline) \
                 (evict the entry with the least remaining budget).")
  in
  let buffer_pages =
    Arg.(value & opt int 0 & info [ "buffer-pages" ] ~docv:"N"
           ~doc:"Give every worker domain a private $(docv)-page buffer \
                 pool; the merged accounting then reports the cumulative \
                 hit ratio, misses and evictions across workers.  \
                 0 (the default) serves unbuffered.")
  in
  Term.(
    const serve_cmd $ base $ file $ path $ index $ flush_policy_arg $ jobs
    $ buffer_pages $ workload $ repeat $ max_queue $ deadline_ms $ shed_policy)

let explain_t =
  let base =
    Arg.(value & opt string "company" & info [ "base" ] ~docv:"NAME"
           ~doc:"Demo base: $(b,robots) or $(b,company).")
  in
  let file =
    Arg.(value & opt (some string) None & info [ "file" ] ~docv:"FILE"
           ~doc:"Load the object base from a file written by $(b,dump) instead.")
  in
  let path =
    Arg.(value & opt (some string) None & info [ "path" ] ~docv:"T0.A1...."
           ~doc:"Path expression to index (defaults to the demo base's path).")
  in
  let index =
    Arg.(value & opt (some string) None & info [ "index" ] ~docv:"EXT[:DEC]"
           ~doc:"Create an access support relation over the path, e.g. \
                 $(b,full:0,3,5) or $(b,can).")
  in
  let text =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"GOM-SQL text.")
  in
  Term.(const explain_cmd $ base $ file $ path $ index $ text)

let repl_t =
  let base =
    Arg.(value & opt string "company" & info [ "base" ] ~docv:"NAME"
           ~doc:"Demo base: $(b,robots) or $(b,company).")
  in
  let file =
    Arg.(value & opt (some string) None & info [ "file" ] ~docv:"FILE"
           ~doc:"Load the object base from a file written by $(b,dump) instead.")
  in
  let path =
    Arg.(value & opt (some string) None & info [ "path" ] ~docv:"T0.A1...."
           ~doc:"Path expression to index.")
  in
  let index =
    Arg.(value & opt (some string) None & info [ "index" ] ~docv:"EXT[:DEC]"
           ~doc:"Create an access support relation over the path.")
  in
  Term.(const repl_cmd $ base $ file $ path $ index)

let auto_t =
  let base =
    Arg.(value & opt string "company" & info [ "base" ] ~docv:"NAME"
           ~doc:"Demo base: $(b,robots) or $(b,company).")
  in
  let file =
    Arg.(value & opt (some string) None & info [ "file" ] ~docv:"FILE"
           ~doc:"Load the object base from a file instead.")
  in
  let path =
    Arg.(value & opt (some string) None & info [ "path" ] ~docv:"T0.A1...."
           ~doc:"Path expression to design for.")
  in
  let p_up =
    Arg.(value & opt float 0.2 & info [ "pup" ] ~docv:"P" ~doc:"Update probability.")
  in
  let queries =
    Arg.(value & opt_all string [] & info [ "query" ] ~docv:"I,J,KIND,W"
           ~doc:"Weighted query; repeatable.")
  in
  let updates =
    Arg.(value & opt_all string [] & info [ "ins" ] ~docv:"POS,W"
           ~doc:"Weighted insert update; repeatable.")
  in
  Term.(const auto_cmd $ base $ file $ path $ p_up $ queries $ updates)

let dump_t =
  let base =
    Arg.(value & opt string "company" & info [ "base" ] ~docv:"NAME"
           ~doc:"Demo base: $(b,robots) or $(b,company).")
  in
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Output file.")
  in
  Term.(const dump_cmd $ base $ file)

let db_dir =
  Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR"
         ~doc:"Directory of the durable base.")

let db_open_t =
  let base =
    Arg.(value & opt string "company" & info [ "base" ] ~docv:"NAME"
           ~doc:"Demo base to initialise from if $(docv) is empty.")
  in
  let shards =
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
           ~doc:"Initialise an empty directory as a $(docv)-shard durable \
                 base: one write-ahead-logged Db per shard plus a cross-shard \
                 manifest; $(b,db status) rolls the shards up and enforces \
                 the generation-agreement gate.")
  in
  Term.(const db_open_cmd $ db_dir $ base $ shards)

let db_append_t =
  let ops =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"OP"
           ~doc:"Mutations, e.g. $(b,'new ROBOT'), $(b,'set 3 Name str:\"Z3\"'), \
                 $(b,'ins 5 ref:3'), $(b,'del 7'), $(b,'name Root 3'); all applied \
                 in one transaction.")
  in
  Term.(const db_append_cmd $ db_dir $ ops)

let db_flush_t =
  let policy =
    Arg.(value & opt (some string) None & info [ "set-policy" ] ~docv:"POLICY"
           ~doc:"Switch the maintenance flush policy first: $(b,immediate), \
                 $(b,every:K), $(b,bytes:N) or $(b,onquery).")
  in
  Term.(const db_flush_cmd $ db_dir $ policy)

let db_status_t = Term.(const db_status_cmd $ db_dir)
let db_checkpoint_t = Term.(const db_checkpoint_cmd $ db_dir)
let db_recover_t = Term.(const db_recover_cmd $ db_dir)

let db_index_t =
  let kind =
    Arg.(value & opt string "full" & info [ "kind" ] ~docv:"EXT"
           ~doc:"Extension: $(b,can), $(b,full), $(b,left) or $(b,right).")
  in
  let path =
    Arg.(required & opt (some string) None & info [ "path" ] ~docv:"T0.A1...."
           ~doc:"Path expression to index.")
  in
  let dec =
    Arg.(value & opt (some string) None & info [ "dec" ] ~docv:"B0,B1,..."
           ~doc:"Decomposition boundaries (default: binary).")
  in
  Term.(const db_index_cmd $ db_dir $ kind $ path $ dec)

let db_doctor_t =
  let sample =
    Arg.(value & opt (some int) None & info [ "sample" ] ~docv:"K"
           ~doc:"Audit a deterministic 1-in-$(docv) sample of source objects \
                 instead of the full extension.")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write a machine-readable scrub report (reports + counters).")
  in
  Term.(const db_doctor_cmd $ db_dir $ sample $ json)

let db_repair_t =
  let slice =
    Arg.(value & opt int 32 & info [ "slice" ] ~docv:"N"
           ~doc:"Tuples fixed per incremental repair step.")
  in
  let rounds =
    Arg.(value & opt int 4 & info [ "rounds" ] ~docv:"N"
           ~doc:"Maximum rebuild-and-verify rounds before giving up.")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write a machine-readable post-repair scrub report.")
  in
  Term.(const db_repair_cmd $ db_dir $ slice $ rounds $ json)

let db_replica_t =
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"Replica directory (fresh, or resuming a previous follow).")
  in
  let follow =
    Arg.(required & opt (some string) None & info [ "follow" ] ~docv:"PRIMARY"
           ~doc:"Directory of the durable base to replicate.")
  in
  let frame_bytes =
    Arg.(value & opt int 4096 & info [ "frame-bytes" ] ~docv:"N"
           ~doc:"Cap each shipped log slice at $(docv) bytes.")
  in
  let digest_every =
    Arg.(value & opt int 8 & info [ "digest-every" ] ~docv:"K"
           ~doc:"Ship a store+relation digest frame every $(docv) data frames \
                 (0 disables catch-up digests).")
  in
  let chaos =
    Arg.(value & opt (some int) None & info [ "chaos" ] ~docv:"SEED"
           ~doc:"Inject seeded random channel faults (drops, duplicates, \
                 reorders, corruption, partitions); the run replays exactly \
                 from the printed seed.")
  in
  let kill_after =
    Arg.(value & opt (some int) None & info [ "kill-after-frames" ] ~docv:"K"
           ~doc:"Kill the primary after its $(docv)'th shipped frame — frames \
                 already in flight may still deliver — leaving the replica \
                 ready for $(b,db promote).")
  in
  Term.(
    const db_replica_cmd $ dir $ follow $ frame_bytes $ digest_every $ chaos
    $ kill_after)

let db_promote_t =
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"Replica directory to promote.")
  in
  let primary =
    Arg.(value & opt (some string) None & info [ "primary" ] ~docv:"DIR"
           ~doc:"The dead primary's directory: verify the replica's log is a \
                 byte prefix of its history and digest-compare the promoted \
                 store and every relation against its snapshot+prefix replay.")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the machine-readable promotion report.")
  in
  Term.(const db_promote_cmd $ dir $ primary $ json)

let db_cmd =
  Cmd.group
    (Cmd.info "db"
       ~doc:"Operate a durable object base (write-ahead log + snapshots + recovery).")
    [
      Cmd.v
        (Cmd.info "open"
           ~doc:"Open (recovering if needed) or initialise a durable base and show \
                 its status.")
        db_open_t;
      Cmd.v
        (Cmd.info "append"
           ~doc:"Apply mutations in one write-ahead-logged transaction.")
        db_append_t;
      Cmd.v
        (Cmd.info "flush"
           ~doc:"Drain every registered relation's deferred-maintenance deltas \
                 into its partition trees, framed in the write-ahead log as one \
                 atomic flush group.")
        db_flush_t;
      Cmd.v
        (Cmd.info "status"
           ~doc:"Print the base's generation, object/relation counts, flush \
                 policy and per-relation pending-delta depth.")
        db_status_t;
      Cmd.v
        (Cmd.info "checkpoint"
           ~doc:"Snapshot the base atomically and rotate the write-ahead log.")
        db_checkpoint_t;
      Cmd.v
        (Cmd.info "recover"
           ~doc:"Recover, print the recovery report, and verify every registered \
                 access support relation against a from-scratch build.")
        db_recover_t;
      Cmd.v
        (Cmd.info "index"
           ~doc:"Register a maintained, recovery-verified access support relation.")
        db_index_t;
      Cmd.v
        (Cmd.info "doctor"
           ~doc:"Scrub every registered access support relation against the object \
                 graph; exit 1 on any divergence.")
        db_doctor_t;
      Cmd.v
        (Cmd.info "repair"
           ~doc:"Scrub, quarantine diverged partitions, rebuild them incrementally, \
                 re-verify and lift the quarantine.")
        db_repair_t;
      Cmd.v
        (Cmd.info "replica"
           ~doc:"Tail a primary's write-ahead log into a hot standby: catch up \
                 over a (optionally fault-injected) channel, verify shipped \
                 digests, and report lag and frame accounting.")
        db_replica_t;
      Cmd.v
        (Cmd.info "promote"
           ~doc:"Promote a replica to primary: recover its files like a crashed \
                 base, scrub every relation, and (with $(b,--primary)) fail on \
                 any byte- or digest-located divergence from the dead \
                 primary's history.")
        db_promote_t;
    ]

let cmds =
  [
    db_cmd;
    Cmd.v (Cmd.info "list" ~doc:"List the paper's experiments.") list_t;
    Cmd.v (Cmd.info "experiment" ~doc:"Regenerate a figure's data series.") experiment_t;
    Cmd.v (Cmd.info "advise" ~doc:"Rank physical designs for an operation mix.") advise_t;
    Cmd.v (Cmd.info "query" ~doc:"Run a GOM-SQL query against a demo or saved base.") query_t;
    Cmd.v
      (Cmd.info "serve"
         ~doc:"Serve a probe-batch workload from snapshot-isolated domains \
               and report throughput.")
      serve_t;
    Cmd.v
      (Cmd.info "explain"
         ~doc:"Show the engine's chosen physical plan, its cost estimate, every \
               considered alternative, and the measured page accesses.")
      explain_t;
    Cmd.v (Cmd.info "dump" ~doc:"Persist a demo base to a file.") dump_t;
    Cmd.v (Cmd.info "repl" ~doc:"Interactive GOM-SQL shell.") repl_t;
    Cmd.v
      (Cmd.info "auto"
         ~doc:"Measure a base's profile and materialise the advisor's winning design.")
      auto_t;
  ]

let () =
  let doc = "Access support relations for object bases (Kemper & Moerkotte, SIGMOD 1990)" in
  (* Last-resort exception net, for data failures that surface outside a
     [with_db] scope: known data errors exit 1 like everywhere else,
     anything truly unexpected exits 125 so scripts can tell a crash
     from a diagnosis. *)
  let code =
    try Cmd.eval' (Cmd.group (Cmd.info "asr_cli" ~doc) cmds) with
    | Durability.Db.Db_error m -> prerr_endline m; 1
    | Durability.Db.Recovery_error m ->
      prerr_endline ("recovery failed: " ^ m); 1
    | Gom.Serial.Corrupt m -> prerr_endline ("corrupt image: " ^ m); 1
    | Durability.Fault.Retryable m ->
      prerr_endline ("transient failure persisted: " ^ m); 1
    | e -> prerr_endline ("unexpected error: " ^ Printexc.to_string e); 125
  in
  exit code
