(* Tests for Costmodel.Profile and Costmodel.Derived: parameter
   derivations (Figure 3), probabilistic recursions (eqs. 6-12, 29-30)
   and Yao's formula. *)

module P = Costmodel.Profile
module Dv = Costmodel.Derived

let check = Alcotest.(check bool)
let checkf msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

let near ?(tol = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1. (Float.abs expected) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

let simple ?shar ?sharing () =
  P.make ?shar ?sharing ~c:[ 100.; 200.; 400. ] ~d:[ 80.; 150. ] ~fan:[ 2.; 3. ] ()

let test_make_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "c length" true
    (bad (fun () -> P.make ~c:[ 1. ] ~d:[ 1. ] ~fan:[ 1. ] ()));
  check "d > c" true
    (bad (fun () -> P.make ~c:[ 10.; 10. ] ~d:[ 20. ] ~fan:[ 1. ] ()));
  check "negative fan" true
    (bad (fun () -> P.make ~c:[ 10.; 10. ] ~d:[ 5. ] ~fan:[ -1. ] ()));
  check "sizes length" true
    (bad (fun () -> P.make ~sizes:[ 1. ] ~c:[ 10.; 10. ] ~d:[ 5. ] ~fan:[ 1. ] ()))

let test_basic_accessors () =
  let p = simple () in
  checkf "n" 2. (float_of_int (P.n p));
  checkf "c0" 100. (P.c p 0);
  checkf "d1" 150. (P.d p 1);
  checkf "P_A(0)" 0.8 (P.p_a p 0);
  checkf "ref_0" 160. (P.ref_ p 0);
  check "index bounds" true
    (try ignore (P.d p 2); false with Invalid_argument _ -> true)

let test_explicit_shar () =
  let p = simple ~shar:[ 2.; 1. ] () in
  checkf "shar explicit" 2. (P.shar p 0);
  (* e_1 = d_0 * fan_0 / shar_0 = 160 / 2 *)
  checkf "e from shar" 80. (P.e p 1)

let test_paper_default_sharing () =
  let p = simple ~sharing:P.Paper_default () in
  (* Figure 3's default makes every target referenced: e_i = c_i. *)
  checkf "e1 = c1" 200. (P.e p 1);
  checkf "e2 = c2" 400. (P.e p 2);
  near "shar consistent" (160. /. 200.) (P.shar p 0)

let test_uniform_sharing () =
  let p = simple () in
  (* e_1 = 200 * (1 - (1 - 1/200)^160). *)
  let expected = 200. *. (1. -. ((1. -. (1. /. 200.)) ** 160.)) in
  near "binomial distinct targets" expected (P.e p 1);
  check "partial referencing" true (P.e p 1 < 200.);
  (* shar * e = total references. *)
  near "shar * e = refs" 160. (P.shar p 0 *. P.e p 1)

let test_ref_by_monotone () =
  let p = simple () in
  (* RefBy(0,1) is e_1 by definition. *)
  near "refby base" (P.e p 1) (Dv.ref_by p 0 1);
  check "refby bounded by c" true (Dv.ref_by p 0 2 <= P.c p 2);
  check "p_refby in [0,1]" true
    (let x = Dv.p_ref_by p 0 2 in
     x >= 0. && x <= 1.);
  checkf "p_refby reflexive" 1. (Dv.p_ref_by p 1 1)

let test_reaches () =
  let p = simple () in
  near "reaches base" (P.d p 0) (Dv.reaches p 0 1);
  check "reaches bounded by d" true (Dv.reaches p 0 2 <= P.d p 0);
  checkf "p_ref reflexive" 1. (Dv.p_ref p 2 2)

let test_path_count () =
  let p = simple () in
  (* path(0,2) = ref_0 * P_A(1) * fan_1 = 160 * 0.75 * 3. *)
  near "path(0,2)" 360. (Dv.path_count p 0 2);
  near "path(0,1)" 160. (Dv.path_count p 0 1);
  near "path(1,2)" 450. (Dv.path_count p 1 2)

let test_k_variants () =
  let p = simple () in
  (* Equation 29's probabilistic base case never exceeds equation 6's
     saturating one, and coincides in the singleton-position case. *)
  check "refby_k bounded by refby" true (Dv.ref_by_k p 0 2 (P.d p 0) <= Dv.ref_by p 0 2);
  check "refby_k monotone in k" true
    (Dv.ref_by_k p 0 2 1. <= Dv.ref_by_k p 0 2 10.);
  checkf "refby_k at i=j" 1. (Dv.ref_by_k p 1 1 1.);
  check "reaches_k bounded" true (Dv.reaches_k p 0 2 (P.c p 2) <= Dv.reaches p 0 2 +. 1e-9);
  check "reaches_k monotone" true (Dv.reaches_k p 0 2 1. <= Dv.reaches_k p 0 2 50.)

let test_bounds () =
  let p = simple () in
  List.iter
    (fun (i, j) ->
      let lb = Dv.p_lb p i j and rb = Dv.p_rb p i j in
      check "p_lb in [0,1]" true (lb >= 0. && lb <= 1.);
      check "p_rb in [0,1]" true (rb >= 0. && rb <= 1.))
    [ (0, 1); (0, 2); (1, 2); (1, 1); (2, 1) ];
  let pp = Dv.p_path p 1 in
  check "p_path in [0,1]" true (pp >= 0. && pp <= 1.);
  near "p_no_path complement" 1. (pp +. Dv.p_no_path p 1)

let test_yao_exact_cases () =
  checkf "retrieve all" 10. (Dv.yao ~k:100. ~m:10. ~n:100.);
  checkf "retrieve none" 0. (Dv.yao ~k:0. ~m:10. ~n:100.);
  checkf "degenerate m" 0. (Dv.yao ~k:5. ~m:0. ~n:100.);
  (* One record out of n on m pages: exactly 1 page. *)
  checkf "single record" 1. (Dv.yao ~k:1. ~m:10. ~n:100.);
  (* k = n - 1 is nearly all pages. *)
  check "nearly all" true (Dv.yao ~k:99. ~m:10. ~n:100. >= 9.)

let yao_naive ~k ~m ~n =
  (* Direct product evaluation for small integers; once the numerator
     reaches zero every page is fetched (probability of skipping any
     page vanishes). *)
  let k = int_of_float k and n = int_of_float n in
  let p = ref 1. in
  for t = 1 to k do
    let num = (float_of_int n *. (1. -. (1. /. m))) -. float_of_int t +. 1. in
    if num <= 0. then p := 0.
    else p := !p *. num /. (float_of_int n -. float_of_int t +. 1.)
  done;
  Float.ceil (m *. (1. -. !p))

let prop_yao_matches_naive =
  QCheck.Test.make ~name:"yao matches direct product on small inputs" ~count:200
    QCheck.(triple (int_range 1 50) (int_range 1 20) (int_range 1 100))
    (fun (k, m, n) ->
      let k = min k n in
      let k' = float_of_int k and m' = float_of_int m and n' = float_of_int n in
      let a = Dv.yao ~k:k' ~m:m' ~n:n' in
      let b = yao_naive ~k:k' ~m:m' ~n:n' in
      Float.abs (a -. b) <= 1.)

let prop_yao_monotone_k =
  QCheck.Test.make ~name:"yao monotone in k" ~count:200
    QCheck.(triple (int_range 1 99) (int_range 1 30) (int_range 2 200))
    (fun (k, m, n) ->
      let n = max n (k + 1) in
      Dv.yao ~k:(float_of_int k) ~m:(float_of_int m) ~n:(float_of_int n)
      <= Dv.yao ~k:(float_of_int (k + 1)) ~m:(float_of_int m) ~n:(float_of_int n))

let suite =
  [
    Alcotest.test_case "profile validation" `Quick test_make_validation;
    Alcotest.test_case "basic accessors" `Quick test_basic_accessors;
    Alcotest.test_case "explicit shar" `Quick test_explicit_shar;
    Alcotest.test_case "paper-default sharing" `Quick test_paper_default_sharing;
    Alcotest.test_case "uniform sharing" `Quick test_uniform_sharing;
    Alcotest.test_case "RefBy" `Quick test_ref_by_monotone;
    Alcotest.test_case "Ref" `Quick test_reaches;
    Alcotest.test_case "path counts" `Quick test_path_count;
    Alcotest.test_case "k-subset variants" `Quick test_k_variants;
    Alcotest.test_case "probability bounds" `Quick test_bounds;
    Alcotest.test_case "Yao exact cases" `Quick test_yao_exact_cases;
    Qc.to_alcotest prop_yao_matches_naive;
    Qc.to_alcotest prop_yao_monotone_k;
  ]
