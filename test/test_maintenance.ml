(* Tests for Core.Maintenance: incremental ASR updates must agree with
   from-scratch recomputation after arbitrary object-base mutations. *)

module M = Core.Maintenance
module D = Core.Decomposition
module E = Core.Exec
module V = Gom.Value
module C = Workload.Schemas.Company

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let env_of spec store =
  let heap = Storage.Heap.create ~size_of:(Workload.Generator.size_of spec) store in
  (E.make store heap)

let company_setup kind dec =
  let b = C.base () in
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) b.C.store in
  let env = (E.make b.C.store heap) in
  let mgr = M.create env in
  let a = Core.Asr.create b.C.store (C.name_path b.C.store) kind dec in
  M.register mgr a;
  (b, mgr, a)

let agree a =
  let scratch =
    Core.Extension.compute (Core.Asr.store a) (Core.Asr.path a) (Core.Asr.kind a)
  in
  Relation.equal scratch (Core.Asr.extension_relation a)
  && List.for_all2
       (fun (lo, hi) i ->
         Relation.equal
           (D.project (Core.Asr.extension_relation a) (lo, hi))
           (Core.Asr.partition_relation a i))
       (D.partitions (Core.Asr.decomposition a))
       (List.init (Core.Asr.partition_count a) Fun.id)

let check_agree label a = check label true (agree a)

let test_set_insert () =
  List.iter
    (fun kind ->
      let b, _mgr, a = company_setup kind (D.binary ~m:5) in
      (* ins: put mb_trak's missing composition in place, then extend an
         existing set. *)
      let parts = Gom.Store.new_object b.C.store "BasePartSET" in
      Gom.Store.set_attr b.C.store b.C.mb_trak "Composition" (V.Ref parts);
      check_agree (Core.Extension.name kind ^ ": attach empty set") a;
      Gom.Store.insert_elem b.C.store parts (V.Ref b.C.pepper);
      check_agree (Core.Extension.name kind ^ ": first element") a;
      Gom.Store.insert_elem b.C.store parts (V.Ref b.C.door);
      check_agree (Core.Extension.name kind ^ ": second element") a)
    Core.Extension.all

let test_set_remove () =
  List.iter
    (fun kind ->
      let b, _mgr, a = company_setup kind (D.binary ~m:5) in
      let sec_parts = V.oid_exn (Gom.Store.get_attr b.C.store b.C.sec560 "Composition") in
      Gom.Store.remove_elem b.C.store sec_parts (V.Ref b.C.door);
      check_agree (Core.Extension.name kind ^ ": remove last element") a)
    Core.Extension.all

let test_attr_assign () =
  List.iter
    (fun kind ->
      let b, _mgr, a = company_setup kind (D.make ~m:5 [ 0; 3; 5 ]) in
      (* Repoint a division to a different product set, then to NULL. *)
      let truck_ps = V.oid_exn (Gom.Store.get_attr b.C.store b.C.truck "Manufactures") in
      Gom.Store.set_attr b.C.store b.C.auto "Manufactures" (V.Ref truck_ps);
      check_agree (Core.Extension.name kind ^ ": repoint set attr") a;
      Gom.Store.set_attr b.C.store b.C.truck "Manufactures" V.Null;
      check_agree (Core.Extension.name kind ^ ": null set attr") a;
      (* And an atomic attribute at the end of the path. *)
      Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "Hatch");
      check_agree (Core.Extension.name kind ^ ": rename base part") a)
    Core.Extension.all

let test_delete_object () =
  List.iter
    (fun kind ->
      let b, _mgr, a = company_setup kind (D.binary ~m:5) in
      Gom.Store.delete b.C.store b.C.sec560;
      check_agree (Core.Extension.name kind ^ ": delete shared product") a;
      Gom.Store.delete b.C.store b.C.door;
      check_agree (Core.Extension.name kind ^ ": delete base part") a)
    Core.Extension.all

let test_multiple_asrs_one_store () =
  let b = C.base () in
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) b.C.store in
  let env = (E.make b.C.store heap) in
  let mgr = M.create env in
  let path = C.name_path b.C.store in
  let asrs =
    List.map
      (fun kind ->
        let a = Core.Asr.create b.C.store path kind (D.binary ~m:5) in
        M.register mgr a;
        a)
      Core.Extension.all
  in
  check_int "registered" 4 (List.length (M.asrs mgr));
  let parts = Gom.Store.new_object b.C.store "BasePartSET" in
  Gom.Store.insert_elem b.C.store parts (V.Ref b.C.pepper);
  Gom.Store.set_attr b.C.store b.C.mb_trak "Composition" (V.Ref parts);
  List.iter (check_agree "all kinds stay in sync") asrs

let test_distinct_paths_one_store () =
  (* Two different path expressions over one base: an update on their
     shared middle segment must keep both consistent, and an update
     outside a path must leave that path's relation untouched. *)
  let b = C.base () in
  let store = b.C.store in
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
  let mgr = M.create (E.make store heap) in
  let long = C.name_path store in
  let short = Gom.Path.make (Gom.Store.schema store) "Product" [ "Composition"; "Price" ] in
  let a_long = Core.Asr.create store long Core.Extension.Full (D.binary ~m:5) in
  let a_short = Core.Asr.create store short Core.Extension.Full (D.binary ~m:3) in
  M.register mgr a_long;
  M.register mgr a_short;
  let agree a path kind =
    Relation.equal (Core.Extension.compute store path kind) (Core.Asr.extension_relation a)
  in
  (* Shared segment: Composition membership. *)
  let sec_parts = V.oid_exn (Gom.Store.get_attr store b.C.sec560 "Composition") in
  Gom.Store.insert_elem store sec_parts (V.Ref b.C.pepper);
  check "long path consistent" true (agree a_long long Core.Extension.Full);
  check "short path consistent" true (agree a_short short Core.Extension.Full);
  (* Only on the long path: Division.Manufactures. *)
  Gom.Store.set_attr store b.C.truck "Manufactures" V.Null;
  check "long path follows" true (agree a_long long Core.Extension.Full);
  check "short path follows trivially" true (agree a_short short Core.Extension.Full);
  (* Only on the short path: Price. *)
  Gom.Store.set_attr store b.C.door "Price" (V.Dec 7.0);
  check "short path reflects price" true (agree a_short short Core.Extension.Full);
  check "long path unaffected by price" true (agree a_long long Core.Extension.Full)

let test_maintenance_charges_pages () =
  List.iter
    (fun (kind, expect_cheap) ->
      let b, mgr, _ = company_setup kind (D.binary ~m:5) in
      let sec_parts = V.oid_exn (Gom.Store.get_attr b.C.store b.C.sec560 "Composition") in
      Gom.Store.insert_elem b.C.store sec_parts (V.Ref b.C.pepper);
      let cost = M.last_event_cost mgr in
      check (Core.Extension.name kind ^ ": update touched pages") true (cost > 0);
      (* Canonical and right-complete need backward searches in the
         data; on this tiny base everything is a handful of pages, so we
         only check the qualitative ordering elsewhere. *)
      ignore expect_cheap)
    [ (Core.Extension.Full, true); (Core.Extension.Canonical, false) ]

(* --- randomised scenario: arbitrary mutation sequences ------------- *)

type op = Insert | Remove | Assign | AssignNull | Delete

let apply_random_op rng store path =
  let nn = Gom.Path.length path in
  let level = Random.State.int rng nn in
  let step = Gom.Path.step path (level + 1) in
  let sources = Gom.Store.extent ~deep:true store step.Gom.Path.domain in
  let targets = Gom.Store.extent ~deep:true store step.Gom.Path.range in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  if sources = [] then ()
  else
    let src = pick sources in
    let op =
      match Random.State.int rng 10 with
      | 0 | 1 | 2 -> Insert
      | 3 | 4 -> Remove
      | 5 | 6 -> Assign
      | 7 -> AssignNull
      | _ -> Delete
    in
    match (op, step.Gom.Path.set_type) with
    | Delete, _ ->
      (* Delete a random target-level object (keeps at least one). *)
      if List.length targets > 1 then Gom.Store.delete store (pick targets)
    | (Insert | Remove | Assign), Some set_ty -> (
      match Gom.Store.get_attr store src step.Gom.Path.attr with
      | V.Null ->
        let s = Gom.Store.new_object store set_ty in
        Gom.Store.set_attr store src step.Gom.Path.attr (V.Ref s);
        if targets <> [] && Random.State.bool rng then
          Gom.Store.insert_elem store s (V.Ref (pick targets))
      | v -> (
        let s = V.oid_exn v in
        match op with
        | Insert -> if targets <> [] then Gom.Store.insert_elem store s (V.Ref (pick targets))
        | Remove -> (
          match Gom.Store.elements store s with
          | [] -> ()
          | elems -> Gom.Store.remove_elem store s (pick elems))
        | Assign | AssignNull | Delete ->
          Gom.Store.set_attr store src step.Gom.Path.attr V.Null))
    | (Insert | Assign), None ->
      if targets <> [] then
        Gom.Store.set_attr store src step.Gom.Path.attr (V.Ref (pick targets))
    | (Remove | AssignNull), None | AssignNull, Some _ ->
      Gom.Store.set_attr store src step.Gom.Path.attr V.Null

let spec_gen =
  QCheck.Gen.(
    let* nn = int_range 1 3 in
    let* counts = list_repeat (nn + 1) (int_range 1 5) in
    let* defined =
      flatten_l
        (List.map (fun c -> int_range 0 c) (List.filteri (fun i _ -> i < nn) counts))
    in
    let* fan = list_repeat nn (int_range 1 3) in
    let* sv = flatten_l (List.map (fun f -> if f > 1 then return true else bool) fan) in
    let* seed = int_range 0 100000 in
    return (Workload.Generator.spec ~seed ~set_valued:sv ~counts ~defined ~fan ()))

let prop_incremental_equals_scratch =
  QCheck.Test.make
    ~name:"incremental maintenance = scratch recomputation (random mutations)"
    ~count:80
    QCheck.(
      pair
        (make ~print:(fun _ -> "<spec>") spec_gen)
        (pair (int_bound 3) (pair small_int (int_bound 1000))))
    (fun (spec, (kind_idx, (pick, ops_seed))) ->
      let store, path = Workload.Generator.build spec in
      let env = env_of spec store in
      let mgr = M.create env in
      let kind = List.nth Core.Extension.all kind_idx in
      let m = Gom.Path.arity path - 1 in
      let decs = D.all ~m in
      let dec = List.nth decs (pick mod List.length decs) in
      let a = Core.Asr.create store path kind dec in
      M.register mgr a;
      let rng = Random.State.make [| ops_seed |] in
      let ok = ref true in
      for _ = 1 to 12 do
        if !ok then begin
          apply_random_op rng store path;
          if not (agree a) then ok := false
        end
      done;
      !ok)

(* Soak: a mid-sized base, four pooled relations of all kinds plus a
   second path, 60 random mutations; everything must stay consistent. *)
let test_soak () =
  let spec =
    Workload.Generator.spec ~seed:99
      ~counts:[ 60; 120; 240; 480 ]
      ~defined:[ 55; 110; 220 ]
      ~fan:[ 2; 2; 2 ] ()
  in
  let store, path = Workload.Generator.build spec in
  let env = env_of spec store in
  let mgr = M.create env in
  let m = Gom.Path.arity path - 1 in
  let pool = Core.Asr.make_pool store in
  let asrs =
    List.map
      (fun kind ->
        let a = Core.Asr.create ~pool store path kind (D.binary ~m) in
        M.register mgr a;
        a)
      Core.Extension.all
  in
  let short = Gom.Path.make (Gom.Store.schema store) "T1" [ "A2" ] in
  let a_short =
    Core.Asr.create store short Core.Extension.Full
      (D.trivial ~m:(Gom.Path.arity short - 1))
  in
  M.register mgr a_short;
  let rng = Random.State.make [| 2026 |] in
  for step = 1 to 60 do
    apply_random_op rng store path;
    if step mod 15 = 0 then
      List.iter
        (fun a -> check (Printf.sprintf "soak step %d" step) true (agree a))
        (a_short :: asrs)
  done;
  List.iter (fun a -> check "soak final" true (agree a)) (a_short :: asrs)

let suite =
  [
    Alcotest.test_case "set insert" `Quick test_set_insert;
    Alcotest.test_case "soak: pooled kinds + second path" `Slow test_soak;
    Alcotest.test_case "set remove" `Quick test_set_remove;
    Alcotest.test_case "attribute assignment" `Quick test_attr_assign;
    Alcotest.test_case "object deletion" `Quick test_delete_object;
    Alcotest.test_case "several ASRs, one store" `Quick test_multiple_asrs_one_store;
    Alcotest.test_case "distinct paths, one store" `Quick test_distinct_paths_one_store;
    Alcotest.test_case "maintenance charges pages" `Quick test_maintenance_charges_pages;
    Qc.to_alcotest prop_incremental_equals_scratch;
  ]
