(* Concurrency harness for the parallel serving layer: snapshot
   isolation under a racing mutator, jobs-independent deterministic
   merges, plan-cache hammering from several domains, sheaf accounting,
   the domain pool itself, and Store.copy.

   Everything here runs on stock OCaml 5 domains — the suite is the
   regression net for the data races the parallel layer is designed
   out of, so it deliberately oversubscribes the machine (domain count
   exceeds core count on small CI runners; correctness may not depend
   on true parallelism). *)

(* The Store.copy cases below exercise the deprecated deep clone on
   purpose — it remains the writer-side cloning primitive. *)
[@@@alert "-legacy"]

module E = Core.Exec
module D = Core.Decomposition
module V = Gom.Value
module Pool = Parallel.Pool
module Snapshot = Parallel.Snapshot
module Server = Parallel.Server

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let vset vs = List.sort_uniq V.compare vs
let oset os = List.sort_uniq Gom.Oid.compare os

let env_of store =
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
  E.make store heap

let specs_for ?(kind = Core.Extension.Full) path =
  let m = Gom.Path.arity path - 1 in
  [
    {
      Snapshot.sp_path = path;
      sp_kind = kind;
      sp_decomposition = D.binary ~m;
    };
  ]

let small_spec ?(seed = 7) () =
  Workload.Generator.spec ~seed ~counts:[ 4; 5; 6 ] ~defined:[ 4; 4 ] ~fan:[ 2; 1 ] ()

let spec_gen =
  QCheck.Gen.(
    let* nn = int_range 1 3 in
    let* counts = list_repeat (nn + 1) (int_range 1 6) in
    let* defined =
      flatten_l
        (List.map (fun c -> int_range 0 c) (List.filteri (fun i _ -> i < nn) counts))
    in
    let* fan = list_repeat nn (int_range 1 3) in
    let* sv = flatten_l (List.map (fun f -> if f > 1 then return true else bool) fan) in
    let* seed = int_range 0 10000 in
    return (Workload.Generator.spec ~seed ~set_valued:sv ~counts ~defined ~fan ()))

let iters_env name default =
  match Sys.getenv_opt name with
  | Some s -> (match int_of_string_opt (String.trim s) with Some n -> n | None -> default)
  | None -> default

(* ---------------- Store.copy ---------------- *)

let test_copy_isolates () =
  let store, path = Workload.Generator.build (small_spec ()) in
  let t0 = Gom.Path.type_at path 0 in
  let attr = (Gom.Path.step path 1).Gom.Path.attr in
  Gom.Store.bind_name store "root" (List.hd (Gom.Store.extent store t0));
  let copy = Gom.Store.copy store in
  check_int "epoch preserved" (Gom.Store.epoch store) (Gom.Store.epoch copy);
  check "extents equal" true
    (Gom.Store.extent ~deep:true store t0 = Gom.Store.extent ~deep:true copy t0);
  check "names equal" true (Gom.Store.names store = Gom.Store.names copy);
  let o = List.hd (Gom.Store.extent store t0) in
  check "attrs equal" true (Gom.Store.get_attr store o attr = Gom.Store.get_attr copy o attr);
  (* Fresh identifiers in the copy sit above every inherited one — the
     original (still exactly the inherited object set) must not know
     them.  (After this split the two generators diverge independently;
     ids are only ever meaningful within one store.) *)
  let fresh' = Gom.Store.new_object copy t0 in
  check "copy allocates above inherited oids" false (Gom.Store.mem store fresh');
  (* Mutating either side must not leak into the other. *)
  let before = Gom.Store.get_attr store o attr in
  Gom.Store.set_attr copy o attr V.Null;
  check "original untouched by copy mutation" true (Gom.Store.get_attr store o attr = before);
  Gom.Store.set_attr store o attr V.Null;
  Gom.Store.set_attr store o attr before;
  check "copy untouched by original mutation" true (Gom.Store.get_attr copy o attr = V.Null)

let test_copy_answers_agree () =
  let store, path = Workload.Generator.build (small_spec ~seed:19 ()) in
  let copy = Gom.Store.copy store in
  let env = env_of store and env' = env_of copy in
  let n = Gom.Path.length path in
  let sources = Gom.Store.extent ~deep:true store (Gom.Path.type_at path 0) in
  List.iter
    (fun src ->
      check "copy forward_scan agrees" true
        (vset (E.forward_scan env path ~i:0 ~j:n src)
        = vset (E.forward_scan env' path ~i:0 ~j:n src)))
    sources

(* ---------------- Pool ---------------- *)

let test_pool_order () =
  let pool = Pool.create ~jobs:4 in
  check_int "executors" 4 (Pool.size pool);
  let out = Pool.run_all pool (List.init 20 (fun i () -> i * i)) in
  check "results in input order" true (out = List.init 20 (fun i -> i * i));
  check "empty batch" true (Pool.run_all pool [] = []);
  Pool.shutdown pool;
  (* After shutdown the pool still executes — inline on the caller. *)
  check "inline after shutdown" true (Pool.run_all pool [ (fun () -> 42) ] = [ 42 ])

exception Boom of int

let test_pool_exceptions () =
  let pool = Pool.create ~jobs:3 in
  let raised =
    try
      ignore
        (Pool.run_all pool
           [ (fun () -> 1); (fun () -> raise (Boom 7)); (fun () -> raise (Boom 8)) ]);
      None
    with Boom k -> Some k
  in
  check "first exception in input order re-raised" true (raised = Some 7);
  (* The pool survives a failing batch. *)
  check "pool usable after failure" true (Pool.run_all pool [ (fun () -> 5) ] = [ 5 ]);
  Pool.shutdown pool

let test_pool_concurrent_batches () =
  let pool = Pool.create ~jobs:3 in
  let submitters =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            Pool.run_all pool (List.init 25 (fun i () -> (d * 1000) + i))))
  in
  let outs = List.map Domain.join submitters in
  List.iteri
    (fun d out ->
      check "concurrent batches stay separate" true
        (out = List.init 25 (fun i -> (d * 1000) + i)))
    outs;
  Pool.shutdown pool

(* ---------------- deterministic merge ---------------- *)

let all_ranges n =
  List.concat_map
    (fun i ->
      List.filter_map (fun j -> if i < j then Some (i, j) else None)
        (List.init (n + 1) Fun.id))
    (List.init n Fun.id)

(* The same batch must produce byte-identical answers whatever the job
   count, and those answers must equal the scan oracle over the live
   base (the snapshot is a faithful copy). *)
let prop_merge_deterministic =
  QCheck.Test.make ~name:"batch answers independent of job count, equal to oracle"
    ~count:25
    QCheck.(pair (make ~print:(fun _ -> "<spec>") spec_gen) (int_bound 3))
    (fun (spec, kind_idx) ->
      let store, path = Workload.Generator.build spec in
      let kind = List.nth Core.Extension.all kind_idx in
      let env0 = env_of store in
      let n = Gom.Path.length path in
      let sources_at i = Gom.Store.extent ~deep:true store (Gom.Path.type_at path i) in
      let targets_at j = sources_at j |> List.map (fun o -> V.Ref o) in
      let run jobs =
        let server = Server.create ~jobs ~specs:(specs_for ~kind path) store in
        let out =
          List.map
            (fun (i, j) ->
              ( Server.forward_batch server path ~i ~j (sources_at i),
                Server.backward_batch server path ~i ~j ~targets:(targets_at j) ))
            (all_ranges n)
        in
        Server.shutdown server;
        out
      in
      let reference = run 1 in
      let agreed =
        List.for_all (fun jobs -> run jobs = reference) [ 2; 3; 4 ]
      in
      let faithful =
        List.for_all2
          (fun (i, j) (fw, bw) ->
            List.for_all
              (fun (src, vals) -> vset vals = vset (E.forward_scan env0 path ~i ~j src))
              fw
            && List.for_all
                 (fun (target, os) ->
                   oset os = oset (E.backward_scan env0 path ~i ~j ~target))
                 bw)
          (all_ranges n) reference
      in
      agreed && faithful)

let test_serve_order () =
  let store, path = Workload.Generator.build (small_spec ~seed:23 ()) in
  let n = Gom.Path.length path in
  let sources_at i = Gom.Store.extent ~deep:true store (Gom.Path.type_at path i) in
  let queries =
    List.concat_map
      (fun (i, j) ->
        [
          Server.Forward { q_path = path; q_i = i; q_j = j; q_sources = sources_at i };
          Server.Backward
            {
              q_path = path;
              q_i = i;
              q_j = j;
              q_targets = sources_at j |> List.map (fun o -> V.Ref o);
            };
        ])
      (all_ranges n)
  in
  let answers jobs =
    let server = Server.create ~jobs ~specs:(specs_for path) store in
    let a = Server.serve server queries in
    Server.shutdown server;
    a
  in
  let reference = answers 1 in
  check_int "one answer per query" (List.length queries) (List.length reference);
  List.iter
    (fun jobs -> check "serve order independent of jobs" true (answers jobs = reference))
    [ 2; 4 ]

(* ---------------- snapshot isolation under a racing mutator ---------------- *)

(* Readers pin an epoch and compare the server's parallel answers with
   the navigational oracle evaluated over that same frozen snapshot,
   while the main domain keeps committing attribute toggles (each
   republishing a snapshot).  Isolation means the mutator is invisible
   at a pinned epoch — any torn read, stale plan leak or cross-epoch
   contamination breaks the oracle equality. *)
let prop_snapshot_isolation =
  QCheck.Test.make
    ~name:"pinned readers = scan oracle at their epoch, under racing mutator"
    ~count:(iters_env "ASR_RACE_COUNT" 25)
    QCheck.(make ~print:(fun _ -> "<spec>") spec_gen)
    (fun spec ->
      let store, path = Workload.Generator.build spec in
      let n = Gom.Path.length path in
      let server = Server.create ~jobs:2 ~specs:(specs_for path) store in
      let ok = Atomic.make true in
      let readers =
        List.init 2 (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to 3 do
                  let snap = Server.pin server in
                  let sstore = Snapshot.store snap in
                  let env = Snapshot.env snap in
                  List.iter
                    (fun (i, j) ->
                      let sources =
                        Gom.Store_view.extent ~deep:true sstore (Gom.Path.type_at path i)
                      in
                      let answers =
                        Server.forward_batch ~snapshot:snap server path ~i ~j sources
                      in
                      List.iter
                        (fun (src, vals) ->
                          if vset vals <> vset (E.forward_scan env path ~i ~j src) then
                            Atomic.set ok false)
                        answers)
                    [ (0, n); (max 0 (n - 1), n) ]
                done))
      in
      let attr = (Gom.Path.step path 1).Gom.Path.attr in
      let t0s = Gom.Store.extent ~deep:true store (Gom.Path.type_at path 0) in
      List.iteri
        (fun k o ->
          if k < 4 then begin
            let old =
              Server.update server (fun st ->
                  let v = Gom.Store.get_attr st o attr in
                  Gom.Store.set_attr st o attr V.Null;
                  v)
            in
            Server.update server (fun st -> Gom.Store.set_attr st o attr old)
          end)
        t0s;
      List.iter Domain.join readers;
      Server.shutdown server;
      Atomic.get ok)

(* ---------------- CoW advance = from-scratch capture ---------------- *)

(* After a committed trace, the CoW-advanced snapshot must be
   indistinguishable from a from-scratch capture of the same base —
   identical forward and backward answers, batched and probe-at-a-time —
   while physically sharing (==) every instance the trace did not touch
   with the previous epoch. *)
let prop_advance_equals_capture =
  QCheck.Test.make ~name:"advance = from-scratch capture, with structural sharing"
    ~count:(iters_env "ASR_RACE_COUNT" 15)
    QCheck.(make ~print:(fun _ -> "<spec>") spec_gen)
    (fun spec ->
      let store, path = Workload.Generator.build spec in
      let n = Gom.Path.length path in
      let src = Snapshot.source ~specs:(specs_for path) store in
      let snap0 = Snapshot.advance src in
      let attr = (Gom.Path.step path 1).Gom.Path.attr in
      let t0 = Gom.Path.type_at path 0 in
      let tn = Gom.Path.type_at path n in
      let t0s = Gom.Store.extent ~deep:true store t0 in
      (* Trace A touches the even-indexed anchors (a null/restore toggle
         still dirties the instance) and creates one object; the odd
         ones must come out of the next publication by reference. *)
      List.iteri
        (fun k o ->
          if k land 1 = 0 then begin
            let v = Gom.Store.get_attr store o attr in
            Gom.Store.set_attr store o attr Gom.Value.Null;
            Gom.Store.set_attr store o attr v
          end)
        t0s;
      ignore (Gom.Store.new_object store t0);
      let snap1 = Snapshot.advance src in
      let sharing_ok =
        List.for_all
          (fun (k, o) ->
            k land 1 = 0
            ||
            match
              ( Gom.Store_view.get (Snapshot.store snap0) o,
                Gom.Store_view.get (Snapshot.store snap1) o )
            with
            | Some a, Some b -> a == b
            | _ -> false)
          (List.mapi (fun k o -> (k, o)) t0s)
      in
      (* Trace B exercises the deletion path (inbound references are
         nullified, dirtying the referencers). *)
      (match Gom.Store.extent ~deep:true store tn with
      | victim :: _ when n >= 1 -> Gom.Store.delete store victim
      | _ -> ());
      let snap2 = Snapshot.advance src in
      let snap_ref = Snapshot.capture ~specs:(specs_for path) store in
      let sources = Gom.Store_view.extent ~deep:true (Snapshot.store snap_ref) t0 in
      let targets =
        Gom.Store_view.extent ~deep:true (Snapshot.store snap_ref) tn
        |> List.map (fun o -> V.Ref o)
      in
      let answers snap =
        let env = Snapshot.env snap in
        let engine = Snapshot.engine snap in
        let fw_batch = Engine.forward_batch ~env engine path ~i:0 ~j:n sources in
        let fw_one =
          List.map (fun o -> (o, Engine.forward ~env engine path ~i:0 ~j:n o)) sources
        in
        let bw_batch = Engine.backward_batch ~env engine path ~i:0 ~j:n ~targets in
        let nav =
          List.map (fun o -> (o, E.forward_scan env path ~i:0 ~j:n o)) sources
        in
        (fw_batch, fw_one, bw_batch, nav)
      in
      sharing_ok && answers snap2 = answers snap_ref)

let test_update_republishes () =
  let store, path = Workload.Generator.build (small_spec ~seed:31 ()) in
  let server = Server.create ~specs:(specs_for path) store in
  let e0 = Server.epoch server in
  let snap0 = Server.pin server in
  (* A read-only commit must not republish. *)
  Server.update server (fun st -> ignore (Gom.Store.count st (Gom.Path.type_at path 0)));
  check "no mutation, same snapshot" true (Server.pin server == snap0);
  let t0 = Gom.Path.type_at path 0 in
  let o = Server.update server (fun st -> Gom.Store.new_object st t0) in
  check "mutation republishes" true (Server.epoch server > e0);
  check "new snapshot sees the write" true
    (Gom.Store_view.mem (Snapshot.store (Server.pin server)) o);
  check "pinned snapshot still blind to it" false
    (Gom.Store_view.mem (Snapshot.store snap0) o);
  Server.shutdown server

(* ---------------- plan-cache stress ---------------- *)

(* Four domains hammer one snapshot engine while the main domain churns
   registrations, health and the plan cache.  The generation re-check
   and the stale-plan degradation must keep every answer equal to the
   oracle computed over the same frozen snapshot. *)
let test_plan_cache_stress () =
  let iters = iters_env "ASR_STRESS_ITERS" 3 in
  for it = 1 to iters do
    let store, path =
      Workload.Generator.build
        (Workload.Generator.spec ~seed:(100 + it) ~counts:[ 5; 6; 7 ] ~defined:[ 5; 5 ]
           ~fan:[ 2; 2 ] ())
    in
    let snap = Snapshot.capture ~specs:(specs_for path) store in
    let sstore = Snapshot.store snap in
    let engine = Snapshot.engine snap in
    let m = Gom.Path.arity path - 1 in
    (* Extras are built over the live base (the snapshot shares it by
       lineage); published before registration, the frozen environments
       carry no pin for them, so the planner prices them out — the
       register/unregister churn must still never corrupt an answer. *)
    let extras =
      List.map
        (fun kind -> Core.Asr.create store path kind (D.trivial ~m))
        [ Core.Extension.Left_complete; Core.Extension.Right_complete ]
    in
    let n = Gom.Path.length path in
    let ok = Atomic.make true in
    let workers =
      List.init 4 (fun _ ->
          Domain.spawn (fun () ->
              let env = Snapshot.env snap in
              let sources =
                Gom.Store_view.extent ~deep:true sstore (Gom.Path.type_at path 0)
              in
              let oracle =
                List.map
                  (fun src -> (src, vset (E.forward_scan env path ~i:0 ~j:n src)))
                  sources
              in
              for _ = 1 to 20 do
                List.iter
                  (fun (src, expect) ->
                    if vset (Engine.forward ~env engine path ~i:0 ~j:n src) <> expect
                    then Atomic.set ok false)
                  oracle
              done))
    in
    for _ = 1 to 40 do
      List.iter (fun a -> Engine.register engine a) extras;
      Engine.invalidate_plans engine;
      List.iter (fun a -> Engine.unregister engine a) extras
    done;
    List.iter Domain.join workers;
    check "stressed answers = oracle" true (Atomic.get ok);
    (* The cache survived coherently: every remaining entry is usable. *)
    ignore (Engine.cache_info engine)
  done

(* ---------------- accounting sheaves ---------------- *)

let test_stats_algebra () =
  let s1 =
    { Storage.Stats.zero with s_total_reads = 3; s_buffer_hits = 2; s_fallbacks = 1 }
  in
  let s2 = { Storage.Stats.zero with s_total_reads = 4; s_total_writes = 5; s_scrubs = 2 } in
  let m = Storage.Stats.merge s1 s2 in
  check_int "merge sums reads" 7 m.Storage.Stats.s_total_reads;
  check_int "merge sums writes" 5 m.s_total_writes;
  check_int "merge sums hits" 2 m.s_buffer_hits;
  check_int "merge sums integrity" 3 (m.s_scrubs + m.s_fallbacks);
  check "merge commutes" true (Storage.Stats.merge s2 s1 = m);
  check "zero is unit" true
    (Storage.Stats.merge Storage.Stats.zero s1 = s1
    && Storage.Stats.merge s1 Storage.Stats.zero = s1);
  let t = Storage.Stats.create () in
  Storage.Stats.absorb t m;
  let snap = Storage.Stats.snapshot t in
  check_int "absorb folds totals" 7 snap.s_total_reads;
  check_int "absorb folds writes" 5 snap.s_total_writes

(* The server's merged accounting equals the sequential sum over the
   same chunk decomposition: parallel fan-out loses or double-counts
   nothing. *)
let test_stats_sheaves_sum () =
  let jobs = 3 in
  let store, path = Workload.Generator.build (small_spec ~seed:43 ()) in
  let n = Gom.Path.length path in
  let sources = Gom.Store.extent ~deep:true store (Gom.Path.type_at path 0) in
  let server = Server.create ~jobs ~specs:(specs_for path) store in
  ignore (Server.forward_batch server path ~i:0 ~j:n sources);
  let par = Server.stats server in
  Server.shutdown server;
  (* Sequential replay: same contiguous ceil-split chunking (part of the
     server's documented contract), one private sheaf per chunk, fresh
     snapshot so the plan cache starts equally cold. *)
  let snap = Snapshot.capture ~specs:(specs_for path) store in
  let probes = List.sort_uniq Gom.Oid.compare sources in
  let len = List.length probes in
  let k = max 1 (min jobs len) in
  let size = (len + k - 1) / k in
  let rec split acc xs =
    if xs = [] then List.rev acc
    else begin
      let c = List.filteri (fun i _ -> i < size) xs in
      let rest = List.filteri (fun i _ -> i >= size) xs in
      split (c :: acc) rest
    end
  in
  let seq =
    List.fold_left
      (fun acc chunk ->
        let env = Snapshot.env snap in
        ignore (Engine.forward_batch ~env (Snapshot.engine snap) path ~i:0 ~j:n chunk);
        Storage.Stats.merge acc (Storage.Stats.snapshot env.E.stats))
      Storage.Stats.zero (split [] probes)
  in
  check_int "reads: parallel merge = sequential sum" seq.Storage.Stats.s_total_reads
    par.Storage.Stats.s_total_reads;
  check_int "writes: parallel merge = sequential sum" seq.s_total_writes par.s_total_writes;
  check_int "fallbacks: parallel merge = sequential sum" seq.s_fallbacks par.s_fallbacks

let suite =
  [
    Alcotest.test_case "Store.copy isolates the two stores" `Quick test_copy_isolates;
    Alcotest.test_case "Store.copy answers agree with original" `Quick
      test_copy_answers_agree;
    Alcotest.test_case "pool preserves input order" `Quick test_pool_order;
    Alcotest.test_case "pool re-raises first failure" `Quick test_pool_exceptions;
    Alcotest.test_case "pool isolates concurrent batches" `Quick
      test_pool_concurrent_batches;
    Qc.to_alcotest prop_merge_deterministic;
    Alcotest.test_case "serve keeps request order across jobs" `Quick test_serve_order;
    Qc.to_alcotest prop_snapshot_isolation;
    Qc.to_alcotest prop_advance_equals_capture;
    Alcotest.test_case "update republishes exactly on mutation" `Quick
      test_update_republishes;
    Alcotest.test_case "plan cache survives 4-domain churn" `Slow test_plan_cache_stress;
    Alcotest.test_case "stats merge algebra" `Quick test_stats_algebra;
    Alcotest.test_case "parallel sheaves = sequential sum" `Quick test_stats_sheaves_sum;
  ]
