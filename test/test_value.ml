(* Unit tests for Gom.Oid and Gom.Value. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

module V = Gom.Value

let test_oid_fresh () =
  let g = Gom.Oid.make_gen () in
  let a = Gom.Oid.fresh g and b = Gom.Oid.fresh g in
  check "fresh oids differ" true (not (Gom.Oid.equal a b));
  check_int "fresh oids increase" 1 (Gom.Oid.compare b a)

let test_oid_roundtrip () =
  let o = Gom.Oid.of_int 42 in
  check_int "to_int/of_int" 42 (Gom.Oid.to_int o);
  check_str "pp" "i42" (Format.asprintf "%a" Gom.Oid.pp o)

let test_null () =
  check "null is null" true (V.is_null V.Null);
  check "ref not null" false (V.is_null (V.Ref (Gom.Oid.of_int 0)));
  check "int not null" false (V.is_null (V.Int 0))

let test_compare_same_constructor () =
  check "int order" true (V.compare (V.Int 1) (V.Int 2) < 0);
  check "str order" true (V.compare (V.Str "a") (V.Str "b") < 0);
  check "dec order" true (V.compare (V.Dec 0.5) (V.Dec 1.5) < 0);
  check "ref order" true
    (V.compare (V.Ref (Gom.Oid.of_int 1)) (V.Ref (Gom.Oid.of_int 2)) < 0);
  check_int "equal ints" 0 (V.compare (V.Int 7) (V.Int 7))

let test_compare_across_constructors () =
  check "null sorts first vs ref" true (V.compare V.Null (V.Ref (Gom.Oid.of_int 0)) < 0);
  check "null sorts first vs str" true (V.compare V.Null (V.Str "") < 0);
  check "total order is antisymmetric" true
    (V.compare (V.Int 1) (V.Str "x") = -V.compare (V.Str "x") (V.Int 1))

let test_oid_extraction () =
  let o = Gom.Oid.of_int 5 in
  check "oid of ref" true (V.oid (V.Ref o) = Some o);
  check "oid of int" true (V.oid (V.Int 5) = None);
  check "oid_exn raises" true
    (try
       ignore (V.oid_exn (V.Str "x"));
       false
     with Invalid_argument _ -> true)

let test_pp () =
  check_str "pp null" "NULL" (V.to_string V.Null);
  check_str "pp ref" "i3" (V.to_string (V.Ref (Gom.Oid.of_int 3)));
  check_str "pp str" "\"hi\"" (V.to_string (V.Str "hi"));
  check_str "pp bool" "true" (V.to_string (V.Bool true))

let compare_total =
  QCheck.Test.make ~name:"Value.compare is a total order (transitivity sample)"
    ~count:500
    QCheck.(triple small_int small_int small_int)
    (fun (a, b, c) ->
      let vs = [| V.Int a; V.Str (string_of_int b); V.Dec (float_of_int c); V.Null |] in
      let x = vs.(a mod 4) and y = vs.(b mod 4) and z = vs.(c mod 4) in
      (* transitivity: x<=y && y<=z => x<=z *)
      if V.compare x y <= 0 && V.compare y z <= 0 then V.compare x z <= 0 else true)

let suite =
  [
    Alcotest.test_case "oid fresh" `Quick test_oid_fresh;
    Alcotest.test_case "oid roundtrip" `Quick test_oid_roundtrip;
    Alcotest.test_case "null" `Quick test_null;
    Alcotest.test_case "compare same constructor" `Quick test_compare_same_constructor;
    Alcotest.test_case "compare across constructors" `Quick test_compare_across_constructors;
    Alcotest.test_case "oid extraction" `Quick test_oid_extraction;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    Qc.to_alcotest compare_total;
  ]
