(* Overload-resilience harness: cooperative deadlines (exactness and the
   expiry-at-every-checkpoint sweep), pool exception isolation, the
   token bucket, the circuit breaker's trip/half-open/backoff protocol,
   and the admission front's shed policies, rate limiting, accounting
   identity and brownout mode — everything driven by simulated clocks
   and manual pumping, so each decision replays deterministically. *)

module E = Core.Exec
module D = Core.Decomposition
module V = Gom.Value
module Deadline = Core.Deadline
module Pool = Parallel.Pool
module Snapshot = Parallel.Snapshot
module Server = Parallel.Server
module Token_bucket = Resilience.Token_bucket
module Breaker = Resilience.Breaker
module Front = Resilience.Front

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let specs_for ?(kind = Core.Extension.Full) path =
  let m = Gom.Path.arity path - 1 in
  [ { Snapshot.sp_path = path; sp_kind = kind; sp_decomposition = D.binary ~m } ]

let small_spec ?(seed = 7) () =
  Workload.Generator.spec ~seed ~counts:[ 4; 5; 6 ] ~defined:[ 4; 4 ] ~fan:[ 2; 1 ] ()

let spec_gen =
  QCheck.Gen.(
    let* nn = int_range 1 3 in
    let* counts = list_repeat (nn + 1) (int_range 1 6) in
    let* defined =
      flatten_l
        (List.map (fun c -> int_range 0 c) (List.filteri (fun i _ -> i < nn) counts))
    in
    let* fan = list_repeat nn (int_range 1 3) in
    let* sv = flatten_l (List.map (fun f -> if f > 1 then return true else bool) fan) in
    let* seed = int_range 0 10000 in
    return (Workload.Generator.spec ~seed ~set_valued:sv ~counts ~defined ~fan ()))

(* A forward query over the whole path, from every anchor object. *)
let whole_path_query store path =
  let n = Gom.Path.length path in
  Server.Forward
    {
      q_path = path;
      q_i = 0;
      q_j = n;
      q_sources = Gom.Store.extent ~deep:true store (Gom.Path.type_at path 0);
    }

(* ---------------- deadlines ---------------- *)

let test_deadline_basics () =
  let d = Deadline.none () in
  Deadline.check d;
  Deadline.check d;
  check_int "none counts checkpoints" 2 (Deadline.checkpoints d);
  check "none never expires" false (Deadline.expired d);
  let d = Deadline.at_checkpoint 3 in
  Deadline.check d;
  Deadline.check d;
  let fired = try Deadline.check d; false with Deadline.Expired -> true in
  check "at_checkpoint fires on the n-th check" true fired;
  check "expired after firing" true (Deadline.expired d);
  let now = ref 0.0 in
  let clock () = !now in
  let d = Deadline.after ~clock 5.0 in
  Deadline.check d;
  check "timed budget live before expiry" false (Deadline.expired d);
  now := 5.0;
  let fired = try Deadline.check d; false with Deadline.Expired -> true in
  check "timed budget fires at expiry" true fired;
  check "remaining is non-positive" true (Deadline.remaining_s d <= 0.);
  check "expires_at exposed" true (Deadline.expires_at d = Some 5.0);
  check "invalid checkpoint count rejected" true
    (try ignore (Deadline.at_checkpoint 0); false with Invalid_argument _ -> true)

(* Admitted => exact, never partial: under any deadline, a query either
   raises Expired or returns the byte-identical undeadlined answer.  The
   sweep expires the budget at every single checkpoint (mirroring the
   crash-at-every-write durability harness): each k in 1..N must raise,
   and N+1 must complete identically. *)
let prop_deadline_exact_or_expired =
  QCheck.Test.make ~name:"deadlined answers are exact, at every expiry point" ~count:15
    QCheck.(make ~print:(fun _ -> "<spec>") spec_gen)
    (fun spec ->
      let store, path = Workload.Generator.build spec in
      let n = Gom.Path.length path in
      let snap = Snapshot.capture ~specs:(specs_for path) store in
      let engine = Snapshot.engine snap in
      let sources = Gom.Store.extent ~deep:true store (Gom.Path.type_at path 0) in
      let targets =
        Gom.Store_view.extent ~deep:true (Snapshot.store snap) (Gom.Path.type_at path n)
        |> List.map (fun o -> V.Ref o)
      in
      let run env =
        ( Engine.forward_batch ~env engine path ~i:0 ~j:n sources,
          Engine.backward_batch ~env engine path ~i:0 ~j:n ~targets )
      in
      (* Warm plans and profiles so checkpoint counts are stable. *)
      ignore (run (Snapshot.env snap));
      let probe = Deadline.probe () in
      let reference = run (Snapshot.env ~deadline:probe snap) in
      let checkpoints = Deadline.checkpoints probe in
      let all_expire =
        List.for_all
          (fun k ->
            match run (Snapshot.env ~deadline:(Deadline.at_checkpoint k) snap) with
            | _ -> false (* finished under a budget the probe exhausted *)
            | exception Deadline.Expired -> true)
          (List.init checkpoints (fun k -> k + 1))
      in
      let complete_beyond =
        run (Snapshot.env ~deadline:(Deadline.at_checkpoint (checkpoints + 1)) snap)
        = reference
      in
      all_expire && complete_beyond)

(* Server-level: serve_deadlined with roomy budgets = serve, and an
   at-first-checkpoint budget yields a typed Timed_out (never partial),
   counted in the merged accounting. *)
let test_serve_deadlined_exact_and_timeout () =
  let store, path = Workload.Generator.build (small_spec ~seed:11 ()) in
  let server = Server.create ~jobs:2 ~specs:(specs_for path) store in
  let n = Gom.Path.length path in
  let queries =
    [
      whole_path_query store path;
      Server.Backward
        {
          q_path = path;
          q_i = 0;
          q_j = n;
          q_targets =
            Gom.Store.extent ~deep:true store (Gom.Path.type_at path n)
            |> List.map (fun o -> V.Ref o);
        };
    ]
  in
  let plain = Server.serve server queries in
  let roomy =
    Server.serve_deadlined server
      (List.map (fun q -> (q, Deadline.none ())) queries)
  in
  check "roomy budgets reproduce serve byte-for-byte" true
    (roomy = List.map (fun a -> Server.Answered a) plain);
  let strangled =
    Server.serve_deadlined server
      (List.map (fun q -> (q, Deadline.at_checkpoint 1)) queries)
  in
  check "first-checkpoint budgets all time out" true
    (List.for_all (fun s -> s = Server.Timed_out) strangled);
  check_int "timeouts visible in merged accounting" 2
    (Server.stats server).Storage.Stats.s_timed_out;
  Server.shutdown server

(* ---------------- pool exception isolation ---------------- *)

exception Probe_bomb

let test_pool_typed_chunk_errors () =
  let pool = Pool.create ~jobs:3 in
  let out =
    Pool.run_all_results pool
      [ (fun () -> 1); (fun () -> raise Probe_bomb); (fun () -> 3) ]
  in
  check "raising task fails alone, typed" true
    (match out with [ Ok 1; Error Probe_bomb; Ok 3 ] -> true | _ -> false);
  (* The pool survives: workers alive, later batches clean. *)
  check "pool fully usable afterwards" true
    (Pool.run_all pool (List.init 10 (fun i () -> i)) = List.init 10 Fun.id);
  Pool.shutdown pool

let test_raising_probe_fails_alone () =
  let store, path = Workload.Generator.build (small_spec ~seed:13 ()) in
  let server = Server.create ~jobs:2 ~specs:(specs_for path) store in
  let good = whole_path_query store path in
  (* An out-of-range probe raises inside the engine: it must fail typed,
     alone, leaving its neighbours answered and the pool alive. *)
  let bad =
    Server.Forward { q_path = path; q_i = 0; q_j = 99; q_sources = [] }
  in
  let out =
    Server.serve_deadlined server
      (List.map (fun q -> (q, Deadline.none ())) [ good; bad; good ])
  in
  (match out with
  | [ Server.Answered a1; Server.Failed msg; Server.Answered a2 ] ->
    check "neighbours agree" true (a1 = a2);
    check "failure carries a message" true (String.length msg > 0)
  | _ -> Alcotest.fail "expected [Answered; Failed; Answered]");
  (* Server still serves after the poisoned batch. *)
  check "server alive after poisoned batch" true
    (match Server.serve_deadlined server [ (good, Deadline.none ()) ] with
    | [ Server.Answered _ ] -> true
    | _ -> false);
  Server.shutdown server

(* ---------------- token bucket ---------------- *)

let test_token_bucket () =
  let b = Token_bucket.create ~rate:1.0 ~burst:2.0 ~now:0.0 in
  check "burst admits" true (Token_bucket.take b ~now:0.0);
  check "burst admits twice" true (Token_bucket.take b ~now:0.0);
  check "empty bucket sheds" false (Token_bucket.take b ~now:0.0);
  check "refills with time" true (Token_bucket.take b ~now:1.0);
  check "but only what elapsed" false (Token_bucket.take b ~now:1.0);
  check "refill caps at burst" true
    (Token_bucket.level b ~now:100.0 = 2.0);
  check "invalid rate rejected" true
    (try ignore (Token_bucket.create ~rate:0.0 ~burst:1.0 ~now:0.0); false
     with Invalid_argument _ -> true)

(* ---------------- circuit breaker ---------------- *)

let transient = Durability.Fault.Retryable "injected"

let test_breaker_protocol () =
  let now = ref 0.0 in
  let clock () = !now in
  let config =
    { Breaker.trip_after = 2; base_backoff_s = 1.0; max_backoff_s = 8.0; jitter = 0.0 }
  in
  let b = Breaker.create ~config ~clock () in
  let stats = Storage.Stats.create () in
  let boom () = raise transient in
  check "starts closed" true (Breaker.state b = Breaker.Closed);
  check "first failure recorded" true (Breaker.call b boom = Error (`Failed transient));
  check "still closed below trip_after" true (Breaker.state b = Breaker.Closed);
  check "second failure trips" true (Breaker.call b boom = Error (`Failed transient));
  check "open after k failures" true (Breaker.state b = Breaker.Open);
  check_int "one trip" 1 (Breaker.trips b);
  check "open short-circuits" true (Breaker.call ~stats b (fun () -> 1) = Error `Open);
  check_int "breaker_open counted" 1 (Storage.Stats.breaker_open stats);
  now := 1.0;
  check "backoff elapsed -> half-open" true (Breaker.state b = Breaker.Half_open);
  check "failed probe re-opens" true (Breaker.call b boom = Error (`Failed transient));
  check "re-opened" true (Breaker.state b = Breaker.Open);
  (* Backoff doubled to 2 s: due at t = 3. *)
  now := 2.5;
  check "still open inside doubled backoff" true
    (Breaker.call ~stats b (fun () -> 1) = Error `Open);
  now := 3.1;
  check "successful probe closes" true (Breaker.call b (fun () -> 42) = Ok 42);
  check "closed again" true (Breaker.state b = Breaker.Closed);
  check_int "two trips total" 2 (Breaker.trips b);
  (* Non-breaker-class exceptions propagate untouched. *)
  check "foreign exception propagates" true
    (try ignore (Breaker.call b (fun () -> raise Not_found)); false
     with Not_found -> true);
  check "and leaves the circuit closed" true (Breaker.state b = Breaker.Closed)

let test_breaker_jitter_deterministic () =
  let now = ref 0.0 in
  let clock () = !now in
  let config =
    { Breaker.trip_after = 1; base_backoff_s = 1.0; max_backoff_s = 8.0; jitter = 0.5 }
  in
  let boom () = raise transient in
  let schedule seed =
    let b = Breaker.create ~config ~seed ~clock () in
    ignore (Breaker.call b boom);
    (* Find when the circuit re-admits: scan simulated time. *)
    let t = ref 0.0 in
    while Breaker.state b <> Breaker.Half_open && !t < 3.0 do
      t := !t +. 0.01;
      now := !t
    done;
    now := 0.0;
    !t
  in
  let a = schedule 42 and b = schedule 42 and c = schedule 43 in
  check "same seed, same jittered backoff" true (a = b);
  check "jitter bounded by +/- 50%" true (a >= 0.5 && a <= 1.51 && c >= 0.5 && c <= 1.51)

(* ---------------- admission front: shed policies ---------------- *)

let front_fixture ?(jobs = 1) ?(seed = 17) config =
  let store, path = Workload.Generator.build (small_spec ~seed ()) in
  let server = Server.create ~jobs ~specs:(specs_for path) store in
  let now = ref 0.0 in
  let clock () = !now in
  let front = Front.create ~config ~clock server in
  (store, path, server, front, now)

let base_config =
  {
    Front.max_queue = 2;
    high_watermark = 2;
    low_watermark = 0;
    shed_policy = Front.Reject_newest;
    deadline_s = None;
    rate_limit = None;
    batch = 8;
  }

let is_answer = function Front.Answer _ -> true | _ -> false

let test_policy_reject_newest () =
  let store, path, server, front, _ = front_fixture base_config in
  let q = whole_path_query store path in
  let t1 = Front.submit front q in
  let t2 = Front.submit front q in
  let t3 = Front.submit front q in
  check "newest shed immediately" true
    (Front.outcome t3 = Some (Front.Shed Front.Queue_full));
  ignore (Front.pump front);
  check "survivors answered" true
    (is_answer (Front.await front t1) && is_answer (Front.await front t2));
  let c = Front.counters front in
  check "accounting balances" true
    (c.Front.offered = 3 && c.answered = 2 && c.shed = 1 && c.timed_out = 0
   && c.failed = 0);
  check_int "shed visible in merged stats" 1 (Front.stats front).Storage.Stats.s_shed;
  Front.shutdown front;
  Server.shutdown server

let test_policy_reject_oldest () =
  let store, path, server, front, _ =
    front_fixture { base_config with shed_policy = Front.Reject_oldest }
  in
  let q = whole_path_query store path in
  let t1 = Front.submit front q in
  let t2 = Front.submit front q in
  let t3 = Front.submit front q in
  check "oldest shed on overflow" true
    (Front.outcome t1 = Some (Front.Shed Front.Queue_full));
  Front.shutdown front;
  check "younger entries answered" true
    (is_answer (Front.await front t2) && is_answer (Front.await front t3));
  Server.shutdown server

let test_policy_deadline_aware () =
  let store, path, server, front, _ =
    front_fixture { base_config with shed_policy = Front.Deadline_aware }
  in
  let q = whole_path_query store path in
  let a = Front.submit ~deadline_s:5.0 front q in
  let b = Front.submit ~deadline_s:1.0 front q in
  (* Overflow: the queued 1 s budget is the tightest — it is evicted,
     not the (roomier) incoming query. *)
  let c = Front.submit ~deadline_s:3.0 front q in
  check "tightest-budget entry evicted" true
    (Front.outcome b = Some (Front.Shed Front.Queue_full));
  check "incoming admitted" true (Front.outcome c = None);
  (* Overflow again with the tightest budget incoming: it sheds itself. *)
  let d = Front.submit ~deadline_s:0.5 front q in
  check "tightest incoming sheds itself" true
    (Front.outcome d = Some (Front.Shed Front.Queue_full));
  Front.shutdown front;
  check "roomy budgets answered" true
    (is_answer (Front.await front a) && is_answer (Front.await front c));
  Server.shutdown server

let test_queue_expiry_is_timeout () =
  let store, path, server, front, now =
    front_fixture { base_config with max_queue = 8; high_watermark = 8 }
  in
  let q = whole_path_query store path in
  let t1 = Front.submit ~deadline_s:1.0 front q in
  let t2 = Front.submit front q in
  now := 2.0;
  ignore (Front.pump front);
  check "expired-in-queue resolves Timeout" true (Front.await front t1 = Front.Timeout);
  check "unexpired neighbour answered" true (is_answer (Front.await front t2));
  let c = Front.counters front in
  check "timeout counted once" true (c.Front.timed_out = 1 && c.answered = 1);
  check_int "timed_out in merged stats" 1
    (Front.stats front).Storage.Stats.s_timed_out;
  Front.shutdown front;
  Server.shutdown server

let test_rate_limit_per_client () =
  let store, path, server, front, now =
    front_fixture
      {
        base_config with
        max_queue = 16;
        high_watermark = 16;
        rate_limit = Some (1.0, 2.0);
      }
  in
  let q = whole_path_query store path in
  let t1 = Front.submit ~client:"alice" front q in
  let t2 = Front.submit ~client:"alice" front q in
  let t3 = Front.submit ~client:"alice" front q in
  let t4 = Front.submit ~client:"bob" front q in
  check "within burst admitted" true
    (Front.outcome t1 = None && Front.outcome t2 = None);
  check "burst exhausted sheds" true
    (Front.outcome t3 = Some (Front.Shed Front.Rate_limited));
  check "other clients unaffected" true (Front.outcome t4 = None);
  now := 1.0;
  let t5 = Front.submit ~client:"alice" front q in
  check "tokens refill with time" true (Front.outcome t5 = None);
  Front.shutdown front;
  check "admitted all answered" true
    (List.for_all
       (fun t -> is_answer (Front.await front t))
       [ t1; t2; t4; t5 ]);
  Server.shutdown server

(* Random interleaving of submits, pumps and clock advances: the
   accounting identity offered = answered + shed + timed_out + failed
   must hold exactly once every ticket resolved, with failed = 0, and
   the front's merged stats must agree with the counters. *)
let prop_accounting_identity =
  QCheck.Test.make ~name:"offered = answered + shed + timed_out, exactly" ~count:20
    QCheck.(
      pair (int_bound 2)
        (list_of_size Gen.(int_range 1 25) (pair (int_bound 3) (int_bound 4))))
    (fun (policy_idx, ops) ->
      let policy =
        List.nth [ Front.Reject_newest; Front.Reject_oldest; Front.Deadline_aware ]
          policy_idx
      in
      let store, path, server, front, now =
        front_fixture
          {
            Front.max_queue = 3;
            high_watermark = 3;
            low_watermark = 1;
            shed_policy = policy;
            deadline_s = Some 10.0;
            rate_limit = Some (2.0, 3.0);
            batch = 2;
          }
      in
      let q = whole_path_query store path in
      let tickets = ref [] in
      List.iter
        (fun (op, arg) ->
          match op with
          | 0 | 3 ->
            let deadline_s = float_of_int (1 + arg) in
            tickets := Front.submit ~deadline_s front q :: !tickets
          | 1 -> ignore (Front.pump front)
          | _ -> now := !now +. (0.6 *. float_of_int arg))
        ops;
      Front.shutdown front;
      let resolved = List.for_all (fun t -> Front.outcome t <> None) !tickets in
      let c = Front.counters front in
      let s = Front.stats front in
      Server.shutdown server;
      resolved
      && c.Front.offered = List.length !tickets
      && c.Front.offered = c.answered + c.shed + c.timed_out + c.failed
      && c.failed = 0
      && s.Storage.Stats.s_shed = c.shed
      && s.Storage.Stats.s_timed_out = c.timed_out)

(* ---------------- brownout ---------------- *)

let test_brownout_defers_publication () =
  let store, path, server, front, _ =
    front_fixture
      {
        Front.max_queue = 8;
        high_watermark = 3;
        low_watermark = 1;
        shed_policy = Front.Reject_newest;
        deadline_s = None;
        rate_limit = None;
        batch = 2;
      }
  in
  let q = whole_path_query store path in
  let tickets = List.init 4 (fun _ -> Front.submit front q) in
  check "high watermark enters brownout" true (Front.in_brownout front);
  (* A write during brownout commits but does not publish. *)
  let t0 = Gom.Path.type_at path 0 in
  let epoch_before = Server.epoch server in
  let o = Front.update front (fun st -> Gom.Store.new_object st t0) in
  check "write committed to live base" true
    (Gom.Store_view.mem (Snapshot.store (Server.pin server)) o = false
    && Server.lag server > 0);
  check "published epoch unmoved" true (Server.epoch server = epoch_before);
  (* First round serves from the stale epoch; the queue is still above
     the low watermark, so brownout persists. *)
  ignore (Front.pump front);
  check "still browned out above low watermark" true (Front.in_brownout front);
  (* Second round drains to the low watermark: brownout ends and the
     snapshot is caught up through the breaker. *)
  ignore (Front.pump front);
  check "drained queue leaves brownout" false (Front.in_brownout front);
  check_int "snapshot caught up" 0 (Server.lag server);
  check "new epoch sees the deferred write" true
    (Gom.Store_view.mem (Snapshot.store (Server.pin server)) o);
  let s = Front.stats front in
  check "stale serving surfaced in stats" true
    (s.Storage.Stats.s_stale_epoch_served >= 2);
  List.iter (fun t -> check "all answered" true (is_answer (Front.await front t))) tickets;
  Front.shutdown front;
  Server.shutdown server

(* An open breaker must keep the front serving (stale) instead of
   letting the refresh path get hammered or the dispatcher die. *)
let test_brownout_breaker_open_keeps_serving () =
  let store, path = Workload.Generator.build (small_spec ~seed:29 ()) in
  let server = Server.create ~jobs:1 ~specs:(specs_for path) store in
  let now = ref 0.0 in
  let clock () = !now in
  (* A breaker already tripped far into the future: every refresh is
     short-circuited. *)
  let breaker =
    Breaker.create
      ~config:
        { Breaker.trip_after = 1; base_backoff_s = 1e6; max_backoff_s = 1e6; jitter = 0.0 }
      ~failure:(fun _ -> true)
      ~clock ()
  in
  (match Breaker.call breaker (fun () -> raise transient) with
  | Error (`Failed _) -> ()
  | _ -> Alcotest.fail "expected the priming failure");
  let front =
    Front.create
      ~config:
        {
          Front.max_queue = 8;
          high_watermark = 2;
          low_watermark = 0;
          shed_policy = Front.Reject_newest;
          deadline_s = None;
          rate_limit = None;
          batch = 8;
        }
      ~clock ~breaker server
  in
  let q = whole_path_query store path in
  let t1 = Front.submit front q in
  let t2 = Front.submit front q in
  let t0 = Gom.Path.type_at path 0 in
  ignore (Front.update front (fun st -> Gom.Store.new_object st t0));
  check "publication deferred" true (Server.lag server > 0);
  ignore (Front.pump front);
  check "stale answers still served under open breaker" true
    (is_answer (Front.await front t1) && is_answer (Front.await front t2));
  check "refresh was short-circuited, lag persists" true (Server.lag server > 0);
  check "breaker_open counted" true
    ((Front.stats front).Storage.Stats.s_breaker_open >= 1);
  Front.shutdown front;
  Server.shutdown server

(* ---------------- spawned dispatcher ---------------- *)

let test_spawned_dispatcher_smoke () =
  let store, path = Workload.Generator.build (small_spec ~seed:37 ()) in
  let server = Server.create ~jobs:2 ~specs:(specs_for path) store in
  let front =
    Front.create
      ~config:
        {
          Front.max_queue = 64;
          high_watermark = 48;
          low_watermark = 16;
          shed_policy = Front.Deadline_aware;
          deadline_s = Some 30.0;
          rate_limit = None;
          batch = 4;
        }
      ~spawn:true server
  in
  let q = whole_path_query store path in
  let clients =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            List.init 15 (fun _ -> Front.await front (Front.submit front q))))
  in
  let outcomes = List.concat_map Domain.join clients in
  check "closed-loop clients all answered" true (List.for_all is_answer outcomes);
  let c = Front.counters front in
  check "spawned-mode accounting balances" true
    (c.Front.offered = 30 && c.answered + c.shed + c.timed_out + c.failed = 30);
  (* Shutdown joining cleanly is the no-wedged-domain check. *)
  Front.shutdown front;
  Server.shutdown server

(* ---------------- stats plumbing ---------------- *)

let test_overload_stats_algebra () =
  let t = Storage.Stats.create () in
  Storage.Stats.note_shed t;
  Storage.Stats.note_shed t;
  Storage.Stats.note_timed_out t;
  Storage.Stats.note_breaker_open t;
  Storage.Stats.note_stale_epoch_served t;
  let s = Storage.Stats.snapshot t in
  check_int "shed snapshot" 2 s.Storage.Stats.s_shed;
  check_int "timed_out snapshot" 1 s.s_timed_out;
  let m = Storage.Stats.merge s s in
  check "merge sums overload counters" true
    (m.Storage.Stats.s_shed = 4 && m.s_timed_out = 2 && m.s_breaker_open = 2
   && m.s_stale_epoch_served = 2);
  check "zero is unit on overload counters" true
    (Storage.Stats.merge Storage.Stats.zero s = s);
  let acc = Storage.Stats.create () in
  Storage.Stats.absorb acc m;
  check_int "absorb folds shed" 4 (Storage.Stats.shed acc);
  let json = Storage.Stats.summary_to_json s in
  List.iter
    (fun key -> check (key ^ " in JSON") true (contains ~needle:("\"" ^ key ^ "\"") json))
    [ "shed"; "timed_out"; "breaker_open"; "stale_epoch_served" ];
  Storage.Stats.reset t;
  check_int "reset clears overload counters" 0 (Storage.Stats.shed t)

(* ---------------- scrub deadline ---------------- *)

let test_scrub_deadline () =
  let store, path = Workload.Generator.build (small_spec ~seed:41 ()) in
  let m = Gom.Path.arity path - 1 in
  let index = Core.Asr.create store path Core.Extension.Full (D.binary ~m) in
  let report = Integrity.Scrub.run ~deadline:(Deadline.none ()) index in
  check "undeadlined scrub is clean" true (Integrity.Scrub.clean report);
  check "budgeted scrub expires between partition audits" true
    (try
       ignore (Integrity.Scrub.run ~deadline:(Deadline.at_checkpoint 1) index);
       false
     with Deadline.Expired -> true)

let suite =
  [
    Alcotest.test_case "deadline basics" `Quick test_deadline_basics;
    Qc.to_alcotest prop_deadline_exact_or_expired;
    Alcotest.test_case "serve_deadlined: exact or typed timeout" `Quick
      test_serve_deadlined_exact_and_timeout;
    Alcotest.test_case "pool: typed per-chunk errors" `Quick test_pool_typed_chunk_errors;
    Alcotest.test_case "raising probe fails alone" `Quick test_raising_probe_fails_alone;
    Alcotest.test_case "token bucket" `Quick test_token_bucket;
    Alcotest.test_case "breaker trip/half-open/backoff protocol" `Quick
      test_breaker_protocol;
    Alcotest.test_case "breaker jitter is seeded-deterministic" `Quick
      test_breaker_jitter_deterministic;
    Alcotest.test_case "shed policy: reject newest" `Quick test_policy_reject_newest;
    Alcotest.test_case "shed policy: reject oldest" `Quick test_policy_reject_oldest;
    Alcotest.test_case "shed policy: deadline aware" `Quick test_policy_deadline_aware;
    Alcotest.test_case "queue expiry resolves Timeout" `Quick test_queue_expiry_is_timeout;
    Alcotest.test_case "per-client rate limiting" `Quick test_rate_limit_per_client;
    Qc.to_alcotest prop_accounting_identity;
    Alcotest.test_case "brownout defers publication, then catches up" `Quick
      test_brownout_defers_publication;
    Alcotest.test_case "open breaker keeps serving stale" `Quick
      test_brownout_breaker_open_keeps_serving;
    Alcotest.test_case "spawned dispatcher closed-loop smoke" `Quick
      test_spawned_dispatcher_smoke;
    Alcotest.test_case "overload counters: merge/json/absorb/reset" `Quick
      test_overload_stats_algebra;
    Alcotest.test_case "scrub yields at deadline checkpoints" `Quick test_scrub_deadline;
  ]
