(* Tests for the integrity subsystem: the scrubber's typed divergence
   reports, quarantine-driven degraded planning, incremental background
   repair under live mutations, read-side fault injection with bounded
   retry, and a crash-point sweep across the scrub -> quarantine ->
   rebuild cycle.

   The acceptance property mirrors the engine suite's oracle check: for
   random schemas, decompositions, extensions and injected corruptions,
   every query over a quarantined index must equal the forced scan
   oracle (degradation, never wrong answers), and after a repair the
   scrub is clean and the planner routes through the index again. *)

module E = Core.Exec
module D = Core.Decomposition
module V = Gom.Value
module C = Workload.Schemas.Company
module Db = Durability.Db
module Fault = Durability.Fault
module Scrub = Integrity.Scrub
module Quarantine = Integrity.Quarantine
module Repair = Integrity.Repair

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let env_of store =
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
  E.make store heap

let all_ranges n =
  List.concat_map
    (fun i ->
      List.filter_map (fun j -> if i < j then Some (i, j) else None)
        (List.init (n + 1) Fun.id))
    (List.init n Fun.id)

let vset vs = List.sort_uniq V.compare vs
let oset os = List.sort_uniq Gom.Oid.compare os

(* A profile whose fan-out makes navigation explode multiplicatively:
   over a coarse decomposition the planner must stitch through the
   index whenever it is healthy. *)
let pin_expensive_nav engine path =
  let n = Gom.Path.length path in
  Engine.set_profile engine path
    (Costmodel.Profile.make
       ~c:(List.init (n + 1) (fun _ -> 10_000.))
       ~d:(List.init n (fun _ -> 10_000.))
       ~fan:(List.init n (fun _ -> 8.))
       ())

let contains s sub =
  let n = String.length sub and len = String.length s in
  let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
  go 0

let rec uses_stitch = function
  | Engine.Plan.Stitch _ -> true
  | Engine.Plan.Union ps -> List.exists uses_stitch ps
  | Engine.Plan.Distinct p -> uses_stitch p
  | Engine.Plan.Nav _ | Engine.Plan.Extent_scan _ -> false

(* Engine answers must equal the forced scan oracle over every range,
   both directions. *)
let agrees_oracle engine env path =
  let n = Gom.Path.length path in
  let store = E.live_store_exn env in
  List.for_all
    (fun (i, j) ->
      let sources = Gom.Store.extent ~deep:true store (Gom.Path.type_at path i) in
      let targets =
        Gom.Store.extent ~deep:true store (Gom.Path.type_at path j)
        |> List.map (fun o -> V.Ref o)
      in
      List.for_all
        (fun src ->
          vset (Engine.forward engine path ~i ~j src)
          = vset (E.forward_scan env path ~i ~j src))
        sources
      && List.for_all
           (fun target ->
             oset (Engine.backward engine path ~i ~j ~target)
             = oset (E.backward_scan env path ~i ~j ~target))
           targets)
    (all_ranges n)

(* A small company base with one canonical ASR under binary
   decomposition — every partition exclusively owned, no NULLs in the
   extension, so phantom and null-marker classification are exact. *)
let company_asr kind =
  let b = C.base () in
  let store = b.C.store in
  let path = C.name_path store in
  let m = Gom.Path.arity path - 1 in
  let a = Core.Asr.create store path kind (D.binary ~m) in
  (store, path, a)

(* The same base with the relation kept in one partition: the whole
   range (0, n) is a single key lookup, so with {!pin_expensive_nav}
   the healthy planner provably prefers the stitch — the right fixture
   for routing and plan-cache assertions. *)
let company_asr_single kind =
  let b = C.base () in
  let store = b.C.store in
  let path = C.name_path store in
  let m = Gom.Path.arity path - 1 in
  let a =
    Core.Asr.create store path kind (D.of_string ~m (Printf.sprintf "0,%d" m))
  in
  (store, path, a)

(* ---------------- scrub classification ---------------- *)

let scrub_clean_on_healthy () =
  let _, _, a = company_asr Core.Extension.Full in
  let r = Scrub.run a in
  check "healthy index scrubs clean" true (Scrub.clean r);
  check_int "no divergences" 0 (List.length r.Scrub.r_divergences);
  check "report prints" true (contains (Scrub.report_to_string r) "clean")

let scrub_detects_drop () =
  let _, _, a = company_asr Core.Extension.Full in
  let part = 0 in
  let victim = List.hd (Core.Asr.scan_partition a part) in
  Core.Asr.damage_partition a part [ Core.Asr.Drop victim ];
  let r = Scrub.run a in
  check "drop detected" true (not (Scrub.clean r));
  check "missing divergence in the damaged partition" true
    (List.exists
       (function
         | Scrub.Missing { part = p; proj; _ } ->
           p = part && Relation.Tuple.equal proj victim
         | _ -> false)
       r.Scrub.r_divergences);
  check "json mentions missing" true (contains (Scrub.report_to_json r) "missing")

let scrub_detects_phantom () =
  let _, _, a = company_asr Core.Extension.Full in
  let part = 1 in
  check "partition exclusively owned" true (not (Core.Asr.partition_shared a part));
  let width = Relation.Tuple.width (List.hd (Core.Asr.scan_partition a part)) in
  let ghost = Array.init width (fun c -> V.Ref (Gom.Oid.of_int (999990 + c))) in
  Core.Asr.damage_partition a part [ Core.Asr.Phantom ghost ];
  let r = Scrub.run a in
  check "phantom detected" true
    (List.exists
       (function
         | Scrub.Phantom { part = p; proj; _ } ->
           p = part && Relation.Tuple.equal proj ghost
         | _ -> false)
       r.Scrub.r_divergences)

let scrub_classifies_null_marker () =
  let _, _, a = company_asr Core.Extension.Canonical in
  let part = 0 in
  let victim = List.hd (Core.Asr.scan_partition a part) in
  (* The stored tuple records the wrong maximal partial path: the true
     projection lost its last column to NULL. *)
  let mismarked = Array.mapi (fun c v -> if c = Relation.Tuple.width victim - 1 then V.Null else v) victim in
  Core.Asr.damage_partition a part
    [ Core.Asr.Drop victim; Core.Asr.Phantom mismarked ];
  let r = Scrub.run a in
  check "classified as a wrong NULL marker" true
    (List.exists
       (function
         | Scrub.Null_marker { part = p; expected; actual; _ } ->
           p = part
           && Relation.Tuple.equal expected victim
           && Relation.Tuple.equal actual mismarked
         | _ -> false)
       r.Scrub.r_divergences)

let scrub_sampled_and_bad_args () =
  let _, _, a = company_asr Core.Extension.Full in
  let r1 = Scrub.run ~sample:1 a in
  check "1-in-1 sample of a healthy index is clean" true (Scrub.clean r1);
  check "sample recorded in the report" true (r1.Scrub.r_sample = Some 1);
  let part = 0 in
  let victim = List.hd (Core.Asr.scan_partition a part) in
  Core.Asr.damage_partition a part [ Core.Asr.Drop victim ];
  let r2 = Scrub.run ~sample:1 a in
  check "1-in-1 sample still sees the dropped tuple" true (not (Scrub.clean r2));
  check "sample:0 rejected" true
    (match Scrub.run ~sample:0 a with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------------- quarantine and degraded planning ---------------- *)

let quarantine_forces_replanning () =
  let store, path, a = company_asr_single Core.Extension.Full in
  let env = env_of store in
  let engine = Engine.create env in
  Engine.register engine a;
  pin_expensive_nav engine path;
  let registry = Quarantine.create () in
  Quarantine.attach registry engine;
  let n = Gom.Path.length path in
  let healthy_choice = Engine.choose engine path ~i:0 ~j:n ~dir:Engine.Plan.Fwd in
  check "healthy planner stitches through the index" true
    (uses_stitch healthy_choice.Engine.chosen);
  Quarantine.quarantine ~reason:"test" ~part:0 registry a;
  check "partition reported quarantined" true (Quarantine.is_quarantined registry a ~part:0);
  check "relation reported quarantined" true (Quarantine.asr_quarantined registry a);
  let degraded_choice = Engine.choose engine path ~i:0 ~j:n ~dir:Engine.Plan.Fwd in
  check "degraded planner avoids the quarantined index" true
    (not (uses_stitch degraded_choice.Engine.chosen));
  check "fallback counted" true (Storage.Stats.fallbacks env.E.stats > 0);
  Quarantine.lift registry a;
  check "lift clears every entry" true (not (Quarantine.asr_quarantined registry a));
  let restored_choice = Engine.choose engine path ~i:0 ~j:n ~dir:Engine.Plan.Fwd in
  check "planner routes through the index again" true
    (uses_stitch restored_choice.Engine.chosen)

let quarantined_damaged_index_still_answers () =
  let store, path, a = company_asr Core.Extension.Full in
  let env = env_of store in
  let engine = Engine.create env in
  Engine.register engine a;
  pin_expensive_nav engine path;
  let registry = Quarantine.create () in
  Quarantine.attach registry engine;
  (* Physically corrupt the index, then quarantine exactly what the
     scrub found: answers must stay oracle-equal throughout. *)
  let part = 0 in
  let victim = List.hd (Core.Asr.scan_partition a part) in
  Core.Asr.damage_partition a part [ Core.Asr.Drop victim ];
  let report = Scrub.run a in
  let parts = Quarantine.apply_report registry a report in
  check "scrub-driven quarantine hits the damaged partition" true (parts = [ part ]);
  check "degraded queries equal the oracle" true (agrees_oracle engine env path)

let cache_eviction_on_unregister () =
  let store, path, a = company_asr_single Core.Extension.Full in
  let env = env_of store in
  let engine = Engine.create env in
  Engine.register engine a;
  pin_expensive_nav engine path;
  let n = Gom.Path.length path in
  let choice = Engine.choose engine path ~i:0 ~j:n ~dir:Engine.Plan.Fwd in
  check "plan cached over the index" true (uses_stitch choice.Engine.chosen);
  let before = Engine.cache_info engine in
  check "entry present" true (before.Engine.entries > 0);
  Engine.unregister engine a;
  let after = Engine.cache_info engine in
  check "stale entries evicted eagerly" true (after.Engine.entries < before.Engine.entries);
  check "eviction counted as invalidation" true
    (after.Engine.invalidations > before.Engine.invalidations);
  (* The dropped index can never execute from a stale cached plan: the
     replanned query falls back and still equals the oracle. *)
  let choice' = Engine.choose engine path ~i:0 ~j:n ~dir:Engine.Plan.Fwd in
  check "replanned without the index" true (not (uses_stitch choice'.Engine.chosen));
  check "fallback answers equal the oracle" true (agrees_oracle engine env path)

let stale_cached_plan_never_executes () =
  let store, path, a = company_asr_single Core.Extension.Full in
  let env = env_of store in
  let engine = Engine.create env in
  Engine.register engine a;
  pin_expensive_nav engine path;
  let n = Gom.Path.length path in
  let stale = (Engine.choose engine path ~i:0 ~j:n ~dir:Engine.Plan.Fwd).Engine.chosen in
  check "captured plan stitches" true (uses_stitch stale);
  Engine.unregister engine a;
  (* Even a plan captured before the unregister is refused at the
     execution layer. *)
  let src = List.hd (Gom.Store.extent ~deep:true store (Gom.Path.type_at path 0)) in
  check "executing the stale plan is refused" true
    (match Engine.run_forward engine stale src with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------------- repair ---------------- *)

let repair_restores_and_lifts () =
  let store, path, a = company_asr_single Core.Extension.Full in
  let env = env_of store in
  let mgr = Core.Maintenance.create env in
  Core.Maintenance.register mgr a;
  let engine = Engine.create env in
  Engine.register engine a;
  pin_expensive_nav engine path;
  let registry = Quarantine.create () in
  Quarantine.attach registry engine;
  let part = 0 in
  let victim = List.hd (Core.Asr.scan_partition a part) in
  let ghost = Array.map (fun _ -> V.Ref (Gom.Oid.of_int 999999)) victim in
  Core.Asr.damage_partition a part [ Core.Asr.Drop victim; Core.Asr.Phantom ghost ];
  ignore (Quarantine.apply_report registry a (Scrub.run a));
  check "quarantined before repair" true (Quarantine.asr_quarantined registry a);
  let outcome = Repair.run ~slice:2 ~registry ~maintenance:mgr a in
  (match outcome with
  | Repair.Repaired { fixes; _ } -> check "some projections reconciled" true (fixes > 0)
  | Repair.Failed _ -> Alcotest.fail "repair failed on a repairable corruption");
  check "post-repair scrub is clean" true (Scrub.clean (Scrub.run a));
  check "quarantine lifted" true (not (Quarantine.asr_quarantined registry a));
  let n = Gom.Path.length path in
  check "planner routes through the index again" true
    (uses_stitch (Engine.choose engine path ~i:0 ~j:n ~dir:Engine.Plan.Fwd).Engine.chosen);
  check "repaired queries equal the oracle" true (agrees_oracle engine env path)

let repair_replays_live_mutations () =
  let b = C.base () in
  let store = b.C.store in
  let path = C.name_path store in
  let m = Gom.Path.arity path - 1 in
  let a = Core.Asr.create store path Core.Extension.Full (D.binary ~m) in
  let env = env_of store in
  let mgr = Core.Maintenance.create env in
  Core.Maintenance.register mgr a;
  let registry = Quarantine.create () in
  let part = 0 in
  let victim = List.hd (Core.Asr.scan_partition a part) in
  Core.Asr.damage_partition a part [ Core.Asr.Drop victim ];
  Quarantine.quarantine ~reason:"test" registry a;
  let job = Repair.start ~slice:1 ~registry ~maintenance:mgr a in
  (* Mutate the base mid-rebuild: ordinary maintenance is suspended for
     this relation, so the repair must buffer and replay the event. *)
  Gom.Store.set_attr store b.C.pepper "Name" (V.Str "PepperMill");
  let rec drive () =
    match Repair.step job with `More -> drive () | `Done o -> o
  in
  (match drive () with
  | Repair.Repaired { replayed; _ } ->
    check "buffered live event replayed" true (replayed >= 1)
  | Repair.Failed _ -> Alcotest.fail "repair failed under live mutation");
  check "extension caught up with the mutation" true
    (Relation.equal
       (Core.Asr.extension_relation a)
       (Core.Extension.compute store path Core.Extension.Full));
  check "post-repair scrub is clean" true (Scrub.clean (Scrub.run a));
  check "maintenance resumed" true (not (Core.Maintenance.is_suspended mgr a))

let abort_keeps_quarantine () =
  let b = C.base () in
  let store = b.C.store in
  let path = C.name_path store in
  let m = Gom.Path.arity path - 1 in
  let a = Core.Asr.create store path Core.Extension.Full (D.binary ~m) in
  (* Mutations applied before any maintenance is attached leave the
     logical extension stale, so the rebuild work list spans several
     slices — the job is genuinely mid-flight when aborted. *)
  Gom.Store.set_attr store b.C.pepper "Name" (V.Str "Zanzibar");
  Gom.Store.set_attr store b.C.door "Name" (V.Str "Gate");
  Gom.Store.set_attr store b.C.sausage "Name" (V.Str "Wurst");
  let env = env_of store in
  let mgr = Core.Maintenance.create env in
  Core.Maintenance.register mgr a;
  let registry = Quarantine.create () in
  Quarantine.quarantine ~reason:"test" registry a;
  let job = Repair.start ~slice:1 ~registry ~maintenance:mgr a in
  check "job still mid-flight after one slice" true (Repair.step job = `More);
  Repair.abort job;
  check "abort leaves the quarantine in place" true (Quarantine.asr_quarantined registry a);
  check "abort resumes maintenance" true (not (Core.Maintenance.is_suspended mgr a))

(* ---------------- fault injection ---------------- *)

let retry_backoff_deterministic () =
  let f = Fault.faulty_reads { Fault.fail_at_read = 1; fault = Fault.Transient 2 } in
  Fault.with_retry f (fun () -> Fault.observe_read f);
  check_int "two retries absorbed" 2 (Fault.retries f);
  check_int "backoff 2^0 + 2^1" 3 (Fault.backoff_ticks f);
  (* A transient outlasting the attempt budget escapes as Retryable. *)
  let g = Fault.faulty_reads { Fault.fail_at_read = 1; fault = Fault.Transient 5 } in
  check "persistent transient escapes" true
    (match Fault.with_retry g (fun () -> Fault.observe_read g) with
    | exception Fault.Retryable _ -> true
    | _ -> false);
  (* Determinism: the same plan yields the same counters. *)
  let h = Fault.faulty_reads { Fault.fail_at_read = 1; fault = Fault.Transient 2 } in
  Fault.with_retry h (fun () -> Fault.observe_read h);
  check_int "retries reproducible" (Fault.retries f) (Fault.retries h);
  check_int "backoff reproducible" (Fault.backoff_ticks f) (Fault.backoff_ticks h)

let scrub_absorbs_transient () =
  let _, _, a = company_asr Core.Extension.Full in
  let stats = Storage.Stats.create () in
  let f = Fault.faulty_reads { Fault.fail_at_read = 1; fault = Fault.Transient 2 } in
  let r = Scrub.run ~fault:f ~stats a in
  check "scrub clean despite transient faults" true (Scrub.clean r);
  check_int "retries surfaced in the counters" 2 (Storage.Stats.retries stats);
  check "scrubbed partitions counted" true
    (Storage.Stats.scrubs stats >= Core.Asr.partition_count a)

(* ---------------- durable snapshot loads under read faults -------- *)

let fresh_dir () =
  let d = Filename.temp_file "asr-integrity" "" in
  Sys.remove d;
  Sys.mkdir d 0o700;
  d

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let snapshot_read_faults () =
  with_dir (fun dir ->
      let b = C.base () in
      let db = Db.create ~dir b.C.store in
      Db.close db;
      let expect_corrupt name fault =
        match
          Db.open_ ~fault:(Fault.faulty_reads { Fault.fail_at_read = 1; fault }) ~dir ()
        with
        | _ -> Alcotest.failf "%s: corrupt snapshot accepted" name
        | exception Db.Recovery_error m ->
          check (name ^ " names the snapshot") true (contains m "snapshot");
          check (name ^ " locates the damage") true (contains m "byte")
      in
      expect_corrupt "flipped tail" (Fault.Flip_tail 4);
      expect_corrupt "truncated tail" (Fault.Drop_tail 4);
      (* A transient is absorbed by the bounded retry and recovery
         completes normally. *)
      let f = Fault.faulty_reads { Fault.fail_at_read = 1; fault = Fault.Transient 2 } in
      let db = Db.open_ ~fault:f ~dir () in
      check_int "transient absorbed by retry" 2 (Fault.retries f);
      check "recovered despite the transient" true
        (match Db.last_recovery db with Some r -> Db.verified r | None -> false);
      Db.close db)

(* ---------------- crash-during-repair sweep ---------------- *)

(* A deterministic setup with a corrupted partition, rebuilt from
   scratch for every crash point. *)
let sweep_setup () =
  let spec =
    Workload.Generator.spec ~seed:7 ~counts:[ 6; 8; 10 ] ~defined:[ 6; 7 ]
      ~fan:[ 2; 2 ] ()
  in
  let store, path = Workload.Generator.build spec in
  let env = env_of store in
  let m = Gom.Path.arity path - 1 in
  let a = Core.Asr.create store path Core.Extension.Full (D.binary ~m) in
  let mgr = Core.Maintenance.create env in
  Core.Maintenance.register mgr a;
  let engine = Engine.create env in
  Engine.register engine a;
  pin_expensive_nav engine path;
  let registry = Quarantine.create () in
  Quarantine.attach registry engine;
  let part = 0 in
  (match Core.Asr.scan_partition a part with
  | victim :: _ ->
    let ghost = Array.map (fun _ -> V.Ref (Gom.Oid.of_int 999999)) victim in
    Core.Asr.damage_partition a part [ Core.Asr.Drop victim; Core.Asr.Phantom ghost ]
  | [] -> Alcotest.fail "sweep base produced an empty partition");
  ignore (Quarantine.apply_report registry a (Scrub.run a));
  (env, path, a, mgr, engine, registry)

let crash_sweep_repair () =
  (* Size the sweep from a crash-free reference run through a counting
     fault environment that never fires. *)
  let total_reads =
    let env, _, a, mgr, _, registry = sweep_setup () in
    ignore env;
    let f =
      Fault.faulty_reads { Fault.fail_at_read = max_int; fault = Fault.Crash_read }
    in
    (match Repair.run ~slice:3 ~fault:f ~registry ~maintenance:mgr a with
    | Repair.Repaired _ -> ()
    | Repair.Failed _ -> Alcotest.fail "reference repair failed");
    Fault.reads f
  in
  check "reference run exercises several crash points" true (total_reads >= 3);
  for k = 1 to total_reads do
    let env, path, a, mgr, engine, registry = sweep_setup () in
    let f = Fault.faulty_reads { Fault.fail_at_read = k; fault = Fault.Crash_read } in
    (match Repair.run ~slice:3 ~fault:f ~registry ~maintenance:mgr a with
    | _ -> Alcotest.failf "crash point %d never fired" k
    | exception Fault.Crash -> ());
    (* The invariant: a crash anywhere in the cycle leaves the relation
       fully quarantined and queries degrading correctly — never a
       half-repaired index serving answers. *)
    check
      (Printf.sprintf "crash at read %d leaves the quarantine in place" k)
      true
      (Quarantine.asr_quarantined registry a);
    check
      (Printf.sprintf "crash at read %d: maintenance resumed" k)
      true
      (not (Core.Maintenance.is_suspended mgr a));
    check
      (Printf.sprintf "crash at read %d: degraded queries equal the oracle" k)
      true (agrees_oracle engine env path);
    (* Recovery: a clean second repair always lands fully repaired. *)
    (match Repair.run ~slice:3 ~registry ~maintenance:mgr a with
    | Repair.Repaired _ -> ()
    | Repair.Failed _ -> Alcotest.failf "post-crash repair failed at read %d" k);
    check
      (Printf.sprintf "crash at read %d: post-repair scrub clean" k)
      true
      (Scrub.clean (Scrub.run a));
    check
      (Printf.sprintf "crash at read %d: quarantine lifted after repair" k)
      true
      (not (Quarantine.asr_quarantined registry a))
  done

(* ---------------- stats surfacing ---------------- *)

let counters_in_json_summary () =
  let stats = Storage.Stats.create () in
  Storage.Stats.note_scrub stats;
  Storage.Stats.note_fallback stats;
  Storage.Stats.note_retry stats;
  Storage.Stats.note_retry stats;
  let s = Storage.Stats.snapshot stats in
  check_int "scrub counter" 1 s.Storage.Stats.s_scrubs;
  check_int "fallback counter" 1 s.Storage.Stats.s_fallbacks;
  check_int "retry counter" 2 s.Storage.Stats.s_retries;
  let json = Storage.Stats.summary_to_json s in
  check "json has scrubs" true (contains json "\"scrubs\": 1");
  check "json has fallbacks" true (contains json "\"fallbacks\": 1");
  check "json has retries" true (contains json "\"retries\": 2");
  Storage.Stats.reset stats;
  check_int "reset zeroes scrubs" 0 (Storage.Stats.scrubs stats)

(* ---------------- the acceptance property ---------------- *)

let spec_gen =
  QCheck.Gen.(
    let* nn = int_range 1 3 in
    let* counts = list_repeat (nn + 1) (int_range 1 6) in
    let* defined =
      flatten_l
        (List.map (fun c -> int_range 0 c) (List.filteri (fun i _ -> i < nn) counts))
    in
    let* fan = list_repeat nn (int_range 1 3) in
    let* sv = flatten_l (List.map (fun f -> if f > 1 then return true else bool) fan) in
    let* seed = int_range 0 10000 in
    return (Workload.Generator.spec ~seed ~set_valued:sv ~counts ~defined ~fan ()))

(* Corrupt one partition (a dropped real projection when one exists,
   plus a phantom when the trees are exclusively owned), scrub,
   quarantine, check oracle equality under degradation, repair, and
   check the index is clean, trusted and routed-through again. *)
let prop_corrupt_quarantine_repair =
  QCheck.Test.make
    ~name:"corrupt -> quarantine = oracle; repair -> clean scrub + ASR routing"
    ~count:50
    QCheck.(
      pair (make ~print:(fun _ -> "<spec>") spec_gen)
        (pair (int_bound 3) (pair small_int small_int)))
    (fun (spec, (kind_idx, (pick, dmg_pick))) ->
      let store, path = Workload.Generator.build spec in
      let env = env_of store in
      let kind = List.nth Core.Extension.all kind_idx in
      let m = Gom.Path.arity path - 1 in
      let decs = D.all ~m in
      let dec = List.nth decs (pick mod List.length decs) in
      let a = Core.Asr.create store path kind dec in
      let mgr = Core.Maintenance.create env in
      Core.Maintenance.register mgr a;
      let engine = Engine.create env in
      Engine.register engine a;
      pin_expensive_nav engine path;
      let registry = Quarantine.create () in
      Quarantine.attach registry engine;
      let parts = Core.Asr.partition_count a in
      let part = dmg_pick mod parts in
      let damaged =
        match Core.Asr.scan_partition a part with
        | victim :: _ ->
          let ghost = Array.map (fun _ -> V.Ref (Gom.Oid.of_int 999999)) victim in
          let ds =
            if Core.Asr.partition_shared a part then [ Core.Asr.Drop victim ]
            else [ Core.Asr.Drop victim; Core.Asr.Phantom ghost ]
          in
          Core.Asr.damage_partition a part ds;
          true
        | [] -> false
      in
      let report = Scrub.run a in
      let quarantined = Quarantine.apply_report registry a report in
      let detected = (not damaged) || quarantined <> [] in
      let degraded_ok = agrees_oracle engine env path in
      let repaired =
        match Repair.run ~slice:3 ~registry ~maintenance:mgr a with
        | Repair.Repaired _ -> true
        | Repair.Failed _ -> false
      in
      let clean_after = Scrub.clean (Scrub.run a) in
      let trusted_after = not (Quarantine.asr_quarantined registry a) in
      let restored_ok = agrees_oracle engine env path in
      detected && degraded_ok && repaired && clean_after && trusted_after
      && restored_ok)

let suite =
  [
    Alcotest.test_case "scrub: clean on a healthy index" `Quick scrub_clean_on_healthy;
    Alcotest.test_case "scrub: detects a dropped projection" `Quick scrub_detects_drop;
    Alcotest.test_case "scrub: detects a phantom projection" `Quick scrub_detects_phantom;
    Alcotest.test_case "scrub: classifies wrong NULL markers" `Quick
      scrub_classifies_null_marker;
    Alcotest.test_case "scrub: sampling and argument validation" `Quick
      scrub_sampled_and_bad_args;
    Alcotest.test_case "quarantine: forces replanning away and back" `Quick
      quarantine_forces_replanning;
    Alcotest.test_case "quarantine: damaged index still answers via oracle" `Quick
      quarantined_damaged_index_still_answers;
    Alcotest.test_case "engine: unregister evicts cached plans" `Quick
      cache_eviction_on_unregister;
    Alcotest.test_case "engine: stale cached plan can never execute" `Quick
      stale_cached_plan_never_executes;
    Alcotest.test_case "repair: restores, verifies, lifts quarantine" `Quick
      repair_restores_and_lifts;
    Alcotest.test_case "repair: buffers and replays live mutations" `Quick
      repair_replays_live_mutations;
    Alcotest.test_case "repair: abort keeps the quarantine" `Quick abort_keeps_quarantine;
    Alcotest.test_case "fault: bounded retry with deterministic backoff" `Quick
      retry_backoff_deterministic;
    Alcotest.test_case "fault: scrub absorbs transient read faults" `Quick
      scrub_absorbs_transient;
    Alcotest.test_case "fault: snapshot loads under read faults" `Quick
      snapshot_read_faults;
    Alcotest.test_case "fault: crash sweep across the repair cycle" `Slow
      crash_sweep_repair;
    Alcotest.test_case "stats: integrity counters in the JSON summary" `Quick
      counters_in_json_summary;
    Qc.to_alcotest prop_corrupt_quarantine_repair;
  ]
