(* Tests for Gom.Serial: persistence round-trips. *)

module S = Gom.Serial
module V = Gom.Value
module C = Workload.Schemas.Company
module R = Workload.Schemas.Robot

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let same_extensions store store' path kind =
  Relation.equal
    (Core.Extension.compute store path kind)
    (Core.Extension.compute store' path kind)

let test_schema_roundtrip () =
  let s = C.schema () in
  let s' = S.schema_of_string (S.schema_to_string s) in
  check "well formed" true (Result.is_ok (Gom.Schema.well_formed s'));
  check "attr preserved" true (Gom.Schema.attr_type s' "Division" "Manufactures" = Some "ProdSET");
  check "set preserved" true (Gom.Schema.element_type s' "ProdSET" = Some "Product")

let test_schema_with_inheritance_and_recursion () =
  let s = Gom.Schema.empty in
  let s = Gom.Schema.define_forward s "Person" in
  let s = Gom.Schema.define_set s "Friends" "Person" in
  let s = Gom.Schema.define_tuple s "Person" [ ("name", "STRING"); ("friends", "Friends") ] in
  let s = Gom.Schema.define_tuple s "Employee" ~supertypes:[ "Person" ] [ ("salary", "DECIMAL") ] in
  let s' = S.schema_of_string (S.schema_to_string s) in
  check "recursion survives" true (Result.is_ok (Gom.Schema.well_formed s'));
  check "inheritance survives" true (Gom.Schema.is_subtype s' ~sub:"Employee" ~sup:"Person");
  check_int "employee attrs" 3 (List.length (Gom.Schema.attrs s' "Employee"))

let test_company_roundtrip () =
  let b = C.base () in
  let text = S.store_to_string b.C.store in
  let store' = S.store_of_string text in
  let path = C.name_path b.C.store in
  List.iter
    (fun kind ->
      check
        ("extension preserved: " ^ Core.Extension.name kind)
        true
        (same_extensions b.C.store store' path kind))
    Core.Extension.all;
  (* Identifiers survive: the named root points at the same oid. *)
  check "name preserved" true
    (Gom.Store.find_name store' "Mercedes" = Some b.C.mercedes);
  check "attribute value preserved" true
    (V.equal (Gom.Store.get_attr store' b.C.door "Price") (V.Dec 1205.50))

let test_robot_roundtrip () =
  let b = R.base () in
  let store' = S.store_of_string (S.store_to_string b.R.store) in
  let path = R.location_path b.R.store in
  check "canonical preserved" true
    (same_extensions b.R.store store' path Core.Extension.Canonical)

let test_new_objects_after_load () =
  let b = C.base () in
  let store' = S.store_of_string (S.store_to_string b.C.store) in
  (* Fresh identifiers must not collide with restored ones. *)
  let fresh = Gom.Store.new_object store' "BasePart" in
  check "fresh oid beyond restored ids" true
    (Gom.Oid.to_int fresh > Gom.Oid.to_int b.C.mercedes)

let test_list_order_preserved () =
  let s = Gom.Schema.empty in
  let s = Gom.Schema.define_tuple s "Track" [ ("Title", "STRING") ] in
  let s = Gom.Schema.define_list s "TrackList" "Track" in
  let store = Gom.Store.create s in
  let tr title =
    let t = Gom.Store.new_object store "Track" in
    Gom.Store.set_attr store t "Title" (V.Str title);
    V.Ref t
  in
  let l = Gom.Store.new_object store "TrackList" in
  let a = tr "z-last" and b = tr "a-first" in
  Gom.Store.insert_elem store l b;
  Gom.Store.insert_elem store l a;
  let store' = S.store_of_string (S.store_to_string store) in
  check "list order kept" true (Gom.Store.elements store' l = [ b; a ])

let test_tricky_strings () =
  let b = C.base () in
  Gom.Store.set_attr b.C.store b.C.door "Name"
    (V.Str "a \"quoted\"  name\nwith newline and  double  spaces");
  let store' = S.store_of_string (S.store_to_string b.C.store) in
  check "string payload exact" true
    (V.equal
       (Gom.Store.get_attr store' b.C.door "Name")
       (Gom.Store.get_attr b.C.store b.C.door "Name"))

let test_special_values () =
  let s = Gom.Schema.empty in
  let s =
    Gom.Schema.define_tuple s "Z"
      [ ("d", "DECIMAL"); ("b", "BOOL"); ("c", "CHAR"); ("i", "INT") ]
  in
  let store = Gom.Store.create s in
  let o = Gom.Store.new_object store "Z" in
  Gom.Store.set_attr store o "d" (V.Dec 0.1);
  Gom.Store.set_attr store o "b" (V.Bool true);
  Gom.Store.set_attr store o "c" (V.Char '\n');
  Gom.Store.set_attr store o "i" (V.Int (-42));
  let store' = S.store_of_string (S.store_to_string store) in
  check "decimal bit-exact" true (V.equal (Gom.Store.get_attr store' o "d") (V.Dec 0.1));
  check "bool" true (V.equal (Gom.Store.get_attr store' o "b") (V.Bool true));
  check "char" true (V.equal (Gom.Store.get_attr store' o "c") (V.Char '\n'));
  check "negative int" true (V.equal (Gom.Store.get_attr store' o "i") (V.Int (-42)))

let test_corrupt_inputs () =
  let bad text = try ignore (S.store_of_string text); false with S.Corrupt _ -> true in
  check "empty" true (bad "");
  check "bad header" true (bad "not-a-base v9\n");
  check "bad object line" true (bad "asr-object-base v1\nO zzz T0\n");
  check "unknown type" true (bad "asr-object-base v1\nO 0 Ghost\n");
  check "bad value" true
    (bad "asr-object-base v1\nT tuple X - a:INT\nO 0 X\nA 0 a wat:7\n");
  check "dangling name" true (bad "asr-object-base v1\nN \"x\" 99\n")

let test_truncation_fuzz () =
  (* A torn write must never load as a silently partial base: cutting
     the serialised text at EVERY byte (which subsumes every line
     boundary) must raise [Corrupt] — never succeed, never escape with
     another exception. *)
  let b = C.base () in
  Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "with \"quotes\" and\nnewline");
  let text = S.store_to_string b.C.store in
  let n = String.length text in
  check "non-trivial text" true (n > 100);
  for cut = 0 to n - 1 do
    match S.store_of_string (String.sub text 0 cut) with
    | (_ : Gom.Store.t) ->
      Alcotest.failf "truncation at byte %d/%d loaded successfully" cut n
    | exception S.Corrupt _ -> ()
    | exception e ->
      Alcotest.failf "truncation at byte %d/%d escaped with %s" cut n
        (Printexc.to_string e)
  done;
  (* The intact text still loads. *)
  ignore (S.store_of_string text)

let test_corrupt_messages_located () =
  (* Every [Corrupt] arising from damaged content names the byte
     offset, so a torn file can be inspected by hand. *)
  let has_byte text =
    match S.store_of_string text with
    | (_ : Gom.Store.t) -> false
    | exception S.Corrupt m ->
      let rec find i =
        i + 4 <= String.length m && (String.sub m i 4 = "byte" || find (i + 1))
      in
      find 0
  in
  let b = C.base () in
  let text = S.store_to_string b.C.store in
  (* Flip one byte inside the body: footer CRC catches it, and the
     message locates the damage. *)
  let flipped = Bytes.of_string text in
  Bytes.set flipped (String.length text / 2)
    (if Bytes.get flipped (String.length text / 2) = 'x' then 'y' else 'x');
  check "bit damage located" true (has_byte (Bytes.to_string flipped));
  (* A well-framed file with a bad value line: the per-line error must
     carry the line's byte offset. *)
  let body = "asr-object-base v1\nT tuple X - a:INT\nO 0 X\nA 0 a wat:7\n" in
  let framed =
    Printf.sprintf "%sX %s %d\n" body
      (Gom.Crc32.to_hex (Gom.Crc32.string body))
      (String.length body)
  in
  check "bad value located" true (has_byte framed)

let test_generated_roundtrip () =
  let spec =
    Workload.Generator.spec ~seed:31 ~counts:[ 80; 160; 320 ] ~defined:[ 70; 150 ]
      ~fan:[ 2; 2 ] ()
  in
  let store, path = Workload.Generator.build spec in
  let store' = S.store_of_string (S.store_to_string store) in
  List.iter
    (fun kind ->
      check
        ("generated base: " ^ Core.Extension.name kind)
        true
        (same_extensions store store' path kind))
    Core.Extension.all

let spec_gen =
  QCheck.Gen.(
    let* nn = int_range 1 3 in
    let* counts = list_repeat (nn + 1) (int_range 1 6) in
    let* defined =
      flatten_l
        (List.map (fun c -> int_range 0 c) (List.filteri (fun i _ -> i < nn) counts))
    in
    let* fan = list_repeat nn (int_range 1 3) in
    let* sv = flatten_l (List.map (fun f -> if f > 1 then return true else bool) fan) in
    let* seed = int_range 0 100000 in
    return (Workload.Generator.spec ~seed ~set_valued:sv ~counts ~defined ~fan ()))

let prop_roundtrip =
  QCheck.Test.make ~name:"random bases round-trip through the text format" ~count:60
    (QCheck.make ~print:(fun _ -> "<spec>") spec_gen)
    (fun spec ->
      let store, path = Workload.Generator.build spec in
      let store' = S.store_of_string (S.store_to_string store) in
      List.for_all (fun kind -> same_extensions store store' path kind) Core.Extension.all)

let test_save_load_file () =
  let b = C.base () in
  let file = Filename.temp_file "asrbase" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      S.save b.C.store file;
      let store' = S.load file in
      check "file round-trip" true
        (same_extensions b.C.store store' (C.name_path b.C.store) Core.Extension.Full))

let suite =
  [
    Alcotest.test_case "schema roundtrip" `Quick test_schema_roundtrip;
    Alcotest.test_case "inheritance and recursion" `Quick test_schema_with_inheritance_and_recursion;
    Alcotest.test_case "company base roundtrip" `Quick test_company_roundtrip;
    Alcotest.test_case "robot base roundtrip" `Quick test_robot_roundtrip;
    Alcotest.test_case "fresh oids after load" `Quick test_new_objects_after_load;
    Alcotest.test_case "list order preserved" `Quick test_list_order_preserved;
    Alcotest.test_case "tricky strings" `Quick test_tricky_strings;
    Alcotest.test_case "special values" `Quick test_special_values;
    Alcotest.test_case "corrupt inputs" `Quick test_corrupt_inputs;
    Alcotest.test_case "truncation fuzz: cut at every byte" `Quick test_truncation_fuzz;
    Alcotest.test_case "corrupt messages carry byte offsets" `Quick test_corrupt_messages_located;
    Alcotest.test_case "generated base roundtrip" `Quick test_generated_roundtrip;
    Qc.to_alcotest prop_roundtrip;
    Alcotest.test_case "save/load file" `Quick test_save_load_file;
  ]
