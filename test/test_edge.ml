(* Edge cases across the stack: degenerate bases, single-step paths,
   empty extents, boundary parameters. *)

module V = Gom.Value
module D = Core.Decomposition
module X = Core.Extension

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- single-attribute paths (n = 1) ---- *)

let tiny_schema () =
  let s = Gom.Schema.empty in
  Gom.Schema.define_tuple s "Doc" [ ("Title", "STRING") ]

let test_single_step_atomic_path () =
  let s = tiny_schema () in
  let store = Gom.Store.create s in
  let d1 = Gom.Store.new_object store "Doc" in
  Gom.Store.set_attr store d1 "Title" (V.Str "Moby");
  let d2 = Gom.Store.new_object store "Doc" in
  ignore d2 (* Title stays NULL *);
  let path = Gom.Path.make s "Doc" [ "Title" ] in
  check_int "arity 2" 2 (Gom.Path.arity path);
  let can = X.compute store path X.Canonical in
  check_int "one complete tuple" 1 (Relation.cardinal can);
  let a = Core.Asr.create store path X.Canonical (D.trivial ~m:1) in
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
  let env = Core.Exec.make store heap in
  check "backward by value" true
    (Core.Exec.backward_supported env a ~i:0 ~j:1 ~target:(V.Str "Moby") = [ d1 ]);
  (* This is exactly a conventional attribute index. *)
  let mgr = Core.Maintenance.create env in
  Core.Maintenance.register mgr a;
  Gom.Store.set_attr store d1 "Title" (V.Str "Dick");
  check "maintained" true
    (Relation.equal (X.compute store path X.Canonical) (Core.Asr.extension_relation a));
  check "old key gone" true
    (Core.Exec.backward_supported env a ~i:0 ~j:1 ~target:(V.Str "Moby") = [])

let test_decomposition_m1 () =
  check_int "only the trivial decomposition" 1 (List.length (D.all ~m:1));
  check "trivial = binary at m=1" true (D.equal (D.trivial ~m:1) (D.binary ~m:1))

(* ---- empty bases and extents ---- *)

let test_empty_base () =
  let b = Workload.Schemas.Company.base () in
  let store = Gom.Store.create (Gom.Store.schema b.Workload.Schemas.Company.store) in
  let path = Workload.Schemas.Company.name_path store in
  List.iter
    (fun k -> check_int (X.name k ^ " empty") 0 (Relation.cardinal (X.compute store path k)))
    X.all;
  let a = Core.Asr.create store path X.Full (D.binary ~m:5) in
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
  let env = Core.Exec.make store heap in
  check "lookup on empty" true
    (Core.Exec.backward_supported env a ~i:0 ~j:3 ~target:(V.Str "Door") = []);
  check "scan on empty" true
    (Core.Exec.backward_scan env path ~i:0 ~j:3 ~target:(V.Str "Door") = [])

let test_serial_empty_store () =
  let store = Gom.Store.create (tiny_schema ()) in
  let store' = Gom.Serial.store_of_string (Gom.Serial.store_to_string store) in
  check_int "no objects" 0 (Gom.Store.count store' "Doc");
  check "schema intact" true (Gom.Schema.is_tuple (Gom.Store.schema store') "Doc")

(* ---- degenerate cost-model parameters ---- *)

let test_costmodel_d_zero () =
  let p =
    Costmodel.Profile.make ~c:[ 100.; 100.; 100. ] ~d:[ 0.; 0. ] ~fan:[ 1.; 1. ] ()
  in
  List.iter
    (fun k ->
      let v = Costmodel.Cardinality.count p k 0 2 in
      check (X.name k ^ " zero tuples") true (v = 0.))
    X.all;
  (* Query costs stay finite. *)
  let q = Costmodel.Query_cost.qnas p Costmodel.Query_cost.Bw 0 2 in
  check "finite scan cost" true (Float.is_finite q && q >= 1.);
  let u = Costmodel.Update_cost.total p X.Full (D.binary ~m:2) 1 in
  check "finite update cost" true (Float.is_finite u)

let test_costmodel_single_object () =
  let p = Costmodel.Profile.make ~c:[ 1.; 1. ] ~d:[ 1. ] ~fan:[ 1. ] () in
  check "tiny profile works" true
    (Float.is_finite (Costmodel.Query_cost.q p X.Full (D.trivial ~m:1) Costmodel.Query_cost.Bw 0 1))

(* ---- gql odds and ends ---- *)

let company_env () =
  let b = Workload.Schemas.Company.base () in
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) b.Workload.Schemas.Company.store in
  (b, Engine.create (Core.Exec.make b.Workload.Schemas.Company.store heap))

let test_gql_no_where () =
  let _, engine = company_env () in
  let r = Gql.Eval.query ~engine {|select d.Name from d in Division|} in
  check_int "all divisions" 3 (List.length r.Gql.Eval.rows)

let test_gql_or_not () =
  let _, engine = company_env () in
  let r =
    Gql.Eval.query ~engine
      {|select d.Name from d in Division
        where d.Name = "Auto" or d.Name = "Space"|}
  in
  check_int "disjunction" 2 (List.length r.Gql.Eval.rows);
  let r =
    Gql.Eval.query ~engine
      {|select d.Name from d in Division where not d.Name = "Auto"|}
  in
  check_int "negation" 2 (List.length r.Gql.Eval.rows)

let test_gql_literal_select () =
  let _, engine = company_env () in
  let r = Gql.Eval.query ~engine {|select 1, d.Name from d in Division where d.Name = "Auto"|} in
  check "literal column" true (r.Gql.Eval.rows = [ [ V.Int 1; V.Str "Auto" ] ])

let test_gql_empty_path_result () =
  let _, engine = company_env () in
  (* Space has NULL Manufactures: the path set is empty, equality is
     existentially false. *)
  let r =
    Gql.Eval.query ~engine
      {|select d.Name from d in Division
        where d.Name = "Space" and d.Manufactures.Composition.Name = "Door"|}
  in
  check "existential over empty path set" true (r.Gql.Eval.rows = [])

(* ---- store misuse ---- *)

let test_store_after_delete () =
  let b = Workload.Schemas.Company.base () in
  let store = b.Workload.Schemas.Company.store in
  let door = b.Workload.Schemas.Company.door in
  Gom.Store.delete store door;
  check "get_attr raises" true
    (try ignore (Gom.Store.get_attr store door "Name"); false
     with Gom.Store.Type_error _ -> true);
  check "set_attr raises" true
    (try Gom.Store.set_attr store door "Name" (V.Str "x"); false
     with Gom.Store.Type_error _ -> true)

let test_restore_object_guards () =
  let b = Workload.Schemas.Company.base () in
  let store = b.Workload.Schemas.Company.store in
  check "live oid refused" true
    (try Gom.Store.restore_object store b.Workload.Schemas.Company.door "BasePart"; false
     with Gom.Store.Type_error _ -> true);
  check "atomic type refused" true
    (try Gom.Store.restore_object store (Gom.Oid.of_int 9999) "STRING"; false
     with Gom.Store.Type_error _ -> true)

(* ---- bptree after heavy deletion ---- *)

let test_bptree_lookup_across_holes () =
  let config = Storage.Config.make ~page_size:64 ~oid_size:8 ~pp_size:4 () in
  let t =
    Storage.Bptree.create ~config ~pager:(Storage.Pager.create ()) ~tuple_bytes:16
      ~key_of:(fun tup -> tup.(0))
  in
  let tup a b = [| V.Ref (Gom.Oid.of_int a); V.Ref (Gom.Oid.of_int b) |] in
  Storage.Bptree.bulk_load t (List.init 64 (fun i -> tup i i));
  (* Remove a band in the middle, leaving under-full leaves. *)
  for i = 20 to 44 do
    Storage.Bptree.remove t (tup i i)
  done;
  check "invariants" true (Result.is_ok (Storage.Bptree.check_invariants t));
  check "left of hole" true
    (Storage.Bptree.lookup t (V.Ref (Gom.Oid.of_int 19)) = [ tup 19 19 ]);
  check "right of hole" true
    (Storage.Bptree.lookup t (V.Ref (Gom.Oid.of_int 45)) = [ tup 45 45 ]);
  check "inside hole" true (Storage.Bptree.lookup t (V.Ref (Gom.Oid.of_int 30)) = []);
  check_int "cardinal" 39 (Storage.Bptree.cardinal t)

(* ---- values ---- *)

let test_float_total_order () =
  (* Even NaN participates in the total order used by B+ tree keys. *)
  let a = V.Dec Float.nan and b = V.Dec 1.0 in
  check "antisymmetric" true (V.compare a b = -V.compare b a);
  check "reflexive-ish" true (V.compare a a = 0)

let suite =
  [
    Alcotest.test_case "single-step atomic path" `Quick test_single_step_atomic_path;
    Alcotest.test_case "decomposition at m=1" `Quick test_decomposition_m1;
    Alcotest.test_case "empty base" `Quick test_empty_base;
    Alcotest.test_case "serialise empty store" `Quick test_serial_empty_store;
    Alcotest.test_case "cost model with d=0" `Quick test_costmodel_d_zero;
    Alcotest.test_case "cost model with one object" `Quick test_costmodel_single_object;
    Alcotest.test_case "gql without where" `Quick test_gql_no_where;
    Alcotest.test_case "gql or / not" `Quick test_gql_or_not;
    Alcotest.test_case "gql literal select" `Quick test_gql_literal_select;
    Alcotest.test_case "gql existential over empty" `Quick test_gql_empty_path_result;
    Alcotest.test_case "store after delete" `Quick test_store_after_delete;
    Alcotest.test_case "restore_object guards" `Quick test_restore_object_guards;
    Alcotest.test_case "bptree across deletion holes" `Quick test_bptree_lookup_across_holes;
    Alcotest.test_case "float total order" `Quick test_float_total_order;
  ]
