(* Tests for Storage.Stats, Storage.Heap and Storage.Config. *)

module S = Storage.Stats
module H = Storage.Heap

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_config () =
  check_int "default page size" 4056 Storage.Config.default.Storage.Config.page_size;
  check_int "B+ fan-out" 338 (Storage.Config.bplus_fan Storage.Config.default);
  check "bad sizes rejected" true
    (try ignore (Storage.Config.make ~page_size:0 ()); false
     with Invalid_argument _ -> true)

let test_stats_distinct_counting () =
  let st = S.create () in
  S.begin_op st;
  S.read st 1;
  S.read st 1;
  S.read st 2;
  check_int "distinct reads" 2 (S.op_reads st);
  S.write st 1;
  S.write st 1;
  check_int "distinct writes" 1 (S.op_writes st);
  check_int "accesses" 3 (S.op_accesses st);
  S.begin_op st;
  check_int "op reset" 0 (S.op_reads st);
  S.read st 1;
  check_int "page countable again" 1 (S.op_reads st);
  check_int "totals accumulate" 3 (S.total_reads st);
  S.reset st;
  check_int "reset clears totals" 0 (S.total_reads st)

let test_buffer_pool_hits () =
  let st = S.create ~buffer_capacity:2 () in
  S.begin_op st;
  S.read st 1;
  S.read st 2;
  check_int "cold misses counted" 2 (S.op_reads st);
  S.begin_op st;
  S.read st 1;
  S.read st 2;
  check_int "warm reads free" 0 (S.op_reads st);
  check_int "hits recorded" 2 (S.buffer_hits st);
  (* Page 3 evicts the LRU page (1 was used before 2... both touched this
     op; 1 is older). *)
  S.read st 3;
  S.begin_op st;
  S.read st 1;
  check_int "evicted page is a miss again" 1 (S.op_reads st);
  check_int "capacity" 2 (S.buffer_capacity st)

let test_buffer_lru_order () =
  let st = S.create ~buffer_capacity:2 () in
  S.begin_op st;
  S.read st 1;
  S.read st 2;
  S.read st 1 (* touch 1: now 2 is the LRU *);
  S.begin_op st;
  S.read st 1 (* hit; refreshes 1 *);
  S.read st 3 (* evicts 2 *);
  S.begin_op st;
  S.read st 1;
  check_int "1 still resident" 0 (S.op_reads st);
  S.read st 2;
  check_int "2 was evicted" 1 (S.op_reads st)

let test_buffer_write_through () =
  let st = S.create ~buffer_capacity:4 () in
  S.begin_op st;
  S.write st 7;
  check_int "write counted" 1 (S.op_writes st);
  S.begin_op st;
  S.read st 7;
  check_int "written page resident" 0 (S.op_reads st)

let test_buffer_reset () =
  let st = S.create ~buffer_capacity:4 () in
  S.begin_op st;
  S.read st 1;
  S.reset st;
  S.begin_op st;
  S.read st 1;
  check_int "reset drops the pool" 1 (S.op_reads st)

let test_no_buffer_by_default () =
  let st = S.create () in
  S.begin_op st;
  S.read st 1;
  S.begin_op st;
  S.read st 1;
  check_int "cold across operations" 1 (S.op_reads st);
  check_int "no hits" 0 (S.buffer_hits st);
  check_int "capacity 0" 0 (S.buffer_capacity st)

let heap_setup ?(size = 500) () =
  let s = Gom.Schema.empty in
  let s = Gom.Schema.define_tuple s "Big" [ ("x", "INT") ] in
  let s = Gom.Schema.define_tuple s "Small" [ ("x", "INT") ] in
  let store = Gom.Store.create s in
  let heap =
    H.create ~size_of:(function "Big" -> size | _ -> 50) store
  in
  (store, heap)

let test_heap_packing () =
  let store, heap = heap_setup () in
  (* 4056 / 500 = 8 objects per page. *)
  let objs = List.init 20 (fun _ -> Gom.Store.new_object store "Big") in
  check_int "20 objects over 3 pages" 3 (H.pages_of_type heap "Big");
  check_int "opp" 8 (H.objects_per_page heap "Big");
  (* First 8 objects share the first page. *)
  let pages = List.map (H.page_of heap) objs in
  let first8 = List.filteri (fun i _ -> i < 8) pages in
  check "first 8 co-located" true
    (List.for_all (fun p -> p = List.hd first8) first8);
  check "9th elsewhere" true (List.nth pages 8 <> List.hd pages)

let test_heap_type_clustering () =
  let store, heap = heap_setup () in
  let big = Gom.Store.new_object store "Big" in
  let small = Gom.Store.new_object store "Small" in
  check "different type, different page" true
    (H.page_of heap big <> H.page_of heap small)

let test_heap_scan_and_read () =
  let store, heap = heap_setup () in
  let objs = List.init 20 (fun _ -> Gom.Store.new_object store "Big") in
  let st = S.create () in
  S.begin_op st;
  H.scan_extent heap st "Big";
  check_int "scan touches all pages" 3 (S.op_reads st);
  S.begin_op st;
  H.read_object heap st (List.hd objs);
  check_int "single object, one page" 1 (S.op_reads st)

let test_heap_large_objects () =
  let store, heap = heap_setup ~size:10000 () in
  let o = Gom.Store.new_object store "Big" in
  let st = S.create () in
  S.begin_op st;
  H.read_object heap st o;
  (* ceil(10000 / 4056) = 3 pages. *)
  check_int "spanning object" 3 (S.op_reads st)

let test_heap_deep_extent () =
  let s = Gom.Schema.empty in
  let s = Gom.Schema.define_tuple s "Base" [ ("x", "INT") ] in
  let s = Gom.Schema.define_tuple s "Derived" ~supertypes:[ "Base" ] [] in
  let store = Gom.Store.create s in
  let heap = H.create ~size_of:(fun _ -> 500) store in
  ignore (Gom.Store.new_object store "Base");
  ignore (Gom.Store.new_object store "Derived");
  check_int "shallow pages" 1 (H.pages_of_type heap "Base");
  check_int "deep pages include subtype extents" 2
    (H.pages_of_type ~deep:true heap "Base")

(* --- Buffer module mechanics (policy, pins, prefetch outcomes) --- *)

module B = Storage.Buffer

let test_buffer_clock_second_chance () =
  let b = B.create ~policy:B.Clock ~capacity:3 () in
  ignore (B.reference b ("s", 1));
  ignore (B.reference b ("s", 2));
  ignore (B.reference b ("s", 3));
  (* Admitting 4 sweeps the whole ring (clearing every ref bit) and
     evicts 1, the frame under the hand. *)
  (match B.reference b ("s", 4) with
  | B.Miss { evicted = true } -> ()
  | _ -> Alcotest.fail "expected an evicting miss");
  check "hand victim gone" false (B.mem b ("s", 1));
  (* Re-reference 2: its bit is set again, so the next eviction must
     give it a second chance and take 3 — even though 3 is behind 2 in
     hand order. *)
  ignore (B.reference b ("s", 2));
  ignore (B.reference b ("s", 5));
  check "second-chanced page survives" true (B.mem b ("s", 2));
  check "unreferenced page evicted" false (B.mem b ("s", 3));
  check "fresh admission resident" true (B.mem b ("s", 4))

let test_buffer_pin_nesting () =
  let b = B.create ~capacity:2 () in
  ignore (B.reference b ("s", 1));
  B.pin b ("s", 1);
  B.pin b ("s", 1) (* nested *);
  ignore (B.reference b ("s", 2));
  ignore (B.reference b ("s", 3)) (* must evict 2, never pinned 1 *);
  check "pinned frame survives eviction" true (B.mem b ("s", 1));
  B.unpin b ("s", 1) (* one pin remains *);
  ignore (B.reference b ("s", 4));
  check "still pinned after one unpin" true (B.mem b ("s", 1));
  B.unpin b ("s", 1);
  ignore (B.reference b ("s", 5));
  ignore (B.reference b ("s", 6));
  check "fully unpinned frame evictable" false (B.mem b ("s", 1));
  B.unpin b ("s", 99) (* unknown frame: no-op *)

let test_buffer_all_pinned_overflows () =
  let b = B.create ~capacity:1 () in
  ignore (B.reference b ("s", 1));
  B.pin b ("s", 1);
  (match B.reference b ("s", 2) with
  | B.Miss { evicted = false } -> ()
  | _ -> Alcotest.fail "expected a non-evicting overflow miss");
  check "overflow admitted" true (B.mem b ("s", 2));
  check_int "transient overflow" 2 (B.resident b)

let test_buffer_prefetch_outcomes () =
  let b = B.create ~capacity:4 () in
  (match B.prefetch b ("s", 1) with
  | `Admitted false -> ()
  | _ -> Alcotest.fail "expected speculative admission");
  (match B.reference b ("s", 1) with
  | B.Prefetch_hit -> ()
  | _ -> Alcotest.fail "first demand read should be a prefetch hit");
  (match B.reference b ("s", 1) with
  | B.Hit -> ()
  | _ -> Alcotest.fail "later reads are plain hits");
  (match B.prefetch b ("s", 1) with
  | `Resident -> ()
  | _ -> Alcotest.fail "prefetching a resident page is a no-op")

let test_buffer_segment_namespacing () =
  let b = B.create ~capacity:4 () in
  ignore (B.reference b ("heap", 1));
  (match B.reference b ("asr0", 1) with
  | B.Miss _ -> ()
  | _ -> Alcotest.fail "page 1 of another segment must be a distinct frame");
  check_int "two frames" 2 (B.resident b)

let test_stats_prefetch_accounting () =
  let st = S.create ~buffer_capacity:8 () in
  S.begin_op st;
  S.prefetch st [ 1; 2 ];
  check_int "prefetch pays physical I/O now" 2 (S.total_reads st);
  check_int "prefetched counted" 2 (S.prefetched st);
  S.read st 1;
  check_int "demand read after prefetch is free" 2 (S.total_reads st);
  check_int "prefetch hit recorded" 1 (S.prefetch_hits st);
  check_int "logical reads still counted" 1 (S.logical_reads st);
  (* Within-operation repeats never reach the pool (distinct-page
     accounting); a fresh operation's read is a plain hit. *)
  S.begin_op st;
  S.read st 1;
  check_int "later demand read is a plain hit" 1 (S.buffer_hits st)

let test_stats_segment_hit_ratio () =
  let st = S.create ~buffer_capacity:8 () in
  (* Page 1 of the heap and page 1 of a tree pager are different pages:
     the pool must key frames by (segment, page).  Separate operations,
     because within-op distinct-page suppression is by raw identifier
     (preserving the unbuffered op_reads semantics). *)
  S.begin_op st;
  S.in_segment st "heap" (fun () -> S.read st 1);
  S.begin_op st;
  S.in_segment st "asr0" (fun () -> S.read st 1);
  check_int "colliding ids in distinct segments both miss" 2 (S.buffer_misses st);
  S.begin_op st;
  S.in_segment st "heap" (fun () -> S.read st 1);
  (match S.segment_hit_ratio st "heap" with
  | Some r -> check "heap warmed to 1/2" true (abs_float (r -. 0.5) < 1e-9)
  | None -> Alcotest.fail "heap segment has traffic");
  (match S.segment_hit_ratio st "asr0" with
  | Some r -> check "asr0 still cold" true (r < 1e-9)
  | None -> Alcotest.fail "asr0 segment has traffic");
  check "untouched segment has no ratio" true
    (S.segment_hit_ratio st "asr99" = None)

(* --- Reclustering --- *)

let test_recluster_moves_and_occupancy () =
  let store, heap = heap_setup () in
  (* 8 Big objects (500B) per 4056B page: 20 objects over 3 pages. *)
  let objs = Array.of_list (List.init 20 (fun _ -> Gom.Store.new_object store "Big")) in
  let o_first = objs.(0) and o_last = objs.(19) in
  check "initially on different pages" true
    (H.page_of heap o_first <> H.page_of heap o_last);
  let outcome = H.recluster heap ~plan:[ [ o_first; o_last ] ] in
  check_int "considered" 2 outcome.H.rc_considered;
  check_int "moved" 2 outcome.H.rc_moved;
  check_int "one shared target page" 1 outcome.H.rc_target_pages;
  check "co-located after recluster" true
    (H.page_of heap o_first = H.page_of heap o_last);
  (* Occupancy, not bump areas, is the extent ground truth: the two
     source pages still hold survivors, plus the fresh target page. *)
  check_int "extent spans 4 pages now" 4 (H.pages_of_type heap "Big");
  let st = S.create () in
  S.begin_op st;
  H.scan_extent heap st "Big";
  check_int "scan touches occupancy pages" 4 (S.op_reads st);
  match H.recluster_progress heap with
  | Some (moved, planned) ->
    check_int "progress moved" 2 moved;
    check_int "progress planned" 2 planned
  | None -> Alcotest.fail "progress visible after a run"

let test_recluster_slices_and_abort () =
  let store, heap = heap_setup () in
  let objs = Array.of_list (List.init 20 (fun _ -> Gom.Store.new_object store "Big")) in
  let plan = [ [ objs.(0); objs.(10) ]; [ objs.(1); objs.(11) ] ] in
  let job = H.recluster_start ~slice:1 heap ~plan in
  check "job active" true (H.recluster_active heap);
  check "second start rejected" true
    (try ignore (H.recluster_start heap ~plan); false
     with Invalid_argument _ -> true);
  (match H.recluster_step job with
  | `More -> ()
  | `Done _ -> Alcotest.fail "4 moves at slice 1 need several steps");
  H.recluster_abort job;
  check "abort deactivates" false (H.recluster_active heap);
  (* The already-applied move stays; the rest of the plan was dropped. *)
  (match H.recluster_progress heap with
  | Some (moved, planned) ->
    check_int "one slice applied" 1 moved;
    check_int "planned recorded" 4 planned
  | None -> Alcotest.fail "progress visible after abort");
  (* A fresh job can start after the abort and runs to completion. *)
  let outcome = H.recluster heap ~plan:[ [ objs.(2); objs.(12) ] ] in
  check_int "post-abort job moves" 2 outcome.H.rc_moved

let test_recluster_skips_deleted_and_large () =
  let store, heap = heap_setup () in
  let small_a = Gom.Store.new_object store "Big" in
  let small_b = Gom.Store.new_object store "Big" in
  let doomed = Gom.Store.new_object store "Big" in
  (* A second type sized over a page: its objects span several pages and
     must never be moved. *)
  let s = Gom.Store.schema store in
  ignore s;
  let job = H.recluster_start ~slice:64 heap ~plan:[ [ small_a; small_b; doomed ] ] in
  Gom.Store.delete store doomed;
  (match H.recluster_step job with
  | `Done o ->
    check_int "deleted object skipped" 2 o.H.rc_moved;
    check_int "plan named three" 3 o.H.rc_considered
  | `More -> Alcotest.fail "single slice covers the plan");
  check "survivors co-located" true (H.page_of heap small_a = H.page_of heap small_b)

let test_recluster_large_objects_stay () =
  let store, heap = heap_setup ~size:10000 () in
  let a = Gom.Store.new_object store "Big" in
  let b = Gom.Store.new_object store "Big" in
  let p_a = H.page_of heap a in
  let outcome = H.recluster heap ~plan:[ [ a; b ] ] in
  check_int "multi-page objects never move" 0 outcome.H.rc_moved;
  check_int "placement untouched" p_a (H.page_of heap a);
  check_int "span untouched" 3 (H.span_of heap a)

let test_heap_delete_forgets () =
  let store, heap = heap_setup () in
  let o = Gom.Store.new_object store "Big" in
  Gom.Store.delete store o;
  check "placement dropped" true
    (try ignore (H.page_of heap o); false with Not_found -> true)

let suite =
  [
    Alcotest.test_case "config" `Quick test_config;
    Alcotest.test_case "stats distinct counting" `Quick test_stats_distinct_counting;
    Alcotest.test_case "buffer pool hits" `Quick test_buffer_pool_hits;
    Alcotest.test_case "buffer LRU order" `Quick test_buffer_lru_order;
    Alcotest.test_case "buffer write-through" `Quick test_buffer_write_through;
    Alcotest.test_case "buffer reset" `Quick test_buffer_reset;
    Alcotest.test_case "no buffer by default" `Quick test_no_buffer_by_default;
    Alcotest.test_case "heap packing" `Quick test_heap_packing;
    Alcotest.test_case "heap type clustering" `Quick test_heap_type_clustering;
    Alcotest.test_case "heap scans and reads" `Quick test_heap_scan_and_read;
    Alcotest.test_case "large objects span pages" `Quick test_heap_large_objects;
    Alcotest.test_case "deep extents" `Quick test_heap_deep_extent;
    Alcotest.test_case "deletion forgets placement" `Quick test_heap_delete_forgets;
    Alcotest.test_case "buffer clock second chance" `Quick test_buffer_clock_second_chance;
    Alcotest.test_case "buffer pin nesting" `Quick test_buffer_pin_nesting;
    Alcotest.test_case "buffer all-pinned overflow" `Quick test_buffer_all_pinned_overflows;
    Alcotest.test_case "buffer prefetch outcomes" `Quick test_buffer_prefetch_outcomes;
    Alcotest.test_case "buffer segment namespacing" `Quick test_buffer_segment_namespacing;
    Alcotest.test_case "stats prefetch accounting" `Quick test_stats_prefetch_accounting;
    Alcotest.test_case "stats segment hit ratio" `Quick test_stats_segment_hit_ratio;
    Alcotest.test_case "recluster moves and occupancy" `Quick
      test_recluster_moves_and_occupancy;
    Alcotest.test_case "recluster slices and abort" `Quick test_recluster_slices_and_abort;
    Alcotest.test_case "recluster skips deleted" `Quick test_recluster_skips_deleted_and_large;
    Alcotest.test_case "recluster leaves large objects" `Quick
      test_recluster_large_objects_stay;
  ]
