(* Tests for the horizontal sharding layer: the placement function, the
   scatter-gather router, and per-shard durability.

   The centrepiece is the merge gate: a QCheck oracle asserting that
   every (path, i, j, direction) query answered by the sharded router is
   byte-identical to the unsharded engine over the same object base —
   across shard counts 1/2/4/8, job counts and flush policies — and
   that after a full flush the per-shard fragment trees union back,
   tree for tree, to the unsharded relation.  Around it: a regression
   for quarantine-driven degradation staying local to one shard, and a
   crash-at-every-write sweep over one shard's log with the cross-shard
   agreement gate refusing to serve until the generations agree. *)

(* Store.copy builds the replica stores — the writer-side clone the
   alert keeps available. *)
[@@@alert "-legacy"]

module E = Core.Exec
module D = Core.Decomposition
module M = Core.Maintenance
module V = Gom.Value
module P = Shard.Placement
module G = Shard.Group
module Dur = Shard.Durable
module Db = Durability.Db
module Wal = Durability.Wal
module Fault = Durability.Fault

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let vset vs = List.sort_uniq V.compare vs

let iters_env name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n > 0 -> n
  | Some _ | None -> default

let env_of store =
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
  E.make store heap

(* ---------------- placement ---------------- *)

let test_placement_basics () =
  let pl = P.make 4 in
  check_int "shards" 4 (P.shards pl);
  (* Deterministic and in range. *)
  List.iter
    (fun id ->
      let k = P.shard_of_oid pl (Gom.Oid.of_int id) in
      check "in range" true (k >= 0 && k < 4);
      check_int "stable" k (P.shard_of_oid pl (Gom.Oid.of_int id)))
    [ 0; 1; 2; 17; 9999; 123456 ];
  (* Hash placement spreads consecutive identifiers. *)
  let hits = Array.make 4 0 in
  for id = 0 to 255 do
    let k = P.shard_of_oid pl (Gom.Oid.of_int id) in
    hits.(k) <- hits.(k) + 1
  done;
  Array.iteri
    (fun k c -> check (Printf.sprintf "shard %d non-starved" k) true (c > 16))
    hits;
  (* Range placement keeps a stride together. *)
  let rp = P.make ~strategy:(P.Range 10) 4 in
  check_int "range stride 0" 0 (P.shard_of_id rp 3);
  check_int "range stride 1" 1 (P.shard_of_id rp 13);
  check_int "range wraps" 0 (P.shard_of_id rp 43);
  (* Tuple owner = leftmost non-NULL column. *)
  let o = Gom.Oid.of_int 7 in
  let k = P.shard_of_oid pl o in
  check_int "leftmost non-null decides" k
    (P.shard_of_tuple pl [| V.Null; V.Ref o; V.Str "x" |]);
  check_int "all-null owns to 0" 0 (P.shard_of_tuple pl [| V.Null; V.Null |])

let test_placement_strings () =
  let roundtrip pl =
    match P.of_string ~shards:(P.shards pl) (P.to_string pl) with
    | Some pl' ->
      P.shards pl' = P.shards pl && P.strategy pl' = P.strategy pl
    | None -> false
  in
  check "hash roundtrip" true (roundtrip (P.make 4));
  check "range roundtrip" true (roundtrip (P.make ~strategy:(P.Range 64) 8));
  check "garbage rejected" true (P.of_string ~shards:2 "rangefree" = None);
  check "bad stride rejected" true (P.of_string ~shards:2 "range:0" = None)

(* ---------------- the sharded ≡ unsharded oracle ---------------- *)

(* The unsharded reference: its own engine, manager and full (unowned)
   relations over the SAME primary store the group's shard 0 wraps, so
   both sides observe the identical mutation stream. *)
type reference = { r_env : E.env; r_mgr : M.t; r_engine : Engine.t }

let make_reference store =
  let env = env_of store in
  { r_env = env; r_mgr = M.create env; r_engine = Engine.create env }

let register_reference r store path kind dec =
  let a = Core.Asr.create store path kind dec in
  M.register r.r_mgr a;
  Engine.register r.r_engine a;
  a

let all_ranges path =
  let n = Gom.Path.length path in
  List.concat (List.init n (fun i -> List.init (n - i) (fun d -> (i, i + d + 1))))

(* Structural equality IS byte identity here: answers on both sides are
   sort_uniq'd association lists of immutable values. *)
let queries_agree r grp store path =
  List.for_all
    (fun (i, j) ->
      let sources = Gom.Store.extent ~deep:true store (Gom.Path.type_at path i) in
      let expected = Engine.forward_batch ~env:r.r_env r.r_engine path ~i ~j sources in
      let got = G.forward_batch grp path ~i ~j sources in
      let fwd_ok = expected = got in
      let targets = List.sort_uniq V.compare (List.concat_map snd expected) in
      let bwd_ok =
        Engine.backward_batch ~env:r.r_env r.r_engine path ~i ~j ~targets
        = G.backward_batch grp path ~i ~j ~targets
      in
      let single_fwd_ok =
        match sources with
        | [] -> true
        | src :: _ ->
          Engine.forward ~env:r.r_env r.r_engine path ~i ~j src
          = G.forward grp path ~i ~j src
      in
      let single_bwd_ok =
        match targets with
        | [] -> true
        | tgt :: _ ->
          Engine.backward ~env:r.r_env r.r_engine path ~i ~j ~target:tgt
          = G.backward grp path ~i ~j ~target:tgt
      in
      fwd_ok && bwd_ok && single_fwd_ok && single_bwd_ok)
    (all_ranges path)

(* Tree-for-tree: after a full flush the fragments must partition the
   reference extension (disjoint, union-exact) and every physical
   partition tree must union to the reference partition.  Partition
   projections deduplicate, so two shards may legitimately share a
   projected row — the union compares sort_uniq'd. *)
let trees_agree ref_asr grp ~spec_idx =
  let frags = List.init (G.shards grp) (fun k -> List.nth (G.asrs grp k) spec_idx) in
  let rows r = Relation.to_list r in
  let disjoint =
    Core.Asr.cardinal ref_asr
    = List.fold_left (fun acc f -> acc + Core.Asr.cardinal f) 0 frags
  in
  let ext_union =
    List.sort compare (rows (Core.Asr.extension_relation ref_asr))
    = List.sort compare
        (List.concat_map (fun f -> rows (Core.Asr.extension_relation f)) frags)
  in
  let parts_union =
    List.for_all
      (fun p ->
        List.sort_uniq compare (rows (Core.Asr.partition_relation ref_asr p))
        = List.sort_uniq compare
            (List.concat_map (fun f -> rows (Core.Asr.partition_relation f p)) frags))
      (List.init (Core.Asr.partition_count ref_asr) Fun.id)
  in
  disjoint && ext_union && parts_union

(* Random mutation driver (same shape as the maintenance fuzzers):
   assignments, set surgery, deletions — all through the primary
   store, fanning out to the replicas. *)
type op = Insert | Remove | Assign | AssignNull | Delete

let apply_random_op rng store path =
  let nn = Gom.Path.length path in
  let level = Random.State.int rng nn in
  let step = Gom.Path.step path (level + 1) in
  let sources = Gom.Store.extent ~deep:true store step.Gom.Path.domain in
  let targets = Gom.Store.extent ~deep:true store step.Gom.Path.range in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  if sources = [] then ()
  else
    let src = pick sources in
    let op =
      match Random.State.int rng 10 with
      | 0 | 1 | 2 -> Insert
      | 3 | 4 -> Remove
      | 5 | 6 -> Assign
      | 7 -> AssignNull
      | _ -> Delete
    in
    match (op, step.Gom.Path.set_type) with
    | Delete, _ ->
      if List.length targets > 1 then Gom.Store.delete store (pick targets)
    | (Insert | Remove | Assign), Some set_ty -> (
      match Gom.Store.get_attr store src step.Gom.Path.attr with
      | V.Null ->
        let s = Gom.Store.new_object store set_ty in
        Gom.Store.set_attr store src step.Gom.Path.attr (V.Ref s);
        if targets <> [] && Random.State.bool rng then
          Gom.Store.insert_elem store s (V.Ref (pick targets))
      | v -> (
        let s = V.oid_exn v in
        match op with
        | Insert ->
          if targets <> [] then Gom.Store.insert_elem store s (V.Ref (pick targets))
        | Remove -> (
          match Gom.Store.elements store s with
          | [] -> ()
          | elems -> Gom.Store.remove_elem store s (pick elems))
        | Assign | AssignNull | Delete ->
          Gom.Store.set_attr store src step.Gom.Path.attr V.Null))
    | (Insert | Assign), None ->
      if targets <> [] then
        Gom.Store.set_attr store src step.Gom.Path.attr (V.Ref (pick targets))
    | (Remove | AssignNull), None | AssignNull, Some _ ->
      Gom.Store.set_attr store src step.Gom.Path.attr V.Null

let spec_gen =
  QCheck.Gen.(
    let* nn = int_range 1 3 in
    let* counts = list_repeat (nn + 1) (int_range 1 6) in
    let* defined =
      flatten_l
        (List.map (fun c -> int_range 0 c) (List.filteri (fun i _ -> i < nn) counts))
    in
    let* fan = list_repeat nn (int_range 1 3) in
    let* sv = flatten_l (List.map (fun f -> if f > 1 then return true else bool) fan) in
    let* seed = int_range 0 10000 in
    return (Workload.Generator.spec ~seed ~set_valued:sv ~counts ~defined ~fan ()))

let arb_spec = QCheck.make ~print:(fun _ -> "<spec>") spec_gen

let shard_counts = [ 1; 2; 4; 8 ]
let policies = [ M.Immediate; M.Every_k_events 3; M.On_query ]

let prop_sharded_equals_unsharded =
  QCheck.Test.make
    ~name:"sharded router = unsharded engine (shards x jobs x policies)"
    ~count:(iters_env "ASR_SHARD_COUNT" 25)
    QCheck.(
      pair arb_spec
        (pair (int_bound 3)
           (pair small_int (pair (int_bound 3) (pair (int_bound 2) (int_bound 1000))))))
    (fun (spec, (kind_idx, (dec_pick, (shard_pick, (policy_pick, ops_seed))))) ->
      let store, path = Workload.Generator.build spec in
      let kind = List.nth Core.Extension.all kind_idx in
      let m = Gom.Path.arity path - 1 in
      let decs = D.all ~m in
      let dec = List.nth decs (dec_pick mod List.length decs) in
      let shards = List.nth shard_counts shard_pick in
      let jobs = 1 + (ops_seed mod 4) in
      let policy = List.nth policies policy_pick in
      let r = make_reference store in
      let ref_asr = register_reference r store path kind dec in
      let grp = G.create ~jobs ~policy ~placement:(P.make shards) store in
      Fun.protect
        ~finally:(fun () -> G.close grp)
        (fun () ->
          G.register grp ~path ~kind ~dec;
          let rng = Random.State.make [| ops_seed |] in
          for _ = 1 to 10 do
            apply_random_op rng store path
          done;
          (* Queries must agree even with deltas still buffered (the
             engines catch up); then drain and compare the trees. *)
          let q_ok = queries_agree r grp store path in
          ignore (G.flush_all grp : int);
          ignore (M.flush_all r.r_mgr : int);
          q_ok
          && trees_agree ref_asr grp ~spec_idx:0
          && queries_agree r grp store path))

(* The same answer at every shard count and every job count — computed
   on independently built (identical) bases, compared across variants
   structurally, i.e. byte for byte. *)
let test_identical_across_shard_counts () =
  let spec =
    Workload.Generator.spec ~seed:42 ~counts:[ 8; 10; 12 ] ~defined:[ 7; 9 ]
      ~fan:[ 2; 2 ] ()
  in
  let variants = [ (1, 1); (2, 1); (2, 3); (4, 2); (4, 4); (8, 3) ] in
  let answers =
    List.map
      (fun (shards, jobs) ->
        let store, path = Workload.Generator.build spec in
        let m = Gom.Path.arity path - 1 in
        let grp = G.create ~jobs ~placement:(P.make shards) store in
        Fun.protect
          ~finally:(fun () -> G.close grp)
          (fun () ->
            G.register grp ~path ~kind:Core.Extension.Canonical ~dec:(D.binary ~m);
            let rng = Random.State.make [| 7 |] in
            for _ = 1 to 15 do
              apply_random_op rng store path
            done;
            let n = Gom.Path.length path in
            let sources =
              Gom.Store.extent ~deep:true store (Gom.Path.type_at path 0)
            in
            let fwd = G.forward_batch grp path ~i:0 ~j:n sources in
            let targets = List.sort_uniq V.compare (List.concat_map snd fwd) in
            let bwd = G.backward_batch grp path ~i:0 ~j:n ~targets in
            (fwd, bwd)))
      variants
  in
  match answers with
  | [] -> ()
  | first :: rest ->
    List.iteri
      (fun idx a ->
        check
          (Printf.sprintf "variant %d byte-identical to unsharded" (idx + 1))
          true (a = first))
      rest

(* ---------------- router degradation under quarantine -------------- *)

let rec uses_stitch = function
  | Engine.Plan.Stitch _ -> true
  | Engine.Plan.Union ps -> List.exists uses_stitch ps
  | Engine.Plan.Distinct p -> uses_stitch p
  | Engine.Plan.Nav _ | Engine.Plan.Extent_scan _ -> false

let test_quarantine_degrades_one_shard () =
  let spec =
    Workload.Generator.spec ~seed:11 ~counts:[ 10; 14; 18 ] ~defined:[ 9; 12 ]
      ~fan:[ 2; 2 ] ()
  in
  let store, path = Workload.Generator.build spec in
  let m = Gom.Path.arity path - 1 in
  let kind = Core.Extension.Full and dec = D.binary ~m in
  let r = make_reference store in
  ignore (register_reference r store path kind dec : Core.Asr.t);
  let grp = G.create ~placement:(P.make 4) store in
  Fun.protect
    ~finally:(fun () -> G.close grp)
    (fun () ->
      G.register grp ~path ~kind ~dec;
      let n = Gom.Path.length path in
      let victim = 2 in
      let frag = List.hd (G.asrs grp victim) in
      let q = G.quarantine_registry grp victim in
      for p = 0 to Core.Asr.partition_count frag - 1 do
        Integrity.Quarantine.quarantine ~reason:"shard test" ~part:p q frag
      done;
      (* The victim's planner must price the stitch out entirely; a
         healthy shard must still offer it (whether or not it wins on
         cost). *)
      let offers_stitch k =
        List.exists
          (fun (c : Engine.candidate) -> uses_stitch c.Engine.plan)
          (Engine.candidates (G.engine grp k) path ~i:0 ~j:n ~dir:Engine.Plan.Fwd)
      in
      check "victim prices the stitch out" false (offers_stitch victim);
      check "healthy shard still offers the stitch" true (offers_stitch 0);
      let plan_of k =
        (Engine.explain (G.engine grp k) path ~i:0 ~j:n ~dir:Engine.Plan.Fwd)
          .Engine.x_choice.Engine.chosen
      in
      check "victim degrades to navigation" false (uses_stitch (plan_of victim));
      (* Answers stay exact: grouped forward and scattered backward. *)
      let sources = Gom.Store.extent ~deep:true store (Gom.Path.type_at path 0) in
      let fwd_ref = Engine.forward_batch ~env:r.r_env r.r_engine path ~i:0 ~j:n sources in
      check "forward exact under quarantine" true
        (fwd_ref = G.forward_batch grp path ~i:0 ~j:n sources);
      let targets = List.sort_uniq V.compare (List.concat_map snd fwd_ref) in
      check "backward exact under quarantine" true
        (Engine.backward_batch ~env:r.r_env r.r_engine path ~i:0 ~j:n ~targets
        = G.backward_batch grp path ~i:0 ~j:n ~targets);
      (* Degradation is local: only the victim's sheaf records
         health-driven fallbacks. *)
      Array.iteri
        (fun k (s : Storage.Stats.summary) ->
          if k = victim then
            check "victim recorded fallbacks" true (s.Storage.Stats.s_fallbacks > 0)
          else
            check_int
              (Printf.sprintf "shard %d clean" k)
              0 s.Storage.Stats.s_fallbacks)
        (G.shard_summaries grp);
      (* The router's own ledger balances: one grouped batch plus one
         scattered batch were routed, and the merged accountant carries
         both alongside the victim's fallbacks. *)
      let total = G.stats_summary grp in
      check_int "one grouped batch" 1 total.Storage.Stats.s_shard_grouped;
      check_int "one scattered batch" 1 total.Storage.Stats.s_shard_scatter;
      check "merged accountant keeps the fallbacks" true
        (total.Storage.Stats.s_fallbacks > 0))

(* ---------------- per-shard durability ---------------- *)

let fresh_dir () =
  let d = Filename.temp_file "asr-shard-test" "" in
  Sys.remove d;
  Sys.mkdir d 0o700;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let durable_spec =
  Workload.Generator.spec ~seed:23 ~counts:[ 5; 7; 9 ] ~defined:[ 5; 6 ]
    ~fan:[ 2; 1 ] ()

(* The scripted durable workload: register one relation, defer
   maintenance so the final drain logs a mid-flush WAL group, mutate,
   flush.  Deterministic, so every run writes the same log byte
   stream. *)
let run_durable_workload d path =
  G.set_policy (Dur.group d) (M.Every_k_events 4);
  let store = G.primary (Dur.group d) in
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 6 do
    apply_random_op rng store path
  done;
  ignore (Dur.flush_maintenance d : int)

let durable_path_of d =
  match Dur.specs d with
  | spec :: _ ->
    let p, _, _ = Db.spec_components (G.primary (Dur.group d)) spec in
    p
  | [] -> Alcotest.fail "durable group lost its registration"

(* The recovered group must answer exactly like a navigational scan of
   the recovered primary. *)
let recovered_answers_exact d =
  let grp = Dur.group d in
  let store = G.primary grp in
  let path = durable_path_of d in
  let env = env_of store in
  let n = Gom.Path.length path in
  let sources = Gom.Store.extent ~deep:true store (Gom.Path.type_at path 0) in
  List.for_all
    (fun src ->
      vset (E.forward_scan env path ~i:0 ~j:n src)
      = vset (G.forward grp path ~i:0 ~j:n src))
    sources

let test_durable_roundtrip () =
  with_dir (fun dir ->
      let store, path = Workload.Generator.build durable_spec in
      let d =
        Dur.create ~policy:Wal.Sync_always ~placement:(P.make 2) ~dir store
      in
      Dur.register d ~path:(Gom.Path.to_string path) ~kind:Core.Extension.Canonical ();
      run_durable_workload d path;
      let crc_before = Dur.content_crc d in
      check "healthy group agrees" true
        (Array.for_all (fun c -> Int32.equal c crc_before.(0)) crc_before);
      Dur.close d;
      let d' = Dur.open_ ~dir () in
      Fun.protect
        ~finally:(fun () -> Dur.close d')
        (fun () ->
          check_int "both shards reopened" 2 (Array.length (Dur.dbs d'));
          check_int "registration recovered" 1 (List.length (Dur.specs d'));
          let crc = Dur.content_crc d' in
          check "recovered shards agree" true
            (Array.for_all (fun c -> Int32.equal c crc.(0)) crc);
          check "recovered answers exact" true (recovered_answers_exact d')))

(* One run of the workload with a fault armed on shard 1's log; the
   crash must fire.  The dead process's stores are abandoned (the
   armed shard's log is simulated, so nothing leaks); only shard 0's
   real Db and the domain pool are shut down. *)
let crashed_run ~plan dir =
  let fault = Fault.faulty plan in
  let store, path = Workload.Generator.build durable_spec in
  let d =
    Dur.create ~policy:Wal.Sync_always
      ~faults:(fun k -> if k = 1 then Some fault else None)
      ~placement:(P.make 2) ~dir store
  in
  Dur.register d ~path:(Gom.Path.to_string path) ~kind:Core.Extension.Canonical ();
  let crashed =
    match run_durable_workload d path with
    | () -> false
    | exception Fault.Crash -> true
  in
  G.close (Dur.group d);
  Db.close (Dur.dbs d).(0);
  Gom.Txn.clear_hooks (Db.store (Dur.dbs d).(1));
  crashed

let test_crash_sweep_agreement_gate () =
  (* Size the sweep from a crash-free reference run. *)
  let writes =
    with_dir (fun dir ->
        let fault = Fault.real () in
        let store, path = Workload.Generator.build durable_spec in
        let d =
          Dur.create ~policy:Wal.Sync_always
            ~faults:(fun k -> if k = 1 then Some fault else None)
            ~placement:(P.make 2) ~dir store
        in
        Dur.register d ~path:(Gom.Path.to_string path)
          ~kind:Core.Extension.Canonical ();
        run_durable_workload d path;
        let w = Fault.writes fault in
        Dur.close d;
        w)
  in
  check "reference run logged writes on shard 1" true (writes > 0);
  let refusals = ref 0 in
  for c = 1 to writes do
    with_dir (fun dir ->
        let ctx = Printf.sprintf "crash@%d" c in
        let plan = { Fault.crash_at_write = c; survive_bytes = 0; corrupt_bytes = 0 } in
        check (ctx ^ ": crash fired") true (crashed_run ~plan dir);
        (* Recovery: either the lost tail held no store content and the
           gate passes, or the gate must refuse until reconciled. *)
        let d =
          match Dur.open_ ~dir () with
          | d -> d
          | exception Dur.Shard_error _ ->
            incr refusals;
            Dur.open_ ~reconcile:true ~dir ()
        in
        Fun.protect
          ~finally:(fun () -> Dur.close d)
          (fun () ->
            let crc = Dur.content_crc d in
            check (ctx ^ ": generations agree after recovery") true
              (Array.for_all (fun x -> Int32.equal x crc.(0)) crc);
            check (ctx ^ ": recovered answers exact") true
              (recovered_answers_exact d)))
  done;
  (* The gate is not vacuous: losing a synced tail mid-history must
     produce at least one refusal. *)
  check "agreement gate fired during the sweep" true (!refusals > 0)

let suite =
  [
    Alcotest.test_case "placement basics" `Quick test_placement_basics;
    Alcotest.test_case "placement strings" `Quick test_placement_strings;
    Qc.to_alcotest prop_sharded_equals_unsharded;
    Alcotest.test_case "byte-identical across shard and job counts" `Quick
      test_identical_across_shard_counts;
    Alcotest.test_case "quarantine degrades one shard only" `Quick
      test_quarantine_degrades_one_shard;
    Alcotest.test_case "durable shard group roundtrip" `Quick test_durable_roundtrip;
    Alcotest.test_case "crash sweep: agreement gate" `Quick
      test_crash_sweep_agreement_gate;
  ]
