(* Tests for the GOM query language: lexer, parser, typechecker and the
   ASR-aware evaluator, driven by the paper's Queries 1-3. *)

module V = Gom.Value
module R = Workload.Schemas.Robot
module C = Workload.Schemas.Company

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- lexer ---------------- *)

let test_lexer_basic () =
  let toks = Gql.Lexer.tokenize "select r.Name from r in OurRobots" in
  check_int "token count" 9 (List.length toks);
  check "keywords case-insensitive" true
    (Gql.Lexer.tokenize "SELECT x FROM y IN z" = Gql.Lexer.tokenize "select x from y in z")

let test_lexer_literals () =
  (match Gql.Lexer.tokenize "\"Utopia\" 42 12.5 true" with
  | [ Gql.Lexer.STR "Utopia"; Gql.Lexer.INT 42; Gql.Lexer.DEC 12.5; Gql.Lexer.TRUE;
      Gql.Lexer.EOF ] ->
    ()
  | _ -> Alcotest.fail "unexpected tokens");
  match Gql.Lexer.tokenize {|"a\"b\\c"|} with
  | [ Gql.Lexer.STR {|a"b\c|}; Gql.Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "escapes"

let test_lexer_operators () =
  match Gql.Lexer.tokenize "= != <> < <= > >= ( ) , ." with
  | [ Gql.Lexer.EQ; Gql.Lexer.NEQ; Gql.Lexer.NEQ; Gql.Lexer.LT; Gql.Lexer.LE;
      Gql.Lexer.GT; Gql.Lexer.GE; Gql.Lexer.LPAREN; Gql.Lexer.RPAREN; Gql.Lexer.COMMA;
      Gql.Lexer.DOT; Gql.Lexer.EOF ] ->
    ()
  | _ -> Alcotest.fail "operators"

let test_lexer_errors () =
  check "unterminated string" true
    (try
       ignore (Gql.Lexer.tokenize "\"abc");
       false
     with Gql.Lexer.Lex_error _ -> true);
  check "bad char" true
    (try
       ignore (Gql.Lexer.tokenize "a # b");
       false
     with Gql.Lexer.Lex_error _ -> true)

(* ---------------- parser ---------------- *)

let test_parse_query1 () =
  let q =
    Gql.Parser.parse
      {|select r.Name from r in OurRobots
        where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"|}
  in
  check_int "one select" 1 (List.length q.Gql.Ast.select);
  check_int "one binding" 1 (List.length q.Gql.Ast.from);
  (match q.Gql.Ast.where with
  | Gql.Ast.Cmp
      ( Gql.Ast.Eq,
        Gql.Ast.Path { var = "r"; attrs = [ "Arm"; "MountedTool"; "ManufacturedBy"; "Location" ] },
        Gql.Ast.Lit (Gql.Ast.Str "Utopia") ) ->
    ()
  | _ -> Alcotest.fail "where shape")

let test_parse_query2 () =
  let q =
    Gql.Parser.parse
      {|select d.Name from d in Mercedes, b in d.Manufactures.Composition
        where b.Name = "Door"|}
  in
  check_int "two bindings" 2 (List.length q.Gql.Ast.from);
  match List.nth q.Gql.Ast.from 1 with
  | "b", Gql.Ast.Via { var = "d"; attrs = [ "Manufactures"; "Composition" ] } -> ()
  | _ -> Alcotest.fail "via binding"

let test_parse_predicates () =
  let p = Gql.Parser.parse_pred "a.x = 1 and (b.y = 2 or not c.z = 3)" in
  match p with
  | Gql.Ast.And (Gql.Ast.Cmp _, Gql.Ast.Or (Gql.Ast.Cmp _, Gql.Ast.Not (Gql.Ast.Cmp _))) -> ()
  | _ -> Alcotest.fail "precedence"

let test_parse_in () =
  match Gql.Parser.parse_pred "b in d.Manufactures.Composition" with
  | Gql.Ast.In_pred (Gql.Ast.Path { var = "b"; attrs = [] }, { var = "d"; _ }) -> ()
  | _ -> Alcotest.fail "in predicate"

let test_parse_errors () =
  let bad s = try ignore (Gql.Parser.parse s); false with Gql.Parser.Parse_error _ -> true in
  check "missing from" true (bad "select x");
  check "missing select" true (bad "from x in Y");
  check "trailing garbage" true (bad "select x from x in Y where x.a = 1 zzz");
  check "bad binding" true (bad "select x from x Y")

(* ---------------- typechecker ---------------- *)

let robot_env () =
  let b = R.base () in
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) b.R.store in
  (b, (Core.Exec.make b.R.store heap))

let company_env () =
  let b = C.base () in
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) b.C.store in
  (b, (Core.Exec.make b.C.store heap))

let engine_of ?(indexes = []) env =
  let e = Engine.create env in
  List.iter (Engine.register e) indexes;
  e

let stitch_index (c : Engine.choice) =
  match c.Engine.chosen with
  | Engine.Plan.Stitch { index; _ } -> Some index
  | _ -> None

(* Physical comparison: [Asr.t] holds closures, so structural [=] on the
   index would raise. *)
let stitched_through c a =
  match stitch_index c with Some x -> x == a | None -> false

(* A pinned profile big enough that the analytical model always prefers
   a supported plan — the demo bases are so small that the planner may
   (correctly) judge an exhaustive scan cheaper, so tests that must see
   the stitch machinery pin the decision. *)
let favour_index engine path =
  let n = Gom.Path.length path in
  Engine.set_profile engine path
    (Costmodel.Profile.make
       ~c:(List.init (n + 1) (fun _ -> 10_000.))
       ~d:(List.init n (fun _ -> 10_000.))
       ~fan:(List.init n (fun _ -> 1.))
       ())

let test_check_ok () =
  let b, _ = robot_env () in
  let q =
    Gql.Typecheck.check b.R.store
      (Gql.Parser.parse
         {|select r.Name from r in OurRobots where r.Arm.MountedTool.Function = "welding"|})
  in
  (match q.Gql.Typecheck.bindings with
  | [ ("r", Gql.Typecheck.Named_set (_, "ROBOT"), "ROBOT") ] -> ()
  | _ -> Alcotest.fail "binding resolution");
  check_int "select arity" 1 (List.length q.Gql.Typecheck.select)

let test_check_extent_binding () =
  let b, _ = company_env () in
  let q =
    Gql.Typecheck.check b.C.store
      (Gql.Parser.parse {|select p.Name from p in Product|})
  in
  match q.Gql.Typecheck.bindings with
  | [ ("p", Gql.Typecheck.Extent "Product", "Product") ] -> ()
  | _ -> Alcotest.fail "extent binding"

let test_check_errors () =
  let b, _ = company_env () in
  let bad s =
    try
      ignore (Gql.Typecheck.check b.C.store (Gql.Parser.parse s));
      false
    with Gql.Typecheck.Check_error _ -> true
  in
  check "unknown collection" true (bad "select x.Name from x in Nowhere");
  check "unknown attribute" true (bad "select d.Nope from d in Mercedes");
  check "unbound var" true (bad "select d.Name from d in Mercedes where z.Name = \"x\"");
  check "duplicate var" true
    (bad "select d.Name from d in Mercedes, d in Mercedes");
  check "via before binding" true (bad "select b.Name from b in d.Manufactures");
  check "type mismatch" true (bad "select d.Name from d in Mercedes where d.Name = 42")

(* ---------------- evaluation ---------------- *)

let test_query1_eval () =
  let b, env = robot_env () in
  let engine = engine_of env in
  let r =
    Gql.Eval.query ~engine
      {|select r.Name from r in OurRobots
        where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"|}
  in
  check_int "three robots" 3 (List.length r.Gql.Eval.rows);
  check "row content" true (List.mem [ V.Str "R2D2" ] r.Gql.Eval.rows);
  ignore b

let test_query1_with_index () =
  let b, env = robot_env () in
  let path = R.location_path b.R.store in
  let a = Core.Asr.create b.R.store path Core.Extension.Canonical (Core.Decomposition.trivial ~m:4) in
  let engine = engine_of ~indexes:[ a ] env in
  favour_index engine path;
  let r =
    Gql.Eval.query ~engine
      {|select r.Name from r in OurRobots
        where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"|}
  in
  (match r.Gql.Eval.plan with
  | Gql.Eval.Merged_backward { choice; _ } when stitched_through choice a -> ()
  | _ -> Alcotest.failf "expected indexed plan, got %s" (Gql.Eval.plan_to_string r.Gql.Eval.plan));
  check_int "same three robots" 3 (List.length r.Gql.Eval.rows)

let test_query2_eval () =
  let _, env = company_env () in
  let engine = engine_of env in
  let r =
    Gql.Eval.query ~engine
      {|select d.Name from d in Mercedes, b in d.Manufactures.Composition
        where b.Name = "Door"|}
  in
  check "divisions found" true
    (r.Gql.Eval.rows = [ [ V.Str "Auto" ]; [ V.Str "Truck" ] ])

let test_query2_merged_with_index () =
  let b, env = company_env () in
  let path = C.name_path b.C.store in
  let a = Core.Asr.create b.C.store path Core.Extension.Full (Core.Decomposition.binary ~m:5) in
  let engine = engine_of ~indexes:[ a ] env in
  (* The query path is the index path seen from the Division anchor. *)
  let query_path =
    Gom.Path.make (Gom.Store.schema b.C.store) "Division"
      [ "Manufactures"; "Composition"; "Name" ]
  in
  favour_index engine query_path;
  let r =
    Gql.Eval.query ~engine
      {|select d.Name from d in Mercedes, b in d.Manufactures.Composition
        where b.Name = "Door"|}
  in
  (match r.Gql.Eval.plan with
  | Gql.Eval.Merged_backward { choice; path = p; _ } ->
    check "merged full path" true
      (Gom.Path.to_string p = "Division.Manufactures.Composition.Name");
    check "stitched through the full ASR" true (stitched_through choice a)
  | other -> Alcotest.failf "expected merged plan, got %s" (Gql.Eval.plan_to_string other));
  check "same answer as navigation" true
    (r.Gql.Eval.rows = [ [ V.Str "Auto" ]; [ V.Str "Truck" ] ])

let test_subrange_embedding () =
  (* A query anchored mid-path: the planner embeds Product.Composition
     .Name at positions (1,3) of the registered Division path and lets
     equation 35 decide — the full extension supports it, the
     left-complete one does not. *)
  let b, env = company_env () in
  let path = C.name_path b.C.store in
  let full =
    Core.Asr.create b.C.store path Core.Extension.Full (Core.Decomposition.binary ~m:5)
  in
  let left =
    Core.Asr.create b.C.store path Core.Extension.Left_complete
      (Core.Decomposition.binary ~m:5)
  in
  let text =
    {|select p.Name from p in Product, bp in p.Composition where bp.Name = "Pepper"|}
  in
  let query_path =
    Gom.Path.make (Gom.Store.schema b.C.store) "Product" [ "Composition"; "Name" ]
  in
  let full_engine = engine_of ~indexes:[ full ] env in
  favour_index full_engine query_path;
  let with_full = Gql.Eval.query ~engine:full_engine text in
  (match with_full.Gql.Eval.plan with
  | Gql.Eval.Merged_backward
      { choice = { Engine.chosen = Engine.Plan.Stitch { i = 1; j = 3; _ }; _ }; _ } ->
    ()
  | other ->
    Alcotest.failf "expected (1,3) embedding, got %s" (Gql.Eval.plan_to_string other));
  (* The sausage is not reachable from any division; only the full
     extension knows it. *)
  check "sausage found via full" true (with_full.Gql.Eval.rows = [ [ V.Str "Sausage" ] ]);
  let left_engine = engine_of ~indexes:[ left ] env in
  favour_index left_engine query_path;
  let with_left = Gql.Eval.query ~engine:left_engine text in
  (match with_left.Gql.Eval.plan with
  | Gql.Eval.Merged_backward
      { choice = { Engine.chosen = Engine.Plan.Extent_scan _; _ }; _ } ->
    ()
  | other ->
    Alcotest.failf "left cannot serve (1,3): got %s" (Gql.Eval.plan_to_string other));
  check "scan agrees" true (with_left.Gql.Eval.rows = with_full.Gql.Eval.rows)

let test_query3_eval () =
  let _, env = company_env () in
  let engine = engine_of env in
  let r =
    Gql.Eval.query ~engine
      {|select d.Manufactures.Composition.Name from d in Mercedes where d.Name = "Auto"|}
  in
  check "base part names of Auto" true (r.Gql.Eval.rows = [ [ V.Str "Door" ] ])

let test_query3_forward_through_index () =
  (* Select-paths are evaluated through a covering ASR when one is
     registered (the paper's forward queries). *)
  let b, env = company_env () in
  let path = C.name_path b.C.store in
  let a =
    Core.Asr.create b.C.store path Core.Extension.Left_complete
      (Core.Decomposition.trivial ~m:5)
  in
  let text =
    {|select d.Manufactures.Composition.Name from d in Mercedes where d.Name = "Auto"|}
  in
  let plain = Gql.Eval.query ~engine:(engine_of env) text in
  let indexed = Gql.Eval.query ~engine:(engine_of ~indexes:[ a ] env) text in
  check "same rows through the index" true (plain.Gql.Eval.rows = indexed.Gql.Eval.rows);
  (* On a larger base the index saves pages for the select-path too. *)
  let spec =
    Workload.Generator.spec ~seed:12
      ~counts:[ 50; 800; 1600; 3200 ]
      ~defined:[ 50; 750; 1500 ] ~fan:[ 8; 2; 2 ] ()
  in
  let store, gpath = Workload.Generator.build spec in
  let heap = Storage.Heap.create ~size_of:(Workload.Generator.size_of spec) store in
  let genv = (Core.Exec.make store heap) in
  let ga =
    Core.Asr.create store gpath Core.Extension.Left_complete
      (Core.Decomposition.trivial ~m:(Gom.Path.arity gpath - 1))
  in
  let gtext = {|select t.A1.A2.A3 from t in T0 where t.Tag = "t0_0"|} in
  let plain = Gql.Eval.query ~engine:(engine_of genv) gtext in
  let indexed = Gql.Eval.query ~engine:(engine_of ~indexes:[ ga ] genv) gtext in
  check "same rows on generated base" true (plain.Gql.Eval.rows = indexed.Gql.Eval.rows);
  check "index saves forward pages" true
    (indexed.Gql.Eval.pages < plain.Gql.Eval.pages)

let test_in_predicate_eval () =
  let b, env = company_env () in
  let engine = engine_of env in
  let r =
    Gql.Eval.query ~engine
      {|select d.Name from d in Mercedes, p in d.Manufactures
        where p.Name = "MB Trak"|}
  in
  check "only Truck makes MB Trak" true (r.Gql.Eval.rows = [ [ V.Str "Truck" ] ]);
  ignore b

let test_order_by_and_limit () =
  let _, env = company_env () in
  let engine = engine_of env in
  let r =
    Gql.Eval.query ~engine {|select b.Price, b.Name from b in BasePart order by b.Price desc|}
  in
  check "descending by price" true
    (r.Gql.Eval.rows
    = [ [ V.Dec 1205.50; V.Str "Door" ]; [ V.Dec 0.12; V.Str "Pepper" ] ]);
  let r =
    Gql.Eval.query ~engine
      {|select b.Name from b in BasePart order by 1 asc limit 1|}
  in
  check "column reference + limit" true (r.Gql.Eval.rows = [ [ V.Str "Door" ] ]);
  let r = Gql.Eval.query ~engine {|select b.Name from b in BasePart limit 0|} in
  check "limit 0" true (r.Gql.Eval.rows = []);
  (* Errors. *)
  let bad s =
    try ignore (Gql.Eval.query ~engine s); false with
    | Gql.Typecheck.Check_error _ | Gql.Parser.Parse_error _ -> true
  in
  check "order by non-column" true
    (bad {|select b.Name from b in BasePart order by b.Price|});
  check "order by out of range" true
    (bad {|select b.Name from b in BasePart order by 3|});
  check "limit needs integer" true (bad {|select b.Name from b in BasePart limit x|})

let test_order_by_with_indexed_plan () =
  let b, env = company_env () in
  let path = C.name_path b.C.store in
  let a = Core.Asr.create b.C.store path Core.Extension.Full (Core.Decomposition.binary ~m:5) in
  let r =
    Gql.Eval.query ~engine:(engine_of ~indexes:[ a ] env)
      {|select d.Name from d in Mercedes, bp in d.Manufactures.Composition
        where bp.Name = "Door" order by d.Name desc|}
  in
  check "ordered over merged plan" true
    (r.Gql.Eval.rows = [ [ V.Str "Truck" ]; [ V.Str "Auto" ] ])

let test_multi_select () =
  let _, env = company_env () in
  let engine = engine_of env in
  let r =
    Gql.Eval.query ~engine
      {|select d.Name, p.Name from d in Mercedes, p in d.Manufactures|}
  in
  check_int "division x product pairs" 3 (List.length r.Gql.Eval.rows)

let test_comparison_operators () =
  let _, env = company_env () in
  let engine = engine_of env in
  let r =
    Gql.Eval.query ~engine
      {|select b.Name from b in BasePart where b.Price > 1.0|}
  in
  check "expensive parts" true (r.Gql.Eval.rows = [ [ V.Str "Door" ] ]);
  let r =
    Gql.Eval.query ~engine {|select b.Name from b in BasePart where b.Price <= 1.0|}
  in
  check "cheap parts" true (r.Gql.Eval.rows = [ [ V.Str "Pepper" ] ])

let test_indexed_plan_saves_pages () =
  let spec =
    Workload.Generator.spec ~seed:5
      ~counts:[ 300; 600; 1200; 2400 ]
      ~defined:[ 280; 550; 1100 ] ~fan:[ 2; 2; 2 ] ()
  in
  let store, _chain = Workload.Generator.build spec in
  let heap = Storage.Heap.create ~size_of:(Workload.Generator.size_of spec) store in
  let env = (Core.Exec.make store heap) in
  let target =
    match Gom.Store.extent store "T3" with o :: _ -> Gom.Oid.to_int o | [] -> assert false
  in
  ignore target;
  (* Filter on the Tag attribute of the last level. *)
  let full_path =
    Gom.Path.make (Gom.Store.schema store) "T0" [ "A1"; "A2"; "A3"; "Tag" ]
  in
  let a =
    Core.Asr.create store full_path Core.Extension.Full
      (Core.Decomposition.binary ~m:(Gom.Path.arity full_path - 1))
  in
  let text = {|select t from t in T0 where t.A1.A2.A3.Tag = "t3_7"|} in
  let without = Gql.Eval.query ~engine:(engine_of env) text in
  let with_index = Gql.Eval.query ~engine:(engine_of ~indexes:[ a ] env) text in
  check "same rows" true (without.Gql.Eval.rows = with_index.Gql.Eval.rows);
  check "indexed plan chosen" true
    (match with_index.Gql.Eval.plan with
    | Gql.Eval.Merged_backward { choice; _ } -> stitched_through choice a
    | _ -> false);
  check "pages saved" true (with_index.Gql.Eval.pages * 3 < without.Gql.Eval.pages)

(* ---------------- planner v2: residuals, index choice, cost veto ---- *)

let gen_env () =
  let spec =
    Workload.Generator.spec ~seed:5
      ~counts:[ 300; 600; 1200; 2400 ]
      ~defined:[ 280; 550; 1100 ] ~fan:[ 2; 2; 2 ] ()
  in
  let store, _ = Workload.Generator.build spec in
  let heap = Storage.Heap.create ~size_of:(Workload.Generator.size_of spec) store in
  let env = (Core.Exec.make store heap) in
  let tag_path = Gom.Path.make (Gom.Store.schema store) "T0" [ "A1"; "A2"; "A3"; "Tag" ] in
  (store, env, tag_path)

let test_residual_conjunct () =
  let store, env, tag_path = gen_env () in
  let a =
    Core.Asr.create store tag_path Core.Extension.Full
      (Core.Decomposition.binary ~m:(Gom.Path.arity tag_path - 1))
  in
  let text =
    {|select t from t in T0 where t.A1.A2.A3.Tag = "t3_7" and t.Tag != "t0_0"|}
  in
  let with_index = Gql.Eval.query ~engine:(engine_of ~indexes:[ a ] env) text in
  (match with_index.Gql.Eval.plan with
  | Gql.Eval.Merged_backward { choice; residual; _ } ->
    check "stitched through the ASR" true (stitched_through choice a);
    check "residual retained" true (residual <> Gql.Typecheck.TTrue)
  | other -> Alcotest.failf "expected merged plan, got %s" (Gql.Eval.plan_to_string other));
  let without = Gql.Eval.query ~engine:(engine_of env) text in
  check "residual answers agree" true (without.Gql.Eval.rows = with_index.Gql.Eval.rows)

let test_residual_on_other_var_blocks_merge () =
  let store, env, tag_path = gen_env () in
  let a =
    Core.Asr.create store tag_path Core.Extension.Full
      (Core.Decomposition.binary ~m:(Gom.Path.arity tag_path - 1))
  in
  (* The second conjunct mentions the chained variable x, so the merged
     plan would lose it: the planner must fall back. *)
  let text =
    {|select t from t in T0, x in t.A1 where x.A2.A3.Tag = "t3_7" and x.Tag != "t1_0"|}
  in
  let r = Gql.Eval.query ~engine:(engine_of ~indexes:[ a ] env) text in
  check "nested loop" true
    (match r.Gql.Eval.plan with Gql.Eval.Nested_loop -> true | _ -> false)

let test_planner_picks_smaller_index () =
  let store, env, tag_path = gen_env () in
  let m = Gom.Path.arity tag_path - 1 in
  (* full holds many more tuples than canonical. *)
  let big = Core.Asr.create store tag_path Core.Extension.Full (Core.Decomposition.binary ~m) in
  let small =
    Core.Asr.create store tag_path Core.Extension.Canonical (Core.Decomposition.trivial ~m)
  in
  let q =
    Gql.Typecheck.check store
      (Gql.Parser.parse {|select t from t in T0 where t.A1.A2.A3.Tag = "t3_7"|})
  in
  match Gql.Eval.plan ~engine:(engine_of ~indexes:[ big; small ] env) q with
  | Gql.Eval.Merged_backward { choice; _ } -> (
    match stitch_index choice with
    | Some chosen -> check "cheapest index chosen" true (chosen == small)
    | None ->
      Alcotest.failf "expected a stitch, got %s"
        (Engine.Plan.to_string choice.Engine.chosen))
  | other -> Alcotest.failf "expected merged plan, got %s" (Gql.Eval.plan_to_string other)

let test_cost_based_veto () =
  let store, env, tag_path = gen_env () in
  let m = Gom.Path.arity tag_path - 1 in
  let index =
    Core.Asr.create store tag_path Core.Extension.Full (Core.Decomposition.trivial ~m)
  in
  let q =
    Gql.Typecheck.check store
      (Gql.Parser.parse {|select t from t in T0 where t.A1.A2.A3.Tag = "t3_7"|})
  in
  (* A profile where the non-decomposed full relation loses to the scan
     (the figure 8 situation: all pages of the single partition must be
     inspected for a backward query keyed on the last column... here the
     bwd tree covers it, so instead fabricate a profile whose predicted
     supported cost exceeds the scan). *)
  let losing_profile =
    Costmodel.Profile.make
      ~c:[ 10.; 10.; 10.; 10.; 10. ]
      ~d:[ 10.; 10.; 10.; 10. ]
      ~fan:[ 100.; 100.; 100.; 100. ]
      ~sizes:[ 4000.; 4000.; 4000.; 4000.; 4000. ]
      ()
  in
  let engine = engine_of ~indexes:[ index ] env in
  Engine.set_profile engine tag_path losing_profile;
  (match Gql.Eval.plan ~engine q with
  | Gql.Eval.Merged_backward { choice; _ } ->
    check "index vetoed when model says scan wins" true
      (Option.is_none (stitch_index choice)
      || Costmodel.Query_cost.q losing_profile Core.Extension.Full
           (Core.Decomposition.trivial ~m:4) Costmodel.Query_cost.Bw 0 4
         <= Costmodel.Query_cost.qnas losing_profile Costmodel.Query_cost.Bw 0 4)
  | _ -> Alcotest.fail "expected merged plan");
  (* And with a profile that favours the index, it is kept: pinning a
     new profile bumps the engine generation, so the cached losing plan
     is invalidated and the query replans. *)
  let winning_profile = Workload.Profiler.profile_of_base store tag_path in
  Engine.set_profile engine tag_path winning_profile;
  match Gql.Eval.plan ~engine q with
  | Gql.Eval.Merged_backward { choice; _ } when stitched_through choice index -> ()
  | _ -> Alcotest.fail "index should survive a favourable profile"

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basic;
    Alcotest.test_case "residual conjunct" `Quick test_residual_conjunct;
    Alcotest.test_case "residual on chained var blocks merge" `Quick
      test_residual_on_other_var_blocks_merge;
    Alcotest.test_case "planner picks smaller index" `Quick test_planner_picks_smaller_index;
    Alcotest.test_case "cost-based veto" `Quick test_cost_based_veto;
    Alcotest.test_case "lexer literals" `Quick test_lexer_literals;
    Alcotest.test_case "lexer operators" `Quick test_lexer_operators;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parse Query 1" `Quick test_parse_query1;
    Alcotest.test_case "parse Query 2" `Quick test_parse_query2;
    Alcotest.test_case "predicate precedence" `Quick test_parse_predicates;
    Alcotest.test_case "parse in-predicate" `Quick test_parse_in;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "typecheck ok" `Quick test_check_ok;
    Alcotest.test_case "typecheck extent binding" `Quick test_check_extent_binding;
    Alcotest.test_case "typecheck errors" `Quick test_check_errors;
    Alcotest.test_case "Query 1 evaluation" `Quick test_query1_eval;
    Alcotest.test_case "Query 1 with index" `Quick test_query1_with_index;
    Alcotest.test_case "Query 2 evaluation" `Quick test_query2_eval;
    Alcotest.test_case "Query 2 merged + indexed" `Quick test_query2_merged_with_index;
    Alcotest.test_case "sub-range embedding" `Quick test_subrange_embedding;
    Alcotest.test_case "Query 3 evaluation" `Quick test_query3_eval;
    Alcotest.test_case "Query 3 forward through index" `Quick test_query3_forward_through_index;
    Alcotest.test_case "filter on intermediate level" `Quick test_in_predicate_eval;
    Alcotest.test_case "order by and limit" `Quick test_order_by_and_limit;
    Alcotest.test_case "order by over indexed plan" `Quick test_order_by_with_indexed_plan;
    Alcotest.test_case "multi-column select" `Quick test_multi_select;
    Alcotest.test_case "comparison operators" `Quick test_comparison_operators;
    Alcotest.test_case "indexed plan saves pages" `Quick test_indexed_plan_saves_pages;
  ]
