(* Tests for Gom.Txn: rollback must restore the object base exactly and
   keep registered access support relations consistent throughout. *)

module V = Gom.Value
module C = Workload.Schemas.Company

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let snapshot store path kind = Core.Extension.compute store path kind

let test_commit_keeps_changes () =
  let b = C.base () in
  let t = Gom.Txn.start b.C.store in
  Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "Hatch");
  check "active" true (Gom.Txn.active b.C.store);
  Gom.Txn.commit t;
  check "inactive after commit" false (Gom.Txn.active b.C.store);
  check "change kept" true
    (V.equal (Gom.Store.get_attr b.C.store b.C.door "Name") (V.Str "Hatch"))

let test_rollback_attr () =
  let b = C.base () in
  let t = Gom.Txn.start b.C.store in
  Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "Hatch");
  Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "Lid");
  Gom.Txn.rollback t;
  check "attr restored" true
    (V.equal (Gom.Store.get_attr b.C.store b.C.door "Name") (V.Str "Door"))

let test_rollback_set_ops () =
  let b = C.base () in
  let sec_parts = V.oid_exn (Gom.Store.get_attr b.C.store b.C.sec560 "Composition") in
  let before = Gom.Store.elements b.C.store sec_parts in
  let t = Gom.Txn.start b.C.store in
  Gom.Store.insert_elem b.C.store sec_parts (V.Ref b.C.pepper);
  Gom.Store.remove_elem b.C.store sec_parts (V.Ref b.C.door);
  Gom.Txn.rollback t;
  check "set restored" true (Gom.Store.elements b.C.store sec_parts = before)

let test_rollback_creation () =
  let b = C.base () in
  let count_before = Gom.Store.count b.C.store "BasePart" in
  let t = Gom.Txn.start b.C.store in
  let nut = Gom.Store.new_object b.C.store "BasePart" in
  Gom.Store.set_attr b.C.store nut "Name" (V.Str "Nut");
  let sec_parts = V.oid_exn (Gom.Store.get_attr b.C.store b.C.sec560 "Composition") in
  Gom.Store.insert_elem b.C.store sec_parts (V.Ref nut);
  Gom.Txn.rollback t;
  check "created object gone" false (Gom.Store.mem b.C.store nut);
  check_int "extent restored" count_before (Gom.Store.count b.C.store "BasePart");
  check "set no longer references it" true
    (not (List.mem (V.Ref nut) (Gom.Store.elements b.C.store sec_parts)))

let test_rollback_deletion () =
  let b = C.base () in
  let path = C.name_path b.C.store in
  let before = snapshot b.C.store path Core.Extension.Full in
  let t = Gom.Txn.start b.C.store in
  Gom.Store.delete b.C.store b.C.sec560;
  check "deleted inside txn" false (Gom.Store.mem b.C.store b.C.sec560);
  Gom.Txn.rollback t;
  check "object resurrected under its oid" true (Gom.Store.mem b.C.store b.C.sec560);
  check "name restored" true
    (V.equal (Gom.Store.get_attr b.C.store b.C.sec560 "Name") (V.Str "560 SEC"));
  (* All inbound references (from both divisions' ProdSETs) are back. *)
  check "object graph identical" true
    (Relation.equal before (snapshot b.C.store path Core.Extension.Full))

let test_rollback_keeps_asr_consistent () =
  List.iter
    (fun kind ->
      let b = C.base () in
      let path = C.name_path b.C.store in
      let heap = Storage.Heap.create ~size_of:(fun _ -> 100) b.C.store in
      let mgr = Core.Maintenance.create (Core.Exec.make b.C.store heap) in
      let a = Core.Asr.create b.C.store path kind (Core.Decomposition.binary ~m:5) in
      Core.Maintenance.register mgr a;
      let before = Core.Asr.extension_relation a in
      let t = Gom.Txn.start b.C.store in
      Gom.Store.delete b.C.store b.C.sec560;
      let parts = Gom.Store.new_object b.C.store "BasePartSET" in
      Gom.Store.insert_elem b.C.store parts (V.Ref b.C.pepper);
      Gom.Store.set_attr b.C.store b.C.mb_trak "Composition" (V.Ref parts);
      Gom.Txn.rollback t;
      check
        (Core.Extension.name kind ^ ": ASR identical after rollback")
        true
        (Relation.equal before (Core.Asr.extension_relation a));
      check
        (Core.Extension.name kind ^ ": ASR matches scratch")
        true
        (Relation.equal
           (snapshot b.C.store path kind)
           (Core.Asr.extension_relation a)))
    Core.Extension.all

let test_rollback_asr_byte_identical () =
  (* Stronger than relation equality: the rendered ASR — partition
     layout included — must come back byte-for-byte. *)
  let b = C.base () in
  let path = C.name_path b.C.store in
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) b.C.store in
  let mgr = Core.Maintenance.create (Core.Exec.make b.C.store heap) in
  let a = Core.Asr.create b.C.store path Core.Extension.Full (Core.Decomposition.binary ~m:5) in
  Core.Maintenance.register mgr a;
  let render () = Format.asprintf "%a" Relation.pp (Core.Asr.extension_relation a) in
  let before = render () in
  let t = Gom.Txn.start b.C.store in
  Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "Hatch");
  Gom.Store.delete b.C.store b.C.sec560;
  Gom.Txn.rollback t;
  Alcotest.(check string) "rendered ASR byte-identical after rollback" before (render ())

let test_failing_start_hook_releases_store () =
  let b = C.base () in
  Gom.Txn.set_hooks b.C.store
    {
      Gom.Txn.on_start = (fun () -> failwith "wal gone");
      Gom.Txn.on_commit = (fun () -> ());
      Gom.Txn.on_rollback = (fun () -> ());
    };
  check "start propagates hook failure" true
    (try ignore (Gom.Txn.start b.C.store); false with Failure _ -> true);
  check "store not left active" false (Gom.Txn.active b.C.store);
  Gom.Txn.clear_hooks b.C.store;
  (* The store is usable again once the hook is gone. *)
  let t = Gom.Txn.start b.C.store in
  Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "Hatch");
  Gom.Txn.commit t;
  check "later transaction commits" true
    (V.equal (Gom.Store.get_attr b.C.store b.C.door "Name") (V.Str "Hatch"))

let test_failing_listener_mid_undo_releases_store () =
  let b = C.base () in
  let t = Gom.Txn.start b.C.store in
  Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "Hatch");
  Gom.Store.set_attr b.C.store b.C.door "Price" (V.Dec 1.0);
  (* A listener (e.g. a broken maintenance client) that blows up on the
     first compensation event of the rollback. *)
  let sub =
    Gom.Store.subscribe b.C.store (fun _ -> failwith "listener boom")
  in
  check "rollback propagates listener failure" true
    (try Gom.Txn.rollback t; false with Failure _ -> true);
  Gom.Store.unsubscribe b.C.store sub;
  check "store released despite mid-undo failure" false (Gom.Txn.active b.C.store);
  check "finished transaction cannot be reused" true
    (try Gom.Txn.rollback t; false with Gom.Txn.Txn_error _ -> true);
  (* The store accepts a fresh transaction afterwards. *)
  let t2 = Gom.Txn.start b.C.store in
  Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "Lid");
  Gom.Txn.commit t2;
  check "fresh transaction works" true
    (V.equal (Gom.Store.get_attr b.C.store b.C.door "Name") (V.Str "Lid"))

let test_abandon () =
  let b = C.base () in
  let t = Gom.Txn.start b.C.store in
  Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "Hatch");
  Gom.Txn.abandon t;
  check "abandon releases the store" false (Gom.Txn.active b.C.store);
  (* Unlike rollback, abandon leaves the mutation in place (the caller
     is simulating a dead process, not undoing work). *)
  check "mutation left as-is" true
    (V.equal (Gom.Store.get_attr b.C.store b.C.door "Name") (V.Str "Hatch"));
  Gom.Txn.abandon t;
  check "abandon idempotent" false (Gom.Txn.active b.C.store)

let test_no_nesting () =
  let b = C.base () in
  let t = Gom.Txn.start b.C.store in
  check "nested start refused" true
    (try ignore (Gom.Txn.start b.C.store); false with Gom.Txn.Txn_error _ -> true);
  Gom.Txn.commit t;
  (* A new transaction may start after the previous one finished. *)
  let t2 = Gom.Txn.start b.C.store in
  Gom.Txn.rollback t2;
  check "double finish refused" true
    (try Gom.Txn.rollback t2; false with Gom.Txn.Txn_error _ -> true)

let test_with_txn () =
  let b = C.base () in
  let r =
    Gom.Txn.with_txn b.C.store (fun () ->
        Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "Hatch");
        42)
  in
  check "success commits" true (r = Ok 42);
  check "change kept" true
    (V.equal (Gom.Store.get_attr b.C.store b.C.door "Name") (V.Str "Hatch"));
  let r =
    Gom.Txn.with_txn b.C.store (fun () ->
        Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "Broken");
        failwith "boom")
  in
  check "failure rolls back" true (match r with Error (Failure _) -> true | _ -> false);
  check "change undone" true
    (V.equal (Gom.Store.get_attr b.C.store b.C.door "Name") (V.Str "Hatch"))

let test_event_count () =
  let b = C.base () in
  let t = Gom.Txn.start b.C.store in
  check_int "empty log" 0 (Gom.Txn.events_logged t);
  Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "X");
  Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "X") (* no-op *);
  check_int "one event" 1 (Gom.Txn.events_logged t);
  Gom.Txn.rollback t

let suite =
  [
    Alcotest.test_case "commit keeps changes" `Quick test_commit_keeps_changes;
    Alcotest.test_case "rollback attributes" `Quick test_rollback_attr;
    Alcotest.test_case "rollback set operations" `Quick test_rollback_set_ops;
    Alcotest.test_case "rollback creation" `Quick test_rollback_creation;
    Alcotest.test_case "rollback deletion (resurrection)" `Quick test_rollback_deletion;
    Alcotest.test_case "rollback keeps ASRs consistent" `Quick test_rollback_keeps_asr_consistent;
    Alcotest.test_case "rollback leaves ASR byte-identical" `Quick test_rollback_asr_byte_identical;
    Alcotest.test_case "failing start hook releases store" `Quick test_failing_start_hook_releases_store;
    Alcotest.test_case "failing listener mid-undo releases store" `Quick test_failing_listener_mid_undo_releases_store;
    Alcotest.test_case "abandon" `Quick test_abandon;
    Alcotest.test_case "no nesting" `Quick test_no_nesting;
    Alcotest.test_case "with_txn" `Quick test_with_txn;
    Alcotest.test_case "event accounting" `Quick test_event_count;
  ]
