(* Tests for Core.Decomposition, including the losslessness theorem
   (Theorem 3.9) as a randomised property over generated object bases. *)

module D = Core.Decomposition

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_make_validation () =
  let bad l = try ignore (D.make ~m:5 l); false with Invalid_argument _ -> true in
  check "must start at 0" true (bad [ 1; 5 ]);
  check "must end at m" true (bad [ 0; 4 ]);
  check "strictly increasing" true (bad [ 0; 3; 3; 5 ]);
  check "ok" true (D.boundaries (D.make ~m:5 [ 0; 3; 5 ]) = [ 0; 3; 5 ])

let test_trivial_binary () =
  check "trivial" true (D.boundaries (D.trivial ~m:4) = [ 0; 4 ]);
  check "binary" true (D.boundaries (D.binary ~m:4) = [ 0; 1; 2; 3; 4 ]);
  check "binary is_binary" true (D.is_binary (D.binary ~m:4));
  check "trivial not binary" false (D.is_binary (D.trivial ~m:4))

let test_all_count () =
  check_int "2^(m-1) decompositions" 16 (List.length (D.all ~m:5));
  check_int "m=1 single" 1 (List.length (D.all ~m:1));
  (* All distinct. *)
  let l = List.map D.to_string (D.all ~m:5) in
  check_int "all distinct" 16 (List.length (List.sort_uniq compare l))

let test_partitions () =
  let d = D.make ~m:5 [ 0; 3; 4; 5 ] in
  check "partitions" true (D.partitions d = [ (0, 3); (3, 4); (4, 5) ]);
  check_int "count" 3 (D.partition_count d)

let test_covering () =
  let d = D.make ~m:5 [ 0; 3; 5 ] in
  check "interior" true (D.covering d 1 = (0, 3));
  check "boundary prefers start" true (D.covering d 3 = (3, 5));
  check "last column" true (D.covering d 5 = (3, 5))

let test_string_roundtrip () =
  let d = D.make ~m:5 [ 0; 3; 5 ] in
  Alcotest.(check string) "to_string" "(0,3,5)" (D.to_string d);
  check "roundtrip" true (D.equal d (D.of_string ~m:5 "(0,3,5)"));
  check "roundtrip bare" true (D.equal d (D.of_string ~m:5 "0, 3, 5"))

let test_project_company () =
  let b = Workload.Schemas.Company.base () in
  let path = Workload.Schemas.Company.name_path b.Workload.Schemas.Company.store in
  let ext =
    Core.Extension.compute b.Workload.Schemas.Company.store path Core.Extension.Canonical
  in
  let parts = D.split ext (D.binary ~m:5) in
  check_int "five binary partitions" 5 (List.length parts);
  List.iter (fun p -> check_int "binary width" 2 (Relation.width p)) parts;
  (* Both complete paths share the (sec560 -> sec_parts) hop: the
     partition projection deduplicates. *)
  let p23 = List.nth parts 2 in
  check_int "shared hop stored once" 1 (Relation.cardinal p23)

(* ---- Theorem 3.9: every decomposition of every extension is lossless
   (reconstruction by null-equality join over the shared columns). ---- *)

let lossless_on_store store path kind dec =
  let ext = Core.Extension.compute store path kind in
  let parts = D.split ext dec in
  let rejoined = Relation.reconstruct parts in
  Relation.equal ext rejoined

let test_lossless_company_all () =
  let b = Workload.Schemas.Company.base () in
  let store = b.Workload.Schemas.Company.store in
  let path = Workload.Schemas.Company.name_path store in
  List.iter
    (fun kind ->
      List.iter
        (fun dec ->
          check
            (Printf.sprintf "lossless %s %s" (Core.Extension.name kind) (D.to_string dec))
            true
            (lossless_on_store store path kind dec))
        (D.all ~m:5))
    Core.Extension.all

let spec_gen =
  (* Small random chain bases: n in 1..3, counts in 1..6. *)
  QCheck.Gen.(
    let* nn = int_range 1 3 in
    let* counts = list_repeat (nn + 1) (int_range 1 6) in
    let* defined = flatten_l (List.map (fun c -> int_range 0 c) (List.filteri (fun i _ -> i < nn) counts)) in
    let* fan = list_repeat nn (int_range 1 3) in
    let* sv =
      flatten_l (List.map (fun f -> if f > 1 then return true else bool) fan)
    in
    let* seed = int_range 0 10000 in
    return (Workload.Generator.spec ~seed ~set_valued:sv ~counts ~defined ~fan ()))

let arb_spec = QCheck.make ~print:(fun _ -> "<spec>") spec_gen

let prop_lossless =
  QCheck.Test.make ~name:"Theorem 3.9: decompositions are lossless" ~count:120
    QCheck.(pair arb_spec (pair (int_bound 3) small_int))
    (fun (spec, (kind_idx, dec_pick)) ->
      let store, path = Workload.Generator.build spec in
      let kind = List.nth Core.Extension.all kind_idx in
      let m = Gom.Path.arity path - 1 in
      let decs = D.all ~m in
      let dec = List.nth decs (dec_pick mod List.length decs) in
      lossless_on_store store path kind dec)

(* ---- Theorem 3.9, horizontally: the shard placement's fragments
   partition the extension, and each fragment still decomposes and
   reconstructs losslessly.  (Closure argument: any tuple the
   null-equality join of a fragment's partitions can assemble is a
   valid path instantiation — hence in the full extension — and shares
   its leftmost non-NULL column with a fragment tuple, hence has the
   same owner and was in the fragment all along.) ---- *)

let placement_lossless_on_store store path kind dec ~shards =
  let ext = Core.Extension.compute store path kind in
  let pl = Shard.Placement.make shards in
  let frags = Array.to_list (Shard.Placement.split pl ext) in
  let disjoint =
    Relation.cardinal ext
    = List.fold_left (fun acc f -> acc + Relation.cardinal f) 0 frags
  in
  let covers =
    Relation.equal ext
      (List.fold_left Relation.union (Relation.empty (Relation.width ext)) frags)
  in
  let owned =
    List.for_all
      (fun (k, f) ->
        List.for_all
          (Shard.Placement.owner_pred pl k)
          (Relation.to_list f))
      (List.mapi (fun k f -> (k, f)) frags)
  in
  let lossless =
    List.for_all
      (fun f -> Relation.equal f (Relation.reconstruct (D.split f dec)))
      frags
  in
  disjoint && covers && owned && lossless

let test_placement_lossless_company () =
  let b = Workload.Schemas.Company.base () in
  let store = b.Workload.Schemas.Company.store in
  let path = Workload.Schemas.Company.name_path store in
  List.iter
    (fun kind ->
      List.iter
        (fun shards ->
          check
            (Printf.sprintf "placement lossless %s x%d"
               (Core.Extension.name kind) shards)
            true
            (placement_lossless_on_store store path kind (D.binary ~m:5) ~shards))
        [ 1; 2; 4; 8 ])
    Core.Extension.all

let prop_placement_lossless =
  QCheck.Test.make
    ~name:"Thm 3.9 horizontally: shard fragments partition and reconstruct"
    ~count:80
    QCheck.(pair arb_spec (pair (int_bound 3) (pair small_int (int_bound 3))))
    (fun (spec, (kind_idx, (dec_pick, shard_pick))) ->
      let store, path = Workload.Generator.build spec in
      let kind = List.nth Core.Extension.all kind_idx in
      let m = Gom.Path.arity path - 1 in
      let decs = D.all ~m in
      let dec = List.nth decs (dec_pick mod List.length decs) in
      let shards = List.nth [ 1; 2; 4; 8 ] shard_pick in
      placement_lossless_on_store store path kind dec ~shards)

let prop_contiguous =
  QCheck.Test.make
    ~name:"extension tuples have contiguous defined spans" ~count:120
    QCheck.(pair arb_spec (int_bound 3))
    (fun (spec, kind_idx) ->
      let store, path = Workload.Generator.build spec in
      let kind = List.nth Core.Extension.all kind_idx in
      let ext = Core.Extension.compute store path kind in
      List.for_all Relation.Tuple.contiguous (Relation.to_list ext))

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "trivial and binary" `Quick test_trivial_binary;
    Alcotest.test_case "all decompositions" `Quick test_all_count;
    Alcotest.test_case "partitions" `Quick test_partitions;
    Alcotest.test_case "covering" `Quick test_covering;
    Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
    Alcotest.test_case "company projections" `Quick test_project_company;
    Alcotest.test_case "losslessness on the paper base" `Quick test_lossless_company_all;
    Alcotest.test_case "placement losslessness on the paper base" `Quick
      test_placement_lossless_company;
    Qc.to_alcotest prop_lossless;
    Qc.to_alcotest prop_placement_lossless;
    Qc.to_alcotest prop_contiguous;
  ]
