(* Tests for Core.Aux_rel and Core.Extension against the paper's
   worked example (Figure 2 and the tables of section 3). *)

module V = Gom.Value
module C = Workload.Schemas.Company

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let r o = V.Ref o
let t l = Array.of_list l

let with_base f =
  let b = C.base () in
  let path = C.name_path b.C.store in
  f b path

(* The ProdSET / BasePartSET instances reached from an object. *)
let set_of store o attr = V.oid_exn (Gom.Store.get_attr store o attr)

let test_aux_count_and_widths () =
  with_base (fun _b path ->
      check_int "n aux relations" 3 (Core.Aux_rel.count path);
      check_int "E0 ternary" 3 (Core.Aux_rel.width path 0);
      check_int "E1 ternary" 3 (Core.Aux_rel.width path 1);
      check_int "E2 binary" 2 (Core.Aux_rel.width path 2);
      check "spans" true
        (Core.Aux_rel.column_span path 0 = (0, 2)
        && Core.Aux_rel.column_span path 1 = (2, 4)
        && Core.Aux_rel.column_span path 2 = (4, 5)))

let test_aux_contents () =
  with_base (fun b path ->
      let store = b.C.store in
      let e0 = Core.Aux_rel.build_one store path 0 in
      let auto_ps = set_of store b.C.auto "Manufactures" in
      let truck_ps = set_of store b.C.truck "Manufactures" in
      check_int "E0 rows" 3 (Relation.cardinal e0);
      check "auto row" true (Relation.mem e0 (t [ r b.C.auto; r auto_ps; r b.C.sec560 ]));
      check "truck rows" true
        (Relation.mem e0 (t [ r b.C.truck; r truck_ps; r b.C.sec560 ])
        && Relation.mem e0 (t [ r b.C.truck; r truck_ps; r b.C.mb_trak ]));
      let e1 = Core.Aux_rel.build_one store path 1 in
      check_int "E1 rows (mb_trak absent: NULL attr)" 2 (Relation.cardinal e1);
      let e2 = Core.Aux_rel.build_one store path 2 in
      check "E2 has Door" true
        (Relation.mem e2 (t [ r b.C.door; V.Str "Door" ]));
      check "E2 has Pepper" true
        (Relation.mem e2 (t [ r b.C.pepper; V.Str "Pepper" ])))

let complete_rows b =
  let store = b.C.store in
  let auto_ps = set_of store b.C.auto "Manufactures" in
  let truck_ps = set_of store b.C.truck "Manufactures" in
  let sec_parts = set_of store b.C.sec560 "Composition" in
  [
    t [ r b.C.auto; r auto_ps; r b.C.sec560; r sec_parts; r b.C.door; V.Str "Door" ];
    t [ r b.C.truck; r truck_ps; r b.C.sec560; r sec_parts; r b.C.door; V.Str "Door" ];
  ]

let truncated_truck_row b =
  let store = b.C.store in
  let truck_ps = set_of store b.C.truck "Manufactures" in
  t [ r b.C.truck; r truck_ps; r b.C.mb_trak; V.Null; V.Null; V.Null ]

let sausage_row b =
  let store = b.C.store in
  let sausage_parts = set_of store b.C.sausage "Composition" in
  t [ V.Null; V.Null; r b.C.sausage; r sausage_parts; r b.C.pepper; V.Str "Pepper" ]

let test_canonical () =
  with_base (fun b path ->
      let e = Core.Extension.compute b.C.store path Core.Extension.Canonical in
      check_int "only complete paths" 2 (Relation.cardinal e);
      List.iter (fun row -> check "complete row present" true (Relation.mem e row))
        (complete_rows b))

let test_left_complete () =
  with_base (fun b path ->
      let e = Core.Extension.compute b.C.store path Core.Extension.Left_complete in
      check_int "complete + truck/mbtrak" 3 (Relation.cardinal e);
      check "truncated truck row" true (Relation.mem e (truncated_truck_row b));
      check "sausage absent" false (Relation.mem e (sausage_row b)))

let test_right_complete () =
  with_base (fun b path ->
      let e = Core.Extension.compute b.C.store path Core.Extension.Right_complete in
      check_int "complete + sausage" 3 (Relation.cardinal e);
      check "sausage row" true (Relation.mem e (sausage_row b));
      check "truck truncated absent" false (Relation.mem e (truncated_truck_row b)))

let test_full () =
  with_base (fun b path ->
      let e = Core.Extension.compute b.C.store path Core.Extension.Full in
      check_int "all maximal partial paths" 4 (Relation.cardinal e);
      check "truck truncated" true (Relation.mem e (truncated_truck_row b));
      check "sausage" true (Relation.mem e (sausage_row b)))

let test_subset_ordering () =
  (* can <= left <= full and can <= right <= full, on any base. *)
  with_base (fun b path ->
      let compute k = Core.Extension.compute b.C.store path k in
      let can = compute Core.Extension.Canonical in
      let left = compute Core.Extension.Left_complete in
      let right = compute Core.Extension.Right_complete in
      let full = compute Core.Extension.Full in
      check "can <= left" true (Relation.subset can left);
      check "can <= right" true (Relation.subset can right);
      check "left <= full" true (Relation.subset left full);
      check "right <= full" true (Relation.subset right full))

let test_empty_set_marker_last_aux () =
  (* A product with an empty Composition: the (product, set, NULL)
     marker is terminal for the 2-step path and must survive even in the
     canonical extension when the prefix is complete. *)
  let b = C.base () in
  let store = b.C.store in
  let empty_set = Gom.Store.new_object store "BasePartSET" in
  Gom.Store.set_attr store b.C.mb_trak "Composition" (V.Ref empty_set);
  let path2 = Gom.Path.make (Gom.Store.schema store) "Division" [ "Manufactures"; "Composition" ] in
  let can = Core.Extension.compute store path2 Core.Extension.Canonical in
  let truck_ps = set_of store b.C.truck "Manufactures" in
  check "marker row in canonical" true
    (Relation.mem can (t [ r b.C.truck; r truck_ps; r b.C.mb_trak; r empty_set; V.Null ]))

let test_empty_set_marker_mid_path () =
  (* The same empty set on the full 3-step path: the marker now sits in
     the middle, so the canonical extension drops the row and the
     left-complete keeps the truncation. *)
  let b = C.base () in
  let store = b.C.store in
  let empty_set = Gom.Store.new_object store "BasePartSET" in
  Gom.Store.set_attr store b.C.mb_trak "Composition" (V.Ref empty_set);
  let path = C.name_path store in
  let truck_ps = set_of store b.C.truck "Manufactures" in
  let marker_row =
    t [ r b.C.truck; r truck_ps; r b.C.mb_trak; r empty_set; V.Null; V.Null ]
  in
  let can = Core.Extension.compute store path Core.Extension.Canonical in
  check "canonical drops marker" false (Relation.mem can marker_row);
  let left = Core.Extension.compute store path Core.Extension.Left_complete in
  check "left keeps marker truncation" true (Relation.mem left marker_row);
  let right = Core.Extension.compute store path Core.Extension.Right_complete in
  check "right drops marker" false (Relation.mem right marker_row)

let test_member_classification () =
  with_base (fun b path ->
      let full_rows =
        Relation.to_list (Core.Extension.compute b.C.store path Core.Extension.Full)
      in
      List.iter
        (fun kind ->
          let direct = Core.Extension.compute b.C.store path kind in
          let via_member =
            List.filter (Core.Extension.member kind path) full_rows
          in
          check
            (Printf.sprintf "member agrees with compute for %s"
               (Core.Extension.name kind))
            true
            (Relation.equal direct (Relation.of_list ~width:6 via_member)))
        Core.Extension.all)

let test_subtype_instances_participate () =
  (* Instances of subtypes belong to their supertype's extent (strong
     typing with substitutability), so they appear in path extensions
     anchored at the supertype. *)
  let s = Workload.Schemas.Robot.schema () in
  let s =
    Gom.Schema.define_tuple s "WeldingRobot" ~supertypes:[ "ROBOT" ]
      [ ("MaxAmps", "INT") ]
  in
  let store = Gom.Store.create s in
  let manu =
    let m = Gom.Store.new_object store "MANUFACTURER" in
    Gom.Store.set_attr store m "Location" (Gom.Value.Str "Utopia");
    m
  in
  let tool =
    let t = Gom.Store.new_object store "TOOL" in
    Gom.Store.set_attr store t "ManufacturedBy" (Gom.Value.Ref manu);
    t
  in
  let arm =
    let a = Gom.Store.new_object store "ARM" in
    Gom.Store.set_attr store a "MountedTool" (Gom.Value.Ref tool);
    a
  in
  let wr = Gom.Store.new_object store "WeldingRobot" in
  Gom.Store.set_attr store wr "Arm" (Gom.Value.Ref arm);
  let path =
    Gom.Path.make s "ROBOT" [ "Arm"; "MountedTool"; "ManufacturedBy"; "Location" ]
  in
  let can = Core.Extension.compute store path Core.Extension.Canonical in
  check_int "subtype instance indexed" 1 (Relation.cardinal can);
  check "tuple anchored at the subtype instance" true
    (Relation.mem can
       [| r wr; r arm; r tool; r manu; V.Str "Utopia" |]);
  (* Queries and maintenance see it too. *)
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
  let env = (Core.Exec.make store heap) in
  check "backward query finds subtype instance" true
    (Core.Exec.backward_scan env path ~i:0 ~j:4 ~target:(V.Str "Utopia") = [ wr ]);
  let mgr = Core.Maintenance.create env in
  let a = Core.Asr.create store path Core.Extension.Full (Core.Decomposition.binary ~m:4) in
  Core.Maintenance.register mgr a;
  Gom.Store.set_attr store wr "Arm" Gom.Value.Null;
  check "maintenance handles subtype anchor" true
    (Relation.equal
       (Core.Extension.compute store path Core.Extension.Full)
       (Core.Asr.extension_relation a))

let test_supports () =
  let sup k i j = Core.Extension.supports k ~n:4 ~i ~j in
  check "can only (0,n)" true
    (sup Core.Extension.Canonical 0 4
    && (not (sup Core.Extension.Canonical 0 3))
    && not (sup Core.Extension.Canonical 1 4));
  check "left i=0" true
    (sup Core.Extension.Left_complete 0 2 && not (sup Core.Extension.Left_complete 1 4));
  check "right j=n" true
    (sup Core.Extension.Right_complete 2 4 && not (sup Core.Extension.Right_complete 0 3));
  check "full always" true (sup Core.Extension.Full 1 3);
  check "bad ranges" false (sup Core.Extension.Full 3 3 || sup Core.Extension.Full 2 1)

let suite =
  [
    Alcotest.test_case "aux relation shapes" `Quick test_aux_count_and_widths;
    Alcotest.test_case "aux relation contents" `Quick test_aux_contents;
    Alcotest.test_case "canonical extension (paper table)" `Quick test_canonical;
    Alcotest.test_case "left-complete extension" `Quick test_left_complete;
    Alcotest.test_case "right-complete extension" `Quick test_right_complete;
    Alcotest.test_case "full extension" `Quick test_full;
    Alcotest.test_case "extension subset ordering" `Quick test_subset_ordering;
    Alcotest.test_case "empty-set marker, last step" `Quick test_empty_set_marker_last_aux;
    Alcotest.test_case "empty-set marker, mid path" `Quick test_empty_set_marker_mid_path;
    Alcotest.test_case "member classifies full rows" `Quick test_member_classification;
    Alcotest.test_case "subtype instances participate" `Quick test_subtype_instances_participate;
    Alcotest.test_case "applicability (eq. 35)" `Quick test_supports;
  ]
