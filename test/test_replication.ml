(* Tests for the replication layer: WAL shipping over a faulty channel,
   replica catch-up and reads, failover promotion, and divergence
   detection.

   The two centrepieces mirror the durability suite's method:

   - a QCheck property holding replica ≡ primary — store serialisation
     byte-identical, every ASR partition tree equal, forward/backward
     lookups answering identically — after random churn shipped through
     a seeded-random faulty channel (drops, duplicates, reorders,
     corruption, partitions);

   - a crash-at-every-frame sweep: the replica's own log write is
     killed at every slice, under three tail-survival variants, and
     promotion of the half-dead directory must always yield a clean,
     divergence-free base equal to a committed prefix of the primary's
     history. *)

module V = Gom.Value
module C = Workload.Schemas.Company
module Db = Durability.Db
module Wal = Durability.Wal
module Fault = Durability.Fault
module R = Replication

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---------------- scratch directories ---------------- *)

let fresh_dir () =
  let d = Filename.temp_file "asrrepl-test" "" in
  Sys.remove d;
  Sys.mkdir d 0o700;
  d

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let with_dirs f =
  let pdir = fresh_dir () and rdir = fresh_dir () in
  Fun.protect
    ~finally:(fun () ->
      rm_rf pdir;
      rm_rf rdir)
    (fun () -> f pdir rdir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---------------- primary + churn ---------------- *)

let name_path_spec = "Division.Manufactures.Composition.Name"

let txn store f =
  match Gom.Txn.with_txn store f with
  | Ok v -> v
  | Error e -> raise e

let make_primary ?(kinds = [ Core.Extension.Full; Core.Extension.Canonical ]) pdir =
  let b = C.base () in
  let db = Db.create ~dir:pdir b.C.store in
  List.iter
    (fun kind -> ignore (Db.register_asr db ~path:name_path_spec ~kind ()))
    kinds;
  (db, b)

(* A deterministic churn script touching every record kind the log can
   carry: sets, new objects, set-element surgery, deletion, a rollback
   whose compensations must net out, and a name binding. *)
let churn_round db (b : C.base) i =
  let s = Db.store db in
  let parts_of o = V.oid_exn (Gom.Store.get_attr s o "Composition") in
  txn s (fun () ->
      Gom.Store.set_attr s b.C.door "Name" (V.Str (Printf.sprintf "Door-%d" i));
      let nut = Gom.Store.new_object s "BasePart" in
      Gom.Store.set_attr s nut "Name" (V.Str (Printf.sprintf "Nut-%d" i));
      Gom.Store.insert_elem s (parts_of b.C.sec560) (V.Ref nut));
  (match
     Gom.Txn.with_txn s (fun () ->
         Gom.Store.set_attr s b.C.truck "Name" (V.Str "Ghost");
         raise Exit)
   with
  | Ok () -> assert false
  | Error Exit -> ()
  | Error e -> raise e);
  if i mod 2 = 0 then
    txn s (fun () ->
        Gom.Store.set_attr s b.C.mb_trak "Name"
          (V.Str (Printf.sprintf "Trak-%d" i)));
  Db.bind_name db (Printf.sprintf "round-%d" i) b.C.door

(* ---------------- a wired session ---------------- *)

type rig = {
  g_db : Db.t;
  g_base : C.base;
  g_primary : R.Primary.t;
  g_channel : R.Channel.t;
  g_replica : R.Replica.t;
  g_session : R.Session.t;
  g_stats : Storage.Stats.t;
}

let make_rig ?channel_plans ?replica_fault ?frame_bytes ?digest_every
    ?stop_after_sends pdir rdir =
  let db, base = make_primary pdir in
  let stats = Storage.Stats.create () in
  let fault = Option.map Fault.faulty_channel channel_plans in
  let channel = R.Channel.create ?fault ~stats () in
  let primary = R.Primary.create ?frame_bytes ?digest_every db in
  let replica = R.Replica.create ?fault:replica_fault ~stats ~dir:rdir () in
  let session =
    R.Session.create ~stats ?stop_after_sends ~primary ~channel ~replica ()
  in
  {
    g_db = db;
    g_base = base;
    g_primary = primary;
    g_channel = channel;
    g_replica = replica;
    g_session = session;
    g_stats = stats;
  }

let close_rig rig =
  R.Replica.close rig.g_replica;
  Db.close rig.g_db

(* Replica ≡ primary, checked three ways: canonical store serialisation
   byte-identical; every ASR partition tree equal as a relation; and
   forward/backward lookups over every live key answering identically
   (the scan-oracle face of the same equality). *)
let assert_equivalent ctx db replica =
  check_string
    (ctx ^ ": store serialisations byte-identical")
    (Gom.Serial.store_to_string (Db.store db))
    (Gom.Serial.store_to_string (R.Replica.store replica));
  let pas = Db.asrs db and ras = R.Replica.asrs replica in
  check_int (ctx ^ ": same ASR count") (List.length pas) (List.length ras);
  List.iter2
    (fun pa ra ->
      ignore (Core.Asr.flush pa);
      ignore (Core.Asr.flush ra);
      check_int
        (ctx ^ ": same partition count")
        (Core.Asr.partition_count pa)
        (Core.Asr.partition_count ra);
      for p = 0 to Core.Asr.partition_count pa - 1 do
        check
          (Printf.sprintf "%s: partition %d tree-for-tree equal" ctx p)
          true
          (Relation.equal
             (Core.Asr.partition_relation pa p)
             (Core.Asr.partition_relation ra p))
      done;
      List.iter
        (fun tu ->
          let k0 = Relation.Tuple.get tu 0 in
          let kn = Relation.Tuple.get tu (Relation.Tuple.width tu - 1) in
          check (ctx ^ ": fw lookup identical") true
            (Core.Asr.lookup_fwd pa 0 k0 = Core.Asr.lookup_fwd ra 0 k0);
          let last = Core.Asr.partition_count pa - 1 in
          check (ctx ^ ": bw lookup identical") true
            (Core.Asr.lookup_bwd pa last kn = Core.Asr.lookup_bwd ra last kn))
        (Relation.to_list (Core.Asr.extension_relation pa)))
    pas ras

let assert_counters_balanced ctx stats =
  let s = Storage.Stats.snapshot stats in
  check_int
    (ctx ^ ": frames shipped = applied + dropped + retried")
    s.Storage.Stats.s_frames_shipped
    (s.Storage.Stats.s_frames_applied + s.Storage.Stats.s_frames_dropped
   + s.Storage.Stats.s_frames_retried)

(* ---------------- basic catch-up ---------------- *)

let test_catch_up () =
  with_dirs (fun pdir rdir ->
      let rig = make_rig ~frame_bytes:64 pdir rdir in
      for i = 1 to 4 do
        churn_round rig.g_db rig.g_base i
      done;
      ignore (R.Session.drain rig.g_session);
      check "quiescent" true (R.Session.quiescent rig.g_session);
      check_int "no lag" 0 (R.Replica.lag_bytes rig.g_replica);
      check "no divergence" true (R.Replica.diverged rig.g_replica = None);
      check "epochs published" true (R.Replica.epochs rig.g_replica > 0);
      assert_equivalent "catch-up" rig.g_db rig.g_replica;
      assert_counters_balanced "catch-up" rig.g_stats;
      (* Incremental rounds ship without a reseed: generation stays 1
         and already-applied frames are never resent. *)
      let seq0 = R.Replica.expected_seq rig.g_replica in
      churn_round rig.g_db rig.g_base 5;
      ignore (R.Session.drain rig.g_session);
      check_int "still generation 1" 1 (R.Replica.generation rig.g_replica);
      check "sequence advanced" true
        (R.Replica.expected_seq rig.g_replica > seq0);
      assert_equivalent "incremental" rig.g_db rig.g_replica;
      close_rig rig)

let test_scanner_incremental_equals_scan () =
  with_dirs (fun pdir _ ->
      let db, b = make_primary pdir in
      for i = 1 to 3 do
        churn_round db b i
      done;
      Db.close db;
      let log = read_file (Db.wal_file pdir 1) in
      let whole = Wal.scan (Db.wal_file pdir 1) in
      (* Byte-at-a-time feeding must find exactly the committed prefix
         the batch scanner reports. *)
      let sc = Wal.Scanner.create () in
      String.iter (fun c -> Wal.Scanner.feed sc (String.make 1 c)) log;
      check_int "committed bytes equal" whole.Wal.committed_bytes
        (Wal.Scanner.committed_bytes sc);
      check_int "committed records equal" whole.Wal.committed
        (Wal.Scanner.committed_records sc);
      let records =
        List.concat_map
          (fun g -> g.Wal.Scanner.g_records)
          (Wal.Scanner.take_groups sc)
      in
      check_int "group records cover the committed prefix" whole.Wal.committed
        (List.length records))

let test_checkpoint_reseeds () =
  with_dirs (fun pdir rdir ->
      let rig = make_rig ~frame_bytes:64 pdir rdir in
      churn_round rig.g_db rig.g_base 1;
      ignore (R.Session.drain rig.g_session);
      check_int "generation 1 first" 1 (R.Replica.generation rig.g_replica);
      Db.checkpoint rig.g_db;
      churn_round rig.g_db rig.g_base 2;
      ignore (R.Session.drain rig.g_session);
      check_int "reseeded to generation 2" 2
        (R.Replica.generation rig.g_replica);
      check "replica snapshot file equals primary's" true
        (read_file (Db.snapshot_file pdir 2) = read_file (Db.snapshot_file rdir 2));
      assert_equivalent "post-checkpoint" rig.g_db rig.g_replica;
      close_rig rig)

(* ---------------- the channel fault classes, one by one ------------ *)

let fault_case name plans extra_checks =
  ( name,
    `Quick,
    fun () ->
      with_dirs (fun pdir rdir ->
          let rig = make_rig ~channel_plans:plans ~frame_bytes:64 pdir rdir in
          for i = 1 to 4 do
            churn_round rig.g_db rig.g_base i
          done;
          ignore (R.Session.drain rig.g_session);
          check "no divergence" true (R.Replica.diverged rig.g_replica = None);
          check_int "no lag" 0 (R.Replica.lag_bytes rig.g_replica);
          assert_equivalent name rig.g_db rig.g_replica;
          assert_counters_balanced name rig.g_stats;
          extra_checks rig;
          close_rig rig) )

let fault_cases =
  [
    fault_case "drop resends through the gap"
      [ { Fault.fail_at_frame = 2; channel_fault = Fault.Drop_frame } ]
      (fun rig ->
        let s = Storage.Stats.snapshot rig.g_stats in
        check "the drop was counted" true (s.Storage.Stats.s_frames_dropped >= 1);
        check "loss surfaced as a retry" true
          (s.Storage.Stats.s_frames_retried >= 1));
    fault_case "duplicate rejected as stale"
      [ { Fault.fail_at_frame = 2; channel_fault = Fault.Dup_frame } ]
      (fun rig ->
        let s = Storage.Stats.snapshot rig.g_stats in
        check "second copy counted shipped" true
          (s.Storage.Stats.s_frames_shipped
          > s.Storage.Stats.s_frames_applied);
        check "second copy counted retried" true
          (s.Storage.Stats.s_frames_retried >= 1));
    fault_case "reorder rewinds and reconciles"
      [ { Fault.fail_at_frame = 2; channel_fault = Fault.Reorder_frames } ]
      (fun _ -> ());
    fault_case "corruption is caught by the frame CRC"
      [ { Fault.fail_at_frame = 2; channel_fault = Fault.Corrupt_frame 3 } ]
      (fun rig ->
        let s = Storage.Stats.snapshot rig.g_stats in
        check "damaged frame counted retried" true
          (s.Storage.Stats.s_frames_retried >= 1));
    fault_case "partition trips the breaker, then reconnects"
      [ { Fault.fail_at_frame = 2; channel_fault = Fault.Partition 4 } ]
      (fun rig ->
        (* Four refused sends against the default three-failure
           threshold: the breaker must have opened and then recovered
           through its half-open probe. *)
        check "breaker saw the partition" true
          (R.Session.steps rig.g_session > 2));
  ]

(* ---------------- digest divergence detection ---------------- *)

let test_digest_catches_divergence () =
  with_dirs (fun pdir rdir ->
      let rig = make_rig ~frame_bytes:64 ~digest_every:0 pdir rdir in
      churn_round rig.g_db rig.g_base 1;
      ignore (R.Session.drain rig.g_session);
      assert_equivalent "before damage" rig.g_db rig.g_replica;
      (* Corrupt the replica's live store behind the protocol's back. *)
      Gom.Store.set_attr
        (R.Replica.store rig.g_replica)
        rig.g_base.C.door "Name" (V.Str "Tampered");
      check "digest frame sent" true
        (R.Primary.ship_digest rig.g_primary rig.g_channel);
      ignore (R.Session.step rig.g_session);
      (match R.Replica.diverged rig.g_replica with
      | Some what ->
        check "divergence names the store digest" true
          (String.length what > 0)
      | None -> Alcotest.fail "tampered replica accepted a digest frame");
      (* Divergence is sticky: further frames are refused, drain stops. *)
      churn_round rig.g_db rig.g_base 2;
      ignore (R.Session.drain rig.g_session);
      check "still diverged" true (R.Replica.diverged rig.g_replica <> None);
      close_rig rig)

let test_digest_cadence_catches_asr_divergence () =
  with_dirs (fun pdir rdir ->
      (* digest_every 1: every data frame boundary carries digests, so
         the tampered ASR is caught during ordinary catch-up without
         any explicit ship_digest call. *)
      let rig = make_rig ~frame_bytes:4096 ~digest_every:1 pdir rdir in
      churn_round rig.g_db rig.g_base 1;
      ignore (R.Session.drain rig.g_session);
      (match R.Replica.asrs rig.g_replica with
      | a :: _ ->
        ignore (Core.Asr.flush a);
        (match Relation.to_list (Core.Asr.extension_relation a) with
        | tu :: _ -> ignore (Core.Asr.remove_tuple a tu)
        | [] -> Alcotest.fail "replica ASR is empty")
      | [] -> Alcotest.fail "replica has no ASRs");
      churn_round rig.g_db rig.g_base 2;
      ignore (R.Session.drain rig.g_session);
      check "ASR tampering caught by shipped digests" true
        (R.Replica.diverged rig.g_replica <> None);
      close_rig rig)

(* ---------------- bounded-staleness reads ---------------- *)

let test_lag_gated_reads () =
  with_dirs (fun pdir rdir ->
      let rig = make_rig pdir rdir in
      (match R.Replica.env rig.g_replica with
      | Error `Unseeded -> ()
      | _ -> Alcotest.fail "unseeded replica offered an env");
      churn_round rig.g_db rig.g_base 1;
      ignore (R.Session.drain rig.g_session);
      (match R.Replica.env rig.g_replica with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "caught-up replica refused an env");
      (* Teach it the primary ran ahead 100 bytes: a zero-staleness
         reader is turned away with the exact lag, a tolerant one is
         served from the last published epoch. *)
      R.Replica.note_watermark rig.g_replica
        (R.Replica.applied_bytes rig.g_replica + 100);
      (match R.Replica.env ~max_lag_bytes:0 rig.g_replica with
      | Error (`Lagging n) -> check_int "lag is located" 100 n
      | _ -> Alcotest.fail "lagging replica served a zero-staleness read");
      (match R.Replica.env ~max_lag_bytes:200 rig.g_replica with
      | Ok _ -> ()
      | _ -> Alcotest.fail "bounded-staleness read refused within bound");
      close_rig rig)

(* ---------------- resume after restart ---------------- *)

let test_resume_catch_up () =
  with_dirs (fun pdir rdir ->
      let rig = make_rig ~frame_bytes:64 pdir rdir in
      churn_round rig.g_db rig.g_base 1;
      ignore (R.Session.drain rig.g_session);
      let applied0 = R.Replica.applied_bytes rig.g_replica in
      R.Replica.close rig.g_replica;
      churn_round rig.g_db rig.g_base 2;
      (* A fresh process over the same directory resumes from its
         files and attaches at its byte offset: no reseed, no replayed
         duplicates, and the churn that happened while it was down
         arrives incrementally. *)
      let stats = Storage.Stats.create () in
      let channel = R.Channel.create ~stats () in
      let replica = R.Replica.create ~stats ~dir:rdir () in
      check_int "resume kept the applied prefix" applied0
        (R.Replica.applied_bytes replica);
      let session =
        R.Session.create ~stats ~primary:rig.g_primary ~channel ~replica ()
      in
      ignore (R.Session.drain session);
      check_int "still generation 1" 1 (R.Replica.generation replica);
      assert_equivalent "resumed" rig.g_db replica;
      R.Replica.close replica;
      Db.close rig.g_db)

(* ---------------- promotion ---------------- *)

let test_promote_refuses_non_replica () =
  with_dirs (fun pdir _ ->
      let db, _ = make_primary pdir in
      Db.close db;
      match R.Failover.promote ~dir:pdir () with
      | exception R.Replica.Replica_error _ -> ()
      | Ok _ | Error _ -> Alcotest.fail "promoted a primary directory")

let test_promote_clean_after_kill () =
  with_dirs (fun pdir rdir ->
      let rig = make_rig ~frame_bytes:64 pdir rdir in
      churn_round rig.g_db rig.g_base 1;
      ignore (R.Session.drain rig.g_session);
      churn_round rig.g_db rig.g_base 2;
      churn_round rig.g_db rig.g_base 3;
      (* One pump round ships a few frames, then the primary dies with
         frames still in flight; the replica holds a proper prefix. *)
      ignore (R.Session.step rig.g_session);
      ignore (R.Session.kill rig.g_session);
      let rbytes = R.Replica.applied_bytes rig.g_replica in
      let pbytes = R.Primary.committed_bytes rig.g_primary in
      check "replica holds a prefix" true (rbytes <= pbytes);
      R.Replica.close rig.g_replica;
      (match R.Failover.promote ~primary_dir:pdir ~dir:rdir () with
      | Ok (db, report) ->
        check "promotion clean" true (R.Failover.promoted report);
        check "marker removed" false
          (Sys.file_exists (R.Replica.marker_file rdir));
        check "recovery verified every ASR" true (Db.verified report.R.Failover.f_recovery);
        (* The promoted store equals the primary's own snapshot+prefix
           replay — re-derive it here as an independent oracle. *)
        let snapshot = read_file (Db.snapshot_file pdir 1) in
        let plog = read_file (Db.wal_file pdir 1) in
        let oracle = Gom.Serial.store_of_string snapshot in
        let sc = Wal.Scanner.create () in
        Wal.Scanner.feed sc
          (String.sub plog 0 report.R.Failover.f_committed_bytes);
        List.iter
          (fun g -> ignore (Wal.replay oracle g.Wal.Scanner.g_records))
          (Wal.Scanner.take_groups sc);
        check_string "promoted store equals the primary prefix replay"
          (Gom.Serial.store_to_string oracle)
          (Gom.Serial.store_to_string (Db.store db));
        Gom.Txn.clear_hooks oracle;
        Db.close db
      | Error report ->
        Alcotest.fail (R.Failover.report_to_string report));
      assert_counters_balanced "kill" rig.g_stats;
      Db.close rig.g_db)

let test_promote_detects_forged_tail () =
  with_dirs (fun pdir rdir ->
      let rig = make_rig ~frame_bytes:64 pdir rdir in
      churn_round rig.g_db rig.g_base 1;
      ignore (R.Session.drain rig.g_session);
      R.Replica.close rig.g_replica;
      (* Forge a CRC-valid committed group past the primary's history
         by copying one off the primary's own log: recovery keeps it
         (it is a perfectly well-formed commit), so only the
         against-primary comparison can catch it. *)
      let plog = read_file (Db.wal_file pdir 1) in
      let whole = Wal.scan (Db.wal_file pdir 1) in
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o600 (Db.wal_file rdir 1)
      in
      output_string oc
        (String.sub plog 0 whole.Wal.committed_bytes
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
        |> (fun ls -> [ List.nth ls (List.length ls - 2); List.nth ls (List.length ls - 1) ])
        |> String.concat "\n");
      output_char oc '\n';
      close_out oc;
      (match R.Failover.promote ~primary_dir:pdir ~dir:rdir () with
      | Ok _ -> Alcotest.fail "promoted a replica with a forged log tail"
      | Error report ->
        check "report refuses" false (R.Failover.promoted report);
        check "divergence is byte-located" true
          (List.exists
             (function
               | R.Failover.Log_beyond_primary _
               | R.Failover.Log_prefix_mismatch _
               | R.Failover.Store_digest_mismatch _ ->
                 true
               | _ -> false)
             report.R.Failover.f_divergences));
      check "marker kept on refusal" true
        (Sys.file_exists (R.Replica.marker_file rdir));
      Db.close rig.g_db)

let test_promote_detects_prefix_mismatch () =
  with_dirs (fun pdir rdir ->
      (* Two primaries born identical (same demo base, same specs, so
         byte-identical snapshots) that then diverge: a replica of the
         second, checked against the first, must fail at exactly the
         first byte where the histories part ways. *)
      let db1, b1 = make_primary pdir in
      churn_round db1 b1 1;
      Db.close db1;
      let p2 = fresh_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf p2)
        (fun () ->
          let db2, b2 = make_primary p2 in
          txn (Db.store db2) (fun () ->
              Gom.Store.set_attr (Db.store db2) b2.C.door "Name"
                (V.Str "Other-History"));
          let stats = Storage.Stats.create () in
          let channel = R.Channel.create ~stats () in
          let primary = R.Primary.create ~frame_bytes:64 db2 in
          let replica = R.Replica.create ~stats ~dir:rdir () in
          let session =
            R.Session.create ~stats ~primary ~channel ~replica ()
          in
          ignore (R.Session.drain session);
          R.Replica.close replica;
          Db.close db2;
          let log1 = read_file (Db.wal_file pdir 1) in
          let log2 = read_file (Db.wal_file p2 1) in
          let limit = min (String.length log1) (String.length log2) in
          let expect = ref limit in
          (try
             for i = 0 to limit - 1 do
               if log1.[i] <> log2.[i] then begin
                 expect := i;
                 raise Exit
               end
             done
           with Exit -> ());
          match R.Failover.promote ~primary_dir:pdir ~dir:rdir () with
          | Ok _ -> Alcotest.fail "promoted against a foreign history"
          | Error report ->
            check "located at the first differing byte" true
              (List.exists
                 (function
                   | R.Failover.Log_prefix_mismatch { byte } -> byte = !expect
                   | _ -> false)
                 report.R.Failover.f_divergences)))

(* ---------------- crash at every frame apply ---------------- *)

let sweep_variants =
  [
    ("tail-survives",
     fun c -> { Fault.crash_at_write = c; survive_bytes = max_int; corrupt_bytes = 0 });
    ("tail-lost",
     fun c -> { Fault.crash_at_write = c; survive_bytes = 0; corrupt_bytes = 0 });
    ("tail-torn",
     fun c -> { Fault.crash_at_write = c; survive_bytes = 7; corrupt_bytes = 3 });
  ]

let test_crash_sweep () =
  (* Reference run: how many log writes does a clean catch-up make on
     the replica side?  (Slice frames write; reset and digest frames
     do not, so this is counted at the fault layer, not in frames.) *)
  let total_writes =
    with_dirs (fun pdir rdir ->
        let fault = Fault.real () in
        let rig = make_rig ~replica_fault:fault ~frame_bytes:64 pdir rdir in
        for i = 1 to 3 do
          churn_round rig.g_db rig.g_base i
        done;
        ignore (R.Session.drain rig.g_session);
        assert_equivalent "crash-sweep reference" rig.g_db rig.g_replica;
        close_rig rig;
        Fault.writes fault)
  in
  check "reference run produced frames" true (total_writes > 4);
  List.iter
    (fun (vname, plan_of) ->
      for c = 1 to total_writes do
        with_dirs (fun pdir rdir ->
            let ctx = Printf.sprintf "%s crash at slice %d" vname c in
            let rig =
              make_rig ~replica_fault:(Fault.faulty (plan_of c))
                ~frame_bytes:64 pdir rdir
            in
            for i = 1 to 3 do
              churn_round rig.g_db rig.g_base i
            done;
            let crashed =
              match R.Session.drain rig.g_session with
              | _ -> false
              | exception Fault.Crash -> true
            in
            check (ctx ^ ": the crash fired") true crashed;
            (* The in-memory replica is dead.  Its directory must
               promote cleanly to a committed prefix of the primary. *)
            (match R.Failover.promote ~primary_dir:pdir ~dir:rdir () with
            | Ok (db, report) ->
              check (ctx ^ ": promotion clean") true
                (R.Failover.promoted report);
              check (ctx ^ ": ASRs verified") true
                (Db.verified report.R.Failover.f_recovery);
              let plog = read_file (Db.wal_file pdir 1) in
              let rlog = read_file (Db.wal_file rdir 1) in
              check (ctx ^ ": recovered log is a primary byte-prefix") true
                (String.length rlog <= String.length plog
                && String.sub plog 0 (String.length rlog) = rlog);
              Db.close db
            | Error report ->
              Alcotest.fail (ctx ^ "\n" ^ R.Failover.report_to_string report));
            Db.close rig.g_db)
      done)
    sweep_variants

(* ---------------- the QCheck property ---------------- *)

let prop_replica_equals_primary =
  QCheck.Test.make
    ~name:"replica = primary under random churn x channel chaos"
    ~count:25
    QCheck.(
      triple (int_bound 100000) (int_range 1 5) (int_range 0 2))
    (fun (chaos_seed, rounds, kind_idx) ->
      with_dirs (fun pdir rdir ->
          let kinds =
            List.sort_uniq compare
              [ List.nth Core.Extension.all kind_idx; Core.Extension.Full ]
          in
          let db, b = make_primary ~kinds pdir in
          let stats = Storage.Stats.create () in
          let fault =
            Fault.faulty_channel
              (R.Channel.chaos ~seed:chaos_seed ~upto:1000)
          in
          let channel = R.Channel.create ~fault ~stats () in
          let primary = R.Primary.create ~frame_bytes:48 ~digest_every:4 db in
          let replica = R.Replica.create ~stats ~dir:rdir () in
          let session =
            R.Session.create ~stats ~seed:chaos_seed ~primary ~channel
              ~replica ()
          in
          let rng = Random.State.make [| chaos_seed; 0xc4a5e |] in
          let path = C.name_path (Db.store db) in
          Fun.protect
            ~finally:(fun () ->
              R.Replica.close replica;
              Db.close db)
            (fun () ->
              for i = 1 to rounds do
                (* Random ops may have deleted an object the script
                   touches: the transaction rolls back and its logged
                   abort group is itself useful churn. *)
                (try churn_round db b i
                 with Gom.Store.Type_error _ | Invalid_argument _ -> ());
                for _ = 1 to Random.State.int rng 4 do
                  match
                    Gom.Txn.with_txn (Db.store db) (fun () ->
                        Test_maintenance.apply_random_op rng (Db.store db) path)
                  with
                  | Ok () -> ()
                  | Error (Gom.Store.Type_error _) -> ()
                  | Error e -> raise e
                done;
                ignore (R.Session.drain session)
              done;
              ignore (R.Session.drain session);
              if R.Replica.diverged replica <> None then
                QCheck.Test.fail_reportf "replica diverged: %s"
                  (Option.get (R.Replica.diverged replica));
              assert_equivalent "property" db replica;
              assert_counters_balanced "property" stats;
              R.Replica.lag_bytes replica = 0)))

let suite =
  [
    ("catch-up replicates and stays in sync", `Quick, test_catch_up);
    ( "incremental scanner = batch scan (byte-at-a-time)",
      `Quick,
      test_scanner_incremental_equals_scan );
    ("checkpoint reseeds the replica", `Quick, test_checkpoint_reseeds);
  ]
  @ fault_cases
  @ [
      ( "digest frame catches behind-the-back store damage",
        `Quick,
        test_digest_catches_divergence );
      ( "digest cadence catches ASR damage during catch-up",
        `Quick,
        test_digest_cadence_catches_asr_divergence );
      ("bounded-staleness read gating", `Quick, test_lag_gated_reads);
      ("replica resumes from its files", `Quick, test_resume_catch_up);
      ("promote refuses a non-replica", `Quick, test_promote_refuses_non_replica);
      ( "mid-churn kill promotes to the committed prefix",
        `Quick,
        test_promote_clean_after_kill );
      ( "promotion refuses a forged log tail",
        `Quick,
        test_promote_detects_forged_tail );
      ( "promotion locates a history prefix mismatch",
        `Quick,
        test_promote_detects_prefix_mismatch );
      ("crash at every replica slice write, promote", `Slow, test_crash_sweep);
      Qc.to_alcotest prop_replica_equals_primary;
    ]
