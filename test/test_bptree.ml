(* Unit and property tests for Storage.Bptree.  A small page size forces
   multi-level trees so splits and descents are actually exercised. *)

module B = Storage.Bptree
module V = Gom.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* page_size 64, tuple 16 bytes -> 4 tuples per leaf; fan-out 5. *)
let small_config = Storage.Config.make ~page_size:64 ~oid_size:8 ~pp_size:4 ()

let make_tree ?(config = small_config) () =
  B.create ~config ~pager:(Storage.Pager.create ()) ~tuple_bytes:16
    ~key_of:(fun tup -> tup.(0))

let tup a b = [| V.Ref (Gom.Oid.of_int a); V.Ref (Gom.Oid.of_int b) |]

let ok_invariants t =
  match B.check_invariants t with
  | Ok () -> true
  | Error msg -> Alcotest.failf "invariant violated: %s" msg

let test_empty () =
  let t = make_tree () in
  check_int "cardinal" 0 (B.cardinal t);
  check "no hit" true (B.lookup t (V.Ref (Gom.Oid.of_int 1)) = []);
  check_int "height" 1 (B.height t);
  check "invariants" true (ok_invariants t)

let test_bulk_load_and_lookup () =
  let t = make_tree () in
  B.bulk_load t (List.init 100 (fun i -> tup i (i + 1000)));
  check_int "cardinal" 100 (B.cardinal t);
  check "invariants" true (ok_invariants t);
  check "found" true (B.lookup t (V.Ref (Gom.Oid.of_int 37)) = [ tup 37 1037 ]);
  check "missing" true (B.lookup t (V.Ref (Gom.Oid.of_int 555)) = []);
  check_int "leaf pages" 25 (B.leaf_pages t);
  check "height grows" true (B.height t >= 2)

let test_duplicate_keys () =
  let t = make_tree () in
  B.bulk_load t [ tup 1 10; tup 1 11; tup 1 12; tup 2 20 ];
  let hits = B.lookup t (V.Ref (Gom.Oid.of_int 1)) in
  check_int "all duplicates found" 3 (List.length hits);
  check "sorted" true (hits = [ tup 1 10; tup 1 11; tup 1 12 ])

let test_duplicate_key_run_across_leaves () =
  let t = make_tree () in
  (* 10 tuples with the same key: spans three 4-entry leaves. *)
  B.bulk_load t (List.init 10 (fun i -> tup 5 i) @ [ tup 9 99 ]);
  let hits = B.lookup t (V.Ref (Gom.Oid.of_int 5)) in
  check_int "whole run" 10 (List.length hits);
  check "invariants" true (ok_invariants t)

let test_refcounts () =
  let t = make_tree () in
  B.insert t (tup 1 2);
  B.insert t (tup 1 2);
  check_int "cardinal counts distinct" 1 (B.cardinal t);
  check_int "refcount" 2 (B.refcount t (tup 1 2));
  B.remove t (tup 1 2);
  check "still present" true (B.mem t (tup 1 2));
  B.remove t (tup 1 2);
  check "gone" false (B.mem t (tup 1 2));
  B.remove t (tup 1 2) (* removing a missing tuple is a no-op *);
  check_int "empty" 0 (B.cardinal t)

let test_incremental_inserts_split () =
  let t = make_tree () in
  for i = 0 to 199 do
    B.insert t (tup i i)
  done;
  check_int "cardinal" 200 (B.cardinal t);
  check "invariants after splits" true (ok_invariants t);
  check "height at least 3" true (B.height t >= 3);
  check "scan sorted" true
    (B.scan t = List.init 200 (fun i -> tup i i))

let test_interleaved_insert_remove () =
  let t = make_tree () in
  for i = 0 to 99 do
    B.insert t (tup (i mod 10) i)
  done;
  for i = 0 to 49 do
    B.remove t (tup (i mod 10) i)
  done;
  check_int "half left" 50 (B.cardinal t);
  check "invariants" true (ok_invariants t);
  let hits = B.lookup t (V.Ref (Gom.Oid.of_int 3)) in
  check_int "per-key" 5 (List.length hits)

let test_remove_all_then_reuse () =
  let t = make_tree () in
  for i = 0 to 63 do
    B.insert t (tup i i)
  done;
  for i = 0 to 63 do
    B.remove t (tup i i)
  done;
  check_int "empty" 0 (B.cardinal t);
  check "invariants after drain" true (ok_invariants t);
  B.insert t (tup 7 7);
  check "usable again" true (B.mem t (tup 7 7));
  check "invariants" true (ok_invariants t)

let test_lookup_page_accounting () =
  let t = make_tree () in
  B.bulk_load t (List.init 500 (fun i -> tup i i));
  let stats = Storage.Stats.create () in
  Storage.Stats.begin_op stats;
  ignore (B.lookup ~stats t (V.Ref (Gom.Oid.of_int 123)));
  (* One root-to-leaf descent: height inner pages plus the key's leaf,
     plus at most one look-ahead page when the hit ends its leaf. *)
  let reads = Storage.Stats.op_reads stats in
  check "descent pages" true (reads >= B.height t + 1 && reads <= B.height t + 2);
  check_int "no writes" 0 (Storage.Stats.op_writes stats)

let test_scan_page_accounting () =
  let t = make_tree () in
  B.bulk_load t (List.init 100 (fun i -> tup i i));
  let stats = Storage.Stats.create () in
  Storage.Stats.begin_op stats;
  ignore (B.scan ~stats t);
  check_int "scan reads every leaf" (B.leaf_pages t) (Storage.Stats.op_reads stats)

let test_insert_page_accounting () =
  let t = make_tree () in
  B.bulk_load t (List.init 100 (fun i -> tup (2 * i) i));
  let stats = Storage.Stats.create () in
  Storage.Stats.begin_op stats;
  B.insert ~stats t (tup 31 0);
  check "descent read" true (Storage.Stats.op_reads stats >= B.height t);
  check "leaf written" true (Storage.Stats.op_writes stats >= 1)

let test_backward_clustering () =
  (* A tree keyed on the last column, as the redundant copy. *)
  let t =
    B.create ~config:small_config ~pager:(Storage.Pager.create ()) ~tuple_bytes:16
      ~key_of:(fun tup -> tup.(1))
  in
  B.bulk_load t [ tup 1 9; tup 2 9; tup 3 7 ];
  let hits = B.lookup t (V.Ref (Gom.Oid.of_int 9)) in
  check_int "by last column" 2 (List.length hits)

let prop_random_ops =
  QCheck.Test.make ~name:"random insert/remove keeps invariants and contents" ~count:60
    QCheck.(pair small_int (list (pair (int_bound 20) (int_bound 20))))
    (fun (_, ops) ->
      let t = make_tree () in
      let model = Hashtbl.create 64 in
      List.iteri
        (fun idx (a, b) ->
          let tu = tup a b in
          if idx mod 3 = 2 then begin
            B.remove t tu;
            match Hashtbl.find_opt model (a, b) with
            | Some n when n > 1 -> Hashtbl.replace model (a, b) (n - 1)
            | Some _ -> Hashtbl.remove model (a, b)
            | None -> ()
          end
          else begin
            B.insert t tu;
            Hashtbl.replace model (a, b)
              (1 + Option.value ~default:0 (Hashtbl.find_opt model (a, b)))
          end)
        ops;
      (match B.check_invariants t with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_reportf "invariant: %s" m);
      let expected =
        Hashtbl.fold (fun (a, b) _ acc -> tup a b :: acc) model []
        |> List.sort Relation.Tuple.compare
      in
      let actual = List.sort Relation.Tuple.compare (B.scan t) in
      if expected <> actual then QCheck.Test.fail_report "contents diverge from model";
      Hashtbl.fold
        (fun (a, b) n acc -> acc && B.refcount t (tup a b) = n)
        model true)

let suite =
  [
    Alcotest.test_case "empty tree" `Quick test_empty;
    Alcotest.test_case "bulk load and lookup" `Quick test_bulk_load_and_lookup;
    Alcotest.test_case "duplicate keys" `Quick test_duplicate_keys;
    Alcotest.test_case "key run across leaves" `Quick test_duplicate_key_run_across_leaves;
    Alcotest.test_case "reference counts" `Quick test_refcounts;
    Alcotest.test_case "incremental splits" `Quick test_incremental_inserts_split;
    Alcotest.test_case "interleaved insert/remove" `Quick test_interleaved_insert_remove;
    Alcotest.test_case "drain and reuse" `Quick test_remove_all_then_reuse;
    Alcotest.test_case "lookup page accounting" `Quick test_lookup_page_accounting;
    Alcotest.test_case "scan page accounting" `Quick test_scan_page_accounting;
    Alcotest.test_case "insert page accounting" `Quick test_insert_page_accounting;
    Alcotest.test_case "backward clustering" `Quick test_backward_clustering;
    Qc.to_alcotest prop_random_ops;
  ]
