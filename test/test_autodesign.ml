(* Tests for Workload.Autodesign: measure -> recommend -> apply. *)

module AD = Workload.Autodesign
module D = Core.Decomposition
module X = Core.Extension
module Mix = Costmodel.Opmix
module V = Gom.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_physical_decomposition () =
  let b = Workload.Schemas.Company.base () in
  let path = Workload.Schemas.Company.name_path b.Workload.Schemas.Company.store in
  (* n = 3, m = 5: analytic (0,1,3) lands on columns (0,2,5). *)
  let phys = AD.physical_decomposition path (D.make ~m:3 [ 0; 1; 3 ]) in
  check "set columns skipped" true (D.boundaries phys = [ 0; 2; 5 ]);
  let phys = AD.physical_decomposition path (D.binary ~m:3) in
  check "binary over positions" true (D.boundaries phys = [ 0; 2; 4; 5 ]);
  check "wrong arity rejected" true
    (try ignore (AD.physical_decomposition path (D.binary ~m:5)); false
     with Invalid_argument _ -> true)

let test_apply () =
  let b = Workload.Schemas.Company.base () in
  let store = b.Workload.Schemas.Company.store in
  let path = Workload.Schemas.Company.name_path store in
  check "no support yields nothing" true (AD.apply store path Mix.No_support = None);
  match AD.apply store path (Mix.Design (X.Left_complete, D.make ~m:3 [ 0; 1; 3 ])) with
  | Some a ->
    check "kind applied" true (Core.Asr.kind a = X.Left_complete);
    check "columns mapped" true
      (D.boundaries (Core.Asr.decomposition a) = [ 0; 2; 5 ]);
    check_int "tuples materialised" 3 (Core.Asr.cardinal a)
  | None -> Alcotest.fail "expected a materialised relation"

let test_auto_end_to_end () =
  (* A read-heavy workload over a sizeable base: the winner must be an
     actual index, and queries through it must beat the scan. *)
  let spec =
    Workload.Generator.spec ~seed:8
      ~counts:[ 300; 600; 1200; 2400 ]
      ~defined:[ 280; 560; 1100 ] ~fan:[ 2; 2; 2 ] ()
  in
  let store, path = Workload.Generator.build spec in
  let heap = Storage.Heap.create ~size_of:(Workload.Generator.size_of spec) store in
  let env = (Core.Exec.make store heap) in
  let mix =
    Mix.make ~queries:[ Mix.query 0 3 1.0 ] ~updates:[ Mix.ins 2 1.0 ]
  in
  let best, built =
    AD.auto ~sizes:(Workload.Generator.size_of spec) store path mix ~p_up:0.05
  in
  check "winner beats no support" true (best.Costmodel.Advisor.normalized < 1.);
  match built with
  | None -> Alcotest.fail "read-heavy workload must get an index"
  | Some a ->
    let target =
      match Gom.Store.extent store "T3" with o :: _ -> V.Ref o | [] -> assert false
    in
    let stats = env.Core.Exec.stats in
    Storage.Stats.begin_op stats;
    let via_index = Core.Exec.backward ~index:a env path ~i:0 ~j:3 ~target in
    let index_cost = Storage.Stats.op_accesses stats in
    Storage.Stats.begin_op stats;
    let via_scan = Core.Exec.backward_scan env path ~i:0 ~j:3 ~target in
    let scan_cost = Storage.Stats.op_accesses stats in
    check "same answers" true (via_index = via_scan);
    check "applied design pays off" true (index_cost * 5 < scan_cost)

let test_auto_update_heavy_prefers_nothing () =
  (* With P_up ~ 1 and expensive relations, no support can win; auto
     must then return None rather than forcing an index. *)
  let b = Workload.Schemas.Company.base () in
  let store = b.Workload.Schemas.Company.store in
  let path = Workload.Schemas.Company.name_path store in
  let mix = Mix.make ~queries:[ Mix.query 0 3 1.0 ] ~updates:[ Mix.ins 1 1.0 ] in
  let best, built = AD.auto store path mix ~p_up:0.999 in
  (match best.Costmodel.Advisor.design with
  | Mix.No_support -> check "no index materialised" true (built = None)
  | Mix.Design _ ->
    (* If a design still wins on this tiny base, it must at least be
       materialisable. *)
    check "index materialised" true (built <> None))

let suite =
  [
    Alcotest.test_case "position-to-column mapping" `Quick test_physical_decomposition;
    Alcotest.test_case "apply design" `Quick test_apply;
    Alcotest.test_case "auto end to end" `Quick test_auto_end_to_end;
    Alcotest.test_case "update-heavy may decline" `Quick test_auto_update_heavy_prefers_nothing;
  ]
