(* Unit tests for Gom.Path: Definition 3.1 validation and column maps. *)

module P = Gom.Path

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let throws f = try f (); false with P.Path_error _ -> true

let robot_path () =
  let b = Workload.Schemas.Robot.base () in
  Workload.Schemas.Robot.location_path b.Workload.Schemas.Robot.store

let company_path () =
  let b = Workload.Schemas.Company.base () in
  Workload.Schemas.Company.name_path b.Workload.Schemas.Company.store

let test_linear () =
  let p = robot_path () in
  check_int "n" 4 (P.length p);
  check_int "k" 0 (P.set_occurrences p);
  check_int "arity" 5 (P.arity p);
  check "linear" true (P.linear p);
  Alcotest.(check string)
    "pp" "ROBOT.Arm.MountedTool.ManufacturedBy.Location" (P.to_string p)

let test_with_sets () =
  let p = company_path () in
  check_int "n" 3 (P.length p);
  check_int "k" 2 (P.set_occurrences p);
  check_int "arity = n+k+1" 6 (P.arity p);
  check "not linear" false (P.linear p)

let test_columns_company () =
  let p = company_path () in
  match P.columns p with
  | [ P.Obj "Division"; P.Set_of "ProdSET"; P.Obj "Product"; P.Set_of "BasePartSET";
      P.Obj "BasePart"; P.Atom Gom.Schema.A_string ] ->
    ()
  | cols ->
    Alcotest.failf "unexpected columns (%d)" (List.length cols)

let test_column_positions () =
  let p = company_path () in
  check_int "pos 0" 0 (P.column_of_object_position p 0);
  check_int "pos 1 skips set col" 2 (P.column_of_object_position p 1);
  check_int "pos 2" 4 (P.column_of_object_position p 2);
  check_int "pos 3 (value)" 5 (P.column_of_object_position p 3);
  check "inverse at 0" true (P.object_position_of_column p 0 = Some 0);
  check "set col has no position" true (P.object_position_of_column p 1 = None);
  check "inverse at 2" true (P.object_position_of_column p 2 = Some 1);
  check "inverse at 5" true (P.object_position_of_column p 5 = Some 3)

let test_types_at () =
  let p = company_path () in
  Alcotest.(check string) "t0" "Division" (P.type_at p 0);
  Alcotest.(check string) "t1" "Product" (P.type_at p 1);
  Alcotest.(check string) "t3" "STRING" (P.type_at p 3)

let test_parse () =
  let b = Workload.Schemas.Company.base () in
  let schema = Gom.Store.schema b.Workload.Schemas.Company.store in
  let p = P.parse schema "Division.Manufactures.Composition.Name" in
  check "parse equals make" true (P.equal p (company_path ()))

let test_invalid_paths () =
  let b = Workload.Schemas.Company.base () in
  let schema = Gom.Store.schema b.Workload.Schemas.Company.store in
  check "unknown attr" true (throws (fun () -> ignore (P.make schema "Division" [ "Nope" ])));
  check "atomic mid-path" true
    (throws (fun () -> ignore (P.make schema "Division" [ "Name"; "Manufactures" ])));
  check "empty chain" true (throws (fun () -> ignore (P.make schema "Division" [])));
  check "atomic anchor" true (throws (fun () -> ignore (P.make schema "STRING" [ "x" ])));
  check "parse without dot" true (throws (fun () -> ignore (P.parse schema "Division")))

let test_prefix () =
  let b = Workload.Schemas.Company.base () in
  let schema = Gom.Store.schema b.Workload.Schemas.Company.store in
  let p = P.parse schema "Division.Manufactures.Composition.Name" in
  let q = P.parse schema "Division.Manufactures.Composition" in
  check "prefix" true (P.is_prefix ~affix:q p);
  check "not prefix" false (P.is_prefix ~affix:p q)

let test_list_occurrence () =
  (* Lists are treated like sets (paper, section 2.1). *)
  let s = Gom.Schema.empty in
  let s = Gom.Schema.define_tuple s "Track" [ ("Title", "STRING") ] in
  let s = Gom.Schema.define_list s "TrackList" "Track" in
  let s = Gom.Schema.define_tuple s "Album" [ ("Tracks", "TrackList") ] in
  let p = P.make s "Album" [ "Tracks"; "Title" ] in
  check_int "k counts list occurrence" 1 (P.set_occurrences p);
  check_int "arity" 4 (P.arity p);
  (* The extension machinery works through the list. *)
  let store = Gom.Store.create s in
  let track title =
    let t = Gom.Store.new_object store "Track" in
    Gom.Store.set_attr store t "Title" (Gom.Value.Str title);
    t
  in
  let album = Gom.Store.new_object store "Album" in
  let tl = Gom.Store.new_object store "TrackList" in
  Gom.Store.insert_elem store tl (Gom.Value.Ref (track "Intro"));
  Gom.Store.insert_elem store tl (Gom.Value.Ref (track "Outro"));
  Gom.Store.set_attr store album "Tracks" (Gom.Value.Ref tl);
  let can = Core.Extension.compute store p Core.Extension.Canonical in
  check_int "both list elements indexed" 2 (Relation.cardinal can);
  (* And incremental maintenance follows list mutations. *)
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
  let mgr = Core.Maintenance.create (Core.Exec.make store heap) in
  let a = Core.Asr.create store p Core.Extension.Full (Core.Decomposition.binary ~m:3) in
  Core.Maintenance.register mgr a;
  Gom.Store.insert_elem store tl (Gom.Value.Ref (track "Bridge"));
  check "list insert maintained" true
    (Relation.equal
       (Core.Extension.compute store p Core.Extension.Full)
       (Core.Asr.extension_relation a))

let suite =
  [
    Alcotest.test_case "linear path" `Quick test_linear;
    Alcotest.test_case "list occurrence" `Quick test_list_occurrence;
    Alcotest.test_case "path with set occurrences" `Quick test_with_sets;
    Alcotest.test_case "column descriptors" `Quick test_columns_company;
    Alcotest.test_case "column positions" `Quick test_column_positions;
    Alcotest.test_case "types along path" `Quick test_types_at;
    Alcotest.test_case "parse" `Quick test_parse;
    Alcotest.test_case "invalid paths rejected" `Quick test_invalid_paths;
    Alcotest.test_case "prefix relation" `Quick test_prefix;
  ]
