(* Unit tests for Gom.Store: instantiation, typing, mutation, events. *)

module S = Gom.Schema
module V = Gom.Value
module St = Gom.Store

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let throws_type f = try f (); false with St.Type_error _ -> true

let schema () =
  let s = S.empty in
  let s = S.define_tuple s "Leaf" [ ("name", "STRING") ] in
  let s = S.define_tuple s "SpecialLeaf" ~supertypes:[ "Leaf" ] [ ("extra", "INT") ] in
  let s = S.define_set s "LeafSet" "Leaf" in
  let s = S.define_tuple s "Node" [ ("leaf", "Leaf"); ("leaves", "LeafSet"); ("n", "INT") ] in
  s

let store () = St.create (schema ())

let test_new_object_nulls () =
  let st = store () in
  let o = St.new_object st "Node" in
  check "attr starts NULL" true (V.is_null (St.get_attr st o "leaf"));
  check "int attr starts NULL" true (V.is_null (St.get_attr st o "n"));
  check "exists" true (St.mem st o)

let test_new_set_empty () =
  let st = store () in
  let s = St.new_object st "LeafSet" in
  check_int "empty set" 0 (List.length (St.elements st s))

let test_cannot_instantiate_atomic () =
  let st = store () in
  check "atomic" true (throws_type (fun () -> ignore (St.new_object st "STRING")));
  check "unknown" true (throws_type (fun () -> ignore (St.new_object st "Nope")))

let test_set_attr_typing () =
  let st = store () in
  let node = St.new_object st "Node" in
  let leaf = St.new_object st "Leaf" in
  St.set_attr st node "leaf" (V.Ref leaf);
  check "stored" true (V.equal (St.get_attr st node "leaf") (V.Ref leaf));
  St.set_attr st node "n" (V.Int 42);
  (* wrong atomic type *)
  check "int into string" true
    (throws_type (fun () -> St.set_attr st node "n" (V.Str "x")));
  (* wrong object type *)
  let other = St.new_object st "Node" in
  check "node into leaf attr" true
    (throws_type (fun () -> St.set_attr st node "leaf" (V.Ref other)));
  (* unknown attribute *)
  check "unknown attr" true (throws_type (fun () -> St.set_attr st node "zz" V.Null))

let test_subtype_substitutability () =
  let st = store () in
  let node = St.new_object st "Node" in
  let special = St.new_object st "SpecialLeaf" in
  St.set_attr st node "leaf" (V.Ref special);
  check "subtype accepted" true (V.equal (St.get_attr st node "leaf") (V.Ref special))

let test_set_elements_typing () =
  let st = store () in
  let s = St.new_object st "LeafSet" in
  let leaf = St.new_object st "Leaf" in
  let node = St.new_object st "Node" in
  St.insert_elem st s (V.Ref leaf);
  check_int "one element" 1 (List.length (St.elements st s));
  check "wrong elem type" true (throws_type (fun () -> St.insert_elem st s (V.Ref node)));
  check "null elem" true (throws_type (fun () -> St.insert_elem st s V.Null));
  (* duplicate insert is a no-op *)
  St.insert_elem st s (V.Ref leaf);
  check_int "still one element" 1 (List.length (St.elements st s));
  St.remove_elem st s (V.Ref leaf);
  check_int "removed" 0 (List.length (St.elements st s))

let test_extent () =
  let st = store () in
  let l1 = St.new_object st "Leaf" in
  let sp = St.new_object st "SpecialLeaf" in
  let _n = St.new_object st "Node" in
  check_int "exact extent" 1 (List.length (St.extent st "Leaf"));
  check_int "deep extent" 2 (List.length (St.extent ~deep:true st "Leaf"));
  check "deep extent members" true
    (List.mem l1 (St.extent ~deep:true st "Leaf")
    && List.mem sp (St.extent ~deep:true st "Leaf"));
  check_int "count deep" 2 (St.count ~deep:true st "Leaf")

let test_events () =
  let st = store () in
  let log = ref [] in
  let (_ : St.subscription) = St.subscribe st (fun ev -> log := ev :: !log) in
  let node = St.new_object st "Node" in
  let leaf = St.new_object st "Leaf" in
  St.set_attr st node "leaf" (V.Ref leaf);
  St.set_attr st node "leaf" (V.Ref leaf) (* no-op: no event *);
  let s = St.new_object st "LeafSet" in
  St.insert_elem st s (V.Ref leaf);
  St.remove_elem st s (V.Ref leaf);
  let kinds =
    List.rev_map
      (function
        | St.Created _ -> "created"
        | St.Attr_set _ -> "attr"
        | St.Set_inserted _ -> "ins"
        | St.Set_removed _ -> "rem"
        | St.Deleted _ -> "del")
      !log
  in
  Alcotest.(check (list string))
    "event sequence"
    [ "created"; "created"; "attr"; "created"; "ins"; "rem" ]
    kinds

let test_referencers () =
  let st = store () in
  let node1 = St.new_object st "Node" in
  let node2 = St.new_object st "Node" in
  let leaf = St.new_object st "Leaf" in
  St.set_attr st node1 "leaf" (V.Ref leaf);
  let s = St.new_object st "LeafSet" in
  St.insert_elem st s (V.Ref leaf);
  St.set_attr st node2 "leaves" (V.Ref s);
  let direct = St.referencers st "Node" "leaf" (V.Ref leaf) in
  check "direct referencer" true (direct = [ (node1, None) ]);
  let via_set = St.referencers st "Node" "leaves" (V.Ref leaf) in
  check "set referencer" true (via_set = [ (node2, Some s) ])

let test_delete_nullifies () =
  let st = store () in
  let node = St.new_object st "Node" in
  let leaf = St.new_object st "Leaf" in
  let s = St.new_object st "LeafSet" in
  St.set_attr st node "leaf" (V.Ref leaf);
  St.set_attr st node "leaves" (V.Ref s);
  St.insert_elem st s (V.Ref leaf);
  St.delete st leaf;
  check "gone" false (St.mem st leaf);
  check "attr nullified" true (V.is_null (St.get_attr st node "leaf"));
  check_int "set emptied" 0 (List.length (St.elements st s));
  check_int "extent shrank" 0 (List.length (St.extent st "Leaf"))

let test_names () =
  let st = store () in
  let o = St.new_object st "Node" in
  St.bind_name st "root" o;
  check "found" true (St.find_name st "root" = Some o);
  check "missing" true (St.find_name st "other" = None);
  St.delete st o;
  check "name dropped with object" true (St.find_name st "root" = None)

let suite =
  [
    Alcotest.test_case "new object all NULL" `Quick test_new_object_nulls;
    Alcotest.test_case "new set empty" `Quick test_new_set_empty;
    Alcotest.test_case "cannot instantiate atomics" `Quick test_cannot_instantiate_atomic;
    Alcotest.test_case "set_attr typing" `Quick test_set_attr_typing;
    Alcotest.test_case "subtype substitutability" `Quick test_subtype_substitutability;
    Alcotest.test_case "set element typing" `Quick test_set_elements_typing;
    Alcotest.test_case "extents" `Quick test_extent;
    Alcotest.test_case "mutation events" `Quick test_events;
    Alcotest.test_case "referencers" `Quick test_referencers;
    Alcotest.test_case "delete nullifies references" `Quick test_delete_nullifies;
    Alcotest.test_case "persistent names" `Quick test_names;
  ]
