let () =
  Alcotest.run "asr_repro"
    [
      ("oid/value", Test_value.suite);
      ("schema", Test_schema.suite);
      ("store", Test_store.suite);
      ("txn", Test_txn.suite);
      ("serial", Test_serial.suite);
      ("durability", Test_durability.suite);
      ("integrity", Test_integrity.suite);
      ("path", Test_path.suite);
      ("relation", Test_relation.suite);
      ("extension", Test_extension.suite);
      ("storage", Test_storage.suite);
      ("clustering", Test_clustering.suite);
      ("bptree", Test_bptree.suite);
      ("decomposition", Test_decomposition.suite);
      ("asr", Test_asr.suite);
      ("exec", Test_exec.suite);
      ("engine", Test_engine.suite);
      ("maintenance", Test_maintenance.suite);
      ("maintenance-batch", Test_maintenance_batch.suite);
      ("share", Test_share.suite);
      ("baselines", Test_baselines.suite);
      ("profiler", Test_profiler.suite);
      ("workload", Test_workload.suite);
      ("autodesign", Test_autodesign.suite);
      ("edge", Test_edge.suite);
      ("display", Test_display.suite);
      ("gql", Test_gql.suite);
      ("costmodel", Test_costmodel.suite);
      ("cost-queries", Test_cost_queries.suite);
      ("parallel", Test_parallel.suite);
      ("resilience", Test_resilience.suite);
      ("replication", Test_replication.suite);
      ("shard", Test_shard.suite);
    ]
