(* Tests for the durability layer: write-ahead logging, atomic
   snapshots, crash recovery, and the fault-injection harness.

   The centrepiece is an exhaustive crash-point sweep: a scripted
   workload (transactions, a rollback, object creation/deletion, set
   surgery, a name binding) runs against a durable base with all four
   extension kinds registered, a simulated power failure is injected at
   EVERY log write — under three tail-survival variants — and recovery
   must always produce a store equal to a transaction-consistent prefix
   of the crash-free history, with every ASR matching a from-scratch
   recomputation. *)

module V = Gom.Value
module C = Workload.Schemas.Company
module Db = Durability.Db
module Wal = Durability.Wal
module Fault = Durability.Fault

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---------------- scratch directories ---------------- *)

let fresh_dir () =
  let d = Filename.temp_file "asrdb-test" "" in
  Sys.remove d;
  Sys.mkdir d 0o700;
  d

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let wal_path dir gen = Filename.concat dir (Printf.sprintf "wal-%d.log" gen)
let snap_path dir gen = Filename.concat dir (Printf.sprintf "snapshot-%d.base" gen)

(* ---------------- the scripted workload ---------------- *)

(* Transaction helpers that let a simulated [Fault.Crash] propagate
   untouched: after a crash the process is dead, so nothing — not even
   a rollback — may run against the log.  ([Txn.with_txn] would try to
   roll back, and under [Sync_on_commit] the abort marker's flush
   barrier would overwrite the post-crash file image.) *)
let txn store f =
  let t = Gom.Txn.start store in
  f ();
  Gom.Txn.commit t

let rollback_txn store f =
  let t = Gom.Txn.start store in
  f ();
  Gom.Txn.rollback t

let name_path_spec = "Division.Manufactures.Composition.Name"

let register_all_kinds db =
  List.iter
    (fun kind -> ignore (Db.register_asr db ~path:name_path_spec ~kind ()))
    Core.Extension.all

(* Every kind of log record is exercised: set/new/ins/rem/del, a name
   binding (autocommitted), and a rolled-back transaction whose
   compensation records must net out on replay. *)
let run_workload db (b : C.base) =
  let s = Db.store db in
  let parts_of o = V.oid_exn (Gom.Store.get_attr s o "Composition") in
  txn s (fun () ->
      Gom.Store.set_attr s b.C.door "Name" (V.Str "Hatch");
      Gom.Store.set_attr s b.C.door "Price" (V.Dec 99.95));
  txn s (fun () ->
      let nut = Gom.Store.new_object s "BasePart" in
      Gom.Store.set_attr s nut "Name" (V.Str "Nut");
      Gom.Store.insert_elem s (parts_of b.C.sec560) (V.Ref nut));
  Db.bind_name db "TheDoor" b.C.door;
  rollback_txn s (fun () ->
      Gom.Store.set_attr s b.C.mb_trak "Name" (V.Str "Ghost");
      Gom.Store.remove_elem s (parts_of b.C.sec560) (V.Ref b.C.door));
  txn s (fun () ->
      Gom.Store.remove_elem s (parts_of b.C.sec560) (V.Ref b.C.door);
      Gom.Store.delete s b.C.pepper);
  txn s (fun () -> Gom.Store.set_attr s b.C.truck "Name" (V.Str "Trucks+"))

(* A crash-free reference execution; returns the log-write count, the
   scanned reference log, its raw bytes, and — for every record-prefix
   length — the canonical serialisation of the store that prefix
   produces. *)
type reference = {
  ref_writes : int;
  ref_records : Wal.record list;
  ref_log_bytes : string;
  prefix_state : int -> string;  (* #records replayed -> store string *)
}

let reference_run ~policy =
  with_dir (fun dir ->
      let fault = Fault.real () in
      let b = C.base () in
      let db = Db.create ~fault ~policy ~dir b.C.store in
      register_all_kinds db;
      run_workload db b;
      Db.close db;
      let scanned = Wal.scan (wal_path dir 1) in
      (* The whole log is committed when the run ends cleanly. *)
      check_int "reference log fully committed"
        (List.length scanned.Wal.records)
        scanned.Wal.committed;
      let snapshot = read_file (snap_path dir 1) in
      let log_bytes = read_file (wal_path dir 1) in
      let prefix_state k =
        let store = Gom.Serial.store_of_string snapshot in
        let prefix = List.filteri (fun i _ -> i < k) scanned.Wal.records in
        ignore (Wal.replay store prefix);
        Gom.Serial.store_to_string store
      in
      {
        ref_writes = Fault.writes fault;
        ref_records = scanned.Wal.records;
        ref_log_bytes = log_bytes;
        prefix_state;
      })

(* Run the workload under an armed fault plan; the crash must fire.
   Leaves the post-crash files in [dir] for recovery. *)
let crashed_run ~policy ~plan dir =
  let fault = Fault.faulty plan in
  let b = C.base () in
  let db = Db.create ~fault ~policy ~dir b.C.store in
  register_all_kinds db;
  let crashed =
    match run_workload db b with
    | () -> false
    | exception Fault.Crash -> true
  in
  (* The dead process's store is abandoned; only drop the global txn
     hooks so the sweep does not accumulate registrations. *)
  Gom.Txn.clear_hooks (Db.store db);
  crashed

(* Recover [dir] and hold the recovered state against the reference:
   the truncated log must be a byte-prefix of the crash-free log, the
   store must equal the state that prefix produces, and every ASR check
   must have passed. *)
let check_recovery ~reference ~ctx dir =
  let rdb = Db.open_ ~dir () in
  Fun.protect
    ~finally:(fun () -> Db.close rdb)
    (fun () ->
      let r = match Db.last_recovery rdb with Some r -> r | None -> assert false in
      check (ctx ^ ": all ASRs verified") true (Db.verified r);
      check_int (ctx ^ ": four ASRs rebuilt") 4 (List.length r.Db.asr_checks);
      let k = r.Db.records_scanned - r.Db.records_dropped in
      let log_now = read_file (wal_path dir 1) in
      check
        (ctx ^ ": recovered log is a byte-prefix of the crash-free log")
        true
        (String.length log_now <= String.length reference.ref_log_bytes
        && String.sub reference.ref_log_bytes 0 (String.length log_now) = log_now);
      check_string
        (ctx ^ ": store equals the committed prefix state")
        (reference.prefix_state k)
        (Gom.Serial.store_to_string (Db.store rdb));
      k)

(* Position (1-based) of the last commit/abort marker at or before
   write [c-1]: under [Sync_on_commit] everything up to it was fsynced,
   so recovery must retain at least that much even when the whole
   unsynced tail is lost. *)
let last_barrier_before reference c =
  let p = ref 0 in
  List.iteri
    (fun i r ->
      match r with
      | (Wal.Commit | Wal.Abort) when i + 1 < c -> p := i + 1
      | _ -> ())
    reference.ref_records;
  !p

let sweep_variants =
  [
    ("tail-survives", fun c -> { Fault.crash_at_write = c; survive_bytes = max_int; corrupt_bytes = 0 });
    ("tail-lost", fun c -> { Fault.crash_at_write = c; survive_bytes = 0; corrupt_bytes = 0 });
    ("tail-torn", fun c -> { Fault.crash_at_write = c; survive_bytes = 7; corrupt_bytes = 3 });
  ]

let test_crash_sweep () =
  let policy = Wal.Sync_on_commit in
  let reference = reference_run ~policy in
  check "workload produced writes" true (reference.ref_writes > 0);
  List.iter
    (fun (vname, plan_of) ->
      for c = 1 to reference.ref_writes do
        with_dir (fun dir ->
            let ctx = Printf.sprintf "%s@%d" vname c in
            check (ctx ^ ": crash fired") true
              (crashed_run ~policy ~plan:(plan_of c) dir);
            let k = check_recovery ~reference ~ctx dir in
            (* Durability floor: fsynced work survives any tail loss. *)
            check
              (ctx ^ ": synced prefix retained")
              true
              (k >= last_barrier_before reference c))
      done)
    sweep_variants

let test_crash_sweep_sync_always () =
  let policy = Wal.Sync_always in
  let reference = reference_run ~policy in
  for c = 1 to reference.ref_writes do
    with_dir (fun dir ->
        let ctx = Printf.sprintf "sync-always@%d" c in
        let plan = { Fault.crash_at_write = c; survive_bytes = 0; corrupt_bytes = 0 } in
        check (ctx ^ ": crash fired") true (crashed_run ~policy ~plan dir);
        let rdb = Db.open_ ~dir () in
        let r = match Db.last_recovery rdb with Some r -> r | None -> assert false in
        Db.close rdb;
        (* Every record but the fatal one was individually fsynced: the
           scan must see exactly the first [c-1] records. *)
        check_int (ctx ^ ": all previous records durable") (c - 1) r.Db.records_scanned;
        check (ctx ^ ": ASRs verified") true (Db.verified r))
  done

(* ---------------- targeted scenarios ---------------- *)

let test_create_reopen_roundtrip () =
  with_dir (fun dir ->
      let b = C.base () in
      let db = Db.create ~dir b.C.store in
      register_all_kinds db;
      run_workload db b;
      let expected = Gom.Serial.store_to_string b.C.store in
      Db.close db;
      let rdb = Db.open_ ~dir () in
      check_string "clean reopen reproduces the store" expected
        (Gom.Serial.store_to_string (Db.store rdb));
      let r = Option.get (Db.last_recovery rdb) in
      check "clean reopen verifies" true (Db.verified r);
      check_int "nothing truncated" 0 r.Db.bytes_truncated;
      Db.close rdb)

let test_uncommitted_tail_truncated_then_reusable () =
  with_dir (fun dir ->
      let b = C.base () in
      let db = Db.create ~dir b.C.store in
      ignore
        (Gom.Txn.with_txn b.C.store (fun () ->
             Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "Hatch")));
      (* An open transaction that never commits: intact records that
         recovery must drop and physically truncate. *)
      let t = Gom.Txn.start b.C.store in
      Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "Half-done");
      Db.flush db;
      Gom.Txn.abandon t;
      Gom.Txn.clear_hooks (Db.store db);
      let size_before = String.length (read_file (wal_path dir 1)) in
      let rdb = Db.open_ ~dir () in
      let r = Option.get (Db.last_recovery rdb) in
      check_int "two records dropped" 2 r.Db.records_dropped;
      check "bytes truncated" true (r.Db.bytes_truncated > 0);
      check_int "file physically truncated" (size_before - r.Db.bytes_truncated)
        (String.length (read_file (wal_path dir 1)));
      check "committed change survived" true
        (V.equal (Gom.Store.get_attr (Db.store rdb) b.C.door "Name") (V.Str "Hatch"));
      (* The truncated log must accept new work and recover again. *)
      ignore
        (Gom.Txn.with_txn (Db.store rdb) (fun () ->
             Gom.Store.set_attr (Db.store rdb) b.C.door "Name" (V.Str "Lid")));
      Db.close rdb;
      let rdb2 = Db.open_ ~dir () in
      check "appended-after-truncation change recovered" true
        (V.equal (Gom.Store.get_attr (Db.store rdb2) b.C.door "Name") (V.Str "Lid"));
      Db.close rdb2)

let test_checkpoint_rotates_and_recovers () =
  with_dir (fun dir ->
      let b = C.base () in
      let db = Db.create ~dir b.C.store in
      register_all_kinds db;
      ignore
        (Gom.Txn.with_txn b.C.store (fun () ->
             Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "Hatch")));
      Db.checkpoint db;
      check_int "generation advanced" 2 (Db.generation db);
      check "old snapshot deleted" false (Sys.file_exists (snap_path dir 1));
      check "old log deleted" false (Sys.file_exists (wal_path dir 1));
      ignore
        (Gom.Txn.with_txn b.C.store (fun () ->
             Gom.Store.set_attr b.C.store b.C.truck "Name" (V.Str "Trucks+")));
      let expected = Gom.Serial.store_to_string b.C.store in
      Db.close db;
      let rdb = Db.open_ ~dir () in
      let r = Option.get (Db.last_recovery rdb) in
      check_int "recovered at generation 2" 2 r.Db.generation;
      check "post-checkpoint recovery verifies" true (Db.verified r);
      check_string "post-checkpoint state reproduced" expected
        (Gom.Serial.store_to_string (Db.store rdb));
      (* Only the post-checkpoint transaction is in the new log. *)
      check_int "one commit replayed" 1 r.Db.commits_replayed;
      Db.close rdb)

let test_stale_next_generation_files_ignored () =
  with_dir (fun dir ->
      let b = C.base () in
      let db = Db.create ~dir b.C.store in
      ignore
        (Gom.Txn.with_txn b.C.store (fun () ->
             Gom.Store.set_attr b.C.store b.C.door "Name" (V.Str "Hatch")));
      Db.close db;
      (* Debris of a checkpoint that died before its manifest switch:
         the manifest still names generation 1, so recovery must ignore
         the orphans, and a later checkpoint must supersede them. *)
      let oc = open_out_bin (snap_path dir 2) in
      output_string oc "half a snapshot";
      close_out oc;
      let oc = open_out_bin (wal_path dir 2) in
      output_string oc "garbage log\n";
      close_out oc;
      let rdb = Db.open_ ~dir () in
      let r = Option.get (Db.last_recovery rdb) in
      check_int "still generation 1" 1 r.Db.generation;
      check "recovery verifies despite debris" true (Db.verified r);
      Db.checkpoint rdb;
      check_int "checkpoint reclaims generation 2" 2 (Db.generation rdb);
      Db.close rdb;
      let rdb2 = Db.open_ ~dir () in
      check "generation 2 recovers cleanly" true
        (Db.verified (Option.get (Db.last_recovery rdb2)));
      check "door survived" true
        (V.equal (Gom.Store.get_attr (Db.store rdb2) b.C.door "Name") (V.Str "Hatch"));
      Db.close rdb2)

let test_corrupt_snapshot_refused () =
  with_dir (fun dir ->
      let b = C.base () in
      let db = Db.create ~dir b.C.store in
      Db.close db;
      let text = read_file (snap_path dir 1) in
      let oc = open_out_bin (snap_path dir 1) in
      output_string oc (String.sub text 0 (String.length text / 2));
      close_out oc;
      check "truncated snapshot raises Recovery_error" true
        (match Db.open_ ~dir () with
        | (_ : Db.t) -> false
        | exception Db.Recovery_error _ -> true))

let test_double_create_refused () =
  with_dir (fun dir ->
      let b = C.base () in
      let db = Db.create ~dir b.C.store in
      Db.close db;
      let b2 = C.base () in
      check "second create refused" true
        (match Db.create ~dir b2.C.store with
        | (_ : Db.t) -> false
        | exception Db.Db_error _ -> true))

let test_wal_roundtrip () =
  with_dir (fun dir ->
      let path = Filename.concat dir "roundtrip.log" in
      let records =
        [
          Wal.Begin;
          Wal.Create (Gom.Oid.of_int 7, "ROBOT");
          Wal.Set (Gom.Oid.of_int 7, "Name", V.Str "Z3 with spaces");
          Wal.Set (Gom.Oid.of_int 7, "Price", V.Dec 1205.5);
          Wal.Set (Gom.Oid.of_int 7, "Tag", V.Null);
          Wal.Insert (Gom.Oid.of_int 5, V.Ref (Gom.Oid.of_int 3));
          Wal.Remove (Gom.Oid.of_int 5, V.Bool true);
          Wal.Delete (Gom.Oid.of_int 7, "ROBOT");
          Wal.Bind ("Our \"Robots\"", Gom.Oid.of_int 5);
          Wal.Commit;
          Wal.Abort;
        ]
      in
      let w = Wal.open_append ~policy:Wal.Sync_never path in
      List.iter (Wal.append w) records;
      Wal.close w;
      let s = Wal.scan path in
      check "all records round-trip" true (s.Wal.records = records);
      check_int "all committed" (List.length records) s.Wal.committed;
      check_int "no torn bytes" s.Wal.total_bytes s.Wal.valid_bytes)

let test_scan_missing_and_damaged () =
  with_dir (fun dir ->
      let missing = Wal.scan (Filename.concat dir "nope.log") in
      check_int "missing file scans empty" 0 (List.length missing.Wal.records);
      let path = Filename.concat dir "t.log" in
      let w = Wal.open_append ~policy:Wal.Sync_never path in
      Wal.append w (Wal.Set (Gom.Oid.of_int 1, "Name", V.Str "ok"));
      Wal.close w;
      let good = read_file path in
      (* Flip one payload byte: the CRC must reject the record. *)
      let bad = Bytes.of_string good in
      Bytes.set bad (Bytes.length bad - 2) '!';
      let oc = open_out_bin path in
      output_string oc (Bytes.to_string bad);
      close_out oc;
      let s = Wal.scan path in
      check_int "bit-flipped record rejected" 0 (List.length s.Wal.records);
      check_int "nothing trusted" 0 s.Wal.valid_bytes)

let suite =
  [
    Alcotest.test_case "crash at every write x 3 tail fates" `Quick test_crash_sweep;
    Alcotest.test_case "crash sweep under Sync_always" `Quick test_crash_sweep_sync_always;
    Alcotest.test_case "create/close/reopen round-trip" `Quick test_create_reopen_roundtrip;
    Alcotest.test_case "uncommitted tail truncated, log reusable" `Quick
      test_uncommitted_tail_truncated_then_reusable;
    Alcotest.test_case "checkpoint rotates generations" `Quick
      test_checkpoint_rotates_and_recovers;
    Alcotest.test_case "stale next-generation debris ignored" `Quick
      test_stale_next_generation_files_ignored;
    Alcotest.test_case "corrupt snapshot refused" `Quick test_corrupt_snapshot_refused;
    Alcotest.test_case "double create refused" `Quick test_double_create_refused;
    Alcotest.test_case "wal record round-trip" `Quick test_wal_roundtrip;
    Alcotest.test_case "scan: missing file, damaged record" `Quick
      test_scan_missing_and_damaged;
  ]
