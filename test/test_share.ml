(* Tests for section 5.4: sharing access support relation partitions
   between overlapping path expressions. *)

module A = Core.Asr
module D = Core.Decomposition
module X = Core.Extension
module V = Gom.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The company schema extended with a second anchor type: FACTORYs also
   make ProdSETs, so Division.Manufactures.Composition.Name and
   Factory.Makes.Composition.Name share their Product->BasePart->Name
   tail. *)
let extended_base () =
  let s = Workload.Schemas.Company.schema () in
  let s = Gom.Schema.define_tuple s "Factory" [ ("City", "STRING"); ("Makes", "ProdSET") ] in
  let store = Gom.Store.create s in
  let part name price =
    let b = Gom.Store.new_object store "BasePart" in
    Gom.Store.set_attr store b "Name" (V.Str name);
    Gom.Store.set_attr store b "Price" (V.Dec price);
    b
  in
  let pset parts =
    let s = Gom.Store.new_object store "BasePartSET" in
    List.iter (fun x -> Gom.Store.insert_elem store s (V.Ref x)) parts;
    s
  in
  let product name comp =
    let p = Gom.Store.new_object store "Product" in
    Gom.Store.set_attr store p "Name" (V.Str name);
    Gom.Store.set_attr store p "Composition" (V.Ref comp);
    p
  in
  let prodset ps =
    let s = Gom.Store.new_object store "ProdSET" in
    List.iter (fun x -> Gom.Store.insert_elem store s (V.Ref x)) ps;
    s
  in
  let door = part "Door" 1205.5 in
  let wheel = part "Wheel" 99.9 in
  let car = product "Car" (pset [ door; wheel ]) in
  let bike = product "Bike" (pset [ wheel ]) in
  let division =
    let d = Gom.Store.new_object store "Division" in
    Gom.Store.set_attr store d "Name" (V.Str "Auto");
    Gom.Store.set_attr store d "Manufactures" (V.Ref (prodset [ car ]));
    d
  in
  let factory =
    let f = Gom.Store.new_object store "Factory" in
    Gom.Store.set_attr store f "City" (V.Str "Ulm");
    Gom.Store.set_attr store f "Makes" (V.Ref (prodset [ car; bike ]));
    f
  in
  let div_path =
    Gom.Path.make s "Division" [ "Manufactures"; "Composition"; "Name" ]
  in
  let fac_path = Gom.Path.make s "Factory" [ "Makes"; "Composition"; "Name" ] in
  (store, div_path, fac_path, division, factory, door, wheel)

let test_segment_keys () =
  let store, div_path, fac_path, _, _, _, _ = extended_base () in
  ignore store;
  (* Canonical never shares. *)
  check "canonical ineligible" true
    (A.segment_key div_path X.Canonical ~lo:2 ~hi:5 = None);
  (* Left-complete only shares complete prefixes. *)
  check "left needs lo=0" true (A.segment_key div_path X.Left_complete ~lo:2 ~hi:5 = None);
  check "left prefix eligible" true
    (A.segment_key div_path X.Left_complete ~lo:0 ~hi:2 <> None);
  (* Right-complete only shares complete suffixes. *)
  check "right needs hi=m" true
    (A.segment_key div_path X.Right_complete ~lo:0 ~hi:2 = None);
  check "right suffix eligible" true
    (A.segment_key div_path X.Right_complete ~lo:2 ~hi:5 <> None);
  (* The shared tail has the same key for both paths... *)
  check "tails share a key" true
    (A.segment_key div_path X.Full ~lo:2 ~hi:5 = A.segment_key fac_path X.Full ~lo:2 ~hi:5);
  (* ... but the heads differ (different anchor attribute). *)
  check "heads differ" true
    (A.segment_key div_path X.Full ~lo:0 ~hi:2 <> A.segment_key fac_path X.Full ~lo:0 ~hi:2)

let test_pool_reuses_partition () =
  let store, div_path, fac_path, _, _, _, _ = extended_base () in
  let pool = A.make_pool store in
  let dec = D.make ~m:5 [ 0; 2; 5 ] in
  let a1 = A.create ~pool store div_path X.Full dec in
  check_int "first relation registers both segments" 2 (A.pool_segment_count pool);
  let a2 = A.create ~pool store fac_path X.Full dec in
  (* Only the head is new: the (2,5) tail was found in the pool. *)
  check_int "second adds only its head" 3 (A.pool_segment_count pool);
  check_int "a1 fully pooled" 2 (A.shared_partition_count a1);
  check_int "a2 fully pooled" 2 (A.shared_partition_count a2);
  (* The shared partition holds the union of both projections and
     serves both relations' lookups. *)
  let p1 = A.partition_relation a1 1 in
  let p2 = A.partition_relation a2 1 in
  check "physically the same relation" true (Relation.equal p1 p2)

let test_shared_lookup_correct () =
  let store, div_path, fac_path, division, factory, door, wheel = extended_base () in
  ignore door;
  let pool = A.make_pool store in
  let dec = D.make ~m:5 [ 0; 2; 5 ] in
  let a1 = A.create ~pool store div_path X.Full dec in
  let a2 = A.create ~pool store fac_path X.Full dec in
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
  let env = (Core.Exec.make store heap) in
  (* Backward query through each relation agrees with navigation. *)
  List.iter
    (fun (a, path, expect) ->
      let nav = Core.Exec.backward_scan env path ~i:0 ~j:3 ~target:(V.Str "Wheel") in
      let sup = Core.Exec.backward_supported env a ~i:0 ~j:3 ~target:(V.Str "Wheel") in
      check "nav = sup over shared partition" true (nav = sup);
      check "expected anchor found" true (List.mem expect nav))
    [ (a1, div_path, division); (a2, fac_path, factory) ];
  ignore wheel

let test_pool_saves_pages () =
  let store, div_path, fac_path, _, _, _, _ = extended_base () in
  let dec = D.make ~m:5 [ 0; 2; 5 ] in
  (* Unshared baseline. *)
  let u1 = A.create store div_path X.Full dec in
  let u2 = A.create store fac_path X.Full dec in
  let unshared = A.pool_total_pages [ u1; u2 ] in
  let pool = A.make_pool store in
  let s1 = A.create ~pool store div_path X.Full dec in
  let s2 = A.create ~pool store fac_path X.Full dec in
  let shared = A.pool_total_pages [ s1; s2 ] in
  check "sharing saves pages" true (shared < unshared);
  check "geometry reports sharing" true
    (List.exists (fun g -> g.A.shared) (A.geometry s1))

let agree a =
  let scratch = Core.Extension.compute (A.store a) (A.path a) (A.kind a) in
  Relation.equal scratch (A.extension_relation a)

let test_shared_maintenance () =
  let store, div_path, fac_path, _, factory, door, _ = extended_base () in
  let pool = A.make_pool store in
  let dec = D.make ~m:5 [ 0; 2; 5 ] in
  let a1 = A.create ~pool store div_path X.Full dec in
  let a2 = A.create ~pool store fac_path X.Full dec in
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) store in
  let mgr = Core.Maintenance.create (Core.Exec.make store heap) in
  Core.Maintenance.register mgr a1;
  Core.Maintenance.register mgr a2;
  (* Mutations in the shared tail affect both relations. *)
  let bike_comp =
    let prods = Gom.Store.get_attr store factory "Makes" in
    let bike =
      Gom.Store.elements store (V.oid_exn prods)
      |> List.map V.oid_exn
      |> List.find (fun p -> Gom.Store.get_attr store p "Name" = V.Str "Bike")
    in
    V.oid_exn (Gom.Store.get_attr store bike "Composition")
  in
  Gom.Store.insert_elem store bike_comp (V.Ref door);
  check "a1 consistent after shared-tail update" true (agree a1);
  check "a2 consistent after shared-tail update" true (agree a2);
  (* And a mutation in one head leaves the other correct too. *)
  Gom.Store.set_attr store factory "Makes" V.Null;
  check "a1 unaffected by a2's head" true (agree a1);
  check "a2 consistent after losing its head" true (agree a2);
  (* The shared partition still carries a1's tuples. *)
  let nav =
    Core.Exec.backward_scan (Core.Exec.make store heap) div_path ~i:0 ~j:3
      ~target:(V.Str "Door")
  in
  let sup = Core.Exec.backward_supported (Core.Exec.make store heap) a1 ~i:0 ~j:3 ~target:(V.Str "Door") in
  check "a1 lookups survive" true (nav = sup)

let test_refresh_preserves_sharers () =
  let store, div_path, fac_path, _, _, _, _ = extended_base () in
  let pool = A.make_pool store in
  let dec = D.make ~m:5 [ 0; 2; 5 ] in
  let a1 = A.create ~pool store div_path X.Full dec in
  let a2 = A.create ~pool store fac_path X.Full dec in
  A.refresh a1;
  check "a1 correct after refresh" true (agree a1);
  check "a2 untouched by a1 refresh" true (agree a2);
  check "a2's partitions still serve" true
    (Relation.cardinal (A.partition_relation a2 1) > 0)

let test_pool_rejects_foreign_store () =
  let store, div_path, _, _, _, _, _ = extended_base () in
  let other = Gom.Store.create (Workload.Schemas.Company.schema ()) in
  let pool = A.make_pool other in
  check "foreign store rejected" true
    (try
       ignore (A.create ~pool store div_path X.Full (D.trivial ~m:5));
       false
     with Invalid_argument _ -> true)

module M = Core.Maintenance

(* Randomised: two full-extension relations with different
   decompositions share segments from one pool; after arbitrary
   mutations both must still match their from-scratch recomputations. *)
let prop_pooled_maintenance =
  let spec_gen =
    QCheck.Gen.(
      let* nn = int_range 1 3 in
      let* counts = list_repeat (nn + 1) (int_range 1 5) in
      let* defined =
        flatten_l
          (List.map (fun c -> int_range 0 c) (List.filteri (fun i _ -> i < nn) counts))
      in
      let* fan = list_repeat nn (int_range 1 3) in
      let* sv = flatten_l (List.map (fun f -> if f > 1 then return true else bool) fan) in
      let* seed = int_range 0 100000 in
      return (Workload.Generator.spec ~seed ~set_valued:sv ~counts ~defined ~fan ()))
  in
  QCheck.Test.make ~name:"pooled relations stay consistent under mutations" ~count:40
    QCheck.(pair (make ~print:(fun _ -> "<spec>") spec_gen) (pair small_int (int_bound 1000)))
    (fun (spec, (pick, ops_seed)) ->
      let store, path = Workload.Generator.build spec in
      let heap = Storage.Heap.create ~size_of:(Workload.Generator.size_of spec) store in
      let env = (Core.Exec.make store heap) in
      let mgr = Core.Maintenance.create env in
      let m = Gom.Path.arity path - 1 in
      let decs = D.all ~m in
      let d1 = List.nth decs (pick mod List.length decs) in
      let d2 = List.nth decs ((pick + 1) mod List.length decs) in
      let pool = A.make_pool store in
      let a1 = A.create ~pool store path X.Full d1 in
      let a2 = A.create ~pool store path X.Full d2 in
      M.register mgr a1;
      M.register mgr a2;
      let rng = Random.State.make [| ops_seed |] in
      let nn = Gom.Path.length path in
      let ok = ref true in
      for _ = 1 to 8 do
        if !ok then begin
          (* A simple mutation battery: rewire a random source. *)
          let level = Random.State.int rng nn in
          let step = Gom.Path.step path (level + 1) in
          let sources = Gom.Store.extent ~deep:true store step.Gom.Path.domain in
          let targets = Gom.Store.extent ~deep:true store step.Gom.Path.range in
          (match sources with
          | [] -> ()
          | _ -> (
            let src = List.nth sources (Random.State.int rng (List.length sources)) in
            match (Gom.Store.get_attr store src step.Gom.Path.attr, step.Gom.Path.set_type) with
            | V.Null, Some set_ty ->
              let s = Gom.Store.new_object store set_ty in
              Gom.Store.set_attr store src step.Gom.Path.attr (V.Ref s)
            | V.Null, None ->
              if targets <> [] then
                Gom.Store.set_attr store src step.Gom.Path.attr
                  (V.Ref (List.nth targets (Random.State.int rng (List.length targets))))
            | V.Ref s, Some _ ->
              if targets <> [] && Random.State.bool rng then
                Gom.Store.insert_elem store s
                  (V.Ref (List.nth targets (Random.State.int rng (List.length targets))))
              else (
                match Gom.Store.elements store s with
                | [] -> Gom.Store.set_attr store src step.Gom.Path.attr V.Null
                | e :: _ -> Gom.Store.remove_elem store s e)
            | V.Ref _, None -> Gom.Store.set_attr store src step.Gom.Path.attr V.Null
            | _, _ -> ()));
          if not (agree a1 && agree a2) then ok := false
        end
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "segment keys" `Quick test_segment_keys;
    Qc.to_alcotest prop_pooled_maintenance;
    Alcotest.test_case "pool reuses partitions" `Quick test_pool_reuses_partition;
    Alcotest.test_case "shared lookups correct" `Quick test_shared_lookup_correct;
    Alcotest.test_case "sharing saves pages" `Quick test_pool_saves_pages;
    Alcotest.test_case "maintenance through shared partitions" `Quick test_shared_maintenance;
    Alcotest.test_case "refresh preserves sharers" `Quick test_refresh_preserves_sharers;
    Alcotest.test_case "pool bound to one store" `Quick test_pool_rejects_foreign_store;
  ]
