(* Coverage for pretty-printers and the page-accounting structure of
   supported queries (the executable analogue of equations 33-34). *)

module V = Gom.Value
module D = Core.Decomposition
module C = Workload.Schemas.Company

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_schema_pp () =
  let s = C.schema () in
  let out = Format.asprintf "%a" Gom.Schema.pp s in
  check "tuple rendered" true
    (contains ~needle:"type Division is [Name: STRING, Manufactures: ProdSET];" out);
  check "set rendered" true (contains ~needle:"type ProdSET is {Product};" out);
  check "builtins hidden" true (not (contains ~needle:"type STRING" out))

let test_schema_pp_supertypes () =
  let s = Gom.Schema.empty in
  let s = Gom.Schema.define_tuple s "A" [ ("x", "INT") ] in
  let s = Gom.Schema.define_tuple s "B" ~supertypes:[ "A" ] [ ("y", "INT") ] in
  let out = Format.asprintf "%a" Gom.Schema.pp s in
  check "supertypes rendered" true (contains ~needle:"supertypes (A)" out)

let test_instance_pp () =
  let b = C.base () in
  let store = b.C.store in
  let door = Gom.Store.get_exn store b.C.door in
  let out = Format.asprintf "%a" Gom.Instance.pp door in
  check "tuple instance shows fields" true
    (contains ~needle:"Name: \"Door\"" out && contains ~needle:":BasePart[" out);
  let set_oid = V.oid_exn (Gom.Store.get_attr store b.C.sec560 "Composition") in
  let set_inst = Gom.Store.get_exn store set_oid in
  let out = Format.asprintf "%a" Gom.Instance.pp set_inst in
  check "set instance shows braces" true (contains ~needle:"{" out)

let test_tuple_pp () =
  check_str "tuple rendering" "(i1, NULL, \"x\")"
    (Relation.Tuple.to_string [| V.Ref (Gom.Oid.of_int 1); V.Null; V.Str "x" |])

let test_relation_pp () =
  let r = Relation.of_list ~width:2 [ [| V.Int 1; V.Int 2 |] ] in
  check "relation rendering" true
    (contains ~needle:"(1, 2)" (Format.asprintf "%a" Relation.pp r))

let test_decomposition_pp_all () =
  check_str "trivial" "(0,5)" (D.to_string (D.trivial ~m:5));
  check_str "mixed" "(0,2,5)" (D.to_string (D.make ~m:5 [ 0; 2; 5 ]))

let test_path_pp () =
  let b = C.base () in
  check_str "path" "Division.Manufactures.Composition.Name"
    (Gom.Path.to_string (C.name_path b.C.store))

let test_ast_pp_roundtrip () =
  let q =
    Gql.Parser.parse
      {|select d.Name from d in Mercedes, b in d.Manufactures
        where b.Name = "MB Trak" and not d.Name = "Space" order by d.Name desc limit 3|}
  in
  let printed = Format.asprintf "%a" Gql.Ast.pp q in
  (* The printed form must re-parse to the same AST. *)
  let q' = Gql.Parser.parse printed in
  check "pp/parse fixpoint" true (q = q')

(* Supported-query accounting: a boundary-anchored backward query pays a
   descent per partition (eq. 34's ht + Rnlp structure), while a query
   entering a partition mid-column pays the whole partition (the ap
   term). *)
let test_supported_accounting_structure () =
  let spec =
    Workload.Generator.spec ~seed:17
      ~counts:[ 200; 400; 800; 1600 ]
      ~defined:[ 190; 380; 760 ] ~fan:[ 1; 1; 1 ]
      ~set_valued:[ false; false; false ] ()
  in
  let store, path = Workload.Generator.build spec in
  let n = Gom.Path.length path in
  let heap = Storage.Heap.create ~size_of:(Workload.Generator.size_of spec) store in
  let env = (Core.Exec.make store heap) in
  (* A target guaranteed to be reachable, so every partition hop has a
     non-empty frontier. *)
  let target =
    Gom.Store.extent store "T0"
    |> List.find_map (fun o ->
           match Core.Exec.forward_scan env path ~i:0 ~j:n o with
           | v :: _ -> Some v
           | [] -> None)
    |> Option.get
  in
  let stats = env.Core.Exec.stats in
  let cost a =
    Storage.Stats.begin_op stats;
    ignore (Core.Exec.backward_supported env a ~i:0 ~j:n ~target);
    Storage.Stats.op_accesses stats
  in
  (* Binary partitions: a lookup chain paying at least one page per
     partition. *)
  let bi = Core.Asr.create store path Core.Extension.Full (D.binary ~m:n) in
  let c_bi = cost bi in
  check "binary: at least one page per partition" true (c_bi >= n);
  (* Non-decomposed: a single descent, fewest pages. *)
  let no = Core.Asr.create store path Core.Extension.Full (D.trivial ~m:n) in
  let c_no = cost no in
  check "no-dec cheapest" true (c_no <= c_bi);
  (* A mid-partition entry must scan: query (1,3) against a (0,3)-
     partitioned left-complete relation enters at an interior column. *)
  let coarse = Core.Asr.create store path Core.Extension.Full (D.trivial ~m:n) in
  Storage.Stats.begin_op stats;
  ignore (Core.Exec.backward_supported env coarse ~i:1 ~j:n ~target);
  let c_interior_end = Storage.Stats.op_accesses stats in
  (* Ends at the clustering boundary: still a lookup. *)
  check "suffix query stays cheap" true (c_interior_end <= c_no + 2);
  (* But a forward query entering mid-partition scans every page. *)
  let source = List.hd (Gom.Store.extent store "T1") in
  Storage.Stats.begin_op stats;
  ignore (Core.Exec.forward_supported env coarse ~i:1 ~j:n source);
  let c_scan = Storage.Stats.op_accesses stats in
  let leafs =
    List.fold_left
      (fun acc (g : Core.Asr.part_geometry) -> acc + g.Core.Asr.leaf_pages)
      0 (Core.Asr.geometry coarse)
  in
  check "mid-partition forward pays the whole partition" true (c_scan >= leafs)

let suite =
  [
    Alcotest.test_case "schema pp" `Quick test_schema_pp;
    Alcotest.test_case "schema pp supertypes" `Quick test_schema_pp_supertypes;
    Alcotest.test_case "instance pp" `Quick test_instance_pp;
    Alcotest.test_case "tuple pp" `Quick test_tuple_pp;
    Alcotest.test_case "relation pp" `Quick test_relation_pp;
    Alcotest.test_case "decomposition pp" `Quick test_decomposition_pp_all;
    Alcotest.test_case "path pp" `Quick test_path_pp;
    Alcotest.test_case "ast pp/parse fixpoint" `Quick test_ast_pp_roundtrip;
    Alcotest.test_case "supported accounting structure" `Quick
      test_supported_accounting_structure;
  ]
