(* Tests for Core.Baselines: the prior techniques the paper subsumes,
   and the restrictions each inherits. *)

module B = Core.Baselines
module V = Gom.Value
module C = Workload.Schemas.Company
module R = Workload.Schemas.Robot

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_valduriez_binary_join_index () =
  let b = C.base () in
  let idx = B.valduriez_join_index b.C.store ~anchor:"Product" ~attr:"Composition" in
  check_int "path length 1" 1 (Gom.Path.length (Core.Asr.path idx));
  (* Both join directions work, as for Valduriez's two clustering
     copies. *)
  let sec_parts = V.oid_exn (Gom.Store.get_attr b.C.store b.C.sec560 "Composition") in
  let fwd = Core.Asr.lookup_fwd idx 0 (V.Ref b.C.sec560) in
  check "forward join" true
    (List.exists (fun (t : Relation.Tuple.t) -> V.equal t.(2) (V.Ref b.C.door)) fwd);
  let bwd = Core.Asr.lookup_bwd idx 0 (V.Ref b.C.door) in
  check "backward join" true
    (List.exists (fun (t : Relation.Tuple.t) -> V.equal t.(1) (V.Ref sec_parts)) bwd)

let test_valduriez_dangling_sides () =
  let b = C.base () in
  (* Full extension: products without composition and parts without
     products are still represented (outer join index). *)
  let idx = B.valduriez_join_index b.C.store ~anchor:"Product" ~attr:"Composition" in
  let ext = Core.Asr.extension_relation idx in
  check "dangling part side present" true
    (* door also sits in the orphan BasePartSET i10, which no product
       references; but door itself is referenced via sec_parts, so the
       right-dangling row is about elements only reachable there. *)
    (Relation.cardinal ext >= 2)

let test_gemstone_requires_linear () =
  let cb = C.base () in
  check "set path rejected" true
    (try
       ignore (B.gemstone_path_index cb.C.store (C.name_path cb.C.store));
       false
     with Invalid_argument _ -> true)

let test_gemstone_on_robot_path () =
  let rb = R.base () in
  let path = R.location_path rb.R.store in
  let idx = B.gemstone_path_index rb.R.store path in
  check "left-complete" true (Core.Asr.kind idx = Core.Extension.Left_complete);
  check "binary partitions" true
    (Core.Decomposition.is_binary (Core.Asr.decomposition idx));
  (* Supports every query anchored at the path head... *)
  check "supports (0,2)" true (Core.Asr.supports idx ~i:0 ~j:2);
  (* ...but nothing anchored mid-path. *)
  check "no (1,4)" false (Core.Asr.supports idx ~i:1 ~j:4)

let test_orion_full_span_only () =
  let rb = R.base () in
  let path = R.location_path rb.R.store in
  let heap = Storage.Heap.create ~size_of:(fun _ -> 100) rb.R.store in
  let env = Core.Exec.make rb.R.store heap in
  let idx = B.orion_nested_index rb.R.store path in
  check "canonical" true (Core.Asr.kind idx = Core.Extension.Canonical);
  check_int "single partition" 1 (Core.Asr.partition_count idx);
  check "answers (0,n)" true (Core.Asr.supports idx ~i:0 ~j:4);
  check "cannot answer (0,3)" false (Core.Asr.supports idx ~i:0 ~j:3);
  check "cannot answer (1,4)" false (Core.Asr.supports idx ~i:1 ~j:4);
  (* The (0,n) backward query works like the paper's Query 1. *)
  let robots =
    Core.Exec.backward_supported env idx ~i:0 ~j:4 ~target:(V.Str "Utopia")
  in
  check_int "query 1 through orion index" 3 (List.length robots)

(* The generalisation claim, measured: a decomposed full ASR answers a
   sub-path query from the index, the Orion baseline must fall back to
   an exhaustive scan. *)
let test_ablation_subpath_queries () =
  let spec =
    Workload.Generator.spec ~seed:9
      ~counts:[ 200; 400; 800; 1600 ]
      ~defined:[ 190; 380; 760 ] ~fan:[ 1; 1; 1 ]
      ~set_valued:[ false; false; false ] ()
  in
  let store, path = Workload.Generator.build spec in
  let heap = Storage.Heap.create ~size_of:(Workload.Generator.size_of spec) store in
  let env = (Core.Exec.make store heap) in
  let orion = B.orion_nested_index store path in
  let full =
    Core.Asr.create store path Core.Extension.Full
      (Core.Decomposition.binary ~m:(Gom.Path.arity path - 1))
  in
  let target =
    match Gom.Store.extent store "T2" with o :: _ -> V.Ref o | [] -> assert false
  in
  let stats = env.Core.Exec.stats in
  let measure index =
    Storage.Stats.begin_op stats;
    let r = Core.Exec.backward ?index env path ~i:0 ~j:2 ~target in
    (r, Storage.Stats.op_accesses stats)
  in
  let r_orion, cost_orion = measure (Some orion) in
  let r_full, cost_full = measure (Some full) in
  check "same answers" true (r_orion = r_full);
  check "orion pays the scan" true (cost_orion > 3 * cost_full)

let suite =
  [
    Alcotest.test_case "valduriez binary join index" `Quick test_valduriez_binary_join_index;
    Alcotest.test_case "valduriez dangling sides" `Quick test_valduriez_dangling_sides;
    Alcotest.test_case "gemstone rejects set paths" `Quick test_gemstone_requires_linear;
    Alcotest.test_case "gemstone on the robot path" `Quick test_gemstone_on_robot_path;
    Alcotest.test_case "orion supports (0,n) only" `Quick test_orion_full_span_only;
    Alcotest.test_case "ablation: sub-path queries" `Quick test_ablation_subpath_queries;
  ]
