(* Tests for Workload.Generator, Workload.Table and the experiment
   harness (smoke + shape assertions on cheap experiments). *)

module G = Workload.Generator
module T = Workload.Table

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_spec_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "two levels minimum" true
    (bad (fun () -> G.spec ~counts:[ 5 ] ~defined:[] ~fan:[] ()));
  check "defined bounded" true
    (bad (fun () -> G.spec ~counts:[ 5; 5 ] ~defined:[ 9 ] ~fan:[ 1 ] ()));
  check "fan>1 needs sets" true
    (bad (fun () ->
         G.spec ~counts:[ 5; 5 ] ~defined:[ 5 ] ~fan:[ 3 ] ~set_valued:[ false ] ()));
  check "ok" true
    (G.spec ~counts:[ 5; 5 ] ~defined:[ 5 ] ~fan:[ 3 ] () |> fun _ -> true)

let test_generator_statistics () =
  let spec = G.spec ~seed:1 ~counts:[ 100; 200; 300 ] ~defined:[ 80; 150 ] ~fan:[ 2; 3 ] () in
  let store, path = G.build spec in
  check_int "path length" 2 (Gom.Path.length path);
  check_int "c0" 100 (Gom.Store.count store "T0");
  check_int "c1" 200 (Gom.Store.count store "T1");
  check_int "c2" 300 (Gom.Store.count store "T2");
  let defined0 =
    Gom.Store.extent store "T0"
    |> List.filter (fun o -> Gom.Store.get_attr store o "A1" <> Gom.Value.Null)
    |> List.length
  in
  check_int "d0 honoured" 80 defined0;
  (* Each defined object references exactly fan distinct targets. *)
  let all_fans_ok =
    Gom.Store.extent store "T0"
    |> List.for_all (fun o ->
           match Gom.Store.get_attr store o "A1" with
           | Gom.Value.Null -> true
           | v -> List.length (Gom.Store.elements store (Gom.Value.oid_exn v)) = 2)
  in
  check "fan honoured" true all_fans_ok

let test_generator_deterministic () =
  let spec = G.spec ~seed:77 ~counts:[ 50; 50 ] ~defined:[ 40 ] ~fan:[ 1 ] () in
  let s1, p1 = G.build spec in
  let s2, _ = G.build spec in
  let ext k st = Core.Extension.compute st p1 k in
  check "same seed, same base" true
    (Relation.equal (ext Core.Extension.Full s1) (ext Core.Extension.Full s2))

let test_generator_single_valued () =
  let spec =
    G.spec ~seed:5 ~counts:[ 30; 30 ] ~defined:[ 30 ] ~fan:[ 1 ]
      ~set_valued:[ false ] ()
  in
  let store, path = G.build spec in
  check_int "no set occurrence" 0 (Gom.Path.set_occurrences path);
  check "references are direct" true
    (Gom.Store.extent store "T0"
    |> List.for_all (fun o ->
           match Gom.Store.get_attr store o "A1" with
           | Gom.Value.Ref t -> Gom.Store.type_of store t = "T1"
           | _ -> false))

let test_of_profile_scaling () =
  let p =
    Costmodel.Profile.make ~c:[ 1000.; 2000. ] ~d:[ 800. ] ~fan:[ 2. ] ()
  in
  let spec = G.of_profile ~scale:0.1 p in
  let store, _ = G.build spec in
  check_int "scaled c0" 100 (Gom.Store.count store "T0")

(* ---- tables ---- *)

let sample_table () =
  T.make ~id:"t" ~title:"sample" ~x_label:"x" ~columns:[ "a"; "b" ]
    ~notes:[ "a note" ]
    [ ("1", [ 1.0; 2.5 ]); ("2", [ 10.0; Float.nan ]) ]

let test_table_validation () =
  check "width mismatch rejected" true
    (try
       ignore
         (T.make ~id:"t" ~title:"bad" ~x_label:"x" ~columns:[ "a" ] [ ("1", [ 1.; 2. ]) ]);
       false
     with Invalid_argument _ -> true)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_table_render_and_csv () =
  let t = sample_table () in
  let rendered = Format.asprintf "%a" T.render t in
  check "title present" true (contains ~needle:"sample" rendered);
  check "note present" true (contains ~needle:"a note" rendered);
  let csv = T.to_csv t in
  check "csv header" true (String.length csv > 5 && String.sub csv 0 5 = "x,a,b");
  check "nan rendered as dash" true (contains ~needle:",-" csv)

let test_table_column () =
  let t = sample_table () in
  check "column extraction" true (T.column t "a" = [ ("1", 1.0); ("2", 10.0) ]);
  check "unknown column" true
    (try ignore (T.column t "zzz"); false with Not_found -> true)

(* ---- experiments ---- *)

let test_catalogue () =
  check_int "22 experiments" 22 (List.length Workload.Experiments.all);
  check "find works" true (Workload.Experiments.find "fig8" <> None);
  check "unknown id" true (Workload.Experiments.find "fig99" = None);
  (* Ids unique. *)
  let ids = List.map (fun (e : Workload.Experiments.t) -> e.Workload.Experiments.id) Workload.Experiments.all in
  check_int "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids))

let run_tables id =
  match Workload.Experiments.find id with
  | Some e -> e.Workload.Experiments.run ()
  | None -> Alcotest.failf "experiment %s missing" id

let test_fig4_shape () =
  match run_tables "fig4" with
  | [ t ] ->
    let bi = T.column t "binary dec" in
    let can = List.assoc "can" bi and full = List.assoc "full" bi in
    let left = List.assoc "left" bi and right = List.assoc "right" bi in
    check "can < right" true (can < right);
    check "left < full" true (left < full)
  | _ -> Alcotest.fail "fig4 should yield one table"

let test_fig7_flatness () =
  match run_tables "fig7" with
  | [ t ] ->
    let series = T.column t "full" in
    let vs = List.map snd series in
    let mn = List.fold_left Float.min Float.infinity vs in
    let mx = List.fold_left Float.max Float.neg_infinity vs in
    check "supported flat across sizes" true (mx -. mn <= 2.);
    let nas = List.map snd (T.column t "no support") in
    check "scan grows" true
      (List.nth nas (List.length nas - 1) > 2. *. List.hd nas)
  | _ -> Alcotest.fail "fig7 should yield one table"

let test_fig14_normalization () =
  match run_tables "fig14" with
  | [ t ] ->
    check "no-support column is 1" true
      (List.for_all (fun (_, v) -> Float.abs (v -. 1.) < 1e-9) (T.column t "no support"))
  | _ -> Alcotest.fail "fig14 should yield one table"

let test_fig17_two_tables () =
  check_int "coarse + fine sweep" 2 (List.length (run_tables "fig17"))

let suite =
  [
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "generator statistics" `Quick test_generator_statistics;
    Alcotest.test_case "generator determinism" `Quick test_generator_deterministic;
    Alcotest.test_case "single-valued chains" `Quick test_generator_single_valued;
    Alcotest.test_case "profile scaling" `Quick test_of_profile_scaling;
    Alcotest.test_case "table validation" `Quick test_table_validation;
    Alcotest.test_case "table render and csv" `Quick test_table_render_and_csv;
    Alcotest.test_case "table column" `Quick test_table_column;
    Alcotest.test_case "experiment catalogue" `Quick test_catalogue;
    Alcotest.test_case "fig4 shape" `Quick test_fig4_shape;
    Alcotest.test_case "fig7 flatness" `Quick test_fig7_flatness;
    Alcotest.test_case "fig14 normalization" `Quick test_fig14_normalization;
    Alcotest.test_case "fig17 sweeps" `Quick test_fig17_two_tables;
  ]
